package cgp

// Kernel microbenchmarks: the steady-state simulation path from trace
// replay through CPU.Event to the cache model, measured in isolation
// from the DB engine. The baseline arm is internal/refsim — the frozen
// pre-optimization kernel (map-indexed prefetch queue, AoS tick-LRU
// caches, per-event replay dispatch) — so every benchmark run
// re-measures the optimized kernel's speedup rather than trusting a
// number recorded once. TestMain (bench_test.go) writes the results to
// BENCH_kernel.json.
//
// Run with GOMAXPROCS=1 for the headline events/sec comparison:
//
//	GOMAXPROCS=1 go test -run 'TestMain' -bench 'BenchmarkKernel' -benchtime 2s .

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"cgp/internal/cpu"
	"cgp/internal/isa"
	"cgp/internal/prefetch"
	"cgp/internal/program"
	"cgp/internal/refsim"
	"cgp/internal/trace"
)

// kernelBench collects per-benchmark results for BENCH_kernel.json.
var kernelBench = struct {
	sync.Mutex
	entries map[string]*kernelBenchEntry
}{entries: map[string]*kernelBenchEntry{}}

type kernelBenchEntry struct {
	WallSeconds    float64 `json:"wall_seconds"`
	Events         int64   `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

func recordKernelBench(name string, wall time.Duration, events int64, allocs uint64) {
	kernelBench.Lock()
	defer kernelBench.Unlock()
	kernelBench.entries[name] = &kernelBenchEntry{
		WallSeconds:    wall.Seconds(),
		Events:         events,
		EventsPerSec:   float64(events) / wall.Seconds(),
		NsPerEvent:     wall.Seconds() * 1e9 / float64(events),
		AllocsPerEvent: float64(allocs) / float64(events),
	}
}

// writeKernelBench dumps the collected kernel results (called from
// TestMain in bench_test.go). The headline acceptance number is
// kernel_replay_speedup: optimized events/sec over the frozen
// pre-change kernel's, on the same recording in the same process.
func writeKernelBench() {
	kernelBench.Lock()
	defer kernelBench.Unlock()
	if len(kernelBench.entries) == 0 {
		return
	}
	out := map[string]any{
		"scale":      "wisc-large-1, WiscN=800 (harnessBenchOpts), layout O5, prefetcher NL_4",
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"bench":      kernelBench.entries,
	}
	if base, ok := kernelBench.entries["replay_baseline"]; ok {
		if opt, ok := kernelBench.entries["replay_optimized"]; ok {
			out["kernel_replay_speedup"] = opt.EventsPerSec / base.EventsPerSec
		}
	}
	if data, err := json.MarshalIndent(out, "", "  "); err == nil {
		_ = os.WriteFile("BENCH_kernel.json", append(data, '\n'), 0o644)
	}
}

// kernelRecording memoizes one recorded wisc-large-1 trace (O5 layout)
// shared by every kernel benchmark, so the arms replay byte-identical
// streams.
var (
	kernelRecordingOnce sync.Once
	kernelRecordingVal  *trace.Recording
	kernelRecordingErr  error
)

func kernelBenchRecording(b testing.TB) *trace.Recording {
	b.Helper()
	kernelRecordingOnce.Do(func() {
		opts := harnessBenchOpts(1, true)
		w := WiscLarge1(opts.DB)
		img := program.LayoutO5(w.NewRegistry())
		r := trace.NewRecorder()
		if err := w.Run(img, r); err != nil {
			kernelRecordingErr = err
			return
		}
		kernelRecordingVal, kernelRecordingErr = r.Finish()
	})
	if kernelRecordingErr != nil {
		b.Fatal(kernelRecordingErr)
	}
	return kernelRecordingVal
}

// mallocCount reads the cumulative heap-allocation counter, so a
// benchmark can attribute allocations to the measured region only (the
// per-iteration cpu.New / refsim.New setup is excluded by sampling
// around the replay call).
func mallocCount() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// benchKernelReplay measures full-trace replay into a fresh kernel per
// iteration, attributing wall time and allocations to the replay alone.
// BENCH_kernel.json records the fastest iteration, not the mean: on a
// shared machine the mean absorbs scheduler preemptions that have
// nothing to do with the kernel, while the minimum of many whole-trace
// replays converges on the code's actual cost. Both arms are measured
// the same way, so the speedup ratio is min/min.
func benchKernelReplay(b *testing.B, name string, consume func(rec *trace.Recording) error) {
	rec := kernelBenchRecording(b)
	b.ResetTimer()
	var wall, best time.Duration
	var allocs uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		runtime.GC()
		m0 := mallocCount()
		t0 := time.Now()
		b.StartTimer()
		if err := consume(rec); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		d := time.Since(t0)
		wall += d
		if best == 0 || d < best {
			best = d
		}
		allocs += mallocCount() - m0
		b.StartTimer()
	}
	events := rec.Events()
	recordKernelBench(name, best, events, allocs/uint64(b.N))
	b.ReportMetric(float64(events)*float64(b.N)/wall.Seconds()/1e6, "Mevents/s")
	b.ReportMetric(float64(events)/best.Seconds()/1e6, "Mevents/s-best")
	b.ReportMetric(float64(allocs)/float64(b.N)/float64(events), "allocs/event")
}

// BenchmarkKernelReplay is the headline optimized path: batched decode
// dispatching into the flat-cache, ring-FIFO CPU. NL_4 keeps the
// prefetch engine cheap so the kernel itself dominates.
func BenchmarkKernelReplay(b *testing.B) {
	benchKernelReplay(b, "replay_optimized", func(rec *trace.Recording) error {
		c := cpu.New(cpu.DefaultConfig(), prefetch.NewNL(4))
		if err := rec.Replay(c); err != nil {
			return err
		}
		c.Finish()
		return nil
	})
}

// BenchmarkKernelReplayBaseline replays the same stream through the
// frozen pre-optimization path end to end: refsim.Replay's per-event
// dispatch and old decoder into refsim's map-indexed-queue, AoS-cache
// CPU. Nothing in this arm touches code the PR optimized.
func BenchmarkKernelReplayBaseline(b *testing.B) {
	rec := kernelBenchRecording(b)
	var raw bytes.Buffer
	if _, err := rec.WriteTo(&raw); err != nil {
		b.Fatal(err)
	}
	benchKernelReplay(b, "replay_baseline", func(rec *trace.Recording) error {
		c := refsim.New(cpu.DefaultConfig(), prefetch.NewNL(4))
		if err := refsim.Replay(raw.Bytes(), c); err != nil {
			return err
		}
		c.Finish()
		return nil
	})
}

// BenchmarkKernelDecode isolates the batched decoder: replay into a
// no-op sink, so the number is pure varint decode + batch dispatch.
func BenchmarkKernelDecode(b *testing.B) {
	rec := kernelBenchRecording(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rec.ReplayBatch(func([]trace.Event) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rec.Events())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// benchKernelEvents drives a warmed CPU with a synthetic event loop and
// records ns/event and allocs/event for one hot path.
func benchKernelEvents(b *testing.B, name string, next func(i int) trace.Event) {
	c := cpu.New(cpu.DefaultConfig(), prefetch.NewNL(4))
	for i := 0; i < 4096; i++ { // warm caches, ring, and index
		c.Event(next(i))
	}
	runtime.GC()
	m0 := mallocCount()
	t0 := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Event(next(i))
	}
	b.StopTimer()
	wall := time.Since(t0)
	allocs := mallocCount() - m0
	recordKernelBench(name, wall, int64(b.N), allocs)
	b.ReportMetric(float64(allocs)/float64(b.N), "allocs/event")
}

// BenchmarkKernelFetch exercises the instruction-fetch path: runs
// sweeping a 32KB-footprint loop, so the mix of L1I hits, delayed hits
// and misses (plus NL issue/squash) stays steady.
func BenchmarkKernelFetch(b *testing.B) {
	benchKernelEvents(b, "fetch", func(i int) trace.Event {
		return trace.Event{Kind: trace.KindRun, Addr: 0x400000 + isa.Addr((i&1023)*32), N: 8}
	})
}

// BenchmarkKernelData exercises the data-reference path over a 128KB
// footprint (4× L1D), so every step mixes hits with miss+evict traffic.
func BenchmarkKernelData(b *testing.B) {
	benchKernelEvents(b, "data", func(i int) trace.Event {
		return trace.Event{
			Kind: trace.KindData, Addr: 0x800000 + isa.Addr((i&4095)*32),
			N: 16, Taken: i&3 == 0,
		}
	})
}
