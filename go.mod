module cgp

go 1.22
