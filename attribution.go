package cgp

import (
	"context"
	"fmt"
	"sort"

	"cgp/internal/cpu"
	"cgp/internal/isa"
)

// Per-function attribution reporting: the table behind "which functions
// does CGP actually help?". The rows come from Stats.Attribution (see
// internal/cpu/attribution.go for the demand-side vs issue-side
// semantics), resolved to function names through the workload's laid-out
// image, ranked by prefetch-relevant demand traffic and cut to the
// requested top N. Everything here is derived from deterministic
// simulator counters, so the table is replay-stable and safe to embed
// in report bodies.

// AttrRow is one function's row of an attribution table.
type AttrRow struct {
	// Name is the registry name of the function ("(pre-main)" for the
	// synthetic address-0 row that collects fetches before the first
	// call event).
	Name string
	// Func is the function's start address in this image.
	Func isa.Addr
	// FuncAttribution carries the raw counters and derived metrics.
	cpu.FuncAttribution
}

// AttributionTable is the per-function prefetch breakdown of one
// (workload, config) cell.
type AttributionTable struct {
	Workload string
	Config   string
	// TotalFuncs is how many functions were attributed before the
	// top-N cut.
	TotalFuncs int
	Rows       []AttrRow
}

// attrDemand ranks rows: the demand fetches that the prefetcher could
// have served (misses it didn't, plus hits and delayed hits it did).
func attrDemand(f *cpu.FuncAttribution) int64 {
	return f.Misses + f.PrefHits + f.DelayedHits
}

// AttributionTable simulates (or serves from cache) one cell and
// returns its top-n attribution rows, ranked by prefetch-relevant
// demand traffic (descending, ties broken by start address so the
// order is deterministic). n <= 0 means every function. The runner
// must have been built with Attribution set; otherwise the result
// carries no rows to tabulate and an error says so.
func (r *Runner) AttributionTable(ctx context.Context, w *Workload, cfg Config, n int) (*AttributionTable, error) {
	if !r.opts.Attribution {
		return nil, fmt.Errorf("cgp: attribution table requires RunnerOptions.Attribution")
	}
	cfg = cfg.withDefaults()
	res, err := r.Run(ctx, w, cfg)
	if err != nil {
		return nil, err
	}
	img, err := r.imageFor(ctx, w, cfg.Layout)
	if err != nil {
		return nil, err
	}
	t := &AttributionTable{
		Workload:   w.Name,
		Config:     cfg.Label(),
		TotalFuncs: len(res.CPU.Attribution),
	}
	rows := make([]AttrRow, 0, len(res.CPU.Attribution))
	for _, fa := range res.CPU.Attribution {
		name := "(pre-main)"
		if fa.Func != 0 {
			if fn, ok := img.FuncAt(fa.Func); ok && img.Start(fn) == fa.Func {
				name = img.Registry().Name(fn)
			} else {
				name = fmt.Sprintf("%#x", uint64(fa.Func))
			}
		}
		rows = append(rows, AttrRow{Name: name, Func: fa.Func, FuncAttribution: fa})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		di, dj := attrDemand(&rows[i].FuncAttribution), attrDemand(&rows[j].FuncAttribution)
		if di != dj {
			return di > dj
		}
		return rows[i].Func < rows[j].Func
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	t.Rows = rows
	return t, nil
}

// QueryAttributionTable is the per-trace-ID prefetch breakdown of one
// (workload, config) cell — the library-level form of `cgptrace replay
// -by-query`. Rows exist only for workloads whose trace carries query
// tags (live captures of trace-tagged traffic); they arrive from the
// simulator already sorted by trace ID, so the table is replay-stable.
type QueryAttributionTable struct {
	Workload string
	Config   string
	Rows     []cpu.QueryAttribution
}

// QueryAttributionTable simulates (or serves from cache) one cell and
// returns its per-query attribution rows. The runner must have been
// built with Attribution set, and the workload's trace must carry
// query tags (a capture of cgpserve traffic driven by -traced
// clients); both absences are errors, not empty tables, because a
// silently empty join defeats the attribution linkage's whole point.
func (r *Runner) QueryAttributionTable(ctx context.Context, w *Workload, cfg Config) (*QueryAttributionTable, error) {
	if !r.opts.Attribution {
		return nil, fmt.Errorf("cgp: query attribution table requires RunnerOptions.Attribution")
	}
	cfg = cfg.withDefaults()
	res, err := r.Run(ctx, w, cfg)
	if err != nil {
		return nil, err
	}
	if len(res.CPU.QueryAttr) == 0 {
		return nil, fmt.Errorf("cgp: workload %q carries no query trace tags (capture trace-tagged traffic: cgpserve drive -traced)", w.Name)
	}
	return &QueryAttributionTable{
		Workload: w.Name,
		Config:   cfg.Label(),
		Rows:     res.CPU.QueryAttr,
	}, nil
}

// Markdown rendering lives with the rest of the report layer in
// report.go.
