package cgp

import (
	"fmt"
	"sync"
)

// Row is one bar of a figure: a workload under a configuration.
type Row struct {
	Workload string
	Config   string
	// Cycles is total execution time (Figures 4, 5, 6, 10).
	Cycles int64
	// Misses is the I-cache demand-miss count (Figure 7).
	Misses int64
	// PrefHits/DelayedHits/Useless break down prefetches (Figure 8).
	PrefHits    int64
	DelayedHits int64
	Useless     int64
	// Portion marks Figure 9 rows ("nl" or "cghc").
	Portion string
	// Speedup is relative to the figure's per-workload baseline.
	Speedup float64
	// Result links the full measurement.
	Result *Result `json:"-"`
}

// Figure is one reproduced experiment.
type Figure struct {
	ID    string
	Title string
	// Baseline names the config each workload's Speedup is relative to.
	Baseline string
	Rows     []Row
}

// fig4Configs are the six bars of Figure 4 per workload.
func fig4Configs() []Config {
	return []Config{
		{Layout: LayoutO5},
		{Layout: LayoutOM},
		{Layout: LayoutO5, Prefetcher: PrefCGP, Degree: 2},
		{Layout: LayoutO5, Prefetcher: PrefCGP, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 2},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
	}
}

// runGrid measures every workload under every config — fanned out
// through RunAll — computing speedups against the first config.
func (r *Runner) runGrid(id, title string, workloads []*Workload, configs []Config) (*Figure, error) {
	return r.runGridLabeled(id, title, workloads, configs, Config.Label)
}

// runGridLabeled is runGrid with a custom per-config display label
// (the CGHC sweeps label rows by CGHC geometry, not config Label).
// Rows appear in (workload, config) input order regardless of which
// simulations finished first.
func (r *Runner) runGridLabeled(id, title string, workloads []*Workload, configs []Config, label func(Config) string) (*Figure, error) {
	jobs := make([]Job, 0, len(workloads)*len(configs))
	for _, w := range workloads {
		for _, cfg := range configs {
			jobs = append(jobs, Job{Workload: w, Config: cfg})
		}
	}
	results, err := r.RunAll(jobs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: id, Title: title, Baseline: label(configs[0])}
	i := 0
	for _, w := range workloads {
		base := results[i].CPU.Cycles
		for _, cfg := range configs {
			res := results[i]
			i++
			tp := res.CPU.TotalPrefetch()
			fig.Rows = append(fig.Rows, Row{
				Workload:    w.Name,
				Config:      label(cfg),
				Cycles:      int64(res.CPU.Cycles),
				Misses:      res.CPU.ICacheMisses,
				PrefHits:    tp.PrefHits,
				DelayedHits: tp.DelayedHits,
				Useless:     tp.Useless,
				Speedup:     float64(base) / float64(res.CPU.Cycles),
				Result:      res,
			})
		}
	}
	return fig, nil
}

// Figure4 reproduces the O5 / OM / CGP_2 / CGP_4 cycle comparison on
// the four database workloads.
func (r *Runner) Figure4() (*Figure, error) {
	return r.runGrid("fig4", "Performance comparison of O5, OM and CGP",
		r.DBWorkloads(), fig4Configs())
}

// Figure5 reproduces the CGHC design-space sweep: CGP_4 on the OM
// binary with five CGHC configurations.
func (r *Runner) Figure5() (*Figure, error) {
	cghcs := []CGHCConfig{
		{L1Bytes: 1 * 1024},
		{L1Bytes: 32 * 1024},
		{L1Bytes: 1 * 1024, L2Bytes: 16 * 1024},
		{L1Bytes: 2 * 1024, L2Bytes: 32 * 1024},
		{Infinite: true},
	}
	configs := make([]Config, len(cghcs))
	for i, hc := range cghcs {
		configs[i] = Config{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4, CGHC: hc}
	}
	return r.runGridLabeled("fig5", "Performance of five CGHC configurations",
		r.DBWorkloads(), configs, func(c Config) string { return c.CGHC.String() })
}

// Figure6 reproduces the NL-vs-CGP comparison: O5, OM, OM+NL_2/4,
// OM+CGP_2/4 and the perfect I-cache.
func (r *Runner) Figure6() (*Figure, error) {
	configs := []Config{
		{Layout: LayoutO5},
		{Layout: LayoutOM},
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 2},
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 2},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
		{Layout: LayoutOM, PerfectICache: true},
	}
	return r.runGrid("fig6", "Performance comparison of O5, OM, NL and CGP",
		r.DBWorkloads(), configs)
}

// Figure7 reproduces the I-cache miss comparison of O5, OM, OM+NL_4 and
// OM+CGP_4.
func (r *Runner) Figure7() (*Figure, error) {
	configs := []Config{
		{Layout: LayoutO5},
		{Layout: LayoutOM},
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
	}
	return r.runGrid("fig7", "I-cache miss comparison of O5, OM, NL and CGP",
		r.DBWorkloads(), configs)
}

// Figure8 reproduces the prefetch-effectiveness breakdown (pref hits /
// delayed hits / useless) for NL_2, NL_4, CGP_2, CGP_4 on the OM binary.
func (r *Runner) Figure8() (*Figure, error) {
	configs := []Config{
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 2},
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 2},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
	}
	return r.runGrid("fig8", "Prefetch effectiveness of NL and CGP",
		r.DBWorkloads(), configs)
}

// Figure9 reproduces the CGP_4 prefetch split: the NL portion vs the
// CGHC portion, each with useful (hits+delayed) and useless counts.
func (r *Runner) Figure9() (*Figure, error) {
	fig := &Figure{ID: "fig9", Title: "CGP_4 prefetches due to NL and CGHC", Baseline: "O5+OM+CGP_4"}
	ws := r.DBWorkloads()
	jobs := make([]Job, len(ws))
	for i, w := range ws {
		jobs[i] = Job{Workload: w, Config: Config{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4}}
	}
	results, err := r.RunAll(jobs)
	if err != nil {
		return nil, err
	}
	for i, w := range ws {
		res := results[i]
		s := res.CPU
		fig.Rows = append(fig.Rows,
			Row{
				Workload: w.Name, Config: "CGP_4/NL-portion", Portion: "nl",
				PrefHits: s.NL.PrefHits, DelayedHits: s.NL.DelayedHits,
				Useless: s.NL.Useless, Result: res,
			},
			Row{
				Workload: w.Name, Config: "CGP_4/CGHC-portion", Portion: "cghc",
				PrefHits: s.CGHC.PrefHits, DelayedHits: s.CGHC.DelayedHits,
				Useless: s.CGHC.Useless, Result: res,
			})
	}
	return fig, nil
}

// Figure10 reproduces the CPU2000 study: O5+OM, OM+NL_4, OM+CGP_4 and
// perfect I-cache on the seven SPEC stand-ins.
func (r *Runner) Figure10() (*Figure, error) {
	configs := []Config{
		{Layout: LayoutOM},
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
		{Layout: LayoutOM, PerfectICache: true},
	}
	return r.runGrid("fig10", "Effectiveness of CGP on CPU2000 applications",
		r.CPU2000Workloads(), configs)
}

// RunAheadAblation reproduces the §5.6 experiment whose results the
// paper describes but does not plot: run-ahead NL is much worse than
// plain NL on the database workloads.
func (r *Runner) RunAheadAblation() (*Figure, error) {
	configs := []Config{
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefRunAheadNL, Degree: 4, RunAheadM: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
	}
	return r.runGrid("sec5.6", "Run-ahead NL ablation", r.DBWorkloads(), configs)
}

// figureGen names one figure generator.
type figureGen struct {
	name string
	fn   func() (*Figure, error)
}

// runFigureGens evaluates generators concurrently, preserving input
// order in the returned slice. Figures sharing (workload, config)
// cells share the cached simulations, so concurrent generation does
// the same total work as sequential generation — just overlapped.
func runFigureGens(gens []figureGen) ([]*Figure, error) {
	out := make([]*Figure, len(gens))
	errs := make([]error, len(gens))
	var wg sync.WaitGroup
	for i, g := range gens {
		wg.Add(1)
		go func(i int, g figureGen) {
			defer wg.Done()
			out[i], errs[i] = g.fn()
		}(i, g)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cgp: %s: %w", gens[i].name, err)
		}
	}
	return out, nil
}

// AllFigures runs every experiment in paper order. The generators run
// concurrently; results are deterministic and identical to generating
// each figure sequentially.
func (r *Runner) AllFigures() ([]*Figure, error) {
	return runFigureGens([]figureGen{
		{"fig4", r.Figure4}, {"fig5", r.Figure5}, {"fig6", r.Figure6},
		{"fig7", r.Figure7}, {"fig8", r.Figure8}, {"fig9", r.Figure9},
		{"fig10", r.Figure10}, {"sec5.6", r.RunAheadAblation},
	})
}
