package cgp

import "fmt"

// Row is one bar of a figure: a workload under a configuration.
type Row struct {
	Workload string
	Config   string
	// Cycles is total execution time (Figures 4, 5, 6, 10).
	Cycles int64
	// Misses is the I-cache demand-miss count (Figure 7).
	Misses int64
	// PrefHits/DelayedHits/Useless break down prefetches (Figure 8).
	PrefHits    int64
	DelayedHits int64
	Useless     int64
	// Portion marks Figure 9 rows ("nl" or "cghc").
	Portion string
	// Speedup is relative to the figure's per-workload baseline.
	Speedup float64
	// Result links the full measurement.
	Result *Result `json:"-"`
}

// Figure is one reproduced experiment.
type Figure struct {
	ID    string
	Title string
	// Baseline names the config each workload's Speedup is relative to.
	Baseline string
	Rows     []Row
}

// fig4Configs are the six bars of Figure 4 per workload.
func fig4Configs() []Config {
	return []Config{
		{Layout: LayoutO5},
		{Layout: LayoutOM},
		{Layout: LayoutO5, Prefetcher: PrefCGP, Degree: 2},
		{Layout: LayoutO5, Prefetcher: PrefCGP, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 2},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
	}
}

// runGrid measures every workload under every config, computing
// speedups against the first config.
func (r *Runner) runGrid(id, title string, workloads []*Workload, configs []Config) (*Figure, error) {
	fig := &Figure{ID: id, Title: title, Baseline: configs[0].Label()}
	for _, w := range workloads {
		var base int64
		for i, cfg := range configs {
			res, err := r.Run(w, cfg)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base = res.CPU.Cycles
			}
			tp := res.CPU.TotalPrefetch()
			fig.Rows = append(fig.Rows, Row{
				Workload:    w.Name,
				Config:      cfg.Label(),
				Cycles:      res.CPU.Cycles,
				Misses:      res.CPU.ICacheMisses,
				PrefHits:    tp.PrefHits,
				DelayedHits: tp.DelayedHits,
				Useless:     tp.Useless,
				Speedup:     float64(base) / float64(res.CPU.Cycles),
				Result:      res,
			})
		}
	}
	return fig, nil
}

// Figure4 reproduces the O5 / OM / CGP_2 / CGP_4 cycle comparison on
// the four database workloads.
func (r *Runner) Figure4() (*Figure, error) {
	return r.runGrid("fig4", "Performance comparison of O5, OM and CGP",
		r.DBWorkloads(), fig4Configs())
}

// Figure5 reproduces the CGHC design-space sweep: CGP_4 on the OM
// binary with five CGHC configurations.
func (r *Runner) Figure5() (*Figure, error) {
	cghcs := []CGHCConfig{
		{L1Bytes: 1 * 1024},
		{L1Bytes: 32 * 1024},
		{L1Bytes: 1 * 1024, L2Bytes: 16 * 1024},
		{L1Bytes: 2 * 1024, L2Bytes: 32 * 1024},
		{Infinite: true},
	}
	fig := &Figure{ID: "fig5", Title: "Performance of five CGHC configurations", Baseline: "CGHC-1K"}
	for _, w := range r.DBWorkloads() {
		var base int64
		for i, hc := range cghcs {
			cfg := Config{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4, CGHC: hc}
			res, err := r.Run(w, cfg)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base = res.CPU.Cycles
			}
			fig.Rows = append(fig.Rows, Row{
				Workload: w.Name,
				Config:   hc.String(),
				Cycles:   res.CPU.Cycles,
				Misses:   res.CPU.ICacheMisses,
				Speedup:  float64(base) / float64(res.CPU.Cycles),
				Result:   res,
			})
		}
	}
	return fig, nil
}

// Figure6 reproduces the NL-vs-CGP comparison: O5, OM, OM+NL_2/4,
// OM+CGP_2/4 and the perfect I-cache.
func (r *Runner) Figure6() (*Figure, error) {
	configs := []Config{
		{Layout: LayoutO5},
		{Layout: LayoutOM},
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 2},
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 2},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
		{Layout: LayoutOM, PerfectICache: true},
	}
	return r.runGrid("fig6", "Performance comparison of O5, OM, NL and CGP",
		r.DBWorkloads(), configs)
}

// Figure7 reproduces the I-cache miss comparison of O5, OM, OM+NL_4 and
// OM+CGP_4.
func (r *Runner) Figure7() (*Figure, error) {
	configs := []Config{
		{Layout: LayoutO5},
		{Layout: LayoutOM},
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
	}
	return r.runGrid("fig7", "I-cache miss comparison of O5, OM, NL and CGP",
		r.DBWorkloads(), configs)
}

// Figure8 reproduces the prefetch-effectiveness breakdown (pref hits /
// delayed hits / useless) for NL_2, NL_4, CGP_2, CGP_4 on the OM binary.
func (r *Runner) Figure8() (*Figure, error) {
	configs := []Config{
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 2},
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 2},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
	}
	return r.runGrid("fig8", "Prefetch effectiveness of NL and CGP",
		r.DBWorkloads(), configs)
}

// Figure9 reproduces the CGP_4 prefetch split: the NL portion vs the
// CGHC portion, each with useful (hits+delayed) and useless counts.
func (r *Runner) Figure9() (*Figure, error) {
	fig := &Figure{ID: "fig9", Title: "CGP_4 prefetches due to NL and CGHC", Baseline: "O5+OM+CGP_4"}
	for _, w := range r.DBWorkloads() {
		res, err := r.Run(w, Config{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4})
		if err != nil {
			return nil, err
		}
		s := res.CPU
		fig.Rows = append(fig.Rows,
			Row{
				Workload: w.Name, Config: "CGP_4/NL-portion", Portion: "nl",
				PrefHits: s.NL.PrefHits, DelayedHits: s.NL.DelayedHits,
				Useless: s.NL.Useless, Result: res,
			},
			Row{
				Workload: w.Name, Config: "CGP_4/CGHC-portion", Portion: "cghc",
				PrefHits: s.CGHC.PrefHits, DelayedHits: s.CGHC.DelayedHits,
				Useless: s.CGHC.Useless, Result: res,
			})
	}
	return fig, nil
}

// Figure10 reproduces the CPU2000 study: O5+OM, OM+NL_4, OM+CGP_4 and
// perfect I-cache on the seven SPEC stand-ins.
func (r *Runner) Figure10() (*Figure, error) {
	configs := []Config{
		{Layout: LayoutOM},
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
		{Layout: LayoutOM, PerfectICache: true},
	}
	return r.runGrid("fig10", "Effectiveness of CGP on CPU2000 applications",
		r.CPU2000Workloads(), configs)
}

// RunAheadAblation reproduces the §5.6 experiment whose results the
// paper describes but does not plot: run-ahead NL is much worse than
// plain NL on the database workloads.
func (r *Runner) RunAheadAblation() (*Figure, error) {
	configs := []Config{
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefRunAheadNL, Degree: 4, RunAheadM: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
	}
	return r.runGrid("sec5.6", "Run-ahead NL ablation", r.DBWorkloads(), configs)
}

// AllFigures runs every experiment in paper order.
func (r *Runner) AllFigures() ([]*Figure, error) {
	type gen struct {
		name string
		fn   func() (*Figure, error)
	}
	gens := []gen{
		{"fig4", r.Figure4}, {"fig5", r.Figure5}, {"fig6", r.Figure6},
		{"fig7", r.Figure7}, {"fig8", r.Figure8}, {"fig9", r.Figure9},
		{"fig10", r.Figure10}, {"sec5.6", r.RunAheadAblation},
	}
	out := make([]*Figure, 0, len(gens))
	for _, g := range gens {
		fig, err := g.fn()
		if err != nil {
			return nil, fmt.Errorf("cgp: %s: %w", g.name, err)
		}
		out = append(out, fig)
	}
	return out, nil
}
