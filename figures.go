package cgp

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Row is one bar of a figure: a workload under a configuration.
type Row struct {
	Workload string
	Config   string
	// Cycles is total execution time (Figures 4, 5, 6, 10).
	Cycles int64
	// Misses is the I-cache demand-miss count (Figure 7).
	Misses int64
	// PrefHits/DelayedHits/Useless break down prefetches (Figure 8).
	PrefHits    int64
	DelayedHits int64
	Useless     int64
	// Portion marks Figure 9 rows ("nl" or "cghc").
	Portion string
	// Speedup is relative to the figure's per-workload baseline; 0 when
	// this row or its baseline failed.
	Speedup float64
	// Estimated marks a sampled row: Cycles (and the Speedup built on
	// it) is a whole-run estimate from periodic measurement windows,
	// not a measured count, and CyclesCI is the relative half-width of
	// its 95% confidence interval (0.052 = ±5.2%). Renderers must keep
	// the annotation visible — an estimate may never print as a
	// measurement.
	Estimated bool    `json:",omitempty"`
	CyclesCI  float64 `json:",omitempty"`
	// Err marks a degraded row: the cell's simulation failed (panic,
	// cancellation, corruption past the retry budget) and the numeric
	// columns are absent. Degraded rows are rendered explicitly rather
	// than omitted, so a partial report never silently looks complete.
	Err string `json:",omitempty"`
	// Result links the full measurement (nil for degraded rows).
	Result *Result `json:"-"`
}

// Failed reports whether this row is degraded.
func (r *Row) Failed() bool { return r.Err != "" }

// Figure is one reproduced experiment.
type Figure struct {
	ID    string
	Title string
	// Baseline names the config each workload's Speedup is relative to.
	Baseline string
	Rows     []Row
}

// Degraded returns how many of the figure's rows failed.
func (f *Figure) Degraded() int {
	n := 0
	for i := range f.Rows {
		if f.Rows[i].Failed() {
			n++
		}
	}
	return n
}

// Sampled returns how many of the figure's rows carry sampled
// estimates rather than measured counts.
func (f *Figure) Sampled() int {
	n := 0
	for i := range f.Rows {
		if f.Rows[i].Estimated {
			n++
		}
	}
	return n
}

// rowErr renders a job failure for a degraded row's Err field.
func rowErr(err *JobError) string {
	if err == nil {
		return "failed"
	}
	if err.Panic != nil {
		return fmt.Sprintf("panic: %v", err.Panic)
	}
	return err.Err.Error()
}

// resultCycles returns one result's run-length figure for reporting:
// the measured cycle count for a full-detail run, or the estimated
// whole-run cycles (marked estimated, with its relative 95% CI) for a
// sampled run. The int64 conversion out of units.EstCycles is the
// explicit, sanctioned exit from the typed estimate — downstream the
// value travels with Estimated set, never as a bare measurement.
func resultCycles(res *Result) (cycles int64, estimated bool, relCI float64) {
	if sm := res.CPU.Sample; sm != nil {
		return int64(sm.EstCycles), true, sm.CycleRelCI
	}
	return int64(res.CPU.Cycles), false, 0
}

// rowMisses returns the miss count a row reports: measured for full
// runs, the whole-run estimate for sampled runs (whose raw counter
// covers only the decoded spans).
func rowMisses(res *Result) int64 {
	if sm := res.CPU.Sample; sm != nil {
		return sm.EstIMisses
	}
	return res.CPU.ICacheMisses
}

// fig4Configs are the six bars of Figure 4 per workload.
func fig4Configs() []Config {
	return []Config{
		{Layout: LayoutO5},
		{Layout: LayoutOM},
		{Layout: LayoutO5, Prefetcher: PrefCGP, Degree: 2},
		{Layout: LayoutO5, Prefetcher: PrefCGP, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 2},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
	}
}

// runGrid measures every workload under every config — fanned out
// through RunAll — computing speedups against the first config.
func (r *Runner) runGrid(ctx context.Context, id, title string, workloads []*Workload, configs []Config) (*Figure, error) {
	return r.runGridLabeled(ctx, id, title, workloads, configs, Config.Label)
}

// runGridLabeled is runGrid with a custom per-config display label
// (the CGHC sweeps label rows by CGHC geometry, not config Label).
// Rows appear in (workload, config) input order regardless of which
// simulations finished first.
//
// A partially failed campaign still yields a figure: failed cells
// become degraded rows (Err set, numbers absent) and the campaign's
// *CampaignError is returned alongside the figure so the caller can
// report and exit non-zero. Only a total failure returns a nil figure.
func (r *Runner) runGridLabeled(ctx context.Context, id, title string, workloads []*Workload, configs []Config, label func(Config) string) (*Figure, error) {
	// A figure span groups the whole grid campaign in the Chrome trace,
	// so the Perfetto timeline shows which figure each batch served.
	sp := r.obsSpan("figure", "figure").Arg("id", id).
		Arg("cells", fmt.Sprint(len(workloads)*len(configs)))
	defer sp.End()
	// Apply the campaign's sampling schedule when this figure is in the
	// sampled set. Configs that already carry their own schedule keep
	// it; the input slice is never mutated.
	if scfg := r.opts.samplingFor(id); scfg.Enabled() {
		sampled := make([]Config, len(configs))
		for i, cfg := range configs {
			if !cfg.Sampling.Enabled() {
				cfg.Sampling = scfg
			}
			sampled[i] = cfg
		}
		configs = sampled
	}
	jobs := make([]Job, 0, len(workloads)*len(configs))
	for _, w := range workloads {
		for _, cfg := range configs {
			jobs = append(jobs, Job{Workload: w, Config: cfg})
		}
	}
	results, err := r.RunAll(ctx, jobs)
	failed := map[int]*JobError{}
	if err != nil {
		var camp *CampaignError
		if !errors.As(err, &camp) {
			return nil, err
		}
		for _, je := range camp.Jobs {
			failed[je.Index] = je
		}
	}
	fig := &Figure{ID: id, Title: title, Baseline: label(configs[0])}
	i := 0
	for _, w := range workloads {
		base := results[i] // first config is the per-workload baseline
		for _, cfg := range configs {
			res := results[i]
			je := failed[i]
			i++
			if res == nil {
				fig.Rows = append(fig.Rows, Row{Workload: w.Name, Config: label(cfg), Err: rowErr(je)})
				continue
			}
			cycles, estimated, relCI := resultCycles(res)
			speedup := 0.0
			if base != nil {
				bc, _, _ := resultCycles(base)
				speedup = float64(bc) / float64(cycles)
			}
			tp := res.CPU.TotalPrefetch()
			fig.Rows = append(fig.Rows, Row{
				Workload:    w.Name,
				Config:      label(cfg),
				Cycles:      cycles,
				Misses:      rowMisses(res),
				PrefHits:    tp.PrefHits,
				DelayedHits: tp.DelayedHits,
				Useless:     tp.Useless,
				Speedup:     speedup,
				Estimated:   estimated,
				CyclesCI:    relCI,
				Result:      res,
			})
		}
	}
	return fig, err
}

// Figure4 reproduces the O5 / OM / CGP_2 / CGP_4 cycle comparison on
// the four database workloads.
func (r *Runner) Figure4(ctx context.Context) (*Figure, error) {
	return r.runGrid(ctx, "fig4", "Performance comparison of O5, OM and CGP",
		r.DBWorkloads(), fig4Configs())
}

// fig5Configs are the five CGHC design points of Figure 5.
func fig5Configs() []Config {
	cghcs := []CGHCConfig{
		{L1Bytes: 1 * 1024},
		{L1Bytes: 32 * 1024},
		{L1Bytes: 1 * 1024, L2Bytes: 16 * 1024},
		{L1Bytes: 2 * 1024, L2Bytes: 32 * 1024},
		{Infinite: true},
	}
	configs := make([]Config, len(cghcs))
	for i, hc := range cghcs {
		configs[i] = Config{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4, CGHC: hc}
	}
	return configs
}

// Figure5 reproduces the CGHC design-space sweep: CGP_4 on the OM
// binary with five CGHC configurations.
func (r *Runner) Figure5(ctx context.Context) (*Figure, error) {
	return r.runGridLabeled(ctx, "fig5", "Performance of five CGHC configurations",
		r.DBWorkloads(), fig5Configs(), func(c Config) string { return c.CGHC.String() })
}

// Figure6 reproduces the NL-vs-CGP comparison: O5, OM, OM+NL_2/4,
// OM+CGP_2/4 and the perfect I-cache.
func (r *Runner) Figure6(ctx context.Context) (*Figure, error) {
	return r.runGrid(ctx, "fig6", "Performance comparison of O5, OM, NL and CGP",
		r.DBWorkloads(), fig6Configs())
}

// fig6Configs are the seven bars of Figure 6 per workload.
func fig6Configs() []Config {
	return []Config{
		{Layout: LayoutO5},
		{Layout: LayoutOM},
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 2},
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 2},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
		{Layout: LayoutOM, PerfectICache: true},
	}
}

// Figure7 reproduces the I-cache miss comparison of O5, OM, OM+NL_4 and
// OM+CGP_4.
func (r *Runner) Figure7(ctx context.Context) (*Figure, error) {
	return r.runGrid(ctx, "fig7", "I-cache miss comparison of O5, OM, NL and CGP",
		r.DBWorkloads(), fig7Configs())
}

// fig7Configs are the four bars of Figure 7 per workload.
func fig7Configs() []Config {
	return []Config{
		{Layout: LayoutO5},
		{Layout: LayoutOM},
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
	}
}

// Figure8 reproduces the prefetch-effectiveness breakdown (pref hits /
// delayed hits / useless) for NL_2, NL_4, CGP_2, CGP_4 on the OM binary.
func (r *Runner) Figure8(ctx context.Context) (*Figure, error) {
	return r.runGrid(ctx, "fig8", "Prefetch effectiveness of NL and CGP",
		r.DBWorkloads(), fig8Configs())
}

// fig8Configs are the four bars of Figure 8 per workload.
func fig8Configs() []Config {
	return []Config{
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 2},
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 2},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
	}
}

// Figure9 reproduces the CGP_4 prefetch split: the NL portion vs the
// CGHC portion, each with useful (hits+delayed) and useless counts.
func (r *Runner) Figure9(ctx context.Context) (*Figure, error) {
	fig := &Figure{ID: "fig9", Title: "CGP_4 prefetches due to NL and CGHC", Baseline: "O5+OM+CGP_4"}
	ws := r.DBWorkloads()
	jobs := make([]Job, len(ws))
	for i, w := range ws {
		jobs[i] = Job{Workload: w, Config: fig9Config()}
	}
	results, err := r.RunAll(ctx, jobs)
	failed := map[int]*JobError{}
	if err != nil {
		var camp *CampaignError
		if !errors.As(err, &camp) {
			return nil, err
		}
		for _, je := range camp.Jobs {
			failed[je.Index] = je
		}
	}
	for i, w := range ws {
		res := results[i]
		if res == nil {
			e := rowErr(failed[i])
			fig.Rows = append(fig.Rows,
				Row{Workload: w.Name, Config: "CGP_4/NL-portion", Portion: "nl", Err: e},
				Row{Workload: w.Name, Config: "CGP_4/CGHC-portion", Portion: "cghc", Err: e})
			continue
		}
		s := res.CPU
		fig.Rows = append(fig.Rows,
			Row{
				Workload: w.Name, Config: "CGP_4/NL-portion", Portion: "nl",
				PrefHits: s.NL.PrefHits, DelayedHits: s.NL.DelayedHits,
				Useless: s.NL.Useless, Result: res,
			},
			Row{
				Workload: w.Name, Config: "CGP_4/CGHC-portion", Portion: "cghc",
				PrefHits: s.CGHC.PrefHits, DelayedHits: s.CGHC.DelayedHits,
				Useless: s.CGHC.Useless, Result: res,
			})
	}
	return fig, err
}

// Figure10 reproduces the CPU2000 study: O5+OM, OM+NL_4, OM+CGP_4 and
// perfect I-cache on the seven SPEC stand-ins.
func (r *Runner) Figure10(ctx context.Context) (*Figure, error) {
	return r.runGrid(ctx, "fig10", "Effectiveness of CGP on CPU2000 applications",
		r.CPU2000Workloads(), fig10Configs())
}

// fig9Config is Figure 9's single configuration (full detail: its
// portion counters are whole-run measurements).
func fig9Config() Config {
	return Config{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4}
}

// fig10Configs are the four bars of Figure 10 per CPU2000 program.
func fig10Configs() []Config {
	return []Config{
		{Layout: LayoutOM},
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
		{Layout: LayoutOM, PerfectICache: true},
	}
}

// RunAheadAblation reproduces the §5.6 experiment whose results the
// paper describes but does not plot: run-ahead NL is much worse than
// plain NL on the database workloads.
func (r *Runner) RunAheadAblation(ctx context.Context) (*Figure, error) {
	return r.runGrid(ctx, "sec5.6", "Run-ahead NL ablation", r.DBWorkloads(), sec56Configs())
}

// sec56Configs are the three bars of the §5.6 run-ahead ablation.
func sec56Configs() []Config {
	return []Config{
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefRunAheadNL, Degree: 4, RunAheadM: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
	}
}

// figureGen names one figure generator.
type figureGen struct {
	name string
	fn   func(context.Context) (*Figure, error)
}

// runFigureGens evaluates generators concurrently, preserving input
// order among the figures it returns. Figures sharing (workload,
// config) cells share the cached simulations, so concurrent generation
// does the same total work as sequential generation — just overlapped.
//
// Failures degrade rather than abort: a generator that produced a
// partial figure contributes it (with degraded rows); only figures
// that failed outright are dropped. The returned error joins every
// generator failure, so callers get all completed work plus a full
// account of what is missing.
func runFigureGens(ctx context.Context, gens []figureGen) ([]*Figure, error) {
	out := make([]*Figure, len(gens))
	errs := make([]error, len(gens))
	var wg sync.WaitGroup
	for i, g := range gens {
		wg.Add(1)
		go func(i int, g figureGen) {
			defer wg.Done()
			out[i], errs[i] = g.fn(ctx)
		}(i, g)
	}
	wg.Wait()
	var figs []*Figure
	var failures []error
	for i := range gens {
		if out[i] != nil {
			figs = append(figs, out[i])
		}
		if errs[i] != nil {
			failures = append(failures, fmt.Errorf("cgp: %s: %w", gens[i].name, errs[i]))
		}
	}
	return figs, errors.Join(failures...)
}

// AllFigures runs every experiment in paper order. The generators run
// concurrently; results are deterministic and identical to generating
// each figure sequentially. On partial failure the completed figures
// are returned alongside the joined error.
func (r *Runner) AllFigures(ctx context.Context) ([]*Figure, error) {
	return runFigureGens(ctx, []figureGen{
		{"fig4", r.Figure4}, {"fig5", r.Figure5}, {"fig6", r.Figure6},
		{"fig7", r.Figure7}, {"fig8", r.Figure8}, {"fig9", r.Figure9},
		{"fig10", r.Figure10}, {"sec5.6", r.RunAheadAblation},
	})
}
