package cgp

import (
	"context"
	"testing"
)

func TestSoftwareCGPAblation(t *testing.T) {
	r := smallRunner()
	fig, err := r.SoftwareCGPAblation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Both CGP variants must beat NL (the baseline), and the software
	// variant — an unbounded static table with no CGHC conflicts and no
	// modelled instruction overhead — must be at least in hardware
	// CGP's neighbourhood.
	hw := fig.GeoSpeedup("O5+OM+CGP_4")
	sw := fig.GeoSpeedup("O5+OM+SWCGP_4")
	if hw <= 1.0 {
		t.Errorf("hardware CGP did not beat NL: %.3f", hw)
	}
	if sw <= 1.0 {
		t.Errorf("software CGP did not beat NL: %.3f", sw)
	}
	if sw < hw*0.95 {
		t.Errorf("software CGP (%.3f) far below hardware CGP (%.3f)", sw, hw)
	}
}

func TestFIFOPolicyAblation(t *testing.T) {
	r := smallRunner()
	fig, err := r.FIFOPolicyAblation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	prio := fig.GeoSpeedup("O5+OM+CGP_4+prio")
	l2only := fig.GeoSpeedup("O5+OM+CGP_4+l2only")
	// §3.3's argument: demand priority would buy little. Allow up to a
	// few percent either way.
	if prio < 0.97 || prio > 1.06 {
		t.Errorf("demand priority changed performance by too much: %.3f", prio)
	}
	// Prefetching into L2 only must clearly lose: the demand fetch
	// still pays the L2 hit.
	if l2only > 0.9 {
		t.Errorf("L2-only prefetching not clearly worse: %.3f", l2only)
	}
}

func TestCGHCWaysAblation(t *testing.T) {
	r := smallRunner()
	fig, err := r.CGHCWaysAblation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Associativity on the small CGHC helps at most marginally — the
	// finding that justifies the paper's direct-mapped choice.
	for _, ways := range []string{"CGHC-1K-2way", "CGHC-1K-4way"} {
		s := fig.GeoSpeedup(ways)
		if s < 0.97 || s > 1.08 {
			t.Errorf("%s speedup %.3f outside the marginal band", ways, s)
		}
	}
}

func TestCGHCSlotsAblation(t *testing.T) {
	r := smallRunner()
	fig, err := r.CGHCSlotsAblation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// More slots must never hurt meaningfully, and 8 slots (the paper's
	// choice) should be at least as good as 2.
	s8 := fig.GeoSpeedup("CGHC-2K+32K")
	if s8 < 0.99 {
		t.Errorf("8-slot CGHC slower than 2-slot: %.3f", s8)
	}
}

func TestExtensionFiguresRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := smallRunner()
	figs, err := r.ExtensionFigures(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 {
		t.Fatalf("got %d extension figures", len(figs))
	}
	for _, f := range figs {
		if len(f.Rows) == 0 {
			t.Errorf("%s has no rows", f.ID)
		}
		if f.Markdown() == "" {
			t.Errorf("%s renders empty", f.ID)
		}
	}
}

func TestSWCGPLabel(t *testing.T) {
	cfg := Config{Layout: LayoutOM, Prefetcher: PrefSoftwareCGP, Degree: 4}
	if got := cfg.Label(); got != "O5+OM+SWCGP_4" {
		t.Errorf("label = %q", got)
	}
	cfg = Config{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4, DemandPriority: true}
	if got := cfg.Label(); got != "O5+OM+CGP_4+prio" {
		t.Errorf("label = %q", got)
	}
}

func TestDegreeSweep(t *testing.T) {
	r := smallRunner()
	fig, err := r.DegreeSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 4*4 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// Higher degrees must issue more useless prefetches (pollution), and
	// CGP_4 must beat CGP_1 (timeliness).
	var useless [4]int64
	for _, row := range fig.Rows {
		for i, cfg := range []string{"O5+OM+CGP_1", "O5+OM+CGP_2", "O5+OM+CGP_4", "O5+OM+CGP_8"} {
			if row.Config == cfg {
				useless[i] += row.Useless
			}
		}
	}
	if useless[3] <= useless[0] {
		t.Errorf("CGP_8 useless (%d) not above CGP_1 (%d)", useless[3], useless[0])
	}
	if s := fig.GeoSpeedup("O5+OM+CGP_4"); s <= 1.0 {
		t.Errorf("CGP_4 (%.3f) not faster than CGP_1", s)
	}
}

func TestQuantumSweep(t *testing.T) {
	r := smallRunner()
	fig, err := r.QuantumSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 4 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// More frequent context switches (smaller quantum) must cost more
	// I-cache misses per instruction: the paper's premise.
	missRate := func(i int) float64 {
		res := fig.Rows[i].Result
		return float64(res.CPU.ICacheMisses) / float64(res.CPU.Instructions)
	}
	if missRate(0) <= missRate(3) {
		t.Errorf("quantum-2 miss rate %.5f not above quantum-112's %.5f",
			missRate(0), missRate(3))
	}
	// And the largest quantum must be fastest.
	last := fig.Rows[3]
	if last.Speedup < 1.0 {
		t.Errorf("quantum-112 slower than quantum-2: %.3f", last.Speedup)
	}
}
