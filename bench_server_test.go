package cgp

// Serving-throughput benchmark and capture-overhead regression guard.
//
// TestServerBench measures end-to-end queries/sec through the network
// front-end with the probe-level live capture attached vs detached, at
// 1, 4 and 16 client connections, and writes BENCH_server.json. Gated
// behind CGP_SERVER_BENCH because it holds the machine for a few
// seconds of saturated serving:
//
//	CGP_SERVER_BENCH=1 go test -run TestServerBench -count=1 .
//
// TestCaptureOverheadGuard (CGP_BENCH_GUARD, alongside the kernel
// guard in bench_guard_test.go) enforces the capture contract from a
// different angle than the chaos suite: attaching the recorder must
// never make serving more than 15% slower, because the ring hand-off
// is the only work added to the query path. Like the kernel guard it
// compares two arms measured back-to-back in the same process, so the
// ratio cancels host speed.
//
// TestTracingOverheadGuard does the same for query tracing: clients
// minting trace IDs plus the server recording per-stage spans must
// keep at least 95% of untraced throughput. Tracing is cheaper than
// capture by construction — a handful of clock reads and one span
// hand-off per query, no per-probe-event work — so its floor is
// tighter.

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"cgp/internal/db"
	"cgp/internal/obs"
	"cgp/internal/server"
	"cgp/internal/workload"
)

// serverBenchQueries is the drive mix: point lookup, range scan,
// aggregate, group-by — the Wisconsin selection mix cgpserve -drive
// uses, so the numbers line up with CI's smoke run.
var serverBenchQueries = []string{
	"SELECT unique1, unique2 FROM big1 WHERE unique2 = 42",
	"SELECT unique1 FROM big1 WHERE unique2 BETWEEN 100 AND 199",
	"SELECT COUNT(*) AS n FROM big1 WHERE ten = 3",
	"SELECT two, COUNT(*) AS n FROM big1 GROUP BY two",
	"SELECT unique1 FROM small WHERE unique2 < 20",
}

// serveBenchQPS serves serverBenchTotal queries split across `clients`
// connections and returns the measured throughput. sampleEvery 0 runs
// detached; otherwise a live capture rides along at that sampling rate
// and is sealed (into io.Discard) after the measurement window; the
// seal must report zero ring drops, otherwise the attached arm
// silently measured less work than the detached one.
const serverBenchTotal = 960

func serveBenchQPS(t *testing.T, sampleEvery, clients int, traced bool) float64 {
	t.Helper()
	e := db.NewEngine(db.Options{BufferFrames: 4096})
	if err := (workload.WisconsinDB{N: 1000}).Load(e, 42); err != nil {
		t.Fatal(err)
	}
	var lc *server.LiveCapture
	if sampleEvery > 0 {
		lc = server.NewLiveCapture(server.CaptureOptions{SampleEvery: sampleEvery})
	}
	var tracer *obs.QueryTracer
	if traced {
		tracer = obs.NewQueryTracer(obs.QueryTraceOptions{})
	}
	s := server.New(e, server.Options{
		Addr:        "127.0.0.1:0",
		MaxConns:    clients + 1,
		MaxInflight: clients + 1,
		Capture:     lc,
		Trace:       tracer,
	})
	ctx, cancel := context.WithCancel(context.Background())
	if err := s.Start(ctx); err != nil {
		cancel()
		t.Fatal(err)
	}
	// Tear down inside the measurement, not via t.Cleanup: a bench
	// iteration's engine and sealed recording (tens of MB for the
	// full-capture arm) must be garbage before the next iteration
	// starts, or accumulated heap distorts every later cell.
	defer func() {
		cancel()
		s.Wait()
	}()
	conns := make([]*server.Client, clients)
	for i := range conns {
		c, err := server.Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if traced {
			c.SetTraceBase(uint64(i+1) << 32)
		}
		conns[i] = c
	}

	// Warm up before timing: the first queries pay page-cache and
	// buffer-pool misses plus allocator growth, which on a ~100ms
	// measurement window would swamp the capture's cost.
	for i := 0; i < 100; i++ {
		if _, err := conns[i%clients].Query(serverBenchQueries[i%len(serverBenchQueries)]); err != nil {
			t.Fatal(err)
		}
	}

	perClient := serverBenchTotal / clients
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for i, c := range conns {
		wg.Add(1)
		go func(id int, c *server.Client) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				if _, err := c.Query(serverBenchQueries[(id+j)%len(serverBenchQueries)]); err != nil {
					errs <- err
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if lc != nil {
		if _, err := lc.Seal(io.Discard); err != nil {
			t.Fatal(err)
		}
		if lc.Drops() != 0 || lc.Overflows() != 0 {
			t.Fatalf("capture lost batches during bench: drops=%d overflows=%d",
				lc.Drops(), lc.Overflows())
		}
		total := int64(100 + perClient*clients) // warmup queries sample too
		want := (total + int64(sampleEvery) - 1) / int64(sampleEvery)
		if lc.Committed() != want {
			t.Fatalf("capture committed %d batches, want %d (every %d of %d)",
				lc.Committed(), want, sampleEvery, total)
		}
	}
	if tracer != nil {
		// The traced arm must have actually traced: a span per query,
		// warmup included, or the measurement compared tracing-off to
		// tracing-off.
		if want := int64(100 + perClient*clients); tracer.Traced() != want {
			t.Fatalf("tracer saw %d queries, want %d", tracer.Traced(), want)
		}
		if err := tracer.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return float64(perClient*clients) / elapsed.Seconds()
}

// bestQPS is the best of 3 serveBenchQPS runs — the same
// minimum-of-many estimator the kernel guard uses (max qps = min
// time): the best run converges on what the code can sustain while
// the mean absorbs scheduler preemptions from the shared runner.
func bestQPS(t *testing.T, sampleEvery, clients int, traced bool) float64 {
	t.Helper()
	var best float64
	for i := 0; i < 3; i++ {
		if q := serveBenchQPS(t, sampleEvery, clients, traced); q > best {
			best = q
		}
	}
	return best
}

type serverBenchCell struct {
	Clients int `json:"clients"`
	// AttachedQPS is throughput with the capture attached in its
	// default configuration (sampled, SampleEvery=64) — the number the
	// overhead guard defends.
	AttachedQPS float64 `json:"attached_qps"`
	DetachedQPS float64 `json:"detached_qps"`
	// FullCaptureQPS is throughput with every query recorded
	// (SampleEvery=1) — the scripted-capture mode. Reported for
	// transparency: recording every probe event costs a multiple of
	// query execution, which is exactly why the attached default
	// samples.
	FullCaptureQPS float64 `json:"full_capture_qps"`
	// Overhead is the fractional slowdown of the attached default:
	// 0.05 means attached serving ran 5% slower. Negative values are
	// measurement noise.
	Overhead float64 `json:"capture_overhead"`
	// TracedQPS is throughput with query tracing on (trace-ID-minting
	// clients, per-stage spans and histograms server-side) and the
	// capture detached — the arm TestTracingOverheadGuard defends.
	TracedQPS float64 `json:"traced_qps"`
	// TracingOverhead is the fractional slowdown of tracing relative to
	// the detached/untraced baseline.
	TracingOverhead float64 `json:"tracing_overhead"`
}

func TestServerBench(t *testing.T) {
	if os.Getenv("CGP_SERVER_BENCH") == "" {
		t.Skip("set CGP_SERVER_BENCH=1 to run the serving-throughput benchmark")
	}
	var cells []serverBenchCell
	for _, clients := range []int{1, 4, 16} {
		detached := bestQPS(t, 0, clients, false)
		attached := bestQPS(t, captureDefaultSample, clients, false)
		full := bestQPS(t, 1, clients, false)
		traced := bestQPS(t, 0, clients, true)
		cell := serverBenchCell{
			Clients:         clients,
			AttachedQPS:     attached,
			DetachedQPS:     detached,
			FullCaptureQPS:  full,
			Overhead:        detached/attached - 1,
			TracedQPS:       traced,
			TracingOverhead: detached/traced - 1,
		}
		t.Logf("%2d clients: detached %.0f qps, attached %.0f qps (overhead %+.1f%%), full capture %.0f qps, traced %.0f qps (overhead %+.1f%%)",
			clients, detached, attached, 100*cell.Overhead, full, traced, 100*cell.TracingOverhead)
		cells = append(cells, cell)
	}
	out := map[string]any{
		"scale":      "WiscN=1000, 960 queries per cell, loopback TCP",
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"bench":      cells,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_server.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// captureOverheadTolerance: the attached arm (default sampled capture)
// must keep at least 85% of detached throughput — the "capture never
// makes serving more than 15% slower" contract.
const captureOverheadTolerance = 0.85

// captureDefaultSample mirrors CaptureOptions' SampleEvery default —
// the guard measures the configuration a long-lived server actually
// attaches. Spelled out here so a silent default change trips the
// committed-batch assertion in serveBenchQPS.
const captureDefaultSample = 64

func TestCaptureOverheadGuard(t *testing.T) {
	if os.Getenv("CGP_BENCH_GUARD") == "" {
		t.Skip("set CGP_BENCH_GUARD=1 to run the capture-overhead guard")
	}
	detached := bestQPS(t, 0, 4, false)
	attached := bestQPS(t, captureDefaultSample, 4, false)
	ratio := attached / detached
	t.Logf("capture overhead: attached %.0f qps vs detached %.0f qps (ratio %.3f, floor %.2f)",
		attached, detached, ratio, captureOverheadTolerance)
	if ratio < captureOverheadTolerance {
		t.Errorf("live capture costs too much: attached serving at %.1f%% of detached throughput, floor %.0f%%",
			100*ratio, 100*captureOverheadTolerance)
	}
}

// tracingOverheadTolerance: the traced arm must keep at least 95% of
// untraced throughput. See the file comment for why this floor is
// tighter than the capture guard's.
const tracingOverheadTolerance = 0.95

func TestTracingOverheadGuard(t *testing.T) {
	if os.Getenv("CGP_BENCH_GUARD") == "" {
		t.Skip("set CGP_BENCH_GUARD=1 to run the tracing-overhead guard")
	}
	untraced := bestQPS(t, 0, 4, false)
	traced := bestQPS(t, 0, 4, true)
	ratio := traced / untraced
	t.Logf("tracing overhead: traced %.0f qps vs untraced %.0f qps (ratio %.3f, floor %.2f)",
		traced, untraced, ratio, tracingOverheadTolerance)
	if ratio < tracingOverheadTolerance {
		t.Errorf("query tracing costs too much: traced serving at %.1f%% of untraced throughput, floor %.0f%%",
			100*ratio, 100*tracingOverheadTolerance)
	}
}
