// Trace capture and replay: record a workload's fetch-event stream to a
// compact binary trace file, then replay it through the simulator —
// decoupling (expensive) query execution from (cheap) parameter sweeps,
// the way trace-driven simulators are used in practice.
//
//	go run ./examples/tracecapture [-trace /tmp/wisc.cgptrc]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cgp/internal/cpu"
	"cgp/internal/prefetch"
	"cgp/internal/program"
	"cgp/internal/trace"
	"cgp/internal/workload"
)

func main() {
	path := flag.String("trace", "/tmp/wisc-prof.cgptrc", "trace file path")
	flag.Parse()

	// Capture: run wisc-prof once on the O5 image, teeing events into a
	// trace file and a stats counter.
	w := workload.WiscProf(workload.DBOptions{WiscN: 1000})
	img := program.LayoutO5(w.NewRegistry())

	f, err := os.Create(*path)
	if err != nil {
		log.Fatal(err)
	}
	tw, err := trace.NewWriter(f)
	if err != nil {
		log.Fatal(err)
	}
	var st trace.Stats
	if err := w.Run(img, trace.Tee(&st, tw)); err != nil {
		log.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(*path)
	fmt.Printf("captured %d events (%d instructions) to %s (%d bytes, %.2f bytes/instr)\n",
		st.Events, st.Instructions, *path, info.Size(),
		float64(info.Size())/float64(st.Instructions))

	// Replay: sweep prefetchers over the recorded trace without
	// re-executing a single query.
	for _, pf := range []prefetch.Prefetcher{
		prefetch.None{},
		prefetch.NewNL(4),
		prefetch.NewRunAheadNL(4, 4),
	} {
		rf, err := os.Open(*path)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := trace.NewReader(rf)
		if err != nil {
			log.Fatal(err)
		}
		c := cpu.New(cpu.DefaultConfig(), pf)
		if err := tr.Replay(c); err != nil {
			log.Fatal(err)
		}
		rf.Close()
		s := c.Finish()
		fmt.Printf("replay %-8s cycles=%-9d I-misses=%d\n", pf.Name(), s.Cycles, s.ICacheMisses)
	}
}
