// Quickstart: run one database workload under the paper's baseline and
// under Call Graph Prefetching, and print what CGP buys.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"cgp"
)

func main() {
	// A runner owns profile collection (for the OM layout) and caches
	// results. Default options reproduce the paper's scale; we shrink
	// the database so the quickstart finishes in a second.
	r := cgp.NewRunner(cgp.RunnerOptions{
		DB: cgp.DBOptions{WiscN: 2000},
	})
	w := cgp.WiscLarge2(cgp.DBOptions{WiscN: 2000})

	ctx := context.Background()
	baseline, err := r.Run(ctx, w, cgp.Config{Layout: cgp.LayoutO5})
	if err != nil {
		log.Fatal(err)
	}
	withCGP, err := r.Run(ctx, w, cgp.Config{
		Layout:     cgp.LayoutOM,
		Prefetcher: cgp.PrefCGP,
		Degree:     4, // CGP_4: prefetch 4 lines per CGHC hit
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (%d instructions simulated)\n\n",
		w.Name, baseline.CPU.Instructions)
	show := func(res *cgp.Result) {
		s := res.CPU
		fmt.Printf("%-14s cycles=%-10d IPC=%.2f I-misses=%-7d I-stall=%d\n",
			res.Config, s.Cycles, s.IPC(), s.ICacheMisses, s.IMissStallCycles)
	}
	show(baseline)
	show(withCGP)

	speedup := float64(baseline.CPU.Cycles) / float64(withCGP.CPU.Cycles)
	missCut := 1 - float64(withCGP.CPU.ICacheMisses)/float64(baseline.CPU.ICacheMisses)
	fmt.Printf("\nCGP_4 on the OM binary: %.2fx speedup, %.0f%% fewer I-cache misses\n",
		speedup, 100*missCut)
	if g := withCGP.CGPStats; g != nil {
		fmt.Printf("CGHC: %d call accesses, %d return accesses, %d prefetches issued\n",
			g.CallAccesses, g.ReturnAccesses, g.CGHCPrefetches)
	}
}
