// CPU2000 study (the paper's Figure 10): the SPEC stand-ins mostly do
// not need instruction prefetching — only gcc and crafty have I-cache
// footprints worth prefetching for, and there NL does about as well as
// CGP.
//
//	go run ./examples/cpu2000
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"cgp"
	"cgp/internal/units"
)

func main() {
	r := cgp.NewRunner(cgp.RunnerOptions{Seed: 42})
	configs := []cgp.Config{
		{Layout: cgp.LayoutOM},
		{Layout: cgp.LayoutOM, Prefetcher: cgp.PrefNL, Degree: 4},
		{Layout: cgp.LayoutOM, Prefetcher: cgp.PrefCGP, Degree: 4},
		{Layout: cgp.LayoutOM, PerfectICache: true},
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\tO5+OM\tOM+NL_4\tOM+CGP_4\tperf-Icache\tI-miss%%\n")
	for _, w := range r.CPU2000Workloads() {
		var cells []string
		var base units.Cycles
		var missRate float64
		for i, cfg := range configs {
			res, err := r.Run(context.Background(), w, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				base = res.CPU.Cycles
				missRate = 100 * res.CPU.IMissRate()
				cells = append(cells, fmt.Sprintf("%d", base))
			} else {
				cells = append(cells, fmt.Sprintf("%.2fx", float64(base)/float64(res.CPU.Cycles)))
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%.2f\n",
			w.Name, cells[0], cells[1], cells[2], cells[3], missRate)
	}
	tw.Flush()
	fmt.Println("\n(speedups relative to O5+OM; gzip/parser/gap/bzip2/twolf barely move,")
	fmt.Println(" gcc and crafty gain, and NL matches CGP on them — §5.7's conclusion)")
}
