// sqlshell: an interactive SQL prompt over the engine, preloaded with
// the Wisconsin and TPC-H tables. One statement per line; Ctrl-D exits.
//
//	go run ./examples/sqlshell
//	sql> SELECT COUNT(*) FROM lineitem
//	sql> SELECT unique1, unique2 FROM big1 WHERE unique2 BETWEEN 10 AND 20
//	sql> SELECT c_mktsegment, COUNT(*) AS n FROM customer GROUP BY c_mktsegment ORDER BY n DESC
//
// With -connect, the shell speaks the wire protocol to a running
// cgpserve process instead of embedding an engine:
//
//	go run ./examples/sqlshell -connect 127.0.0.1:7744
//
// Adding -trace tags every statement with a trace ID and prints it
// after each result, so the ID can be grepped in the server's
// slow-query log, /metrics export and sealed capture.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cgp/internal/db"
	"cgp/internal/db/catalog"
	"cgp/internal/db/sql"
	"cgp/internal/server"
	"cgp/internal/workload"
)

func main() {
	connect := flag.String("connect", "", "connect to a cgpserve address instead of embedding an engine")
	traceB := flag.Uint64("trace", 0, "with -connect: tag statements with trace IDs starting above this base (0 disables)")
	flag.Parse()
	if *connect != "" {
		if err := remoteShell(*connect, *traceB); err != nil {
			log.Fatal(err)
		}
		return
	}
	e := db.NewEngine(db.Options{BufferFrames: 8192})
	if err := (workload.WisconsinDB{N: 2000}).Load(e, 42); err != nil {
		log.Fatal(err)
	}
	if err := workload.LoadTPCH(e, workload.DefaultTPCHScale(), 42); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tables: big1, big2, small (Wisconsin);")
	fmt.Println("        region, nation, supplier, part, partsupp, customer, orders, lineitem (TPC-H)")
	fmt.Println("one SELECT per line; Ctrl-D to exit")

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<16), 1<<16)
	for {
		fmt.Print("sql> ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		src := strings.TrimSpace(in.Text())
		if src == "" {
			continue
		}
		if strings.EqualFold(src, "exit") || strings.EqualFold(src, "quit") {
			return
		}
		rows, err := sql.Run(e, src)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printRows(rows)
	}
}

// remoteShell is the network client loop: same prompt, queries served
// by a cgpserve process over the wire protocol.
func remoteShell(addr string, traceBase uint64) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	traced := traceBase != 0
	if traced {
		c.SetTraceBase(traceBase)
	}
	fmt.Printf("connected to %s; one SELECT per line; Ctrl-D to exit\n", addr)
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<16), 1<<16)
	for {
		fmt.Print("sql> ")
		if !in.Scan() {
			fmt.Println()
			return nil
		}
		src := strings.TrimSpace(in.Text())
		if src == "" {
			continue
		}
		if strings.EqualFold(src, "exit") || strings.EqualFold(src, "quit") {
			return nil
		}
		res, err := c.Query(src)
		if traced {
			fmt.Printf("trace %016x\n", c.LastTraceID())
		}
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printResult(res)
	}
}

// printResult renders a wire-format result like printRows does tuples.
func printResult(res *server.Result) {
	if res.Materialized > 0 {
		fmt.Printf("(%d rows materialized)\n", res.Materialized)
		return
	}
	if len(res.Rows) == 0 {
		fmt.Println("(0 rows)")
		return
	}
	fmt.Println(strings.Join(res.Cols, " | "))
	max := len(res.Rows)
	if max > 25 {
		max = 25
	}
	for _, row := range res.Rows[:max] {
		fmt.Println(strings.Join(row, " | "))
	}
	if len(res.Rows) > max {
		fmt.Printf("... (%d rows total)\n", len(res.Rows))
	}
}

func printRows(rows []catalog.Tuple) {
	if len(rows) == 0 {
		fmt.Println("(0 rows)")
		return
	}
	sch := rows[0].Schema
	var hdr []string
	for i := 0; i < sch.NumCols(); i++ {
		hdr = append(hdr, sch.Col(i).Name)
	}
	fmt.Println(strings.Join(hdr, " | "))
	max := len(rows)
	if max > 25 {
		max = 25
	}
	for _, r := range rows[:max] {
		var cells []string
		for i := 0; i < sch.NumCols(); i++ {
			if sch.Col(i).Type == catalog.Int {
				cells = append(cells, fmt.Sprintf("%d", r.Int(i)))
			} else {
				cells = append(cells, r.Str(i))
			}
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	if len(rows) > max {
		fmt.Printf("... (%d rows total)\n", len(rows))
	}
}
