// Wisconsin sweep: the paper's Figure 6 shape on all four database
// workloads — O5, OM, next-N-line prefetching, CGP, and a perfect
// I-cache — at a configurable scale.
//
//	go run ./examples/wisconsin [-n 4000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"cgp"
	"cgp/internal/units"
)

func main() {
	n := flag.Int("n", 4000, "Wisconsin big-relation cardinality")
	flag.Parse()

	opts := cgp.RunnerOptions{DB: cgp.DBOptions{WiscN: *n}}
	r := cgp.NewRunner(opts)

	configs := []cgp.Config{
		{Layout: cgp.LayoutO5},
		{Layout: cgp.LayoutOM},
		{Layout: cgp.LayoutOM, Prefetcher: cgp.PrefNL, Degree: 2},
		{Layout: cgp.LayoutOM, Prefetcher: cgp.PrefNL, Degree: 4},
		{Layout: cgp.LayoutOM, Prefetcher: cgp.PrefCGP, Degree: 2},
		{Layout: cgp.LayoutOM, Prefetcher: cgp.PrefCGP, Degree: 4},
		{Layout: cgp.LayoutOM, PerfectICache: true},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "workload\tconfig\tcycles\tspeedup\tI-miss/kinst\tuseful-pf%%\n")
	for _, w := range r.DBWorkloads() {
		var base units.Cycles
		for i, cfg := range configs {
			res, err := r.Run(context.Background(), w, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				base = res.CPU.Cycles
			}
			tp := res.CPU.TotalPrefetch()
			useful := "-"
			if tp.Issued > 0 {
				useful = fmt.Sprintf("%.0f", 100*tp.UsefulFraction())
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.2fx\t%.2f\t%s\n",
				w.Name, res.Config, res.CPU.Cycles,
				float64(base)/float64(res.CPU.Cycles),
				res.CPU.IMissPerKInstr(), useful)
		}
	}
	tw.Flush()
}
