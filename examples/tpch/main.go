// TPC-H walkthrough: build the scaled TPC-H database with the engine's
// public pieces, run the five evaluated queries standalone (printing
// their results), then simulate the same queries under CGP.
//
//	go run ./examples/tpch
package main

import (
	"context"
	"fmt"
	"log"

	"cgp"
	"cgp/internal/db"
	"cgp/internal/db/exec"
	"cgp/internal/workload"
)

func main() {
	// --- Part 1: the database engine as a database. ---
	scale := workload.TPCHScale{Suppliers: 20, Customers: 120, Parts: 160, Orders: 480, MaxLines: 5}
	e := db.NewEngine(db.Options{BufferFrames: 8192})
	if err := workload.LoadTPCH(e, scale, 42); err != nil {
		log.Fatal(err)
	}
	li := e.MustTable("lineitem")
	fmt.Printf("loaded TPC-H: %d orders, %d lineitems, %d parts\n\n",
		e.MustTable("orders").Heap.NumRecords(), li.Heap.NumRecords(),
		e.MustTable("part").Heap.NumRecords())

	for _, q := range workload.TPCHQueries() {
		tx := e.Txns.Begin()
		ctx := e.NewContext(tx)
		it, _, err := q.Build(e, ctx)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := exec.Collect(it)
		if err != nil {
			log.Fatalf("%s: %v", q.Name, err)
		}
		fmt.Printf("%-8s -> %d rows", q.Name, len(rows))
		if len(rows) > 0 {
			first := rows[0]
			fmt.Printf("   first: (")
			for c := 0; c < first.Schema.NumCols() && c < 4; c++ {
				if c > 0 {
					fmt.Print(", ")
				}
				col := first.Schema.Col(c)
				fmt.Printf("%s=", col.Name)
				if col.Type == 0 { // catalog.Int
					fmt.Printf("%d", first.Int(c))
				} else {
					fmt.Printf("%q", first.Str(c))
				}
			}
			fmt.Print(")")
		}
		fmt.Println()
		if err := e.Txns.Commit(tx); err != nil {
			log.Fatal(err)
		}
	}

	// --- Part 2: the same queries as a timed workload. ---
	fmt.Println("\nsimulating wisc+tpch under three configurations:")
	opts := cgp.RunnerOptions{DB: cgp.DBOptions{WiscN: 2000, TPCH: scale}}
	r := cgp.NewRunner(opts)
	w := cgp.WiscTPCH(opts.DB)
	for _, cfg := range []cgp.Config{
		{Layout: cgp.LayoutO5},
		{Layout: cgp.LayoutOM, Prefetcher: cgp.PrefNL, Degree: 4},
		{Layout: cgp.LayoutOM, Prefetcher: cgp.PrefCGP, Degree: 4},
	} {
		res, err := r.Run(context.Background(), w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %12d cycles   %6.2f IPC   %7d I-misses\n",
			res.Config, res.CPU.Cycles, res.CPU.IPC(), res.CPU.ICacheMisses)
	}
}
