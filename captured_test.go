package cgp

// Round trip for the "captured" workload: live traffic served by the
// network front-end, recorded at the probe level, sealed, and fed back
// through the experiment harness as a first-class workload. The test
// asserts the property the serving pipeline exists for — a capture
// taken once from real clients replays deterministically, so a figure
// row computed from it is byte-identical across independent runners.

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cgp/internal/db"
	"cgp/internal/program"
	"cgp/internal/server"
	"cgp/internal/trace"
	"cgp/internal/workload"
)

// sealScriptedCapture serves a fixed query script through a real
// server with live capture attached and seals the recording to a temp
// file, returning its path — the same artifact `cgpserve -capture`
// writes on graceful shutdown.
func sealScriptedCapture(t *testing.T) string {
	t.Helper()
	e := db.NewEngine(db.Options{BufferFrames: 2048})
	if err := (workload.WisconsinDB{N: 300}).Load(e, 42); err != nil {
		t.Fatal(err)
	}
	lc := server.NewLiveCapture(server.CaptureOptions{SampleEvery: 1})
	s := server.New(e, server.Options{Addr: "127.0.0.1:0", Capture: lc})
	ctx, cancel := context.WithCancel(context.Background())
	if err := s.Start(ctx); err != nil {
		cancel()
		t.Fatal(err)
	}
	c, err := server.Dial(s.Addr())
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	script := []string{
		"SELECT COUNT(*) AS n FROM big1",
		"SELECT unique1, unique2 FROM big1 WHERE unique2 BETWEEN 10 AND 60",
		"SELECT two, COUNT(*) AS n FROM big1 GROUP BY two",
		"SELECT unique1 FROM small WHERE unique2 < 20",
		"SELECT unique1 INTO TMP FROM big1 WHERE unique2 < 30",
	}
	for _, q := range script {
		if _, err := c.Query(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	c.Close()
	cancel()
	s.Wait()

	path := filepath.Join(t.TempDir(), "live.cgptrc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := lc.Seal(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if lc.Committed() != int64(len(script)) || lc.Drops() != 0 || lc.Overflows() != 0 {
		t.Fatalf("capture lost queries: committed=%d drops=%d overflows=%d",
			lc.Committed(), lc.Drops(), lc.Overflows())
	}
	if !trace.IsProbeRecording(rec) {
		t.Fatalf("sealed capture is not a probe recording: %+v", rec.Stats)
	}
	return path
}

func capturedRunnerOpts(path string) RunnerOptions {
	return RunnerOptions{
		DB:          DBOptions{WiscN: 300, Seed: 11, BufferFrames: 2048},
		Seed:        11,
		CapturePath: path,
	}
}

func TestCapturedWorkloadRoundTrip(t *testing.T) {
	path := sealScriptedCapture(t)

	// The capture registers by name alongside the synthetic workloads,
	// and synthesizes a stable address-level stream.
	r := NewRunner(capturedRunnerOpts(path))
	w, err := r.WorkloadByName("captured")
	if err != nil {
		t.Fatal(err)
	}
	if w.Family != "captured" {
		t.Fatalf("family = %q, want captured", w.Family)
	}
	img := program.LayoutO5(w.NewRegistry())
	statsOnce := func() trace.Stats {
		var st trace.Stats
		if err := w.Run(img, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := statsOnce()
	if st.Instructions == 0 || st.Calls == 0 || st.DataRefs == 0 {
		t.Fatalf("synthesized stream looks empty: %+v", st)
	}
	if again := statsOnce(); again != st {
		t.Fatalf("trace stats unstable across replays:\n  %+v\n  %+v", st, again)
	}

	// A figure row over the capture is byte-identical across two
	// independent runners (fresh caches, fresh recordings).
	configs := []Config{
		{Layout: LayoutO5},
		{Layout: LayoutO5, Prefetcher: PrefCGP, Degree: 4},
	}
	row := func() string {
		rr := NewRunner(capturedRunnerOpts(path))
		cw, err := rr.CapturedWorkload()
		if err != nil {
			t.Fatal(err)
		}
		fig, err := rr.runGrid(context.Background(), "captured", "Live traffic replay", []*Workload{cw}, configs)
		if err != nil {
			t.Fatal(err)
		}
		return fig.Markdown()
	}
	first, second := row(), row()
	if first != second {
		t.Fatalf("captured figure row not byte-identical:\n--- first\n%s\n--- second\n%s", first, second)
	}
	if !strings.Contains(first, "captured") {
		t.Fatalf("figure row missing workload name:\n%s", first)
	}
}

func TestCapturedWorkloadRequiresPath(t *testing.T) {
	r := NewRunner(RunnerOptions{DB: DBOptions{WiscN: 100, Seed: 11}})
	if _, err := r.WorkloadByName("captured"); err == nil {
		t.Fatal("captured resolved without a CapturePath")
	}
	if _, err := r.CapturedWorkload(); err == nil {
		t.Fatal("CapturedWorkload succeeded without a CapturePath")
	}
}
