// Command cgpsim runs one workload under one system configuration and
// prints the measured statistics.
//
// Usage:
//
//	cgpsim -workload wisc-large-2 -layout om -prefetch cgp -n 4
//	cgpsim -workload gcc -layout om -prefetch nl -n 4
//	cgpsim -workload wisc-prof -perfect
//	cgpsim -workload wisc-prof -prefetch cgp -attribution -stats-json stats.json
//	cgpsim -workload wisc-large-1 -prefetch nl -sample
//
// -sample switches to sampled simulation: most of the event stream is
// skipped or functionally warmed and only periodic windows run in
// detail, printing estimated whole-run cycles and misses with 95%
// confidence intervals instead of measured totals. The schedule knobs
// are -sample-period, -sample-fwarm, -sample-warmup, -sample-window
// (all in events) and -sample-random-offset.
//
// Workloads: wisc-prof, wisc-large-1, wisc-large-2, wisc+tpch,
// gzip, gcc, crafty, parser, gap, bzip2, twolf.
//
// -stats-json dumps the full measurement — cpu.Stats including the
// per-function attribution rows when -attribution is set — as JSON
// with stable key order (struct declaration order), so diffs between
// runs are meaningful.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"cgp"
	"cgp/internal/sample"
)

func main() {
	var (
		workloadName = flag.String("workload", "wisc-prof", "workload name")
		layout       = flag.String("layout", "o5", "binary layout: o5 or om")
		pref         = flag.String("prefetch", "none", "prefetcher: none, nl, ranl, cgp")
		degree       = flag.Int("n", 4, "lines prefetched per trigger (NL_n / CGP_n)")
		runAheadM    = flag.Int("m", 4, "run-ahead distance for ranl")
		cghc         = flag.String("cghc", "2k+32k", "CGHC size: e.g. 1k, 32k, 1k+16k, 2k+32k, inf")
		perfect      = flag.Bool("perfect", false, "perfect I-cache")
		wiscN        = flag.Int("wisc-n", 10000, "Wisconsin big-relation cardinality")
		seed         = flag.Int64("seed", 42, "workload seed")
		attribution  = flag.Bool("attribution", false, "collect per-function prefetch attribution")
		statsJSON    = flag.String("stats-json", "", "dump the full statistics as stable-key-order JSON to this file ('-' for stdout)")
		attrTop      = flag.Int("attr-top", 10, "attribution rows to print with -attribution")
		verbose      = flag.Bool("v", false, "progress output")

		sampled      = flag.Bool("sample", false, "sampled simulation: estimate whole-run cycles/misses from periodic detailed windows")
		samplePeriod = flag.Int64("sample-period", sample.Default().PeriodEvents, "events per sampling period")
		sampleFWarm  = flag.Int64("sample-fwarm", sample.Default().FunctionalWarmEvents, "functionally warmed events before each window")
		sampleWarm   = flag.Int64("sample-warmup", sample.Default().DetailWarmEvents, "detailed warm-up events before each window")
		sampleWin    = flag.Int64("sample-window", sample.Default().WindowEvents, "measured events per window")
		sampleRand   = flag.Bool("sample-random-offset", false, "place each period's window at a seeded random offset instead of a fixed one")
	)
	flag.Parse()

	cfg, err := buildConfig(*layout, *pref, *degree, *runAheadM, *cghc, *perfect)
	if err != nil {
		fatal(err)
	}
	if *sampled {
		cfg.Sampling = sample.Config{
			PeriodEvents:         *samplePeriod,
			FunctionalWarmEvents: *sampleFWarm,
			DetailWarmEvents:     *sampleWarm,
			WindowEvents:         *sampleWin,
			RandomOffset:         *sampleRand,
			Seed:                 uint64(*seed),
		}
	}
	// One workload under one config: a recorded trace would be replayed
	// zero times, so re-execute directly.
	opts := cgp.RunnerOptions{
		DB: cgp.DBOptions{WiscN: *wiscN, Seed: *seed}, Seed: *seed,
		NoRecord: true, Attribution: *attribution,
	}
	if *verbose {
		opts.Log = func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
	}
	r := cgp.NewRunner(opts)

	w, err := findWorkload(r, *workloadName, *seed)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := r.Run(ctx, w, cfg)
	if err != nil {
		fatal(err)
	}
	if *statsJSON != "" {
		if err := dumpStatsJSON(*statsJSON, res); err != nil {
			fatal(err)
		}
	}
	printResult(res)
	if *attribution {
		tab, err := r.AttributionTable(ctx, w, cfg, *attrTop)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(tab.Markdown())
	}
}

// dumpStatsJSON writes the full Result — cpu.Stats (with attribution
// rows when enabled), trace stats and CGP stats — as indented JSON.
// encoding/json emits struct fields in declaration order, so the key
// order is stable across runs and diffs line up.
func dumpStatsJSON(path string, res *cgp.Result) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func buildConfig(layout, pref string, n, m int, cghc string, perfect bool) (cgp.Config, error) {
	var cfg cgp.Config
	switch strings.ToLower(layout) {
	case "o5":
		cfg.Layout = cgp.LayoutO5
	case "om", "o5+om":
		cfg.Layout = cgp.LayoutOM
	default:
		return cfg, fmt.Errorf("unknown layout %q", layout)
	}
	switch strings.ToLower(pref) {
	case "none", "":
		cfg.Prefetcher = cgp.PrefNone
	case "nl":
		cfg.Prefetcher = cgp.PrefNL
	case "ranl":
		cfg.Prefetcher = cgp.PrefRunAheadNL
	case "cgp":
		cfg.Prefetcher = cgp.PrefCGP
	default:
		return cfg, fmt.Errorf("unknown prefetcher %q", pref)
	}
	cfg.Degree = n
	cfg.RunAheadM = m
	cfg.PerfectICache = perfect
	var err error
	cfg.CGHC, err = parseCGHC(cghc)
	return cfg, err
}

func parseCGHC(s string) (cgp.CGHCConfig, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "inf" || s == "infinite" {
		return cgp.CGHCConfig{Infinite: true}, nil
	}
	parse := func(part string) (int, error) {
		part = strings.TrimSuffix(part, "k")
		var v int
		if _, err := fmt.Sscanf(part, "%d", &v); err != nil {
			return 0, fmt.Errorf("bad CGHC size %q", s)
		}
		return v * 1024, nil
	}
	var cfg cgp.CGHCConfig
	parts := strings.SplitN(s, "+", 2)
	var err error
	if cfg.L1Bytes, err = parse(parts[0]); err != nil {
		return cfg, err
	}
	if len(parts) == 2 {
		if cfg.L2Bytes, err = parse(parts[1]); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

func findWorkload(r *cgp.Runner, name string, seed int64) (*cgp.Workload, error) {
	for _, w := range r.DBWorkloads() {
		if w.Name == name {
			return w, nil
		}
	}
	if w, err := cgp.CPU2000(name, seed); err == nil {
		return w, nil
	}
	return nil, fmt.Errorf("unknown workload %q (try wisc-prof, wisc-large-1, wisc-large-2, wisc+tpch, gzip, gcc, crafty, parser, gap, bzip2, twolf)", name)
}

func printResult(res *cgp.Result) {
	s := res.CPU
	fmt.Printf("workload        %s\n", res.Workload)
	fmt.Printf("config          %s\n", res.Config)
	if sm := s.Sample; sm != nil {
		// Sampled run: the headline numbers are estimates (±95% CI);
		// the raw counters below them cover only the decoded spans.
		fmt.Printf("est cycles      ~%d ±%.1f%% (95%% CI, %d windows)\n",
			int64(sm.EstCycles), 100*sm.CycleRelCI, sm.Windows)
		fmt.Printf("est I-misses    ~%d ±%.1f%%\n", sm.EstIMisses, 100*sm.MissRelCI)
		fmt.Printf("est IPC         %.3f\n", sm.EstIPC(s.Instructions))
		if sm.Degenerate {
			fmt.Printf("                (degenerate: <2 windows, no confidence interval)\n")
		}
		fmt.Printf("events          skipped=%d fast-forwarded=%d detailed=%d (%d warm-up + %d measured)\n",
			sm.SkippedEvents, sm.FastForwardedEvents, sm.DetailedEvents(),
			sm.WarmupEvents, sm.MeasuredEvents)
		fmt.Printf("instructions    %d (exact; %d skipped undecoded)\n", s.Instructions, sm.SkippedInstrs)
		fmt.Printf("detailed cycles %d (measured spans only — diagnostics below cover decoded events)\n", s.Cycles)
	} else {
		fmt.Printf("cycles          %d\n", s.Cycles)
		fmt.Printf("instructions    %d\n", s.Instructions)
		fmt.Printf("IPC             %.3f\n", s.IPC())
	}
	fmt.Printf("instr/call      %.1f\n", res.Trace.InstructionsPerCall())
	fmt.Printf("I-line fetches  %d\n", s.ILineAccesses)
	fmt.Printf("I-cache misses  %d (%.3f%% of line fetches, %.2f/kinst)\n",
		s.ICacheMisses, 100*s.IMissRate(), s.IMissPerKInstr())
	fmt.Printf("I-miss stalls   %d cycles\n", s.IMissStallCycles)
	fmt.Printf("D-cache misses  %d / %d accesses\n", s.DCacheMisses, s.DLineAccesses)
	fmt.Printf("L2 transfers    %d (misses to memory: %d)\n", s.L2Accesses, s.L2Misses)
	fmt.Printf("branches        %d (mispredicts %d)\n", s.Branches, s.BranchMispredicts)
	fmt.Printf("returns         %d (RAS mispredicts %d)\n", s.Returns, s.RASMispredicts)
	fmt.Printf("ctx switches    %d\n", s.Switches)
	tp := s.TotalPrefetch()
	if tp.Issued > 0 {
		fmt.Printf("prefetches      issued=%d squashed=%d hits=%d delayed=%d useless=%d (useful %.1f%%)\n",
			tp.Issued, tp.Squashed, tp.PrefHits, tp.DelayedHits, tp.Useless, 100*tp.UsefulFraction())
		fmt.Printf("  NL portion    issued=%d hits=%d delayed=%d useless=%d\n",
			s.NL.Issued, s.NL.PrefHits, s.NL.DelayedHits, s.NL.Useless)
		fmt.Printf("  CGHC portion  issued=%d hits=%d delayed=%d useless=%d\n",
			s.CGHC.Issued, s.CGHC.PrefHits, s.CGHC.DelayedHits, s.CGHC.Useless)
	}
	if res.CGPStats != nil {
		h := res.CGPStats.History
		fmt.Printf("CGHC            pf-hit=%d pf-miss=%d upd-hit=%d upd-miss=%d L2hit=%d swaps=%d\n",
			h.PrefetchHits, h.PrefetchMisses, h.UpdateHits, h.UpdateMisses, h.LevelTwoHits, h.Swaps)
		fmt.Printf("CGHC hit rates  prefetch=%.1f%% update=%.1f%%\n",
			100*h.PrefetchHitRate(), 100*h.UpdateHitRate())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgpsim:", err)
	os.Exit(1)
}
