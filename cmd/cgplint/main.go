// Command cgplint statically enforces the simulator's determinism and
// stats-unit contracts. Run it directly:
//
//	go run ./cmd/cgplint ./...
//
// or as a vet tool, which shares go vet's package loading and build
// cache:
//
//	go build -o /tmp/cgplint ./cmd/cgplint
//	go vet -vettool=/tmp/cgplint ./...
//
// Five analyzers run (see their package docs under internal/analysis):
//
//	detrand     no wall-clock reads, global math/rand, or cross-package imports
//	            of wall-domain quantities (units.Wall* results) in deterministic packages
//	maporder    no map-iteration order leaking into ordered output
//	cyclesafe   no narrowing or cross-unit conversion of internal/units types;
//	            wall-domain values (units.Wall*) may not exit toward deterministic
//	            output or be formatted outside their serialization boundary
//	lockcheck   no by-value sync primitives; flight keys via fingerprint() only
//	paniccheck  no recover() that discards the recovered value instead of attributing it
//
// Exceptions are written in the source as
//
//	//cgplint:ignore <analyzer> <reason>
//
// covering the same line or the line below; the reason is mandatory
// and directives with typos or missing reasons are themselves errors.
package main

import (
	"cgp/internal/analysis/cyclesafe"
	"cgp/internal/analysis/detrand"
	"cgp/internal/analysis/driver"
	"cgp/internal/analysis/lockcheck"
	"cgp/internal/analysis/maporder"
	"cgp/internal/analysis/paniccheck"
)

func main() {
	driver.Main(
		detrand.Analyzer,
		maporder.Analyzer,
		cyclesafe.Analyzer,
		lockcheck.Analyzer,
		paniccheck.Analyzer,
	)
}
