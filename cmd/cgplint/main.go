// Command cgplint statically enforces the simulator's determinism,
// stats-unit, and hot-path contracts. Run it directly:
//
//	go run ./cmd/cgplint ./...
//
// or as a vet tool, which shares go vet's package loading and build
// cache:
//
//	go build -o /tmp/cgplint ./cmd/cgplint
//	go vet -vettool=/tmp/cgplint ./...
//
// Eight analyzers run (see their package docs under internal/analysis):
//
//	detrand     no wall-clock reads, global math/rand, or cross-package imports
//	            of wall-domain quantities (units.Wall* results) in deterministic packages
//	maporder    no map-iteration order leaking into ordered output
//	cyclesafe   no narrowing or cross-unit conversion of internal/units types;
//	            wall-domain values (units.Wall*) may not exit toward deterministic
//	            output or be formatted outside their serialization boundary
//	lockcheck   no by-value sync primitives; flight keys via fingerprint() only
//	paniccheck  no recover() that discards the recovered value instead of attributing it
//	allocfree   //cgplint:hotpath functions are transitively free of heap
//	            allocation, boxing, map iteration, defer, and closure creation
//	walltaint   no wall-clock-derived value flows into a deterministic sink
//	            (obs registry, figure bytes, config fingerprints)
//	ctxflow     context threading below campaign entry points: no
//	            Background/TODO in library code, no dropped ctx parameters,
//	            no ctx-blind blocking channel operations
//
// allocfree and walltaint reason across package boundaries through
// function summaries carried in vet facts, so both invocation styles
// above see whole-module results without whole-program loading.
//
// Useful flags (standalone form; under go vet use -cgplint.json and
// -cgplint.unusedignores):
//
//	-json            emit diagnostics as one merged JSON document
//	-unused-ignores  report cgplint:ignore directives that suppress nothing
//
// Exceptions are written in the source as
//
//	//cgplint:ignore <analyzer> <reason>
//
// covering the same line or the line below; the reason is mandatory
// and directives with typos or missing reasons are themselves errors.
package main

import (
	"cgp/internal/analysis/allocfree"
	"cgp/internal/analysis/ctxflow"
	"cgp/internal/analysis/cyclesafe"
	"cgp/internal/analysis/detrand"
	"cgp/internal/analysis/driver"
	"cgp/internal/analysis/lockcheck"
	"cgp/internal/analysis/maporder"
	"cgp/internal/analysis/paniccheck"
	"cgp/internal/analysis/walltaint"
)

func main() {
	driver.Main(
		detrand.Analyzer,
		maporder.Analyzer,
		cyclesafe.Analyzer,
		lockcheck.Analyzer,
		paniccheck.Analyzer,
		allocfree.Analyzer,
		walltaint.Analyzer,
		ctxflow.Analyzer,
	)
}
