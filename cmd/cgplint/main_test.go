package main_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildTool compiles cgplint into a temp dir and returns its path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cgplint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building cgplint: %v\n%s", err, out)
	}
	return bin
}

// fixtureModule writes a throwaway module named cgp (the tool's domain
// gate keys on the module path) with one violation per new pass, a
// clean package, and a stale ignore.
func fixtureModule(t *testing.T) string {
	t.Helper()
	files := map[string]string{
		"go.mod": "module cgp\n\ngo 1.21\n",
		"dirty/dirty.go": `package dirty

//cgplint:hotpath
func Hot(n int) []int {
	return make([]int, n)
}
`,
		"ctxpkg/ctx.go": `package ctxpkg

import "context"

func Mint() context.Context {
	return context.Background()
}
`,
		"clean/clean.go": `package clean

//cgplint:hotpath
func Add(a, b int) int { return a + b }
`,
		"stale/stale.go": `package stale

//cgplint:ignore detrand nothing on the next line has ever tripped detrand
var X = 1
`,
	}
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// run executes the command in dir, returning its exit code and
// separated output streams.
func run(t *testing.T, dir string, name string, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %s %v: %v", name, args, err)
		}
		code = ee.ExitCode()
	}
	return code, stdout.String(), stderr.String()
}

func TestIntegration(t *testing.T) {
	bin := buildTool(t)
	dir := fixtureModule(t)

	allocDiag := regexp.MustCompile(`dirty\.go:5:\d+: make allocates on the hot path \(cgplint/allocfree\)`)
	ctxDiag := regexp.MustCompile(`ctx\.go:6:\d+: context\.Background in library code.*\(cgplint/ctxflow\)`)

	t.Run("standalone", func(t *testing.T) {
		code, _, stderr := run(t, dir, bin, "./...")
		if code != 1 {
			t.Errorf("exit code = %d, want 1\n%s", code, stderr)
		}
		if !allocDiag.MatchString(stderr) {
			t.Errorf("missing allocfree diagnostic with position:\n%s", stderr)
		}
		if !ctxDiag.MatchString(stderr) {
			t.Errorf("missing ctxflow diagnostic with position:\n%s", stderr)
		}
		if !regexp.MustCompile(`cgplint: \d+ findings \(.*allocfree 1.*\)`).MatchString(stderr) {
			t.Errorf("missing per-pass summary line:\n%s", stderr)
		}
	})

	t.Run("standalone-clean", func(t *testing.T) {
		code, _, stderr := run(t, dir, bin, "./clean")
		if code != 0 {
			t.Errorf("exit code = %d, want 0\n%s", code, stderr)
		}
	})

	t.Run("vettool", func(t *testing.T) {
		code, stdout, stderr := run(t, dir, "go", "vet", "-vettool="+bin, "./...")
		if code == 0 {
			t.Errorf("exit code = 0, want nonzero\n%s%s", stdout, stderr)
		}
		if !allocDiag.MatchString(stderr) {
			t.Errorf("missing allocfree diagnostic under go vet:\n%s%s", stdout, stderr)
		}
	})

	t.Run("json", func(t *testing.T) {
		code, stdout, stderr := run(t, dir, bin, "-json", "./...")
		if code != 1 {
			t.Errorf("exit code = %d, want 1\n%s", code, stderr)
		}
		var merged map[string]map[string][]struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal([]byte(stdout), &merged); err != nil {
			t.Fatalf("stdout is not one JSON document: %v\n%s", err, stdout)
		}
		ds := merged["cgp/dirty"]["allocfree"]
		if len(ds) != 1 {
			t.Fatalf("cgp/dirty allocfree diagnostics = %v, want exactly one", ds)
		}
		if !strings.Contains(ds[0].Posn, "dirty.go:5:") {
			t.Errorf("posn = %q, want dirty.go:5:<col>", ds[0].Posn)
		}
		if !strings.Contains(ds[0].Message, "make allocates") {
			t.Errorf("message = %q", ds[0].Message)
		}
		if len(merged["cgp/ctxpkg"]["ctxflow"]) != 1 {
			t.Errorf("cgp/ctxpkg ctxflow diagnostics missing: %v", merged)
		}
	})

	t.Run("unused-ignores", func(t *testing.T) {
		code, _, stderr := run(t, dir, bin, "-unused-ignores", "./stale/...")
		if code != 1 {
			t.Errorf("exit code = %d, want 1\n%s", code, stderr)
		}
		if !regexp.MustCompile(`stale\.go:3:\d+: cgplint:ignore detrand suppresses nothing.*\(cgplint/unusedignores\)`).MatchString(stderr) {
			t.Errorf("missing unused-ignore diagnostic:\n%s", stderr)
		}
	})

	t.Run("without-unused-ignores-flag", func(t *testing.T) {
		code, _, stderr := run(t, dir, bin, "./stale/...")
		if code != 0 {
			t.Errorf("exit code = %d, want 0 (stale ignores only matter under -unused-ignores)\n%s", code, stderr)
		}
	})
}
