// cgpserve: the hardened SQL serving front-end over the instrumented
// engine, plus a load-driving client mode for benchmarks and CI.
//
// Serve (loads Wisconsin + optionally TPC-H, serves until SIGTERM):
//
//	cgpserve -addr 127.0.0.1:7744 -http 127.0.0.1:7745 -capture live.cgptrc
//
// A capture, when requested, records every served query at the probe
// level and seals on graceful shutdown; the sealed file registers as
// the "captured" workload (experiments -capture live.cgptrc).
//
// Drive (hammer a serving process, report queries/sec):
//
//	cgpserve -drive 127.0.0.1:7744 -clients 4 -queries 200
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"cgp/internal/db"
	"cgp/internal/obs"
	"cgp/internal/server"
	"cgp/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7744", "TCP listen address")
		httpAddr = flag.String("http", "", "HTTP fallback listen address (empty disables)")
		capture  = flag.String("capture", "", "seal a live probe-level capture to this file on graceful shutdown")
		capEvery = flag.Int("capture-sample", 1, "record every Nth served query (1 = all; long-lived attachment wants the library default, 64)")
		runlog   = flag.String("runlog", "", "write the serving run log (JSONL) to this file")
		wiscN    = flag.Int("wisc-n", 2000, "Wisconsin relation size")
		tpch     = flag.Bool("tpch", false, "also load the TPC-H tables")
		maxConns = flag.Int("max-conns", 64, "connection limit")
		inflight = flag.Int("max-inflight", 8, "concurrent admitted queries")
		rate     = flag.Float64("rate", 0, "token-bucket refill rate in queries/sec (0 = unlimited)")
		burst    = flag.Float64("burst", 0, "token-bucket burst (0 = rate)")
		deadline = flag.Duration("deadline", 5*time.Second, "per-query execution budget")

		drive   = flag.String("drive", "", "drive load against this address instead of serving")
		clients = flag.Int("clients", 4, "drive: concurrent client connections")
		queries = flag.Int("queries", 100, "drive: queries per client")
	)
	flag.Parse()

	if *drive != "" {
		if err := driveLoad(*drive, *clients, *queries); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := serve(*addr, *httpAddr, *capture, *runlog, *wiscN, *tpch,
		*maxConns, *inflight, *capEvery, *rate, *burst, *deadline); err != nil {
		log.Fatal(err)
	}
}

func serve(addr, httpAddr, capture, runlog string, wiscN int, tpch bool,
	maxConns, inflight, capEvery int, rate, burst float64, deadline time.Duration) error {
	e := db.NewEngine(db.Options{BufferFrames: 8192})
	if err := (workload.WisconsinDB{N: wiscN}).Load(e, 42); err != nil {
		return err
	}
	if tpch {
		if err := workload.LoadTPCH(e, workload.DefaultTPCHScale(), 42); err != nil {
			return err
		}
	}

	wall := obs.NewWallRegistry()
	var rl *obs.RunLog
	if runlog != "" {
		f, err := os.Create(runlog)
		if err != nil {
			return err
		}
		defer f.Close()
		rl = obs.NewRunLog(f)
	}
	var lc *server.LiveCapture
	if capture != "" {
		lc = server.NewLiveCapture(server.CaptureOptions{SampleEvery: capEvery, Wall: wall, Log: rl})
	}

	s := server.New(e, server.Options{
		Addr:          addr,
		HTTPAddr:      httpAddr,
		MaxConns:      maxConns,
		MaxInflight:   inflight,
		RatePerSec:    rate,
		Burst:         burst,
		QueryDeadline: deadline,
		Capture:       lc,
		Wall:          wall,
		Log:           rl,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := s.Start(ctx); err != nil {
		return err
	}
	fmt.Printf("cgpserve: listening on %s", s.Addr())
	if httpAddr != "" {
		fmt.Printf(" (http %s)", s.HTTPAddr())
	}
	fmt.Println()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "cgpserve: draining...")
	s.Wait()
	if lc != nil {
		f, err := os.Create(capture)
		if err != nil {
			return err
		}
		rec, err := lc.Seal(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cgpserve: sealed %s: %d queries (%d sampled away), %d events, %d dropped\n",
			capture, lc.Committed(), lc.Skipped(), rec.Events(), lc.Drops())
	}
	if rl != nil {
		return rl.Err()
	}
	return nil
}

// driveQueries is the fixed statement mix the load generator cycles
// through — point lookups, range scans, an aggregate and a join-free
// group-by, roughly the Wisconsin selection mix.
var driveQueries = []string{
	"SELECT unique1, unique2 FROM big1 WHERE unique2 = 42",
	"SELECT unique1 FROM big1 WHERE unique2 BETWEEN 100 AND 199",
	"SELECT COUNT(*) AS n FROM big1 WHERE ten = 3",
	"SELECT two, COUNT(*) AS n FROM big1 GROUP BY two",
	"SELECT unique1 FROM small WHERE unique2 < 20",
}

// driveLoad hammers a serving process and reports throughput. Shed
// queries (ErrOverloaded) count separately — against an overloaded
// server they are the expected outcome, not a failure.
func driveLoad(addr string, clients, queries int) error {
	var (
		mu           sync.Mutex
		served, shed int
		failures     []error
	)
	start := time.Now() //cgplint:ignore detrand wall-clock throughput measurement is the drive mode's entire output; it never feeds a figure
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				mu.Lock()
				failures = append(failures, err)
				mu.Unlock()
				return
			}
			defer c.Close()
			for j := 0; j < queries; j++ {
				_, err := c.Query(driveQueries[(id+j)%len(driveQueries)])
				mu.Lock()
				switch {
				case err == nil:
					served++
				case errors.Is(err, server.ErrOverloaded):
					shed++
				default:
					failures = append(failures, err)
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start) //cgplint:ignore detrand see above: drive-mode wall throughput
	if len(failures) > 0 {
		return fmt.Errorf("drive: %d queries failed, first: %w", len(failures), failures[0])
	}
	qps := float64(served) / elapsed.Seconds()
	fmt.Printf("drive: %d served, %d shed in %v (%.0f qps, %d clients)\n",
		served, shed, elapsed.Round(time.Millisecond), qps, clients)
	return nil
}
