// cgpserve: the hardened SQL serving front-end over the instrumented
// engine, plus a load-driving client mode for benchmarks and CI.
//
// Serve (loads Wisconsin + optionally TPC-H, serves until SIGTERM):
//
//	cgpserve -addr 127.0.0.1:7744 -http 127.0.0.1:7745 -capture live.cgptrc
//
// A capture, when requested, records every served query at the probe
// level and seals on graceful shutdown; the sealed file registers as
// the "captured" workload (experiments -capture live.cgptrc).
//
// Drive (hammer a serving process, report queries/sec):
//
//	cgpserve -drive 127.0.0.1:7744 -clients 4 -queries 200 -traced
//
// -traced tags every driven query with a client-minted trace ID
// (client i uses IDs (i+1)<<32 + seq), which the server threads
// through its spans, the slow-query log and — when capturing — the
// sealed capture, so `cgptrace replay -by-query` can join wall-clock
// latency to simulated CGP attribution per query.
//
// CI check modes (exit nonzero on violation):
//
//	cgpserve -check-metrics http://127.0.0.1:7745/metrics
//	cgpserve -check-querylog slow.jsonl
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"cgp/internal/db"
	"cgp/internal/obs"
	"cgp/internal/server"
	"cgp/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7744", "TCP listen address")
		httpAddr = flag.String("http", "", "HTTP fallback listen address (empty disables)")
		capture  = flag.String("capture", "", "seal a live probe-level capture to this file on graceful shutdown")
		capEvery = flag.Int("capture-sample", 1, "record every Nth served query (1 = all; long-lived attachment wants the library default, 64)")
		runlog   = flag.String("runlog", "", "write the serving run log (JSONL) to this file")
		wiscN    = flag.Int("wisc-n", 2000, "Wisconsin relation size")
		tpch     = flag.Bool("tpch", false, "also load the TPC-H tables")
		maxConns = flag.Int("max-conns", 64, "connection limit")
		inflight = flag.Int("max-inflight", 8, "concurrent admitted queries")
		rate     = flag.Float64("rate", 0, "token-bucket refill rate in queries/sec (0 = unlimited)")
		burst    = flag.Float64("burst", 0, "token-bucket burst (0 = rate)")
		deadline = flag.Duration("deadline", 5*time.Second, "per-query execution budget")

		querylog  = flag.String("querylog", "", "write the structured slow-query log (JSONL) to this file")
		slow      = flag.Duration("slow", 50*time.Millisecond, "slow-query threshold for -querylog (0 logs every query)")
		tracejson = flag.String("tracejson", "", "write retained query spans as Perfetto-loadable JSON to this file on shutdown")

		drive   = flag.String("drive", "", "drive load against this address instead of serving")
		clients = flag.Int("clients", 4, "drive: concurrent client connections")
		queries = flag.Int("queries", 100, "drive: queries per client")
		traced  = flag.Bool("traced", false, "drive: tag every query with a client-minted trace ID")

		checkMetrics  = flag.String("check-metrics", "", "fetch this /metrics URL, lint the Prometheus exposition, exit")
		checkQuerylog = flag.String("check-querylog", "", "validate this slow-query log's schema, exit")
	)
	flag.Parse()

	switch {
	case *checkMetrics != "":
		if err := lintMetrics(*checkMetrics); err != nil {
			log.Fatal(err)
		}
		return
	case *checkQuerylog != "":
		if err := lintQuerylog(*checkQuerylog); err != nil {
			log.Fatal(err)
		}
		return
	case *drive != "":
		if err := driveLoad(*drive, *clients, *queries, *traced); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := serve(serveConfig{
		addr: *addr, httpAddr: *httpAddr, capture: *capture, runlog: *runlog,
		querylog: *querylog, slow: *slow, tracejson: *tracejson,
		wiscN: *wiscN, tpch: *tpch, maxConns: *maxConns, inflight: *inflight,
		capEvery: *capEvery, rate: *rate, burst: *burst, deadline: *deadline,
	}); err != nil {
		log.Fatal(err)
	}
}

type serveConfig struct {
	addr, httpAddr, capture, runlog string
	querylog, tracejson             string
	slow                            time.Duration
	wiscN                           int
	tpch                            bool
	maxConns, inflight, capEvery    int
	rate, burst                     float64
	deadline                        time.Duration
}

func serve(cfg serveConfig) error {
	e := db.NewEngine(db.Options{BufferFrames: 8192})
	if err := (workload.WisconsinDB{N: cfg.wiscN}).Load(e, 42); err != nil {
		return err
	}
	if cfg.tpch {
		if err := workload.LoadTPCH(e, workload.DefaultTPCHScale(), 42); err != nil {
			return err
		}
	}

	wall := obs.NewWallRegistry()
	var rl *obs.RunLog
	if cfg.runlog != "" {
		f, err := os.Create(cfg.runlog)
		if err != nil {
			return err
		}
		defer f.Close()
		rl = obs.NewRunLog(f)
	}
	var lc *server.LiveCapture
	if cfg.capture != "" {
		lc = server.NewLiveCapture(server.CaptureOptions{SampleEvery: cfg.capEvery, Wall: wall, Log: rl})
	}

	// The tracer is always on while serving: the untagged per-query cost
	// is a handful of clock reads and atomic adds, and it is what makes
	// /metrics stage percentiles and the trace-ID echo available without
	// a restart. The slow-query log and the Perfetto export stay opt-in.
	topts := obs.QueryTraceOptions{SlowThreshold: cfg.slow}
	var qlf *os.File
	if cfg.querylog != "" {
		f, err := os.Create(cfg.querylog)
		if err != nil {
			return err
		}
		qlf = f
		topts.LogW = f
	}
	tracer := obs.NewQueryTracer(topts)

	s := server.New(e, server.Options{
		Addr:          cfg.addr,
		HTTPAddr:      cfg.httpAddr,
		MaxConns:      cfg.maxConns,
		MaxInflight:   cfg.inflight,
		RatePerSec:    cfg.rate,
		Burst:         cfg.burst,
		QueryDeadline: cfg.deadline,
		Capture:       lc,
		Wall:          wall,
		Log:           rl,
		Trace:         tracer,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := s.Start(ctx); err != nil {
		return err
	}
	fmt.Printf("cgpserve: listening on %s", s.Addr())
	if cfg.httpAddr != "" {
		fmt.Printf(" (http %s)", s.HTTPAddr())
	}
	fmt.Println()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "cgpserve: draining...")
	s.Wait()
	if lc != nil {
		f, err := os.Create(cfg.capture)
		if err != nil {
			return err
		}
		rec, err := lc.Seal(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cgpserve: sealed %s: %d queries (%d sampled away), %d events, %d dropped\n",
			cfg.capture, lc.Committed(), lc.Skipped(), rec.Events(), lc.Drops())
	}
	if err := tracer.Close(); err != nil {
		return fmt.Errorf("query log: %w", err)
	}
	if qlf != nil {
		if err := qlf.Close(); err != nil {
			return err
		}
	}
	if cfg.tracejson != "" {
		f, err := os.Create(cfg.tracejson)
		if err != nil {
			return err
		}
		err = tracer.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "cgpserve: traced %d queries (%d slow, %d spans dropped)\n",
		tracer.Traced(), tracer.Slow(), tracer.Dropped())
	if rl != nil {
		return rl.Err()
	}
	return nil
}

// driveQueries is the fixed statement mix the load generator cycles
// through — point lookups, range scans, an aggregate and a join-free
// group-by, roughly the Wisconsin selection mix.
var driveQueries = []string{
	"SELECT unique1, unique2 FROM big1 WHERE unique2 = 42",
	"SELECT unique1 FROM big1 WHERE unique2 BETWEEN 100 AND 199",
	"SELECT COUNT(*) AS n FROM big1 WHERE ten = 3",
	"SELECT two, COUNT(*) AS n FROM big1 GROUP BY two",
	"SELECT unique1 FROM small WHERE unique2 < 20",
}

// driveLoad hammers a serving process and reports throughput. Shed
// queries (ErrOverloaded) count separately — against an overloaded
// server they are the expected outcome, not a failure. With traced
// set, client i mints trace IDs (i+1)<<32 + seq, so every driven
// query's ID is distinct across clients and greppable in the server's
// slow-query log and capture.
func driveLoad(addr string, clients, queries int, traced bool) error {
	var (
		mu           sync.Mutex
		served, shed int
		failures     []error
		lastIDs      []uint64
	)
	start := time.Now() //cgplint:ignore detrand wall-clock throughput measurement is the drive mode's entire output; it never feeds a figure
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				mu.Lock()
				failures = append(failures, err)
				mu.Unlock()
				return
			}
			defer c.Close()
			if traced {
				c.SetTraceBase(uint64(id+1) << 32)
			}
			for j := 0; j < queries; j++ {
				_, err := c.Query(driveQueries[(id+j)%len(driveQueries)])
				mu.Lock()
				switch {
				case err == nil:
					served++
				case errors.Is(err, server.ErrOverloaded):
					shed++
				default:
					failures = append(failures, err)
				}
				mu.Unlock()
			}
			mu.Lock()
			lastIDs = append(lastIDs, c.LastTraceID())
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start) //cgplint:ignore detrand see above: drive-mode wall throughput
	if len(failures) > 0 {
		return fmt.Errorf("drive: %d queries failed, first: %w", len(failures), failures[0])
	}
	qps := float64(served) / elapsed.Seconds()
	fmt.Printf("drive: %d served, %d shed in %v (%.0f qps, %d clients)\n",
		served, shed, elapsed.Round(time.Millisecond), qps, clients)
	if traced {
		fmt.Printf("drive: traced; per-client last trace IDs:")
		for _, id := range lastIDs {
			fmt.Printf(" %016x", id)
		}
		fmt.Println()
	}
	return nil
}

// lintMetrics fetches a /metrics URL and runs the full Prometheus
// text-format lint over the body, additionally requiring the stage
// latency summary to be present — the CI smoke step's gate.
func lintMetrics(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("check-metrics: %s returned %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if err := obs.ValidatePrometheusText(body); err != nil {
		return fmt.Errorf("check-metrics: %w", err)
	}
	if !strings.Contains(string(body), "cgp_query_stage_latency_ns") {
		return fmt.Errorf("check-metrics: no cgp_query_stage_latency_ns summary in %s", url)
	}
	fmt.Printf("check-metrics: %s ok (%d bytes)\n", url, len(body))
	return nil
}

// lintQuerylog validates a slow-query log file's JSONL schema and
// requires at least one entry.
func lintQuerylog(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, err := obs.ValidateQueryLog(f)
	if err != nil {
		return fmt.Errorf("check-querylog: %w", err)
	}
	if len(entries) == 0 {
		return fmt.Errorf("check-querylog: %s is empty", path)
	}
	slow := 0
	for i := range entries {
		if entries[i].Slow {
			slow++
		}
	}
	fmt.Printf("check-querylog: %s ok (%d entries, %d slow)\n", path, len(entries), slow)
	return nil
}
