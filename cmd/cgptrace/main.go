// Command cgptrace records, inspects and replays binary trace files —
// the capture/replay workflow of trace-driven simulation.
//
//	cgptrace record -workload wisc-prof -o wisc.cgptrc
//	cgptrace info wisc.cgptrc
//	cgptrace dump -n 40 wisc.cgptrc
//	cgptrace replay -prefetch cgp -n 4 wisc.cgptrc
//	cgptrace replay -prefetch cgp -n 4 -attr 10 wisc.cgptrc
//	cgptrace replay -prefetch nl -sample wisc.cgptrc
//
// replay -attr N appends a per-function attribution subreport: the N
// functions with the most prefetch-relevant demand fetches, with each
// function's coverage, accuracy and mean prefetch timeliness. Raw
// traces carry no symbol registry, so functions are identified by
// start address.
//
// replay -sample runs a sampled replay: the trace is loaded into a
// sealed in-memory recording (skipping needs its event index), most of
// the stream is skipped undecoded or functionally warmed, and only
// periodic windows are simulated in detail. The report shows estimated
// cycles/misses ±95% CI plus the per-tier event accounting (skipped /
// fast-forwarded / detailed).
//
// Probe-level captures (live traffic sealed by cgpserve -capture) are
// detected automatically: info and dump show the probe events as-is,
// and replay synthesizes the address-level stream over the database
// system's O5 layout (seeded by -seed) before simulating it.
//
// replay -by-query joins the simulation back to the serving layer: a
// capture of trace-tagged traffic (cgpserve drive -traced) carries
// each query's trace ID, and -by-query prints per-trace-ID CGP
// attribution (fetches, misses, coverage, accuracy, timeliness).
// Adding -querylog slow.jsonl joins in the server's wall-clock stage
// latencies for the same IDs, so one table links what a query cost on
// the wire to what it cost in the simulated memory hierarchy:
//
//	cgptrace replay -prefetch cgp -by-query -querylog slow.jsonl live.cgptrc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"cgp/internal/core"
	"cgp/internal/cpu"
	"cgp/internal/db"
	"cgp/internal/obs"
	"cgp/internal/prefetch"
	"cgp/internal/program"
	"cgp/internal/sample"
	"cgp/internal/trace"
	"cgp/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "dump":
		err = dump(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgptrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cgptrace {record|info|dump|replay} [flags] [file]")
	os.Exit(2)
}

func findWorkload(name string, wiscN int, seed int64) (*workload.Workload, error) {
	opts := workload.DBOptions{WiscN: wiscN, Seed: seed}
	for _, w := range workload.DBWorkloads(opts) {
		if w.Name == name {
			return w, nil
		}
	}
	if spec, err := workload.CPU2000ByName(name); err == nil {
		return workload.NewCPU2000(spec, seed), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	name := fs.String("workload", "wisc-prof", "workload to record")
	layout := fs.String("layout", "o5", "binary layout: o5 (om requires a profile run and is produced by the library API)")
	out := fs.String("o", "trace.cgptrc", "output file")
	wiscN := fs.Int("wisc-n", 1000, "Wisconsin cardinality")
	seed := fs.Int64("seed", 42, "seed")
	fs.Parse(args)
	if *layout != "o5" {
		return fmt.Errorf("record supports -layout o5 (use the library for OM traces)")
	}
	w, err := findWorkload(*name, *wiscN, *seed)
	if err != nil {
		return err
	}
	img := program.LayoutO5(w.NewRegistry())
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	tw, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	var st trace.Stats
	if err := w.Run(img, trace.Tee(&st, tw)); err != nil {
		return err
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %s: %d events, %d instructions -> %s\n", w.Name, st.Events, st.Instructions, *out)
	return nil
}

func openTrace(path string) (*trace.Reader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info needs a trace file")
	}
	r, f, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	var st trace.Stats
	if err := r.Replay(&st); err != nil {
		return err
	}
	fmt.Printf("events          %d\n", st.Events)
	fmt.Printf("instructions    %d\n", st.Instructions)
	fmt.Printf("calls/returns   %d / %d\n", st.Calls, st.Returns)
	fmt.Printf("branches        %d (taken %d)\n", st.Branches, st.TakenBrs)
	fmt.Printf("loops           %d\n", st.Loops)
	fmt.Printf("data refs       %d (%d bytes)\n", st.DataRefs, st.DataBytes)
	fmt.Printf("ctx switches    %d\n", st.Switches)
	if st.QueryTags > 0 {
		fmt.Printf("query tags      %d (trace-tagged queries; replay -by-query joins attribution)\n", st.QueryTags)
	}
	if st.ProbeOps > 0 {
		fmt.Printf("probe ops       %d (probe-level capture; replay synthesizes addresses)\n", st.ProbeOps)
		return nil
	}
	fmt.Printf("instr/call      %.1f\n", st.InstructionsPerCall())
	fmt.Printf("events/kinst    %.1f\n", st.EventsPerKInstr())
	return nil
}

func dump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	n := fs.Int("n", 20, "events to print")
	skip := fs.Int("skip", 0, "events to skip first")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("dump needs a trace file")
	}
	r, f, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	for i := 0; i < *skip+*n; i++ {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if i < *skip {
			continue
		}
		switch ev.Kind {
		case trace.KindRun:
			fmt.Printf("%-6s %#x +%d\n", ev.Kind, ev.Addr, ev.N)
		case trace.KindLoop:
			fmt.Printf("%-6s %#x body=%d iters=%d\n", ev.Kind, ev.Addr, ev.N, ev.Iters)
		case trace.KindBranch:
			fmt.Printf("%-6s %#x taken=%v -> %#x\n", ev.Kind, ev.Addr, ev.Taken, ev.Target)
		case trace.KindCall:
			fmt.Printf("%-6s %#x -> fn%d@%#x (from fn%d)\n", ev.Kind, ev.Addr, ev.Fn, ev.Target, ev.Caller)
		case trace.KindReturn:
			fmt.Printf("%-6s fn%d -> %#x\n", ev.Kind, ev.Fn, ev.Target)
		case trace.KindData:
			rw := "r"
			if ev.Taken {
				rw = "w"
			}
			fmt.Printf("%-6s %#x %dB %s\n", ev.Kind, ev.Addr, ev.N, rw)
		case trace.KindSwitch:
			fmt.Printf("%-6s thread %d\n", ev.Kind, ev.N)
		case trace.KindProbeEnter:
			fmt.Printf("%-6s fn%d\n", ev.Kind, ev.Fn)
		case trace.KindProbeExit:
			fmt.Printf("%-6s\n", ev.Kind)
		case trace.KindProbeWork:
			fmt.Printf("%-6s +%d\n", ev.Kind, ev.N)
		case trace.KindProbeData:
			rw := "r"
			if ev.Taken {
				rw = "w"
			}
			fmt.Printf("%-6s %#x %dB %s\n", ev.Kind, ev.Addr, ev.N, rw)
		case trace.KindQueryTag:
			fmt.Printf("%-6s %016x\n", ev.Kind, uint64(ev.Addr))
		}
	}
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	pref := fs.String("prefetch", "none", "none, nl, ranl, cgp")
	degree := fs.Int("n", 4, "prefetch degree")
	perfect := fs.Bool("perfect", false, "perfect I-cache")
	attrTop := fs.Int("attr", 0, "print per-function attribution for the top N functions (0 = off)")
	byQuery := fs.Bool("by-query", false, "print per-trace-ID attribution for trace-tagged captures")
	querylog := fs.String("querylog", "", "join the server's slow-query log (JSONL) into the -by-query table")
	sampled := fs.Bool("sample", false, "sampled replay: estimate whole-run cycles/misses from periodic detailed windows")
	samplePeriod := fs.Int64("sample-period", sample.Default().PeriodEvents, "events per sampling period")
	sampleFWarm := fs.Int64("sample-fwarm", sample.Default().FunctionalWarmEvents, "functionally warmed events before each window")
	sampleWarm := fs.Int64("sample-warmup", sample.Default().DetailWarmEvents, "detailed warm-up events before each window")
	sampleWin := fs.Int64("sample-window", sample.Default().WindowEvents, "measured events per window")
	sampleRand := fs.Bool("sample-random-offset", false, "place each period's window at a seeded random offset")
	sampleSeed := fs.Int64("sample-seed", 42, "seed for -sample-random-offset")
	seed := fs.Int64("seed", 42, "synthesis seed for probe-level captures")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("replay needs a trace file")
	}
	var pf prefetch.Prefetcher
	switch *pref {
	case "none", "":
		pf = prefetch.None{}
	case "nl":
		pf = prefetch.NewNL(*degree)
	case "ranl":
		pf = prefetch.NewRunAheadNL(*degree, *degree)
	case "cgp":
		pf = core.New(core.Config{Lines: *degree, L1Bytes: 2048, L2Bytes: 32 * 1024})
	default:
		return fmt.Errorf("unknown prefetcher %q", *pref)
	}
	cfg := cpu.DefaultConfig()
	cfg.PerfectICache = *perfect
	c := cpu.New(cfg, pf)
	if *attrTop > 0 || *byQuery {
		c.EnableAttribution()
	}
	probe, err := isProbeFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if *sampled {
		if probe {
			return fmt.Errorf("-sample needs an address-level trace; %s is a probe-level capture (replay it unsampled, or record the synthesized stream first)", fs.Arg(0))
		}
		scfg := sample.Config{
			PeriodEvents:         *samplePeriod,
			FunctionalWarmEvents: *sampleFWarm,
			DetailWarmEvents:     *sampleWarm,
			WindowEvents:         *sampleWin,
			RandomOffset:         *sampleRand,
			Seed:                 uint64(*sampleSeed),
		}.WithDefaults()
		return replaySampled(fs.Arg(0), c, pf, scfg)
	}
	if probe {
		if err := replayProbeInto(fs.Arg(0), c, *seed); err != nil {
			return err
		}
	} else {
		r, f, err := openTrace(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.Replay(c); err != nil {
			return err
		}
	}
	s := c.Finish()
	fmt.Printf("prefetcher      %s\n", pf.Name())
	fmt.Printf("cycles          %d (IPC %.3f)\n", s.Cycles, s.IPC())
	fmt.Printf("I-cache misses  %d (%.2f/kinst)\n", s.ICacheMisses, s.IMissPerKInstr())
	tp := s.TotalPrefetch()
	if tp.Issued > 0 {
		fmt.Printf("prefetches      issued=%d hits=%d delayed=%d useless=%d\n",
			tp.Issued, tp.PrefHits, tp.DelayedHits, tp.Useless)
	}
	if *attrTop > 0 {
		printAttribution(s.Attribution, *attrTop)
	}
	if *byQuery {
		if err := printByQuery(s.QueryAttr, *querylog); err != nil {
			return err
		}
	}
	return nil
}

// printByQuery renders the per-trace-ID attribution table, optionally
// joined with the serving layer's slow-query log: for each trace ID
// the capture carried, the simulated CGP picture (fetches, misses,
// coverage, accuracy, timeliness) and — when the log has the same ID —
// the wall-clock total and per-stage latencies the server measured.
// Rows sort by trace ID, so reruns over the same capture print
// byte-identical tables.
func printByQuery(rows []cpu.QueryAttribution, querylog string) error {
	if len(rows) == 0 {
		return fmt.Errorf("-by-query: capture carries no query tags (drive the server with -traced clients)")
	}
	byID := map[uint64]obs.QueryLogEntry{}
	if querylog != "" {
		f, err := os.Open(querylog)
		if err != nil {
			return err
		}
		entries, err := obs.ValidateQueryLog(f)
		f.Close()
		if err != nil {
			return err
		}
		for _, e := range entries {
			byID[e.ID()] = e
		}
	}
	fmt.Printf("\nper-query attribution (%d trace-tagged queries):\n", len(rows))
	fmt.Printf("%-16s %8s %8s %8s %8s %6s %6s %10s", "trace_id", "fetches", "misses", "prfhits", "delayed", "cover", "accur", "timeliness")
	if querylog != "" {
		fmt.Printf("  %8s %10s %s", "status", "wall_ns", "stages")
	}
	fmt.Println()
	for i := range rows {
		r := &rows[i]
		fmt.Printf("%016x %8d %8d %8d %8d %6.2f %6.2f %10.1f",
			r.Query, r.LineFetches, r.Misses, r.PrefHits, r.DelayedHits,
			r.Coverage(), r.Accuracy(), r.MeanTimeliness())
		if querylog != "" {
			if e, ok := byID[r.Query]; ok {
				fmt.Printf("  %8s %10d %s", e.Status, e.TotalNs, stageSummary(e.Stages))
			} else {
				fmt.Printf("  %8s %10s -", "-", "-")
			}
		}
		fmt.Println()
	}
	return nil
}

// stageSummary renders a log entry's stage map in fixed stage order.
func stageSummary(stages map[string]int64) string {
	out := ""
	for st := obs.QueryStage(0); st < obs.NumQueryStages; st++ {
		if ns, ok := stages[st.String()]; ok {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s=%d", st, ns)
		}
	}
	if out == "" {
		return "-"
	}
	return out
}

// isProbeFile sniffs whether path holds a probe-level capture by
// reading its first few events: a probe capture's payload events are
// all KindProbe*, so any probe kind among the first events (skipping
// session-tag switches) identifies one, and any address-level kind
// rules it out.
func isProbeFile(path string) (bool, error) {
	r, f, err := openTrace(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	for i := 0; i < 4; i++ {
		ev, err := r.Next()
		if err == io.EOF {
			return false, nil
		}
		if err != nil {
			return false, err
		}
		switch ev.Kind {
		case trace.KindSwitch, trace.KindQueryTag:
			continue
		case trace.KindProbeEnter, trace.KindProbeExit, trace.KindProbeWork, trace.KindProbeData:
			return true, nil
		default:
			return false, nil
		}
	}
	return false, nil
}

// replayProbeInto loads a probe-level capture and synthesizes its
// address-level stream into c over the database system's O5 image —
// probe captures carry the engine's own function IDs, so the engine's
// registry is the only one that resolves them.
func replayProbeInto(path string, c *cpu.CPU, seed int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	rec, err := trace.Load(f)
	f.Close()
	if err != nil {
		return err
	}
	reg, _ := db.BuildRegistry()
	return trace.ReplayProbe(rec, program.LayoutO5(reg), c, seed)
}

// replaySampled loads the trace file into a sealed recording (the skip
// tier jumps via the recording's event index, which a streaming reader
// cannot provide) and drives the CPU through the three-tier sampled
// replay.
func replaySampled(path string, c *cpu.CPU, pf prefetch.Prefetcher, scfg sample.Config) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	rec, err := trace.Load(f)
	f.Close()
	if err != nil {
		return err
	}
	c.EnableSampling()
	if err := rec.ReplaySampledInto(scfg.Plan(rec.Events()), c); err != nil {
		return err
	}
	s := c.Finish()
	sm := s.Sample
	fmt.Printf("prefetcher      %s\n", pf.Name())
	fmt.Printf("sampling        %s\n", scfg)
	fmt.Printf("est cycles      ~%d ±%.1f%% (95%% CI, %d windows)\n",
		int64(sm.EstCycles), 100*sm.CycleRelCI, sm.Windows)
	fmt.Printf("est I-misses    ~%d ±%.1f%%\n", sm.EstIMisses, 100*sm.MissRelCI)
	fmt.Printf("est IPC         %.3f\n", sm.EstIPC(s.Instructions))
	if sm.Degenerate {
		fmt.Printf("                (degenerate: <2 windows, no confidence interval)\n")
	}
	fmt.Printf("events          skipped=%d fast-forwarded=%d detailed=%d (%d warm-up + %d measured)\n",
		sm.SkippedEvents, sm.FastForwardedEvents, sm.DetailedEvents(),
		sm.WarmupEvents, sm.MeasuredEvents)
	fmt.Printf("instructions    %d (exact; %d skipped undecoded)\n", s.Instructions, sm.SkippedInstrs)
	fmt.Printf("events/kinst    %.1f\n", rec.Stats.EventsPerKInstr())
	return nil
}

// printAttribution renders the top-n per-function rows, ranked by the
// demand fetches a prefetcher could have served (misses + prefetch
// hits + delayed hits).
func printAttribution(rows []cpu.FuncAttribution, n int) {
	demand := func(f *cpu.FuncAttribution) int64 {
		return f.Misses + f.PrefHits + f.DelayedHits
	}
	sorted := append([]cpu.FuncAttribution(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		di, dj := demand(&sorted[i]), demand(&sorted[j])
		if di != dj {
			return di > dj
		}
		return sorted[i].Func < sorted[j].Func
	})
	if n < len(sorted) {
		sorted = sorted[:n]
	}
	fmt.Printf("\nper-function attribution (top %d of %d by prefetch-relevant demand):\n", len(sorted), len(rows))
	fmt.Printf("%-12s %10s %8s %8s %8s %6s %8s %6s %10s\n",
		"function", "fetches", "misses", "prfhits", "delayed", "cover", "issued", "accur", "timeliness")
	for i := range sorted {
		r := &sorted[i]
		fmt.Printf("%#-12x %10d %8d %8d %8d %6.2f %8d %6.2f %10.1f\n",
			uint64(r.Func), r.LineFetches, r.Misses, r.PrefHits, r.DelayedHits,
			r.Coverage(), r.Issued, r.Accuracy(), r.MeanTimeliness())
	}
}
