// Command experiments regenerates every table and figure of the
// paper's evaluation section and writes a markdown report comparing
// paper-reported numbers with measured ones.
//
// The campaign is fault tolerant: Ctrl-C, a -timeout expiry or a
// failed simulation degrades the report (failed rows are marked, and
// the exit status is non-zero) instead of discarding completed work,
// and -checkpoint persists finished simulations so a re-run resumes
// where the previous one stopped.
//
// The campaign is observable: -debug-addr serves /metrics, /progress
// and net/http/pprof while it runs; -trace-out exports the harness
// schedule as Chrome trace-event JSON (load it in Perfetto);
// -log-json records every job lifecycle event as JSON Lines; and
// -attribution appends a per-function prefetch attribution table per
// database workload. None of these change the report body — wall-clock
// observability is quarantined from deterministic output.
//
// The campaign can be sampled: -sample runs the cycle-comparison
// figures (fig4/5/6/10, sec5.6 and the cycle ablations) as sampled
// simulations — periodic detailed windows over a mostly skipped or
// functionally warmed stream — reporting estimated cycles with 95%
// confidence intervals at a fraction of the cost. Figures whose
// numbers are whole-run prefetch counters (fig7/8/9) stay full-detail.
// Sampled rows are rendered as `~value ±CI` and bannered per figure.
//
// The campaign can be distributed: -shards N precomputes the campaign's
// cells across N worker processes (spawned copies of this binary in
// -worker mode, driven over stdin/stdout JSONL), streaming each settled
// cell into the checkpoint directory as it lands. The report is then
// rendered the ordinary way from those checkpoints — the merge — so its
// bytes are identical to an unsharded run's regardless of shard count,
// worker deaths or reassignment (DESIGN.md §15). -campaign selects the
// slice of the cell grid to distribute.
//
// Usage:
//
//	experiments -o EXPERIMENTS.md [-wisc-n 10000] [-checkpoint DIR] [-timeout 30m] [-v]
//	experiments -sample [-sample-period 1000000] [-sample-window 32000]
//	experiments -debug-addr localhost:6060 -trace-out campaign.trace.json -log-json run.jsonl
//	experiments -shards 4 [-campaign allfigures|paper|extensions|@file.json]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cgp"
	"cgp/internal/campaign"
	"cgp/internal/obs"
	"cgp/internal/sample"
)

func main() {
	var (
		out        = flag.String("o", "EXPERIMENTS.md", "output markdown file ('-' for stdout)")
		wiscN      = flag.Int("wisc-n", 10000, "Wisconsin big-relation cardinality")
		seed       = flag.Int64("seed", 42, "workload seed")
		workers    = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = sequential)")
		noReplay   = flag.Bool("no-replay", false, "re-execute workloads per config instead of replaying recorded traces")
		checkpoint = flag.String("checkpoint", "", "directory persisting completed simulations; re-runs skip them")
		failFast   = flag.Bool("fail-fast", false, "cancel the remaining jobs after the first failure")
		timeout    = flag.Duration("timeout", 0, "overall campaign deadline (0 = none)")
		timing     = flag.Bool("timing", true, "include wall-clock run time in the report header (disable for byte-identical re-runs)")
		verbose    = flag.Bool("v", true, "progress output")

		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /progress and net/http/pprof on this address while the campaign runs")
		traceOut    = flag.String("trace-out", "", "write harness spans as Chrome trace-event JSON (loadable in Perfetto)")
		logJSON     = flag.String("log-json", "", "write job lifecycle events as JSON Lines to this file")
		attribution = flag.Bool("attribution", false, "collect per-function prefetch attribution and append its table to the report")

		sampled       = flag.Bool("sample", false, "run the cycle-comparison figures as sampled simulations (estimated cycles ±CI, much faster); counter figures (fig7/8/9) stay full-detail")
		samplePeriod  = flag.Int64("sample-period", sample.Default().PeriodEvents, "events per sampling period")
		sampleFWarm   = flag.Int64("sample-fwarm", sample.Default().FunctionalWarmEvents, "functionally warmed events before each window")
		sampleWarm    = flag.Int64("sample-warmup", sample.Default().DetailWarmEvents, "detailed warm-up events before each window")
		sampleWin     = flag.Int64("sample-window", sample.Default().WindowEvents, "measured events per window")
		sampleRand    = flag.Bool("sample-random-offset", false, "place each period's window at a seeded random offset instead of a fixed one")
		sampleFigures = flag.String("sample-figures", "", "comma-separated figure IDs to sample (default: the cycle-comparison figures)")

		shards       = flag.Int("shards", 0, "distribute the campaign across this many worker processes before rendering (0 = in-process)")
		workerMode   = flag.Bool("worker", false, "run as a campaign worker: speak the coordinator protocol on stdin/stdout (internal; spawned by -shards)")
		campaignName = flag.String("campaign", "", "campaign manifest for -shards: allfigures (default), paper, extensions, or @file.json")
	)
	flag.Parse()

	if *workerMode {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		var logf func(format string, args ...any)
		if *verbose {
			logf = func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
		}
		// Stdout belongs to the protocol; everything human goes to
		// stderr, which the coordinator leaves wired to its own.
		if err := campaign.Serve(ctx, os.Stdin, os.Stdout, logf); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: worker:", err)
			os.Exit(1)
		}
		return
	}

	o := obs.New()
	var logFile *os.File
	if *logJSON != "" {
		f, err := os.Create(*logJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		logFile = f
		o.AttachLog(f)
	}
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /progress, /debug/pprof/)\n", ln.Addr())
		go http.Serve(ln, obs.NewDebugMux(o))
	}

	opts := cgp.RunnerOptions{
		DB: cgp.DBOptions{WiscN: *wiscN, Seed: *seed}, Seed: *seed,
		Workers: *workers, NoRecord: *noReplay,
		CheckpointDir: *checkpoint, FailFast: *failFast,
		Obs: o, Attribution: *attribution,
	}
	// A sharded campaign meets in the checkpoint directory: workers
	// stream records into it and the merge reads them back. Without an
	// explicit -checkpoint the rendezvous is a temp dir cleaned up on
	// exit (cleanupCheckpoint must also run before the explicit exits
	// below — os.Exit skips defers).
	cleanupCheckpoint := func() {}
	defer cleanupCheckpoint()
	if *shards > 0 && opts.CheckpointDir == "" {
		dir, err := os.MkdirTemp("", "cgp-campaign-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		opts.CheckpointDir = dir
		cleanupCheckpoint = func() { os.RemoveAll(dir) }
	}
	if *sampled {
		opts.Sampling = sample.Config{
			PeriodEvents:         *samplePeriod,
			FunctionalWarmEvents: *sampleFWarm,
			DetailWarmEvents:     *sampleWarm,
			WindowEvents:         *sampleWin,
			RandomOffset:         *sampleRand,
			Seed:                 uint64(*seed),
		}
		if *sampleFigures != "" {
			for _, id := range strings.Split(*sampleFigures, ",") {
				if id = strings.TrimSpace(id); id != "" {
					opts.SampledFigures = append(opts.SampledFigures, id)
				}
			}
		}
	}
	if *verbose {
		opts.Log = func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
	}
	r := cgp.NewRunner(opts)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now() //cgplint:ignore detrand wall-clock run duration is harness log metadata, not simulated data
	var failures []error
	if *shards > 0 {
		// Distribution precomputes checkpoints; a coordinator error
		// degrades wall-clock only — the merge below recomputes any
		// missing cells in-process and the report stays complete.
		if err := runSharded(ctx, r, opts, *shards, *campaignName, *verbose, o); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: sharded campaign:", err)
		}
	}
	figs, err := r.AllFigures(ctx)
	if err != nil {
		failures = append(failures, err)
	}
	fan, fanErr := r.CallFanoutStats(ctx)
	if fanErr != nil {
		failures = append(failures, fmt.Errorf("cgp: fanout stats: %w", fanErr))
	}
	exts, err := r.ExtensionFigures(ctx)
	if err != nil {
		failures = append(failures, err)
	}

	var b strings.Builder
	//cgplint:ignore detrand the header's total-run-time line is explicitly run metadata, not a measured figure
	writeHeader(&b, *wiscN, *seed, time.Since(start), *timing)
	writeDegradedBanner(&b, figs, exts, failures)
	writeSummary(&b, figs, fan, fanErr == nil)
	for _, f := range figs {
		b.WriteString(f.Markdown())
		b.WriteString("\n")
		if f.ID == "fig4" || f.ID == "fig6" || f.ID == "fig7" || f.ID == "fig10" {
			b.WriteString("```\n")
			b.WriteString(f.Chart())
			b.WriteString("```\n\n")
		}
	}
	b.WriteString(`## Extensions (beyond the paper's figures)

Ablations over the design choices §3 fixes without measurement: CGHC
associativity and entry width, the no-priority L2 FIFO, L1I-direct
prefetching, and the §6 software-CGP sketch.

`)
	for _, f := range exts {
		b.WriteString(f.Markdown())
		b.WriteString("\n")
	}
	if *attribution {
		b.WriteString(`## Per-function prefetch attribution (OM + CGP_4)

Which functions CGP actually helps: per-function coverage (fraction of
would-be misses served), accuracy (useful fraction of issues launched
on the function's behalf) and mean issue-to-use timeliness in cycles.
Derived entirely from deterministic simulator counters.

`)
		for _, w := range r.DBWorkloads() {
			tab, err := r.AttributionTable(ctx, w,
				cgp.Config{Layout: cgp.LayoutOM, Prefetcher: cgp.PrefCGP, Degree: 4}, 10)
			if err != nil {
				failures = append(failures, fmt.Errorf("cgp: attribution %s: %w", w.Name, err))
				continue
			}
			b.WriteString(tab.Markdown())
			b.WriteString("\n")
		}
	}

	if *out == "-" {
		fmt.Print(b.String())
	} else if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		cleanupCheckpoint()
		os.Exit(1)
	} else {
		//cgplint:ignore detrand progress line on stderr; wall-clock timing never reaches the report body
		fmt.Fprintf(os.Stderr, "wrote %s (%d figures) in %s\n", *out, len(figs)+len(exts), time.Since(start).Round(time.Millisecond))
	}
	knownWorkers := []string{obs.DefaultWorker}
	if *shards > 0 {
		knownWorkers = append(knownWorkers, campaign.WorkerIDs(*shards)...)
	}
	writeObsArtifacts(o, logFile, *traceOut, knownWorkers)
	printJobSummary(o)
	if len(failures) > 0 {
		for _, err := range failures {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
		fmt.Fprintln(os.Stderr, "experiments: campaign degraded; completed work was kept (resume with -checkpoint)")
		cleanupCheckpoint()
		os.Exit(1)
	}
}

// runSharded precomputes the campaign's cells across shard worker
// processes: expand the manifest into jobs, partition, spawn copies of
// this binary in -worker mode, and import their streamed records into
// the shared checkpoint directory. Forwarded worker run-log entries
// and per-worker spans land in o alongside the coordinator's own.
func runSharded(ctx context.Context, r *cgp.Runner, opts cgp.RunnerOptions, shards int, manifestArg string, verbose bool, o *obs.Observability) error {
	m, err := campaign.LoadManifest(manifestArg)
	if err != nil {
		return err
	}
	jobs, err := campaign.Jobs(r, m)
	if err != nil {
		return err
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	co := campaign.New(campaign.Options{
		Workers: shards,
		Spec: campaign.RunnerSpec{
			DB: opts.DB, Seed: opts.Seed, Workers: opts.Workers,
			NoRecord: opts.NoRecord, CheckpointDir: opts.CheckpointDir,
			Attribution: opts.Attribution, Sampling: opts.Sampling,
			SampledFigures: opts.SampledFigures,
		},
		Log: opts.Log,
		Obs: o,
		Command: func(ctx context.Context, slot int) (*exec.Cmd, error) {
			cmd := exec.CommandContext(ctx, exe, "-worker", fmt.Sprintf("-v=%t", verbose))
			cmd.Stderr = os.Stderr
			return cmd, nil
		},
	})
	st, err := co.Run(ctx, jobs)
	fmt.Fprintf(os.Stderr, "campaign %s: %d jobs over %d shards — %d records imported, %d duplicate, %d restarts, %d reassigned, %d failed\n",
		m.Name, st.Jobs, shards, st.Imported, st.Duplicates, st.Restarts, st.Reassigned, len(st.Failed))
	return err
}

// writeObsArtifacts flushes the run log and exports the Chrome trace,
// validating both against their schemas on the way out so a malformed
// artifact fails loudly here instead of inside a downstream viewer.
// The run log is validated against the campaign's known worker ids —
// "main" alone, or "main" plus "w1".."wN" when sharded — so an entry
// from an unknown (or missing) worker id fails at the exit boundary.
// Failures here never fail the campaign — observability is advisory.
func writeObsArtifacts(o *obs.Observability, logFile *os.File, traceOut string, knownWorkers []string) {
	if logFile != nil {
		if err := o.Log.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: run log:", err)
		}
		if err := logFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: run log:", err)
		}
		f, err := os.Open(logFile.Name())
		if err == nil {
			_, verr := obs.ValidateRunLog(f, knownWorkers...)
			f.Close()
			err = verr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: run log validation:", err)
		}
	}
	if traceOut != "" {
		var buf bytes.Buffer
		if err := o.Spans.WriteChromeTrace(&buf); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: trace:", err)
			return
		}
		if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: trace validation:", err)
		}
		if err := os.WriteFile(traceOut, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: trace:", err)
			return
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d spans; open in Perfetto or chrome://tracing)\n", traceOut, o.Spans.Len())
	}
}

// printJobSummary reports how the campaign's cells were satisfied,
// distinguishing checkpoint-resumed cells from freshly simulated ones
// (and singleflight-coalesced and failed ones) so resume effectiveness
// is visible at a glance.
func printJobSummary(o *obs.Observability) {
	snap := o.Progress.Snapshot()
	if len(snap.Jobs) == 0 {
		return
	}
	executed := snap.Counts[string(obs.JobExecuted)]
	resumed := snap.Counts[string(obs.JobResumed)]
	replayed := snap.Counts[string(obs.JobReplayed)]
	failed := snap.Counts[string(obs.JobFailed)]
	other := len(snap.Jobs) - executed - resumed - replayed - failed
	line := fmt.Sprintf("cells: %d total — %d simulated, %d resumed from checkpoint, %d coalesced",
		len(snap.Jobs), executed, resumed, replayed)
	if failed > 0 {
		line += fmt.Sprintf(", %d failed", failed)
	}
	if other > 0 {
		line += fmt.Sprintf(", %d unsettled", other)
	}
	fmt.Fprintln(os.Stderr, line)
}

func writeHeader(b *strings.Builder, wiscN int, seed int64, took time.Duration, timing bool) {
	fmt.Fprintf(b, `# EXPERIMENTS — paper vs. measured

Reproduction of the evaluation of *Call Graph Prefetching for Database
Applications* (HPCA 2001). Every figure of §5 is regenerated by this
binary ('go run ./cmd/experiments'); the tables below are its output
(Wisconsin big-relation cardinality %d, seed %d%s).

Absolute cycle counts are not comparable to the paper's Alpha/
SimpleScalar testbed; the claims checked here are the *shapes*: which
configuration wins, by roughly what factor, and in what order.

`, wiscN, seed, timingClause(took, timing))
}

// timingClause renders the header's run-time note; -timing=false drops
// it so two runs of the same campaign produce byte-identical reports
// (the checkpoint/resume smoke test in CI compares them with cmp).
func timingClause(took time.Duration, timing bool) string {
	if !timing {
		return ""
	}
	return fmt.Sprintf("; total run time %s", took.Round(time.Millisecond))
}

// writeDegradedBanner marks a partially failed campaign at the top of
// the report, so a degraded EXPERIMENTS.md can never be mistaken for a
// complete one.
func writeDegradedBanner(b *strings.Builder, figs, exts []*cgp.Figure, failures []error) {
	rows := 0
	for _, f := range append(append([]*cgp.Figure{}, figs...), exts...) {
		rows += f.Degraded()
	}
	if rows == 0 && len(failures) == 0 {
		return
	}
	fmt.Fprintf(b, "> **DEGRADED RUN** — %d row(s) failed; they are marked in place below.\n", rows)
	b.WriteString("> Completed results were kept; re-run with `-checkpoint` to resume.\n")
	for _, err := range failures {
		fmt.Fprintf(b, "> - %s\n", strings.ReplaceAll(err.Error(), "\n", " · "))
	}
	b.WriteString("\n")
}

func writeSummary(b *strings.Builder, figs []*cgp.Figure, fan cgp.FanoutStats, fanOK bool) {
	byID := map[string]*cgp.Figure{}
	for _, f := range figs {
		byID[f.ID] = f
	}
	f4, f6, f7, f9, f10 := byID["fig4"], byID["fig6"], byID["fig7"], byID["fig9"], byID["fig10"]
	ablation := byID["sec5.6"]

	b.WriteString("## Headline claims\n\n")
	b.WriteString("| claim (paper) | paper | measured | verdict |\n|---|---|---|---|\n")

	row := func(claim, paper string, measured float64, format string, ok bool) {
		verdict := "reproduced"
		if !ok {
			verdict = "same direction, magnitude differs (see DESIGN.md)"
		}
		fmt.Fprintf(b, "| %s | %s | "+format+" | %s |\n", claim, paper, measured, verdict)
	}
	// missing marks the claims whose source figure failed outright; the
	// summary says so explicitly instead of dropping the claim.
	missing := func(claim, paper, figID string) {
		fmt.Fprintf(b, "| %s | %s | — | not measured: %s failed |\n", claim, paper, figID)
	}

	if f4 != nil {
		omSpeed := f4.GeoSpeedup("O5+OM")
		cgpAlone := f4.GeoSpeedup("O5+CGP_4")
		cgpOM := f4.GeoSpeedup("O5+OM+CGP_4")
		row("OM over O5 (§5.1)", "1.11x", omSpeed, "%.2fx", omSpeed > 1.05 && omSpeed < 1.22)
		row("CGP_4 alone over O5 (§5.2)", "1.40x", cgpAlone, "%.2fx", cgpAlone > 1.25 && cgpAlone < 1.6)
		row("CGP_4+OM over O5 (§5.2)", "1.45x", cgpOM, "%.2fx", cgpOM > 1.3 && cgpOM < 1.65)
		cgpVsOM := cgpOM / omSpeed
		row("CGP_4+OM over OM (§5.2, abstract)", "1.30x", cgpVsOM, "%.2fx", cgpVsOM > 1.2 && cgpVsOM < 1.45)
	} else {
		missing("OM / CGP speedups (§5.1–5.2)", "1.11–1.45x", "fig4")
	}

	if f6 != nil {
		nl4 := f6.GeoSpeedup("O5+OM+NL_4")
		cgp4 := f6.GeoSpeedup("O5+OM+CGP_4")
		perfect := f6.GeoSpeedup("perf-Icache")
		cgpVsNL := cgp4 / nl4
		row("CGP over OM+NL (§5.4)", "1.07x", cgpVsNL, "%.3fx", cgpVsNL > 1.03 && cgpVsNL < 1.15)
		gapToPerfect := perfect/cgp4 - 1
		row("perfect I-cache over OM+CGP_4 (§5.4)", "~0.19", gapToPerfect, "%.2f", gapToPerfect > 0.10 && gapToPerfect < 0.28)
	} else {
		missing("CGP vs NL and perfect I-cache (§5.4)", "1.07x / ~0.19", "fig6")
	}

	if f7 != nil {
		mOM := f7.MeanMissFraction("O5+OM")
		mNL := f7.MeanMissFraction("O5+OM+NL_4")
		mCGP := f7.MeanMissFraction("O5+OM+CGP_4")
		row("OM miss reduction (§5.5)", "21%", 100*(1-mOM), "%.0f%%", mOM < 0.9 && mOM > 0.70)
		row("OM+NL miss reduction (§5.5)", "77%", 100*(1-mNL), "%.0f%%", mNL < 0.3)
		row("OM+CGP miss reduction (§5.5, abstract 83%)", "87%", 100*(1-mCGP), "%.0f%%", mCGP < 0.2 && mCGP < mNL)
	} else {
		missing("I-cache miss reductions (§5.5)", "21% / 77% / 87%", "fig7")
	}

	if f9 != nil {
		nlUse := f9.MeanUsefulFraction("CGP_4/NL-portion")
		cghcUse := f9.MeanUsefulFraction("CGP_4/CGHC-portion")
		row("CGP_4 NL-portion useful (§5.6)", "40%", 100*nlUse, "%.0f%%", nlUse > 0.25 && nlUse < 0.75)
		row("CGP_4 CGHC-portion useful (§5.6)", "77%", 100*cghcUse, "%.0f%%", cghcUse > nlUse+0.05)
	} else {
		missing("CGP_4 portion usefulness (§5.6)", "40% / 77%", "fig9")
	}

	if ablation != nil {
		raNL := ablation.GeoSpeedup("O5+OM+RANL_4")
		row("run-ahead NL much worse than NL (§5.6)", "worse", raNL, "%.2fx vs NL_4", raNL < 0.95)
	} else {
		missing("run-ahead NL vs NL (§5.6)", "worse", "sec5.6")
	}

	if f10 != nil {
		gccGain := f10.RowsFor("gcc")
		var gccCGP float64
		for _, r := range gccGain {
			if r.Config == "O5+OM+CGP_4" {
				gccCGP = r.Speedup
			}
		}
		row("gcc gains from CGP (§5.7)", "1.07-1.08x", gccCGP, "%.2fx", gccCGP > 1.03 && gccCGP < 1.16)
		insensitive := true
		for _, w := range []string{"gzip", "parser", "gap", "bzip2", "twolf"} {
			for _, r := range f10.RowsFor(w) {
				if r.Config == "O5+OM+CGP_4" && !r.Failed() && (r.Speedup > 1.06 || r.Speedup < 0.97) {
					insensitive = false
				}
			}
		}
		verdict := "reproduced"
		if !insensitive {
			verdict = "NOT reproduced"
		}
		fmt.Fprintf(b, "| other CPU2000 insensitive to CGP (§5.7) | ≈1.00x | see fig10 | %s |\n", verdict)
	} else {
		missing("CPU2000 behaviour (§5.7)", "≈1.00x, gcc 1.07x", "fig10")
	}

	if fanOK {
		fmt.Fprintf(b, "| 80%% of functions call <8 distinct callees (§3.2) | 80%% | %.0f%% | %s |\n",
			100*fan.FractionBelow8, okStr(fan.FractionBelow8 > 0.6))
		fmt.Fprintf(b, "| instructions between calls (§5.4) | 43 | %.1f | %s |\n\n",
			fan.InstrPerCall, okStr(fan.InstrPerCall > 30 && fan.InstrPerCall < 60))
	} else {
		fmt.Fprint(b, "| call fanout / instructions between calls (§3.2, §5.4) | 80% / 43 | — | not measured: profile failed |\n\n")
	}
}

func okStr(ok bool) string {
	if ok {
		return "reproduced"
	}
	return "same direction, magnitude differs (see DESIGN.md)"
}
