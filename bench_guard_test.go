package cgp

// Kernel-throughput regression guard: re-measures the optimized
// kernel's speedup over the frozen refsim baseline and fails if it
// has dropped more than 20% below the kernel_replay_speedup recorded
// in BENCH_kernel.json. The guard compares speedup ratios, not raw
// events/s — both arms run in the same process on the same machine,
// so the ratio cancels host speed and stays meaningful on CI runners
// that are much slower than the machine that wrote the baseline.
//
// Gated behind CGP_BENCH_GUARD because a loaded machine can distort
// even a ratio; CI runs it in a dedicated step:
//
//	CGP_BENCH_GUARD=1 go test -run TestKernelThroughputGuard -count=1 .
//
// The distributed-campaign scaling guard (TestCampaignScalingGuard,
// same CGP_BENCH_GUARD gate, writes BENCH_campaign.json via its bench
// sibling) lives in internal/campaign rather than here: it spawns the
// test binary as campaign worker processes, which needs a TestMain
// hook, and this package's TestMain (bench_test.go) cannot take that
// role — package cgp cannot import internal/campaign back.

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"

	"cgp/internal/cpu"
	"cgp/internal/prefetch"
	"cgp/internal/refsim"
)

// guardRegressionTolerance: fail only when the measured speedup falls
// more than 20% below the recorded baseline ratio. Noise on shared
// runners moves the ratio a few percent; losing a fifth of the kernel
// optimizations' benefit is a real regression.
const guardRegressionTolerance = 0.80

// guardBest returns the fastest of n runs of f — the same
// minimum-of-many-replays estimator BENCH_kernel.json itself uses
// (see benchKernelReplay): the min converges on the code's cost while
// the mean absorbs scheduler preemptions.
func guardBest(t *testing.T, n int, f func() error) time.Duration {
	t.Helper()
	var best time.Duration
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := f(); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
	}
	return best
}

func TestKernelThroughputGuard(t *testing.T) {
	if os.Getenv("CGP_BENCH_GUARD") == "" {
		t.Skip("set CGP_BENCH_GUARD=1 to run the kernel-throughput regression guard")
	}
	data, err := os.ReadFile("BENCH_kernel.json")
	if err != nil {
		t.Fatalf("no baseline: %v (regenerate with: GOMAXPROCS=1 go test -run TestMain -bench BenchmarkKernel -benchtime 2s .)", err)
	}
	var baseline struct {
		Speedup float64 `json:"kernel_replay_speedup"`
	}
	if err := json.Unmarshal(data, &baseline); err != nil {
		t.Fatalf("BENCH_kernel.json: %v", err)
	}
	if baseline.Speedup <= 0 {
		t.Fatal("BENCH_kernel.json has no kernel_replay_speedup — regenerate it with both replay arms")
	}

	rec := kernelBenchRecording(t)
	var raw bytes.Buffer
	if _, err := rec.WriteTo(&raw); err != nil {
		t.Fatal(err)
	}
	const iters = 3
	optimized := guardBest(t, iters, func() error {
		c := cpu.New(cpu.DefaultConfig(), prefetch.NewNL(4))
		if err := rec.Replay(c); err != nil {
			return err
		}
		c.Finish()
		return nil
	})
	reference := guardBest(t, iters, func() error {
		c := refsim.New(cpu.DefaultConfig(), prefetch.NewNL(4))
		if err := refsim.Replay(raw.Bytes(), c); err != nil {
			return err
		}
		c.Finish()
		return nil
	})

	speedup := reference.Seconds() / optimized.Seconds()
	floor := guardRegressionTolerance * baseline.Speedup
	t.Logf("kernel replay speedup %.2fx (optimized %v vs refsim %v); baseline %.2fx, floor %.2fx",
		speedup, optimized, reference, baseline.Speedup, floor)
	if speedup < floor {
		t.Errorf("kernel throughput regressed: measured %.2fx speedup over refsim, below %.2fx (80%% of the %.2fx baseline in BENCH_kernel.json)",
			speedup, floor, baseline.Speedup)
	}
}
