package cgp

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"cgp/internal/workload"
)

// harnessOpts is a reduced scale for the harness determinism tests,
// which run the Figure-4 grid through two independent runners (one of
// them re-executing every cell).
func harnessOpts(workers int, noRecord bool) RunnerOptions {
	return RunnerOptions{
		DB: DBOptions{
			WiscN: 400, Quantum: 5, Seed: 11, BufferFrames: 4096,
			TPCH: workload.TPCHScale{Suppliers: 8, Customers: 30, Parts: 45, Orders: 100, MaxLines: 3},
		},
		Seed:     11,
		Workers:  workers,
		NoRecord: noRecord,
	}
}

// fig4Jobs builds the Figure-4 grid for a runner's DB workloads.
func fig4Jobs(r *Runner) []Job {
	var jobs []Job
	for _, w := range r.DBWorkloads() {
		for _, cfg := range fig4Configs() {
			jobs = append(jobs, Job{Workload: w, Config: cfg})
		}
	}
	return jobs
}

// TestRunAllParallelMatchesSequential is the harness's headline
// determinism property: a parallel RunAll over the Figure-4 grid with
// trace replay must produce byte-identical Result/Stats to the
// sequential re-executing path, in input order.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	// Sequential reference: one worker, no record/replay — the harness
	// as it existed before the parallel rewrite.
	seq := NewRunner(harnessOpts(1, true))
	var want []*Result
	for _, j := range fig4Jobs(seq) {
		res, err := seq.Run(context.Background(), j.Workload, j.Config)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	// Parallel replay path: many workers (even on one CPU this
	// exercises the concurrent interleavings under -race).
	par := NewRunner(harnessOpts(8, false))
	jobs := fig4Jobs(par)
	got, err := par.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("RunAll returned %d results, want %d", len(got), len(want))
	}
	for i := range got {
		// Results come back in input order.
		if got[i].Workload != jobs[i].Workload.Name || got[i].Config != jobs[i].Config.Label() {
			t.Fatalf("result %d is (%s, %s), want (%s, %s)",
				i, got[i].Workload, got[i].Config, jobs[i].Workload.Name, jobs[i].Config.Label())
		}
		// Byte-identical measurements: replayed traces give identical
		// cycles (and every other statistic) to direct execution.
		a, err := json.Marshal(want[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(got[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("row %d (%s, %s) differs between sequential and parallel:\nseq: %s\npar: %s",
				i, got[i].Workload, got[i].Config, a, b)
		}
		if want[i].CPU.Cycles != got[i].CPU.Cycles {
			t.Errorf("row %d cycles: direct %d vs replay %d", i, want[i].CPU.Cycles, got[i].CPU.Cycles)
		}
	}
}

// TestRunAllDeduplicates: duplicate jobs in one batch resolve to the
// same cached *Result, computed once.
func TestRunAllDeduplicates(t *testing.T) {
	r := NewRunner(harnessOpts(4, false))
	w := WiscProf(r.opts.DB)
	cfg := Config{Layout: LayoutO5}
	jobs := []Job{{w, cfg}, {w, cfg}, {w, cfg}, {w, cfg}}
	results, err := r.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("duplicate job %d got a distinct result", i)
		}
	}
}

// TestConfigFingerprintDisambiguates: configs that share a display
// label but differ in non-Label fields (the RunAheadM sweep) must not
// alias in the result cache.
func TestConfigFingerprintDisambiguates(t *testing.T) {
	r := NewRunner(harnessOpts(1, false))
	w := WiscProf(r.opts.DB)
	a := Config{Layout: LayoutOM, Prefetcher: PrefRunAheadNL, Degree: 4, RunAheadM: 1}
	b := Config{Layout: LayoutOM, Prefetcher: PrefRunAheadNL, Degree: 4, RunAheadM: 16}
	if a.Label() != b.Label() {
		t.Fatalf("labels differ: %q vs %q — test premise broken", a.Label(), b.Label())
	}
	ra, err := r.Run(context.Background(), w, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := r.Run(context.Background(), w, b)
	if err != nil {
		t.Fatal(err)
	}
	if ra == rb {
		t.Fatal("RunAheadM variants aliased to one cached result")
	}
	if ra.CPU.Cycles == rb.CPU.Cycles {
		t.Errorf("RunAheadM 1 and 16 measured identical cycles %d — suspicious", ra.CPU.Cycles)
	}
}

// TestConcurrentFigureGenerators runs two overlapping figure
// generators concurrently against one runner (the AllFigures shape)
// and checks the shared cells resolve to the same cached results as a
// fresh sequential generation.
func TestConcurrentFigureGenerators(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	conc := NewRunner(harnessOpts(8, false))
	figs, err := runFigureGens(context.Background(), []figureGen{
		{"fig6", conc.Figure6},
		{"fig7", conc.Figure7},
		{"fig8", conc.Figure8},
	})
	if err != nil {
		t.Fatal(err)
	}

	ref := NewRunner(harnessOpts(1, true))
	want6, err := ref.Figure6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(want6)
	b, _ := json.Marshal(figs[0])
	if !bytes.Equal(a, b) {
		t.Error("concurrent fig6 differs from sequential fig6")
	}
	// fig7's O5+OM+NL_4 cell is shared with fig6; both must reference
	// the same cached result.
	var from6, from7 *Result
	for _, row := range figs[0].Rows {
		if row.Workload == "wisc-prof" && row.Config == "O5+OM+NL_4" {
			from6 = row.Result
		}
	}
	for _, row := range figs[1].Rows {
		if row.Workload == "wisc-prof" && row.Config == "O5+OM+NL_4" {
			from7 = row.Result
		}
	}
	if from6 == nil || from7 == nil || from6 != from7 {
		t.Error("shared (workload, config) cell not deduplicated across concurrent figures")
	}
}
