package cgp

// Chaos tests for the fault-tolerant campaign machinery (DESIGN.md
// §11): panic isolation inside shared replay passes, corruption
// detection and rebuild, cancellation with partial results, transient
// singleflight eviction, and checkpoint/resume. Every fault is
// injected deterministically (internal/faultinject), so a failure here
// reproduces exactly. CI runs this file under -race.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cgp/internal/faultinject"
	"cgp/internal/obs"
	"cgp/internal/trace"
)

// chaosOpts is the reduced scale shared by the chaos tests.
func chaosOpts(workers int) RunnerOptions {
	o := harnessOpts(workers, false)
	o.RetryBackoff = 1 // effectively no backoff wait in tests
	return o
}

// o5Grid is a grid that stays on the O5 layout, so no cell depends on
// the profile run and corruption targets exactly one recording per
// workload.
func o5Grid(ws []*Workload) []Job {
	configs := []Config{
		{Layout: LayoutO5},
		{Layout: LayoutO5, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutO5, Prefetcher: PrefCGP, Degree: 4},
	}
	var jobs []Job
	for _, w := range ws {
		for _, cfg := range configs {
			jobs = append(jobs, Job{Workload: w, Config: cfg})
		}
	}
	return jobs
}

// TestReplayHubPanicIsolation poisons one cell of a shared replay
// batch: that job must fail with an attributed *JobError carrying the
// panic value, while its batch mates — fed by the same decode pass —
// finish with results identical to an undisturbed runner's.
func TestReplayHubPanicIsolation(t *testing.T) {
	var logBuf bytes.Buffer
	opts := chaosOpts(4)
	opts.Obs = obs.New().AttachLog(&logBuf)
	r := NewRunner(opts)
	ws := r.DBWorkloads()[:2]
	jobs := o5Grid(ws)
	poisonW, poisonCfg := ws[0].Name, jobs[1].Config.withDefaults().Label()
	r.hooks.wrapConsumer = func(w *Workload, cfg Config, c trace.Consumer) trace.Consumer {
		if w.Name == poisonW && cfg.Label() == poisonCfg {
			return faultinject.PanicAfter(c, 1000, "injected-panic")
		}
		return c
	}
	results, err := r.RunAll(context.Background(), jobs)

	var camp *CampaignError
	if !errors.As(err, &camp) {
		t.Fatalf("RunAll error = %v, want *CampaignError", err)
	}
	if len(camp.Jobs) != 1 {
		t.Fatalf("%d jobs failed, want exactly the poisoned one: %v", len(camp.Jobs), camp.Jobs)
	}
	je := camp.Jobs[0]
	if je.Index != 1 || je.Workload != poisonW || je.Config != poisonCfg {
		t.Fatalf("failure attributed to %+v, want job 1 (%s, %s)", je, poisonW, poisonCfg)
	}
	if je.Panic != "injected-panic" || len(je.Stack) == 0 {
		t.Fatalf("JobError lacks panic value or stack: %+v", je)
	}
	if results[1] != nil {
		t.Fatal("failed job still has a result slot")
	}

	// Batch mates of the panicked cell saw the full stream: every
	// surviving result is byte-identical to a clean runner's.
	clean := NewRunner(chaosOpts(1))
	for i, j := range jobs {
		if i == 1 {
			continue
		}
		if results[i] == nil {
			t.Fatalf("job %d has no result but was not reported failed", i)
		}
		want, err := clean.Run(context.Background(), j.Workload, j.Config)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(want)
		b, _ := json.Marshal(results[i])
		if !bytes.Equal(a, b) {
			t.Errorf("job %d (%s, %s) diverged from clean run after batch-mate panic",
				i, j.Workload.Name, j.Config.Label())
		}
	}

	// The structured run log tells the same story: the poisoned cell
	// was queued and failed, and never reported executed; its batch
	// mates all settled.
	entries, lerr := obs.ValidateRunLog(bytes.NewReader(logBuf.Bytes()))
	if lerr != nil {
		t.Fatalf("run log fails validation: %v", lerr)
	}
	var sawQueued, sawFailed, sawExecuted bool
	settled := map[string]bool{}
	for _, e := range entries {
		if e.Workload == poisonW && e.Config == poisonCfg {
			switch obs.JobState(e.Event) {
			case obs.JobQueued:
				sawQueued = true
			case obs.JobFailed:
				sawFailed = true
			case obs.JobExecuted, obs.JobReplayed, obs.JobResumed:
				sawExecuted = true
			}
			continue
		}
		switch obs.JobState(e.Event) {
		case obs.JobExecuted, obs.JobReplayed, obs.JobResumed:
			settled[e.Workload+"/"+e.Config] = true
		}
	}
	if !sawQueued || !sawFailed {
		t.Errorf("run log missing lifecycle for poisoned cell: queued=%v failed=%v", sawQueued, sawFailed)
	}
	if sawExecuted {
		t.Error("run log reports the poisoned cell as settled")
	}
	for i, j := range jobs {
		if i == 1 {
			continue
		}
		key := j.Workload.Name + "/" + j.Config.withDefaults().Label()
		if !settled[key] {
			t.Errorf("run log never settled surviving cell %s", key)
		}
	}
}

// TestCorruptionHealedByRebuild corrupts each workload's first sealed
// recording; the campaign must detect the bad checksum, rebuild the
// recording from source and finish with clean-run results and no
// errors.
func TestCorruptionHealedByRebuild(t *testing.T) {
	r := NewRunner(chaosOpts(4))
	var firstSeals atomic.Int64
	var mu sync.Mutex
	corrupted := map[string]bool{}
	r.hooks.afterRecord = func(w *Workload, layout Layout, rec *trace.Recording) {
		mu.Lock()
		first := !corrupted[recKey(w, layout)]
		corrupted[recKey(w, layout)] = true
		mu.Unlock()
		if first {
			firstSeals.Add(1)
			faultinject.Corrupt(rec, 99, 2)
		}
	}
	jobs := o5Grid(r.DBWorkloads()[:2])
	results, err := r.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatalf("campaign failed despite retry budget: %v", err)
	}
	if firstSeals.Load() == 0 {
		t.Fatal("corruption hook never fired — test is vacuous")
	}
	clean := NewRunner(chaosOpts(1))
	for i, j := range jobs {
		want, err := clean.Run(context.Background(), j.Workload, j.Config)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(want)
		b, _ := json.Marshal(results[i])
		if !bytes.Equal(a, b) {
			t.Errorf("job %d diverged from clean run after corruption+rebuild", i)
		}
	}
}

// TestPersistentCorruptionExhaustsBudget corrupts one workload's
// recording on every rebuild: its jobs must fail with the budget
// error, while the other workload's jobs — different recording — all
// complete.
func TestPersistentCorruptionExhaustsBudget(t *testing.T) {
	opts := chaosOpts(4)
	opts.RetryBudget = 1
	r := NewRunner(opts)
	ws := r.DBWorkloads()[:2]
	bad := ws[0].Name
	var seals atomic.Int64
	r.hooks.afterRecord = func(w *Workload, layout Layout, rec *trace.Recording) {
		if w.Name == bad {
			seals.Add(1)
			faultinject.Corrupt(rec, int64(seals.Load()), 2)
		}
	}
	jobs := o5Grid(ws)
	results, err := r.RunAll(context.Background(), jobs)
	var camp *CampaignError
	if !errors.As(err, &camp) {
		t.Fatalf("RunAll error = %v, want *CampaignError", err)
	}
	if got := seals.Load(); got != 2 { // initial record + 1 rebuild
		t.Fatalf("recording sealed %d times, want 2 (budget 1)", got)
	}
	for i, j := range jobs {
		if j.Workload.Name == bad {
			if results[i] != nil {
				t.Fatalf("job %d on the corrupt workload has a result", i)
			}
		} else if results[i] == nil {
			t.Fatalf("job %d on the healthy workload lost its result", i)
		}
	}
	if !strings.Contains(camp.Error(), "retry budget exhausted") {
		t.Fatalf("error does not name the exhausted budget: %v", camp)
	}
	var ce *trace.CorruptionError
	if !errors.As(camp.Jobs[0], &ce) {
		t.Fatalf("budget error does not unwrap to the corruption: %v", camp.Jobs[0])
	}
}

// TestCancellationPartialResults cancels the campaign from inside one
// simulation: the campaign returns every already-completed result,
// attributes cancellations to the rest, and — because cancellation is
// transient — a later Run on the same runner recomputes successfully.
func TestCancellationPartialResults(t *testing.T) {
	r := NewRunner(chaosOpts(2))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ws := r.DBWorkloads()[:2]
	var fired atomic.Bool
	r.hooks.wrapConsumer = func(w *Workload, cfg Config, c trace.Consumer) trace.Consumer {
		if fired.CompareAndSwap(false, true) {
			return faultinject.CancelAfter(c, 5000, cancel)
		}
		return c
	}
	jobs := o5Grid(ws)
	results, err := r.RunAll(ctx, jobs)
	var camp *CampaignError
	if !errors.As(err, &camp) {
		t.Fatalf("RunAll error = %v, want *CampaignError", err)
	}
	failed := map[int]bool{}
	for _, je := range camp.Jobs {
		failed[je.Index] = true
		if !isCancellation(je) && je.Panic == nil {
			t.Fatalf("job %d failed with non-cancellation error: %v", je.Index, je)
		}
	}
	if len(failed) == 0 {
		t.Fatal("cancellation failed no jobs — hook never fired?")
	}
	for i := range jobs {
		if !failed[i] && results[i] == nil {
			t.Fatalf("job %d neither failed nor has a result", i)
		}
	}

	// Transient eviction: the canceled cells retry cleanly on the same
	// runner once the hook is gone and the context is live.
	r.hooks.wrapConsumer = nil
	for i, j := range jobs {
		if !failed[i] {
			continue
		}
		if _, err := r.Run(context.Background(), j.Workload, j.Config); err != nil {
			t.Fatalf("job %d still failing after cancellation was lifted: %v", i, err)
		}
	}
}

// TestCanceledContextEvicted: a Run under an already-canceled context
// fails fast with the context error — and must not poison the cache
// for a later Run with a live context (satellite fix: the singleflight
// layer used to cache errors forever).
func TestCanceledContextEvicted(t *testing.T) {
	r := NewRunner(chaosOpts(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := r.DBWorkloads()[0]
	cfg := Config{Layout: LayoutO5}
	if _, err := r.Run(ctx, w, cfg); !isCancellation(err) {
		t.Fatalf("Run under canceled ctx = %v, want cancellation", err)
	}
	res, err := r.Run(context.Background(), w, cfg)
	if err != nil || res == nil {
		t.Fatalf("Run after eviction = (%v, %v), want success", res, err)
	}
}

// TestPanicErrorStaysCached: a deterministic panic is NOT transient —
// retrying would re-execute the same failing simulation, so the cached
// *JobError is served to later callers.
func TestPanicErrorStaysCached(t *testing.T) {
	r := NewRunner(chaosOpts(1))
	calls := 0
	r.hooks.wrapConsumer = func(w *Workload, cfg Config, c trace.Consumer) trace.Consumer {
		calls++
		return faultinject.PanicAfter(c, 100, "det-panic")
	}
	w := r.DBWorkloads()[0]
	cfg := Config{Layout: LayoutO5}
	_, err1 := r.Run(context.Background(), w, cfg)
	_, err2 := r.Run(context.Background(), w, cfg)
	var je *JobError
	if !errors.As(err1, &je) || je.Panic != "det-panic" {
		t.Fatalf("first Run = %v, want panic JobError", err1)
	}
	if !errors.As(err2, &je) {
		t.Fatalf("second Run = %v, want the cached JobError", err2)
	}
	if calls != 1 {
		t.Fatalf("simulation executed %d times, want 1 (panic errors stay cached)", calls)
	}
}

// TestCheckpointResume runs a campaign with a checkpoint directory,
// then replays it on a fresh runner whose every simulation would
// panic: success proves each cell was served from its checkpoint, and
// the results must be byte-identical.
func TestCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	opts := chaosOpts(4)
	opts.CheckpointDir = dir

	first := NewRunner(opts)
	jobs := o5Grid(first.DBWorkloads()[:2])
	want, err := first.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	resumed := NewRunner(opts)
	resumed.hooks.wrapConsumer = func(w *Workload, cfg Config, c trace.Consumer) trace.Consumer {
		return faultinject.PanicAfter(c, 1, "should-not-simulate")
	}
	got, err := resumed.RunAll(context.Background(), o5Grid(resumed.DBWorkloads()[:2]))
	if err != nil {
		t.Fatalf("resume simulated instead of loading checkpoints: %v", err)
	}
	for i := range want {
		a, _ := json.Marshal(want[i])
		b, _ := json.Marshal(got[i])
		if !bytes.Equal(a, b) {
			t.Errorf("job %d differs between original and resumed run", i)
		}
	}
}

// TestCheckpointScopeMismatch: checkpoints from one campaign scale
// must never satisfy another — a different Wisconsin cardinality or
// seed changes the scope fingerprint and reads as a miss.
func TestCheckpointScopeMismatch(t *testing.T) {
	dir := t.TempDir()
	opts := chaosOpts(1)
	opts.CheckpointDir = dir
	a := NewRunner(opts)
	w := a.DBWorkloads()[0]
	cfg := Config{Layout: LayoutO5}
	if _, err := a.Run(context.Background(), w, cfg); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.loadCheckpoint(w, cfg.withDefaults()); !ok {
		t.Fatal("same-scope checkpoint not served")
	}

	other := opts
	other.DB.WiscN = opts.DB.WiscN * 2
	b := NewRunner(other)
	if _, ok := b.loadCheckpoint(b.DBWorkloads()[0], cfg.withDefaults()); ok {
		t.Fatal("checkpoint served across campaign scopes")
	}

	seeded := opts
	seeded.Seed = opts.Seed + 1
	c := NewRunner(seeded)
	if _, ok := c.loadCheckpoint(c.DBWorkloads()[0], cfg.withDefaults()); ok {
		t.Fatal("checkpoint served across seeds")
	}
}

// TestCheckpointCorruptionIsMiss: a truncated or bit-flipped
// checkpoint file degrades to a cache miss (recompute), never an error
// or a trusted bad result.
func TestCheckpointCorruptionIsMiss(t *testing.T) {
	dir := t.TempDir()
	opts := chaosOpts(1)
	opts.CheckpointDir = dir
	r := NewRunner(opts)
	w := r.DBWorkloads()[0]
	cfg := Config{Layout: LayoutO5}.withDefaults()
	want, err := r.Run(context.Background(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := r.checkpointPath(runKey(w, cfg))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the result payload.
	mut := bytes.Replace(data, []byte(`"Cycles":`), []byte(`"CyCleS":`), 1)
	if bytes.Equal(mut, data) {
		t.Fatal("mutation did not apply — payload shape changed?")
	}
	if err := writeFileAtomic(path, mut); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.loadCheckpoint(w, cfg); ok {
		t.Fatal("corrupted checkpoint accepted")
	}
	// Truncation is also a miss.
	if err := writeFileAtomic(path, data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.loadCheckpoint(w, cfg); ok {
		t.Fatal("truncated checkpoint accepted")
	}
	// A fresh runner recomputes the identical result.
	clean := NewRunner(chaosOpts(1))
	got, err := clean.Run(context.Background(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.CPU.Cycles != want.CPU.Cycles {
		t.Fatal("recomputed result differs from original")
	}
}

// TestFailFastCancelsRemainder: with FailFast, a panic in one job
// cancels jobs that have not finished; the returned CampaignError
// still attributes each failure and completed results are kept.
func TestFailFastCancelsRemainder(t *testing.T) {
	opts := chaosOpts(1) // one worker serializes batches, so later groups see the breaker
	opts.FailFast = true
	r := NewRunner(opts)
	ws := r.DBWorkloads()[:3]
	r.hooks.wrapConsumer = func(w *Workload, cfg Config, c trace.Consumer) trace.Consumer {
		if w.Name == ws[0].Name {
			return faultinject.PanicAfter(c, 1, "fail-fast-trigger")
		}
		return c
	}
	jobs := make([]Job, 0, 3)
	for _, w := range ws {
		jobs = append(jobs, Job{Workload: w, Config: Config{Layout: LayoutO5}})
	}
	_, err := r.RunAll(context.Background(), jobs)
	var camp *CampaignError
	if !errors.As(err, &camp) {
		t.Fatalf("RunAll error = %v, want *CampaignError", err)
	}
	if len(camp.Jobs) == 0 {
		t.Fatal("no failures recorded")
	}
	sawPanic := false
	for _, je := range camp.Jobs {
		if je.Panic != nil {
			sawPanic = true
		} else if !isCancellation(je) {
			t.Fatalf("unexpected failure kind under fail-fast: %v", je)
		}
	}
	if !sawPanic {
		t.Fatal("triggering panic not attributed")
	}
}

// TestFigureDegradesInsteadOfAborting: a poisoned cell leaves its
// figure with an explicit degraded row (rendered in the markdown), not
// a missing figure.
func TestFigureDegradesInsteadOfAborting(t *testing.T) {
	r := NewRunner(chaosOpts(4))
	poison := r.DBWorkloads()[1].Name
	r.hooks.wrapConsumer = func(w *Workload, cfg Config, c trace.Consumer) trace.Consumer {
		if w.Name == poison && cfg.Label() == "O5+OM+NL_4" {
			return faultinject.PanicAfter(c, 500, "row-poison")
		}
		return c
	}
	fig, err := r.Figure7(context.Background())
	if err == nil {
		t.Fatal("degraded figure returned no error")
	}
	if fig == nil {
		t.Fatal("partial failure dropped the whole figure")
	}
	if fig.Degraded() != 1 {
		t.Fatalf("Degraded() = %d, want 1", fig.Degraded())
	}
	md := fig.Markdown()
	if !strings.Contains(md, "failed: panic: row-poison") || !strings.Contains(md, "**Degraded:**") {
		t.Fatalf("degraded row not rendered explicitly:\n%s", md)
	}
	healthy := 0
	for _, row := range fig.Rows {
		if !row.Failed() {
			if row.Result == nil {
				t.Fatal("healthy row lost its result")
			}
			healthy++
		}
	}
	if healthy != len(fig.Rows)-1 {
		t.Fatalf("%d healthy rows, want %d", healthy, len(fig.Rows)-1)
	}
}
