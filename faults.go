package cgp

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"cgp/internal/program"
	"cgp/internal/trace"
)

// Failure model of the harness (DESIGN.md §11).
//
// A campaign (one RunAll call, or the whole cmd/experiments run) is a
// set of jobs that must degrade gracefully: one panicking simulation,
// one corrupted recording byte or one Ctrl-C fails only what it must,
// and everything already computed is kept. Three mechanisms implement
// that:
//
//   - every failure is attributed to a job as a *JobError and
//     aggregated per campaign as a *CampaignError, so callers can tell
//     exactly which cells are missing and why;
//   - panics inside a simulation are recovered at the singleflight
//     boundary (and per-consumer inside a shared replay pass), so a
//     bug in one configuration cannot take down its batch mates;
//   - transient failures — cancellation and recording corruption —
//     evict their singleflight entry, so a later call retries instead
//     of being served a cached error forever. Successes stay cached:
//     they are determinism-relevant and must never be recomputed
//     differently.

// JobError attributes one failed (workload, config) job. Exactly one
// of Panic (with Stack) or Err is set: Panic holds a value recovered
// from a panicking simulation, Err wraps an ordinary failure
// (cancellation, corruption after the retry budget, a workload error).
type JobError struct {
	// Workload and Config name the failed cell (display label).
	Workload string
	Config   string
	// Index is the job's position in its RunAll input slice, or -1
	// when the failure happened outside a campaign.
	Index int
	// Panic is the recovered panic value, nil for ordinary errors.
	Panic any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
	// Err is the underlying error for non-panic failures.
	Err error
}

// Error implements error.
func (e *JobError) Error() string {
	cell := "job"
	if e.Workload != "" {
		cell = fmt.Sprintf("job %s/%s", e.Workload, e.Config)
	}
	if e.Panic != nil {
		return fmt.Sprintf("%s: panic: %v", cell, e.Panic)
	}
	return fmt.Sprintf("%s: %v", cell, e.Err)
}

// Unwrap exposes the underlying cause (nil for panics).
func (e *JobError) Unwrap() error { return e.Err }

// CampaignError aggregates the failed jobs of one RunAll call in input
// order. The campaign's successful results are still returned alongside
// it — a CampaignError means "partially degraded", not "lost".
type CampaignError struct {
	// Jobs holds one entry per failed job, input-ordered.
	Jobs []*JobError
}

// Error implements error.
func (e *CampaignError) Error() string {
	if len(e.Jobs) == 1 {
		return e.Jobs[0].Error()
	}
	return fmt.Sprintf("%d jobs failed (first: %s)", len(e.Jobs), e.Jobs[0])
}

// Unwrap exposes the per-job errors to errors.Is/As.
func (e *CampaignError) Unwrap() []error {
	errs := make([]error, len(e.Jobs))
	for i, je := range e.Jobs {
		errs[i] = je
	}
	return errs
}

// jobError attributes err to one job. An unattributed *JobError (from
// a singleflight panic guard, which does not know the job it ran for)
// is copied and filled in; an already-attributed one is re-indexed for
// this campaign; anything else is wrapped.
func jobError(j Job, idx int, err error) *JobError {
	var je *JobError
	if errors.As(err, &je) {
		cp := *je
		if cp.Workload == "" {
			cp.Workload = j.Workload.Name
			cp.Config = j.Config.withDefaults().Label()
		}
		cp.Index = idx
		return &cp
	}
	return &JobError{
		Workload: j.Workload.Name,
		Config:   j.Config.withDefaults().Label(),
		Index:    idx,
		Err:      err,
	}
}

// isCancellation reports whether err is a context cancellation or
// deadline expiry.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// isTransient classifies failures that must not be cached by the
// singleflight layer: a canceled campaign or a corrupted recording says
// nothing about the next attempt, so the entry is evicted and a later
// call retries. Panics and workload errors are deterministic — they
// stay cached like successes.
func isTransient(err error) bool {
	if err == nil {
		return false
	}
	if isCancellation(err) {
		return true
	}
	var ce *trace.CorruptionError
	return errors.As(err, &ce)
}

// guarded runs fn, converting a panic into an unattributed *JobError.
// Every singleflight owner runs through it, so a panicking computation
// still resolves its flight — waiters are never deadlocked, and the
// panic fails exactly the keys that depended on it.
func guarded(ctx context.Context, fn func(context.Context) (any, error)) (v any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &JobError{Index: -1, Panic: p, Stack: debug.Stack()}
		}
	}()
	return fn(ctx)
}

// sleepCtx waits d or until ctx is done, whichever comes first. It
// spaces recording-rebuild attempts; it never feeds simulated results,
// so the wall-clock wait is determinism-safe.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// cancelEvery is how many events pass between context polls while a
// workload executes (recordings and NoRecord runs). 64k events keeps
// the poll invisible in profiles while bounding cancellation latency
// to well under a millisecond of simulated work.
const cancelEvery = 1 << 16

// abortRun carries a cancellation out of a workload's event stream.
// Workload.Run has no context parameter, so the consumer panics with
// this sentinel and runWorkload recovers it into a plain error; any
// other panic value passes through to the singleflight guard.
type abortRun struct{ err error }

// cancelConsumer forwards events to inner, polling ctx every
// cancelEvery events.
type cancelConsumer struct {
	ctx   context.Context
	inner trace.Consumer
	n     int
}

// Event implements trace.Consumer.
func (c *cancelConsumer) Event(ev trace.Event) {
	if c.n++; c.n >= cancelEvery {
		c.n = 0
		if err := c.ctx.Err(); err != nil {
			panic(abortRun{err})
		}
	}
	c.inner.Event(ev)
}

// runWorkload executes w against img with cancellation support: the
// event stream is aborted at the next poll once ctx is done, and the
// context's error is returned.
func runWorkload(ctx context.Context, w *Workload, img *program.Image, out trace.Consumer) (err error) {
	if err := ctx.Err(); err != nil {
		return err
	}
	defer func() {
		if p := recover(); p != nil {
			a, ok := p.(abortRun)
			if !ok {
				panic(p)
			}
			err = a.err
		}
	}()
	return w.Run(img, &cancelConsumer{ctx: ctx, inner: out})
}
