package cgp

// Sampled-simulation benchmarks: full detailed replay vs sampled
// replay (skip / functional-warm / detailed tiers) of the same
// recorded workload, measured in the same process. TestMain
// (bench_test.go) writes the results to BENCH_sampling.json, including
// the measured relative cycle error of the sampled arm against the
// full arm — throughput claims and accuracy claims travel together.
//
//	GOMAXPROCS=1 go test -run 'TestMain' -bench 'BenchmarkSampling' -benchtime 1x .

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"cgp/internal/cpu"
	"cgp/internal/prefetch"
	"cgp/internal/program"
	"cgp/internal/sample"
	"cgp/internal/trace"
	"cgp/internal/units"
)

// samplingBenchScale is many times the kernel-bench scale: the sampled
// tiers only pay off once a trace is long enough to hold many sampling
// periods (this one holds ~27), which is exactly the campaign regime
// sampling exists for.
const samplingBenchWiscN = 40000

// samplingBenchConfig is the schedule both the benchmark and
// BENCH_sampling.json report: one 8k-event window per 400k events with
// 4k detailed warm-up and 16k functional warming — 3% of the stream in
// detail, 4% functionally warmed, the rest skipped without decoding.
func samplingBenchConfig() sample.Config {
	return sample.Config{
		PeriodEvents:         400_000,
		FunctionalWarmEvents: 16_000,
		DetailWarmEvents:     4_000,
		WindowEvents:         8_000,
	}
}

var samplingBench = struct {
	sync.Mutex
	entries map[string]*kernelBenchEntry
	// Cross-arm accuracy facts recorded by the sampled arm.
	fullCycles  int64
	estCycles   int64
	cycleRelCI  float64
	missRelErr  float64
	windows     int
	skipped     int64
	fastForward int64
	detailed    int64
}{entries: map[string]*kernelBenchEntry{}}

var (
	samplingRecordingOnce sync.Once
	samplingRecordingVal  *trace.Recording
	samplingRecordingErr  error
)

// samplingBenchRecording memoizes one wisc-large-1 recording at
// sampling-bench scale, shared by both arms.
func samplingBenchRecording(b *testing.B) *trace.Recording {
	b.Helper()
	samplingRecordingOnce.Do(func() {
		opts := harnessBenchOpts(1, true)
		opts.DB.WiscN = samplingBenchWiscN
		w := WiscLarge1(opts.DB)
		img := program.LayoutO5(w.NewRegistry())
		r := trace.NewRecorder()
		if err := w.Run(img, r); err != nil {
			samplingRecordingErr = err
			return
		}
		samplingRecordingVal, samplingRecordingErr = r.Finish()
	})
	if samplingRecordingErr != nil {
		b.Fatal(samplingRecordingErr)
	}
	return samplingRecordingVal
}

var (
	samplingFullOnce   sync.Once
	samplingFullStats  *cpu.Stats
	samplingFullCycles int64
)

// samplingFullReference runs the full detailed simulation once (outside
// any timer) so the sampled arm can report its measured error even when
// the full benchmark arm is filtered out.
func samplingFullReference(b *testing.B) int64 {
	b.Helper()
	rec := samplingBenchRecording(b)
	samplingFullOnce.Do(func() {
		c := cpu.New(cpu.DefaultConfig(), prefetch.NewNL(4))
		if err := rec.Replay(c); err != nil {
			samplingRecordingErr = err
			return
		}
		samplingFullStats = c.Finish()
		samplingFullCycles = int64(samplingFullStats.Cycles)
	})
	if samplingRecordingErr != nil {
		b.Fatal(samplingRecordingErr)
	}
	return samplingFullCycles
}

func recordSamplingBench(name string, wall time.Duration, events int64) {
	samplingBench.Lock()
	defer samplingBench.Unlock()
	samplingBench.entries[name] = &kernelBenchEntry{
		WallSeconds:  wall.Seconds(),
		Events:       events,
		EventsPerSec: float64(events) / wall.Seconds(),
		NsPerEvent:   wall.Seconds() * 1e9 / float64(events),
	}
}

// BenchmarkSamplingFullReplay is the reference arm: every event
// simulated in full detail.
func BenchmarkSamplingFullReplay(b *testing.B) {
	rec := samplingBenchRecording(b)
	b.ResetTimer()
	var best time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		c := cpu.New(cpu.DefaultConfig(), prefetch.NewNL(4))
		if err := rec.Replay(c); err != nil {
			b.Fatal(err)
		}
		c.Finish()
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
	}
	recordSamplingBench("full_detailed", best, rec.Events())
	b.ReportMetric(float64(rec.Events())/best.Seconds()/1e6, "Mevents/s-best")
}

// BenchmarkSamplingSampledReplay is the sampled arm: the identical
// logical event stream handled by the three-tier replay. Events/s
// counts the whole stream — skipped events are covered work, exactly
// as a campaign experiences it. The skip index is built in setup, like
// the recording itself: both are per-recording one-time costs the
// runner amortizes across a campaign's many cells.
func BenchmarkSamplingSampledReplay(b *testing.B) {
	rec := samplingBenchRecording(b)
	fullCycles := samplingFullReference(b)
	scfg := samplingBenchConfig()
	plan := scfg.Plan(rec.Events())
	// Prime the lazy skip index outside the timer.
	if err := rec.ReplaySampledInto([]trace.Span{{Kind: trace.SpanSkip, Events: rec.Events()}},
		discardSampled{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var best time.Duration
	var last *cpu.Stats
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		c := cpu.New(cpu.DefaultConfig(), prefetch.NewNL(4))
		c.EnableSampling()
		if err := rec.ReplaySampledInto(plan, c); err != nil {
			b.Fatal(err)
		}
		last = c.Finish()
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
	}
	recordSamplingBench("sampled", best, rec.Events())
	b.ReportMetric(float64(rec.Events())/best.Seconds()/1e6, "Mevents/s-best")

	sm := last.Sample
	samplingBench.Lock()
	samplingBench.fullCycles = fullCycles
	samplingBench.estCycles = int64(sm.EstCycles)
	samplingBench.cycleRelCI = sm.CycleRelCI
	samplingBench.windows = sm.Windows
	samplingBench.skipped = sm.SkippedEvents
	samplingBench.fastForward = sm.FastForwardedEvents
	samplingBench.detailed = sm.DetailedEvents()
	if fm := samplingFullStats; fm != nil && fm.ICacheMisses > 0 {
		samplingBench.missRelErr = relErr(sm.EstIMisses, fm.ICacheMisses)
	}
	samplingBench.Unlock()
	b.ReportMetric(relErr(int64(sm.EstCycles), fullCycles), "rel-cycle-err")
	b.ReportMetric(sm.CycleRelCI, "rel-ci")
}

func relErr(est, full int64) float64 {
	if full == 0 {
		return 0
	}
	d := est - full
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(full)
}

// discardSampled drains a sampled replay without a CPU, used to prime
// the skip index.
type discardSampled struct{}

func (discardSampled) Event(trace.Event)        {}
func (discardSampled) EventBatch([]trace.Event) {}
func (discardSampled) BeginSpan(trace.SpanKind) {}
func (discardSampled) SkipSpan(int64, units.Instrs) {
}

// writeSamplingBench dumps BENCH_sampling.json (called from TestMain in
// bench_test.go). The headline acceptance numbers are sampling_speedup
// (sampled events/s over full detailed events/s on the same recording
// in the same process) and measured_rel_cycle_error, which must sit
// within reported_rel_ci and under the 3% hard cap the differential
// suite enforces.
func writeSamplingBench() {
	samplingBench.Lock()
	defer samplingBench.Unlock()
	if len(samplingBench.entries) == 0 {
		return
	}
	out := map[string]any{
		"scale":      fmt.Sprintf("wisc-large-1, WiscN=%d, layout O5, prefetcher NL_4", samplingBenchWiscN),
		"sampling":   samplingBenchConfig().String(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"bench":      samplingBench.entries,
	}
	if full, ok := samplingBench.entries["full_detailed"]; ok {
		if smp, ok := samplingBench.entries["sampled"]; ok {
			out["sampling_speedup"] = smp.EventsPerSec / full.EventsPerSec
		}
	}
	if samplingBench.fullCycles > 0 {
		err := relErr(samplingBench.estCycles, samplingBench.fullCycles)
		out["full_cycles"] = samplingBench.fullCycles
		out["est_cycles"] = samplingBench.estCycles
		out["measured_rel_cycle_error"] = err
		out["reported_rel_ci"] = samplingBench.cycleRelCI
		out["within_ci"] = err <= samplingBench.cycleRelCI
		out["measured_rel_miss_error"] = samplingBench.missRelErr
		out["windows"] = samplingBench.windows
		out["events_skipped"] = samplingBench.skipped
		out["events_fastforwarded"] = samplingBench.fastForward
		out["events_detailed"] = samplingBench.detailed
	}
	if data, err := json.MarshalIndent(out, "", "  "); err == nil {
		_ = os.WriteFile("BENCH_sampling.json", append(data, '\n'), 0o644)
	}
}
