package cgp

import (
	"fmt"

	"cgp/internal/core"
	"cgp/internal/cpu"
	"cgp/internal/prefetch"
	"cgp/internal/sample"
)

// Layout selects the binary layout (the paper's two baselines).
type Layout int

const (
	// LayoutO5 is the compiler-optimized binary in link order.
	LayoutO5 Layout = iota
	// LayoutOM applies the OM-style profile-guided code layout.
	LayoutOM
)

// String returns "O5" or "O5+OM".
func (l Layout) String() string {
	if l == LayoutOM {
		return "O5+OM"
	}
	return "O5"
}

// PrefetcherKind selects the instruction prefetcher.
type PrefetcherKind int

const (
	// PrefNone disables prefetching.
	PrefNone PrefetcherKind = iota
	// PrefNL is next-N-line prefetching.
	PrefNL
	// PrefRunAheadNL is the §5.6 run-ahead variant.
	PrefRunAheadNL
	// PrefCGP is Call Graph Prefetching.
	PrefCGP
	// PrefSoftwareCGP is the §6 all-software variant: compiler-inserted
	// prefetches driven by a static, profile-derived call-graph table.
	PrefSoftwareCGP
)

// CGHCConfig sizes the Call Graph History Cache.
type CGHCConfig struct {
	// L1Bytes is the first-level size (0 with Infinite).
	L1Bytes int
	// L2Bytes adds a second level when nonzero.
	L2Bytes int
	// Infinite selects the unbounded CGHC.
	Infinite bool
	// Ways selects set-associativity (0/1 = direct-mapped, the paper's
	// design; >1 is the ablation variant).
	Ways int
	// Slots caps recorded callees per entry (0 = 8, the paper's value).
	Slots int
}

// DefaultCGHC is the paper's preferred 2KB+32KB two-level CGHC.
func DefaultCGHC() CGHCConfig { return CGHCConfig{L1Bytes: 2 * 1024, L2Bytes: 32 * 1024} }

// String names the configuration as the paper does (CGHC-2K+32K, ...).
func (c CGHCConfig) String() string {
	var s string
	switch {
	case c.Infinite:
		s = "CGHC-Inf"
	case c.L2Bytes > 0:
		s = fmt.Sprintf("CGHC-%dK+%dK", c.L1Bytes/1024, c.L2Bytes/1024)
	default:
		s = fmt.Sprintf("CGHC-%dK", c.L1Bytes/1024)
	}
	if c.Ways > 1 {
		s += fmt.Sprintf("-%dway", c.Ways)
	}
	if c.Slots > 0 && c.Slots != 8 {
		s += fmt.Sprintf("-slots%d", c.Slots)
	}
	return s
}

// Config is one simulated system configuration.
type Config struct {
	// Layout is the binary layout.
	Layout Layout
	// Prefetcher selects the prefetch engine.
	Prefetcher PrefetcherKind
	// Degree is N for NL_N / CGP_N (default 4).
	Degree int
	// RunAheadM is M for run-ahead NL (default 4).
	RunAheadM int
	// CGHC sizes the history cache for PrefCGP (default 2K+32K).
	CGHC CGHCConfig
	// PerfectICache makes every I-access single-cycle.
	PerfectICache bool
	// DemandPriority enables the §3.3 ablation: demand misses bypass
	// queued prefetches.
	DemandPriority bool
	// PrefetchIntoL2Only enables the §3.3 ablation: prefetches fill
	// only L2, not L1I.
	PrefetchIntoL2Only bool
	// CPU overrides the Table-1 machine when non-nil.
	CPU *cpu.Config
	// Sampling, when enabled, runs this cell as a sampled simulation:
	// most of the event stream is skipped or functionally warmed and
	// only periodic windows are simulated in detail, yielding estimated
	// cycle/miss totals (typed units.EstCycles, ±CI) at a fraction of
	// the cost. The zero value means full detailed simulation.
	Sampling sample.Config
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Degree == 0 {
		c.Degree = 4
	}
	if c.RunAheadM == 0 {
		c.RunAheadM = 4
	}
	if (c.Prefetcher == PrefCGP || c.Prefetcher == PrefSoftwareCGP) && c.CGHC == (CGHCConfig{}) {
		c.CGHC = DefaultCGHC()
	}
	c.Sampling = c.Sampling.WithDefaults()
	return c
}

// Label names the configuration the way the paper's figures do:
// "O5", "O5+OM", "O5+CGP_4", "O5+OM+NL_2", "perf-Icache", ...
func (c Config) Label() string {
	c = c.withDefaults()
	if c.PerfectICache {
		return "perf-Icache"
	}
	label := c.Layout.String()
	switch c.Prefetcher {
	case PrefNL:
		label += fmt.Sprintf("+NL_%d", c.Degree)
	case PrefRunAheadNL:
		label += fmt.Sprintf("+RANL_%d", c.Degree)
	case PrefCGP:
		label += fmt.Sprintf("+CGP_%d", c.Degree)
	case PrefSoftwareCGP:
		label += fmt.Sprintf("+SWCGP_%d", c.Degree)
	}
	if c.DemandPriority {
		label += "+prio"
	}
	if c.PrefetchIntoL2Only {
		label += "+l2only"
	}
	return label
}

// fingerprint serializes every field that can influence a simulation,
// for use as a cache key. Label() is for display only: configs that
// differ in non-Label fields (RunAheadM, CGHC geometry, a CPU
// override) share a label but must not share a cached result. It is a
// deterministic sink: walltaint proves no wall-clock-derived value is
// folded into a fingerprint, so cache keys and checkpoint identities
// stay replay-stable.
//
//cgplint:detsink
func (c Config) fingerprint() string {
	c = c.withDefaults()
	cpuDesc := "default"
	if c.CPU != nil {
		cpuDesc = fmt.Sprintf("%+v", *c.CPU)
	}
	fp := fmt.Sprintf("l%d p%d n%d m%d cghc{%d %d %t %d %d} perf%t prio%t l2o%t cpu{%s}",
		c.Layout, c.Prefetcher, c.Degree, c.RunAheadM,
		c.CGHC.L1Bytes, c.CGHC.L2Bytes, c.CGHC.Infinite, c.CGHC.Ways, c.CGHC.Slots,
		c.PerfectICache, c.DemandPriority, c.PrefetchIntoL2Only, cpuDesc)
	// The sampling suffix appears only when sampling is on, so every
	// full-detail fingerprint — and the checkpoint key derived from it —
	// is byte-identical to what pre-sampling campaigns wrote.
	if c.Sampling.Enabled() {
		fp += " smp{" + c.Sampling.String() + "}"
	}
	return fp
}

// cpuConfig resolves the machine model.
func (c Config) cpuConfig() cpu.Config {
	var cfg cpu.Config
	if c.CPU != nil {
		cfg = *c.CPU
	} else {
		cfg = cpu.DefaultConfig()
	}
	cfg.PerfectICache = c.PerfectICache
	cfg.DemandPriority = c.DemandPriority
	cfg.PrefetchIntoL2Only = c.PrefetchIntoL2Only
	return cfg
}

// buildPrefetcher instantiates the configured prefetch engine; the
// second result exposes the CGP core when present (for Figure 9's
// portion accounting).
func (c Config) buildPrefetcher() (prefetch.Prefetcher, *core.CGP) {
	c = c.withDefaults()
	if c.PerfectICache {
		return prefetch.None{}, nil
	}
	switch c.Prefetcher {
	case PrefNL:
		return prefetch.NewNL(c.Degree), nil
	case PrefRunAheadNL:
		return prefetch.NewRunAheadNL(c.Degree, c.RunAheadM), nil
	case PrefCGP:
		g := core.New(core.Config{
			Lines:    c.Degree,
			L1Bytes:  c.CGHC.L1Bytes,
			L2Bytes:  c.CGHC.L2Bytes,
			Infinite: c.CGHC.Infinite,
			Ways:     c.CGHC.Ways,
			Slots:    c.CGHC.Slots,
		})
		return g, g
	case PrefSoftwareCGP:
		// Placeholder: Runner.Run rebinds this with the profiled call
		// sequences for the active image.
		return prefetch.None{}, nil
	default:
		return prefetch.None{}, nil
	}
}

// DefaultCPUConfig exposes the Table-1 machine parameters.
func DefaultCPUConfig() cpu.Config { return cpu.DefaultConfig() }
