package cgp

import (
	"fmt"
	"strings"
)

// Chart renders the figure as text bars (normalized per workload to its
// baseline config), the closest plain-text analogue of the paper's bar
// graphs.
func (f *Figure) Chart() string {
	metric := func(r Row) float64 { return float64(r.Cycles) }
	label := "cycles"
	if f.ID == "fig7" {
		metric = func(r Row) float64 { return float64(r.Misses) }
		label = "I-cache misses"
	}
	if f.ID == "fig8" || f.ID == "fig9" {
		metric = func(r Row) float64 { return float64(r.PrefHits + r.DelayedHits + r.Useless) }
		label = "prefetches"
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (bars normalized per workload)\n", f.ID, label)
	const width = 44
	for _, w := range f.Workloads() {
		rows := f.RowsFor(w)
		var max float64
		for _, r := range rows {
			if v := metric(r); v > max {
				max = v
			}
		}
		if max == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s\n", w)
		for _, r := range rows {
			if r.Failed() {
				fmt.Fprintf(&b, "  %-22s (failed: %s)\n", r.Config, r.Err)
				continue
			}
			v := metric(r)
			n := int(v / max * width)
			if n < 1 && v > 0 {
				n = 1
			}
			fmt.Fprintf(&b, "  %-22s %-*s %.0f\n", r.Config, width, strings.Repeat("#", n), v)
		}
	}
	return b.String()
}
