package cgp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"cgp/internal/program"
)

// Markdown renders the figure as a GitHub-style table. Degraded rows
// (failed simulations) are rendered explicitly with their failure,
// never silently omitted, and a banner above the table counts them.
func (f *Figure) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", strings.ToUpper(f.ID[:1])+f.ID[1:], f.Title)
	if n := f.Degraded(); n > 0 {
		fmt.Fprintf(&b, "> **Degraded:** %d of %d rows failed; their cells are marked below.\n\n", n, len(f.Rows))
	}
	if n := f.Sampled(); n > 0 {
		fmt.Fprintf(&b, "> **Sampled:** %d of %d rows are sampled estimates, marked `~value ±CI` (relative 95%% confidence half-width).\n\n", n, len(f.Rows))
	}
	switch f.ID {
	case "fig7":
		b.WriteString("| workload | config | I-cache misses | vs O5 |\n|---|---|---:|---:|\n")
		base := map[string]int64{}
		for _, r := range f.Rows {
			if r.Failed() {
				fmt.Fprintf(&b, "| %s | %s | _failed: %s_ | — |\n", r.Workload, r.Config, r.Err)
				continue
			}
			if r.Config == f.Baseline {
				base[r.Workload] = r.Misses
			}
			frac := "—"
			if base[r.Workload] > 0 {
				frac = fmt.Sprintf("%.2f", float64(r.Misses)/float64(base[r.Workload]))
			}
			misses := fmt.Sprintf("%d", r.Misses)
			if r.Estimated {
				misses = "~" + misses
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", r.Workload, r.Config, misses, frac)
		}
	case "fig8", "fig9":
		b.WriteString("| workload | config | pref hits | delayed hits | useless | useful frac |\n|---|---|---:|---:|---:|---:|\n")
		for _, r := range f.Rows {
			if r.Failed() {
				fmt.Fprintf(&b, "| %s | %s | _failed: %s_ | — | — | — |\n", r.Workload, r.Config, r.Err)
				continue
			}
			total := r.PrefHits + r.DelayedHits + r.Useless
			frac := 0.0
			if total > 0 {
				frac = float64(r.PrefHits+r.DelayedHits) / float64(total)
			}
			fmt.Fprintf(&b, "| %s | %s | %d | %d | %d | %.2f |\n",
				r.Workload, r.Config, r.PrefHits, r.DelayedHits, r.Useless, frac)
		}
	default:
		b.WriteString("| workload | config | cycles | speedup vs " + f.Baseline + " |\n|---|---|---:|---:|\n")
		for _, r := range f.Rows {
			if r.Failed() {
				fmt.Fprintf(&b, "| %s | %s | _failed: %s_ | — |\n", r.Workload, r.Config, r.Err)
				continue
			}
			if r.Estimated {
				fmt.Fprintf(&b, "| %s | %s | ~%d ±%.1f%% | ~%.3f |\n",
					r.Workload, r.Config, r.Cycles, 100*r.CyclesCI, r.Speedup)
				continue
			}
			fmt.Fprintf(&b, "| %s | %s | %d | %.3f |\n", r.Workload, r.Config, r.Cycles, r.Speedup)
		}
	}
	return b.String()
}

// GeoSpeedup returns the geometric-mean speedup of config over the
// figure's baseline across workloads.
func (f *Figure) GeoSpeedup(config string) float64 {
	prod := 1.0
	n := 0
	for _, r := range f.Rows {
		if r.Config == config && r.Speedup > 0 {
			prod *= r.Speedup
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1.0/float64(n))
}

// MeanMissFraction returns the average (across workloads) ratio of the
// config's miss count to the baseline config's.
func (f *Figure) MeanMissFraction(config string) float64 {
	base := map[string]int64{}
	for _, r := range f.Rows {
		if r.Config == f.Baseline {
			base[r.Workload] = r.Misses
		}
	}
	sum, n := 0.0, 0
	for _, r := range f.Rows {
		if r.Config == config && base[r.Workload] > 0 {
			sum += float64(r.Misses) / float64(base[r.Workload])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanUsefulFraction averages useful/(useful+useless) for a config.
func (f *Figure) MeanUsefulFraction(config string) float64 {
	sum, n := 0.0, 0
	for _, r := range f.Rows {
		if r.Config != config {
			continue
		}
		total := r.PrefHits + r.DelayedHits + r.Useless
		if total == 0 {
			continue
		}
		sum += float64(r.PrefHits+r.DelayedHits) / float64(total)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FanoutStats summarizes the dynamic call-fanout observation of §3.2
// ("80% of the functions have calls to fewer than 8 distinct
// functions") for the DB profile.
type FanoutStats struct {
	CallingFunctions int
	FractionBelow8   float64
	InstrPerCall     float64
}

// CallFanoutStats computes the §3.2 / §5.4 trace statistics from the
// runner's database profile.
func (r *Runner) CallFanoutStats(ctx context.Context) (FanoutStats, error) {
	w := r.DBWorkloads()[0]
	prof, err := r.profileFor(ctx, w)
	if err != nil {
		return FanoutStats{}, err
	}
	return FanoutStats{
		CallingFunctions: len(prof.FanoutDistinct()),
		FractionBelow8:   prof.FanoutFractionBelow(8),
		InstrPerCall:     prof.InstructionsPerCall(),
	}, nil
}

// DBProfile exposes the merged database feedback profile (wisc-prof +
// wisc+tpch), for inspection and tests.
func (r *Runner) DBProfile(ctx context.Context) (*program.Profile, error) {
	return r.profileFor(ctx, r.DBWorkloads()[0])
}

// SummarizeConfigs lists the distinct config labels of a figure in
// first-appearance order.
func (f *Figure) SummarizeConfigs() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range f.Rows {
		if !seen[r.Config] {
			seen[r.Config] = true
			out = append(out, r.Config)
		}
	}
	return out
}

// Workloads lists the distinct workloads of a figure, sorted by first
// appearance.
func (f *Figure) Workloads() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range f.Rows {
		if !seen[r.Workload] {
			seen[r.Workload] = true
			out = append(out, r.Workload)
		}
	}
	return out
}

// RowsFor returns the rows of one workload in config order.
func (f *Figure) RowsFor(workload string) []Row {
	var out []Row
	for _, r := range f.Rows {
		if r.Workload == workload {
			out = append(out, r)
		}
	}
	return out
}

// sortRowsStable is used by tests to compare row sets independent of
// generation order.
func sortRowsStable(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Workload != rows[j].Workload {
			return rows[i].Workload < rows[j].Workload
		}
		return rows[i].Config < rows[j].Config
	})
}

// Markdown renders the attribution table as a GitHub-style table:
// per-function coverage (fraction of would-be misses the prefetcher
// served), accuracy (useful fraction of issues launched on the
// function's behalf) and mean timeliness (issue-to-first-use cycles).
// Like the figures above, every cell is a deterministic simulator
// quantity, so regenerating the table yields identical bytes.
func (t *AttributionTable) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Per-function prefetch attribution — %s under %s\n\n", t.Workload, t.Config)
	if len(t.Rows) < t.TotalFuncs {
		fmt.Fprintf(&b, "Top %d of %d attributed functions, by prefetch-relevant demand fetches.\n\n",
			len(t.Rows), t.TotalFuncs)
	}
	b.WriteString("| function | fetches | misses | pref hits | delayed | coverage | issued | useful | accuracy | timeliness (cyc) |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	for i := range t.Rows {
		r := &t.Rows[i]
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %.2f | %d | %d | %.2f | %.1f |\n",
			r.Name, r.LineFetches, r.Misses, r.PrefHits, r.DelayedHits, r.Coverage(),
			r.Issued, r.Useful, r.Accuracy(), r.MeanTimeliness())
	}
	return b.String()
}

// Markdown renders the per-query attribution table. Trace IDs print as
// 16 lower-case hex digits — the same rendering the slow-query log and
// the replay join use, so a row here greps directly against serving
// artifacts. Rows are already trace-ID-sorted; regenerating the table
// yields identical bytes.
func (t *QueryAttributionTable) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Per-query prefetch attribution — %s under %s\n\n", t.Workload, t.Config)
	b.WriteString("| trace id | fetches | misses | pref hits | delayed | coverage | issued | useful | accuracy | timeliness (cyc) |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	for i := range t.Rows {
		r := &t.Rows[i]
		fmt.Fprintf(&b, "| %016x | %d | %d | %d | %d | %.2f | %d | %d | %.2f | %.1f |\n",
			r.Query, r.LineFetches, r.Misses, r.PrefHits, r.DelayedHits, r.Coverage(),
			r.Issued, r.Useful, r.Accuracy(), r.MeanTimeliness())
	}
	return b.String()
}
