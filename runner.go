package cgp

import (
	"fmt"

	"cgp/internal/core"
	"cgp/internal/cpu"
	"cgp/internal/isa"
	"cgp/internal/program"
	"cgp/internal/trace"
	"cgp/internal/workload"
)

// Workload re-exports the workload type for the public API.
type Workload = workload.Workload

// DBOptions re-exports database workload sizing.
type DBOptions = workload.DBOptions

// The paper's four database workloads (§4.1).
var (
	WiscProf   = workload.WiscProf
	WiscLarge1 = workload.WiscLarge1
	WiscLarge2 = workload.WiscLarge2
	WiscTPCH   = workload.WiscTPCH
)

// CPU2000 builds the named synthetic SPEC stand-in (gzip, gcc, crafty,
// parser, gap, bzip2, twolf).
func CPU2000(name string, seed int64) (*Workload, error) {
	spec, err := workload.CPU2000ByName(name)
	if err != nil {
		return nil, err
	}
	return workload.NewCPU2000(spec, seed), nil
}

// Result is everything one simulation run measured.
type Result struct {
	Workload string
	Config   string

	// CPU carries the full simulator statistics.
	CPU *cpu.Stats
	// Trace carries the trace-level statistics (instructions, calls,
	// instructions-per-call, ...).
	Trace trace.Stats
	// CGPStats is set when the configuration used CGP.
	CGPStats *core.Stats
}

// Cycles is shorthand for CPU.Cycles.
func (r *Result) Cycles() int64 { return r.CPU.Cycles }

// ICacheMisses is shorthand for CPU.ICacheMisses.
func (r *Result) ICacheMisses() int64 { return r.CPU.ICacheMisses }

// RunnerOptions configures the experiment harness.
type RunnerOptions struct {
	// DB sizes the database workloads.
	DB DBOptions
	// Seed drives the CPU2000 generators.
	Seed int64
	// Verbose enables progress lines on stderr.
	Verbose bool
	// Log receives progress lines when Verbose (defaults to a no-op).
	Log func(format string, args ...any)
}

// profiles bundles the two feedback artifacts a profile run produces:
// edge weights (for the OM layout) and modal call sequences (for the
// software-CGP variant).
type profiles struct {
	edges *program.Profile
	seq   *trace.SequenceProfile
}

// Runner executes (workload, config) pairs, caching profiles and run
// results so the figure generators can share work.
type Runner struct {
	opts RunnerOptions

	dbProfiles  *profiles
	cpuProfiles map[string]*profiles
	cache       map[string]*Result
}

// NewRunner builds a harness.
func NewRunner(opts RunnerOptions) *Runner {
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	if opts.Log == nil {
		opts.Log = func(string, ...any) {}
	}
	return &Runner{
		opts:        opts,
		cpuProfiles: make(map[string]*profiles),
		cache:       make(map[string]*Result),
	}
}

// DBWorkloads returns the paper's four database workloads at the
// runner's scale.
func (r *Runner) DBWorkloads() []*Workload {
	return workload.DBWorkloads(r.opts.DB)
}

// CPU2000Workloads returns the seven Figure-10 programs.
func (r *Runner) CPU2000Workloads() []*Workload {
	return workload.CPU2000Workloads(r.opts.Seed)
}

// profilesFor returns (collecting on first use) the feedback artifacts
// a profile run produces. Database workloads share one profile, merged
// from wisc-prof and wisc+tpch runs exactly as §5.1 describes; each
// CPU2000 program profiles itself (the paper uses the SPEC "test"
// input).
func (r *Runner) profilesFor(w *Workload) (*profiles, error) {
	if w.Family == "db" {
		if r.dbProfiles != nil {
			return r.dbProfiles, nil
		}
		r.opts.Log("collecting DB profile (wisc-prof + wisc+tpch)")
		merged := &profiles{edges: program.NewProfile(), seq: trace.NewSequenceProfile(0)}
		for _, pw := range []*Workload{workload.WiscProf(r.opts.DB), workload.WiscTPCH(r.opts.DB)} {
			p, err := collectProfiles(pw)
			if err != nil {
				return nil, fmt.Errorf("profile run %s: %w", pw.Name, err)
			}
			merged.edges.Merge(p.edges)
			mergeSequences(merged.seq, p.seq)
		}
		r.dbProfiles = merged
		return merged, nil
	}
	if p, ok := r.cpuProfiles[w.Name]; ok {
		return p, nil
	}
	r.opts.Log("collecting profile for %s", w.Name)
	p, err := collectProfiles(w)
	if err != nil {
		return nil, err
	}
	r.cpuProfiles[w.Name] = p
	return p, nil
}

// profileFor returns just the edge-weight profile (OM layout input).
func (r *Runner) profileFor(w *Workload) (*program.Profile, error) {
	p, err := r.profilesFor(w)
	if err != nil {
		return nil, err
	}
	return p.edges, nil
}

// collectProfiles runs w once on its O5 image with both collectors.
func collectProfiles(w *Workload) (*profiles, error) {
	reg := w.NewRegistry()
	img := program.LayoutO5(reg)
	pc := trace.NewProfileCollector()
	sc := trace.NewSequenceCollector(0)
	if err := w.Run(img, trace.Tee(pc, sc)); err != nil {
		return nil, err
	}
	return &profiles{edges: pc.Profile, seq: sc.Profile}, nil
}

// mergeSequences folds src's recorded call positions into dst.
func mergeSequences(dst, src *trace.SequenceProfile) {
	for _, fn := range src.Functions() {
		for slot, callee := range src.Sequence(fn) {
			dst.Record(fn, slot, callee)
		}
	}
}

// Run simulates one workload under one configuration. Results are
// cached by (workload, label).
func (r *Runner) Run(w *Workload, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	key := w.Name + "|" + cfg.Label() + "|" + cfg.describeExtra()
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	reg := w.NewRegistry()
	var img *program.Image
	switch cfg.Layout {
	case LayoutO5:
		img = program.LayoutO5(reg)
	case LayoutOM:
		prof, err := r.profileFor(w)
		if err != nil {
			return nil, err
		}
		img = program.LayoutOM(reg, prof)
	default:
		return nil, fmt.Errorf("cgp: unknown layout %d", cfg.Layout)
	}

	pf, gp := cfg.buildPrefetcher()
	if cfg.Prefetcher == PrefSoftwareCGP && !cfg.PerfectICache {
		// The software variant needs the profiled call sequences bound
		// to this image's addresses.
		prof, err := r.profilesFor(w)
		if err != nil {
			return nil, err
		}
		pf = buildSoftwareCGP(cfg, prof.seq, img)
	}
	c := cpu.New(cfg.cpuConfig(), pf)
	res := &Result{Workload: w.Name, Config: cfg.Label()}
	cons := trace.Tee(&res.Trace, c)

	r.opts.Log("run %-12s %-14s", w.Name, cfg.Label())
	if err := w.Run(img, cons); err != nil {
		return nil, fmt.Errorf("cgp: %s under %s: %w", w.Name, cfg.Label(), err)
	}
	res.CPU = c.Finish()
	if gp != nil {
		s := gp.Stats()
		res.CGPStats = &s
	}
	r.cache[key] = res
	return res, nil
}

// buildSoftwareCGP binds a profiled sequence table to an image's
// addresses and returns the §6 software prefetcher.
func buildSoftwareCGP(cfg Config, seq *trace.SequenceProfile, img *program.Image) *core.Software {
	table := make(map[isa.Addr][]isa.Addr, seq.Len())
	for _, fn := range seq.Functions() {
		callees := seq.Sequence(fn)
		addrs := make([]isa.Addr, len(callees))
		for i, c := range callees {
			addrs[i] = img.Start(c)
		}
		table[img.Start(fn)] = addrs
	}
	return core.NewSoftware(cfg.Degree, table)
}

// describeExtra disambiguates cache keys for configs whose Label is
// identical but whose internals differ (CGHC sweeps).
func (c Config) describeExtra() string {
	if c.Prefetcher == PrefCGP {
		return c.CGHC.String()
	}
	return ""
}
