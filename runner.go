package cgp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"cgp/internal/core"
	"cgp/internal/cpu"
	"cgp/internal/isa"
	"cgp/internal/obs"
	"cgp/internal/prefetch"
	"cgp/internal/program"
	"cgp/internal/sample"
	"cgp/internal/trace"
	"cgp/internal/units"
	"cgp/internal/workload"
)

// Workload re-exports the workload type for the public API.
type Workload = workload.Workload

// DBOptions re-exports database workload sizing.
type DBOptions = workload.DBOptions

// The paper's four database workloads (§4.1).
var (
	WiscProf   = workload.WiscProf
	WiscLarge1 = workload.WiscLarge1
	WiscLarge2 = workload.WiscLarge2
	WiscTPCH   = workload.WiscTPCH
)

// CPU2000 builds the named synthetic SPEC stand-in (gzip, gcc, crafty,
// parser, gap, bzip2, twolf).
func CPU2000(name string, seed int64) (*Workload, error) {
	spec, err := workload.CPU2000ByName(name)
	if err != nil {
		return nil, err
	}
	return workload.NewCPU2000(spec, seed), nil
}

// Result is everything one simulation run measured.
type Result struct {
	Workload string
	Config   string

	// CPU carries the full simulator statistics.
	CPU *cpu.Stats
	// Trace carries the trace-level statistics (instructions, calls,
	// instructions-per-call, ...).
	Trace trace.Stats
	// CGPStats is set when the configuration used CGP.
	CGPStats *core.Stats
}

// Cycles is shorthand for CPU.Cycles — the measured cycle count. For a
// sampled run this covers only the detailed spans; the whole-run
// figure is the estimate in CPU.Sample.EstCycles.
func (r *Result) Cycles() int64 { return int64(r.CPU.Cycles) }

// ICacheMisses is shorthand for CPU.ICacheMisses.
func (r *Result) ICacheMisses() int64 { return r.CPU.ICacheMisses }

// RunnerOptions configures the experiment harness.
type RunnerOptions struct {
	// DB sizes the database workloads.
	DB DBOptions
	// Seed drives the CPU2000 generators.
	Seed int64
	// Verbose enables progress lines on stderr.
	Verbose bool
	// Log receives progress lines when Verbose (defaults to a no-op).
	// It may be called from multiple goroutines concurrently.
	Log func(format string, args ...any)
	// Workers caps the number of simulations RunAll keeps in flight.
	// 0 means GOMAXPROCS; 1 forces sequential execution.
	Workers int
	// NoRecord disables trace record/replay: every Run re-executes the
	// workload (engine build, data load, query execution) instead of
	// replaying a captured event stream. Slower when several configs
	// share a (workload, layout), but holds no trace memory. Used by
	// one-shot CLI runs and by benchmarks isolating the replay layer.
	NoRecord bool
	// CheckpointDir, when set, persists each completed Result to disk
	// (atomic temp-file + rename) keyed by the config fingerprint and
	// campaign scope, and serves later runs from those files — a
	// re-run after a crash or cancellation skips finished jobs. See
	// checkpoint.go.
	CheckpointDir string
	// FailFast cancels the remainder of a RunAll campaign as soon as
	// one job fails. Completed results are still returned.
	FailFast bool
	// RetryBudget is how many times a corrupted recording may be
	// rebuilt from source before the affected jobs fail. 0 means the
	// default (2); negative disables rebuilds.
	RetryBudget int
	// RetryBackoff is the base delay between rebuild attempts,
	// doubling each retry. 0 means the default (5ms).
	RetryBackoff time.Duration
	// OnRecord, when set alongside CheckpointDir, receives every
	// settled cell's checkpoint record in wire format (the exact bytes
	// ImportRecord accepts): freshly simulated cells stream the bytes
	// just written, checkpoint-hit cells re-encode (deterministically,
	// so the bytes match the stored file). Campaign workers use it to
	// stream results to their coordinator as the shard progresses. It
	// may be called from multiple goroutines concurrently.
	OnRecord func(key string, record []byte)
	// Obs, when set, receives the campaign's observability signals:
	// harness spans (record/replay/run/checkpoint/verify), job
	// lifecycle events, progress state and metrics in both domains.
	// A nil Obs (the default) disables all of it; the hooks are
	// nil-safe, so no path checks the field more than once.
	Obs *obs.Observability
	// Attribution enables per-function prefetch attribution on every
	// simulated CPU (Stats.Attribution, the attribution table, the
	// cgptrace subreport). It is deliberately not part of Config —
	// enabling it must not change config fingerprints or run cache
	// keys — but it is part of the checkpoint scope, so attributed and
	// plain campaigns never serve each other's checkpoints.
	Attribution bool
	// Sampling, when enabled, is the sampled-simulation schedule the
	// figure generators apply to the figures in SampledFigures: those
	// figures' cells run as sampled simulations (estimated cycles ±CI)
	// instead of full detailed ones. Unlike Attribution this IS part of
	// each affected cell's Config — sampling changes the result — so
	// sampled and full campaigns never share cached results or
	// checkpoints. Jobs submitted directly through Run/RunAll are only
	// sampled if their own Config.Sampling says so.
	Sampling sample.Config
	// SampledFigures lists the figure IDs Sampling applies to. Nil
	// means DefaultSampledFigures — the cycle-comparison figures, whose
	// headline numbers are run-length estimates. Figures whose numbers
	// are prefetch-effectiveness counters (fig7, fig8, fig9) default to
	// full detail: their counters are whole-run measurements a sampled
	// run cannot provide.
	SampledFigures []string
	// CapturePath, when set, registers the "captured" workload: a
	// sealed probe-level recording of live served traffic (written by
	// cgpserve -capture, or server.LiveCapture.Seal). The capture
	// replays through per-session tracers over whatever layout a
	// config asks for, so real traffic runs through the same grids as
	// the synthetic workloads. See CapturedWorkload.
	CapturePath string
	// CaptureSeed seeds the capture replay tracers (0 means 42). Part
	// of the replay's determinism contract: same capture, same seed,
	// same synthesized stream.
	CaptureSeed int64
}

// DefaultSampledFigures is the figure set RunnerOptions.Sampling
// applies to when SampledFigures is nil: every figure whose reported
// quantity is total cycles (well-estimated from windows), none whose
// quantity is a whole-run prefetch breakdown.
func DefaultSampledFigures() []string {
	return []string{"fig4", "fig5", "fig6", "fig10", "sec5.6",
		"abl-ways", "abl-slots", "abl-policy", "abl-swcgp", "abl-degree"}
}

// samplingFor resolves the sampling schedule for one figure: the
// campaign schedule when the figure is in the sampled set, the zero
// (full detail) config otherwise.
func (o *RunnerOptions) samplingFor(figID string) sample.Config {
	if !o.Sampling.Enabled() {
		return sample.Config{}
	}
	figs := o.SampledFigures
	if figs == nil {
		figs = DefaultSampledFigures()
	}
	for _, id := range figs {
		if id == figID {
			return o.Sampling
		}
	}
	return sample.Config{}
}

// retryBudget resolves the RetryBudget default.
func (o *RunnerOptions) retryBudget() int {
	if o.RetryBudget == 0 {
		return 2
	}
	if o.RetryBudget < 0 {
		return 0
	}
	return o.RetryBudget
}

// runnerHooks are fault-injection points used by the chaos tests (see
// robustness_test.go); the zero value is inert and production code
// never sets them.
type runnerHooks struct {
	// afterRecord runs on each freshly sealed recording — chaos tests
	// corrupt bytes here.
	afterRecord func(w *Workload, layout Layout, rec *trace.Recording)
	// wrapConsumer may wrap a cell's CPU consumer — chaos tests inject
	// panics and forced cancellations here.
	wrapConsumer func(w *Workload, cfg Config, c trace.Consumer) trace.Consumer
}

// profiles bundles the two feedback artifacts a profile run produces:
// edge weights (for the OM layout) and modal call sequences (for the
// software-CGP variant).
type profiles struct {
	edges *program.Profile
	seq   *trace.SequenceProfile
}

// Runner executes (workload, config) pairs, caching profiles, laid-out
// images, recorded traces and run results so the figure generators can
// share work.
//
// All methods are safe for concurrent use. Every cacheable unit of
// work is memoized singleflight-style: the first goroutine to request
// a key performs the work while later requesters block and share the
// result, so concurrent figure generators never record the same trace
// or collect the same profile twice. Transient failures (cancellation,
// recording corruption) evict their entry so a later call can retry;
// successes and deterministic failures stay cached.
type Runner struct {
	opts RunnerOptions
	// sem bounds the number of concurrently executing simulations
	// across every RunAll call sharing this runner.
	sem chan struct{}

	hooks runnerHooks

	mu      sync.Mutex
	flights map[string]*flight
	hubs    map[string]*replayHub
}

// flight memoizes one unit of keyed work (a run, a trace recording, an
// image layout or a profile collection). Completed flights double as
// the result cache. Resolution is idempotent (first write wins), so
// the batch-level panic guard can sweep a failed batch without
// tracking which cells already resolved.
type flight struct {
	once sync.Once
	done chan struct{}
	val  any
	err  error
}

// Cache-key namespaces. The work graph is acyclic: runs depend on
// recordings, recordings on images, OM images on profiles, profiles on
// O5 recordings — so nested once() calls cannot deadlock.
const dbProfilesKey = "prof|db"

func runKey(w *Workload, cfg Config) string { return "run|" + w.Name + "|" + cfg.fingerprint() }
func recKey(w *Workload, l Layout) string   { return fmt.Sprintf("rec|%s|%d", w.Name, l) }
func imgKey(w *Workload, l Layout) string   { return fmt.Sprintf("img|%s|%d", w.Name, l) }

func profKey(w *Workload) string {
	if w.Family == "db" {
		return dbProfilesKey
	}
	return "prof|" + w.Name
}

// NewRunner builds a harness.
func NewRunner(opts RunnerOptions) *Runner {
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	if opts.Log == nil {
		opts.Log = func(string, ...any) {}
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = 5 * time.Millisecond
	}
	return &Runner{
		opts:    opts,
		sem:     make(chan struct{}, opts.Workers),
		flights: make(map[string]*flight),
		hubs:    make(map[string]*replayHub),
	}
}

// claim returns the flight for key and whether the caller became its
// owner. An owner must resolve the flight exactly once; everyone else
// waits on it.
func (r *Runner) claim(key string) (*flight, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.flights[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	r.flights[key] = f
	return f, true
}

// evict drops key's entry if it still holds f, so a later claim can
// retry the work. Used for transient failures only: cached successes
// are determinism-relevant and must never be recomputed.
func (r *Runner) evict(key string, f *flight) {
	r.mu.Lock()
	if r.flights[key] == f {
		delete(r.flights, key)
	}
	r.mu.Unlock()
}

func (f *flight) resolve(val any, err error) {
	f.once.Do(func() {
		f.val, f.err = val, err
		close(f.done)
	})
}

// wait blocks until the flight resolves or ctx is done. Abandoning a
// wait does not cancel the computation — the owner may be serving
// other campaigns.
func (f *flight) wait(ctx context.Context) (any, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// once returns the memoized result of the work keyed by key, computing
// it via fn on first use. Concurrent requests for the same key share
// one computation (and its error, if any). A panicking fn resolves the
// flight with a *JobError instead of deadlocking its waiters; a
// transient failure evicts the entry so a later call retries.
func (r *Runner) once(ctx context.Context, key string, fn func(context.Context) (any, error)) (any, error) {
	f, owner := r.claim(key)
	if owner {
		f.resolve(guarded(ctx, fn))
		if isTransient(f.err) {
			r.evict(key, f)
		}
	}
	return f.wait(ctx)
}

// seed installs a precomputed value for key (used to share profiles
// with sub-runners); it is a no-op if the key is already present.
func (r *Runner) seed(key string, val any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.flights[key]; ok {
		return
	}
	f := &flight{done: make(chan struct{}), val: val}
	close(f.done)
	r.flights[key] = f
}

// obsSpan starts a harness span (nil-safe; a nil Obs yields a nil
// span whose End is a no-op).
func (r *Runner) obsSpan(name, cat string) *obs.Span {
	return r.opts.Obs.Span(name, cat)
}

// obsJob emits one job lifecycle event to the run log and progress
// tracker (nil-safe).
func (r *Runner) obsJob(state obs.JobState, workload, config, detail string) {
	r.opts.Obs.Job(state, workload, config, detail)
}

// obsWall returns the wall-clock registry, nil when disabled.
func (r *Runner) obsWall() *obs.WallRegistry {
	if r.opts.Obs == nil {
		return nil
	}
	return r.opts.Obs.Wall
}

// noteResult folds one completed cell's simulated totals into the
// deterministic-domain registry. The values come only from the Result,
// so they are identical whether the cell was freshly simulated,
// replayed, or resumed from a checkpoint — a campaign's deterministic
// metrics depend on which cells it needed, never on how they were
// satisfied.
func (r *Runner) noteResult(res *Result) {
	if r.opts.Obs == nil {
		return
	}
	det := r.opts.Obs.Det
	if det == nil {
		return
	}
	det.Counter("sim_jobs").Add(1)
	det.Counter("sim_cycles").Add(int64(res.CPU.Cycles))
	det.Counter("sim_instructions").Add(int64(res.CPU.Instructions))
	det.Counter("sim_icache_misses").Add(res.CPU.ICacheMisses)
	// Event accounting by simulation tier: a full-detail cell's whole
	// stream is detailed; a sampled cell splits it across the three
	// tiers. All of it is Result-derived, so the counters stay identical
	// across fresh, replayed and checkpoint-resumed cells.
	if sm := res.CPU.Sample; sm != nil {
		det.Counter("sim_jobs_sampled").Add(1)
		det.Counter("sim_events_skipped").Add(sm.SkippedEvents)
		det.Counter("sim_events_fastforwarded").Add(sm.FastForwardedEvents)
		det.Counter("sim_events_detailed").Add(sm.DetailedEvents())
		det.Counter("sim_sample_windows").Add(int64(sm.Windows))
	} else {
		det.Counter("sim_events_detailed").Add(res.Trace.Events)
	}
	tp := res.CPU.TotalPrefetch()
	det.Counter("sim_prefetch_issued").Add(tp.Issued)
	det.Counter("sim_prefetch_useful").Add(tp.Useful())
	for _, p := range prefetch.Portions() {
		ps := res.CPU.PortionStats(p)
		det.Counter("sim_prefetch_issued_" + p.String()).Add(ps.Issued)
		det.Counter("sim_prefetch_useful_" + p.String()).Add(ps.Useful())
	}
}

// DBWorkloads returns the paper's four database workloads at the
// runner's scale.
func (r *Runner) DBWorkloads() []*Workload {
	return workload.DBWorkloads(r.opts.DB)
}

// CPU2000Workloads returns the seven Figure-10 programs.
func (r *Runner) CPU2000Workloads() []*Workload {
	return workload.CPU2000Workloads(r.opts.Seed)
}

// capturedKey memoizes the capture file load.
const capturedKey = "wl|captured"

// CapturedWorkload loads RunnerOptions.CapturePath as the "captured"
// workload. The load (file read, CRC verification) is memoized like
// every other cacheable unit, so campaign workers resolving the name
// repeatedly share one recording in memory.
func (r *Runner) CapturedWorkload() (*Workload, error) {
	if r.opts.CapturePath == "" {
		return nil, fmt.Errorf("cgp: no capture configured (RunnerOptions.CapturePath)")
	}
	f, owner := r.claim(capturedKey)
	if owner {
		w, err := workload.CapturedFromFile(r.opts.CapturePath, r.opts.CaptureSeed)
		if err != nil {
			f.resolve(nil, fmt.Errorf("cgp: loading capture %s: %w", r.opts.CapturePath, err))
		} else {
			f.resolve(w, nil)
		}
	}
	<-f.done
	if f.err != nil {
		return nil, f.err
	}
	return f.val.(*Workload), nil
}

// profilesFor returns (collecting on first use) the feedback artifacts
// a profile run produces. Database workloads share one profile, merged
// from wisc-prof and wisc+tpch runs exactly as §5.1 describes; each
// CPU2000 program profiles itself (the paper uses the SPEC "test"
// input).
func (r *Runner) profilesFor(ctx context.Context, w *Workload) (*profiles, error) {
	v, err := r.once(ctx, profKey(w), func(ctx context.Context) (any, error) {
		if w.Family == "db" {
			r.opts.Log("collecting DB profile (wisc-prof + wisc+tpch)")
			merged := &profiles{edges: program.NewProfile(), seq: trace.NewSequenceProfile(0)}
			for _, pw := range []*Workload{workload.WiscProf(r.opts.DB), workload.WiscTPCH(r.opts.DB)} {
				p, err := r.collectProfiles(ctx, pw)
				if err != nil {
					return nil, fmt.Errorf("profile run %s: %w", pw.Name, err)
				}
				merged.edges.Merge(p.edges)
				mergeSequences(merged.seq, p.seq)
			}
			return merged, nil
		}
		r.opts.Log("collecting profile for %s", w.Name)
		return r.collectProfiles(ctx, w)
	})
	if err != nil {
		return nil, err
	}
	return v.(*profiles), nil
}

// profileFor returns just the edge-weight profile (OM layout input).
func (r *Runner) profileFor(ctx context.Context, w *Workload) (*program.Profile, error) {
	p, err := r.profilesFor(ctx, w)
	if err != nil {
		return nil, err
	}
	return p.edges, nil
}

// collectProfiles gathers w's feedback artifacts from its O5 event
// stream. The stream comes from the shared recording, so a workload
// that is both profiled and simulated on O5 executes exactly once.
func (r *Runner) collectProfiles(ctx context.Context, w *Workload) (*profiles, error) {
	if r.opts.NoRecord {
		pc := trace.NewProfileCollector()
		sc := trace.NewSequenceCollector(0)
		img, err := r.imageFor(ctx, w, LayoutO5)
		if err != nil {
			return nil, err
		}
		if err := runWorkload(ctx, w, img, trace.Tee(pc, sc)); err != nil {
			return nil, err
		}
		return &profiles{edges: pc.Profile, seq: sc.Profile}, nil
	}
	var p *profiles
	err := r.replayRetry(ctx, w, LayoutO5, func(ctx context.Context) (*trace.Recording, error) {
		rec, err := r.recordingFor(ctx, w, LayoutO5)
		if err != nil {
			return nil, err
		}
		pc := trace.NewProfileCollector()
		sc := trace.NewSequenceCollector(0)
		if err := replayOne(ctx, rec, trace.Tee(pc, sc)); err != nil {
			return rec, err
		}
		p = &profiles{edges: pc.Profile, seq: sc.Profile}
		return rec, nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// mergeSequences folds src's recorded call positions into dst.
func mergeSequences(dst, src *trace.SequenceProfile) {
	for _, fn := range src.Functions() {
		for slot, callee := range src.Sequence(fn) {
			dst.Record(fn, slot, callee)
		}
	}
}

// imageFor lays out w's registry once per layout. Registries are
// deterministic and images are immutable after layout, so every
// consumer of a (workload, layout) pair shares one image.
func (r *Runner) imageFor(ctx context.Context, w *Workload, layout Layout) (*program.Image, error) {
	v, err := r.once(ctx, imgKey(w, layout), func(ctx context.Context) (any, error) {
		reg := w.NewRegistry()
		switch layout {
		case LayoutO5:
			return program.LayoutO5(reg), nil
		case LayoutOM:
			prof, err := r.profileFor(ctx, w)
			if err != nil {
				return nil, err
			}
			return program.LayoutOM(reg, prof), nil
		default:
			return nil, fmt.Errorf("cgp: unknown layout %d", layout)
		}
	})
	if err != nil {
		return nil, err
	}
	return v.(*program.Image), nil
}

// recordingFor captures w's event stream on the given layout once and
// memoizes the sealed recording. The stream for a (workload, layout)
// pair is deterministic and independent of the CPU configuration, so
// every config replays the same buffer instead of re-executing the
// workload. The recording lives for the life of the Runner (unless
// evicted after corruption); its encoded size is reported through Log.
func (r *Runner) recordingFor(ctx context.Context, w *Workload, layout Layout) (*trace.Recording, error) {
	v, err := r.once(ctx, recKey(w, layout), func(ctx context.Context) (any, error) {
		img, err := r.imageFor(ctx, w, layout)
		if err != nil {
			return nil, err
		}
		rec := trace.NewRecorder()
		r.opts.Log("record %-12s %s", w.Name, layout)
		sp := r.obsSpan("record", "record").
			Arg("workload", w.Name).Arg("layout", layout.String())
		if err := runWorkload(ctx, w, img, rec); err != nil {
			sp.End()
			return nil, fmt.Errorf("cgp: record %s under %s: %w", w.Name, layout, err)
		}
		rg, err := rec.Finish()
		sp.End()
		if err != nil {
			return nil, err
		}
		if r.hooks.afterRecord != nil {
			r.hooks.afterRecord(w, layout, rg)
		}
		r.opts.Log("recorded %s/%s: %d events, %.1f MiB",
			w.Name, layout, rg.Events(), float64(rg.Bytes())/(1<<20))
		return rg, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*trace.Recording), nil
}

// evictRecordingIf drops the cached recording for (w, layout) if it
// still is rec — the one observed corrupt. The identity check keeps a
// concurrent rebuild's fresh recording from being evicted by a racer
// still failing on the old one.
func (r *Runner) evictRecordingIf(w *Workload, layout Layout, rec *trace.Recording) {
	key := recKey(w, layout)
	r.mu.Lock()
	if f, ok := r.flights[key]; ok && f.val == any(rec) {
		delete(r.flights, key)
	}
	r.mu.Unlock()
}

// replayRetry runs attempt, which replays the (w, layout) recording it
// obtains from recordingFor and returns it alongside any error. On a
// *CorruptionError the recording is evicted and rebuilt from source —
// the workload re-executes — under an exponential backoff, up to
// RetryBudget rebuilds. Other errors (including cancellation) return
// immediately.
func (r *Runner) replayRetry(ctx context.Context, w *Workload, layout Layout, attempt func(context.Context) (*trace.Recording, error)) error {
	budget := r.opts.retryBudget()
	for try := 0; ; try++ {
		rec, err := attempt(ctx)
		var ce *trace.CorruptionError
		if err == nil || !errors.As(err, &ce) || ctx.Err() != nil {
			return err
		}
		if try >= budget {
			return fmt.Errorf("cgp: %s/%s: retry budget exhausted after %d rebuilds: %w",
				w.Name, layout, try, err)
		}
		r.opts.Log("corrupt recording %s/%s: %v; rebuilding from source (retry %d/%d)",
			w.Name, layout, err, try+1, budget)
		r.obsWall().Incr("trace_rebuilds", 1)
		if rec != nil {
			r.evictRecordingIf(w, layout, rec)
		}
		sp := r.obsSpan("backoff", "retry").
			Arg("workload", w.Name).Arg("try", fmt.Sprint(try+1))
		sleepCtx(ctx, r.opts.RetryBackoff<<try)
		sp.End()
	}
}

// Run simulates one workload under one configuration. Results are
// cached by (workload, config fingerprint); concurrent calls for the
// same pair share one simulation. The context cancels the work: a
// canceled run fails with ctx's error and is not cached.
func (r *Runner) Run(ctx context.Context, w *Workload, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	v, err := r.once(ctx, runKey(w, cfg), func(ctx context.Context) (any, error) {
		return r.runCell(ctx, w, cfg)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Result), nil
}

// runCell is the uncached unit behind Run: serve the checkpoint if one
// exists, otherwise simulate and checkpoint the result.
func (r *Runner) runCell(ctx context.Context, w *Workload, cfg Config) (*Result, error) {
	if res, ok := r.loadCheckpoint(w, cfg); ok {
		r.opts.Log("checkpoint %-12s %-14s", w.Name, cfg.Label())
		r.obsWall().Incr("checkpoint_hits", 1)
		r.obsJob(obs.JobResumed, w.Name, cfg.Label(), "checkpoint")
		r.noteResult(res)
		r.emitRecord(w, cfg, res, nil)
		return res, nil
	}
	r.obsJob(obs.JobStarted, w.Name, cfg.Label(), "")
	res, err := r.simulate(ctx, w, cfg)
	if err != nil {
		return nil, err
	}
	r.storeCheckpoint(w, cfg, res)
	r.obsJob(obs.JobExecuted, w.Name, cfg.Label(), "")
	r.noteResult(res)
	return res, nil
}

// prepared is one configured simulation waiting for an event stream.
type prepared struct {
	c   *cpu.CPU
	gp  *core.CGP
	res *Result
}

// prepare builds the prefetcher and CPU for one (workload, config)
// cell.
func (r *Runner) prepare(ctx context.Context, w *Workload, cfg Config) (*prepared, error) {
	pf, gp := cfg.buildPrefetcher()
	if cfg.Prefetcher == PrefSoftwareCGP && !cfg.PerfectICache {
		// The software variant needs the profiled call sequences bound
		// to this image's addresses.
		prof, err := r.profilesFor(ctx, w)
		if err != nil {
			return nil, err
		}
		img, err := r.imageFor(ctx, w, cfg.Layout)
		if err != nil {
			return nil, err
		}
		pf = buildSoftwareCGP(cfg, prof.seq, img)
	}
	c := cpu.New(cfg.cpuConfig(), pf)
	if r.opts.Attribution {
		c.EnableAttribution()
	}
	return &prepared{
		c:   c,
		gp:  gp,
		res: &Result{Workload: w.Name, Config: cfg.Label()},
	}, nil
}

// consumerFor applies the fault-injection hook, when set, to a cell's
// CPU consumer.
func (r *Runner) consumerFor(w *Workload, cfg Config, c trace.Consumer) trace.Consumer {
	if r.hooks.wrapConsumer != nil {
		return r.hooks.wrapConsumer(w, cfg, c)
	}
	return c
}

// finalize seals the simulation's statistics into its Result.
func (p *prepared) finalize() *Result {
	p.res.CPU = p.c.Finish()
	if p.gp != nil {
		s := p.gp.Stats()
		p.res.CGPStats = &s
	}
	return p.res
}

// replayOne replays rec into a single consumer with a context poll per
// batch, so cancellation takes effect within replayBatch events.
func replayOne(ctx context.Context, rec *trace.Recording, c trace.Consumer) error {
	bc, batched := c.(trace.BatchConsumer)
	return rec.ReplayBatch(func(evs []trace.Event) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if batched {
			bc.EventBatch(evs)
		} else {
			for i := range evs {
				c.Event(evs[i])
			}
		}
		return nil
	})
}

// replaySampledOne drives rec's sampled replay into one cell: span
// boundaries and skip spans go to the CPU's sampling hooks, decoded
// events go through the (possibly hook-wrapped) consumer, and both
// decoded and skip paths poll ctx so cancellation takes effect within
// replayBatch events even across long skips.
func replaySampledOne(ctx context.Context, rec *trace.Recording, plan []trace.Span, c *cpu.CPU, wrapped trace.Consumer) error {
	bc, batched := wrapped.(trace.BatchConsumer)
	return rec.ReplaySampled(plan,
		func(kind trace.SpanKind) error {
			c.BeginSpan(kind)
			return nil
		},
		func(evs []trace.Event) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			if batched {
				bc.EventBatch(evs)
			} else {
				for i := range evs {
					wrapped.Event(evs[i])
				}
			}
			return nil
		},
		func(events int64, instrs units.Instrs) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			c.SkipSpan(events, instrs)
			return nil
		})
}

// simulateSampled performs one uncached sampled simulation. Sampling
// is replay-only — skipping events without decoding needs a sealed
// recording's skip index — so this path records the workload even
// under NoRecord; the recording is then memoized like any other.
func (r *Runner) simulateSampled(ctx context.Context, w *Workload, cfg Config) (*Result, error) {
	var res *Result
	err := r.replayRetry(ctx, w, cfg.Layout, func(ctx context.Context) (*trace.Recording, error) {
		rec, err := r.recordingFor(ctx, w, cfg.Layout)
		if err != nil {
			return nil, err
		}
		p, err := r.prepare(ctx, w, cfg)
		if err != nil {
			return rec, err
		}
		p.c.EnableSampling()
		plan := cfg.Sampling.Plan(rec.Events())
		r.opts.Log("run %-12s %-14s (sampled %s)", w.Name, cfg.Label(), cfg.Sampling)
		sp := r.obsSpan("run", "run").
			Arg("workload", w.Name).Arg("config", cfg.Label()).
			Arg("sampling", cfg.Sampling.String())
		err = replaySampledOne(ctx, rec, plan, p.c, r.consumerFor(w, cfg, p.c))
		sp.End()
		if err != nil {
			return rec, fmt.Errorf("cgp: sampled replay %s under %s: %w", w.Name, cfg.Label(), err)
		}
		p.res.Trace = rec.Stats
		res = p.finalize()
		return rec, nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// simulate performs one uncached simulation: build the prefetcher and
// CPU for cfg, then feed them w's event stream — replayed from the
// shared recording, or re-executed when NoRecord is set. A corrupt
// recording is rebuilt from source under the retry budget. Cells with
// sampling enabled take the sampled replay path.
func (r *Runner) simulate(ctx context.Context, w *Workload, cfg Config) (*Result, error) {
	if cfg.Sampling.Enabled() {
		return r.simulateSampled(ctx, w, cfg)
	}
	if r.opts.NoRecord {
		p, err := r.prepare(ctx, w, cfg)
		if err != nil {
			return nil, err
		}
		r.opts.Log("run %-12s %-14s", w.Name, cfg.Label())
		img, err := r.imageFor(ctx, w, cfg.Layout)
		if err != nil {
			return nil, err
		}
		c := r.consumerFor(w, cfg, p.c)
		sp := r.obsSpan("run", "run").
			Arg("workload", w.Name).Arg("config", cfg.Label())
		err = runWorkload(ctx, w, img, trace.Tee(&p.res.Trace, c))
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("cgp: %s under %s: %w", w.Name, cfg.Label(), err)
		}
		return p.finalize(), nil
	}
	var res *Result
	err := r.replayRetry(ctx, w, cfg.Layout, func(ctx context.Context) (*trace.Recording, error) {
		rec, err := r.recordingFor(ctx, w, cfg.Layout)
		if err != nil {
			return nil, err
		}
		p, err := r.prepare(ctx, w, cfg)
		if err != nil {
			return rec, err
		}
		r.opts.Log("run %-12s %-14s", w.Name, cfg.Label())
		sp := r.obsSpan("run", "run").
			Arg("workload", w.Name).Arg("config", cfg.Label())
		err = replayOne(ctx, rec, r.consumerFor(w, cfg, p.c))
		sp.End()
		if err != nil {
			return rec, fmt.Errorf("cgp: replay %s under %s: %w", w.Name, cfg.Label(), err)
		}
		// The recorded stats are what a Tee'd Stats consumer would have
		// counted; copying avoids recounting per replay.
		p.res.Trace = rec.Stats
		res = p.finalize()
		return rec, nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Job names one (workload, config) simulation for RunAll.
type Job struct {
	Workload *Workload
	Config   Config
}

// RunAll executes jobs with up to Workers batches in flight and
// returns results in input order regardless of completion order.
// Duplicate jobs — and cells shared with earlier figures — are
// deduplicated through the result cache, so overlapping grids never
// repeat a simulation.
//
// RunAll degrades gracefully rather than all-or-nothing: a failed or
// canceled job leaves a nil slot in the returned slice, and the error
// is a *CampaignError carrying one input-ordered *JobError per failed
// job (panic, cancellation, corruption past the retry budget, ...).
// Every other slot still holds its completed Result. A panicking
// simulation fails only its own job. With FailFast set, the first
// failure cancels the jobs that have not finished yet.
//
// In replay mode, jobs sharing a (workload, layout) recording are
// batched: their configured CPUs consume a single decode pass over the
// recording, so the decode cost is paid once per batch instead of once
// per config. Batching only changes scheduling — every consumer still
// sees the full event stream in order, so results are identical to
// running each job alone.
func (r *Runner) RunAll(ctx context.Context, jobs []Job) ([]*Result, error) {
	results := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	for _, j := range jobs {
		r.obsJob(obs.JobQueued, j.Workload.Name, j.Config.withDefaults().Label(), "")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// fail trips the campaign breaker on the first failure in FailFast
	// mode; jobs already running stop at their next cancellation poll.
	fail := func(err error) {
		if err != nil && r.opts.FailFast {
			cancel()
		}
	}
	var wg sync.WaitGroup
	if r.opts.NoRecord {
		for i := range jobs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// The semaphore is acquired before Run, never inside it,
				// so a singleflight leader always already owns a slot (or
				// needs none) and followers cannot starve it.
				select {
				case r.sem <- struct{}{}:
				case <-ctx.Done():
					errs[i] = ctx.Err()
					return
				}
				defer func() { <-r.sem }()
				results[i], errs[i] = r.Run(ctx, jobs[i].Workload, jobs[i].Config)
				fail(errs[i])
			}(i)
		}
		wg.Wait()
	} else {
		for _, g := range groupJobs(jobs) {
			wg.Add(1)
			// runGroup acquires a worker slot itself, only around the
			// drain phase: claiming and waiting hold no slot.
			go func(g *jobGroup) {
				defer wg.Done()
				r.runGroup(ctx, g, results, errs, fail)
			}(g)
		}
		wg.Wait()
	}
	var failed []*JobError
	for i, err := range errs {
		if err != nil {
			results[i] = nil
			r.obsJob(obs.JobFailed, jobs[i].Workload.Name,
				jobs[i].Config.withDefaults().Label(), err.Error())
			failed = append(failed, jobError(jobs[i], i, err))
		}
	}
	if len(failed) == 0 {
		return results, nil
	}
	return results, &CampaignError{Jobs: failed}
}

// jobGroup collects the jobs of one RunAll call that replay the same
// (workload, layout) recording.
type jobGroup struct {
	w      *Workload
	hubKey string
	keys   []string          // unique run cache keys, input order
	cfgs   map[string]Config // run key -> config (defaults applied)
	idx    map[string][]int  // run key -> job indices
}

func groupJobs(jobs []Job) []*jobGroup {
	order := []*jobGroup{}
	groups := map[string]*jobGroup{}
	for i, j := range jobs {
		cfg := j.Config.withDefaults()
		gk := recKey(j.Workload, cfg.Layout)
		g := groups[gk]
		if g == nil {
			g = &jobGroup{w: j.Workload, hubKey: gk, cfgs: map[string]Config{}, idx: map[string][]int{}}
			groups[gk] = g
			order = append(order, g)
		}
		rk := runKey(j.Workload, cfg)
		if _, ok := g.cfgs[rk]; !ok {
			g.keys = append(g.keys, rk)
			g.cfgs[rk] = cfg
		}
		g.idx[rk] = append(g.idx[rk], i)
	}
	return order
}

// replayHub coalesces claimed cells that consume one recording. Group
// tasks enqueue their cells before taking a worker slot, so whichever
// task drains first serves every pending cell of the recording in one
// wide replay pass — concurrent figure generators' grids merge into a
// few decode passes instead of one per figure. Coalescing only affects
// scheduling: each cell's CPU always consumes the full event stream,
// so results are identical however cells are batched.
type replayHub struct {
	mu      sync.Mutex
	active  bool
	pending []hubCell
}

// hubCell is one claimed, unsimulated cell: its config, its run cache
// key (for transient eviction) and the flight the drainer must
// resolve.
type hubCell struct {
	cfg Config
	key string
	f   *flight
}

func (r *Runner) hubFor(key string) *replayHub {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hubs[key]
	if h == nil {
		h = &replayHub{}
		r.hubs[key] = h
	}
	return h
}

// withdraw removes from the pending queue every cell whose flight is
// in set, invoking fail for each. Cells a drainer already grabbed are
// left to that drainer.
func (h *replayHub) withdraw(set []hubCell, fail func(hubCell)) {
	if len(set) == 0 {
		return
	}
	member := make(map[*flight]bool, len(set))
	for _, c := range set {
		member[c.f] = true
	}
	var taken []hubCell
	h.mu.Lock()
	kept := h.pending[:0]
	for _, c := range h.pending {
		if member[c.f] {
			taken = append(taken, c)
		} else {
			kept = append(kept, c)
		}
	}
	h.pending = kept
	h.mu.Unlock()
	for _, c := range taken {
		fail(c)
	}
}

// resolveCell resolves one hub cell, evicting its flight when the
// failure is transient so a later campaign can retry the key.
func (r *Runner) resolveCell(c hubCell, res *Result, err error) {
	if err != nil {
		c.f.resolve(nil, err)
		if isTransient(err) {
			r.evict(c.key, c.f)
		}
		return
	}
	c.f.resolve(res, nil)
}

// runGroup claims the group's uncomputed cells, enqueues them on the
// recording's hub, competes to drain it, then collects results
// (including cells another goroutine computed) into the RunAll output
// slots. Claiming and enqueueing happen before the worker slot is
// acquired — they do no simulation work — so even a single-worker pool
// sees every concurrent figure's cells before the first drain begins.
func (r *Runner) runGroup(ctx context.Context, g *jobGroup, results []*Result, errs []error, fail func(error)) {
	type cellRef struct {
		key   string
		f     *flight
		owner bool
	}
	cells := make([]cellRef, 0, len(g.keys))
	var enq []hubCell
	for _, rk := range g.keys {
		f, owner := r.claim(rk)
		cells = append(cells, cellRef{rk, f, owner})
		if owner {
			enq = append(enq, hubCell{g.cfgs[rk], rk, f})
		}
	}
	h := r.hubFor(g.hubKey)
	if len(enq) > 0 {
		h.mu.Lock()
		h.pending = append(h.pending, enq...)
		h.mu.Unlock()
	}
	select {
	case r.sem <- struct{}{}:
		r.pump(ctx, g.w, h)
		<-r.sem //cgplint:ignore ctxflow held worker token guarantees a free slot, the release cannot block
	case <-ctx.Done():
		// Canceled before a worker slot freed up. Withdraw our still-
		// pending cells so their flights don't dangle unresolved; cells
		// an active drainer already took will be resolved by it.
		h.withdraw(enq, func(c hubCell) { r.resolveCell(c, nil, ctx.Err()) })
	}
	for _, c := range cells {
		v, err := c.f.wait(ctx)
		if err != nil && isCancellation(err) && ctx.Err() == nil {
			// The cell was aborted by another campaign's cancellation
			// (hubs are shared across concurrent RunAll calls). The
			// entry was evicted as transient, so recompute it under
			// this campaign's live context.
			select {
			case r.sem <- struct{}{}:
				res, rerr := r.Run(ctx, g.w, g.cfgs[c.key])
				<-r.sem //cgplint:ignore ctxflow held worker token guarantees a free slot, the release cannot block
				if rerr != nil {
					v, err = nil, rerr
				} else {
					v, err = res, nil
				}
			case <-ctx.Done():
				v, err = nil, ctx.Err()
			}
		}
		if err == nil && !c.owner {
			// The cell was claimed by another campaign or group task and
			// served to this one through the singleflight cache.
			r.obsJob(obs.JobReplayed, g.w.Name, g.cfgs[c.key].Label(), "coalesced")
		}
		for _, i := range g.idx[c.key] {
			if err != nil {
				errs[i] = err
			} else {
				results[i] = v.(*Result)
			}
		}
		fail(err)
	}
}

// pump drains h: while cells are pending and no other drainer is
// active, grab them all and simulate them in one shared replay pass.
// Cells enqueued during a pass are picked up by the next loop
// iteration; if another drainer is active it will do the same, so
// every enqueued cell is eventually simulated.
func (r *Runner) pump(ctx context.Context, w *Workload, h *replayHub) {
	for {
		h.mu.Lock()
		if h.active || len(h.pending) == 0 {
			h.mu.Unlock()
			return
		}
		batch := h.pending
		h.pending = nil
		h.active = true
		h.mu.Unlock()
		r.runBatchGuarded(ctx, w, batch)
		h.mu.Lock()
		h.active = false
		h.mu.Unlock()
	}
}

// runBatchGuarded is runBatch behind a panic guard: a panic escaping
// the batch machinery itself (not a consumer — those are recovered
// per-cell) fails the whole batch as JobErrors instead of killing the
// drainer goroutine and deadlocking every waiter. Resolution is
// idempotent, so cells runBatch already resolved keep their results.
func (r *Runner) runBatchGuarded(ctx context.Context, w *Workload, batch []hubCell) {
	defer func() {
		if p := recover(); p != nil {
			je := &JobError{Workload: w.Name, Index: -1, Panic: p, Stack: debug.Stack()}
			for _, c := range batch {
				r.resolveCell(c, nil, je)
			}
		}
	}()
	r.runBatch(ctx, w, batch)
}

// batchCell pairs one hub cell with its configured simulation and
// per-consumer failure state during a shared replay pass.
type batchCell struct {
	cell hubCell
	sim  *prepared
	c    trace.Consumer      // possibly hook-wrapped
	bc   trace.BatchConsumer // batch fast path when supported
	err  *JobError           // set once the consumer panicked; no more events
}

// deliver hands one decoded batch to the cell's consumer, converting a
// panic into the cell's JobError. Only this cell stops consuming — the
// hub keeps serving its batch mates.
func (b *batchCell) deliver(evs []trace.Event) {
	defer func() {
		if p := recover(); p != nil {
			b.err = &JobError{Index: -1, Panic: p, Stack: debug.Stack()}
		}
	}()
	if b.bc != nil {
		b.bc.EventBatch(evs)
	} else {
		for i := range evs {
			b.c.Event(evs[i])
		}
	}
}

// errNoLiveCells aborts a shared replay pass whose consumers have all
// panicked: decoding the rest of the stream would feed no one.
var errNoLiveCells = errors.New("cgp: every consumer of the replay pass failed")

// fanout performs one shared decode pass over rec, dispatching each
// batch to every live cell with a context poll per batch. A panic in
// one cell marks only that cell failed; the stream keeps flowing to
// the others. The returned error is stream-level (corruption,
// cancellation) — per-cell panics are reported in each cell's err.
func fanout(ctx context.Context, rec *trace.Recording, cells []*batchCell) error {
	err := rec.ReplayBatch(func(evs []trace.Event) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		live := 0
		for _, b := range cells {
			if b.err != nil {
				continue
			}
			b.deliver(evs)
			if b.err == nil {
				live++
			}
		}
		if live == 0 {
			return errNoLiveCells
		}
		return nil
	})
	if errors.Is(err, errNoLiveCells) {
		return nil
	}
	return err
}

// runBatch simulates a set of configs of one (workload, layout) pair
// against a single decode pass of the shared recording, resolving each
// cell's flight with its Result or failure. Cells with a valid
// checkpoint are served from disk without simulating; a corrupt
// recording is rebuilt from source (fresh CPUs, full re-replay) under
// the retry budget; a panicking consumer fails only its own cell.
func (r *Runner) runBatch(ctx context.Context, w *Workload, batch []hubCell) {
	todo := make([]hubCell, 0, len(batch))
	for _, c := range batch {
		if c.cfg.Sampling.Enabled() {
			// Sampled cells use the sampled replay, not the shared
			// detailed decode pass — and they are cheap enough (the
			// point of sampling) that running them sequentially inside
			// the drain costs little. runCell gives them the same
			// checkpoint, observability and panic treatment as any
			// other cell.
			v, err := guarded(ctx, func(ctx context.Context) (any, error) {
				return r.runCell(ctx, w, c.cfg)
			})
			if err != nil {
				if je := (*JobError)(nil); errors.As(err, &je) && je.Workload == "" {
					je.Workload, je.Config = w.Name, c.cfg.Label()
				}
				r.resolveCell(c, nil, err)
				continue
			}
			r.resolveCell(c, v.(*Result), nil)
			continue
		}
		if res, ok := r.loadCheckpoint(w, c.cfg); ok {
			r.opts.Log("checkpoint %-12s %-14s", w.Name, c.cfg.Label())
			r.obsWall().Incr("checkpoint_hits", 1)
			r.obsJob(obs.JobResumed, w.Name, c.cfg.Label(), "checkpoint")
			r.noteResult(res)
			r.emitRecord(w, c.cfg, res, nil)
			c.f.resolve(res, nil)
			continue
		}
		todo = append(todo, c)
	}
	if len(todo) == 0 {
		return
	}
	layout := todo[0].cfg.Layout
	err := r.replayRetry(ctx, w, layout, func(ctx context.Context) (*trace.Recording, error) {
		rec, err := r.recordingFor(ctx, w, layout)
		if err != nil {
			return nil, err
		}
		// Check integrity before building CPUs: a corrupt recording
		// retries with no per-cell state to unwind.
		vsp := r.obsSpan("verify", "verify").Arg("workload", w.Name)
		err = rec.Verify()
		vsp.End()
		if err != nil {
			return rec, err
		}
		cells := make([]*batchCell, 0, len(todo))
		left := todo[:0]
		for _, c := range todo {
			p, perr := r.prepare(ctx, w, c.cfg)
			if perr != nil {
				// Deterministic per-cell failure: resolve now and drop
				// the cell from any later retry round.
				r.resolveCell(c, nil, perr)
				continue
			}
			r.opts.Log("run %-12s %-14s", w.Name, c.cfg.Label())
			r.obsJob(obs.JobStarted, w.Name, c.cfg.Label(), "")
			cc := r.consumerFor(w, c.cfg, p.c)
			bc, _ := cc.(trace.BatchConsumer)
			cells = append(cells, &batchCell{cell: c, sim: p, c: cc, bc: bc})
			left = append(left, c)
		}
		todo = left
		if len(cells) == 0 {
			return rec, nil
		}
		rsp := r.obsSpan("replay", "replay").
			Arg("workload", w.Name).
			Arg("layout", layout.String()).
			Arg("cells", fmt.Sprint(len(cells)))
		err = fanout(ctx, rec, cells)
		rsp.End()
		if err != nil {
			return rec, err
		}
		for _, b := range cells {
			if b.err != nil {
				b.err.Workload, b.err.Config = w.Name, b.cell.cfg.Label()
				r.resolveCell(b.cell, nil, b.err)
				continue
			}
			b.sim.res.Trace = rec.Stats
			res := b.sim.finalize()
			r.storeCheckpoint(w, b.cell.cfg, res)
			r.obsJob(obs.JobExecuted, w.Name, b.cell.cfg.Label(), "")
			r.noteResult(res)
			r.resolveCell(b.cell, res, nil)
		}
		todo = nil
		return rec, nil
	})
	if err == nil {
		return
	}
	// Stream-level failure (recording error, cancellation, exhausted
	// retry budget): every still-unresolved cell fails with it.
	for _, c := range todo {
		r.resolveCell(c, nil, err)
	}
}

// buildSoftwareCGP binds a profiled sequence table to an image's
// addresses and returns the §6 software prefetcher.
func buildSoftwareCGP(cfg Config, seq *trace.SequenceProfile, img *program.Image) *core.Software {
	table := make(map[isa.Addr][]isa.Addr, seq.Len())
	for _, fn := range seq.Functions() {
		callees := seq.Sequence(fn)
		addrs := make([]isa.Addr, len(callees))
		for i, c := range callees {
			addrs[i] = img.Start(c)
		}
		table[img.Start(fn)] = addrs
	}
	return core.NewSoftware(cfg.Degree, table)
}
