package cgp

import (
	"fmt"
	"runtime"
	"sync"

	"cgp/internal/core"
	"cgp/internal/cpu"
	"cgp/internal/isa"
	"cgp/internal/program"
	"cgp/internal/trace"
	"cgp/internal/workload"
)

// Workload re-exports the workload type for the public API.
type Workload = workload.Workload

// DBOptions re-exports database workload sizing.
type DBOptions = workload.DBOptions

// The paper's four database workloads (§4.1).
var (
	WiscProf   = workload.WiscProf
	WiscLarge1 = workload.WiscLarge1
	WiscLarge2 = workload.WiscLarge2
	WiscTPCH   = workload.WiscTPCH
)

// CPU2000 builds the named synthetic SPEC stand-in (gzip, gcc, crafty,
// parser, gap, bzip2, twolf).
func CPU2000(name string, seed int64) (*Workload, error) {
	spec, err := workload.CPU2000ByName(name)
	if err != nil {
		return nil, err
	}
	return workload.NewCPU2000(spec, seed), nil
}

// Result is everything one simulation run measured.
type Result struct {
	Workload string
	Config   string

	// CPU carries the full simulator statistics.
	CPU *cpu.Stats
	// Trace carries the trace-level statistics (instructions, calls,
	// instructions-per-call, ...).
	Trace trace.Stats
	// CGPStats is set when the configuration used CGP.
	CGPStats *core.Stats
}

// Cycles is shorthand for CPU.Cycles.
func (r *Result) Cycles() int64 { return int64(r.CPU.Cycles) }

// ICacheMisses is shorthand for CPU.ICacheMisses.
func (r *Result) ICacheMisses() int64 { return r.CPU.ICacheMisses }

// RunnerOptions configures the experiment harness.
type RunnerOptions struct {
	// DB sizes the database workloads.
	DB DBOptions
	// Seed drives the CPU2000 generators.
	Seed int64
	// Verbose enables progress lines on stderr.
	Verbose bool
	// Log receives progress lines when Verbose (defaults to a no-op).
	// It may be called from multiple goroutines concurrently.
	Log func(format string, args ...any)
	// Workers caps the number of simulations RunAll keeps in flight.
	// 0 means GOMAXPROCS; 1 forces sequential execution.
	Workers int
	// NoRecord disables trace record/replay: every Run re-executes the
	// workload (engine build, data load, query execution) instead of
	// replaying a captured event stream. Slower when several configs
	// share a (workload, layout), but holds no trace memory. Used by
	// one-shot CLI runs and by benchmarks isolating the replay layer.
	NoRecord bool
}

// profiles bundles the two feedback artifacts a profile run produces:
// edge weights (for the OM layout) and modal call sequences (for the
// software-CGP variant).
type profiles struct {
	edges *program.Profile
	seq   *trace.SequenceProfile
}

// Runner executes (workload, config) pairs, caching profiles, laid-out
// images, recorded traces and run results so the figure generators can
// share work.
//
// All methods are safe for concurrent use. Every cacheable unit of
// work is memoized singleflight-style: the first goroutine to request
// a key performs the work while later requesters block and share the
// result, so concurrent figure generators never record the same trace
// or collect the same profile twice.
type Runner struct {
	opts RunnerOptions
	// sem bounds the number of concurrently executing simulations
	// across every RunAll call sharing this runner.
	sem chan struct{}

	mu      sync.Mutex
	flights map[string]*flight
	hubs    map[string]*replayHub
}

// flight memoizes one unit of keyed work (a run, a trace recording, an
// image layout or a profile collection). Completed flights double as
// the result cache.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Cache-key namespaces. The work graph is acyclic: runs depend on
// recordings, recordings on images, OM images on profiles, profiles on
// O5 recordings — so nested once() calls cannot deadlock.
const dbProfilesKey = "prof|db"

func runKey(w *Workload, cfg Config) string { return "run|" + w.Name + "|" + cfg.fingerprint() }
func recKey(w *Workload, l Layout) string   { return fmt.Sprintf("rec|%s|%d", w.Name, l) }
func imgKey(w *Workload, l Layout) string   { return fmt.Sprintf("img|%s|%d", w.Name, l) }

func profKey(w *Workload) string {
	if w.Family == "db" {
		return dbProfilesKey
	}
	return "prof|" + w.Name
}

// NewRunner builds a harness.
func NewRunner(opts RunnerOptions) *Runner {
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	if opts.Log == nil {
		opts.Log = func(string, ...any) {}
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		opts:    opts,
		sem:     make(chan struct{}, opts.Workers),
		flights: make(map[string]*flight),
		hubs:    make(map[string]*replayHub),
	}
}

// claim returns the flight for key and whether the caller became its
// owner. An owner must resolve the flight exactly once; everyone else
// waits on it.
func (r *Runner) claim(key string) (*flight, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.flights[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	r.flights[key] = f
	return f, true
}

func (f *flight) resolve(val any, err error) {
	f.val, f.err = val, err
	close(f.done)
}

func (f *flight) wait() (any, error) {
	<-f.done
	return f.val, f.err
}

// once returns the memoized result of the work keyed by key, computing
// it via fn on first use. Concurrent requests for the same key share
// one computation (and its error, if any).
func (r *Runner) once(key string, fn func() (any, error)) (any, error) {
	f, owner := r.claim(key)
	if owner {
		f.resolve(fn())
	}
	return f.wait()
}

// seed installs a precomputed value for key (used to share profiles
// with sub-runners); it is a no-op if the key is already present.
func (r *Runner) seed(key string, val any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.flights[key]; ok {
		return
	}
	f := &flight{done: make(chan struct{}), val: val}
	close(f.done)
	r.flights[key] = f
}

// DBWorkloads returns the paper's four database workloads at the
// runner's scale.
func (r *Runner) DBWorkloads() []*Workload {
	return workload.DBWorkloads(r.opts.DB)
}

// CPU2000Workloads returns the seven Figure-10 programs.
func (r *Runner) CPU2000Workloads() []*Workload {
	return workload.CPU2000Workloads(r.opts.Seed)
}

// profilesFor returns (collecting on first use) the feedback artifacts
// a profile run produces. Database workloads share one profile, merged
// from wisc-prof and wisc+tpch runs exactly as §5.1 describes; each
// CPU2000 program profiles itself (the paper uses the SPEC "test"
// input).
func (r *Runner) profilesFor(w *Workload) (*profiles, error) {
	v, err := r.once(profKey(w), func() (any, error) {
		if w.Family == "db" {
			r.opts.Log("collecting DB profile (wisc-prof + wisc+tpch)")
			merged := &profiles{edges: program.NewProfile(), seq: trace.NewSequenceProfile(0)}
			for _, pw := range []*Workload{workload.WiscProf(r.opts.DB), workload.WiscTPCH(r.opts.DB)} {
				p, err := r.collectProfiles(pw)
				if err != nil {
					return nil, fmt.Errorf("profile run %s: %w", pw.Name, err)
				}
				merged.edges.Merge(p.edges)
				mergeSequences(merged.seq, p.seq)
			}
			return merged, nil
		}
		r.opts.Log("collecting profile for %s", w.Name)
		return r.collectProfiles(w)
	})
	if err != nil {
		return nil, err
	}
	return v.(*profiles), nil
}

// profileFor returns just the edge-weight profile (OM layout input).
func (r *Runner) profileFor(w *Workload) (*program.Profile, error) {
	p, err := r.profilesFor(w)
	if err != nil {
		return nil, err
	}
	return p.edges, nil
}

// collectProfiles gathers w's feedback artifacts from its O5 event
// stream. The stream comes from the shared recording, so a workload
// that is both profiled and simulated on O5 executes exactly once.
func (r *Runner) collectProfiles(w *Workload) (*profiles, error) {
	pc := trace.NewProfileCollector()
	sc := trace.NewSequenceCollector(0)
	if r.opts.NoRecord {
		img, err := r.imageFor(w, LayoutO5)
		if err != nil {
			return nil, err
		}
		if err := w.Run(img, trace.Tee(pc, sc)); err != nil {
			return nil, err
		}
	} else {
		rec, err := r.recordingFor(w, LayoutO5)
		if err != nil {
			return nil, err
		}
		if err := rec.Replay(trace.Tee(pc, sc)); err != nil {
			return nil, err
		}
	}
	return &profiles{edges: pc.Profile, seq: sc.Profile}, nil
}

// mergeSequences folds src's recorded call positions into dst.
func mergeSequences(dst, src *trace.SequenceProfile) {
	for _, fn := range src.Functions() {
		for slot, callee := range src.Sequence(fn) {
			dst.Record(fn, slot, callee)
		}
	}
}

// imageFor lays out w's registry once per layout. Registries are
// deterministic and images are immutable after layout, so every
// consumer of a (workload, layout) pair shares one image.
func (r *Runner) imageFor(w *Workload, layout Layout) (*program.Image, error) {
	v, err := r.once(imgKey(w, layout), func() (any, error) {
		reg := w.NewRegistry()
		switch layout {
		case LayoutO5:
			return program.LayoutO5(reg), nil
		case LayoutOM:
			prof, err := r.profileFor(w)
			if err != nil {
				return nil, err
			}
			return program.LayoutOM(reg, prof), nil
		default:
			return nil, fmt.Errorf("cgp: unknown layout %d", layout)
		}
	})
	if err != nil {
		return nil, err
	}
	return v.(*program.Image), nil
}

// recordingFor captures w's event stream on the given layout once and
// memoizes the sealed recording. The stream for a (workload, layout)
// pair is deterministic and independent of the CPU configuration, so
// every config replays the same buffer instead of re-executing the
// workload. The recording lives for the life of the Runner; its
// encoded size is reported through Log.
func (r *Runner) recordingFor(w *Workload, layout Layout) (*trace.Recording, error) {
	v, err := r.once(recKey(w, layout), func() (any, error) {
		img, err := r.imageFor(w, layout)
		if err != nil {
			return nil, err
		}
		rec := trace.NewRecorder()
		r.opts.Log("record %-12s %s", w.Name, layout)
		if err := w.Run(img, rec); err != nil {
			return nil, fmt.Errorf("cgp: record %s under %s: %w", w.Name, layout, err)
		}
		rg, err := rec.Finish()
		if err != nil {
			return nil, err
		}
		r.opts.Log("recorded %s/%s: %d events, %.1f MiB",
			w.Name, layout, rg.Events(), float64(rg.Bytes())/(1<<20))
		return rg, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*trace.Recording), nil
}

// Run simulates one workload under one configuration. Results are
// cached by (workload, config fingerprint); concurrent calls for the
// same pair share one simulation.
func (r *Runner) Run(w *Workload, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	v, err := r.once(runKey(w, cfg), func() (any, error) { return r.simulate(w, cfg) })
	if err != nil {
		return nil, err
	}
	return v.(*Result), nil
}

// prepared is one configured simulation waiting for an event stream.
type prepared struct {
	c   *cpu.CPU
	gp  *core.CGP
	res *Result
}

// prepare builds the prefetcher and CPU for one (workload, config)
// cell.
func (r *Runner) prepare(w *Workload, cfg Config) (*prepared, error) {
	pf, gp := cfg.buildPrefetcher()
	if cfg.Prefetcher == PrefSoftwareCGP && !cfg.PerfectICache {
		// The software variant needs the profiled call sequences bound
		// to this image's addresses.
		prof, err := r.profilesFor(w)
		if err != nil {
			return nil, err
		}
		img, err := r.imageFor(w, cfg.Layout)
		if err != nil {
			return nil, err
		}
		pf = buildSoftwareCGP(cfg, prof.seq, img)
	}
	return &prepared{
		c:   cpu.New(cfg.cpuConfig(), pf),
		gp:  gp,
		res: &Result{Workload: w.Name, Config: cfg.Label()},
	}, nil
}

// finalize seals the simulation's statistics into its Result.
func (p *prepared) finalize() *Result {
	p.res.CPU = p.c.Finish()
	if p.gp != nil {
		s := p.gp.Stats()
		p.res.CGPStats = &s
	}
	return p.res
}

// simulate performs one uncached simulation: build the prefetcher and
// CPU for cfg, then feed them w's event stream — replayed from the
// shared recording, or re-executed when NoRecord is set.
func (r *Runner) simulate(w *Workload, cfg Config) (*Result, error) {
	p, err := r.prepare(w, cfg)
	if err != nil {
		return nil, err
	}
	r.opts.Log("run %-12s %-14s", w.Name, cfg.Label())

	if r.opts.NoRecord {
		img, err := r.imageFor(w, cfg.Layout)
		if err != nil {
			return nil, err
		}
		if err := w.Run(img, trace.Tee(&p.res.Trace, p.c)); err != nil {
			return nil, fmt.Errorf("cgp: %s under %s: %w", w.Name, cfg.Label(), err)
		}
	} else {
		rec, err := r.recordingFor(w, cfg.Layout)
		if err != nil {
			return nil, err
		}
		if err := rec.Replay(p.c); err != nil {
			return nil, fmt.Errorf("cgp: replay %s under %s: %w", w.Name, cfg.Label(), err)
		}
		// The recorded stats are what a Tee'd Stats consumer would have
		// counted; copying avoids recounting per replay.
		p.res.Trace = rec.Stats
	}
	return p.finalize(), nil
}

// Job names one (workload, config) simulation for RunAll.
type Job struct {
	Workload *Workload
	Config   Config
}

// RunAll executes jobs with up to Workers batches in flight and
// returns results in input order regardless of completion order.
// Duplicate jobs — and cells shared with earlier figures — are
// deduplicated through the result cache, so overlapping grids never
// repeat a simulation. The first error in input order is returned.
//
// In replay mode, jobs sharing a (workload, layout) recording are
// batched: their configured CPUs consume a single decode pass over the
// recording (trace.Recording.ReplayAll), so the decode cost is paid
// once per batch instead of once per config. Batching only changes
// scheduling — every consumer still sees the full event stream in
// order, so results are identical to running each job alone.
func (r *Runner) RunAll(jobs []Job) ([]*Result, error) {
	results := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	if r.opts.NoRecord {
		for i := range jobs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// The semaphore is acquired before Run, never inside it,
				// so a singleflight leader always already owns a slot (or
				// needs none) and followers cannot starve it.
				r.sem <- struct{}{}
				defer func() { <-r.sem }()
				results[i], errs[i] = r.Run(jobs[i].Workload, jobs[i].Config)
			}(i)
		}
		wg.Wait()
	} else {
		for _, g := range groupJobs(jobs) {
			wg.Add(1)
			// runGroup acquires a worker slot itself, only around the
			// drain phase: claiming and waiting hold no slot.
			go func(g *jobGroup) {
				defer wg.Done()
				r.runGroup(g, results, errs)
			}(g)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// jobGroup collects the jobs of one RunAll call that replay the same
// (workload, layout) recording.
type jobGroup struct {
	w      *Workload
	hubKey string
	keys   []string          // unique run cache keys, input order
	cfgs   map[string]Config // run key -> config (defaults applied)
	idx    map[string][]int  // run key -> job indices
}

func groupJobs(jobs []Job) []*jobGroup {
	order := []*jobGroup{}
	groups := map[string]*jobGroup{}
	for i, j := range jobs {
		cfg := j.Config.withDefaults()
		gk := recKey(j.Workload, cfg.Layout)
		g := groups[gk]
		if g == nil {
			g = &jobGroup{w: j.Workload, hubKey: gk, cfgs: map[string]Config{}, idx: map[string][]int{}}
			groups[gk] = g
			order = append(order, g)
		}
		rk := runKey(j.Workload, cfg)
		if _, ok := g.cfgs[rk]; !ok {
			g.keys = append(g.keys, rk)
			g.cfgs[rk] = cfg
		}
		g.idx[rk] = append(g.idx[rk], i)
	}
	return order
}

// replayHub coalesces claimed cells that consume one recording. Group
// tasks enqueue their cells before taking a worker slot, so whichever
// task drains first serves every pending cell of the recording in one
// wide replay pass — concurrent figure generators' grids merge into a
// few decode passes instead of one per figure. Coalescing only affects
// scheduling: each cell's CPU always consumes the full event stream,
// so results are identical however cells are batched.
type replayHub struct {
	mu      sync.Mutex
	active  bool
	pending []hubCell
}

// hubCell is one claimed, unsimulated cell: its config and the flight
// the drainer must resolve.
type hubCell struct {
	cfg Config
	f   *flight
}

func (r *Runner) hubFor(key string) *replayHub {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hubs[key]
	if h == nil {
		h = &replayHub{}
		r.hubs[key] = h
	}
	return h
}

// runGroup claims the group's uncomputed cells, enqueues them on the
// recording's hub, competes to drain it, then collects results
// (including cells another goroutine computed) into the RunAll output
// slots. Claiming and enqueueing happen before the worker slot is
// acquired — they do no simulation work — so even a single-worker pool
// sees every concurrent figure's cells before the first drain begins.
func (r *Runner) runGroup(g *jobGroup, results []*Result, errs []error) {
	type cellRef struct {
		key string
		f   *flight
	}
	cells := make([]cellRef, 0, len(g.keys))
	var enq []hubCell
	for _, rk := range g.keys {
		f, owner := r.claim(rk)
		cells = append(cells, cellRef{rk, f})
		if owner {
			enq = append(enq, hubCell{g.cfgs[rk], f})
		}
	}
	h := r.hubFor(g.hubKey)
	if len(enq) > 0 {
		h.mu.Lock()
		h.pending = append(h.pending, enq...)
		h.mu.Unlock()
	}
	r.sem <- struct{}{}
	r.pump(g.w, h)
	<-r.sem
	for _, c := range cells {
		v, err := c.f.wait()
		for _, i := range g.idx[c.key] {
			if err != nil {
				errs[i] = err
			} else {
				results[i] = v.(*Result)
			}
		}
	}
}

// pump drains h: while cells are pending and no other drainer is
// active, grab them all and simulate them in one shared replay pass.
// Cells enqueued during a pass are picked up by the next loop
// iteration; if another drainer is active it will do the same, so
// every enqueued cell is eventually simulated.
func (r *Runner) pump(w *Workload, h *replayHub) {
	for {
		h.mu.Lock()
		if h.active || len(h.pending) == 0 {
			h.mu.Unlock()
			return
		}
		batch := h.pending
		h.pending = nil
		h.active = true
		h.mu.Unlock()
		r.runBatch(w, batch)
		h.mu.Lock()
		h.active = false
		h.mu.Unlock()
	}
}

// runBatch simulates a set of configs of one (workload, layout) pair
// against a single decode pass of the shared recording, resolving each
// cell's flight with its Result.
func (r *Runner) runBatch(w *Workload, batch []hubCell) {
	rec, err := r.recordingFor(w, batch[0].cfg.Layout)
	if err != nil {
		for _, c := range batch {
			c.f.resolve(nil, err)
		}
		return
	}
	sims := make([]*prepared, 0, len(batch))
	live := make([]hubCell, 0, len(batch))
	for _, c := range batch {
		p, err := r.prepare(w, c.cfg)
		if err != nil {
			c.f.resolve(nil, err)
			continue
		}
		r.opts.Log("run %-12s %-14s", w.Name, c.cfg.Label())
		sims = append(sims, p)
		live = append(live, c)
	}
	if len(live) == 0 {
		return
	}
	cs := make([]trace.Consumer, len(sims))
	for i, p := range sims {
		cs[i] = p.c
	}
	if err := rec.ReplayAll(cs...); err != nil {
		err = fmt.Errorf("cgp: replay %s: %w", w.Name, err)
		for _, c := range live {
			c.f.resolve(nil, err)
		}
		return
	}
	for i, c := range live {
		sims[i].res.Trace = rec.Stats
		c.f.resolve(sims[i].finalize(), nil)
	}
}

// buildSoftwareCGP binds a profiled sequence table to an image's
// addresses and returns the §6 software prefetcher.
func buildSoftwareCGP(cfg Config, seq *trace.SequenceProfile, img *program.Image) *core.Software {
	table := make(map[isa.Addr][]isa.Addr, seq.Len())
	for _, fn := range seq.Functions() {
		callees := seq.Sequence(fn)
		addrs := make([]isa.Addr, len(callees))
		for i, c := range callees {
			addrs[i] = img.Start(c)
		}
		table[img.Start(fn)] = addrs
	}
	return core.NewSoftware(cfg.Degree, table)
}
