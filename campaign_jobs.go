package cgp

import "fmt"

// Campaign cell enumeration (DESIGN.md §15).
//
// A distributed campaign needs the full set of (workload, config)
// cells the figure generators will request, enumerated up front so a
// coordinator can partition them across worker processes. The figure
// generators themselves stay the source of truth for what each figure
// renders; this file shares their config lists (fig4Configs,
// ablWaysConfigs, ...) so the enumeration cannot drift from the grids.
// The merge step closes the loop: it runs the ordinary generators over
// a checkpoint directory populated from the enumerated cells, so a
// cell missing here is recomputed in-process — merge output is correct
// either way, distribution is purely a wall-clock optimization.

// CampaignCell is one enumerated cell of the figure campaign: a
// workload under a config on behalf of a figure. Quantum, when
// nonzero, marks an abl-quantum cell instead: it runs on a sub-runner
// whose DB options override the scheduler quantum (see RunQuantumCell)
// and its Workload/Config describe that sub-scope's single cell.
type CampaignCell struct {
	Figure   string
	Workload string
	Config   Config
	Quantum  int
}

// Key identifies the cell for deduplication and coordinator
// bookkeeping: the run cache key, extended with the quantum for
// sub-scope cells (whose run keys alone collide across quanta — the
// quantum lives in the sub-runner's scope, not the config).
func (c CampaignCell) Key() string {
	k := CellKey(c.Workload, c.Config)
	if c.Quantum != 0 {
		k += fmt.Sprintf("|q%d", c.Quantum)
	}
	return k
}

// CellKey returns the run cache key for a (workload name, config)
// pair — the key checkpoint records embed. Exported for the campaign
// coordinator, which tracks streamed records by this key.
func CellKey(workloadName string, cfg Config) string {
	return "run|" + workloadName + "|" + cfg.fingerprint()
}

// WorkloadByName resolves one of the campaign's workloads at this
// runner's scale: the four database workloads, the seven CPU2000
// stand-ins, or (when a capture is configured) the "captured" live
// traffic. Campaign workers use it to reify wire-format job specs,
// which carry workload names, back into runnable jobs.
func (r *Runner) WorkloadByName(name string) (*Workload, error) {
	for _, w := range r.DBWorkloads() {
		if w.Name == name {
			return w, nil
		}
	}
	for _, w := range r.CPU2000Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	if name == "captured" && r.opts.CapturePath != "" {
		return r.CapturedWorkload()
	}
	return nil, fmt.Errorf("cgp: unknown workload %q", name)
}

// CampaignCells enumerates every cell AllFigures and ExtensionFigures
// will request, figure by figure in paper order, with the campaign's
// sampling schedule applied exactly as runGridLabeled applies it (a
// figure in the sampled set gets the schedule folded into each cell's
// config, so its cells' fingerprints — and checkpoint keys — match
// what the generator will look up). Cells shared between figures
// appear once per figure; callers deduplicate by Key after filtering
// to the figures they want, because a cell's first-owning figure is a
// presentation detail, not an identity.
func (r *Runner) CampaignCells() []CampaignCell {
	db := r.DBWorkloads()
	grids := []struct {
		id        string
		workloads []*Workload
		configs   []Config
	}{
		{"fig4", db, fig4Configs()},
		{"fig5", db, fig5Configs()},
		{"fig6", db, fig6Configs()},
		{"fig7", db, fig7Configs()},
		{"fig8", db, fig8Configs()},
		{"fig9", db, []Config{fig9Config()}},
		{"fig10", r.CPU2000Workloads(), fig10Configs()},
		{"sec5.6", db, sec56Configs()},
		{"abl-ways", db, ablWaysConfigs()},
		{"abl-slots", db, ablSlotsConfigs()},
		{"abl-policy", db, ablPolicyConfigs()},
		{"abl-swcgp", db, ablSwcgpConfigs()},
		{"abl-degree", db, ablDegreeConfigs()},
	}
	var cells []CampaignCell
	for _, g := range grids {
		scfg := r.opts.samplingFor(g.id)
		for _, w := range g.workloads {
			for _, cfg := range g.configs {
				if scfg.Enabled() && !cfg.Sampling.Enabled() {
					cfg.Sampling = scfg
				}
				cells = append(cells, CampaignCell{Figure: g.id, Workload: w.Name, Config: cfg})
			}
		}
	}
	qscfg := r.opts.samplingFor("abl-quantum")
	for _, q := range QuantumSweepQuanta() {
		cells = append(cells, CampaignCell{
			Figure:   "abl-quantum",
			Workload: "wisc-large-2",
			Config:   Config{Layout: LayoutOM, Sampling: qscfg},
			Quantum:  q,
		})
	}
	return cells
}
