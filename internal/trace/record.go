package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"cgp/internal/isa"
	"cgp/internal/program"
)

// Record/replay: capture a workload's event stream once, in memory, and
// replay it into any number of simulator configurations. The stream for
// a given (workload, image) pair is deterministic and independent of
// the microarchitectural configuration, so the expensive part of a run
// — executing the database engine or the CPU2000 generators — need not
// be repeated per configuration. This is the same decoupling the
// paper's SimpleScalar setup gets from trace-driven simulation.
//
// The recording uses the binary codec of codec.go, so a recorded event
// stream is byte-compatible with the on-disk trace format, and is
// stored in fixed-size chunks: appending never copies already-recorded
// data, and replay streams chunk by chunk without materializing
// decoded events.

// recordChunkBytes is the default chunk size (1 MiB): large enough to
// amortize allocation, small enough that a short trace wastes little.
const recordChunkBytes = 1 << 20

// chunkBuffer is an append-only byte buffer split into fixed-capacity
// chunks. It implements io.Writer for the trace Writer; readers are
// created per replay and stream the chunks independently.
type chunkBuffer struct {
	chunks    [][]byte
	size      int64
	chunkSize int
}

func newChunkBuffer(chunkSize int) *chunkBuffer {
	if chunkSize <= 0 {
		chunkSize = recordChunkBytes
	}
	return &chunkBuffer{chunkSize: chunkSize}
}

// Write implements io.Writer, spreading p across chunk boundaries. It
// never fails.
func (b *chunkBuffer) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if len(b.chunks) == 0 || len(b.chunks[len(b.chunks)-1]) == b.chunkSize {
			b.chunks = append(b.chunks, make([]byte, 0, b.chunkSize))
		}
		last := &b.chunks[len(b.chunks)-1]
		free := b.chunkSize - len(*last)
		if free > len(p) {
			free = len(p)
		}
		*last = append(*last, p[:free]...)
		p = p[free:]
	}
	b.size += int64(n)
	return n, nil
}

// chunkReader streams a chunkBuffer. Each reader carries its own
// position, so concurrent replays of one recording are independent.
type chunkReader struct {
	b   *chunkBuffer
	i   int // current chunk
	off int // offset within chunk i
}

// Read implements io.Reader.
func (r *chunkReader) Read(p []byte) (int, error) {
	for r.i < len(r.b.chunks) && r.off == len(r.b.chunks[r.i]) {
		r.i++
		r.off = 0
	}
	if r.i >= len(r.b.chunks) {
		return 0, io.EOF
	}
	n := copy(p, r.b.chunks[r.i][r.off:])
	r.off += n
	return n, nil
}

// Recorder is a Consumer that captures an event stream into a compact
// chunked buffer using the binary trace codec. It simultaneously
// accumulates the stream's aggregate Stats so replays can copy them
// instead of recounting.
type Recorder struct {
	buf   *chunkBuffer
	w     *Writer
	stats Stats
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	buf := newChunkBuffer(recordChunkBytes)
	w, err := NewWriter(buf)
	if err != nil {
		// chunkBuffer writes cannot fail; a header error is a bug.
		panic(err)
	}
	return &Recorder{buf: buf, w: w}
}

// Event implements Consumer.
func (r *Recorder) Event(ev Event) {
	r.stats.Event(ev)
	r.w.Event(ev)
}

// Finish flushes buffered output and seals the recording. The Recorder
// must not be used afterwards.
func (r *Recorder) Finish() (*Recording, error) {
	if err := r.w.Flush(); err != nil {
		return nil, fmt.Errorf("trace: record: %w", err)
	}
	return &Recording{buf: r.buf, Stats: r.stats}, nil
}

// Recording is a sealed recorded trace. It is immutable and safe for
// concurrent replay from multiple goroutines.
type Recording struct {
	buf *chunkBuffer
	// Stats are the aggregate statistics of the recorded stream,
	// identical to what a Stats consumer fed by Replay would count.
	Stats Stats
}

// Events returns the number of recorded events.
func (r *Recording) Events() int64 { return r.Stats.Events }

// Bytes returns the in-memory footprint of the encoded trace.
func (r *Recording) Bytes() int64 { return r.buf.size }

// maxEventRecord bounds one encoded event: the flags byte plus seven
// varints.
const maxEventRecord = 1 + 7*binary.MaxVarintLen64

// ReplayAll feeds the recorded events to every consumer in one decode
// pass: each event is decoded once and dispatched to cs in order. When
// several simulator configurations consume the same (workload, layout)
// stream, this amortizes the decode cost across all of them.
func (r *Recording) ReplayAll(cs ...Consumer) error {
	if len(cs) == 1 {
		return r.Replay(cs[0])
	}
	return r.Replay(fanout(cs))
}

// fanout dispatches one event to every consumer in order.
type fanout []Consumer

func (f fanout) Event(ev Event) {
	for _, c := range f {
		c.Event(ev)
	}
}

// Replay feeds the recorded events to c in recording order. It decodes
// varints directly from the chunk slices — the generic Reader pays an
// interface-dispatched ReadByte per varint byte, which costs as much as
// the simulation consuming the events.
func (r *Recording) Replay(c Consumer) error {
	d := chunkDecoder{b: r.buf}
	hdr := d.window(len(traceMagic))
	if len(hdr) < len(traceMagic) || [8]byte(hdr[:8]) != traceMagic {
		return ErrBadMagic
	}
	d.advance(len(traceMagic))
	for {
		// Fast path: decode records lying wholly inside the current
		// chunk without per-event window/advance bookkeeping.
		if d.ci < len(d.b.chunks) {
			chunk := d.b.chunks[d.ci]
			pos := d.off
			for pos+maxEventRecord <= len(chunk) {
				ev, n, err := decodeEvent(chunk[pos:])
				if err != nil {
					return err
				}
				pos += n
				c.Event(ev)
			}
			d.off = pos
		}
		// Slow path: a record straddling a chunk boundary, or the tail
		// of the final chunk.
		w := d.window(maxEventRecord)
		if len(w) == 0 {
			return nil
		}
		ev, n, err := decodeEvent(w)
		if err != nil {
			return err
		}
		d.advance(n)
		c.Event(ev)
	}
}

// chunkDecoder walks a chunkBuffer as one logical byte stream,
// assembling chunk-straddling records into a scratch buffer. Each
// decoder carries its own position, so concurrent replays of one
// recording are independent.
type chunkDecoder struct {
	b       *chunkBuffer
	ci      int // current chunk
	off     int // offset within chunk ci
	scratch [maxEventRecord]byte
}

// window returns at least min(n, bytes remaining) contiguous bytes at
// the current position without consuming them; advance moves past the
// bytes actually decoded. The common case — a whole record inside one
// chunk — returns a subslice with no copy.
func (d *chunkDecoder) window(n int) []byte {
	for d.ci < len(d.b.chunks) && d.off == len(d.b.chunks[d.ci]) {
		d.ci++
		d.off = 0
	}
	if d.ci >= len(d.b.chunks) {
		return nil
	}
	cur := d.b.chunks[d.ci][d.off:]
	if len(cur) >= n || d.ci == len(d.b.chunks)-1 {
		return cur
	}
	m := copy(d.scratch[:n], cur)
	for i := d.ci + 1; i < len(d.b.chunks) && m < n; i++ {
		m += copy(d.scratch[m:n], d.b.chunks[i])
	}
	return d.scratch[:m]
}

func (d *chunkDecoder) advance(n int) {
	for n > 0 {
		rest := len(d.b.chunks[d.ci]) - d.off
		if n < rest {
			d.off += n
			return
		}
		n -= rest
		d.ci++
		d.off = 0
	}
}

// decodeEvent decodes one event from the front of b, returning the
// encoded length. It is the slice-based twin of Reader.Next.
func decodeEvent(b []byte) (Event, int, error) {
	var ev Event
	flags := b[0]
	ev.Kind = Kind(flags >> 1)
	ev.Taken = flags&1 != 0
	pos := 1
	u, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return ev, 0, decodeErr("addr")
	}
	pos += n
	ev.Addr = isa.Addr(u)
	if u, n = binary.Uvarint(b[pos:]); n <= 0 {
		return ev, 0, decodeErr("target")
	}
	pos += n
	ev.Target = isa.Addr(u)
	if u, n = binary.Uvarint(b[pos:]); n <= 0 {
		return ev, 0, decodeErr("callerStart")
	}
	pos += n
	ev.CallerStart = isa.Addr(u)
	v, n := binary.Varint(b[pos:])
	if n <= 0 {
		return ev, 0, decodeErr("n")
	}
	pos += n
	ev.N = int32(v)
	if v, n = binary.Varint(b[pos:]); n <= 0 {
		return ev, 0, decodeErr("iters")
	}
	pos += n
	ev.Iters = int32(v)
	if v, n = binary.Varint(b[pos:]); n <= 0 {
		return ev, 0, decodeErr("fn")
	}
	pos += n
	ev.Fn = program.FuncID(v)
	if v, n = binary.Varint(b[pos:]); n <= 0 {
		return ev, 0, decodeErr("caller")
	}
	pos += n
	ev.Caller = program.FuncID(v)
	return ev, pos, nil
}

func decodeErr(field string) error {
	return fmt.Errorf("trace: decode %s: %w", field, io.ErrUnexpectedEOF)
}

// WriteTo copies the raw encoded trace (header included) to w, so a
// recording can be saved in the cgptrace on-disk format.
func (r *Recording) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, chunk := range r.buf.chunks {
		n, err := w.Write(chunk)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
