package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"cgp/internal/isa"
	"cgp/internal/program"
)

// Record/replay: capture a workload's event stream once, in memory, and
// replay it into any number of simulator configurations. The stream for
// a given (workload, image) pair is deterministic and independent of
// the microarchitectural configuration, so the expensive part of a run
// — executing the database engine or the CPU2000 generators — need not
// be repeated per configuration. This is the same decoupling the
// paper's SimpleScalar setup gets from trace-driven simulation.
//
// The recording uses the binary codec of codec.go, so a recorded event
// stream is byte-compatible with the on-disk trace format, and is
// stored in fixed-size chunks: appending never copies already-recorded
// data, and replay streams chunk by chunk without materializing
// decoded events.

// recordChunkBytes is the default chunk size (1 MiB): large enough to
// amortize allocation, small enough that a short trace wastes little.
const recordChunkBytes = 1 << 20

// chunkBuffer is an append-only byte buffer split into fixed-capacity
// chunks. It implements io.Writer for the trace Writer; readers are
// created per replay and stream the chunks independently.
type chunkBuffer struct {
	chunks    [][]byte
	size      int64
	chunkSize int
}

func newChunkBuffer(chunkSize int) *chunkBuffer {
	if chunkSize <= 0 {
		chunkSize = recordChunkBytes
	}
	return &chunkBuffer{chunkSize: chunkSize}
}

// Write implements io.Writer, spreading p across chunk boundaries. It
// never fails.
func (b *chunkBuffer) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if len(b.chunks) == 0 || len(b.chunks[len(b.chunks)-1]) == b.chunkSize {
			b.chunks = append(b.chunks, make([]byte, 0, b.chunkSize))
		}
		last := &b.chunks[len(b.chunks)-1]
		free := b.chunkSize - len(*last)
		if free > len(p) {
			free = len(p)
		}
		*last = append(*last, p[:free]...)
		p = p[free:]
	}
	b.size += int64(n)
	return n, nil
}

// chunkReader streams a chunkBuffer. Each reader carries its own
// position, so concurrent replays of one recording are independent.
type chunkReader struct {
	b   *chunkBuffer
	i   int // current chunk
	off int // offset within chunk i
}

// Read implements io.Reader.
func (r *chunkReader) Read(p []byte) (int, error) {
	for r.i < len(r.b.chunks) && r.off == len(r.b.chunks[r.i]) {
		r.i++
		r.off = 0
	}
	if r.i >= len(r.b.chunks) {
		return 0, io.EOF
	}
	n := copy(p, r.b.chunks[r.i][r.off:])
	r.off += n
	return n, nil
}

// Recorder is a Consumer that captures an event stream into a compact
// chunked buffer using the binary trace codec. It simultaneously
// accumulates the stream's aggregate Stats so replays can copy them
// instead of recounting.
type Recorder struct {
	buf   *chunkBuffer
	w     *Writer
	stats Stats
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	buf := newChunkBuffer(recordChunkBytes)
	w, err := NewWriter(buf)
	if err != nil {
		// chunkBuffer writes cannot fail; a header error is a bug.
		panic(err)
	}
	return &Recorder{buf: buf, w: w}
}

// Event implements Consumer.
func (r *Recorder) Event(ev Event) {
	r.stats.Event(ev)
	r.w.Event(ev)
}

// Finish flushes buffered output and seals the recording: the chunk
// list is frozen and per-chunk CRC-32C checksums are computed, so every
// later replay can verify integrity before decoding. The Recorder must
// not be used afterwards.
func (r *Recorder) Finish() (*Recording, error) {
	if err := r.w.Flush(); err != nil {
		return nil, fmt.Errorf("trace: record: %w", err)
	}
	return &Recording{
		buf:     r.buf,
		Stats:   r.stats,
		version: RecordingVersion,
		sums:    sealChecksums(r.buf),
	}, nil
}

// Recording is a sealed recorded trace. It is immutable and safe for
// concurrent replay from multiple goroutines.
type Recording struct {
	buf *chunkBuffer
	// version and sums are the integrity framing (see integrity.go):
	// the format version and one CRC-32C per chunk, sealed by Finish.
	version int
	sums    []uint32
	// Stats are the aggregate statistics of the recorded stream,
	// identical to what a Stats consumer fed by Replay would count.
	Stats Stats
	// idxOnce/idx lazily build the skip index used by ReplaySampled
	// (see sample.go). The index lives only in memory — the encoded
	// stream stays byte-compatible with the on-disk format.
	idxOnce sync.Once
	idx     []skipPoint
}

// Events returns the number of recorded events.
func (r *Recording) Events() int64 { return r.Stats.Events }

// Bytes returns the in-memory footprint of the encoded trace.
func (r *Recording) Bytes() int64 { return r.buf.size }

// maxEventRecord bounds one encoded event: the flags byte plus seven
// varints.
const maxEventRecord = 1 + 7*binary.MaxVarintLen64

// replayBatch is how many decoded events one dispatch hands over. The
// buffer (≈ 24 KiB) stays comfortably cache-resident while amortizing
// the dynamic dispatch per batch to noise.
const replayBatch = 512

// ReplayAll feeds the recorded events to every consumer in one decode
// pass: each event is decoded once and dispatched to every consumer.
// When several simulator configurations consume the same (workload,
// layout) stream, this amortizes the decode cost across all of them.
// Consumers are independent, so events are handed to them a batch at a
// time (each consumer sees the full stream in order; only the
// interleaving between consumers changes, which no consumer can
// observe).
func (r *Recording) ReplayAll(cs ...Consumer) error {
	if len(cs) == 1 {
		return r.Replay(cs[0])
	}
	batched := make([]BatchConsumer, 0, len(cs))
	plain := make([]Consumer, 0, len(cs))
	for _, c := range cs {
		if bc, ok := c.(BatchConsumer); ok {
			batched = append(batched, bc)
		} else {
			plain = append(plain, c)
		}
	}
	return r.ReplayBatch(func(evs []Event) error {
		for _, bc := range batched {
			bc.EventBatch(evs)
		}
		for _, c := range plain {
			for i := range evs {
				c.Event(evs[i])
			}
		}
		return nil
	})
}

// Replay feeds the recorded events to c in recording order. A consumer
// implementing BatchConsumer (the CPU model does) receives the events
// through its batch entry point; otherwise they are delivered one
// Event call at a time. Replay allocates a fixed per-call setup cost
// (the dispatch closure here, the batch buffer in ReplayBatch) and
// nothing per event — TestReplayAllocsIndependentOfLength pins the
// runtime side of what allocfree verifies statically.
//
//cgplint:hotpath
func (r *Recording) Replay(c Consumer) error {
	if bc, ok := c.(BatchConsumer); ok {
		return r.ReplayBatch(func(evs []Event) error { //cgplint:ignore allocfree one dispatch closure per Replay call, amortized across the whole stream
			bc.EventBatch(evs) //cgplint:ignore allocfree dynamic consumer dispatch is paid once per 512-event batch, not per event
			return nil
		})
	}
	return r.ReplayBatch(func(evs []Event) error { //cgplint:ignore allocfree one dispatch closure per Replay call, amortized across the whole stream
		for i := range evs {
			c.Event(evs[i]) //cgplint:ignore allocfree dispatch itself does not allocate; consumers wanting a verified path implement BatchConsumer
		}
		return nil
	})
}

// ReplayBatch is the kernel of every replay: it decodes the stream into
// a reusable buffer, replayBatch events at a time, and hands each
// full batch (and the final partial one) to fn. The varints are decoded
// directly from the chunk slices — the generic Reader pays an
// interface-dispatched ReadByte per varint byte, which costs as much as
// the simulation consuming the events — and the buffer is allocated
// once per call, so steady-state replay does not allocate per batch.
// fn must not retain the slice. A non-nil error from fn aborts the
// replay immediately and is returned as-is (the runner uses this for
// prompt cancellation at batch granularity).
//
// Before decoding, the chunk checksums sealed at record time are
// re-verified; a corrupted recording fails with *CorruptionError
// instead of handing decoded garbage to the consumers.
//
//cgplint:hotpath
func (r *Recording) ReplayBatch(fn func(evs []Event) error) error {
	if err := r.Verify(); err != nil {
		return err
	}
	d := chunkDecoder{b: r.buf}
	hdr := d.window(len(traceMagic))
	if len(hdr) < len(traceMagic) || [8]byte(hdr[:8]) != traceMagic {
		return ErrBadMagic
	}
	d.advance(len(traceMagic))
	buf := make([]Event, replayBatch) //cgplint:ignore allocfree one reusable batch buffer per replay call, amortized across the whole stream
	n := 0
	for {
		// Fast path: decode records lying wholly inside the current
		// chunk without per-event window/advance bookkeeping.
		if d.ci < len(d.b.chunks) {
			chunk := d.b.chunks[d.ci]
			pos := d.off
			for pos+maxEventRecord <= len(chunk) && n < len(buf) {
				m, err := decodeEventInto(chunk[pos:], &buf[n])
				if err != nil {
					return err
				}
				pos += m
				n++
			}
			d.off = pos
			if n == len(buf) {
				if err := fn(buf); err != nil {
					return err
				}
				n = 0
				continue
			}
		}
		// Slow path: a record straddling a chunk boundary, or the tail
		// of the final chunk.
		w := d.window(maxEventRecord)
		if len(w) == 0 {
			if n > 0 {
				return fn(buf[:n])
			}
			return nil
		}
		m, err := decodeEventInto(w, &buf[n])
		if err != nil {
			return err
		}
		d.advance(m)
		n++
		if n == len(buf) {
			if err := fn(buf); err != nil {
				return err
			}
			n = 0
		}
	}
}

// chunkDecoder walks a chunkBuffer as one logical byte stream,
// assembling chunk-straddling records into a scratch buffer. Each
// decoder carries its own position, so concurrent replays of one
// recording are independent.
type chunkDecoder struct {
	b       *chunkBuffer
	ci      int // current chunk
	off     int // offset within chunk ci
	scratch [maxEventRecord]byte
}

// window returns at least min(n, bytes remaining) contiguous bytes at
// the current position without consuming them; advance moves past the
// bytes actually decoded. The common case — a whole record inside one
// chunk — returns a subslice with no copy.
func (d *chunkDecoder) window(n int) []byte {
	for d.ci < len(d.b.chunks) && d.off == len(d.b.chunks[d.ci]) {
		d.ci++
		d.off = 0
	}
	if d.ci >= len(d.b.chunks) {
		return nil
	}
	cur := d.b.chunks[d.ci][d.off:]
	if len(cur) >= n || d.ci == len(d.b.chunks)-1 {
		return cur
	}
	m := copy(d.scratch[:n], cur)
	for i := d.ci + 1; i < len(d.b.chunks) && m < n; i++ {
		m += copy(d.scratch[m:n], d.b.chunks[i])
	}
	return d.scratch[:m]
}

func (d *chunkDecoder) advance(n int) {
	for n > 0 {
		rest := len(d.b.chunks[d.ci]) - d.off
		if n < rest {
			d.off += n
			return
		}
		n -= rest
		d.ci++
		d.off = 0
	}
}

// decodeEventInto decodes one event from the front of b into *ev,
// returning the encoded length. It is the slice-based twin of
// Reader.Next. On success every field of *ev is overwritten, so the
// caller can reuse a dirty buffer slot without zeroing it; on error the
// slot's contents are unspecified.
//
// This is the hottest loop body of the whole simulator (every replayed
// event passes through it), so the seven varint reads are open-coded
// straight-line: most fields are zero or tiny, and the one-byte case
// runs without a function call or loop — a helper carrying the
// binary.Uvarint fallback costs more than the inlining budget allows,
// and a fields loop pays a dispatch switch per field. The multi-byte
// fallback is the standard library decoder.
//
//cgplint:hotpath
func decodeEventInto(b []byte, ev *Event) (int, error) {
	flags := b[0]
	ev.Kind = Kind(flags >> 1)
	ev.Taken = flags&1 != 0
	pos := 1
	var u uint64
	var n int
	if pos < len(b) && b[pos] < 0x80 {
		u = uint64(b[pos])
		pos++
	} else if u, n = binary.Uvarint(b[pos:]); n <= 0 {
		return 0, decodeErr("addr")
	} else {
		pos += n
	}
	ev.Addr = isa.Addr(u)
	if pos < len(b) && b[pos] < 0x80 {
		u = uint64(b[pos])
		pos++
	} else if u, n = binary.Uvarint(b[pos:]); n <= 0 {
		return 0, decodeErr("target")
	} else {
		pos += n
	}
	ev.Target = isa.Addr(u)
	if pos < len(b) && b[pos] < 0x80 {
		u = uint64(b[pos])
		pos++
	} else if u, n = binary.Uvarint(b[pos:]); n <= 0 {
		return 0, decodeErr("callerStart")
	} else {
		pos += n
	}
	ev.CallerStart = isa.Addr(u)
	var v int64
	if pos < len(b) && b[pos] < 0x80 {
		x := b[pos]
		v = int64(x>>1) ^ -int64(x&1)
		pos++
	} else if v, n = binary.Varint(b[pos:]); n <= 0 {
		return 0, decodeErr("n")
	} else {
		pos += n
	}
	ev.N = int32(v)
	if pos < len(b) && b[pos] < 0x80 {
		x := b[pos]
		v = int64(x>>1) ^ -int64(x&1)
		pos++
	} else if v, n = binary.Varint(b[pos:]); n <= 0 {
		return 0, decodeErr("iters")
	} else {
		pos += n
	}
	ev.Iters = int32(v)
	if pos < len(b) && b[pos] < 0x80 {
		x := b[pos]
		v = int64(x>>1) ^ -int64(x&1)
		pos++
	} else if v, n = binary.Varint(b[pos:]); n <= 0 {
		return 0, decodeErr("fn")
	} else {
		pos += n
	}
	ev.Fn = program.FuncID(v)
	if pos < len(b) && b[pos] < 0x80 {
		x := b[pos]
		v = int64(x>>1) ^ -int64(x&1)
		pos++
	} else if v, n = binary.Varint(b[pos:]); n <= 0 {
		return 0, decodeErr("caller")
	} else {
		pos += n
	}
	ev.Caller = program.FuncID(v)
	return pos, nil
}

// decodeErr builds the error for a truncated field.
//
//cgplint:coldpath error construction runs only on corrupt or truncated input, never in steady-state replay
func decodeErr(field string) error {
	return fmt.Errorf("trace: decode %s: %w", field, io.ErrUnexpectedEOF)
}

// Load reads an entire encoded trace stream (the cgptrace on-disk
// format, header included) into a sealed Recording, so file-backed
// traces get the same replay machinery as in-memory ones — including
// sampled replay, which needs random access the streaming Reader
// cannot provide. The stream is decoded once to rebuild the aggregate
// Stats a Recorder would have counted.
func Load(src io.Reader) (*Recording, error) {
	buf := newChunkBuffer(recordChunkBytes)
	if _, err := io.Copy(buf, src); err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	rec := &Recording{buf: buf, version: RecordingVersion, sums: sealChecksums(buf)}
	var st Stats
	if err := rec.Replay(&st); err != nil {
		return nil, err
	}
	rec.Stats = st
	return rec, nil
}

// WriteTo copies the raw encoded trace (header included) to w, so a
// recording can be saved in the cgptrace on-disk format.
func (r *Recording) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, chunk := range r.buf.chunks {
		n, err := w.Write(chunk)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
