package trace

import (
	"bytes"
	"reflect"
	"testing"

	"cgp/internal/units"
)

// sampledCapture records everything a sampled replay delivers, span by
// span.
type sampledCapture struct {
	kinds   []SpanKind
	spans   [][]Event
	skips   []int64
	skInstr units.Instrs
}

func (s *sampledCapture) BeginSpan(k SpanKind) {
	s.kinds = append(s.kinds, k)
	s.spans = append(s.spans, nil)
}

func (s *sampledCapture) SkipSpan(events int64, instrs units.Instrs) {
	s.skips = append(s.skips, events)
	s.skInstr += instrs
}

func (s *sampledCapture) Event(ev Event) { s.EventBatch([]Event{ev}) }

func (s *sampledCapture) EventBatch(evs []Event) {
	i := len(s.spans) - 1
	s.spans[i] = append(s.spans[i], evs...)
}

func recordSampleTest(t *testing.T, n int) (*Recording, []Event) {
	t.Helper()
	evs := recordTestEvents(n)
	r := NewRecorder()
	for _, ev := range evs {
		r.Event(ev)
	}
	rec, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return rec, evs
}

func instrsOf(evs []Event) units.Instrs {
	var total units.Instrs
	for _, ev := range evs {
		total += ev.Instructions()
	}
	return total
}

func TestReplaySampledDeliversExactSpans(t *testing.T) {
	rec, evs := recordSampleTest(t, 20000)
	spans := []Span{
		{Kind: SpanSkip, Events: 7000},
		{Kind: SpanFunctionalWarm, Events: 2000},
		{Kind: SpanDetailWarm, Events: 500},
		{Kind: SpanMeasure, Events: 1500},
		{Kind: SpanSkip, Events: 6000},
		{Kind: SpanMeasure, Events: 3000},
	}
	var got sampledCapture
	if err := rec.ReplaySampledInto(spans, &got); err != nil {
		t.Fatal(err)
	}
	wantKinds := []SpanKind{SpanFunctionalWarm, SpanDetailWarm, SpanMeasure, SpanMeasure}
	if !reflect.DeepEqual(got.kinds, wantKinds) {
		t.Fatalf("span kinds = %v, want %v", got.kinds, wantKinds)
	}
	wantSpans := [][]Event{evs[7000:9000], evs[9000:9500], evs[9500:11000], evs[17000:20000]}
	for i, want := range wantSpans {
		if !reflect.DeepEqual(got.spans[i], want) {
			t.Fatalf("decoded span %d differs from the recorded slice", i)
		}
	}
	if !reflect.DeepEqual(got.skips, []int64{7000, 6000}) {
		t.Fatalf("skip events = %v, want [7000 6000]", got.skips)
	}
	wantSkInstr := instrsOf(evs[:7000]) + instrsOf(evs[11000:17000])
	if got.skInstr != wantSkInstr {
		t.Fatalf("skipped instrs = %d, want %d", got.skInstr, wantSkInstr)
	}
}

func TestReplaySampledInstructionConservation(t *testing.T) {
	// Decoded + skipped instructions must equal the exact stream total
	// for any plan shape, including skips that straddle index points
	// and chunk boundaries.
	rec, evs := recordSampleTest(t, 50000)
	total := instrsOf(evs)
	plans := [][]Span{
		{{SpanSkip, 50000}},
		{{SpanMeasure, 50000}},
		{{SpanSkip, 4095}, {SpanMeasure, 1}, {SpanSkip, 4097}, {SpanMeasure, 41807}},
		{{SpanSkip, 1}, {SpanFunctionalWarm, 1}, {SpanSkip, 49997}, {SpanMeasure, 1}},
		{{SpanSkip, 12288}, {SpanDetailWarm, 100}, {SpanSkip, 12288}, {SpanMeasure, 25324}},
	}
	for pi, spans := range plans {
		var got sampledCapture
		if err := rec.ReplaySampledInto(spans, &got); err != nil {
			t.Fatalf("plan %d: %v", pi, err)
		}
		var decoded units.Instrs
		for _, sp := range got.spans {
			decoded += instrsOf(sp)
		}
		if decoded+got.skInstr != total {
			t.Fatalf("plan %d: decoded %d + skipped %d != total %d", pi, decoded, got.skInstr, total)
		}
	}
}

func TestReplaySampledMatchesFullReplay(t *testing.T) {
	// An all-measure plan must deliver the identical event sequence a
	// plain replay does.
	rec, evs := recordSampleTest(t, 3000)
	var got sampledCapture
	if err := rec.ReplaySampledInto([]Span{{Kind: SpanMeasure, Events: 3000}}, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.spans) != 1 || !reflect.DeepEqual(got.spans[0], evs) {
		t.Fatal("all-measure sampled replay differs from the recorded stream")
	}
}

func TestReplaySampledConcurrent(t *testing.T) {
	// The lazy skip index must be safe to build from concurrent
	// replays of one recording (the runner replays a memoized
	// recording from many worker goroutines).
	rec, _ := recordSampleTest(t, 30000)
	spans := []Span{
		{Kind: SpanSkip, Events: 20000},
		{Kind: SpanMeasure, Events: 10000},
	}
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			var got sampledCapture
			errs <- rec.ReplaySampledInto(spans, &got)
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestReplaySampledCorruptionDetected(t *testing.T) {
	rec, _ := recordSampleTest(t, 5000)
	rec.buf.chunks[0][len(traceMagic)+3] ^= 0x40
	err := rec.ReplaySampledInto([]Span{{Kind: SpanMeasure, Events: 5000}}, &sampledCapture{})
	if _, ok := err.(*CorruptionError); !ok {
		t.Fatalf("corrupted sampled replay returned %v, want *CorruptionError", err)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	rec, evs := recordSampleTest(t, 4000)
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats != rec.Stats {
		t.Fatalf("loaded stats %+v differ from recorded %+v", loaded.Stats, rec.Stats)
	}
	var got Capture
	if err := loaded.Replay(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, evs) {
		t.Fatal("loaded recording replays different events")
	}
	// And the loaded recording supports sampled replay.
	var sc sampledCapture
	if err := loaded.ReplaySampledInto([]Span{
		{Kind: SpanSkip, Events: 1000},
		{Kind: SpanMeasure, Events: 3000},
	}, &sc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc.spans[0], evs[1000:]) {
		t.Fatal("sampled replay of loaded recording differs")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
}
