package trace

import (
	"cgp/internal/program"
	"cgp/internal/units"
)

// Stats is a Consumer that accumulates aggregate statistics about a
// trace: instruction, call, branch and data-reference counts. Like
// every simulator counter it is deterministic-domain data — derived
// only from the event stream, identical across replays, safe in
// report bodies and the -stats-json dump.
type Stats struct {
	Instructions units.Instrs
	Calls        int64
	Returns      int64
	Branches     int64
	TakenBrs     int64
	Loops        int64
	DataRefs     int64
	DataBytes    int64
	Switches     int64
	Events       int64
	// ProbeOps counts probe-level events (KindProbe*): nonzero only
	// for live-capture recordings, which store the instrumentation
	// seam instead of a synthesized instruction stream.
	ProbeOps int64
	// QueryTags counts KindQueryTag events: the trace-ID tags a live
	// capture of tagged traffic carries, one per tagged query batch.
	QueryTags int64
}

// Event implements Consumer.
func (s *Stats) Event(ev Event) {
	s.Events++
	switch ev.Kind {
	case KindRun:
		s.Instructions += ev.Instructions()
	case KindLoop:
		s.Instructions += ev.Instructions()
		s.Loops++
		// One backward branch per iteration.
		s.Branches += int64(ev.Iters)
		s.TakenBrs += int64(ev.Iters) - 1
	case KindBranch:
		s.Branches++
		if ev.Taken {
			s.TakenBrs++
		}
	case KindCall:
		s.Calls++
	case KindReturn:
		s.Returns++
	case KindData:
		s.DataRefs++
		s.DataBytes += int64(ev.N)
	case KindSwitch:
		s.Switches++
	case KindProbeEnter, KindProbeExit, KindProbeWork, KindProbeData:
		s.ProbeOps++
	case KindQueryTag:
		s.QueryTags++
	}
}

// InstructionsPerCall reports the average number of instructions between
// dynamic calls. The paper measures 43 for the DB workloads (§5.4).
func (s *Stats) InstructionsPerCall() float64 {
	if s.Calls == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Calls)
}

// EventsPerKInstr reports trace density: encoded events per thousand
// simulated instructions. It is the recorder's run-length-efficiency
// diagnostic — a rising value means basic blocks are fragmenting into
// more events for the same instruction work.
func (s *Stats) EventsPerKInstr() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 1000 * float64(s.Events) / float64(s.Instructions)
}

// ProfileCollector is a Consumer that builds a program.Profile from a
// run — the stand-in for the instrumented profile pass OM requires.
type ProfileCollector struct {
	Profile *program.Profile
}

// NewProfileCollector returns a collector with a fresh profile.
func NewProfileCollector() *ProfileCollector {
	return &ProfileCollector{Profile: program.NewProfile()}
}

// Event implements Consumer.
func (p *ProfileCollector) Event(ev Event) {
	switch ev.Kind {
	case KindCall:
		p.Profile.AddCall(ev.Caller, ev.Fn)
	case KindRun:
		p.Profile.AddInstructions(int64(ev.N))
	case KindLoop:
		p.Profile.AddInstructions(int64(ev.N) * int64(ev.Iters))
	}
}

// Capture is a Consumer that stores decoded events in memory, mainly
// for tests. For recording real workloads use Recorder, which stores
// the encoded form at a fraction of the memory.
type Capture struct {
	Events []Event
}

// Event implements Consumer.
func (c *Capture) Event(ev Event) { c.Events = append(c.Events, ev) }
