package trace

import (
	"sort"

	"cgp/internal/program"
)

// SequenceProfile records, for every function, the *modal* callee at
// each call position: across invocations, which function is most often
// the 1st call, the 2nd call, and so on. This is the call-graph
// information a compiler would extract from profile executions to
// implement CGP entirely in software (§6's future-work variant).
type SequenceProfile struct {
	// counts[fn][slot][callee] = occurrences.
	counts map[program.FuncID][]map[program.FuncID]int64
	// MaxSlots bounds the per-function sequence length recorded.
	MaxSlots int
}

// NewSequenceProfile returns an empty profile recording up to maxSlots
// call positions per function (8 matches the hardware CGHC entry).
func NewSequenceProfile(maxSlots int) *SequenceProfile {
	if maxSlots <= 0 {
		maxSlots = 8
	}
	return &SequenceProfile{
		counts:   make(map[program.FuncID][]map[program.FuncID]int64),
		MaxSlots: maxSlots,
	}
}

// Record notes that fn's call at position slot (0-based) targeted
// callee.
func (p *SequenceProfile) Record(fn program.FuncID, slot int, callee program.FuncID) {
	if slot >= p.MaxSlots || fn == program.NoFunc {
		return
	}
	slots := p.counts[fn]
	for len(slots) <= slot {
		slots = append(slots, make(map[program.FuncID]int64))
	}
	p.counts[fn] = slots
	slots[slot][callee]++
}

// Sequence returns fn's modal callee sequence.
func (p *SequenceProfile) Sequence(fn program.FuncID) []program.FuncID {
	slots := p.counts[fn]
	out := make([]program.FuncID, 0, len(slots))
	for _, m := range slots {
		best := program.NoFunc
		var bestN int64
		for callee, n := range m {
			if n > bestN || (n == bestN && callee < best) {
				// The (count desc, callee asc) tiebreak is a total order, so
				// the winner is independent of map-iteration order.
				//cgplint:ignore maporder arg-max with a total (count, callee) tiebreak is order-independent
				best, bestN = callee, n
			}
		}
		if best == program.NoFunc {
			break
		}
		out = append(out, best)
	}
	return out
}

// Functions returns every function with a recorded sequence, in
// ascending ID order.
func (p *SequenceProfile) Functions() []program.FuncID {
	out := make([]program.FuncID, 0, len(p.counts))
	for fn := range p.counts {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of functions with recorded sequences.
func (p *SequenceProfile) Len() int { return len(p.counts) }

// SequenceCollector is a Consumer that builds a SequenceProfile by
// tracking call positions on a shadow stack. Context switches restart
// the stack per thread is unnecessary: each thread's tracer emits
// structurally balanced call/return events, and interleaving only
// occurs at scheduler switch points, so the collector keeps one stack
// per thread keyed by the switch events.
type SequenceCollector struct {
	Profile *SequenceProfile

	// Per-thread shadow stacks: thread id -> stack of (fn, nextSlot).
	stacks map[int32][]seqFrame
	cur    int32
}

type seqFrame struct {
	fn   program.FuncID
	slot int
}

// NewSequenceCollector returns a collector recording up to maxSlots
// call positions per function.
func NewSequenceCollector(maxSlots int) *SequenceCollector {
	return &SequenceCollector{
		Profile: NewSequenceProfile(maxSlots),
		stacks:  map[int32][]seqFrame{0: nil},
	}
}

// Event implements Consumer.
func (c *SequenceCollector) Event(ev Event) {
	switch ev.Kind {
	case KindSwitch:
		c.cur = ev.N
		if _, ok := c.stacks[c.cur]; !ok {
			c.stacks[c.cur] = nil
		}
	case KindCall:
		stack := c.stacks[c.cur]
		if n := len(stack); n > 0 {
			top := &stack[n-1]
			c.Profile.Record(top.fn, top.slot, ev.Fn)
			top.slot++
		}
		c.stacks[c.cur] = append(stack, seqFrame{fn: ev.Fn})
	case KindReturn:
		stack := c.stacks[c.cur]
		if n := len(stack); n > 0 {
			c.stacks[c.cur] = stack[:n-1]
		}
	}
}
