package trace

import (
	"fmt"

	"cgp/internal/program"
)

// Probe-level recordings (live capture).
//
// A serving database process cannot be re-executed to regenerate its
// trace: its inputs are whatever clients happened to send. The live
// capture path therefore records the instrumentation seam itself —
// the probe Enter/Exit/Work/Data call sequence, tagged with session
// switches — instead of a synthesized instruction stream. That keeps
// the recording layout-independent: ReplayProbe drives a Tracer over
// any program.Image, so one captured session replays under O5, OM, or
// any future layout, exactly like the synthetic workloads.
//
// The encoded form is the ordinary trace codec carrying KindProbe*
// events, so sealed captures get the same CRC framing, chunked
// storage, and file format as every other recording.

// probeReplaySeedStride spaces per-session tracer seeds, mirroring
// the stride the cooperative scheduler uses for its query threads.
const probeReplaySeedStride = 7919

// ErrNotProbeRecording reports a recording that holds no probe-level
// events where one was required.
var ErrNotProbeRecording = fmt.Errorf("trace: recording holds no probe-level events")

// IsProbeRecording reports whether rec is a probe-level capture (all
// payload events are KindProbe*, session-tagged by KindSwitch and
// optionally query-tagged by KindQueryTag).
func IsProbeRecording(rec *Recording) bool {
	return rec.Stats.ProbeOps > 0 &&
		rec.Stats.ProbeOps+rec.Stats.Switches+rec.Stats.QueryTags == rec.Stats.Events
}

// ReplayProbe replays a probe-level recording through per-session
// tracers over img, emitting the synthesized address-level stream into
// out. Session s gets a tracer seeded seed+s*7919 (the scheduler's
// stride), so the synthesis is deterministic: the same recording, img
// and seed yield a byte-identical event stream on every call.
//
// The stream is validated as it replays: a malformed capture (probe
// ops at stack depth zero, an unknown kind, a negative session) fails
// with an error instead of panicking the tracer — captures come from
// live network traffic and are not trusted.
func ReplayProbe(rec *Recording, img *program.Image, out Consumer, seed int64) error {
	if !IsProbeRecording(rec) {
		return ErrNotProbeRecording
	}
	var (
		tracers []*Tracer
		cur     *Tracer
		n       int64
	)
	tracerFor := func(slot int32) *Tracer {
		for int(slot) >= len(tracers) {
			tracers = append(tracers, nil)
		}
		if tracers[slot] == nil {
			tracers[slot] = NewTracer(img, out, seed+int64(slot)*probeReplaySeedStride)
		}
		return tracers[slot]
	}
	return rec.ReplayBatch(func(evs []Event) error {
		for i := range evs {
			ev := &evs[i]
			n++
			switch ev.Kind {
			case KindSwitch:
				if ev.N < 0 {
					return probeStreamErr(n, "negative session slot")
				}
				cur = tracerFor(ev.N)
				out.Event(Event{Kind: KindSwitch, N: ev.N})
			case KindQueryTag:
				// Pass the trace-ID tag straight through: it carries no
				// instruction semantics, but a per-query attribution
				// consumer keys its rows on it.
				if cur == nil {
					return probeStreamErr(n, "query tag before first session switch")
				}
				if ev.Addr == 0 {
					return probeStreamErr(n, "zero query trace ID")
				}
				out.Event(Event{Kind: KindQueryTag, Addr: ev.Addr})
			case KindProbeEnter:
				if cur == nil {
					return probeStreamErr(n, "probe op before first session switch")
				}
				cur.Enter(ev.Fn)
			case KindProbeExit:
				if cur == nil || cur.Depth() == 0 {
					return probeStreamErr(n, "probe exit at stack depth zero")
				}
				cur.Exit()
			case KindProbeWork:
				if cur == nil || cur.Depth() == 0 {
					return probeStreamErr(n, "probe work at stack depth zero")
				}
				cur.Work(int(ev.N))
			case KindProbeData:
				if cur == nil || cur.Depth() == 0 {
					return probeStreamErr(n, "probe data at stack depth zero")
				}
				cur.Data(ev.Addr, int(ev.N), ev.Taken)
			default:
				return probeStreamErr(n, "non-probe event kind "+ev.Kind.String())
			}
		}
		return nil
	})
}

// probeStreamErr reports a malformed probe capture at 1-based event n.
func probeStreamErr(n int64, msg string) error {
	return fmt.Errorf("trace: probe replay: event %d: %s", n, msg)
}
