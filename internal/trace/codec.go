package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cgp/internal/isa"
	"cgp/internal/program"
)

// The binary trace format: a fixed magic header followed by one varint-
// packed record per event. Traces are normally streamed straight into
// the simulator, but capture/replay is useful for debugging and for
// decoupling expensive query execution from parameter sweeps.

var traceMagic = [8]byte{'C', 'G', 'P', 'T', 'R', 'C', '0', '1'}

// ErrBadMagic is returned when a reader is handed a non-trace stream.
var ErrBadMagic = errors.New("trace: bad magic")

// Writer encodes events to an io.Writer.
type Writer struct {
	w   *bufio.Writer
	buf [8 * binary.MaxVarintLen64]byte
	err error
}

// NewWriter writes the header and returns an event writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Event implements Consumer, encoding ev. Errors are sticky and are
// reported by Flush.
func (tw *Writer) Event(ev Event) {
	if tw.err != nil {
		return
	}
	b := tw.buf[:0]
	flags := byte(ev.Kind) << 1
	if ev.Taken {
		flags |= 1
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(ev.Addr))
	b = binary.AppendUvarint(b, uint64(ev.Target))
	b = binary.AppendUvarint(b, uint64(ev.CallerStart))
	b = binary.AppendVarint(b, int64(ev.N))
	b = binary.AppendVarint(b, int64(ev.Iters))
	b = binary.AppendVarint(b, int64(ev.Fn))
	b = binary.AppendVarint(b, int64(ev.Caller))
	if _, err := tw.w.Write(b); err != nil {
		tw.err = err
	}
}

// Flush flushes buffered output and returns the first error encountered
// while writing, if any.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// Reader decodes a stream written by Writer.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the header and returns an event reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if magic != traceMagic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Next decodes the next event. It returns io.EOF at a clean end of
// stream.
func (tr *Reader) Next() (Event, error) {
	var ev Event
	flags, err := tr.r.ReadByte()
	if err != nil {
		return ev, err // io.EOF passes through for clean termination
	}
	ev.Kind = Kind(flags >> 1)
	ev.Taken = flags&1 != 0
	fail := func(field string, err error) (Event, error) {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return ev, fmt.Errorf("trace: decode %s: %w", field, err)
	}
	u, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return fail("addr", err)
	}
	ev.Addr = isa.Addr(u)
	if u, err = binary.ReadUvarint(tr.r); err != nil {
		return fail("target", err)
	}
	ev.Target = isa.Addr(u)
	if u, err = binary.ReadUvarint(tr.r); err != nil {
		return fail("callerStart", err)
	}
	ev.CallerStart = isa.Addr(u)
	v, err := binary.ReadVarint(tr.r)
	if err != nil {
		return fail("n", err)
	}
	ev.N = int32(v)
	if v, err = binary.ReadVarint(tr.r); err != nil {
		return fail("iters", err)
	}
	ev.Iters = int32(v)
	if v, err = binary.ReadVarint(tr.r); err != nil {
		return fail("fn", err)
	}
	ev.Fn = program.FuncID(v)
	if v, err = binary.ReadVarint(tr.r); err != nil {
		return fail("caller", err)
	}
	ev.Caller = program.FuncID(v)
	return ev, nil
}

// Replay feeds every event in the stream to c, stopping at EOF.
func (tr *Reader) Replay(c Consumer) error {
	for {
		ev, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		c.Event(ev)
	}
}
