package trace

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"cgp/internal/isa"
	"cgp/internal/program"
)

// recordTestEvents synthesizes a stream long enough to span several
// chunks when recorded with a small chunk size.
func recordTestEvents(n int) []Event {
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0:
			evs = append(evs, Event{Kind: KindRun, Addr: isa.Addr(0x400000 + i*32), N: int32(1 + i%40)})
		case 1:
			evs = append(evs, Event{Kind: KindCall, Addr: isa.Addr(0x400100 + i*8),
				Target: isa.Addr(0x500000 + i*64), CallerStart: 0x400000,
				Fn: program.FuncID(i % 97), Caller: program.FuncID(i % 31)})
		case 2:
			evs = append(evs, Event{Kind: KindBranch, Addr: isa.Addr(0x400200 + i*4),
				Target: isa.Addr(0x400000), Taken: i%2 == 0})
		case 3:
			evs = append(evs, Event{Kind: KindLoop, Addr: isa.Addr(0x400300), N: 12, Iters: int32(i%9 + 1)})
		default:
			evs = append(evs, Event{Kind: KindReturn, Addr: isa.Addr(0x500000 + i*64),
				Target: 0x400104, CallerStart: 0x400000,
				Fn: program.FuncID(i % 97), Caller: program.FuncID(i % 31)})
		}
	}
	return evs
}

func TestRecordingRoundTrip(t *testing.T) {
	evs := recordTestEvents(10000)
	r := NewRecorder()
	for _, ev := range evs {
		r.Event(ev)
	}
	rec, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Events() != int64(len(evs)) {
		t.Fatalf("Events() = %d, want %d", rec.Events(), len(evs))
	}
	var got Capture
	if err := rec.Replay(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, evs) {
		t.Fatal("replayed events differ from recorded events")
	}

	// The recorded stats must match a Stats consumer fed directly.
	var direct Stats
	for _, ev := range evs {
		direct.Event(ev)
	}
	if rec.Stats != direct {
		t.Errorf("recorded stats %+v differ from direct stats %+v", rec.Stats, direct)
	}
}

// TestRecordingChunkBoundaries forces tiny chunks so events span chunk
// boundaries, and checks the stream still decodes exactly.
func TestRecordingChunkBoundaries(t *testing.T) {
	evs := recordTestEvents(500)
	buf := newChunkBuffer(13) // adversarial: smaller than one encoded event
	w, err := NewWriter(buf)
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	for _, ev := range evs {
		stats.Event(ev)
		w.Event(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rec := &Recording{buf: buf, Stats: stats}
	var got Capture
	if err := rec.Replay(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, evs) {
		t.Fatal("chunk-boundary replay differs")
	}
}

// TestRecordingConcurrentReplay replays one recording from several
// goroutines at once; each must see the full stream (run with -race).
func TestRecordingConcurrentReplay(t *testing.T) {
	evs := recordTestEvents(3000)
	r := NewRecorder()
	for _, ev := range evs {
		r.Event(ev)
	}
	rec, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	counts := make([]int64, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var s Stats
			errs[i] = rec.Replay(&s)
			counts[i] = s.Events
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if counts[i] != int64(len(evs)) {
			t.Errorf("replay %d saw %d events, want %d", i, counts[i], len(evs))
		}
	}
}

// TestRecordingWriteTo checks that the raw bytes are codec-compatible.
func TestRecordingWriteTo(t *testing.T) {
	evs := recordTestEvents(200)
	r := NewRecorder()
	for _, ev := range evs {
		r.Event(ev)
	}
	rec, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := rec.WriteTo(&buf)
	if err != nil || n != rec.Bytes() {
		t.Fatalf("WriteTo = %d, %v; want %d bytes", n, err, rec.Bytes())
	}
	tr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Capture
	if err := tr.Replay(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, evs) {
		t.Fatal("WriteTo bytes decode differently")
	}
}
