package trace

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"cgp/internal/isa"
	"cgp/internal/program"
)

// recordTestEvents synthesizes a stream long enough to span several
// chunks when recorded with a small chunk size.
func recordTestEvents(n int) []Event {
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0:
			evs = append(evs, Event{Kind: KindRun, Addr: isa.Addr(0x400000 + i*32), N: int32(1 + i%40)})
		case 1:
			evs = append(evs, Event{Kind: KindCall, Addr: isa.Addr(0x400100 + i*8),
				Target: isa.Addr(0x500000 + i*64), CallerStart: 0x400000,
				Fn: program.FuncID(i % 97), Caller: program.FuncID(i % 31)})
		case 2:
			evs = append(evs, Event{Kind: KindBranch, Addr: isa.Addr(0x400200 + i*4),
				Target: isa.Addr(0x400000), Taken: i%2 == 0})
		case 3:
			evs = append(evs, Event{Kind: KindLoop, Addr: isa.Addr(0x400300), N: 12, Iters: int32(i%9 + 1)})
		default:
			evs = append(evs, Event{Kind: KindReturn, Addr: isa.Addr(0x500000 + i*64),
				Target: 0x400104, CallerStart: 0x400000,
				Fn: program.FuncID(i % 97), Caller: program.FuncID(i % 31)})
		}
	}
	return evs
}

func TestRecordingRoundTrip(t *testing.T) {
	evs := recordTestEvents(10000)
	r := NewRecorder()
	for _, ev := range evs {
		r.Event(ev)
	}
	rec, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Events() != int64(len(evs)) {
		t.Fatalf("Events() = %d, want %d", rec.Events(), len(evs))
	}
	var got Capture
	if err := rec.Replay(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, evs) {
		t.Fatal("replayed events differ from recorded events")
	}

	// The recorded stats must match a Stats consumer fed directly.
	var direct Stats
	for _, ev := range evs {
		direct.Event(ev)
	}
	if rec.Stats != direct {
		t.Errorf("recorded stats %+v differ from direct stats %+v", rec.Stats, direct)
	}
}

// TestRecordingChunkBoundaries forces tiny chunks so events span chunk
// boundaries, and checks the stream still decodes exactly.
func TestRecordingChunkBoundaries(t *testing.T) {
	evs := recordTestEvents(500)
	buf := newChunkBuffer(13) // adversarial: smaller than one encoded event
	w, err := NewWriter(buf)
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	for _, ev := range evs {
		stats.Event(ev)
		w.Event(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rec := &Recording{buf: buf, Stats: stats}
	var got Capture
	if err := rec.Replay(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, evs) {
		t.Fatal("chunk-boundary replay differs")
	}
}

// TestRecordingConcurrentReplay replays one recording from several
// goroutines at once; each must see the full stream (run with -race).
func TestRecordingConcurrentReplay(t *testing.T) {
	evs := recordTestEvents(3000)
	r := NewRecorder()
	for _, ev := range evs {
		r.Event(ev)
	}
	rec, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	counts := make([]int64, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var s Stats
			errs[i] = rec.Replay(&s)
			counts[i] = s.Events
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if counts[i] != int64(len(evs)) {
			t.Errorf("replay %d saw %d events, want %d", i, counts[i], len(evs))
		}
	}
}

// batchCapture implements BatchConsumer, recording both the events and
// the batch sizes the replayer delivered. It copies out of the batch
// slice, per the interface contract.
type batchCapture struct {
	events  []Event
	batches []int
	perEv   int // events delivered through Event instead of EventBatch
}

func (b *batchCapture) Event(ev Event) {
	b.events = append(b.events, ev)
	b.perEv++
}

func (b *batchCapture) EventBatch(evs []Event) {
	b.events = append(b.events, evs...)
	b.batches = append(b.batches, len(evs))
}

// TestReplayBatchDelivery: a BatchConsumer must receive the exact
// recorded stream through EventBatch alone, in full batches of
// replayBatch plus one final partial batch.
func TestReplayBatchDelivery(t *testing.T) {
	const n = 3*replayBatch + 17
	evs := recordTestEvents(n)
	r := NewRecorder()
	for _, ev := range evs {
		r.Event(ev)
	}
	rec, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var got batchCapture
	if err := rec.Replay(&got); err != nil {
		t.Fatal(err)
	}
	if got.perEv != 0 {
		t.Errorf("%d events arrived via Event; batch consumer must get batches only", got.perEv)
	}
	if !reflect.DeepEqual(got.events, evs) {
		t.Fatal("batched replay differs from recorded events")
	}
	want := []int{replayBatch, replayBatch, replayBatch, 17}
	if !reflect.DeepEqual(got.batches, want) {
		t.Errorf("batch sizes = %v, want %v", got.batches, want)
	}
}

// TestReplayBatchChunkBoundaries drives the batched decoder through the
// slow path: adversarially tiny chunks mean no record ever lies wholly
// inside one chunk.
func TestReplayBatchChunkBoundaries(t *testing.T) {
	evs := recordTestEvents(2*replayBatch + 3)
	buf := newChunkBuffer(13)
	w, err := NewWriter(buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		w.Event(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rec := &Recording{buf: buf}
	var got []Event
	if err := rec.ReplayBatch(func(b []Event) error { got = append(got, b...); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatal("chunk-straddling batched replay differs")
	}
}

// TestReplayAllMixedConsumers fans one decode pass out to batch-capable
// and plain consumers at once; each must see the full stream in order.
func TestReplayAllMixedConsumers(t *testing.T) {
	evs := recordTestEvents(replayBatch + 100)
	r := NewRecorder()
	for _, ev := range evs {
		r.Event(ev)
	}
	rec, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var batched batchCapture
	var plain Capture
	var stats Stats
	if err := rec.ReplayAll(&batched, &plain, &stats); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batched.events, evs) {
		t.Error("batch consumer missed events")
	}
	if !reflect.DeepEqual(plain.Events, evs) {
		t.Error("plain consumer missed events")
	}
	if stats.Events != int64(len(evs)) {
		t.Errorf("stats consumer saw %d events, want %d", stats.Events, len(evs))
	}
}

// TestReplayAllocsIndependentOfLength pins the reusable-buffer design:
// a Replay call allocates a fixed setup cost (the batch buffer and the
// dispatch closure), not per batch — so the count must not grow with
// the recording length.
func TestReplayAllocsIndependentOfLength(t *testing.T) {
	record := func(n int) *Recording {
		r := NewRecorder()
		for _, ev := range recordTestEvents(n) {
			r.Event(ev)
		}
		rec, err := r.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	small := record(replayBatch / 2)  // one partial batch
	large := record(64 * replayBatch) // many batches
	var sink batchCapture
	sink.events = make([]Event, 0, 64*replayBatch+1)
	sink.batches = make([]int, 0, 128)
	measure := func(rec *Recording) float64 {
		return testing.AllocsPerRun(10, func() {
			sink.events = sink.events[:0]
			sink.batches = sink.batches[:0]
			if err := rec.Replay(&sink); err != nil {
				t.Fatal(err)
			}
		})
	}
	a1, a2 := measure(small), measure(large)
	if a1 != a2 {
		t.Errorf("replay allocations scale with length: %v for %d events vs %v for %d",
			a1, small.Events(), a2, large.Events())
	}
	if a2 > 8 {
		t.Errorf("replay allocates %v times per call, want a small constant", a2)
	}
}

// TestRecordingWriteTo checks that the raw bytes are codec-compatible.
func TestRecordingWriteTo(t *testing.T) {
	evs := recordTestEvents(200)
	r := NewRecorder()
	for _, ev := range evs {
		r.Event(ev)
	}
	rec, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := rec.WriteTo(&buf)
	if err != nil || n != rec.Bytes() {
		t.Fatalf("WriteTo = %d, %v; want %d bytes", n, err, rec.Bytes())
	}
	tr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Capture
	if err := tr.Replay(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, evs) {
		t.Fatal("WriteTo bytes decode differently")
	}
}
