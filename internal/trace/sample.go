package trace

import (
	"sort"

	"cgp/internal/units"
)

// Sampled replay: walk a recording according to a span plan, decoding
// only the stretches a sampled simulation actually needs. Three tiers:
//
//   - SpanSkip stretches are not decoded at all. A lazily-built index
//     over the sealed recording (one position checkpoint every
//     skipIndexEvery events, with cumulative event/instruction counts)
//     lets the replayer jump near the end of a skip and decode only the
//     sub-checkpoint remainder. This tier is what makes ≥10x speedups
//     possible: decoding alone costs a substantial fraction of full
//     simulation, so a fast-forward that decodes everything cannot get
//     far past ~5x.
//   - SpanFunctionalWarm / SpanDetailWarm stretches are decoded and
//     delivered; the consumer warms architectural state (functionally
//     or in full detail) without measuring.
//   - SpanMeasure stretches are decoded, delivered, and measured.
//
// The plan is pure data (built by internal/sample from the recording's
// event count and the sampling config), so the same plan replays
// byte-identically regardless of worker count or resume path.

// SpanKind classifies a stretch of a sampled replay.
type SpanKind uint8

const (
	// SpanSkip is fast-forwarded without decoding; the consumer is told
	// only how many events and instructions went by.
	SpanSkip SpanKind = iota
	// SpanFunctionalWarm is decoded and delivered for functional
	// warming: architectural state updates without timing.
	SpanFunctionalWarm
	// SpanDetailWarm is decoded and delivered for detailed warm-up:
	// full timing simulation, but excluded from measurement.
	SpanDetailWarm
	// SpanMeasure is decoded, delivered and measured: the consumer
	// samples its counters over the span.
	SpanMeasure
)

// String returns a short mnemonic for k.
func (k SpanKind) String() string {
	switch k {
	case SpanSkip:
		return "skip"
	case SpanFunctionalWarm:
		return "fwarm"
	case SpanDetailWarm:
		return "warm"
	case SpanMeasure:
		return "measure"
	}
	return "?"
}

// Span is one stretch of a sampled replay plan: Events consecutive
// events handled as Kind.
type Span struct {
	Kind   SpanKind
	Events int64
}

// SampledConsumer is a BatchConsumer that can follow a sampled replay:
// BeginSpan announces the kind of every decoded span before its events
// arrive, and SkipSpan replaces the events of a skipped span with their
// aggregate counts. The CPU model implements it.
type SampledConsumer interface {
	BatchConsumer
	BeginSpan(kind SpanKind)
	SkipSpan(events int64, instrs units.Instrs)
}

// skipIndexEvery is the event spacing of skip-index checkpoints. At
// ~11 bytes/event a checkpoint every 4096 events indexes a 1 GiB trace
// in ~0.4 MB, and bounds the decoded remainder of any skip to under
// 4096 events.
const skipIndexEvery = 4096

// skipPoint is one skip-index checkpoint: the decoder position
// immediately after cumulative event number `events`, along with the
// cumulative instruction count up to that point.
type skipPoint struct {
	ci     int
	off    int
	events int64
	instrs int64
}

// skipIndex returns the recording's skip index, building it on first
// use (one decode pass over the stream, amortized across the many
// sampled replays of a memoized recording). Safe for concurrent use.
// A recording that fails to decode gets a nil index; ReplaySampled
// then surfaces the decode error on its own pass.
func (r *Recording) skipIndex() []skipPoint {
	r.idxOnce.Do(func() {
		d := chunkDecoder{b: r.buf}
		hdr := d.window(len(traceMagic))
		if len(hdr) < len(traceMagic) || [8]byte(hdr[:8]) != traceMagic {
			return
		}
		d.advance(len(traceMagic))
		pts := []skipPoint{{ci: d.ci, off: d.off}}
		var ev Event
		var events, instrs int64
		for {
			w := d.window(maxEventRecord)
			if len(w) == 0 {
				break
			}
			m, err := decodeEventInto(w, &ev)
			if err != nil {
				return
			}
			d.advance(m)
			events++
			instrs += int64(ev.Instructions())
			if events%skipIndexEvery == 0 {
				pts = append(pts, skipPoint{ci: d.ci, off: d.off, events: events, instrs: instrs})
			}
		}
		r.idx = pts
	})
	return r.idx
}

// ReplaySampled walks the recording according to spans, calling begin
// at the start of every decoded span, fn with each decoded batch, and
// skip once per skipped span with its aggregate event and instruction
// counts. Spans must be consecutive from the start of the stream; the
// replay stops at the end of the plan (internal/sample plans always
// cover the stream exactly). Any non-nil error from a callback aborts
// the replay and is returned as-is. Like ReplayBatch, the chunk
// checksums are re-verified before decoding.
func (r *Recording) ReplaySampled(spans []Span,
	begin func(SpanKind) error,
	fn func(evs []Event) error,
	skip func(events int64, instrs units.Instrs) error) error {
	if err := r.Verify(); err != nil {
		return err
	}
	idx := r.skipIndex()
	d := chunkDecoder{b: r.buf}
	hdr := d.window(len(traceMagic))
	if len(hdr) < len(traceMagic) || [8]byte(hdr[:8]) != traceMagic {
		return ErrBadMagic
	}
	d.advance(len(traceMagic))
	buf := make([]Event, replayBatch)
	var consumed, instrs int64
	for _, sp := range spans {
		if sp.Events <= 0 {
			continue
		}
		if sp.Kind == SpanSkip {
			target := consumed + sp.Events
			startEvents, startInstrs := consumed, instrs
			// Jump to the last checkpoint at or before the target,
			// provided it is ahead of the current position.
			if len(idx) > 0 {
				i := sort.Search(len(idx), func(i int) bool { return idx[i].events > target }) - 1
				if i >= 0 && idx[i].events > consumed {
					p := idx[i]
					d.ci, d.off = p.ci, p.off
					consumed, instrs = p.events, p.instrs
				}
			}
			// Decode the sub-checkpoint remainder, counting only
			// instructions.
			var ev Event
			for consumed < target {
				w := d.window(maxEventRecord)
				if len(w) == 0 {
					break // stream shorter than the plan: report what was skipped
				}
				m, err := decodeEventInto(w, &ev)
				if err != nil {
					return err
				}
				d.advance(m)
				consumed++
				instrs += int64(ev.Instructions())
			}
			if err := skip(consumed-startEvents, units.Instrs(instrs-startInstrs)); err != nil {
				return err
			}
			if consumed < target {
				return nil
			}
			continue
		}
		if err := begin(sp.Kind); err != nil {
			return err
		}
		remaining := sp.Events
		for remaining > 0 {
			want := replayBatch
			if remaining < int64(want) {
				want = int(remaining)
			}
			n := 0
			// Fast path: records lying wholly inside the current chunk.
			if d.ci < len(d.b.chunks) {
				chunk := d.b.chunks[d.ci]
				pos := d.off
				for pos+maxEventRecord <= len(chunk) && n < want {
					m, err := decodeEventInto(chunk[pos:], &buf[n])
					if err != nil {
						return err
					}
					pos += m
					n++
				}
				d.off = pos
			}
			// Slow path: one straddling or tail record at a time.
			for n < want {
				w := d.window(maxEventRecord)
				if len(w) == 0 {
					break
				}
				m, err := decodeEventInto(w, &buf[n])
				if err != nil {
					return err
				}
				d.advance(m)
				n++
				if d.ci < len(d.b.chunks) && d.off+maxEventRecord <= len(d.b.chunks[d.ci]) {
					break // back on a whole-chunk fast path
				}
			}
			if n == 0 {
				return nil // stream shorter than the plan
			}
			for i := 0; i < n; i++ {
				instrs += int64(buf[i].Instructions())
			}
			if err := fn(buf[:n]); err != nil {
				return err
			}
			remaining -= int64(n)
			consumed += int64(n)
		}
	}
	return nil
}

// ReplaySampledInto is the consumer-interface form of ReplaySampled.
func (r *Recording) ReplaySampledInto(spans []Span, c SampledConsumer) error {
	return r.ReplaySampled(spans,
		func(k SpanKind) error { c.BeginSpan(k); return nil },
		func(evs []Event) error { c.EventBatch(evs); return nil },
		func(events int64, instrs units.Instrs) error { c.SkipSpan(events, instrs); return nil })
}
