package trace

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"cgp/internal/isa"
	"cgp/internal/program"
)

func TestCodecRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: KindRun, Addr: 0x400000, N: 12, Fn: 3},
		{Kind: KindCall, Addr: 0x400030, Target: 0x401000, Fn: 4, Caller: 3, CallerStart: 0x400000},
		{Kind: KindBranch, Addr: 0x401010, Target: 0x401040, Taken: true, Fn: 4},
		{Kind: KindLoop, Addr: 0x401100, N: 24, Iters: 100, Fn: 4},
		{Kind: KindReturn, Addr: 0x401000, Target: 0x400034, Fn: 4, Caller: 3, CallerStart: 0x400000},
		{Kind: KindData, Addr: 0x40000000, N: 260, Taken: true},
		{Kind: KindSwitch, N: 2},
		{Kind: KindReturn, Fn: 0, Caller: program.NoFunc},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		w.Event(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if !reflect.DeepEqual(events, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", events, got)
	}
}

func TestCodecBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("notatrace..."))); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestCodecTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Event(Event{Kind: KindRun, Addr: 0x400000, N: 12})
	w.Flush()
	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("truncated record decoded without error")
	}
}

func TestReplay(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		w.Event(Event{Kind: KindRun, Addr: isa.Addr(0x400000 + i*32), N: 8})
	}
	w.Flush()
	r, _ := NewReader(&buf)
	var st Stats
	if err := r.Replay(&st); err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 80 {
		t.Errorf("replayed %d instructions, want 80", st.Instructions)
	}
}

// Property: any event with in-range fields round-trips exactly.
func TestCodecProperty(t *testing.T) {
	f := func(kind uint8, addr, target, cs uint32, n, iters int32, fn, caller int16, taken bool) bool {
		ev := Event{
			Kind:        Kind(kind % 7),
			Addr:        isa.Addr(addr),
			Target:      isa.Addr(target),
			CallerStart: isa.Addr(cs),
			N:           n,
			Iters:       iters,
			Fn:          program.FuncID(fn),
			Caller:      program.FuncID(caller),
			Taken:       taken,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		w.Event(ev)
		if w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Next()
		return err == nil && got == ev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Round-trip a real synthesized trace through the codec and verify a
// replayed CPU-visible stream is byte-identical.
func TestCodecFullTrace(t *testing.T) {
	img, ids := testImage()
	var direct Capture
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	drive(NewTracer(img, Tee(&direct, w), 11), ids)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var replayed Capture
	if err := r.Replay(&replayed); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Events, replayed.Events) {
		t.Fatal("replayed trace differs from live trace")
	}
}
