package trace

import (
	"errors"
	"testing"
)

// integrityRecording records n synthetic events through the real
// Recorder so the sealed checksums cover a realistic stream.
func integrityRecording(t *testing.T, n int) *Recording {
	t.Helper()
	rec := NewRecorder()
	for _, ev := range recordTestEvents(n) {
		rec.Event(ev)
	}
	rg, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return rg
}

func TestRecordingSealedWithChecksums(t *testing.T) {
	rg := integrityRecording(t, 1000)
	if rg.Version() != RecordingVersion {
		t.Fatalf("version = %d, want %d", rg.Version(), RecordingVersion)
	}
	if len(rg.sums) != len(rg.buf.chunks) {
		t.Fatalf("%d checksums for %d chunks", len(rg.sums), len(rg.buf.chunks))
	}
	if err := rg.Verify(); err != nil {
		t.Fatalf("fresh recording fails Verify: %v", err)
	}
	if err := rg.Replay(&Stats{}); err != nil {
		t.Fatalf("fresh recording fails Replay: %v", err)
	}
}

func TestCorruptByteDetectedOnReplay(t *testing.T) {
	for _, off := range []int64{0, 9, 100} {
		rg := integrityRecording(t, 2000)
		if !rg.CorruptByte(off, 0x40) {
			t.Fatalf("offset %d out of range", off)
		}
		var ce *CorruptionError
		if err := rg.Verify(); !errors.As(err, &ce) {
			t.Fatalf("Verify after flip at %d = %v, want *CorruptionError", off, err)
		} else if ce.Want == ce.Got {
			t.Fatalf("corruption error reports matching sums: %+v", ce)
		}
		if err := rg.Replay(&Stats{}); !errors.As(err, &ce) {
			t.Fatalf("Replay after flip at %d = %v, want *CorruptionError", off, err)
		}
		// Flipping the same bit back heals the recording.
		rg.CorruptByte(off, 0x40)
		if err := rg.Replay(&Stats{}); err != nil {
			t.Fatalf("healed recording fails Replay: %v", err)
		}
	}
}

func TestCorruptByteOutOfRange(t *testing.T) {
	rg := integrityRecording(t, 10)
	if rg.CorruptByte(rg.Bytes()+100, 1) {
		t.Fatal("CorruptByte accepted an out-of-range offset")
	}
	if err := rg.Verify(); err != nil {
		t.Fatalf("recording corrupted by out-of-range flip: %v", err)
	}
}

func TestCorruptionInLaterChunk(t *testing.T) {
	// Tiny chunks force a multi-chunk recording; corrupt the last one.
	buf := newChunkBuffer(64)
	w, err := NewWriter(buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range recordTestEvents(500) {
		w.Event(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rg := &Recording{buf: buf, version: RecordingVersion, sums: sealChecksums(buf)}
	if err := rg.Verify(); err != nil {
		t.Fatal(err)
	}
	rg.CorruptByte(rg.Bytes()-1, 0xff)
	var ce *CorruptionError
	if err := rg.Verify(); !errors.As(err, &ce) {
		t.Fatalf("Verify = %v, want *CorruptionError", err)
	}
	if ce.Chunk != len(buf.chunks)-1 {
		t.Fatalf("corruption attributed to chunk %d, want %d", ce.Chunk, len(buf.chunks)-1)
	}
	wantOff := rg.Bytes() - int64(len(buf.chunks[len(buf.chunks)-1]))
	if ce.Offset != wantOff {
		t.Fatalf("corruption offset %d, want %d", ce.Offset, wantOff)
	}
}

func TestPreFramingRecordingVerifiesVacuously(t *testing.T) {
	// A hand-built recording with no sums (version-1 shape) must still
	// replay: Verify has nothing to check against.
	buf := newChunkBuffer(0)
	w, err := NewWriter(buf)
	if err != nil {
		t.Fatal(err)
	}
	evs := recordTestEvents(50)
	for _, ev := range evs {
		w.Event(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rg := &Recording{buf: buf}
	var st Stats
	if err := rg.Replay(&st); err != nil {
		t.Fatal(err)
	}
	if st.Events != int64(len(evs)) {
		t.Fatalf("replayed %d events, want %d", st.Events, len(evs))
	}
}

func TestReplayBatchAbortsOnConsumerError(t *testing.T) {
	rg := integrityRecording(t, 3*replayBatch)
	sentinel := errors.New("stop")
	batches := 0
	err := rg.ReplayBatch(func(evs []Event) error {
		batches++
		if batches == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("ReplayBatch = %v, want sentinel", err)
	}
	if batches != 2 {
		t.Fatalf("fn called %d times after abort, want 2", batches)
	}
}
