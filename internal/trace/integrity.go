package trace

import (
	"fmt"
	"hash/crc32"
)

// Recording integrity framing.
//
// A sealed Recording carries a format version and one CRC-32C checksum
// per chunk, computed when Recorder.Finish seals the buffer. Every
// replay re-verifies the chunks it is about to decode, so a recording
// corrupted in memory (a stray write, a fault-injection test, future
// spill-to-disk bit rot) is detected as a typed *CorruptionError before
// the decoder can feed garbage events into a simulation. The runner
// treats corruption as transient: it evicts the recording from its
// cache and rebuilds it from source under a bounded retry budget.

// RecordingVersion is the integrity-framing format: bumped when the
// chunk layout or checksum algorithm changes. Version 1 recordings
// (pre-framing) had no checksums; Verify accepts them vacuously so old
// constructors keep working.
const RecordingVersion = 2

// crcTable is the Castagnoli polynomial, hardware-accelerated on every
// platform Go targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CorruptionError reports a chunk whose contents no longer match the
// checksum sealed at record time.
type CorruptionError struct {
	// Chunk is the index of the failing chunk.
	Chunk int
	// Offset is the byte offset of the chunk start within the stream.
	Offset int64
	// Want and Got are the sealed and recomputed CRC-32C sums.
	Want, Got uint32
}

// Error implements error.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("trace: recording corrupt: chunk %d (offset %d) crc %08x, sealed %08x",
		e.Chunk, e.Offset, e.Got, e.Want)
}

// seal computes the per-chunk checksums of a finished buffer.
func sealChecksums(b *chunkBuffer) []uint32 {
	sums := make([]uint32, len(b.chunks))
	for i, c := range b.chunks {
		sums[i] = crc32.Checksum(c, crcTable)
	}
	return sums
}

// Version returns the recording's integrity-framing version.
func (r *Recording) Version() int { return r.version }

// Verify recomputes every chunk checksum against the sums sealed at
// record time, returning a *CorruptionError for the first mismatch.
// It allocates nothing and costs one CRC pass over the encoded bytes —
// cheap next to the decode it guards.
//
//cgplint:coldpath one integrity scan per replay call, amortized across the whole stream; the CRC kernel is outside the per-event loop
func (r *Recording) Verify() error {
	if r.sums == nil {
		return nil // pre-framing recording: nothing to check against
	}
	var off int64
	for i, c := range r.buf.chunks {
		if got := crc32.Checksum(c, crcTable); got != r.sums[i] {
			return &CorruptionError{Chunk: i, Offset: off, Want: r.sums[i], Got: got}
		}
		off += int64(len(c))
	}
	return nil
}

// CorruptByte XORs mask into the byte at stream offset off without
// resealing the checksums, so the next Verify fails. It exists for
// fault-injection tests (internal/faultinject); production code never
// mutates a sealed recording. It reports whether off was in range (a
// zero mask is forced to a bit flip so the call always corrupts).
func (r *Recording) CorruptByte(off int64, mask byte) bool {
	if mask == 0 {
		mask = 1
	}
	for _, c := range r.buf.chunks {
		if off < int64(len(c)) {
			c[off] ^= mask
			return true
		}
		off -= int64(len(c))
	}
	return false
}
