// Package trace defines the dynamic side of a simulated program: the
// event stream a run produces (instruction runs, loops, branches, calls,
// returns and data references) and the Tracer used to instrument the
// database engine so that executing real queries synthesizes a fetch
// address stream for the cycle simulator.
//
// The stream plays the role of the instrumented Alpha binaries the paper
// fed to SimpleScalar: every event carries concrete addresses from a
// program.Image, so the consumer (the CPU model) sees exactly what a
// fetch unit would see.
package trace

import (
	"cgp/internal/isa"
	"cgp/internal/program"
	"cgp/internal/units"
)

// Kind discriminates trace events.
type Kind uint8

const (
	// KindRun is a sequential fetch of N instructions starting at Addr.
	KindRun Kind = iota
	// KindLoop is a compressed loop: a body of N instructions at Addr
	// executed Iters times (with a backward taken branch per iteration).
	KindLoop
	// KindBranch is a conditional branch at Addr with outcome Taken; if
	// taken, fetch continues at Target.
	KindBranch
	// KindCall is a function call: control transfers to Target (the
	// start of function Fn). Addr is the address of the call
	// instruction; Addr+isa.InstrBytes is the return address. Caller and
	// CallerStart identify the calling function.
	KindCall
	// KindReturn is a return from function Fn (whose start is Addr) back
	// to Target inside Caller (whose start is CallerStart).
	KindReturn
	// KindData is a data reference of N bytes at Addr; Taken doubles as
	// the "is write" flag.
	KindData
	// KindSwitch marks a context switch between query threads. Thread
	// is carried in N.
	KindSwitch

	// Probe-level kinds record the instrumentation seam itself (the
	// probe.Probe call sequence) instead of the synthesized
	// instruction stream. A live server captures at this level so the
	// recording stays layout-independent: replaying it through a
	// Tracer over any image (ReplayProbe) regenerates the exact
	// address-level stream that image's layout implies. Function IDs
	// and data addresses are layout-invariant; everything else is
	// synthesized at replay time.

	// KindProbeEnter records probe.Enter(Fn).
	KindProbeEnter
	// KindProbeExit records probe.Exit().
	KindProbeExit
	// KindProbeWork records probe.Work(N).
	KindProbeWork
	// KindProbeData records probe.Data(Addr, N, write); Taken doubles
	// as the "is write" flag, as in KindData.
	KindProbeData

	// KindQueryTag tags the probe batch that follows with the
	// originating query's wire-carried trace ID (carried in Addr). It
	// appears only in live captures of *tagged* traffic, immediately
	// after the batch's KindSwitch — untagged clients produce captures
	// without any tag events, byte-identical to pre-tracing captures.
	// Replay passes the tag through so per-query attribution can join
	// simulated prefetch benefit to the serving side's wall-clock
	// latency for the same trace ID.
	KindQueryTag
)

// String returns a short mnemonic for k.
func (k Kind) String() string {
	switch k {
	case KindRun:
		return "run"
	case KindLoop:
		return "loop"
	case KindBranch:
		return "br"
	case KindCall:
		return "call"
	case KindReturn:
		return "ret"
	case KindData:
		return "data"
	case KindSwitch:
		return "switch"
	case KindProbeEnter:
		return "penter"
	case KindProbeExit:
		return "pexit"
	case KindProbeWork:
		return "pwork"
	case KindProbeData:
		return "pdata"
	case KindQueryTag:
		return "qtag"
	}
	return "?"
}

// Event is one element of the dynamic trace. Field meaning depends on
// Kind; see the Kind constants.
type Event struct {
	Addr        isa.Addr
	Target      isa.Addr
	CallerStart isa.Addr
	N           int32
	Iters       int32
	Fn          program.FuncID
	Caller      program.FuncID
	Kind        Kind
	Taken       bool
}

// Instructions returns how many dynamic instructions the event accounts
// for (calls, returns and branches are single instructions already
// counted inside their surrounding runs).
func (e Event) Instructions() units.Instrs {
	switch e.Kind {
	case KindRun:
		return units.Instrs(e.N)
	case KindLoop:
		return units.Instrs(int64(e.N) * int64(e.Iters))
	}
	return 0
}

// Consumer receives a stream of events. Implementations must not retain
// the event past the call.
type Consumer interface {
	Event(ev Event)
}

// BatchConsumer is optionally implemented by Consumers that can accept
// a whole decoded batch at once. Replay detects it and hands over
// events replayBatch at a time, so the dynamic dispatch (and, for a
// fanout, the consumer loop) is paid once per batch instead of once
// per event. Semantics are unchanged: EventBatch(evs) must be exactly
// equivalent to calling Event on each element in order, and the
// consumer must not retain the slice past the call — the replayer
// reuses it for the next batch.
type BatchConsumer interface {
	Consumer
	EventBatch(evs []Event)
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc func(Event)

// Event implements Consumer.
func (f ConsumerFunc) Event(ev Event) { f(ev) }

// Tee returns a Consumer that forwards every event to each of cs.
func Tee(cs ...Consumer) Consumer {
	return ConsumerFunc(func(ev Event) {
		for _, c := range cs {
			c.Event(ev)
		}
	})
}

// Discard is a Consumer that drops all events.
var Discard Consumer = ConsumerFunc(func(Event) {})
