package trace

import (
	"reflect"
	"testing"

	"cgp/internal/program"
)

func TestSequenceProfileModal(t *testing.T) {
	p := NewSequenceProfile(8)
	// fn 1: slot 0 mostly calls 2, slot 1 always calls 3.
	p.Record(1, 0, 2)
	p.Record(1, 0, 2)
	p.Record(1, 0, 9)
	p.Record(1, 1, 3)
	if got := p.Sequence(1); !reflect.DeepEqual(got, []program.FuncID{2, 3}) {
		t.Errorf("sequence = %v", got)
	}
	if p.Len() != 1 {
		t.Errorf("len = %d", p.Len())
	}
}

func TestSequenceProfileSlotCap(t *testing.T) {
	p := NewSequenceProfile(2)
	p.Record(1, 0, 2)
	p.Record(1, 1, 3)
	p.Record(1, 2, 4) // dropped
	if got := p.Sequence(1); len(got) != 2 {
		t.Errorf("sequence = %v, want 2 slots", got)
	}
}

func TestSequenceCollectorTracksPositions(t *testing.T) {
	c := NewSequenceCollector(8)
	call := func(fn, caller program.FuncID) {
		c.Event(Event{Kind: KindCall, Fn: fn, Caller: caller})
	}
	ret := func(fn program.FuncID) {
		c.Event(Event{Kind: KindReturn, Fn: fn})
	}
	// main(0) calls a(1), a calls x(5), a returns, main calls b(2).
	call(0, program.NoFunc)
	call(1, 0)
	call(5, 1)
	ret(5)
	ret(1)
	call(2, 0)
	ret(2)
	ret(0)
	if got := c.Profile.Sequence(0); !reflect.DeepEqual(got, []program.FuncID{1, 2}) {
		t.Errorf("main sequence = %v", got)
	}
	if got := c.Profile.Sequence(1); !reflect.DeepEqual(got, []program.FuncID{5}) {
		t.Errorf("a sequence = %v", got)
	}
}

func TestSequenceCollectorPerThread(t *testing.T) {
	c := NewSequenceCollector(8)
	// Thread 0: fn 10 calls 11. Switch. Thread 1: fn 20 calls 21.
	c.Event(Event{Kind: KindCall, Fn: 10, Caller: program.NoFunc})
	c.Event(Event{Kind: KindSwitch, N: 1})
	c.Event(Event{Kind: KindCall, Fn: 20, Caller: program.NoFunc})
	c.Event(Event{Kind: KindCall, Fn: 21, Caller: 20})
	c.Event(Event{Kind: KindSwitch, N: 0})
	c.Event(Event{Kind: KindCall, Fn: 11, Caller: 10})
	// 11 must be recorded as 10's first call, NOT as 21's sibling.
	if got := c.Profile.Sequence(10); !reflect.DeepEqual(got, []program.FuncID{11}) {
		t.Errorf("thread-0 sequence = %v", got)
	}
	if got := c.Profile.Sequence(20); !reflect.DeepEqual(got, []program.FuncID{21}) {
		t.Errorf("thread-1 sequence = %v", got)
	}
}

func TestSequenceCollectorOnRealTrace(t *testing.T) {
	img, ids := testImage()
	c := NewSequenceCollector(8)
	drive(NewTracer(img, c, 7), ids)
	// "create" always calls find then lock (helpers absent in this
	// registry).
	got := c.Profile.Sequence(ids["create"])
	want := []program.FuncID{ids["find"], ids["lock"]}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("create sequence = %v, want %v", got, want)
	}
}
