package trace

import (
	"strings"
	"testing"

	"cgp/internal/isa"
	"cgp/internal/program"
)

// Query-tag handling in probe-level recordings: tags pass through
// replay verbatim, count in stats, keep the recording well-formed,
// and malformed tag placements are rejected.

// probeTagImage builds a minimal laid-out image for probe replay.
func probeTagImage() *program.Image {
	reg := program.NewRegistry()
	reg.Register("a", 400)
	reg.Register("b", 400)
	return program.LayoutO5(reg)
}

// recordProbe runs fn against a recorder and returns the sealed
// recording.
func recordProbe(t *testing.T, fn func(out Consumer)) *Recording {
	t.Helper()
	rec := NewRecorder()
	fn(rec)
	r, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestQueryTagPassthrough(t *testing.T) {
	const tagA, tagB = 0x700000001, 0x700000002
	rec := recordProbe(t, func(out Consumer) {
		for i, tag := range []uint64{tagA, tagB} {
			out.Event(Event{Kind: KindSwitch, N: int32(i)})
			out.Event(Event{Kind: KindQueryTag, Addr: isa.Addr(tag)})
			out.Event(Event{Kind: KindProbeEnter, Fn: 0})
			out.Event(Event{Kind: KindProbeWork, N: 40})
			out.Event(Event{Kind: KindProbeExit})
		}
	})
	if !IsProbeRecording(rec) {
		t.Fatalf("tagged capture not recognized as probe recording: %+v", rec.Stats)
	}
	if rec.Stats.QueryTags != 2 {
		t.Fatalf("stats count %d query tags, want 2", rec.Stats.QueryTags)
	}

	var got []uint64
	var st Stats
	if err := ReplayProbe(rec, probeTagImage(), Tee(&st, ConsumerFunc(func(ev Event) {
		if ev.Kind == KindQueryTag {
			got = append(got, uint64(ev.Addr))
		}
	})), 42); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != tagA || got[1] != tagB {
		t.Fatalf("replayed tags = %#x, want [%#x %#x]", got, tagA, tagB)
	}
	if st.Instructions == 0 {
		t.Fatal("tagged replay synthesized no instructions")
	}
}

func TestQueryTagBeforeSwitchRejected(t *testing.T) {
	rec := recordProbe(t, func(out Consumer) {
		out.Event(Event{Kind: KindQueryTag, Addr: 7})
		out.Event(Event{Kind: KindSwitch, N: 0})
		out.Event(Event{Kind: KindProbeEnter, Fn: 0})
		out.Event(Event{Kind: KindProbeExit})
	})
	err := ReplayProbe(rec, probeTagImage(), Discard, 42)
	if err == nil || !strings.Contains(err.Error(), "query tag before first session switch") {
		t.Fatalf("tag-before-switch error = %v", err)
	}
}

func TestQueryTagZeroIDRejected(t *testing.T) {
	rec := recordProbe(t, func(out Consumer) {
		out.Event(Event{Kind: KindSwitch, N: 0})
		out.Event(Event{Kind: KindQueryTag, Addr: 0})
		out.Event(Event{Kind: KindProbeEnter, Fn: 0})
		out.Event(Event{Kind: KindProbeExit})
	})
	err := ReplayProbe(rec, probeTagImage(), Discard, 42)
	if err == nil || !strings.Contains(err.Error(), "zero query trace ID") {
		t.Fatalf("zero-tag error = %v", err)
	}
}
