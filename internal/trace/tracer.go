package trace

import (
	"math/rand"

	"cgp/internal/isa"
	"cgp/internal/program"
	"cgp/internal/units"
)

// Tracer converts the instrumented execution of one logical thread into
// a trace-event stream. The database engine calls Enter/Exit around each
// instrumented function, Work for straight-line or loop-shaped local
// computation, and Data for memory references; the tracer fills in the
// instruction-level detail (runs, branch points, loop back-edges) from
// the function's body model in the active program.Image.
//
// The synthesis is deterministic: a fixed seed plus an identical call
// sequence yields an identical event stream, so two images (O5 vs OM) of
// the same run are directly comparable.
type Tracer struct {
	img *program.Image
	out Consumer
	rng *rand.Rand

	stack []frame

	// inHelper guards against helper calls emitting further helper
	// calls.
	inHelper bool

	// emitted counts dynamic instructions for quick sanity checks.
	emitted units.Instrs
	calls   int64
}

type frame struct {
	fn    program.FuncID
	place program.Placement
	// pos is the current instruction offset within the body.
	pos int
	// bodyInstr is the body length in instructions in this image.
	bodyInstr int
	// pathBase is the invocation-specific region of the body this
	// execution's control flow settles into. Different invocations take
	// different paths through a function (different predicates, case
	// arms, error checks), which is what gives real code its working-set
	// pressure; a fresh pathBase per invocation reproduces that.
	pathBase int
	// entryLen is the function's entry block (prologue + dispatch) in
	// instructions: always executed straight-line from offset 0, in any
	// layout. It is what a call-target prefetch can usefully cover.
	entryLen int
	// helpers is the function's private helper set (see
	// program.Registry.GenerateHelpers); helperIdx cycles through it in
	// a stable order, restarting each invocation.
	helpers   []program.FuncID
	helperIdx int
	// retTo is the return address recorded at call time.
	retTo isa.Addr
}

// NewTracer returns a tracer for one logical thread, emitting into out
// using the layout and branch behaviour of img. Each thread of a
// simulated workload gets its own tracer (own stack, own PRNG) over a
// shared consumer.
func NewTracer(img *program.Image, out Consumer, seed int64) *Tracer {
	return &Tracer{
		img: img,
		out: out,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Image returns the image the tracer synthesizes addresses from.
func (t *Tracer) Image() *program.Image { return t.img }

// Instructions returns the number of dynamic instructions emitted so far.
func (t *Tracer) Instructions() units.Instrs { return t.emitted }

// Calls returns the number of call events emitted so far.
func (t *Tracer) Calls() int64 { return t.calls }

// Depth returns the current call-stack depth.
func (t *Tracer) Depth() int { return len(t.stack) }

// curAddr returns the address of the instruction at the frame's position.
func (f *frame) curAddr() isa.Addr {
	return f.place.Start + isa.Addr(isa.InstrRangeBytes(f.pos))
}

// scale applies the image's dynamic-instruction scale factor.
func (t *Tracer) scale(n int) int {
	if t.img.InstrScale == 1.0 {
		return n
	}
	s := int(float64(n) * t.img.InstrScale)
	if s < 1 {
		s = 1
	}
	return s
}

// Enter records a call to fn: the caller advances to its next call site,
// a call event is emitted, and a new frame is pushed.
func (t *Tracer) Enter(fn program.FuncID) {
	place := t.img.Placement(fn)
	callerFn := program.NoFunc
	var callerStart isa.Addr
	var callPC isa.Addr
	if len(t.stack) > 0 {
		t.maybeHelperCall()
		parent := &t.stack[len(t.stack)-1]
		t.advance(parent, t.callGap(parent))
		callerFn = parent.fn
		callerStart = parent.place.Start
		callPC = parent.curAddr()
	}
	t.calls++
	t.out.Event(Event{
		Kind:        KindCall,
		Addr:        callPC,
		Target:      place.Start,
		Fn:          fn,
		Caller:      callerFn,
		CallerStart: callerStart,
	})
	body := place.SizeBytes / isa.InstrBytes
	entryLen := 24 + int(siteHash(uint64(fn), 1)%49)
	if entryLen > body/2 {
		entryLen = body / 2
	}
	pathBase := 0
	if body > 96 {
		pathBase = entryLen + t.rng.Intn(body-entryLen-body/8)
	}
	t.stack = append(t.stack, frame{
		fn:        fn,
		place:     place,
		bodyInstr: body,
		pathBase:  pathBase,
		entryLen:  entryLen,
		helpers:   t.img.Registry().Info(fn).Helpers,
		retTo:     callPC + isa.InstrBytes,
	})
}

// maybeHelperCall emits a call/return to the current frame's next
// helper function. Helpers cycle in a fixed order per invocation, so a
// function's call sequence repeats across invocations — the
// predictability §3.1 describes.
func (t *Tracer) maybeHelperCall() {
	if t.inHelper || len(t.stack) == 0 {
		return
	}
	f := &t.stack[len(t.stack)-1]
	if len(f.helpers) == 0 || t.rng.Float64() >= 0.55 {
		return
	}
	h := f.helpers[f.helperIdx%len(f.helpers)]
	f.helperIdx++
	work := 6 + t.rng.Intn(18)
	t.inHelper = true
	t.Enter(h)
	t.Work(work)
	t.Exit()
	t.inHelper = false
}

// Exit records the return from the current function: a short epilogue
// run is emitted, then the return event, and the frame is popped.
// Exit panics if no frame is active (an instrumentation bug).
func (t *Tracer) Exit() {
	if len(t.stack) == 0 {
		panic("trace: Exit with empty stack")
	}
	t.maybeHelperCall()
	f := &t.stack[len(t.stack)-1]
	t.advance(f, 3+t.rng.Intn(8))
	callerFn := program.NoFunc
	var callerStart isa.Addr
	if len(t.stack) > 1 {
		parent := &t.stack[len(t.stack)-2]
		callerFn = parent.fn
		callerStart = parent.place.Start
	}
	t.out.Event(Event{
		Kind:        KindReturn,
		Addr:        f.place.Start,
		Target:      f.retTo,
		Fn:          f.fn,
		Caller:      callerFn,
		CallerStart: callerStart,
	})
	t.stack = t.stack[:len(t.stack)-1]
}

// loopCompressThreshold is the Work size above which iterations are
// compressed into a single loop event instead of synthesized run by run.
const loopCompressThreshold = 96

// Work records n instructions of local computation in the current
// function. Small amounts are synthesized as straight-line runs with
// branch points; large amounts are compressed into a loop event (the
// same few cache lines executed repeatedly), which is both how such code
// behaves in an I-cache and cheap to simulate.
func (t *Tracer) Work(n int) {
	if len(t.stack) == 0 {
		panic("trace: Work with empty stack")
	}
	if n <= 0 {
		return
	}
	f := &t.stack[len(t.stack)-1]
	n = t.scale(n)
	if n >= loopCompressThreshold {
		body := 16 + t.rng.Intn(32)
		if body > f.bodyInstr {
			body = f.bodyInstr
		}
		iters := n / body
		rem := n - iters*body
		// Place the loop at the frame's current position, wrapped so the
		// whole body fits.
		if f.pos+body > f.bodyInstr {
			f.pos = t.wrapPoint(f)
			if f.pos+body > f.bodyInstr {
				f.pos = 0
			}
		}
		t.out.Event(Event{
			Kind:  KindLoop,
			Addr:  f.curAddr(),
			N:     int32(body),
			Iters: int32(iters),
			Fn:    f.fn,
		})
		t.emitted += units.Instrs(int64(body) * int64(iters))
		f.pos += body
		if rem > 0 {
			t.advanceScaled(f, rem)
		}
		return
	}
	t.advanceScaled(f, n)
}

// Data records a data reference of n bytes at addr. write marks stores.
func (t *Tracer) Data(addr isa.Addr, n int, write bool) {
	if n <= 0 {
		return
	}
	t.out.Event(Event{
		Kind:  KindData,
		Addr:  addr,
		N:     int32(n),
		Taken: write,
	})
}

// callGap draws the number of instructions executed in the caller before
// its next call site. Smaller functions have tighter call spacing.
func (t *Tracer) callGap(f *frame) int {
	span := f.bodyInstr / 4
	if span > 48 {
		span = 48
	}
	if span < 4 {
		span = 4
	}
	return 6 + t.rng.Intn(span)
}

// wrapPoint is where fetch resumes when the synthesized walk runs past
// the body: the top of this invocation's path region.
func (t *Tracer) wrapPoint(f *frame) int {
	if f.pathBase >= f.bodyInstr {
		return 0
	}
	return f.pathBase
}

// advance emits n instructions (after image scaling) of the frame's body
// as runs separated by branch points.
func (t *Tracer) advance(f *frame, n int) {
	t.advanceScaled(f, t.scale(n))
}

// advanceScaled emits exactly budget dynamic instructions.
func (t *Tracer) advanceScaled(f *frame, budget int) {
	for budget > 0 {
		if f.pos >= f.bodyInstr {
			f.pos = t.wrapPoint(f)
			if f.pos >= f.bodyInstr {
				f.pos = 0
			}
		}
		run := f.place.BranchEvery
		if run > budget {
			run = budget
		}
		if rem := f.bodyInstr - f.pos; run > rem {
			run = rem
		}
		if run <= 0 {
			run = 1
		}
		t.out.Event(Event{
			Kind: KindRun,
			Addr: f.curAddr(),
			N:    int32(run),
			Fn:   f.fn,
		})
		t.emitted += units.Instrs(run)
		f.pos += run
		budget -= run
		if budget <= 0 {
			break
		}
		// A conditional branch ends the run. Each static branch site has
		// a stable bias (most sites are strongly taken or strongly
		// not-taken), so the two-level predictor can learn it; the image's
		// TakenRate controls what fraction of sites are taken-biased,
		// which is how OM's straightening lowers the dynamic taken rate.
		//
		// The dispatch jump from the entry block into the invocation's
		// path region is different: it is the same control flow in every
		// layout (a switch arm or predicate outcome), so it ignores the
		// image's straightening. Within the entry block itself fetch is
		// straight-line in every layout.
		var taken bool
		switch {
		case f.pos < f.entryLen:
			taken = false
		case f.pos < f.pathBase:
			taken = t.rng.Float64() < 0.9
		default:
			// Long invocations move through several regions of the body
			// (loop bodies, case arms, cleanup blocks); the occasional
			// re-dispatch to a fresh region is the same control flow in
			// any layout.
			if f.bodyInstr > 96 && t.rng.Float64() < 0.08 {
				f.pathBase = f.entryLen + t.rng.Intn(f.bodyInstr-f.entryLen-f.bodyInstr/8)
				taken = true
			} else {
				taken = t.rng.Float64() < t.siteBias(f, f.pos)
			}
		}
		pc := f.place.Start + isa.Addr(isa.InstrRangeBytes(f.pos-1))
		var target isa.Addr
		if taken {
			f.pos = t.branchTarget(f)
			target = f.curAddr()
		}
		t.out.Event(Event{
			Kind:   KindBranch,
			Addr:   pc,
			Target: target,
			Taken:  taken,
			Fn:     f.fn,
		})
	}
}

// siteBias returns the taken probability of the static branch site at
// instruction offset pos of the frame's function. Sites are bimodal:
// a TakenRate-sized fraction are loop-edge-like (taken ~88% of the
// time); the rest are fall-through-biased (taken ~6%).
func (t *Tracer) siteBias(f *frame, pos int) float64 {
	h := siteHash(uint64(f.fn), uint64(pos))
	if float64(h%1024)/1024 < f.place.TakenRate {
		return 0.88
	}
	return 0.06
}

// siteHash mixes a function ID and offset into a stable pseudo-random
// value, independent of layout so the two images see the same sites.
func siteHash(fn, pos uint64) uint64 {
	x := fn*0x9E3779B97F4A7C15 ^ pos*0xBF58476D1CE4E5B9
	x ^= x >> 31
	x *= 0x94D049BB133111EB
	x ^= x >> 29
	return x
}

// branchTarget picks where a taken intra-function branch lands. The
// first taken branch of an invocation jumps from the entry block into
// the invocation's path region; after that, mostly short forward skips
// with occasional backward loop edges.
func (t *Tracer) branchTarget(f *frame) int {
	if f.pos < f.pathBase {
		// Dispatch from the entry block (or an earlier region) into
		// this invocation's path.
		span := 48
		if rem := f.bodyInstr - f.pathBase; span > rem {
			span = rem
		}
		if span < 1 {
			span = 1
		}
		return f.pathBase + t.rng.Intn(span)
	}
	if t.rng.Float64() < 0.35 {
		// Backward: loop edge within the path region.
		back := 4 + t.rng.Intn(24)
		pos := f.pos - back
		if pos < f.pathBase {
			pos = f.pathBase
		}
		return pos
	}
	fwd := 2 + t.rng.Intn(16)
	pos := f.pos + fwd
	if pos >= f.bodyInstr {
		pos = t.wrapPoint(f)
	}
	return pos
}

// Region is a convenience for instrumenting a function with a single
// statement:
//
//	defer tr.Region(fnCreateRec)()
type Region func()

// Region enters fn and returns the matching Exit.
func (t *Tracer) Region(fn program.FuncID) Region {
	t.Enter(fn)
	return t.Exit
}
