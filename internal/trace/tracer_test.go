package trace

import (
	"reflect"
	"testing"

	"cgp/internal/isa"
	"cgp/internal/program"
)

func testImage() (*program.Image, map[string]program.FuncID) {
	reg := program.NewRegistry()
	ids := map[string]program.FuncID{
		"main":   reg.Register("main", 800),
		"create": reg.Register("create", 600),
		"find":   reg.Register("find", 400),
		"lock":   reg.Register("lock", 200),
	}
	return program.LayoutO5(reg), ids
}

// drive replays a fixed instrumented execution.
func drive(tr *Tracer, ids map[string]program.FuncID) {
	tr.Enter(ids["main"])
	for i := 0; i < 10; i++ {
		tr.Enter(ids["create"])
		tr.Enter(ids["find"])
		tr.Work(30)
		tr.Exit()
		tr.Enter(ids["lock"])
		tr.Exit()
		tr.Work(200)
		tr.Exit()
	}
	tr.Exit()
}

func TestDeterminism(t *testing.T) {
	img, ids := testImage()
	var a, b Capture
	drive(NewTracer(img, &a, 7), ids)
	drive(NewTracer(img, &b, 7), ids)
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("same seed and call sequence produced different traces")
	}
	var c Capture
	drive(NewTracer(img, &c, 8), ids)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestAddressesWithinFunctionBounds(t *testing.T) {
	img, ids := testImage()
	var rec Capture
	drive(NewTracer(img, &rec, 3), ids)
	for _, ev := range rec.Events {
		switch ev.Kind {
		case KindRun, KindLoop:
			p := img.Placement(ev.Fn)
			n := int(ev.N)
			lo, hi := p.Start, p.End()
			if ev.Addr < lo || ev.Addr+isa.Addr(isa.InstrRangeBytes(n)) > hi {
				t.Fatalf("%s event [%#x,+%d instr) outside %s [%#x,%#x)",
					ev.Kind, ev.Addr, n, img.Registry().Name(ev.Fn), lo, hi)
			}
		case KindCall:
			if ev.Target != img.Start(ev.Fn) {
				t.Fatalf("call target %#x != start of %s", ev.Target, img.Registry().Name(ev.Fn))
			}
		}
	}
}

func TestCallReturnPairing(t *testing.T) {
	img, ids := testImage()
	var rec Capture
	tr := NewTracer(img, &rec, 3)
	drive(tr, ids)
	if tr.Depth() != 0 {
		t.Fatalf("stack depth %d after balanced drive", tr.Depth())
	}
	var stack []program.FuncID
	for _, ev := range rec.Events {
		switch ev.Kind {
		case KindCall:
			stack = append(stack, ev.Fn)
		case KindReturn:
			if len(stack) == 0 {
				t.Fatal("return with empty stack")
			}
			top := stack[len(stack)-1]
			if ev.Fn != top {
				t.Fatalf("return from %v, stack top %v", ev.Fn, top)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		t.Fatalf("%d unmatched calls", len(stack))
	}
}

func TestReturnCarriesCallerStart(t *testing.T) {
	img, ids := testImage()
	var rec Capture
	drive(NewTracer(img, &rec, 3), ids)
	for _, ev := range rec.Events {
		if ev.Kind == KindReturn && ev.Caller != program.NoFunc {
			if ev.CallerStart != img.Start(ev.Caller) {
				t.Fatalf("return caller start %#x != start of %v", ev.CallerStart, ev.Caller)
			}
		}
	}
}

func TestInstructionAccounting(t *testing.T) {
	img, ids := testImage()
	var st Stats
	tr := NewTracer(img, &st, 3)
	drive(tr, ids)
	if st.Instructions != tr.Instructions() {
		t.Errorf("stats %d != tracer %d instructions", st.Instructions, tr.Instructions())
	}
	if st.Calls != tr.Calls() || st.Calls != st.Returns {
		t.Errorf("calls %d, returns %d", st.Calls, st.Returns)
	}
	// 10 iterations × (create+find+lock) + main = 31 calls.
	if st.Calls != 31 {
		t.Errorf("calls = %d, want 31", st.Calls)
	}
	// Work(200) loops are compressed.
	if st.Loops == 0 {
		t.Error("no loop events for Work(200)")
	}
}

func TestInstrScaleReducesDynamicInstructions(t *testing.T) {
	reg := program.NewRegistry()
	ids := map[string]program.FuncID{
		"main":   reg.Register("main", 800),
		"create": reg.Register("create", 600),
		"find":   reg.Register("find", 400),
		"lock":   reg.Register("lock", 200),
	}
	prof := program.NewProfile()
	prof.AddCall(ids["main"], ids["create"])
	o5 := program.LayoutO5(reg)
	om := program.LayoutOM(reg, prof)

	var s5, sm Stats
	drive(NewTracer(o5, &s5, 3), ids)
	drive(NewTracer(om, &sm, 3), ids)
	ratio := float64(sm.Instructions) / float64(s5.Instructions)
	if ratio < 0.80 || ratio > 0.95 {
		t.Errorf("OM/O5 instruction ratio %.3f, want ~0.88", ratio)
	}
	// Straightening: fewer taken branches per instruction under OM.
	r5 := float64(s5.TakenBrs) / float64(s5.Instructions)
	rm := float64(sm.TakenBrs) / float64(sm.Instructions)
	if rm >= r5 {
		t.Errorf("OM taken-branch rate %.4f not below O5's %.4f", rm, r5)
	}
}

func TestHelperCyclingIsStable(t *testing.T) {
	reg := program.NewRegistry()
	parent := reg.Register("parent", 2000)
	callee := reg.Register("callee", 200)
	reg.GenerateHelpers(400, 700, 48, 200)
	img := program.LayoutO5(reg)
	helpers := reg.Info(parent).Helpers
	if len(helpers) < 2 {
		t.Skip("need at least 2 helpers")
	}

	sequence := func(seed int64) []program.FuncID {
		var rec Capture
		tr := NewTracer(img, &rec, seed)
		tr.Enter(parent)
		for i := 0; i < 12; i++ {
			tr.Enter(callee)
			tr.Exit()
		}
		tr.Exit()
		var calls []program.FuncID
		for _, ev := range rec.Events {
			if ev.Kind == KindCall && ev.Caller == parent {
				isHelper := false
				for _, h := range helpers {
					if ev.Fn == h {
						isHelper = true
					}
				}
				if isHelper {
					calls = append(calls, ev.Fn)
				}
			}
		}
		return calls
	}
	calls := sequence(5)
	if len(calls) < 2 {
		t.Skip("not enough helper calls fired")
	}
	// Helpers appear in cycling order: h0, h1, h2, ... (possibly
	// skipping none since the index advances only when a helper fires).
	for i, c := range calls {
		want := helpers[i%len(helpers)]
		if c != want {
			t.Fatalf("helper call %d = %v, want %v (stable cycling)", i, c, want)
		}
	}
}

func TestExitUnderflowPanics(t *testing.T) {
	img, _ := testImage()
	tr := NewTracer(img, Discard, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on Exit with empty stack")
		}
	}()
	tr.Exit()
}

func TestWorkWithoutFramePanics(t *testing.T) {
	img, _ := testImage()
	tr := NewTracer(img, Discard, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on Work with empty stack")
		}
	}()
	tr.Work(10)
}

func TestTeeAndDiscard(t *testing.T) {
	var a, b Capture
	tee := Tee(&a, &b)
	tee.Event(Event{Kind: KindRun, N: 5})
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Error("tee did not fan out")
	}
	Discard.Event(Event{}) // must not panic
}

func TestEventInstructions(t *testing.T) {
	if got := (Event{Kind: KindRun, N: 7}).Instructions(); got != 7 {
		t.Errorf("run instructions = %d", got)
	}
	if got := (Event{Kind: KindLoop, N: 10, Iters: 5}).Instructions(); got != 50 {
		t.Errorf("loop instructions = %d", got)
	}
	if got := (Event{Kind: KindCall}).Instructions(); got != 0 {
		t.Errorf("call instructions = %d", got)
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindRun: "run", KindLoop: "loop", KindBranch: "br", KindCall: "call",
		KindReturn: "ret", KindData: "data", KindSwitch: "switch", Kind(99): "?",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
