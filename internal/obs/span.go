package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"cgp/internal/units"
)

// Span is one timed harness phase (record, replay, run, checkpoint,
// verify) in flight. Spans belong to the wall-clock domain: they
// describe what the host spent its time on, not what the simulated
// machine did. A nil *Span absorbs all operations, so call sites need
// no enabled-checks.
type Span struct {
	rec   *SpanRecorder
	name  string
	cat   string
	start units.WallNanos
	args  [][2]string
}

// Arg attaches a key/value annotation shown in the trace viewer's
// detail pane. It returns the span for chaining.
func (s *Span) Arg(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.args = append(s.args, [2]string{key, value})
	return s
}

// End closes the span and files it with the recorder.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.finish(spanRecord{
		name:  s.name,
		cat:   s.cat,
		start: s.start,
		dur:   nowWall() - s.start,
		args:  s.args,
	})
}

type spanRecord struct {
	name  string
	cat   string
	start units.WallNanos
	dur   units.WallNanos
	args  [][2]string
}

// SpanRecorder collects finished spans for export as Chrome
// trace-event JSON. It is safe for concurrent use from campaign
// workers. A nil *SpanRecorder hands out nil spans.
type SpanRecorder struct {
	mu     sync.Mutex
	worker string
	done   []spanRecord
}

// SetWorker sets the campaign worker id stamped as a "worker" arg on
// every span this recorder exports (the default is DefaultWorker).
func (r *SpanRecorder) SetWorker(id string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.worker = id
	r.mu.Unlock()
}

// NewSpanRecorder returns an empty recorder.
func NewSpanRecorder() *SpanRecorder {
	return &SpanRecorder{}
}

// Start opens a span named name in category cat. The returned span
// must be closed with End; an unclosed span is simply dropped.
func (r *SpanRecorder) Start(name, cat string) *Span {
	if r == nil {
		return nil
	}
	return &Span{rec: r, name: name, cat: cat, start: nowWall()}
}

func (r *SpanRecorder) finish(rec spanRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.done = append(r.done, rec)
	r.mu.Unlock()
}

// Len returns the number of finished spans.
func (r *SpanRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.done)
}

// chromeEvent is one Chrome trace-event ("X" = complete event). Field
// order matters only for readability; Perfetto and chrome://tracing
// key on the JSON names.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON object format Perfetto loads directly.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports all finished spans as Chrome trace-event
// JSON (the "JSON object format": {"traceEvents": [...]}). Open the
// file in Perfetto (ui.perfetto.dev) or chrome://tracing. Concurrent
// spans are assigned to lanes ("tid" rows) by greedy interval
// packing, so the campaign's parallel schedule reads directly off the
// timeline: overlapping record/run/replay spans stack on separate
// rows, and singleflight coalescing shows up as replay spans riding a
// single record span.
func (r *SpanRecorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	r.mu.Lock()
	records := append([]spanRecord(nil), r.done...)
	worker := r.worker
	r.mu.Unlock()
	if worker == "" {
		worker = DefaultWorker
	}

	sort.SliceStable(records, func(i, j int) bool {
		if records[i].start != records[j].start {
			return records[i].start < records[j].start
		}
		return records[i].name < records[j].name
	})

	// Greedy interval packing: each span lands on the first lane that
	// is free by its start time. Lane ends are kept sorted implicitly
	// by scanning in order.
	var laneEnds []units.WallNanos
	events := make([]chromeEvent, 0, len(records))
	for _, rec := range records {
		lane := -1
		for i, end := range laneEnds {
			if end <= rec.start {
				lane = i
				break
			}
		}
		if lane == -1 {
			lane = len(laneEnds)
			laneEnds = append(laneEnds, 0)
		}
		laneEnds[lane] = rec.start + rec.dur

		ev := chromeEvent{
			Name: rec.name,
			Cat:  rec.cat,
			Ph:   "X",
			Ts:   wallInt(rec.start) / 1000, // µs
			Dur:  wallInt(rec.dur) / 1000,   // µs
			Pid:  1,
			Tid:  lane + 1,
		}
		ev.Args = make(map[string]string, len(rec.args)+1)
		for _, kv := range rec.args {
			ev.Args[kv[0]] = kv[1]
		}
		// Default worker tag; a span that set its own (a coordinator
		// span describing a specific worker's lifetime) keeps it.
		if _, ok := ev.Args["worker"]; !ok {
			ev.Args["worker"] = worker
		}
		events = append(events, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ValidateChromeTrace checks that data is well-formed Chrome
// trace-event JSON as this package emits it: the JSON object format
// with a traceEvents array of complete ("X") events carrying the
// fields Perfetto requires. It is used by the CI observability job
// and the package tests to keep the export loadable.
func ValidateChromeTrace(data []byte) error {
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		return fmt.Errorf("trace is not valid JSON: %w", err)
	}
	if trace.TraceEvents == nil {
		return fmt.Errorf("trace has no traceEvents array")
	}
	for i, ev := range trace.TraceEvents {
		name, _ := ev["name"].(string)
		if name == "" {
			return fmt.Errorf("trace event %d: missing name", i)
		}
		if ph, _ := ev["ph"].(string); ph != "X" {
			return fmt.Errorf("trace event %d (%s): ph %q, want complete event \"X\"", i, name, ph)
		}
		for _, field := range []string{"ts", "dur", "pid", "tid"} {
			v, ok := ev[field].(float64)
			if !ok {
				return fmt.Errorf("trace event %d (%s): missing numeric %s", i, name, field)
			}
			if v < 0 {
				return fmt.Errorf("trace event %d (%s): negative %s", i, name, field)
			}
		}
	}
	return nil
}
