// Package obs is the simulator's observability layer: metrics, harness
// spans, a structured run log and live introspection, split across two
// strictly separated domains.
//
// The deterministic domain (Registry) holds values derived only from
// simulated state — cycle counts, instruction counts, prefetch
// counters, per-job simulation results. These are byte-identical across
// re-runs, across replay vs re-execution, and across parallel vs
// sequential campaigns, so they may appear in reports and figures.
//
// The wall-clock domain (WallRegistry, SpanRecorder, RunLog) holds host
// facts — phase durations, scheduling order, checkpoint hits, retry
// counts. These vary run to run and are quarantined from report bodies
// the same way cmd/experiments' -timing flag already is: wall values
// are typed units.WallNanos, and the cgplint detrand/cyclesafe passes
// flag wall values crossing into deterministic output (see
// internal/units).
//
// Everything in this package is nil-safe: a nil *Observability (or any
// nil component) turns every hook into a no-op, so instrumented code
// carries no conditionals and disabled observability costs one nil
// check per hook. Hot-path simulation code does not use this package at
// all — per-function attribution lives inside internal/cpu and is
// exported into the deterministic registry after a run finishes.
package obs

import "io"

// Observability bundles the layer's components. Any field may be nil
// to disable that component; the helper methods below (and every
// component method) tolerate a nil receiver.
type Observability struct {
	// Det is the deterministic-domain metric registry.
	Det *Registry
	// Wall is the wall-clock-domain metric registry.
	Wall *WallRegistry
	// Spans records harness phase spans for Chrome trace export.
	Spans *SpanRecorder
	// Log receives structured job lifecycle events as JSONL.
	Log *RunLog
	// Progress tracks live per-job state for the /progress endpoint.
	Progress *Progress

	// worker is the campaign worker id SetWorker installed, remembered
	// so a log attached later inherits it.
	worker string
}

// New returns an Observability with every component enabled except the
// run log, which needs a destination (attach one with AttachLog).
func New() *Observability {
	return &Observability{
		Det:      NewRegistry(),
		Wall:     NewWallRegistry(),
		Spans:    NewSpanRecorder(),
		Progress: NewProgress(),
	}
}

// AttachLog directs job lifecycle events to a JSONL run log writing
// to w. It returns o for chaining and is a no-op on a nil receiver.
// A worker id previously set with SetWorker carries over to the new
// log.
func (o *Observability) AttachLog(w io.Writer) *Observability {
	if o == nil {
		return nil
	}
	o.Log = NewRunLog(w)
	o.Log.SetWorker(o.worker)
	return o
}

// SetWorker tags this process's observability output with a campaign
// worker id: run-log entries carry it in their worker field and every
// exported Chrome trace span gets a "worker" arg. Single-process
// campaigns keep the default ("main"); sharded campaign workers are
// "w1".."wN". It returns o for chaining and is a no-op on a nil
// receiver.
func (o *Observability) SetWorker(id string) *Observability {
	if o == nil {
		return nil
	}
	o.worker = id
	o.Log.SetWorker(id)
	o.Spans.SetWorker(id)
	return o
}

// Span starts a named span in category cat, or returns nil when spans
// are disabled. Always safe: Span(...).End() on a disabled recorder is
// a no-op.
func (o *Observability) Span(name, cat string) *Span {
	if o == nil {
		return nil
	}
	return o.Spans.Start(name, cat)
}

// Job emits one job lifecycle event to the run log and the progress
// tracker.
func (o *Observability) Job(state JobState, workload, config, detail string) {
	if o == nil {
		return
	}
	o.Log.Emit(state, workload, config, detail)
	o.Progress.Update(state, workload, config)
}
