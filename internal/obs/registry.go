package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing deterministic-domain metric.
// Its value is derived only from simulated state, so it is identical
// across re-runs, replay, and any worker count. A nil *Counter absorbs
// all operations.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. It is a deterministic sink: the
// walltaint pass proves no wall-clock-derived value reaches n.
//
//cgplint:detsink
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a deterministic-domain metric holding the most recent value
// of some simulated quantity. A nil *Gauge absorbs all operations.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value. It is a deterministic sink: the
// walltaint pass proves no wall-clock-derived value reaches n.
//
//cgplint:detsink
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two buckets a Histogram keeps:
// bucket i counts observations v with bits.Len64(v) == i, i.e. bucket 0
// holds zeros and bucket i≥1 holds v in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a deterministic-domain power-of-two histogram for
// non-negative simulated quantities (cycle distances, run lengths).
// Buckets are fixed-size, so observing never allocates. A nil
// *Histogram absorbs all operations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values are clamped to zero. It
// is a deterministic sink: the walltaint pass proves no
// wall-clock-derived value reaches v.
//
//cgplint:detsink
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket returns the count in power-of-two bucket i (see histBuckets).
func (h *Histogram) Bucket(i int) int64 {
	if h == nil || i < 0 || i >= histBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// Registry is the deterministic-domain metric registry. Metrics are
// created lazily by name and live for the registry's lifetime; the
// text exposition is emitted in sorted name order so it is itself
// deterministic. A nil *Registry hands out nil metrics, which absorb
// all operations.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty deterministic-domain registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// WriteText writes the registry in a plain text exposition format, one
// `name value` line per metric, sorted by name. Histograms expand to
// `name_count`, `name_sum` and one `name_bucket_le_2e<i>` line per
// non-empty bucket.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+4*len(r.hists))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, g.Value()))
	}
	for name, h := range r.hists {
		lines = append(lines, fmt.Sprintf("%s_count %d", name, h.Count()))
		lines = append(lines, fmt.Sprintf("%s_sum %d", name, h.Sum()))
		for i := 0; i < histBuckets; i++ {
			if n := h.Bucket(i); n != 0 {
				lines = append(lines, fmt.Sprintf("%s_bucket_le_2e%02d %d", name, i, n))
			}
		}
	}
	r.mu.Unlock()
	sort.Strings(lines)
	for _, line := range lines {
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return err
		}
	}
	return nil
}
