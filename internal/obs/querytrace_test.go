package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"cgp/internal/units"
)

// endSpan runs one synthetic query through a tracer: fixed stage
// durations, then End with the given status.
func endSpan(t *QueryTracer, ct *ConnTrace, id uint64, status string, stages map[QueryStage]units.WallNanos) {
	sp := t.Begin(ct, id, "test", true)
	for st, d := range stages {
		sp.Stage(st, d)
	}
	sp.End(status)
}

func TestQueryTracerSlowLogAndReservoir(t *testing.T) {
	var log bytes.Buffer
	tr := NewQueryTracer(QueryTraceOptions{
		SlowThreshold: time.Millisecond,
		LogW:          &log,
		Reservoir:     2,
	})
	ct := tr.Conn()
	// Fast queries: reservoir-sampled at Close, not logged inline.
	for i := uint64(1); i <= 5; i++ {
		endSpan(tr, ct, i, StatusOK, map[QueryStage]units.WallNanos{StageExecute: 100})
	}
	// Spans whose accumulated total crosses the threshold stream out
	// immediately. Total is measured wall time, not stage sums, so make
	// the span actually take that long is flaky — instead drop the
	// threshold to zero for the slow tracer below.
	ct.Close()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ValidateQueryLog(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Only the reservoir (2 of 5 normal spans) reached the log.
	if len(entries) != 2 {
		t.Fatalf("log has %d entries, want 2 (reservoir)", len(entries))
	}
	for _, e := range entries {
		if e.Slow {
			t.Fatalf("reservoir entry %s marked slow", e.TraceID)
		}
	}
	if tr.Traced() != 5 || tr.Slow() != 0 {
		t.Fatalf("traced=%d slow=%d, want 5/0", tr.Traced(), tr.Slow())
	}
}

func TestQueryTracerZeroThresholdLogsEverything(t *testing.T) {
	var log bytes.Buffer
	tr := NewQueryTracer(QueryTraceOptions{SlowThreshold: 0, LogW: &log})
	ct := tr.Conn()
	for i := uint64(1); i <= 3; i++ {
		endSpan(tr, ct, i, StatusOK, map[QueryStage]units.WallNanos{
			StagePrep:  50,
			StageDrain: 500,
		})
	}
	ct.Close()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ValidateQueryLog(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("log has %d entries, want 3", len(entries))
	}
	ids := map[uint64]bool{}
	for _, e := range entries {
		if !e.Slow {
			t.Fatalf("zero-threshold entry %s not marked slow", e.TraceID)
		}
		if e.Stages["prep"] != 50 || e.Stages["drain"] != 500 {
			t.Fatalf("entry %s stages = %v", e.TraceID, e.Stages)
		}
		ids[e.ID()] = true
	}
	if !ids[1] || !ids[2] || !ids[3] {
		t.Fatalf("log IDs = %v, want 1..3", ids)
	}
	if tr.Slow() != 3 {
		t.Fatalf("slow = %d, want 3", tr.Slow())
	}
}

func TestValidateQueryLogRejectsBadLines(t *testing.T) {
	for _, tc := range []struct {
		name, line string
	}{
		{"not json", "not json"},
		{"short id", `{"trace_id":"12ab","conn":"c","status":"ok","total_ns":1,"stages":{}}`},
		{"zero id", `{"trace_id":"0000000000000000","conn":"c","status":"ok","total_ns":1,"stages":{}}`},
		{"bad status", `{"trace_id":"0000000000000001","conn":"c","status":"weird","total_ns":1,"stages":{}}`},
		{"empty conn", `{"trace_id":"0000000000000001","conn":"","status":"ok","total_ns":1,"stages":{}}`},
		{"negative total", `{"trace_id":"0000000000000001","conn":"c","status":"ok","total_ns":-5,"stages":{}}`},
		{"unknown stage", `{"trace_id":"0000000000000001","conn":"c","status":"ok","total_ns":1,"stages":{"warp":3}}`},
		{"negative stage", `{"trace_id":"0000000000000001","conn":"c","status":"ok","total_ns":1,"stages":{"prep":-1}}`},
	} {
		if _, err := ValidateQueryLog(strings.NewReader(tc.line + "\n")); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.line)
		}
	}
}

func TestQueryTracerFlushBatching(t *testing.T) {
	tr := NewQueryTracer(QueryTraceOptions{})
	ct := tr.Conn()
	for i := 0; i < spanFlushBatch-1; i++ {
		endSpan(tr, ct, uint64(i+1), StatusOK, nil)
	}
	// Below the batch size: nothing has reached the collector yet.
	if got := len(tr.Spans()); got != 0 {
		t.Fatalf("collector saw %d spans before batch flush", got)
	}
	endSpan(tr, ct, spanFlushBatch, StatusOK, nil)
	if got := len(tr.Spans()); got != spanFlushBatch {
		t.Fatalf("collector saw %d spans after batch boundary, want %d", got, spanFlushBatch)
	}
	// Stragglers arrive at Close.
	endSpan(tr, ct, spanFlushBatch+1, StatusOK, nil)
	ct.Close()
	if got := len(tr.Spans()); got != spanFlushBatch+1 {
		t.Fatalf("collector saw %d spans after ConnTrace close, want %d", got, spanFlushBatch+1)
	}
}

func TestQueryTracerNilAbsorbs(t *testing.T) {
	var tr *QueryTracer
	ct := tr.Conn()
	if ct != nil {
		t.Fatal("nil tracer handed out a ConnTrace")
	}
	sp := tr.Begin(ct, 1, "c", true)
	sp.Stage(StageDrain, 100)
	sp.End(StatusOK)
	ct.Close()
	if tr.Traced() != 0 || tr.Spans() != nil || tr.Close() != nil {
		t.Fatal("nil tracer not fully absorbing")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestQueryTracerPrometheusOutput(t *testing.T) {
	tr := NewQueryTracer(QueryTraceOptions{})
	ct := tr.Conn()
	for i := uint64(1); i <= 100; i++ {
		endSpan(tr, ct, i, StatusOK, map[QueryStage]units.WallNanos{
			StageExecute: units.WallNanos(i * 1000),
		})
	}
	ct.Close()
	var buf bytes.Buffer
	if err := tr.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if err := ValidatePrometheusText(buf.Bytes()); err != nil {
		t.Fatalf("tracer exposition fails lint: %v\n%s", err, body)
	}
	// Every stage (plus total) exposes all four quantiles.
	for st := QueryStage(0); st < NumQueryStages; st++ {
		for _, q := range []string{"0.5", "0.95", "0.99", "0.999"} {
			probe := `cgp_query_stage_latency_ns{stage="` + st.String() + `",quantile="` + q + `"}`
			if !strings.Contains(body, probe) {
				t.Fatalf("missing %s in exposition", probe)
			}
		}
	}
	if !strings.Contains(body, "cgp_queries_traced_total 100") {
		t.Fatalf("missing traced counter:\n%s", body)
	}
}

func TestWallHistQuantiles(t *testing.T) {
	var h wallHist
	// 1000 observations uniform in [1000, 2000): p50 lands in the
	// [1024, 2048) bucket, and the interpolated estimate must stay
	// within the bucket's bounds.
	for i := 0; i < 1000; i++ {
		h.observe(units.WallNanos(1000 + i))
	}
	p50 := h.quantile(0.5)
	if p50 < 512 || p50 > 2048 {
		t.Fatalf("p50 = %g, want within [512, 2048]", p50)
	}
	if q := h.quantile(0); q < 0 {
		t.Fatalf("q0 = %g", q)
	}
	if h.quantile(1) < h.quantile(0.5) {
		t.Fatal("quantile not monotone")
	}
	var empty wallHist
	if empty.quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	tr := NewQueryTracer(QueryTraceOptions{})
	ct := tr.Conn()
	endSpan(tr, ct, 0xbeef, StatusOK, map[QueryStage]units.WallNanos{
		StagePrep:  2000,
		StageDrain: 5000,
	})
	ct.Close()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	// One umbrella event plus one per nonzero stage.
	if len(out.TraceEvents) != 3 {
		t.Fatalf("chrome trace has %d events, want 3", len(out.TraceEvents))
	}
	if out.TraceEvents[0].Name != "query" || out.TraceEvents[0].Args["trace_id"] != "000000000000beef" {
		t.Fatalf("umbrella event = %+v", out.TraceEvents[0])
	}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
	}
}

func TestValidatePrometheusText(t *testing.T) {
	good := strings.Join([]string{
		`# HELP x_total Things.`,
		`# TYPE x_total counter`,
		`x_total 3`,
		`# HELP lat summary of stuff`,
		`# TYPE lat summary`,
		`lat{quantile="0.5"} 12`,
		`lat_sum 40`,
		`lat_count 3`,
		`# HELP h histo`,
		`# TYPE h histogram`,
		`h_bucket{le="1"} 1`,
		`h_bucket{le="+Inf"} 2`,
		`h_sum 3`,
		`h_count 2`,
		`# HELP esc escaped label`,
		`# TYPE esc gauge`,
		`esc{l="a\"b\\c\nd"} 1`,
		``,
	}, "\n")
	if err := ValidatePrometheusText([]byte(good)); err != nil {
		t.Fatalf("good exposition rejected: %v", err)
	}
	for name, bad := range map[string]string{
		"sample before TYPE": "y_total 1\n# TYPE y_total counter\n",
		"unknown type":       "# TYPE z wibble\nz 1\n",
		"bad value":          "# TYPE z gauge\nz banana\n",
		"bad quantile":       "# TYPE s summary\ns{quantile=\"1.5\"} 2\ns_sum 1\ns_count 1\n",
		"histogram no +Inf":  "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"unterminated label": "# TYPE g gauge\ng{l=\"x} 1\n",
		"garbage line":       "# TYPE g gauge\ng 1\nwhat even is this{\n",
	} {
		if err := ValidatePrometheusText([]byte(bad)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, bad)
		}
	}
}
