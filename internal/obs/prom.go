package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4). The plain
// `name value` WriteText format predates this file and stays for the
// artifact dumps that diff it; /metrics now serves WritePrometheus so
// a stock Prometheus scrape (and the promtext lint in CI) can consume
// it: `# HELP`/`# TYPE` per family, escaped label values, cumulative
// `le` histogram buckets with `+Inf`, and summary quantiles.

// promEscape escapes a label value per the exposition format:
// backslash, double quote and newline.
func promEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 2)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promName sanitizes a metric name to the exposition format's
// [a-zA-Z_:][a-zA-Z0-9_:]* alphabet.
func promName(s string) string {
	if s == "" {
		return "_"
	}
	valid := func(i int, r rune) bool {
		if r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
			return true
		}
		return i > 0 && r >= '0' && r <= '9'
	}
	ok := true
	for i, r := range s {
		if !valid(i, r) {
			ok = false
			break
		}
	}
	if ok {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i, r := range s {
		if valid(i, r) {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// appendPromHeader appends a family's `# HELP` and `# TYPE` lines.
func appendPromHeader(b []byte, name, help, typ string) []byte {
	b = append(b, "# HELP "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, help...)
	b = append(b, "\n# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	return b
}

// AppendPromGauge appends one complete single-sample gauge family
// (HELP + TYPE + value), for callers exposing point-in-time values
// (inflight queries, capture backlog) alongside a registry exposition.
func AppendPromGauge(b []byte, name, help string, v int64) []byte {
	pn := promName(name)
	b = appendPromHeader(b, pn, help, "gauge")
	b = append(b, fmt.Sprintf("%s %d\n", pn, v)...)
	return b
}

// WritePrometheus writes the deterministic-domain registry in
// Prometheus text exposition format: counters and gauges as-is,
// power-of-two histograms expanded to cumulative `le` buckets (upper
// bound 2^i per occupied bucket) plus `+Inf`, `_sum` and `_count`.
// Families are emitted in sorted name order so the exposition is
// deterministic like the registry it describes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counterNames := sortedKeys(r.counters)
	gaugeNames := sortedKeys(r.gauges)
	histNames := sortedKeys(r.hists)
	var b []byte
	for _, name := range counterNames {
		pn := promName(name)
		b = appendPromHeader(b, pn, "Deterministic-domain counter "+name+".", "counter")
		b = append(b, fmt.Sprintf("%s %d\n", pn, r.counters[name].Value())...)
	}
	for _, name := range gaugeNames {
		pn := promName(name)
		b = appendPromHeader(b, pn, "Deterministic-domain gauge "+name+".", "gauge")
		b = append(b, fmt.Sprintf("%s %d\n", pn, r.gauges[name].Value())...)
	}
	for _, name := range histNames {
		h := r.hists[name]
		pn := promName(name)
		b = appendPromHeader(b, pn, "Deterministic-domain power-of-two histogram "+name+".", "histogram")
		var cum int64
		for i := 0; i < histBuckets; i++ {
			n := h.Bucket(i)
			if n == 0 {
				continue
			}
			cum += n
			b = append(b, fmt.Sprintf("%s_bucket{le=%q} %d\n", pn, promBucketBound(i), cum)...)
		}
		b = append(b, fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count())...)
		b = append(b, fmt.Sprintf("%s_sum %d\n", pn, h.Sum())...)
		b = append(b, fmt.Sprintf("%s_count %d\n", pn, h.Count())...)
	}
	r.mu.Unlock()
	_, err := w.Write(b)
	return err
}

// promBucketBound renders power-of-two bucket i's inclusive upper
// bound: bucket 0 holds zeros (le="0"), bucket i≥1 holds integer
// values in [2^(i-1), 2^i), so its inclusive bound is 2^i - 1.
func promBucketBound(i int) string {
	if i <= 0 {
		return "0"
	}
	if i >= 64 {
		return "+Inf"
	}
	return strconv.FormatUint(uint64(1)<<uint(i)-1, 10)
}

// WritePrometheus writes the wall-clock-domain registry in Prometheus
// text exposition format: event counters as `wall_<name>_total`
// counters, timers as `wall_<name>_count` + `wall_<name>_total_ns`
// counter pairs. The `wall_` prefix marks the domain, exactly as in
// the plain-text exposition.
func (r *WallRegistry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	countNames := sortedKeys(r.counts)
	timerNames := sortedKeys(r.totals)
	var b []byte
	for _, name := range countNames {
		pn := promName("wall_" + name + "_total")
		b = appendPromHeader(b, pn, "Wall-clock-domain event counter "+name+".", "counter")
		b = append(b, fmt.Sprintf("%s %d\n", pn, r.counts[name])...)
	}
	for _, name := range timerNames {
		cn := promName("wall_" + name + "_count")
		b = appendPromHeader(b, cn, "Wall-clock-domain timer "+name+": observations.", "counter")
		b = append(b, fmt.Sprintf("%s %d\n", cn, r.spent[name])...)
		tn := promName("wall_" + name + "_total_ns")
		b = appendPromHeader(b, tn, "Wall-clock-domain timer "+name+": total nanoseconds.", "counter")
		b = append(b, fmt.Sprintf("%s %d\n", tn, wallInt(r.totals[name]))...)
	}
	r.mu.Unlock()
	_, err := w.Write(b)
	return err
}

// sortedKeys returns m's keys sorted; the iteration-order laundering
// keeps the expositions deterministic (maporder-clean).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ---- exposition lint ----

// promFamily tracks one metric family while linting.
type promFamily struct {
	typ        string
	seenSample bool
	hasInf     bool
	sawBucket  bool
}

var promKnownTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// ValidatePrometheusText lints a text exposition as a Prometheus
// scraper would parse it: metric and label names match the format's
// alphabet, label values use only valid escapes, every `# TYPE`
// precedes its family's samples and names a known type, sample values
// parse as floats, summary `quantile` labels lie in [0,1], and every
// histogram family's `le` buckets include `+Inf`. This is the lint CI
// holds /metrics to (satellite: exposition-format fix).
func ValidatePrometheusText(data []byte) error {
	families := map[string]*promFamily{}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 {
				continue
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) < 4 {
					return promErr(lineNo, "malformed # TYPE line")
				}
				name, typ := fields[2], strings.TrimSpace(fields[3])
				if !promValidName(name) {
					return promErr(lineNo, "invalid metric name %q in # TYPE", name)
				}
				if !promKnownTypes[typ] {
					return promErr(lineNo, "unknown metric type %q", typ)
				}
				fam := families[name]
				if fam == nil {
					fam = &promFamily{}
					families[name] = fam
				}
				if fam.seenSample {
					return promErr(lineNo, "# TYPE for %s after its samples", name)
				}
				fam.typ = typ
			case "HELP":
				if len(fields) < 3 || !promValidName(fields[2]) {
					return promErr(lineNo, "malformed # HELP line")
				}
			}
			continue
		}
		name, labels, value, err := promParseSample(line)
		if err != nil {
			return promErr(lineNo, "%v", err)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return promErr(lineNo, "sample value %q is not a float", value)
		}
		fam := promFamilyFor(families, name)
		fam.seenSample = true
		if fam.typ == "summary" && !strings.HasSuffix(name, "_sum") && !strings.HasSuffix(name, "_count") {
			q, ok := labels["quantile"]
			if !ok {
				return promErr(lineNo, "summary sample %s missing quantile label", name)
			}
			qv, err := strconv.ParseFloat(q, 64)
			if err != nil || math.IsNaN(qv) || qv < 0 || qv > 1 {
				return promErr(lineNo, "summary quantile %q outside [0,1]", q)
			}
		}
		if fam.typ == "histogram" && strings.HasSuffix(name, "_bucket") {
			fam.sawBucket = true
			le, ok := labels["le"]
			if !ok {
				return promErr(lineNo, "histogram bucket %s missing le label", name)
			}
			if le == "+Inf" {
				fam.hasInf = true
			} else if _, err := strconv.ParseFloat(le, 64); err != nil {
				return promErr(lineNo, "histogram le %q is not a float", le)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("promtext: %w", err)
	}
	for _, name := range sortedKeys(families) {
		fam := families[name]
		if fam.typ == "histogram" && fam.sawBucket && !fam.hasInf {
			return fmt.Errorf("promtext: histogram %s has buckets but no le=\"+Inf\"", name)
		}
	}
	return nil
}

// promFamilyFor resolves a sample name to its family, stripping the
// typed-family suffixes (_bucket/_sum/_count/_total_ns) so histogram
// and summary children attach to their parent's declared type.
func promFamilyFor(families map[string]*promFamily, name string) *promFamily {
	if fam := families[name]; fam != nil {
		return fam
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if fam := families[base]; fam != nil {
				// Key histogram children under the parent so the
				// le=+Inf check sees every bucket line.
				if fam.typ == "histogram" || fam.typ == "summary" {
					return fam
				}
			}
		}
	}
	fam := &promFamily{typ: "untyped"}
	families[name] = fam
	return fam
}

func promErr(line int, format string, args ...any) error {
	return fmt.Errorf("promtext: line %d: %s", line, fmt.Sprintf(format, args...))
}

// promValidName reports whether s is a valid metric name.
func promValidName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// promValidLabel reports whether s is a valid label name.
func promValidLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// promParseSample parses one sample line: name{labels} value [ts].
func promParseSample(line string) (name string, labels map[string]string, value string, err error) {
	labels = map[string]string{}
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		rest = rest[brace+1:]
		for {
			rest = strings.TrimLeft(rest, " \t")
			if len(rest) == 0 {
				return "", nil, "", fmt.Errorf("unterminated label set")
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, "", fmt.Errorf("label without '='")
			}
			lname := strings.TrimSpace(rest[:eq])
			if !promValidLabel(lname) {
				return "", nil, "", fmt.Errorf("invalid label name %q", lname)
			}
			rest = strings.TrimLeft(rest[eq+1:], " \t")
			if len(rest) == 0 || rest[0] != '"' {
				return "", nil, "", fmt.Errorf("label %s value is not quoted", lname)
			}
			rest = rest[1:]
			var b strings.Builder
			i := 0
			for {
				if i >= len(rest) {
					return "", nil, "", fmt.Errorf("unterminated label value for %s", lname)
				}
				c := rest[i]
				if c == '"' {
					break
				}
				if c == '\\' {
					if i+1 >= len(rest) {
						return "", nil, "", fmt.Errorf("dangling escape in label %s", lname)
					}
					switch rest[i+1] {
					case '\\':
						b.WriteByte('\\')
					case '"':
						b.WriteByte('"')
					case 'n':
						b.WriteByte('\n')
					default:
						return "", nil, "", fmt.Errorf("invalid escape \\%c in label %s", rest[i+1], lname)
					}
					i += 2
					continue
				}
				b.WriteByte(c)
				i++
			}
			labels[lname] = b.String()
			rest = strings.TrimLeft(rest[i+1:], " \t")
			if len(rest) > 0 && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", nil, "", fmt.Errorf("sample line has no value")
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !promValidName(name) {
		return "", nil, "", fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", nil, "", fmt.Errorf("sample %s has no value", name)
	}
	if len(fields) > 2 {
		return "", nil, "", fmt.Errorf("sample %s has trailing garbage", name)
	}
	return name, labels, fields[0], nil
}
