package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cgp/internal/units"
)

func TestNilSafety(t *testing.T) {
	// Every hook must be callable through nil receivers at every level:
	// disabled observability is the default, and instrumented code does
	// not guard its calls.
	var o *Observability
	o.Job(JobStarted, "w", "c", "")
	o.Span("x", "y").Arg("k", "v").End()
	o.AttachLog(&bytes.Buffer{})

	var reg *Registry
	reg.Counter("a").Add(1)
	reg.Gauge("b").Set(2)
	reg.Histogram("c").Observe(3)
	if err := reg.WriteText(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	var wr *WallRegistry
	wr.Incr("a", 1)
	wr.Observe("b", 5)
	if wr.Count("a") != 0 || wr.Total("b") != 0 {
		t.Fatal("nil WallRegistry returned non-zero values")
	}

	var sr *SpanRecorder
	sr.Start("a", "b").End()
	if sr.Len() != 0 {
		t.Fatal("nil SpanRecorder recorded a span")
	}
	var buf bytes.Buffer
	if err := sr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("nil recorder's trace invalid: %v", err)
	}

	var rl *RunLog
	rl.Emit(JobFailed, "w", "c", "boom")
	if rl.Err() != nil {
		t.Fatal("nil RunLog reported an error")
	}

	var p *Progress
	p.Update(JobStarted, "w", "c")
	if p.Count(JobStarted) != 0 {
		t.Fatal("nil Progress counted a job")
	}
	if err := p.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryExpositionSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Add(3)
	r.Counter("alpha").Add(1)
	r.Gauge("mid").Set(2)
	h := r.Histogram("dist")
	h.Observe(0)
	h.Observe(1)
	h.Observe(5)

	var a, b bytes.Buffer
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("exposition not stable:\n%s\nvs\n%s", a.String(), b.String())
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("exposition not sorted: %q before %q", lines[i-1], lines[i])
		}
	}
	want := []string{"alpha 1", "dist_count 3", "dist_sum 6", "mid 2", "zeta 3"}
	for _, w := range want {
		if !strings.Contains(a.String(), w+"\n") {
			t.Fatalf("exposition missing %q:\n%s", w, a.String())
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)  // bucket 0
	h.Observe(1)  // bucket 1: [1,2)
	h.Observe(3)  // bucket 2: [2,4)
	h.Observe(-7) // clamped to 0
	if got := h.Bucket(0); got != 2 {
		t.Fatalf("bucket 0 = %d, want 2", got)
	}
	if got := h.Bucket(1); got != 1 {
		t.Fatalf("bucket 1 = %d, want 1", got)
	}
	if got := h.Bucket(2); got != 1 {
		t.Fatalf("bucket 2 = %d, want 1", got)
	}
	if h.Count() != 4 || h.Sum() != 4 {
		t.Fatalf("count=%d sum=%d, want 4, 4", h.Count(), h.Sum())
	}
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Add(1)
				r.Histogram("h").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestChromeTraceExportAndValidate(t *testing.T) {
	rec := NewSpanRecorder()
	s1 := rec.Start("record", "harness").Arg("workload", "wisconsin")
	rec.Start("replay", "harness").End()
	s1.End()
	if rec.Len() != 2 {
		t.Fatalf("recorded %d spans, want 2", rec.Len())
	}

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("emitted trace fails own validator: %v", err)
	}

	var trace struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	if len(trace.TraceEvents) != 2 {
		t.Fatalf("trace has %d events, want 2", len(trace.TraceEvents))
	}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		names[ev.Name] = true
		if ev.Ph != "X" || ev.Pid != 1 || ev.Tid < 1 {
			t.Fatalf("malformed event %+v", ev)
		}
	}
	if !names["record"] || !names["replay"] {
		t.Fatalf("trace missing span names: %v", names)
	}
	for _, ev := range trace.TraceEvents {
		if ev.Name == "record" && ev.Args["workload"] != "wisconsin" {
			t.Fatalf("record span lost its args: %+v", ev)
		}
	}
}

func TestChromeTraceLaneAssignment(t *testing.T) {
	// Two overlapping spans must land on different lanes; a later
	// non-overlapping span reuses lane 1. Records are injected
	// directly so the intervals are exact.
	rec := NewSpanRecorder()
	rec.finish(spanRecord{name: "a", cat: "c", start: 0, dur: 100})
	rec.finish(spanRecord{name: "b", cat: "c", start: 50, dur: 100}) // overlaps a
	rec.finish(spanRecord{name: "c", cat: "c", start: 200, dur: 10}) // after both

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	tids := map[string]int{}
	for _, ev := range trace.TraceEvents {
		tids[ev.Name] = ev.Tid
	}
	if tids["a"] == tids["b"] {
		t.Fatalf("overlapping spans share lane %d", tids["a"])
	}
	if tids["c"] != 1 {
		t.Fatalf("span after all others on lane %d, want reuse of lane 1", tids["c"])
	}
}

func TestValidateChromeTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":      `{`,
		"no array":      `{"displayTimeUnit":"ms"}`,
		"missing name":  `{"traceEvents":[{"ph":"X","ts":1,"dur":1,"pid":1,"tid":1}]}`,
		"wrong phase":   `{"traceEvents":[{"name":"x","ph":"B","ts":1,"dur":1,"pid":1,"tid":1}]}`,
		"missing ts":    `{"traceEvents":[{"name":"x","ph":"X","dur":1,"pid":1,"tid":1}]}`,
		"negative time": `{"traceEvents":[{"name":"x","ph":"X","ts":-5,"dur":1,"pid":1,"tid":1}]}`,
	}
	for label, data := range cases {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validator accepted %s", label, data)
		}
	}
}

func TestRunLogEmitAndValidate(t *testing.T) {
	var buf bytes.Buffer
	l := NewRunLog(&buf)
	l.Emit(JobQueued, "wisconsin", "cgp4", "")
	l.Emit(JobStarted, "wisconsin", "cgp4", "")
	l.Emit(JobExecuted, "wisconsin", "cgp4", "")
	l.Emit(JobResumed, "tpch", "nl8", "checkpoint hit")
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}

	entries, err := ValidateRunLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("parsed %d entries, want 4", len(entries))
	}
	if entries[3].Event != string(JobResumed) || entries[3].Detail != "checkpoint hit" {
		t.Fatalf("last entry %+v", entries[3])
	}
	for i, e := range entries {
		if e.Seq != int64(i+1) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}
}

func TestValidateRunLogRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad json":      "{\n",
		"unknown event": `{"seq":1,"event":"exploded","workload":"w","config":"c","wall_ns":1}` + "\n",
		"empty config":  `{"seq":1,"event":"started","workload":"w","config":"","wall_ns":1}` + "\n",
		"seq regression": `{"seq":2,"event":"started","workload":"w","config":"c","wall_ns":1}` + "\n" +
			`{"seq":1,"event":"executed","workload":"w","config":"c","wall_ns":2}` + "\n",
	}
	for label, data := range cases {
		if _, err := ValidateRunLog(strings.NewReader(data)); err == nil {
			t.Errorf("%s: validator accepted %q", label, data)
		}
	}
}

func TestValidateRunLogWorkerIDs(t *testing.T) {
	line := func(seq int, worker string) string {
		return `{"seq":` + fmt.Sprint(seq) + `,"event":"executed","workload":"w","config":"c","worker":"` + worker + `","wall_ns":1}` + "\n"
	}
	// Entries must always carry a worker id, whitelist or not.
	if _, err := ValidateRunLog(strings.NewReader(`{"seq":1,"event":"executed","workload":"w","config":"c","wall_ns":1}` + "\n")); err == nil {
		t.Error("validator accepted an entry with no worker id")
	}
	// Without a whitelist any non-empty id passes.
	if _, err := ValidateRunLog(strings.NewReader(line(1, "w9"))); err != nil {
		t.Errorf("no whitelist: %v", err)
	}
	// With one, ids outside it fail — the experiments exit boundary
	// passes "main" plus the campaign's "w1".."wN".
	ok := line(1, DefaultWorker) + line(2, "w1") + line(3, "w2")
	if _, err := ValidateRunLog(strings.NewReader(ok), DefaultWorker, "w1", "w2"); err != nil {
		t.Errorf("whitelisted ids rejected: %v", err)
	}
	bad := line(1, DefaultWorker) + line(2, "w3")
	if _, err := ValidateRunLog(strings.NewReader(bad), DefaultWorker, "w1", "w2"); err == nil {
		t.Error("validator accepted an entry from an unknown worker")
	}

	// A forwarded entry keeps its origin worker and wall stamp but is
	// re-sequenced into the coordinator's log.
	var buf bytes.Buffer
	l := NewRunLog(&buf)
	l.Emit(JobQueued, "w", "c", "")
	l.EmitEntry(RunLogEntry{Seq: 99, Event: "executed", Workload: "w", Config: "c", Worker: "w2", WallNs: 7})
	entries, err := ValidateRunLog(bytes.NewReader(buf.Bytes()), DefaultWorker, "w2")
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Worker != DefaultWorker {
		t.Errorf("Emit stamped worker %q, want %q", entries[0].Worker, DefaultWorker)
	}
	if e := entries[1]; e.Worker != "w2" || e.WallNs != 7 || e.Seq != 2 {
		t.Errorf("forwarded entry %+v: want worker w2, wall 7, seq restamped to 2", e)
	}
}

func TestProgressSnapshotAndResumeDistinction(t *testing.T) {
	p := NewProgress()
	p.Update(JobQueued, "w1", "c1")
	p.Update(JobStarted, "w1", "c1")
	p.Update(JobExecuted, "w1", "c1")
	p.Update(JobResumed, "w1", "c2")
	p.Update(JobQueued, "w0", "c9")

	snap := p.Snapshot()
	if len(snap.Jobs) != 3 {
		t.Fatalf("%d jobs, want 3", len(snap.Jobs))
	}
	// Sorted by (workload, config).
	if snap.Jobs[0].Workload != "w0" || snap.Jobs[1].Config != "c1" || snap.Jobs[2].Config != "c2" {
		t.Fatalf("snapshot order wrong: %+v", snap.Jobs)
	}
	if !snap.Jobs[2].Resumed || snap.Jobs[1].Resumed {
		t.Fatalf("resumed flags wrong: %+v", snap.Jobs)
	}
	if snap.Counts["executed"] != 1 || snap.Counts["resumed"] != 1 || snap.Counts["queued"] != 1 {
		t.Fatalf("counts wrong: %v", snap.Counts)
	}
	if p.Count(JobResumed) != 1 {
		t.Fatalf("Count(resumed) = %d", p.Count(JobResumed))
	}
}

func TestWallRegistryExposition(t *testing.T) {
	r := NewWallRegistry()
	r.Incr("retries", 2)
	r.Observe("record", units.WallNanos(1500))
	r.Observe("record", units.WallNanos(500))

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"wall_retries 2\n", "wall_record_count 2\n", "wall_record_total_ns 2000\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if r.Count("retries") != 2 || r.Total("record") != 2000 {
		t.Fatalf("accessors wrong: %d, %d", r.Count("retries"), r.Total("record"))
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	o := New()
	o.Det.Counter("cgp_jobs").Add(7)
	o.Wall.Incr("retries", 1)
	o.Job(JobResumed, "wisconsin", "cgp4", "")

	mux := NewDebugMux(o)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var b bytes.Buffer
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "cgp_jobs 7\n") {
		t.Fatalf("/metrics missing deterministic counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "wall_retries_total 1\n") {
		t.Fatalf("/metrics missing wall counter:\n%s", metrics)
	}
	if err := ValidatePrometheusText([]byte(metrics)); err != nil {
		t.Fatalf("/metrics fails the exposition lint: %v\n%s", err, metrics)
	}

	progress := get("/progress")
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(progress), &snap); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, progress)
	}
	if len(snap.Jobs) != 1 || !snap.Jobs[0].Resumed {
		t.Fatalf("/progress snapshot wrong: %+v", snap)
	}

	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestDebugMuxNilObservability(t *testing.T) {
	srv := httptest.NewServer(NewDebugMux(nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/progress"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s with nil obs: status %d", path, resp.StatusCode)
		}
	}
}
