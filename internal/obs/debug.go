package obs

import (
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds the live-introspection handler cmd/experiments
// serves on -debug-addr:
//
//	/metrics        Prometheus text exposition of both metric domains
//	                (the deterministic registry first, then wall_
//	                metrics)
//	/progress       JSON job states, including which jobs were
//	                checkpoint-resumed
//	/debug/pprof/   the standard net/http/pprof handlers
//
// The handlers read whatever components of o exist; nil components
// simply contribute nothing, so the mux is safe with a partially
// enabled (or nil) Observability.
func NewDebugMux(o *Observability) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if o == nil {
			return
		}
		if err := o.Det.WritePrometheus(w); err != nil {
			return
		}
		_ = o.Wall.WritePrometheus(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var p *Progress
		if o != nil {
			p = o.Progress
		}
		_ = p.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
