package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// JobProgress is one job's current state as served by /progress.
type JobProgress struct {
	Workload string `json:"workload"`
	Config   string `json:"config"`
	State    string `json:"state"`
	// Resumed marks jobs whose result came from a checkpoint rather
	// than fresh execution — the distinction the progress summary
	// surfaces so resume effectiveness is visible.
	Resumed bool `json:"resumed"`
}

// ProgressSnapshot is the stable JSON shape of the /progress endpoint:
// jobs sorted by (workload, config) plus per-state totals.
type ProgressSnapshot struct {
	Jobs   []JobProgress  `json:"jobs"`
	Counts map[string]int `json:"counts"`
}

// Progress tracks live per-job state for the /progress endpoint and
// the end-of-campaign summary. It is safe for concurrent use. A nil
// *Progress absorbs all operations.
type Progress struct {
	mu   sync.Mutex
	jobs map[string]*JobProgress
}

// NewProgress returns an empty tracker.
func NewProgress() *Progress {
	return &Progress{jobs: make(map[string]*JobProgress)}
}

// Update moves the (workload, config) job to state. Terminal states
// replace in-flight ones; a resumed job stays marked resumed.
func (p *Progress) Update(state JobState, workload, config string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := workload + "\x00" + config
	j := p.jobs[key]
	if j == nil {
		j = &JobProgress{Workload: workload, Config: config}
		p.jobs[key] = j
	}
	j.State = string(state)
	if state == JobResumed {
		j.Resumed = true
	}
}

// Snapshot returns the current state of every job, sorted, with
// per-state counts.
func (p *Progress) Snapshot() ProgressSnapshot {
	snap := ProgressSnapshot{Counts: make(map[string]int)}
	if p == nil {
		return snap
	}
	p.mu.Lock()
	for _, j := range p.jobs {
		snap.Jobs = append(snap.Jobs, *j)
		snap.Counts[j.State]++
	}
	p.mu.Unlock()
	sort.Slice(snap.Jobs, func(i, k int) bool {
		if snap.Jobs[i].Workload != snap.Jobs[k].Workload {
			return snap.Jobs[i].Workload < snap.Jobs[k].Workload
		}
		return snap.Jobs[i].Config < snap.Jobs[k].Config
	})
	return snap
}

// Count returns how many jobs are currently in state.
func (p *Progress) Count(state JobState) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, j := range p.jobs {
		if j.State == string(state) {
			n++
		}
	}
	return n
}

// WriteJSON writes the snapshot as indented JSON (encoding/json
// marshals the counts map in sorted key order, so the output is stable
// for a settled campaign).
func (p *Progress) WriteJSON(w io.Writer) error {
	snap := p.Snapshot()
	if snap.Jobs == nil {
		snap.Jobs = []JobProgress{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
