package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cgp/internal/units"
)

// Serving-path query tracing (DESIGN.md §17). Every served query gets
// one QuerySpan: a trace ID (wire-carried from a tagged client, or
// server-minted), the connection it arrived on, typed per-stage
// durations, and a terminal status. Spans are wall-clock-domain
// artifacts like everything else in this file's neighborhood: typed
// units.WallNanos end to end, exported only through the suppressed
// serialization boundary (wallInt), never into figures.
//
// The recording path is lock-cheap by construction:
//
//   - finished spans land in a per-connection buffer owned by the
//     connection's goroutine, flushed into the central collector one
//     batch (spanFlushBatch spans) at a time — one short mutex
//     acquisition per batch, not per query;
//   - stage/total latency histograms are fixed-size atomic buckets,
//     aggregated at flush time rather than per query: End touches one
//     shared counter, not seven histograms' cache lines, so concurrent
//     connections do not ping-pong the aggregation state (the /metrics
//     view lags a connection's last partial batch, which a scrape-based
//     consumer never notices);
//   - only slow-query log writes (rare by definition) lock per event.
//
// The slow-query log is JSONL: every span whose total latency reaches
// SlowThreshold streams out immediately, and a seeded reservoir sample
// of the normal (sub-threshold) spans is appended at Close so the log
// also shows what ordinary latency looked like.

// QueryStage indexes one serving stage of a query's lifetime.
type QueryStage int

const (
	// StageDecode: reading and parsing the request frame's payload
	// after its header arrived (or the HTTP body).
	StageDecode QueryStage = iota
	// StageAdmission: the admission-control gate (token bucket +
	// inflight bound).
	StageAdmission
	// StagePrep: SQL parse or prepared-statement cache lookup.
	StagePrep
	// StageExecute: transaction begin, plan and optimize.
	StageExecute
	// StageDrain: pulling the plan to exhaustion and building the
	// result.
	StageDrain
	// StageCapture: committing the query's probe batch to the live
	// capture ring.
	StageCapture
	// NumQueryStages is the stage count; spans carry a fixed array of
	// this many durations.
	NumQueryStages
)

var queryStageNames = [NumQueryStages]string{
	"decode", "admission", "prep", "execute", "drain", "capture",
}

// String returns the stage's snake-case name as used in the slow-query
// log and the /metrics stage label.
func (s QueryStage) String() string {
	if s < 0 || s >= NumQueryStages {
		return "?"
	}
	return queryStageNames[s]
}

// Query terminal statuses. The serving layer maps its typed errors
// onto these; ValidateQueryLog rejects anything outside the set.
const (
	StatusOK       = "ok"
	StatusError    = "error"
	StatusShed     = "shed"
	StatusDeadline = "deadline"
	StatusShutdown = "shutdown"
	StatusPanic    = "panic"
)

// KnownQueryStatuses is the validation whitelist for span statuses.
var KnownQueryStatuses = map[string]bool{
	StatusOK:       true,
	StatusError:    true,
	StatusShed:     true,
	StatusDeadline: true,
	StatusShutdown: true,
	StatusPanic:    true,
}

// spanFlushBatch is how many finished spans a connection buffers before
// flushing into the central collector under its mutex.
const spanFlushBatch = 64

// QueryTraceOptions configures a QueryTracer.
type QueryTraceOptions struct {
	// SlowThreshold is the total-latency bar at or above which a span
	// streams to the slow-query log immediately. Zero logs every span
	// (scripted captures and CI smoke want the full join table); set
	// LogW nil to disable the log entirely.
	SlowThreshold time.Duration
	// LogW receives the slow-query log as JSONL; nil disables it.
	LogW io.Writer
	// Keep bounds the spans retained in memory for the Perfetto export
	// and test inspection (default 4096; excess spans are counted as
	// dropped, never block).
	Keep int
	// Reservoir is the reservoir-sample size for normal (sub-threshold)
	// spans appended to the log at Close (default 64).
	Reservoir int
	// Seed seeds the reservoir's xorshift replacement (default 1). The
	// reservoir is wall-domain data, so the seed only makes test runs
	// repeatable; it carries no determinism contract.
	Seed uint64
}

// QuerySpanData is one finished span: the slow-query log line's
// in-memory form and the Perfetto export's source.
type QuerySpanData struct {
	ID     uint64
	Conn   string
	Tagged bool
	Status string
	Start  units.WallNanos
	Total  units.WallNanos
	Stages [NumQueryStages]units.WallNanos
}

// QueryTracer is the central per-process query-trace collector. A nil
// *QueryTracer absorbs all operations, so the serving path needs no
// enabled-checks beyond the nil span test it already pays.
type QueryTracer struct {
	opts   QueryTraceOptions
	slowNs units.WallNanos

	stageHist [NumQueryStages]wallHist
	totalHist wallHist

	traced  atomic.Int64
	slow    atomic.Int64
	dropped atomic.Int64

	mu     sync.Mutex
	kept   []QuerySpanData
	res    []QuerySpanData
	seen   int64
	rng    uint64
	closed bool
	logErr error
}

// NewQueryTracer builds a tracer.
func NewQueryTracer(opts QueryTraceOptions) *QueryTracer {
	if opts.Keep <= 0 {
		opts.Keep = 4096
	}
	if opts.Reservoir <= 0 {
		opts.Reservoir = 64
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &QueryTracer{
		opts:   opts,
		slowNs: units.WallNanos(opts.SlowThreshold.Nanoseconds()),
		rng:    opts.Seed,
	}
}

// ConnTrace is one connection's span buffer. It is owned by the
// connection's goroutine — Begin/End/Close must not race — and is the
// only thing standing between the query path and the central mutex.
type ConnTrace struct {
	t   *QueryTracer
	cur QuerySpan
	buf []QuerySpanData
}

// Conn hands out a fresh per-connection buffer. Close must be called
// when the connection ends so buffered spans reach the collector.
func (t *QueryTracer) Conn() *ConnTrace {
	if t == nil {
		return nil
	}
	return &ConnTrace{t: t}
}

// Close flushes the connection's remaining spans.
func (ct *ConnTrace) Close() {
	if ct == nil || len(ct.buf) == 0 {
		return
	}
	ct.t.absorb(ct.buf)
	ct.buf = ct.buf[:0]
}

// QuerySpan is one query's in-flight trace. A nil *QuerySpan absorbs
// all operations. Spans are reused per connection: Begin resets the
// embedded span, End copies its data out, so the steady-state query
// path allocates nothing for tracing.
type QuerySpan struct {
	t     *QueryTracer
	ct    *ConnTrace
	data  QuerySpanData
	ended bool
}

// Begin opens a span for one query. ct may be nil (the HTTP path has
// no long-lived connection); the span then flushes directly on End.
func (t *QueryTracer) Begin(ct *ConnTrace, id uint64, conn string, tagged bool) *QuerySpan {
	if t == nil {
		return nil
	}
	sp := &QuerySpan{t: t}
	if ct != nil {
		sp = &ct.cur
		*sp = QuerySpan{t: t, ct: ct}
	}
	sp.data = QuerySpanData{ID: id, Conn: conn, Tagged: tagged, Start: nowWall()}
	return sp
}

// ID returns the span's trace ID (0 on a nil span).
func (sp *QuerySpan) ID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.data.ID
}

// Stage accumulates d into one stage's duration.
func (sp *QuerySpan) Stage(st QueryStage, d units.WallNanos) {
	if sp == nil || st < 0 || st >= NumQueryStages {
		return
	}
	if d < 0 {
		d = 0
	}
	sp.data.Stages[st] += d
}

// End closes the span with a terminal status, aggregates it into the
// stage histograms, and files it for the log and the export. A second
// End on the same span is ignored, so error paths can end defensively.
func (sp *QuerySpan) End(status string) {
	if sp == nil || sp.ended {
		return
	}
	sp.ended = true
	t := sp.t
	sp.data.Status = status
	sp.data.Total = nowWall() - sp.data.Start
	t.traced.Add(1)
	if t.opts.LogW != nil && sp.data.Total >= t.slowNs {
		t.slow.Add(1)
		t.mu.Lock()
		t.logLocked(&sp.data, true)
		t.mu.Unlock()
	}
	if sp.ct == nil {
		t.absorb([]QuerySpanData{sp.data})
		return
	}
	sp.ct.buf = append(sp.ct.buf, sp.data)
	if len(sp.ct.buf) >= spanFlushBatch {
		t.absorb(sp.ct.buf)
		sp.ct.buf = sp.ct.buf[:0]
	}
}

// absorb files a batch of finished spans into the histograms, the
// retained set and the normal-span reservoir — the one central lock the
// TCP path takes per spanFlushBatch queries. Histogram aggregation
// lives here rather than in End so its atomic cache lines are touched
// by one goroutine at a time instead of contended per query.
func (t *QueryTracer) absorb(batch []QuerySpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range batch {
		sp := &batch[i]
		for st := range sp.Stages {
			t.stageHist[st].observe(sp.Stages[st])
		}
		t.totalHist.observe(sp.Total)
		if len(t.kept) < t.opts.Keep {
			t.kept = append(t.kept, *sp)
		} else {
			t.dropped.Add(1)
		}
		if t.opts.LogW == nil || sp.Total >= t.slowNs {
			continue
		}
		// Algorithm R over the normal spans: fill the reservoir, then
		// replace a seeded-random slot with probability size/seen.
		t.seen++
		if len(t.res) < t.opts.Reservoir {
			t.res = append(t.res, *sp)
		} else if j := t.next() % uint64(t.seen); j < uint64(t.opts.Reservoir) {
			t.res[j] = *sp
		}
	}
}

// next is a xorshift64 step for reservoir replacement.
func (t *QueryTracer) next() uint64 {
	x := t.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	t.rng = x
	return x
}

// Traced returns how many spans ended.
func (t *QueryTracer) Traced() int64 {
	if t == nil {
		return 0
	}
	return t.traced.Load()
}

// Slow returns how many spans reached the slow threshold.
func (t *QueryTracer) Slow() int64 {
	if t == nil {
		return 0
	}
	return t.slow.Load()
}

// Dropped returns how many finished spans the retained buffer refused
// (aggregation and logging still saw them).
func (t *QueryTracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Spans returns a copy of the retained spans, in finish order.
func (t *QueryTracer) Spans() []QuerySpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]QuerySpanData(nil), t.kept...)
}

// Close appends the reservoir-sampled normal spans to the slow-query
// log and returns the log's first write error, if any. Call it after
// serving stopped and every ConnTrace closed.
func (t *QueryTracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.closed {
		t.closed = true
		for i := range t.res {
			t.logLocked(&t.res[i], false)
		}
	}
	return t.logErr
}

// queryLogLine is the slow-query log's JSONL schema. TraceID is
// rendered as 16 lower-case hex digits so log greps and the replay
// join never fight integer formatting.
type queryLogLine struct {
	TraceID string           `json:"trace_id"`
	Conn    string           `json:"conn"`
	Tagged  bool             `json:"tagged"`
	Status  string           `json:"status"`
	Slow    bool             `json:"slow"`
	TotalNs int64            `json:"total_ns"`
	Stages  map[string]int64 `json:"stages"`
}

// logLocked writes one span to the log; the caller holds t.mu.
func (t *QueryTracer) logLocked(sp *QuerySpanData, slow bool) {
	if t.opts.LogW == nil || t.logErr != nil {
		return
	}
	line := queryLogLine{
		TraceID: fmt.Sprintf("%016x", sp.ID),
		Conn:    sp.Conn,
		Tagged:  sp.Tagged,
		Status:  sp.Status,
		Slow:    slow,
		TotalNs: wallInt(sp.Total),
		Stages:  make(map[string]int64, NumQueryStages),
	}
	for i := QueryStage(0); i < NumQueryStages; i++ {
		if d := sp.Stages[i]; d > 0 {
			line.Stages[i.String()] = wallInt(d)
		}
	}
	data, err := json.Marshal(line)
	if err != nil {
		t.logErr = err
		return
	}
	if _, err := t.opts.LogW.Write(append(data, '\n')); err != nil {
		t.logErr = err
	}
}

// QueryLogEntry is one parsed slow-query log line.
type QueryLogEntry struct {
	TraceID string           `json:"trace_id"`
	Conn    string           `json:"conn"`
	Tagged  bool             `json:"tagged"`
	Status  string           `json:"status"`
	Slow    bool             `json:"slow"`
	TotalNs int64            `json:"total_ns"`
	Stages  map[string]int64 `json:"stages"`
}

// ID parses the entry's 16-hex-digit trace ID.
func (e *QueryLogEntry) ID() uint64 {
	var id uint64
	if _, err := fmt.Sscanf(e.TraceID, "%016x", &id); err != nil {
		return 0
	}
	return id
}

// ValidateQueryLog parses a slow-query log and checks its schema:
// every line is valid JSON with a 16-hex-digit nonzero trace ID, a
// known terminal status, a non-negative total, and stage keys drawn
// from the stage-name set with non-negative durations. It returns the
// parsed entries so callers (the replay join, the CI smoke step) reuse
// the same parser the validator trusts.
func ValidateQueryLog(r io.Reader) ([]QueryLogEntry, error) {
	stageNames := map[string]bool{}
	for i := QueryStage(0); i < NumQueryStages; i++ {
		stageNames[i.String()] = true
	}
	var entries []QueryLogEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e QueryLogEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("query log line %d: invalid JSON: %w", line, err)
		}
		if len(e.TraceID) != 16 || e.ID() == 0 {
			return nil, fmt.Errorf("query log line %d: bad trace_id %q (want 16 hex digits, nonzero)", line, e.TraceID)
		}
		if !KnownQueryStatuses[e.Status] {
			return nil, fmt.Errorf("query log line %d: unknown status %q", line, e.Status)
		}
		if e.Conn == "" {
			return nil, fmt.Errorf("query log line %d: empty conn", line)
		}
		if e.TotalNs < 0 {
			return nil, fmt.Errorf("query log line %d: negative total_ns", line)
		}
		for name, ns := range e.Stages {
			if !stageNames[name] {
				return nil, fmt.Errorf("query log line %d: unknown stage %q", line, name)
			}
			if ns < 0 {
				return nil, fmt.Errorf("query log line %d: negative %s duration", line, name)
			}
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("query log: %w", err)
	}
	return entries, nil
}

// WriteChromeTrace exports the retained spans as Perfetto-loadable
// Chrome trace-event JSON: one lane-packed "query" umbrella event per
// span (args carry the trace ID, connection and status) with its stage
// events nested inside. Stages are laid out back to back from the
// span's start — the layout shows each stage's share, not the exact
// sub-microsecond gaps between them.
func (t *QueryTracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
	var laneEnds []units.WallNanos
	events := make([]chromeEvent, 0, 2*len(spans))
	for i := range spans {
		sp := &spans[i]
		lane := -1
		for l, end := range laneEnds {
			if end <= sp.Start {
				lane = l
				break
			}
		}
		if lane == -1 {
			lane = len(laneEnds)
			laneEnds = append(laneEnds, 0)
		}
		laneEnds[lane] = sp.Start + sp.Total
		args := map[string]string{
			"trace_id": fmt.Sprintf("%016x", sp.ID),
			"conn":     sp.Conn,
			"status":   sp.Status,
		}
		events = append(events, chromeEvent{
			Name: "query", Cat: "query", Ph: "X",
			Ts: wallInt(sp.Start) / 1000, Dur: wallInt(sp.Total) / 1000,
			Pid: 1, Tid: lane + 1, Args: args,
		})
		at := sp.Start
		for st := QueryStage(0); st < NumQueryStages; st++ {
			d := sp.Stages[st]
			if d <= 0 {
				continue
			}
			events = append(events, chromeEvent{
				Name: st.String(), Cat: "stage", Ph: "X",
				Ts: wallInt(at) / 1000, Dur: wallInt(d) / 1000,
				Pid: 1, Tid: lane + 1,
			})
			at += d
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ---- fixed-bucket wall-latency histogram ----

// wallHist is a fixed-bucket power-of-two latency histogram over
// nanoseconds: bucket i counts observations v with bits.Len64(v) == i.
// Observation is lock-free (atomic adds into a fixed array) — the
// per-query aggregation path takes no mutex.
type wallHist struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func (h *wallHist) observe(v units.WallNanos) {
	n := wallInt(v)
	if n < 0 {
		n = 0
	}
	h.count.Add(1)
	h.sum.Add(n)
	h.buckets[bits.Len64(uint64(n))].Add(1)
}

// quantile estimates the q-quantile in nanoseconds by cumulative
// bucket walk with linear interpolation inside the landing bucket.
func (h *wallHist) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / n
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	_, hi := bucketBounds(histBuckets - 1)
	return hi
}

// bucketBounds returns bucket i's value range [lo, hi): bucket 0 holds
// zeros, bucket i>=1 holds [2^(i-1), 2^i).
func bucketBounds(i int) (lo, hi float64) {
	if i <= 0 {
		return 0, 1
	}
	if i >= 63 {
		return float64(uint64(1) << 62), float64(uint64(1) << 63)
	}
	return float64(uint64(1) << (i - 1)), float64(uint64(1) << i)
}

// stageQuantiles are the fixed quantiles /metrics exposes per stage.
var stageQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}, {"0.999", 0.999},
}

// WritePrometheus writes the tracer's aggregates in Prometheus text
// exposition format: one summary per serving stage (plus "total") with
// p50/p95/p99/p999 quantiles, and the traced/slow/dropped counters.
func (t *QueryTracer) WritePrometheus(w io.Writer) error {
	if t == nil {
		return nil
	}
	var b []byte
	b = appendPromHeader(b, "cgp_query_stage_latency_ns",
		"Wall-clock latency of one serving stage, per query.", "summary")
	emit := func(stage string, h *wallHist) {
		for _, sq := range stageQuantiles {
			b = append(b, fmt.Sprintf("cgp_query_stage_latency_ns{stage=%q,quantile=%q} %g\n",
				promEscape(stage), sq.label, h.quantile(sq.q))...)
		}
		b = append(b, fmt.Sprintf("cgp_query_stage_latency_ns_sum{stage=%q} %d\n",
			promEscape(stage), h.sum.Load())...)
		b = append(b, fmt.Sprintf("cgp_query_stage_latency_ns_count{stage=%q} %d\n",
			promEscape(stage), h.count.Load())...)
	}
	for i := QueryStage(0); i < NumQueryStages; i++ {
		emit(i.String(), &t.stageHist[i])
	}
	emit("total", &t.totalHist)
	b = appendPromHeader(b, "cgp_queries_traced_total", "Query spans ended.", "counter")
	b = append(b, fmt.Sprintf("cgp_queries_traced_total %d\n", t.traced.Load())...)
	b = appendPromHeader(b, "cgp_slow_queries_total", "Query spans at or over the slow threshold.", "counter")
	b = append(b, fmt.Sprintf("cgp_slow_queries_total %d\n", t.slow.Load())...)
	b = appendPromHeader(b, "cgp_trace_spans_dropped_total", "Finished spans the retained buffer refused.", "counter")
	b = append(b, fmt.Sprintf("cgp_trace_spans_dropped_total %d\n", t.dropped.Load())...)
	_, err := w.Write(b)
	return err
}
