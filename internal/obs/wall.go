package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"cgp/internal/units"
)

// nowWall reads the host clock. This is the wall-clock observability
// domain's sanctioned clock read: the result is typed units.WallNanos,
// which the cyclesafe analyzer keeps out of deterministic output, and
// everything in this package that touches it (spans, wall metrics, the
// run log) is quarantined from report bodies.
//
//cgplint:ignore detrand the wall-clock domain's single clock source; results are typed units.WallNanos and cannot reach deterministic output
func nowWall() units.WallNanos { return units.WallNanos(time.Now().UnixNano()) }

// wallInt converts a wall-clock quantity to a plain integer for
// serialization. The conversion lives here, in the wall-domain
// artifact writers, so the suppression below is the only sanctioned
// exit from the WallNanos type.
//
//cgplint:ignore cyclesafe wall-domain serialization boundary: the value flows into /metrics, the Chrome trace or the run log, never into report bodies
func wallInt(v units.WallNanos) int64 { return int64(v) }

// WallRegistry is the wall-clock-domain registry: phase durations and
// host-dependent event counts (retries, checkpoint hits as observed,
// scheduling accidents). Values here differ run to run; they are
// served by /metrics with a `wall_` prefix and must never feed a
// figure, report body, or deterministic-domain metric — cgplint's
// detrand and cyclesafe passes enforce the boundary. A nil
// *WallRegistry absorbs all operations.
type WallRegistry struct {
	mu     sync.Mutex
	counts map[string]int64
	totals map[string]units.WallNanos
	spent  map[string]int64
}

// NewWallRegistry returns an empty wall-clock-domain registry.
func NewWallRegistry() *WallRegistry {
	return &WallRegistry{
		counts: make(map[string]int64),
		totals: make(map[string]units.WallNanos),
		spent:  make(map[string]int64),
	}
}

// Incr adds n to the named wall-domain event counter.
func (r *WallRegistry) Incr(name string, n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counts[name] += n
	r.mu.Unlock()
}

// Observe records one duration under the named timer: the count of
// observations and the total time both accumulate.
func (r *WallRegistry) Observe(name string, d units.WallNanos) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.totals[name] += d
	r.spent[name]++
	r.mu.Unlock()
}

// Count returns the named event counter's value.
func (r *WallRegistry) Count(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[name]
}

// Total returns the accumulated duration under the named timer.
func (r *WallRegistry) Total(name string) units.WallNanos {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totals[name]
}

// WriteText writes the registry in the same text exposition format as
// Registry.WriteText, every line prefixed `wall_` to mark the domain.
// Timers expand to `wall_<name>_count` and `wall_<name>_total_ns`.
func (r *WallRegistry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	lines := make([]string, 0, len(r.counts)+2*len(r.totals))
	for name, n := range r.counts {
		lines = append(lines, fmt.Sprintf("wall_%s %d", name, n))
	}
	for name, total := range r.totals {
		lines = append(lines, fmt.Sprintf("wall_%s_count %d", name, r.spent[name]))
		lines = append(lines, fmt.Sprintf("wall_%s_total_ns %d", name, wallInt(total)))
	}
	r.mu.Unlock()
	sort.Strings(lines)
	for _, line := range lines {
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return err
		}
	}
	return nil
}
