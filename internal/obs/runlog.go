package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JobState is a job lifecycle state, emitted to the run log and
// tracked by Progress. States are terminal or not: queued, started and
// replaying jobs are in flight; executed, replayed, resumed and failed
// jobs are settled.
type JobState string

const (
	// JobQueued: the job entered the campaign and is waiting for a
	// worker or for a singleflight leader to finish.
	JobQueued JobState = "queued"
	// JobStarted: a worker began simulating the job's cell.
	JobStarted JobState = "started"
	// JobExecuted: the cell was simulated to completion.
	JobExecuted JobState = "executed"
	// JobReplayed: the job's result came from replaying a recorded
	// trace another job produced (singleflight coalescing).
	JobReplayed JobState = "replayed"
	// JobResumed: the job's result was loaded from a checkpoint written
	// by an earlier campaign; nothing was simulated.
	JobResumed JobState = "resumed"
	// JobFailed: the job gave up after exhausting its retry budget (or
	// was cancelled).
	JobFailed JobState = "failed"
)

// knownJobStates is the validation whitelist for ValidateRunLog.
var knownJobStates = map[JobState]bool{
	JobQueued:   true,
	JobStarted:  true,
	JobExecuted: true,
	JobReplayed: true,
	JobResumed:  true,
	JobFailed:   true,
}

// RunLogEntry is one JSONL record of the structured run log. The log
// is a wall-clock-domain artifact: entry order and timestamps reflect
// the host schedule and differ run to run, but the set of
// (event, workload, config) tuples for a campaign is deterministic —
// which is exactly what the chaos suite asserts against.
type RunLogEntry struct {
	Seq      int64  `json:"seq"`
	Event    string `json:"event"`
	Workload string `json:"workload"`
	Config   string `json:"config"`
	Detail   string `json:"detail,omitempty"`
	WallNs   int64  `json:"wall_ns"`
}

// RunLog writes job lifecycle events as JSON Lines. It is safe for
// concurrent use; sequence numbers are assigned under the same lock
// that orders the writes, so seq is strictly increasing in file order.
// A nil *RunLog absorbs all operations.
type RunLog struct {
	mu  sync.Mutex
	w   io.Writer
	seq int64
	err error
}

// NewRunLog returns a run log writing to w.
func NewRunLog(w io.Writer) *RunLog {
	return &RunLog{w: w}
}

// Emit appends one lifecycle event. Write errors are sticky and
// reported by Err; emission never fails the campaign.
func (l *RunLog) Emit(state JobState, workload, config, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	l.seq++
	entry := RunLogEntry{
		Seq:      l.seq,
		Event:    string(state),
		Workload: workload,
		Config:   config,
		Detail:   detail,
		WallNs:   wallInt(nowWall()),
	}
	data, err := json.Marshal(entry)
	if err != nil {
		l.err = err
		return
	}
	data = append(data, '\n')
	if _, err := l.w.Write(data); err != nil {
		l.err = err
	}
}

// Err returns the first write or encode error, if any.
func (l *RunLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// ValidateRunLog parses a JSONL run log and checks its schema: every
// line is a valid entry, events come from the known lifecycle set,
// workload and config are non-empty, and seq strictly increases in
// file order. It returns the parsed entries for further assertions
// (the chaos suite checks lifecycle ordering per job).
func ValidateRunLog(r io.Reader) ([]RunLogEntry, error) {
	var entries []RunLogEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	lastSeq := int64(0)
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e RunLogEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("run log line %d: invalid JSON: %w", line, err)
		}
		if !knownJobStates[JobState(e.Event)] {
			return nil, fmt.Errorf("run log line %d: unknown event %q", line, e.Event)
		}
		if e.Workload == "" || e.Config == "" {
			return nil, fmt.Errorf("run log line %d: empty workload or config", line)
		}
		if e.Seq <= lastSeq {
			return nil, fmt.Errorf("run log line %d: seq %d not greater than previous %d", line, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("run log: %w", err)
	}
	return entries, nil
}
