package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JobState is a job lifecycle state, emitted to the run log and
// tracked by Progress. States are terminal or not: queued, started and
// replaying jobs are in flight; executed, replayed, resumed and failed
// jobs are settled.
type JobState string

const (
	// JobQueued: the job entered the campaign and is waiting for a
	// worker or for a singleflight leader to finish.
	JobQueued JobState = "queued"
	// JobStarted: a worker began simulating the job's cell.
	JobStarted JobState = "started"
	// JobExecuted: the cell was simulated to completion.
	JobExecuted JobState = "executed"
	// JobReplayed: the job's result came from replaying a recorded
	// trace another job produced (singleflight coalescing).
	JobReplayed JobState = "replayed"
	// JobResumed: the job's result was loaded from a checkpoint written
	// by an earlier campaign; nothing was simulated.
	JobResumed JobState = "resumed"
	// JobFailed: the job gave up after exhausting its retry budget (or
	// was cancelled).
	JobFailed JobState = "failed"
)

// Serving lifecycle states: the SQL server front-end logs its traffic
// through the same run-log machinery (entries carry the server's
// listen address as the workload and the client session as the
// config), so a serving run's artifact validates with the same schema
// as a campaign's.
const (
	// ServerStarted / ServerStopped bracket one serving process.
	ServerStarted JobState = "server-start"
	ServerStopped JobState = "server-stop"
	// ConnOpened / ConnClosed bracket one client connection.
	ConnOpened JobState = "conn-open"
	ConnClosed JobState = "conn-close"
	// QueryServed: a query completed and its response was written.
	QueryServed JobState = "served"
	// QueryShed: admission control rejected a query (ErrOverloaded).
	QueryShed JobState = "shed"
	// CaptureDropped: the live-capture ring dropped a query batch
	// under backpressure (the query itself was still served).
	CaptureDropped JobState = "capture-drop"
	// CaptureSealed: the live capture was sealed and written out.
	CaptureSealed JobState = "capture-seal"
)

// knownJobStates is the validation whitelist for ValidateRunLog.
var knownJobStates = map[JobState]bool{
	JobQueued:      true,
	JobStarted:     true,
	JobExecuted:    true,
	JobReplayed:    true,
	JobResumed:     true,
	JobFailed:      true,
	ServerStarted:  true,
	ServerStopped:  true,
	ConnOpened:     true,
	ConnClosed:     true,
	QueryServed:    true,
	QueryShed:      true,
	CaptureDropped: true,
	CaptureSealed:  true,
}

// RunLogEntry is one JSONL record of the structured run log. The log
// is a wall-clock-domain artifact: entry order and timestamps reflect
// the host schedule and differ run to run, but the set of
// (event, workload, config) tuples for a campaign is deterministic —
// which is exactly what the chaos suite asserts against.
type RunLogEntry struct {
	Seq      int64  `json:"seq"`
	Event    string `json:"event"`
	Workload string `json:"workload"`
	Config   string `json:"config"`
	Detail   string `json:"detail,omitempty"`
	// Worker names the process that observed the event: "main" for a
	// single-process campaign, "w1".."wN" for sharded campaign workers.
	// Forwarded entries (a coordinator folding worker logs into its
	// own) keep the originating worker id.
	Worker string `json:"worker"`
	WallNs int64  `json:"wall_ns"`
}

// DefaultWorker is the worker id stamped on entries when none is set:
// the single-process campaign's only "worker".
const DefaultWorker = "main"

// RunLog writes job lifecycle events as JSON Lines. It is safe for
// concurrent use; sequence numbers are assigned under the same lock
// that orders the writes, so seq is strictly increasing in file order.
// A nil *RunLog absorbs all operations.
type RunLog struct {
	mu     sync.Mutex
	w      io.Writer
	worker string
	seq    int64
	err    error
}

// NewRunLog returns a run log writing to w.
func NewRunLog(w io.Writer) *RunLog {
	return &RunLog{w: w}
}

// SetWorker sets the worker id stamped on subsequently emitted
// entries (the default is DefaultWorker).
func (l *RunLog) SetWorker(id string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.worker = id
	l.mu.Unlock()
}

// Emit appends one lifecycle event. Write errors are sticky and
// reported by Err; emission never fails the campaign.
func (l *RunLog) Emit(state JobState, workload, config, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	worker := l.worker
	if worker == "" {
		worker = DefaultWorker
	}
	l.emitLocked(RunLogEntry{
		Event:    string(state),
		Workload: workload,
		Config:   config,
		Detail:   detail,
		Worker:   worker,
	})
}

// EmitEntry appends a fully formed entry, preserving its worker id and
// wall timestamp but restamping its sequence number under this log's
// lock. A campaign coordinator uses it to fold entries forwarded from
// worker processes into one file whose seq stays strictly increasing.
func (l *RunLog) EmitEntry(e RunLogEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if e.Worker == "" {
		e.Worker = DefaultWorker
	}
	l.emitLocked(e)
}

// emitLocked assigns the next seq (and a wall timestamp when the entry
// has none) and writes the entry; the caller holds l.mu.
func (l *RunLog) emitLocked(e RunLogEntry) {
	if l.err != nil {
		return
	}
	l.seq++
	e.Seq = l.seq
	if e.WallNs == 0 {
		e.WallNs = wallInt(nowWall())
	}
	data, err := json.Marshal(e)
	if err != nil {
		l.err = err
		return
	}
	data = append(data, '\n')
	if _, err := l.w.Write(data); err != nil {
		l.err = err
	}
}

// Err returns the first write or encode error, if any.
func (l *RunLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// ValidateRunLog parses a JSONL run log and checks its schema: every
// line is a valid entry, events come from the known lifecycle set,
// workload, config and worker are non-empty, and seq strictly
// increases in file order. When workers are given, each entry's
// worker id must additionally come from that set — the experiments
// exit boundary passes the campaign's known ids ("main" plus
// "w1".."wN" when sharded), so an entry from an unknown or missing
// worker fails validation instead of slipping into the artifact. It
// returns the parsed entries for further assertions (the chaos suite
// checks lifecycle ordering per job).
func ValidateRunLog(r io.Reader, workers ...string) ([]RunLogEntry, error) {
	known := map[string]bool{}
	for _, w := range workers {
		known[w] = true
	}
	var entries []RunLogEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	lastSeq := int64(0)
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e RunLogEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("run log line %d: invalid JSON: %w", line, err)
		}
		if !knownJobStates[JobState(e.Event)] {
			return nil, fmt.Errorf("run log line %d: unknown event %q", line, e.Event)
		}
		if e.Workload == "" || e.Config == "" {
			return nil, fmt.Errorf("run log line %d: empty workload or config", line)
		}
		if e.Worker == "" {
			return nil, fmt.Errorf("run log line %d: missing worker id", line)
		}
		if len(known) > 0 && !known[e.Worker] {
			return nil, fmt.Errorf("run log line %d: unknown worker %q", line, e.Worker)
		}
		if e.Seq <= lastSeq {
			return nil, fmt.Errorf("run log line %d: seq %d not greater than previous %d", line, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("run log: %w", err)
	}
	return entries, nil
}
