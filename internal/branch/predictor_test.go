package branch

import (
	"math/rand"
	"testing"

	"cgp/internal/isa"
)

func TestPredictorLearnsBias(t *testing.T) {
	p := NewPredictor(2048)
	// A strongly taken branch should be predicted correctly after
	// warmup.
	pc := isa.Addr(0x400100)
	for i := 0; i < 10; i++ {
		p.Predict(pc, true)
	}
	before := p.Mispredicts()
	for i := 0; i < 100; i++ {
		p.Predict(pc, true)
	}
	if p.Mispredicts() != before {
		t.Errorf("mispredicted a saturated always-taken branch")
	}
}

func TestPredictorBiasedSites(t *testing.T) {
	p := NewPredictor(2048)
	rng := rand.New(rand.NewSource(3))
	// 100 sites, each 90% biased: long-run mispredict rate must be well
	// below 30%.
	bias := make([]bool, 100)
	for i := range bias {
		bias[i] = rng.Intn(2) == 0
	}
	for i := 0; i < 50000; i++ {
		site := rng.Intn(100)
		taken := rng.Float64() < 0.9
		if !bias[site] {
			taken = !taken
		}
		p.Predict(isa.Addr(0x400000+site*4), taken)
	}
	if rate := p.MispredictRate(); rate > 0.3 {
		t.Errorf("mispredict rate %.3f too high for 90%%-biased sites", rate)
	}
}

func TestPredictorBadEntriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two entries")
		}
	}()
	NewPredictor(1000)
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(8)
	r.Push(RASEntry{ReturnAddr: 100, CallerStart: 10})
	r.Push(RASEntry{ReturnAddr: 200, CallerStart: 20})
	e, ok := r.Pop()
	if !ok || e.ReturnAddr != 200 || e.CallerStart != 20 {
		t.Fatalf("pop = %+v,%v", e, ok)
	}
	e, ok = r.Pop()
	if !ok || e.ReturnAddr != 100 {
		t.Fatalf("pop = %+v,%v", e, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop from empty RAS reported ok")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := 1; i <= 6; i++ {
		r.Push(RASEntry{ReturnAddr: isa.Addr(i * 100)})
	}
	if r.Depth() != 4 {
		t.Fatalf("depth = %d, want 4", r.Depth())
	}
	// The most recent four survive: 600, 500, 400, 300.
	want := []isa.Addr{600, 500, 400, 300}
	for _, w := range want {
		e, ok := r.Pop()
		if !ok || e.ReturnAddr != w {
			t.Fatalf("pop = %+v,%v; want %d", e, ok, w)
		}
	}
}

func TestRASOutcomeCounting(t *testing.T) {
	r := NewRAS(8)
	r.Push(RASEntry{ReturnAddr: 104})
	e, ok := r.Pop()
	if !r.RecordOutcome(e, ok, 104) {
		t.Error("correct return counted as mispredict")
	}
	r.Push(RASEntry{ReturnAddr: 104})
	e, ok = r.Pop()
	if r.RecordOutcome(e, ok, 999) {
		t.Error("wrong return counted as correct")
	}
	if r.Mispredicts() != 1 {
		t.Errorf("mispredicts = %d, want 1", r.Mispredicts())
	}
	if r.Pops() != 2 {
		t.Errorf("pops = %d, want 2", r.Pops())
	}
}

func TestRASFlush(t *testing.T) {
	r := NewRAS(8)
	r.Push(RASEntry{ReturnAddr: 100})
	r.Flush()
	if r.Depth() != 0 {
		t.Errorf("depth = %d after flush", r.Depth())
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop after flush reported ok")
	}
}

func TestRASDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero-depth RAS")
		}
	}()
	NewRAS(0)
}
