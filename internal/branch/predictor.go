// Package branch models the front-end predictors of the simulated CPU:
// a two-level adaptive conditional-branch predictor (Table 1: 2-level,
// 2K entries) and the modified return address stack CGP requires (§3.2),
// which pushes the caller's starting address alongside the return
// address so that return instructions can index the CGHC.
package branch

import "cgp/internal/isa"

// Predictor is a gshare-style two-level predictor: a global history
// register XORed into the branch PC indexes a table of 2-bit saturating
// counters.
type Predictor struct {
	counters []uint8
	mask     uint32
	history  uint32

	lookups     int64
	mispredicts int64
}

// NewPredictor builds a predictor with the given number of pattern-table
// entries (a power of two; Table 1 uses 2K).
func NewPredictor(entries int) *Predictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("branch: entries must be a positive power of two")
	}
	p := &Predictor{
		counters: make([]uint8, entries),
		mask:     uint32(entries - 1),
	}
	// Weakly not-taken initial state.
	for i := range p.counters {
		p.counters[i] = 1
	}
	return p
}

// historyBits bounds how much global history folds into the index. A
// short history keeps the pattern table from being diluted across
// uncorrelated paths while still capturing loop shapes.
const historyBits = 3

func (p *Predictor) index(pc isa.Addr) uint32 {
	// History folds into the upper index bits so that neighbouring
	// branch PCs do not alias each other's history-shifted entries.
	h := (p.history & (1<<historyBits - 1)) << 7
	return (uint32(pc>>2) ^ h) & p.mask
}

// Predict runs one conditional branch through the predictor: it returns
// whether the prediction matched the actual outcome, then updates the
// counter and history with the truth.
//
//cgplint:hotpath
func (p *Predictor) Predict(pc isa.Addr, taken bool) bool {
	p.lookups++
	i := p.index(pc)
	pred := p.counters[i] >= 2
	if taken {
		if p.counters[i] < 3 {
			p.counters[i]++
		}
	} else {
		if p.counters[i] > 0 {
			p.counters[i]--
		}
	}
	p.history = p.history<<1 | uint32(b2u(taken))
	if pred != taken {
		p.mispredicts++
		return false
	}
	return true
}

// Lookups returns the number of predictions made.
func (p *Predictor) Lookups() int64 { return p.lookups }

// Mispredicts returns the number of wrong predictions.
func (p *Predictor) Mispredicts() int64 { return p.mispredicts }

// MispredictRate returns mispredicts/lookups.
func (p *Predictor) MispredictRate() float64 {
	if p.lookups == 0 {
		return 0
	}
	return float64(p.mispredicts) / float64(p.lookups)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// RASEntry is one element of the modified return address stack: the
// conventional return address plus the caller function's starting
// address (the CGP modification of §3.2).
type RASEntry struct {
	ReturnAddr  isa.Addr
	CallerStart isa.Addr
}

// RAS is a fixed-depth circular return address stack. Overflow wraps and
// silently overwrites the oldest entries, as hardware stacks do; an
// underflowed or clobbered pop simply yields a wrong prediction.
type RAS struct {
	entries []RASEntry
	top     int
	depth   int

	pops        int64
	mispredicts int64
}

// NewRAS builds a stack with n entries.
func NewRAS(n int) *RAS {
	if n <= 0 {
		panic("branch: RAS depth must be positive")
	}
	return &RAS{entries: make([]RASEntry, n)}
}

// Push records a call.
//
//cgplint:hotpath
func (r *RAS) Push(e RASEntry) {
	r.top = (r.top + 1) % len(r.entries)
	r.entries[r.top] = e
	if r.depth < len(r.entries) {
		r.depth++
	}
}

// Pop predicts the target of a return. The second result reports
// whether the stack had a live entry; an empty stack returns a zero
// prediction.
//
//cgplint:hotpath
func (r *RAS) Pop() (RASEntry, bool) {
	r.pops++
	if r.depth == 0 {
		return RASEntry{}, false
	}
	e := r.entries[r.top]
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	return e, true
}

// RecordOutcome compares a popped prediction with the actual return
// target and counts mispredicts.
//
//cgplint:hotpath
func (r *RAS) RecordOutcome(predicted RASEntry, ok bool, actual isa.Addr) bool {
	if !ok || predicted.ReturnAddr != actual {
		r.mispredicts++
		return false
	}
	return true
}

// Flush empties the stack (on context switch).
//
//cgplint:hotpath
func (r *RAS) Flush() { r.depth = 0 }

// Depth returns the current number of live entries.
func (r *RAS) Depth() int { return r.depth }

// Pops returns the number of return predictions made.
func (r *RAS) Pops() int64 { return r.pops }

// Mispredicts returns the number of wrong return predictions.
func (r *RAS) Mispredicts() int64 { return r.mispredicts }
