// Package isa defines the synthetic machine model shared by the tracer,
// the code-layout tool and the cycle simulator: address arithmetic,
// instruction and cache-line geometry, and the fixed address-space map.
//
// The model mirrors the Alpha-class machine of the paper: 4-byte fixed
// width instructions and 32-byte cache lines (8 instructions per line).
package isa

// Addr is a byte address in the simulated address space.
type Addr uint64

const (
	// InstrBytes is the size of one instruction word.
	InstrBytes = 4
	// LineBytes is the cache line size used throughout the hierarchy
	// (Table 1: 32-byte lines in L1I, L1D and L2).
	LineBytes = 32
	// InstrPerLine is the number of instructions per cache line.
	InstrPerLine = LineBytes / InstrBytes
	// LineShift is log2(LineBytes).
	LineShift = 5
)

// Fixed segment bases. Code and data are disjoint so a unified L2 sees
// both streams without aliasing.
const (
	// CodeBase is where binary images are laid out.
	CodeBase Addr = 0x0040_0000
	// DataBase is where database pages are mapped for data references.
	DataBase Addr = 0x4000_0000
	// StackBase is where per-thread stack references are mapped.
	StackBase Addr = 0x7000_0000
)

// Line returns the cache-line index containing a.
func Line(a Addr) Addr { return a >> LineShift }

// LineAddr returns the address of the first byte of the line containing a.
func LineAddr(a Addr) Addr { return a &^ (LineBytes - 1) }

// NextLine returns the address of the line following the one containing a.
func NextLine(a Addr) Addr { return LineAddr(a) + LineBytes }

// LinesCovered returns how many distinct cache lines the byte range
// [a, a+n) touches. n is in bytes; zero-length ranges cover zero lines.
func LinesCovered(a Addr, n int) int {
	if n <= 0 {
		return 0
	}
	first := Line(a)
	last := Line(a + Addr(n) - 1)
	return int(last-first) + 1
}

// InstrRangeBytes converts an instruction count to a byte length.
func InstrRangeBytes(n int) int { return n * InstrBytes }

// AlignUp rounds a up to the next multiple of align (a power of two).
func AlignUp(a Addr, align Addr) Addr { return (a + align - 1) &^ (align - 1) }
