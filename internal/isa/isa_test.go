package isa

import (
	"testing"
	"testing/quick"
)

func TestLineArithmetic(t *testing.T) {
	cases := []struct {
		addr     Addr
		line     Addr
		lineAddr Addr
	}{
		{0, 0, 0},
		{1, 0, 0},
		{31, 0, 0},
		{32, 1, 32},
		{33, 1, 32},
		{0x0040_0000, 0x0040_0000 / 32, 0x0040_0000},
		{0x0040_001F, 0x0040_0000 / 32, 0x0040_0000},
	}
	for _, c := range cases {
		if got := Line(c.addr); got != c.line {
			t.Errorf("Line(%#x) = %d, want %d", c.addr, got, c.line)
		}
		if got := LineAddr(c.addr); got != c.lineAddr {
			t.Errorf("LineAddr(%#x) = %#x, want %#x", c.addr, got, c.lineAddr)
		}
	}
}

func TestNextLine(t *testing.T) {
	if got := NextLine(0); got != 32 {
		t.Errorf("NextLine(0) = %d, want 32", got)
	}
	if got := NextLine(31); got != 32 {
		t.Errorf("NextLine(31) = %d, want 32", got)
	}
	if got := NextLine(32); got != 64 {
		t.Errorf("NextLine(32) = %d, want 64", got)
	}
}

func TestLinesCovered(t *testing.T) {
	cases := []struct {
		addr Addr
		n    int
		want int
	}{
		{0, 0, 0},
		{0, -4, 0},
		{0, 1, 1},
		{0, 32, 1},
		{0, 33, 2},
		{30, 4, 2},  // straddles a boundary
		{31, 1, 1},  // last byte of a line
		{31, 2, 2},  // crosses into the next
		{0, 256, 8}, // exactly 8 lines
	}
	for _, c := range cases {
		if got := LinesCovered(c.addr, c.n); got != c.want {
			t.Errorf("LinesCovered(%d, %d) = %d, want %d", c.addr, c.n, got, c.want)
		}
	}
}

func TestAlignUp(t *testing.T) {
	if got := AlignUp(0, 32); got != 0 {
		t.Errorf("AlignUp(0,32) = %d", got)
	}
	if got := AlignUp(1, 32); got != 32 {
		t.Errorf("AlignUp(1,32) = %d", got)
	}
	if got := AlignUp(32, 32); got != 32 {
		t.Errorf("AlignUp(32,32) = %d", got)
	}
	if got := AlignUp(33, 32); got != 64 {
		t.Errorf("AlignUp(33,32) = %d", got)
	}
}

func TestInstrRangeBytes(t *testing.T) {
	if got := InstrRangeBytes(8); got != 32 {
		t.Errorf("InstrRangeBytes(8) = %d, want 32", got)
	}
}

// Property: LinesCovered is consistent with walking the range byte by
// byte and counting distinct line indexes.
func TestLinesCoveredProperty(t *testing.T) {
	f := func(addr16 uint16, n8 uint8) bool {
		addr := Addr(addr16)
		n := int(n8)
		got := LinesCovered(addr, n)
		seen := map[Addr]bool{}
		for i := 0; i < n; i++ {
			seen[Line(addr+Addr(i))] = true
		}
		return got == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AlignUp returns the least multiple of align that is >= a.
func TestAlignUpProperty(t *testing.T) {
	f := func(a32 uint32, shift uint8) bool {
		align := Addr(1) << (shift % 12)
		a := Addr(a32)
		up := AlignUp(a, align)
		return up >= a && up%align == 0 && up-a < align
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
