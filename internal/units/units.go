// Package units defines the named quantity types the simulator's
// accounting is written in. A cycle count and an instruction count are
// both int64s, and before these types existed nothing stopped a stats
// field from absorbing the wrong one — the resulting figures are
// plausible numbers that reproduce nobody's paper. The cyclesafe
// analyzer (internal/analysis/cyclesafe) recognizes every defined
// integer type in a package named "units" and enforces two rules at
// go vet time:
//
//   - no narrowing: converting a unit value to int/int32/etc. is
//     flagged; cycle and instruction counters overflow 32 bits within
//     seconds of simulated time. Widening to int64/uint64/float64 is
//     the sanctioned way out of the type.
//   - no unit mixing: arithmetic combining two different unit types
//     (Cycles + Instrs) and direct conversions between them
//     (Cycles(instrs)) are flagged; crossing dimensions must go
//     through an explicit int64 or float64 conversion, which makes
//     the intent visible at the call site.
//
// Untyped constants interact freely with unit types, so literals in
// configs and arithmetic like `cycles += 2` stay unchanged.
package units

// Cycles counts CPU clock cycles. Latencies (an L2 hit, a DRAM trip,
// a mispredict penalty) are also Cycles: they add onto the clock.
type Cycles int64

// Instrs counts dynamic instructions.
type Instrs int64

// WallNanos is a host wall-clock reading or duration in nanoseconds —
// the wall-clock observability domain's quantity type. It is
// deliberately a units type so the cyclesafe analyzer polices the
// boundary between the two observability domains: converting WallNanos
// into Cycles/Instrs (directly or laundered through int64) is flagged,
// as is formatting a WallNanos value into deterministic report output.
// Wall-clock values vary run to run; nothing derived from one may feed
// a figure, a report body, or a deterministic-domain metric.
//
// The "Wall" name prefix is load-bearing: detrand and cyclesafe
// recognize wall-domain unit types by it (any integer type in a
// package named "units" whose name starts with "Wall").
type WallNanos int64

// EstCycles counts *estimated* CPU clock cycles: a whole-run cycle
// count extrapolated from sampled measurement windows rather than
// observed directly. It is deliberately a distinct type from Cycles so
// the cyclesafe analyzer polices the boundary between measured and
// estimated quantities: converting EstCycles into Cycles (directly or
// laundered through int64) is flagged, because an estimate that slips
// into a measured-cycles field turns a ±CI approximation into a fact.
// Code that genuinely needs to treat an estimate as cycles (a display
// ratio, a tolerance check) exits through the sanctioned int64/float64
// conversions, which keeps the intent visible at the call site.
//
// The "Est" name prefix is load-bearing: cyclesafe recognizes
// estimated-domain unit types by it (any integer type in a package
// named "units" whose name starts with "Est").
type EstCycles int64

// IPC returns instructions per cycle, the only cross-unit ratio the
// stats layer needs often enough to deserve a helper.
func IPC(i Instrs, c Cycles) float64 {
	if c == 0 {
		return 0
	}
	return float64(i) / float64(c)
}
