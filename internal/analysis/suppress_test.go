package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestCheckIgnores(t *testing.T) {
	fset, files := parseOne(t, `package p

//cgplint:ignore
var a = 1

//cgplint:ignore nosuchpass some reason
var b = 1

//cgplint:ignore detrand
var c = 1

//cgplint:ignore detrand progress line only
var d = 1
`)
	diags := CheckIgnores(fset, files, []string{"detrand", "maporder"})
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	wants := []string{
		"needs an analyzer name",
		"unknown analyzer nosuchpass",
		"needs a written reason",
	}
	for i, w := range wants {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diag %d = %q, want substring %q", i, diags[i].Message, w)
		}
	}
}

func TestFilterSuppressed(t *testing.T) {
	fset, files := parseOne(t, `package p

//cgplint:ignore detrand covers the line below
var a = 1
var b = 1 //cgplint:ignore detrand covers its own line
var c = 1

//cgplint:ignore detrand wrong analyzer does not cover maporder
var d = 1

//cgplint:ignore detrand
var e = 1
`)
	// One diagnostic per var line; only well-formed detrand directives
	// may suppress detrand findings.
	lineOf := func(name string) token.Pos {
		var pos token.Pos
		ast.Inspect(files[0], func(n ast.Node) bool {
			if vs, ok := n.(*ast.ValueSpec); ok && vs.Names[0].Name == name {
				pos = vs.Pos()
			}
			return true
		})
		if pos == token.NoPos {
			t.Fatalf("no var %s", name)
		}
		return pos
	}
	mk := func(names ...string) []Diagnostic {
		var out []Diagnostic
		for _, n := range names {
			out = append(out, Diagnostic{Pos: lineOf(n), Message: "finding at " + n})
		}
		return out
	}

	ig := ParseIgnores(fset, files)
	got := ig.Filter("detrand", mk("a", "b", "c", "d", "e"))
	var kept []string
	for _, d := range got {
		kept = append(kept, strings.TrimPrefix(d.Message, "finding at "))
	}
	// a: covered by comment above; b: covered by trailing comment;
	// c: uncovered; d: covered (directive names detrand);
	// e: directive has no reason, so it suppresses nothing.
	want := "c,e"
	if strings.Join(kept, ",") != want {
		t.Errorf("kept %v, want %s", kept, want)
	}

	gotMap := ig.Filter("maporder", mk("d"))
	if len(gotMap) != 1 {
		t.Errorf("maporder diagnostic at d suppressed by a detrand directive: %v", gotMap)
	}
}

func TestUnusedIgnores(t *testing.T) {
	fset, files := parseOne(t, `package p

//cgplint:ignore detrand fired below
var a = 1

//cgplint:ignore detrand never fires
var b = 1

//cgplint:ignore nosuchpass malformed, CheckIgnores' problem
var c = 1
`)
	ig := ParseIgnores(fset, files)
	var pos token.Pos
	ast.Inspect(files[0], func(n ast.Node) bool {
		if vs, ok := n.(*ast.ValueSpec); ok && vs.Names[0].Name == "a" {
			pos = vs.Pos()
		}
		return true
	})
	ig.Filter("detrand", []Diagnostic{{Pos: pos, Message: "finding at a"}})

	unused := ig.Unused([]string{"detrand", "maporder"})
	if len(unused) != 1 {
		t.Fatalf("got %d unused directives, want 1: %v", len(unused), unused)
	}
	if p := fset.Position(unused[0].Pos); p.Line != 6 {
		t.Errorf("unused directive reported at line %d, want 6", p.Line)
	}
	if !strings.Contains(unused[0].Message, "suppresses nothing") {
		t.Errorf("message = %q", unused[0].Message)
	}
}
