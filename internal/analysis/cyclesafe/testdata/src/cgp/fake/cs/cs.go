// Package cs exercises cyclesafe's conversion rules.
package cs

import "units"

func narrow(c units.Cycles) {
	_ = int(c)     // want `int\(Cycles\) narrows a 64-bit Cycles counter to a platform-dependent width`
	_ = uint(c)    // want `platform-dependent width`
	_ = int32(c)   // want `overflow 32 bits`
	_ = uint16(c)  // want `overflow 32 bits`
	_ = float32(c) // want `float32\(Cycles\) loses integer precision`
}

func widen(c units.Cycles) (int64, uint64, float64) {
	return int64(c), uint64(c), float64(c) // sanctioned exits
}

func cross(c units.Cycles) units.Instrs {
	return units.Instrs(c) // want `conversion between unit types Cycles and Instrs drops the dimension`
}

func launder(c units.Cycles) units.Instrs {
	return units.Instrs(int64(c)) // want `launders Cycles into Instrs through a plain integer`
}

func inject(n int, c units.Cycles) units.Cycles {
	u := units.Cycles(n)        // injection from plain integers: allowed
	u += units.Cycles(int64(c)) // same unit round-trip through int64: allowed
	return u + 2                // untyped constants mix freely
}

func ratio(i units.Instrs, c units.Cycles) float64 {
	if c == 0 {
		return 0
	}
	return float64(i) / float64(c) // the explicit cross-dimension form
}

func suppressed(c units.Cycles) int {
	//cgplint:ignore cyclesafe display column width, value bounded by config
	return int(c)
}
