// Package cs exercises cyclesafe's conversion rules.
package cs

import (
	"fmt"

	"units"
)

func narrow(c units.Cycles) {
	_ = int(c)     // want `int\(Cycles\) narrows a 64-bit Cycles counter to a platform-dependent width`
	_ = uint(c)    // want `platform-dependent width`
	_ = int32(c)   // want `overflow 32 bits`
	_ = uint16(c)  // want `overflow 32 bits`
	_ = float32(c) // want `float32\(Cycles\) loses integer precision`
}

func widen(c units.Cycles) (int64, uint64, float64) {
	return int64(c), uint64(c), float64(c) // sanctioned exits
}

func cross(c units.Cycles) units.Instrs {
	return units.Instrs(c) // want `conversion between unit types Cycles and Instrs drops the dimension`
}

func launder(c units.Cycles) units.Instrs {
	return units.Instrs(int64(c)) // want `launders Cycles into Instrs through a plain integer`
}

func inject(n int, c units.Cycles) units.Cycles {
	u := units.Cycles(n)        // injection from plain integers: allowed
	u += units.Cycles(int64(c)) // same unit round-trip through int64: allowed
	return u + 2                // untyped constants mix freely
}

func ratio(i units.Instrs, c units.Cycles) float64 {
	if c == 0 {
		return 0
	}
	return float64(i) / float64(c) // the explicit cross-dimension form
}

func suppressed(c units.Cycles) int {
	//cgplint:ignore cyclesafe display column width, value bounded by config
	return int(c)
}

func wallExit(w units.WallNanos) {
	_ = int64(w)   // want `int64\(WallNanos\) exits the wall-clock domain`
	_ = uint64(w)  // want `exits the wall-clock domain`
	_ = float64(w) // want `exits the wall-clock domain`
	_ = int(w)     // want `exits the wall-clock domain`
}

func wallCross(w units.WallNanos) units.Cycles {
	return units.Cycles(w) // want `conversion between WallNanos and Cycles crosses the wall-clock/deterministic boundary`
}

func wallCrossBack(c units.Cycles) units.WallNanos {
	return units.WallNanos(c) // want `crosses the wall-clock/deterministic boundary`
}

func wallLaunder(w units.WallNanos) units.Cycles {
	return units.Cycles(int64(w)) // want `launders wall-clock WallNanos across the deterministic boundary` `exits the wall-clock domain`
}

func wallFormat(w units.WallNanos) string {
	return fmt.Sprintf("elapsed %d ns", w) // want `wall-clock WallNanos formatted by fmt\.Sprintf`
}

func wallInject(n int64) units.WallNanos {
	return units.WallNanos(n) // injection from plain integers: allowed
}

func wallSame(w units.WallNanos) units.WallNanos {
	return units.WallNanos(int64(w)) // want `exits the wall-clock domain`
}

// wallBoundary is the shape of the one sanctioned exit
// (internal/obs.wallInt): a serialization boundary under a written
// suppression.
func wallBoundary(w units.WallNanos) int64 {
	//cgplint:ignore cyclesafe wall-domain serialization boundary for this fake
	return int64(w)
}

func estCross(e units.EstCycles) units.Cycles {
	return units.Cycles(e) // want `conversion between EstCycles and Cycles crosses the estimated/measured boundary`
}

func estCrossBack(c units.Cycles) units.EstCycles {
	return units.EstCycles(c) // want `crosses the estimated/measured boundary`
}

func estCrossDimension(e units.EstCycles) units.Instrs {
	return units.Instrs(e) // want `crosses the estimated/measured boundary`
}

func estLaunder(e units.EstCycles) units.Cycles {
	return units.Cycles(int64(e)) // want `launders EstCycles across the estimated/measured boundary`
}

func estLaunderIn(c units.Cycles) units.EstCycles {
	return units.EstCycles(int64(c)) // want `launders Cycles across the estimated/measured boundary`
}

func estExit(e units.EstCycles) (int64, float64) {
	return int64(e), float64(e) // sanctioned exits: estimates are reportable, just labeled
}

func estNarrow(e units.EstCycles) {
	_ = int32(e) // want `overflow 32 bits`
}

func estInject(n int64) units.EstCycles {
	u := units.EstCycles(n)        // injection from plain integers: allowed
	u += units.EstCycles(int64(u)) // same unit round-trip through int64: allowed
	return u + 2                   // untyped constants mix freely
}

// estBoundary is the shape of a deliberate estimate/measured crossing:
// explicit, suppressed, with a written reason.
func estBoundary(e units.EstCycles) units.Cycles {
	//cgplint:ignore cyclesafe differential-validation comparator for this fake
	return units.Cycles(e)
}

func wallFormatted(w units.WallNanos) string {
	//cgplint:ignore cyclesafe wall-domain artifact writer for this fake
	return fmt.Sprintf("elapsed %d ns", w)
}
