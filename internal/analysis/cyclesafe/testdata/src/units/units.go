// Package units stands in for cgp/internal/units: cyclesafe
// recognizes unit types by their defining package being named "units".
package units

// Cycles counts CPU clock cycles.
type Cycles int64

// Instrs counts dynamic instructions.
type Instrs int64

// WallNanos is a wall-clock-domain duration: the "Wall" name prefix
// is how the analyzers recognize the quarantined domain.
type WallNanos int64

// EstCycles counts estimated (sampled) cycles: the "Est" name prefix
// is how cyclesafe recognizes the estimated domain.
type EstCycles int64
