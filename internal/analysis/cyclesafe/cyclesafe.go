// Package cyclesafe enforces the simulator's quantity types
// (internal/units): cycle counters, latencies and instruction counts
// may not be narrowed to 32-bit-or-smaller integers, and may not flow
// from one unit into another without an explicit widening step.
//
// A unit type is any defined type with an integer underlying type
// declared in a package named "units". Recognition is by package name
// so the analyzer needs no cross-package facts: the types.Info of the
// package under analysis already names the defining package of every
// operand.
//
// Flagged:
//
//	int(cycles), int32(cycles), uint(cycles)   // narrowing; overflows in seconds of simulated time
//	float32(cycles)                            // precision loss past 2^24
//	units.Instrs(cycles)                       // cross-unit conversion
//	units.Instrs(int64(cycles))                // laundering through int64
//
// Allowed:
//
//	int64(cycles), uint64(cycles), float64(cycles)  // sanctioned exits
//	units.Cycles(cfg.L2Latency)                     // injection from plain integers
//	cycles + 2                                      // untyped constants mix freely
//
// Wall-clock-domain units (name prefix "Wall", e.g. units.WallNanos)
// are stricter still. Wall quantities differ run to run, so letting
// one reach a deterministic counter or a report body breaks the
// byte-identical-figures guarantee. For them even the sanctioned exits
// are flagged, as is handing one straight to fmt:
//
//	int64(wall), float64(wall)     // exit only at a suppressed serialization boundary
//	units.Cycles(wall)             // crosses the wall/deterministic boundary
//	units.Cycles(int64(wall))      // laundering the boundary crossing
//	fmt.Sprintf("%d", wall)        // host-dependent text; convert at the boundary first
//
// The one sanctioned exit lives in internal/obs (wallInt), under a
// //cgplint:ignore with a written reason — every escape from the wall
// domain stays grep-able.
//
// Estimated-domain units (name prefix "Est", e.g. units.EstCycles)
// guard the opposite boundary: a sampled-simulation estimate carries a
// confidence interval, and letting one flow into a measured unit would
// turn a ±CI approximation into a fact. Conversions between an Est
// unit and its measured counterpart are flagged in both directions,
// as is the laundered form:
//
//	units.Cycles(est), units.EstCycles(cycles)  // estimate/measured boundary
//	units.Cycles(int64(est))                    // laundering the estimate
//
// Unlike wall units, Est units keep the sanctioned int64/uint64/float64
// exits (estimates are deterministic and reportable — they just must
// stay labeled); a genuine need to compare an estimate against measured
// cycles goes through those, or carries a //cgplint:ignore cyclesafe
// with a written reason.
//
// Cross-unit *arithmetic* (cycles + instrs) is rejected by the
// compiler once the named types exist; this pass closes the conversion
// loopholes that would let such an expression type-check.
package cyclesafe

import (
	"go/ast"
	"go/types"

	"cgp/internal/analysis"
)

// Analyzer is the cyclesafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "cyclesafe",
	Doc: "flag narrowing and cross-unit conversions of simulator quantity types " +
		"(cycle counters, instruction counts) defined in internal/units, and " +
		"wall-clock-domain values (units.Wall*) escaping toward deterministic output",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Preorder(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pass.InTestFile(call.Pos()) {
			return true
		}
		// A conversion is a call whose Fun denotes a type.
		if len(call.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
				if src := pass.TypeOf(call.Args[0]); src != nil {
					checkConversion(pass, call, tv.Type, src)
				}
				return true
			}
		}
		checkWallFormat(pass, call)
		return true
	})
	return nil
}

func checkConversion(pass *analysis.Pass, call *ast.CallExpr, dst, src types.Type) {
	srcUnit := analysis.UnitType(src)
	dstUnit := analysis.UnitType(dst)

	switch {
	case srcUnit != nil && dstUnit != nil:
		if srcUnit == dstUnit {
			return
		}
		if analysis.IsWallUnit(srcUnit) != analysis.IsWallUnit(dstUnit) {
			pass.Reportf(call.Pos(),
				"conversion between %s and %s crosses the wall-clock/deterministic boundary; wall facts must never enter deterministic metrics or report bodies",
				typeName(srcUnit), typeName(dstUnit))
			return
		}
		if analysis.IsEstUnit(srcUnit) != analysis.IsEstUnit(dstUnit) {
			pass.Reportf(call.Pos(),
				"conversion between %s and %s crosses the estimated/measured boundary; a sampled estimate must stay typed (±CI) and may not masquerade as a measured count",
				typeName(srcUnit), typeName(dstUnit))
			return
		}
		pass.Reportf(call.Pos(),
			"conversion between unit types %s and %s drops the dimension; convert through int64 or float64 and state the ratio",
			typeName(srcUnit), typeName(dstUnit))
	case srcUnit != nil:
		checkExit(pass, call, srcUnit, dst)
	case dstUnit != nil:
		// Injection into a unit type from plain integers is the normal
		// way values enter the system — except when the argument is
		// itself int64(otherUnit): laundering a cross-unit conversion.
		if inner, ok := unparen(call.Args[0]).(*ast.CallExpr); ok && len(inner.Args) == 1 {
			if itv, ok := pass.TypesInfo.Types[inner.Fun]; ok && itv.IsType() {
				if iu := analysis.UnitType(pass.TypeOf(inner.Args[0])); iu != nil && iu != dstUnit {
					if analysis.IsWallUnit(iu) != analysis.IsWallUnit(dstUnit) {
						pass.Reportf(call.Pos(),
							"%s(%s(...)) launders wall-clock %s across the deterministic boundary; wall facts must never enter deterministic metrics or report bodies",
							typeName(dstUnit), itv.Type.String(), typeName(iu))
						return
					}
					if analysis.IsEstUnit(iu) != analysis.IsEstUnit(dstUnit) {
						pass.Reportf(call.Pos(),
							"%s(%s(...)) launders %s across the estimated/measured boundary; a sampled estimate must stay typed (±CI) and may not masquerade as a measured count",
							typeName(dstUnit), itv.Type.String(), typeName(iu))
						return
					}
					pass.Reportf(call.Pos(),
						"%s(%s(...)) launders %s into %s through a plain integer; cross-unit flows need an explicit, commented ratio",
						typeName(dstUnit), itv.Type.String(), typeName(iu), typeName(dstUnit))
				}
			}
		}
	}
}

// checkExit validates a conversion out of a unit type into a plain
// type: 64-bit integers and float64 are the sanctioned exits — except
// for wall-domain units, which have no sanctioned exits at all. A wall
// quantity leaves its type only at a serialization boundary that
// carries a //cgplint:ignore with a reason (internal/obs.wallInt).
func checkExit(pass *analysis.Pass, call *ast.CallExpr, src *types.Named, dst types.Type) {
	b, ok := dst.Underlying().(*types.Basic)
	if !ok {
		return
	}
	if analysis.IsWallUnit(src) {
		pass.Reportf(call.Pos(),
			"%s(%s) exits the wall-clock domain; wall quantities convert to plain values only at a suppressed serialization boundary, never on the way to deterministic output",
			b.Name(), typeName(src))
		return
	}
	switch b.Kind() {
	case types.Int64, types.Uint64, types.Float64, types.String:
		return // full-width exits (String only via explicit rune abuse; vet's own checks cover that)
	case types.Int, types.Uint, types.Uintptr:
		pass.Reportf(call.Pos(),
			"%s(%s) narrows a 64-bit %s counter to a platform-dependent width; use int64",
			b.Name(), typeName(src), typeName(src))
	case types.Int8, types.Int16, types.Int32, types.Uint8, types.Uint16, types.Uint32:
		pass.Reportf(call.Pos(),
			"%s(%s) narrows a 64-bit %s counter; simulated runs overflow 32 bits within seconds",
			b.Name(), typeName(src), typeName(src))
	case types.Float32:
		pass.Reportf(call.Pos(),
			"float32(%s) loses integer precision past 2^24 cycles; use float64", typeName(src))
	}
}

// checkWallFormat flags wall-clock quantities handed directly to fmt:
// formatting a WallNanos produces host-dependent text that can reach a
// report body unnoticed. Serialization code converts through the
// suppressed boundary first (internal/obs.wallInt), which keeps every
// escape from the wall domain visible at a single grep-able site.
func checkWallFormat(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	for _, arg := range call.Args {
		if w := analysis.WallUnitType(pass.TypeOf(arg)); w != nil {
			pass.Reportf(arg.Pos(),
				"wall-clock %s formatted by fmt.%s; host-dependent text must not be built outside the wall domain's serialization boundary",
				typeName(w), fn.Name())
		}
	}
}

func typeName(n *types.Named) string { return n.Obj().Name() }

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
