package cyclesafe_test

import (
	"testing"

	"cgp/internal/analysis/analysistest"
	"cgp/internal/analysis/cyclesafe"
)

func TestCyclesafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), cyclesafe.Analyzer, "cgp/fake/cs")
}
