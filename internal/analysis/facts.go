package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Cross-package facts.
//
// The vet unit protocol hands every analyzer run a .vetx "facts" file
// per dependency and asks for one in return (Config.PackageVetx /
// Config.VetxOutput). go vet analyzes packages in build-graph order,
// so by the time a package is checked, the facts its dependencies
// exported are already on disk. cgplint uses this channel for the
// dataflow summaries the allocfree and walltaint passes need to reason
// across package boundaries without whole-program loading:
//
//	fn:<func>       allocfree transitive verdict for a function
//	hot:<func>      function is a //cgplint:hotpath root
//	hotiface:<T>    interface methods marked hotpath (comma list)
//	hotfunc:<T>     named func type marked hotpath
//	taint:<func>    walltaint result summary for a function
//	detsink:<func>  function is a //cgplint:detsink
//
// Facts are JSON — map[analyzer]map[key]value — rather than gob or a
// binary codec: the files are tiny (a few KiB for the whole module),
// diffable when debugging a pass, and carry no type information that
// could skew across builds. Out-of-module packages (the standard
// library) export no facts; passes fall back to explicit allowlists or
// conservative assumptions for them.

// Facts holds every known fact, keyed by package path, then by
// "analyzer/key". The driver seeds it from dependency vetx files and
// collects the current package's exports for its own vetx output.
type Facts struct {
	byPkg map[string]map[string]string
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{byPkg: map[string]map[string]string{}}
}

// set records one fact exported by pkg's run of analyzer.
func (f *Facts) set(pkg, analyzer, key, value string) {
	m := f.byPkg[pkg]
	if m == nil {
		m = map[string]string{}
		f.byPkg[pkg] = m
	}
	m[analyzer+"/"+key] = value
}

// get looks one fact up.
func (f *Facts) get(pkg, analyzer, key string) (string, bool) {
	v, ok := f.byPkg[pkg][analyzer+"/"+key]
	return v, ok
}

// FactRef is one (package, key, value) triple from a prefix scan.
type FactRef struct {
	Pkg   string
	Key   string // without the analyzer prefix
	Value string
}

// withPrefix returns every fact of analyzer whose key starts with
// prefix, across all packages, in deterministic order.
func (f *Facts) withPrefix(analyzer, prefix string) []FactRef {
	full := analyzer + "/" + prefix
	var out []FactRef
	for pkg, m := range f.byPkg {
		for k, v := range m {
			if len(k) >= len(full) && k[:len(full)] == full {
				out = append(out, FactRef{Pkg: pkg, Key: k[len(analyzer)+1:], Value: v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// DecodeFacts merges the vetx payload exported by pkg into f. Empty
// payloads (out-of-module packages, pre-facts cgplint versions) are
// valid and contribute nothing.
func (f *Facts) DecodeFacts(pkg string, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var m map[string]map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("facts for %s: %w", pkg, err)
	}
	for analyzer, kv := range m {
		for k, v := range kv {
			f.set(pkg, analyzer, k, v)
		}
	}
	return nil
}

// EncodeFacts serializes the facts pkg exported, for its vetx output.
// The encoding is deterministic (json.Marshal sorts map keys), so the
// go vet result cache keys on content stay stable across runs.
func (f *Facts) EncodeFacts(pkg string) ([]byte, error) {
	m := f.byPkg[pkg]
	if len(m) == 0 {
		return nil, nil
	}
	nested := map[string]map[string]string{}
	for k, v := range m {
		for i := 0; i < len(k); i++ {
			if k[i] == '/' {
				a, key := k[:i], k[i+1:]
				if nested[a] == nil {
					nested[a] = map[string]string{}
				}
				nested[a][key] = v
				break
			}
		}
	}
	return json.Marshal(nested)
}
