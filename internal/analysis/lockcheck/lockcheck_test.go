package lockcheck_test

import (
	"testing"

	"cgp/internal/analysis/analysistest"
	"cgp/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockcheck.Analyzer, "cgp/fake/lk")
}
