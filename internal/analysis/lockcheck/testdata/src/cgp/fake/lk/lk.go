// Package lk exercises lockcheck: by-value sync primitives and
// singleflight key hygiene.
package lk

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValue(g guarded) int { // want `parameter passes cgp/fake/lk\.guarded by value \(contains field mu: sync\.Mutex\)`
	return g.n
}

func (g guarded) Count() int { // want `receiver passes cgp/fake/lk\.guarded by value`
	return g.n
}

func (g *guarded) Inc() { // pointer receiver: allowed
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func copies(p *guarded) {
	local := *p // want `assignment copies cgp/fake/lk\.guarded by value`
	_ = local
	fresh := guarded{} // composite literal has never been locked: allowed
	_ = fresh
}

func wgByValue(wg sync.WaitGroup) { // want `parameter passes sync\.WaitGroup by value`
	wg.Wait()
}

func ranges(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range copies cgp/fake/lk\.guarded by value`
		total += g.n
	}
	for i := range gs { // index iteration: allowed
		total += gs[i].n
	}
	return total
}

func snapshot(p *guarded) int {
	//cgplint:ignore lockcheck read-only snapshot for display; the copy's lock is never used
	local := *p
	return local.n
}

// ---- singleflight keys ----

type Config struct {
	Name string
	Seed int64
}

func (c Config) fingerprint() string { return c.Name }

type Runner struct {
	mu      sync.Mutex
	flights map[string]bool
}

func (r *Runner) once(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.flights[key] {
		return false
	}
	r.flights[key] = true
	return true
}

func goodKey(w string, c Config) string {
	return "run|" + w + "|" + c.fingerprint() // canonical key: allowed
}

func badKey(w string, c Config) string {
	return "run|" + w + "|" + c.Name // want `key builder badKey uses c beyond its fingerprint`
}

func launch(r *Runner, c Config) bool {
	return r.once(c.fingerprint()) // allowed
}

func launchBad(r *Runner, c Config) bool {
	return r.once("run|" + c.Name) // want `flight key for c\.once/claim uses a raw config`
}

func launchViaBuilder(r *Runner, c Config) bool {
	return r.once(goodKey("w", c)) // key builders are audited at their definition: allowed
}
