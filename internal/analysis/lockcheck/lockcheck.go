// Package lockcheck flags concurrency bookkeeping that compiles but
// breaks the runner's singleflight guarantees:
//
//   - sync primitives (Mutex, RWMutex, WaitGroup, Once, Cond) passed,
//     received or copied by value — a copied lock guards nothing, and
//     a WaitGroup copy deadlocks the waiter;
//   - flight-cache keys built from a raw Config instead of its
//     fingerprint. The runner memoizes simulations by key; a key
//     built from a display label or a subset of fields makes two
//     different configurations collide and silently share one result,
//     which is exactly the class of bug byte-identical replay cannot
//     catch (the bytes are identical — to the wrong run).
//
// The key rule recognizes "fingerprintable" types structurally: any
// named struct type that has a fingerprint() method. Inside a
// key-builder function (name ending in "Key", returning string) and
// inside arguments to Runner.once/Runner.claim, such a value may only
// be consumed through that fingerprint method.
package lockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"cgp/internal/analysis"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "flag by-value sync primitives (copied mutexes, WaitGroups) and " +
		"singleflight keys built from raw configs instead of fingerprints",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Preorder(func(n ast.Node) bool {
		if n == nil || pass.InTestFile(n.Pos()) {
			return true
		}
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkFuncSig(pass, n.Recv, n.Type)
			checkKeyBuilder(pass, n)
		case *ast.FuncLit:
			checkFuncSig(pass, nil, n.Type)
		case *ast.AssignStmt:
			checkLockCopy(pass, n)
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := pass.TypeOf(n.Value); lockPath(t) != "" {
					pass.Reportf(n.Value.Pos(),
						"range copies %s by value (contains %s); iterate by index or over pointers",
						t.String(), lockPath(t))
				}
			}
		case *ast.CallExpr:
			checkFlightKeyArg(pass, n)
		}
		return true
	})
	return nil
}

// ---- by-value locks ----

// checkFuncSig flags parameters and receivers whose type contains a
// sync primitive by value.
func checkFuncSig(pass *analysis.Pass, recv *ast.FieldList, ft *ast.FuncType) {
	report := func(f *ast.Field, kind string) {
		t := pass.TypeOf(f.Type)
		if p := lockPath(t); p != "" {
			pass.Reportf(f.Pos(), "%s passes %s by value (contains %s); use a pointer",
				kind, t.String(), p)
		}
	}
	if recv != nil {
		for _, f := range recv.List {
			report(f, "receiver")
		}
	}
	if ft.Params != nil {
		for _, f := range ft.Params.List {
			report(f, "parameter")
		}
	}
}

// checkLockCopy flags assignments that copy a lock-containing value:
// x := *p, x = y. Fresh values (composite literals, function results)
// are fine — they have never been locked.
func checkLockCopy(pass *analysis.Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		// Discarding into _ locks nothing in the copy.
		if len(as.Lhs) == len(as.Rhs) {
			if id, ok := unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
				continue
			}
		}
		switch unparen(rhs).(type) {
		case *ast.CompositeLit, *ast.CallExpr:
			continue
		}
		t := pass.TypeOf(rhs)
		if p := lockPath(t); p != "" {
			pass.Reportf(rhs.Pos(), "assignment copies %s by value (contains %s); use a pointer",
				t.String(), p)
		}
	}
}

// lockPath reports how t embeds a sync primitive by value ("" when it
// does not): the primitive's name, or "field x: sync.Mutex" style for
// nested cases.
func lockPath(t types.Type) string {
	return lockPathRec(t, map[types.Type]bool{})
}

var syncPrimitives = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

func lockPathRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncPrimitives[obj.Name()] {
			return "sync." + obj.Name()
		}
		return lockPathRec(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if p := lockPathRec(f.Type(), seen); p != "" {
				if f.Embedded() {
					return p
				}
				return "field " + f.Name() + ": " + p
			}
		}
	case *types.Array:
		return lockPathRec(t.Elem(), seen)
	}
	return ""
}

// ---- singleflight key hygiene ----

// fingerprintable reports whether t (or *t) is a named struct with a
// fingerprint() method — the runner's canonical cache-key source.
func fingerprintable(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "fingerprint" {
			return named
		}
	}
	return nil
}

// checkKeyBuilder enforces fingerprint-only use of fingerprintable
// parameters inside key-builder functions (func ...Key(...) string).
func checkKeyBuilder(pass *analysis.Pass, fn *ast.FuncDecl) {
	if !strings.HasSuffix(fn.Name.Name, "Key") || fn.Body == nil {
		return
	}
	if fn.Type.Results == nil || len(fn.Type.Results.List) != 1 {
		return
	}
	if rt := pass.TypeOf(fn.Type.Results.List[0].Type); rt == nil || !isString(rt) {
		return
	}
	// Collect fingerprintable parameters.
	params := map[types.Object]bool{}
	for _, f := range fn.Type.Params.List {
		if fingerprintable(pass.TypeOf(f.Type)) == nil {
			continue
		}
		for _, name := range f.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	if len(params) == 0 {
		return
	}
	reportRawUses(pass, fn.Body, params,
		"key builder "+fn.Name.Name+" uses %s beyond its fingerprint; cache keys must come from fingerprint() so distinct configs cannot collide")
}

// checkFlightKeyArg enforces the same rule on direct key arguments to
// Runner.once / Runner.claim.
func checkFlightKeyArg(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "once" && sel.Sel.Name != "claim") || len(call.Args) == 0 {
		return
	}
	recv := pass.TypeOf(sel.X)
	if recv == nil || !isRunner(recv) {
		return
	}
	vals := map[types.Object]bool{}
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); isVar && fingerprintable(obj.Type()) != nil {
			vals[obj] = true
		}
		return true
	})
	if len(vals) == 0 {
		return
	}
	reportRawUses(pass, call.Args[0], vals,
		"flight key for %s.once/claim uses a raw config; derive keys from fingerprint()")
}

// reportRawUses reports each use of the given objects inside root that
// is not consumed through the fingerprint path: the receiver of a
// fingerprint() call, or an argument to a key-builder (*Key) function,
// whose own body is audited by checkKeyBuilder.
func reportRawUses(pass *analysis.Pass, root ast.Node, objs map[types.Object]bool, format string) {
	blessed := map[*ast.Ident]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "fingerprint" {
				if id, ok := unparen(fun.X).(*ast.Ident); ok {
					blessed[id] = true
				}
			} else if strings.HasSuffix(fun.Sel.Name, "Key") {
				blessArgs(call, blessed)
			}
		case *ast.Ident:
			if strings.HasSuffix(fun.Name, "Key") {
				blessArgs(call, blessed)
			}
		}
		return true
	})
	ast.Inspect(root, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || blessed[id] || !objs[pass.TypesInfo.Uses[id]] {
			return true
		}
		pass.Reportf(id.Pos(), format, id.Name)
		return true
	})
}

// blessArgs marks every identifier inside the call's arguments as
// legitimately consumed.
func blessArgs(call *ast.CallExpr, blessed map[*ast.Ident]bool) {
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				blessed[id] = true
			}
			return true
		})
	}
}

func isRunner(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Runner"
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
