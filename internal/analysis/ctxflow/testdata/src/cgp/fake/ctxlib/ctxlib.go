// Package ctxlib exercises ctxflow's three rules in library code: no
// root contexts, no dropped ctx parameters, no ctx-blind blocking
// channel operations.
package ctxlib

import "context"

// Run is the well-behaved shape: every blocking operation answers to
// ctx.
func Run(ctx context.Context, ch chan int) int {
	select {
	case <-ctx.Done():
		return 0
	case v := <-ch:
		return v
	}
}

func MintsRoot(ch chan int) {
	ctx := context.Background() // want `context.Background in library code: thread the campaign context instead of minting a root`
	_ = ctx
	_ = ch
}

func Severs(ctx context.Context) context.Context {
	_ = ctx
	return context.TODO() // want `context.TODO severs the cancellation chain: this function already has a ctx parameter`
}

func Drops(ctx context.Context, n int) int { // want `ctx parameter is never used: thread it or declare the drop with _ context.Context`
	return n + 1
}

// DeclaredDrop opts out explicitly: the blank name documents that this
// function promises no cancellation.
func DeclaredDrop(_ context.Context, n int) int {
	return n + 1
}

func NakedSend(ctx context.Context, ch chan int) {
	_ = ctx
	ch <- 1 // want `blocking channel send outside a ctx-aware select`
}

func NakedRecv(ctx context.Context, ch chan int) int {
	_ = ctx
	return <-ch // want `blocking channel receive outside a ctx-aware select`
}

// AwaitCancel blocks on Done itself, which is ctx-aware by definition.
func AwaitCancel(ctx context.Context) {
	<-ctx.Done()
}

func Drains(ctx context.Context, ch chan int) int {
	_ = ctx
	total := 0
	for v := range ch { // want `range over channel blocks without ctx awareness`
		total += v
	}
	return total
}

func StuckSelect(ctx context.Context, a, b chan int) {
	_ = ctx
	select { // want `select blocks without a ctx.Done\(\) case or default`
	case <-a:
	case <-b:
	}
}

// TryAcquire's default case makes the select non-blocking.
func TryAcquire(ctx context.Context, sem chan struct{}) bool {
	_ = ctx
	select {
	case sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Spawns shows literal independence: the goroutine body has no ctx
// parameter, so its channel operations are its spawner's concern.
func Spawns(ctx context.Context, ch chan int) {
	_ = ctx
	go func() {
		ch <- 1
	}()
}

// ClosureUse threads ctx through a closure: that counts as use, and
// the literal itself (no ctx parameter) may block on Done.
func ClosureUse(ctx context.Context, f func(func())) {
	f(func() {
		<-ctx.Done()
	})
}

// LitWithCtx: a literal that declares its own ctx parameter is checked
// as an independent function.
var LitWithCtx = func(ctx context.Context, ch chan int) {
	_ = ctx
	ch <- 2 // want `blocking channel send outside a ctx-aware select`
}

// Release documents a provably non-blocking receive with a reasoned
// ignore.
func Release(ctx context.Context, sem chan struct{}) {
	_ = ctx
	<-sem //cgplint:ignore ctxflow held token guarantees a free slot, receive cannot block
}
