// Package main may mint a root context — unless the function already
// carries one, in which case a second root severs the chain.
package main

import "context"

func main() {
	ctx := context.Background()
	run(ctx)
}

func run(ctx context.Context) {
	_ = ctx
	_ = context.Background() // want `context.Background severs the cancellation chain: this function already has a ctx parameter`
}
