package ctxflow_test

import (
	"testing"

	"cgp/internal/analysis/analysistest"
	"cgp/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer,
		"cgp/fake/ctxlib", "cgp/fake/ctxmain")
}
