// Package ctxflow closes the PR 4 cancellation guarantee statically:
// every blocking operation reachable from the campaign entry points
// (Runner.Run / Runner.RunAll) must answer to the campaign's
// context.Context. The chaos suite proves cancellation works on the
// paths it injects faults into; this pass proves nothing below the
// entry points can opt out.
//
// Three rules:
//
//   - No context.Background() or context.TODO() below the entry
//     points. Library packages receive their context; only package
//     main (and tests) may mint a root context. Inside any function
//     that already has a ctx parameter the call is flagged even in
//     main — minting a second root there severs the cancellation
//     chain.
//
//   - No dropped contexts: a parameter of type context.Context that
//     is named (not "_") but never read means the function promises
//     cancellation it does not deliver. Either thread it or declare
//     the drop with "_ context.Context".
//
//   - No unescorted blocking channel operations in context-carrying
//     functions: a send, receive, or range over a channel outside a
//     select, or a select with neither a ctx.Done() case nor a
//     default, can block forever after the campaign is canceled.
//     Semaphore releases that provably cannot block carry a reasoned
//     //cgplint:ignore. sync primitives (Mutex, WaitGroup.Wait) are
//     deliberately not flagged: bounded critical sections are the
//     locker's concern (lockcheck), not cancellation's.
//
// Function literals are independent functions here: a goroutine body
// without a ctx parameter is not subject to the channel rule (its
// lifetime is its spawner's concern), and deferred semaphore releases
// in closures stay legal.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"cgp/internal/analysis"
	"cgp/internal/analysis/dataflow"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "require context threading below campaign entry points: no " +
		"context.Background/TODO in library code, no dropped ctx parameters, " +
		"no blocking channel operations outside ctx-aware selects",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InDeterministicDomain(pass.Pkg.Path()) {
		return nil
	}
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			switch v := d.(type) {
			case *ast.FuncDecl:
				if v.Body != nil {
					checkFunc(pass, v.Type, v.Body, isMain)
					// Literals nested in the body are checked as their
					// own functions by checkFunc's walk.
				}
			case *ast.GenDecl:
				// Package-level var initializers may hold literals too.
				ast.Inspect(v, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						checkFunc(pass, lit.Type, lit.Body, isMain)
						return false
					}
					return true
				})
			}
		}
	}
	return nil
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxParam returns the declared context parameter of ft, or nil. A
// blank "_ context.Context" declares an intentional drop and returns
// nil with declared=true.
func ctxParam(pass *analysis.Pass, ft *ast.FuncType) (v *types.Var, declared bool) {
	if ft.Params == nil {
		return nil, false
	}
	for _, f := range ft.Params.List {
		if t := pass.TypeOf(f.Type); t == nil || !isCtxType(t) {
			continue
		}
		declared = true
		for _, n := range f.Names {
			if n.Name == "_" {
				continue
			}
			if pv, ok := pass.TypesInfo.Defs[n].(*types.Var); ok {
				return pv, true
			}
		}
	}
	return nil, declared
}

// checkFunc applies the three rules to one function (declaration or
// literal), recursing into nested literals as independent functions.
func checkFunc(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt, isMain bool) {
	ctx, _ := ctxParam(pass, ft)
	used := false

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			checkFunc(pass, v.Type, v.Body, isMain)
			// Still scan the literal for uses of the *enclosing* ctx:
			// a closure reading ctx counts as the parameter being
			// threaded.
			if ctx != nil && !used {
				ast.Inspect(v.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctx {
						used = true
					}
					return true
				})
			}
			return false
		case *ast.Ident:
			if ctx != nil && pass.TypesInfo.Uses[v] == ctx {
				used = true
			}
		case *ast.CallExpr:
			if fn := callTarget(pass, v); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
				if fn.Name() == "Background" || fn.Name() == "TODO" {
					switch {
					case ctx != nil:
						pass.Reportf(v.Pos(), "context.%s severs the cancellation chain: this function already has a ctx parameter", fn.Name())
					case !isMain:
						pass.Reportf(v.Pos(), "context.%s in library code: thread the campaign context instead of minting a root", fn.Name())
					}
				}
			}
		case *ast.SendStmt:
			if ctx != nil {
				pass.Reportf(v.Pos(), "blocking channel send outside a ctx-aware select")
			}
		case *ast.UnaryExpr:
			// A bare <-x.Done() is ctx-aware by definition: blocking
			// until cancellation is the one thing it can do.
			if v.Op == token.ARROW && ctx != nil && !isDoneRecv(v) {
				pass.Reportf(v.Pos(), "blocking channel receive outside a ctx-aware select")
			}
		case *ast.RangeStmt:
			if ctx != nil {
				if t := pass.TypeOf(v.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(v.Pos(), "range over channel blocks without ctx awareness")
					}
				}
			}
		case *ast.SelectStmt:
			if ctx == nil {
				return true // clause bodies may hold literals; keep walking
			}
			escapable := false
			for _, cl := range v.Body.List {
				cc := cl.(*ast.CommClause)
				if cc.Comm == nil {
					escapable = true // default case
					continue
				}
				if commReadsDone(pass, cc.Comm) {
					escapable = true
				}
			}
			if !escapable {
				pass.Reportf(v.Pos(), "select blocks without a ctx.Done() case or default")
			}
			// Walk clause BODIES only: the comm statements themselves
			// are the select's alternatives, not naked operations.
			for _, cl := range v.Body.List {
				cc := cl.(*ast.CommClause)
				if cc.Comm != nil {
					// Mark ctx uses inside the comm (e.g. ctx.Done()).
					ast.Inspect(cc.Comm, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctx {
							used = true
						}
						return true
					})
				}
				for _, st := range cc.Body {
					ast.Inspect(st, walk)
				}
			}
			return false
		}
		return true
	}
	ast.Inspect(body, walk)

	if ctx != nil && !used {
		pass.Reportf(ctx.Pos(), "ctx parameter is never used: thread it or declare the drop with _ context.Context")
	}
}

// isDoneRecv reports whether u is a receive from a Done() channel
// (<-x.Done()).
func isDoneRecv(u *ast.UnaryExpr) bool {
	if call, ok := dataflow.Unparen(u.X).(*ast.CallExpr); ok {
		if sel, ok := dataflow.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	}
	return false
}

// commReadsDone reports whether a select comm statement receives from
// a Done() channel (any expression of the form <-x.Done()).
func commReadsDone(pass *analysis.Pass, comm ast.Stmt) bool {
	found := false
	ast.Inspect(comm, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW && isDoneRecv(u) {
			found = true
		}
		return true
	})
	return found
}

// callTarget resolves a call's static target.
func callTarget(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	kind, fn, _ := dataflow.Classify(pass.TypesInfo, call)
	if kind == dataflow.KindCall {
		return fn
	}
	return nil
}
