package analysis

import (
	"go/types"
	"strings"
)

// Unit-type recognition shared by the quantity-safety analyzers
// (cyclesafe, detrand).
//
// A unit type is any defined type with an integer underlying type
// declared in a package named "units". Recognition is by package name
// so the analyzers need no cross-package facts: the types.Info of the
// package under analysis already names the defining package of every
// operand.
//
// Within the unit types, the "Wall" name prefix partitions the two
// observability domains: units.WallNanos (and any future Wall* type)
// carries host-clock facts that differ run to run, while every other
// unit (Cycles, Instrs, ...) is simulation-derived and deterministic.
// The prefix is load-bearing — it is how the analyzers tell the
// domains apart without importing internal/obs.

// UnitType returns t's defined type when it is a simulator unit type:
// a named integer type declared in a package named "units".
func UnitType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "units" {
		return nil
	}
	if b, ok := named.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
		return named
	}
	return nil
}

// IsWallUnit reports whether the unit type carries wall-clock-domain
// quantities (its name starts with "Wall", e.g. units.WallNanos).
// Wall values are quarantined: they may not convert into deterministic
// units, exit into plain integers outside a sanctioned serialization
// boundary, or be formatted into text that could reach a report body.
func IsWallUnit(n *types.Named) bool {
	return n != nil && strings.HasPrefix(n.Obj().Name(), "Wall")
}

// WallUnitType combines the two: t's defined type when it is a
// wall-clock-domain unit, else nil.
func WallUnitType(t types.Type) *types.Named {
	if n := UnitType(t); IsWallUnit(n) {
		return n
	}
	return nil
}

// IsEstUnit reports whether the unit type carries estimated (sampled)
// quantities rather than measured ones (its name starts with "Est",
// e.g. units.EstCycles). Estimated values are extrapolations with a
// confidence interval; converting one into its measured counterpart
// (EstCycles -> Cycles) would let a ±CI approximation masquerade as a
// directly observed count, so cyclesafe flags that crossing just like
// any other cross-unit conversion — including the laundered form
// Cycles(int64(est)).
func IsEstUnit(n *types.Named) bool {
	return n != nil && strings.HasPrefix(n.Obj().Name(), "Est")
}
