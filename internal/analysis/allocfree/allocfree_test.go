package allocfree_test

import (
	"testing"

	"cgp/internal/analysis/allocfree"
	"cgp/internal/analysis/analysistest"
)

func TestAllocfree(t *testing.T) {
	// cgp/fake/hot imports cgp/fake/hotdep, so the harness primes the
	// dependency's fn: facts before the checked package runs.
	analysistest.Run(t, analysistest.TestData(), allocfree.Analyzer, "cgp/fake/hot")
}
