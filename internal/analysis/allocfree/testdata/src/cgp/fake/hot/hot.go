// Package hot exercises every allocfree hazard class, the traversal
// roots (annotation, hot interface method, hot func type), the
// coldpath stop, suppression, and cross-package summaries.
package hot

import (
	"encoding/binary"
	"math/bits"
	"strings"

	"cgp/fake/hotdep"
)

// ---- basic hazards ----

//cgplint:hotpath
func Clean(x int) int {
	return x + 1
}

//cgplint:hotpath
func Alloc(n int) []int {
	return make([]int, n) // want `make allocates on the hot path`
}

//cgplint:hotpath
func Outer(s []int) []int {
	return inner(s)
}

func inner(s []int) []int {
	return append(s, 1) // want `append may grow its backing array on the hot path`
}

//cgplint:hotpath
func MapWrite(m map[int]int) {
	m[1] = 2 // want `map write may grow the table on the hot path`
}

//cgplint:hotpath
func MapIncr(m map[int]int) {
	m[1]++ // want `map write may grow the table on the hot path`
}

//cgplint:hotpath
func MapIter(m map[int]int) int {
	total := 0
	for _, v := range m { // want `map iteration allocates its iterator on the hot path`
		total += v
	}
	return total
}

//cgplint:hotpath
func Defers() {
	defer noop() // want `defer allocates a frame on the hot path`
}

//cgplint:hotpath
func Spawn() {
	go noop() // want `go statement spawns a goroutine on the hot path`
}

func noop() {}

//cgplint:hotpath
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates on the hot path`
}

//cgplint:hotpath
func Bytes(s string) []byte {
	return []byte(s) // want `string conversion copies on the hot path`
}

type pair struct{ a, b int }

type holder struct{ p *pair }

func (h *holder) run() {}

//cgplint:hotpath
func Ptr(h *holder) {
	h.p = &pair{1, 2} // want `&composite literal allocates on the hot path`
}

//cgplint:hotpath
func MethodVal(h *holder) func() {
	return h.run // want `method value allocates its binding on the hot path`
}

//cgplint:hotpath
func Closure() func() int {
	return func() int { return 1 } // want `function literal allocates its closure on the hot path`
}

// Value-typed composite literals stay on the stack.
//
//cgplint:hotpath
func ValueLit(x int) pair {
	return pair{x, x}
}

// ---- boxing ----

func sink(v interface{}) {}

func sinks(k string, vs ...interface{}) {}

//cgplint:hotpath
func BoxArg(x int) {
	sink(x) // want `argument boxes int into an interface on the hot path`
}

//cgplint:hotpath
func BoxVariadic(x int) {
	sinks("k", x) // want `argument boxes int into an interface on the hot path`
}

//cgplint:hotpath
func BoxAssign(x int) {
	var i interface{}
	i = x // want `assignment boxes int into an interface on the hot path`
	_ = i
}

//cgplint:hotpath
func BoxReturn(x int) interface{} {
	return x // want `return boxes int into an interface on the hot path`
}

// ---- panic, coldpath, suppression ----

//cgplint:hotpath
func Panics(x int) int {
	if x < 0 {
		panic("negative index: " + string(rune(x))) // ok: a panicking hot path is already dead
	}
	return x
}

//cgplint:coldpath ring doubling is amortized growth, measured off the fast path
func grow(s []int) []int {
	return append(s, make([]int, len(s))...)
}

//cgplint:hotpath
func UsesGrow(s []int) []int {
	if cap(s) == len(s) {
		return grow(s) // ok: coldpath stops the traversal
	}
	return s[:len(s)+1]
}

//cgplint:hotpath
func Suppressed(s []int) []int {
	return append(s, 1) //cgplint:ignore allocfree warmup fill runs before the measured region
}

//cgplint:hotpath
//cgplint:coldpath a function cannot be both
func Conflicted() {} // want `Conflicted is marked both hotpath and coldpath`

// ---- external calls ----

//cgplint:hotpath
func Pop(x uint) int {
	return bits.OnesCount(x) // ok: math/bits is allowlisted wholesale
}

//cgplint:hotpath
func Varint(b []byte) (uint64, int) {
	return binary.Uvarint(b) // ok: allowlisted decoder kernel
}

//cgplint:hotpath
func Upper(s string) string {
	return strings.ToUpper(s) // want `call to external strings.ToUpper: allocation behavior unknown`
}

// ---- hot interface methods ----

// History answers call-graph lookups on the dispatch path.
type History interface {
	//cgplint:hotpath
	Lookup(k uint64) uint64
	Name() string
}

type table struct{ m map[uint64]uint64 }

func (t *table) Lookup(k uint64) uint64 {
	for kk, v := range t.m { // want `map iteration allocates its iterator on the hot path`
		if kk == k {
			return v
		}
	}
	return 0
}

func (t *table) Name() string { return "table" }

//cgplint:hotpath
func UseHistory(h History, k uint64) uint64 {
	return h.Lookup(k) // ok: hot interface method, implementations verified at their decls
}

//cgplint:hotpath
func UseName(h History) int {
	return len(h.Name()) // want `interface dispatch to Name is unresolvable on the hot path`
}

// ---- hot func types ----

// Issue is the hot dispatch signature.
//
//cgplint:hotpath
type Issue func(int) int

func double(x int) int { return x * 2 }

func allocs(x int) int {
	return len(make([]int, x)) // want `make allocates on the hot path`
}

var okBind Issue = double

var badBind Issue = allocs

var litBind Issue = func(x int) int {
	return cap(make([]int, x)) // want `make allocates on the hot path`
}

var opaqueBind Issue = pickPlain() // want `unverifiable function value bound to hot func type Issue`

func pickPlain() func(int) int { return double }

//cgplint:hotpath
func CallIssue(f Issue, x int) int {
	return f(x) // ok: hot func type values are verified where they are created
}

// ---- pcall contract ----

func apply(f func() int) int { return f() }

func one() int { return 1 }

func oneAlloc() int {
	s := make([]int, 1) // want `make allocates on the hot path`
	return s[0]
}

var fv = pick()

func pick() func() int { return one }

//cgplint:hotpath
func PcallRef() int {
	return apply(one) // ok: verifiable reference, callee walked
}

//cgplint:hotpath
func PcallDirty() int {
	return apply(oneAlloc)
}

//cgplint:hotpath
func PcallOpaque() int {
	return apply(fv) // want `unverifiable func value passed to apply`
}

//cgplint:hotpath
func CallsVar() int {
	return fv() // want `call through unresolvable func value on the hot path`
}

// ---- cross-package summaries ----

//cgplint:hotpath
func CrossClean(x int) int {
	return hotdep.Fast(x)
}

//cgplint:hotpath
func CrossDirty(s []int) []int {
	return hotdep.Grow(s) // want `hot path calls cgp/fake/hotdep.Grow`
}

//cgplint:hotpath
func CrossPcall() int {
	return hotdep.Apply(one) // ok: pcall=0 fact says Apply invokes its argument
}

//cgplint:hotpath
func CrossOpaque() int {
	return hotdep.Apply(fv) // want `unverifiable func value passed to Apply`
}

// ---- generics: type parameters are not interfaces ----

// ring is a generic container: passing a concrete payload to Put must
// not be misread as boxing into the type parameter's constraint.
type ring[P any] struct{ buf [4]P }

func (r *ring[P]) Put(i int, p P) { r.buf[i&3] = p }

type payload struct{ a, b int }

//cgplint:hotpath
func GenericStore(r *ring[payload], p payload) {
	r.Put(1, p) // instantiated with a concrete struct: no boxing, no diagnostic
}
