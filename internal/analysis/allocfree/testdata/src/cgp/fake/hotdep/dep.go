// Package hotdep exercises allocfree's cross-package summaries: its
// fn: facts are computed first and consulted by cgp/fake/hot.
package hotdep

// Fast is allocation-free; its summary is "clean".
func Fast(x int) int { return x + 1 }

// Grow allocates; its summary is "dirty:<witness>".
func Grow(s []int) []int {
	return append(s, 1)
}

// Apply calls its parameter; its summary carries "pcall=0".
func Apply(f func() int) int { return f() }
