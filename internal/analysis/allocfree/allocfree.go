// Package allocfree statically verifies that functions annotated
// //cgplint:hotpath are transitively free of heap allocation, turning
// the repository's AllocsPerRun runtime gates (the PR 3 event loop,
// the struct-of-arrays caches, the batched replay decoder, the
// attribution fast path) into compile-time guarantees with precise
// positions: a runtime gate catches a regression only on the inputs a
// test happens to replay, while this pass rejects the allocating
// construct itself, on every path.
//
// # What counts as a hazard
//
// Inside a hot function (or anything it can reach through resolvable
// calls) the pass flags: make/new/append and slice or map composite
// literals; &T{...} literals; map writes and map iteration (growth and
// runtime iterator); non-constant string concatenation and
// string<->[]byte conversions; defer and go statements; function
// literals and method values (closure allocation); boxing a concrete
// value into an interface (call arguments, assignments, returns,
// conversions); and calls the engine cannot resolve. Subtrees under
// panic(...) are skipped: a panicking hot path is already dead, and
// the panic message is allowed to allocate. Value-typed composite
// literals (lineMeta{...}) are fine — they live in registers or on the
// stack.
//
// # Traversal and summaries
//
// Calls resolve through the dataflow engine. In-package callees are
// walked; in-module cross-package callees are consulted through the
// "fn:<name>" facts their own package exported (verdict "clean",
// "cold", or "dirty:<witness>"), so the check composes across the
// build graph without whole-program loading. Standard-library callees
// have no facts and are rejected except for a small allowlist of
// provably non-allocating kernels (math/bits, binary.Uvarint/Varint).
//
// //cgplint:coldpath <reason> stops the traversal at deliberate
// amortized-growth helpers (ring doubling, first-touch table rows);
// the mandatory reason documents why the allocation is excused.
//
// # Roots beyond annotations
//
// Hot paths cross dynamic dispatch in two sanctioned ways, both of
// which shift the verification site rather than abandoning it:
//
//   - An interface method marked //cgplint:hotpath (core.History
//     style) makes every in-module implementation an implicit root,
//     verified in its own package via the "hotiface:" fact.
//   - A named func type marked //cgplint:hotpath (prefetch.Issue)
//     makes every function value bound to it an implicit root at the
//     binding site: literals are walked in place, method values and
//     function references become roots, and a binding the engine
//     cannot resolve is itself a finding.
//
// Calls through values of such a hot func type are therefore safe by
// construction and not flagged. Calls through ordinary func-typed
// parameters are recorded in the function's summary ("pcall=i"), and
// every call site passing that parameter must supply a verifiable
// function value. Types and functions declared in _test.go files are
// exempt throughout — test doubles are not hot paths.
package allocfree

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cgp/internal/analysis"
	"cgp/internal/analysis/dataflow"
)

// Analyzer is the allocfree pass.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "verify //cgplint:hotpath functions are transitively free of heap " +
		"allocation, interface boxing, map iteration, defer, and closure " +
		"capture; stop at //cgplint:coldpath <reason> amortized helpers",
	Run: run,
}

// externAllow lists external functions known not to allocate: pure
// bit-twiddling and in-place varint decoding used by the replay hot
// kernel. A nil set allows the whole package. Everything else outside
// the module is a hazard — the pass cannot see its body, and "probably
// fine" is exactly what the runtime gates were.
var externAllow = map[string]map[string]bool{
	"math/bits":       nil,
	"encoding/binary": {"Uvarint": true, "Varint": true},
}

type hazard struct {
	pos token.Pos
	msg string
}

type edge struct {
	pos    token.Pos
	callee *types.Func
}

// funcInfo is one function's engine summary. Synthetic infos (fn ==
// nil) represent function literals bound to hot func types.
type funcInfo struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	hot     bool
	cold    bool
	hazards []hazard
	edges   []edge
	pcalls  map[int]bool // parameter indices called as func values

	verdict string // memoized transitive verdict
	walking bool   // cycle guard
}

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	infos map[*types.Func]*funcInfo
	byKey map[string]*funcInfo
}

func run(pass *analysis.Pass) error {
	if !analysis.InDeterministicDomain(pass.Pkg.Path()) {
		return nil
	}
	c := &checker{
		pass:  pass,
		decls: dataflow.DeclIndex(pass.TypesInfo, pass.Files),
		infos: map[*types.Func]*funcInfo{},
		byKey: map[string]*funcInfo{},
	}
	c.exportTypeDirectives()

	// Phase 1: directives and parameter-call shapes for every declared
	// non-test function, so phase 2 can consult them in any order.
	for fn, decl := range c.decls {
		if pass.InTestFile(decl.Pos()) {
			continue
		}
		fi := &funcInfo{fn: fn, decl: decl, pcalls: map[int]bool{}}
		if ok, _ := analysis.Directive(decl.Doc, analysis.DirHotpath); ok {
			fi.hot = true
		}
		if ok, _ := analysis.Directive(decl.Doc, analysis.DirColdpath); ok {
			fi.cold = true
			if fi.hot {
				pass.Reportf(decl.Pos(), "%s is marked both hotpath and coldpath", dataflow.FuncKey(fn))
			}
		}
		c.collectPcalls(fi)
		c.infos[fn] = fi
		c.byKey[dataflow.FuncKey(fn)] = fi
	}

	// Phase 2: local hazard + edge scan.
	for _, fi := range c.infos {
		if !fi.cold && fi.decl.Body != nil {
			c.scan(fi, fi.decl.Body, fi.decl)
		}
	}

	// Phase 3: export transitive verdicts for dependent packages.
	keys := make([]string, 0, len(c.byKey))
	for k := range c.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pass.ExportFact("fn:"+k, c.factValue(c.byKey[k]))
	}

	// Phase 4: walk the hot closure and report.
	c.report()
	return nil
}

// exportTypeDirectives finds //cgplint:hotpath on interface methods
// and named func types declared in this package and exports the
// hotiface:/hotfunc: facts implementations and bindings are checked
// against.
func (c *checker) exportTypeDirectives() {
	pass := c.pass
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				switch tt := ts.Type.(type) {
				case *ast.InterfaceType:
					var hotMethods []string
					for _, m := range tt.Methods.List {
						if len(m.Names) == 0 {
							continue // embedded interface
						}
						if ok, _ := analysis.FieldDirective(m, analysis.DirHotpath); ok {
							for _, n := range m.Names {
								hotMethods = append(hotMethods, n.Name)
							}
						}
					}
					if len(hotMethods) > 0 {
						pass.ExportFact("hotiface:"+ts.Name.Name, strings.Join(hotMethods, ","))
					}
				case *ast.FuncType:
					hot, _ := analysis.Directive(ts.Doc, analysis.DirHotpath)
					if !hot && len(gd.Specs) == 1 {
						hot, _ = analysis.Directive(gd.Doc, analysis.DirHotpath)
					}
					if hot {
						pass.ExportFact("hotfunc:"+ts.Name.Name, "1")
					}
					_ = tt
				}
			}
		}
	}
}

// collectPcalls records which parameters of fi are invoked as func
// values — the "pcall" half of its summary. Parameters of a hot named
// func type are excluded: those calls are safe by construction.
func (c *checker) collectPcalls(fi *funcInfo) {
	if fi.decl.Body == nil {
		return
	}
	params := paramVars(c.pass, fi.decl)
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := dataflow.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		for i, p := range params {
			if p != nil && obj == p && !c.isHotFuncType(p.Type()) {
				fi.pcalls[i] = true
			}
		}
		return true
	})
}

// paramVars returns the declared parameter objects in order.
func paramVars(pass *analysis.Pass, decl *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if decl == nil || decl.Type.Params == nil {
		return out
	}
	for _, f := range decl.Type.Params.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, n := range f.Names {
			v, _ := pass.TypesInfo.Defs[n].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

// hazardf records one local hazard unless an ignore directive excuses
// it (the excusal then also keeps it out of the exported summary).
func (c *checker) hazardf(fi *funcInfo, pos token.Pos, format string, args ...any) {
	if c.pass.Excused(pos) {
		return
	}
	fi.hazards = append(fi.hazards, hazard{pos, fmt.Sprintf(format, args...)})
}

// isHotFuncType reports whether t is a named func type annotated
// hotpath (locally or via fact).
func (c *checker) isHotFuncType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	if _, ok := n.Underlying().(*types.Signature); !ok {
		return false
	}
	_, found := c.pass.Fact(n.Obj().Pkg().Path(), "hotfunc:"+n.Obj().Name())
	return found
}

// isHotIfaceMethod reports whether the interface method fn declared on
// recv is annotated hotpath.
func (c *checker) isHotIfaceMethod(recv types.Type, fn *types.Func) bool {
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	v, found := c.pass.Fact(n.Obj().Pkg().Path(), "hotiface:"+n.Obj().Name())
	if !found {
		return false
	}
	for _, m := range strings.Split(v, ",") {
		if m == fn.Name() {
			return true
		}
	}
	return false
}

// inModule reports whether pkg is part of this module.
func inModule(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == analysis.ModulePath || strings.HasPrefix(p, analysis.ModulePath+"/")
}

// scan walks one function body (or a hot-bound literal's body),
// recording hazards and call edges into fi. decl supplies parameter
// and result context; nil for literals.
func (c *checker) scan(fi *funcInfo, body ast.Node, decl *ast.FuncDecl) {
	info := c.pass.TypesInfo
	params := paramVars(c.pass, decl)
	var results *types.Tuple
	if decl != nil {
		if fn, ok := info.Defs[decl.Name].(*types.Func); ok {
			results = fn.Type().(*types.Signature).Results()
		}
	}
	// litBodies are function literals whose bodies must be walked hot:
	// passed to a parameter the callee invokes.
	litBodies := map[*ast.FuncLit]bool{}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			c.scanCall(fi, v, params, litBodies)
			// Walk operands ourselves: descending into v.Fun would
			// misread every method call's selector as a method value.
			switch dataflow.Unparen(v.Fun).(type) {
			case *ast.Ident, *ast.SelectorExpr:
			default:
				ast.Inspect(v.Fun, walk)
			}
			kind, _, builtin := dataflow.Classify(info, v)
			if kind == dataflow.KindBuiltin && builtin == "panic" {
				return false // dead on the hot path; message may allocate
			}
			for _, a := range v.Args {
				if lit, ok := dataflow.Unparen(a).(*ast.FuncLit); ok {
					c.hazardf(fi, lit.Pos(), "function literal allocates its closure on the hot path")
					if litBodies[lit] {
						ast.Inspect(lit.Body, walk)
					}
					continue
				}
				ast.Inspect(a, walk)
			}
			return false
		case *ast.FuncLit:
			c.hazardf(fi, v.Pos(), "function literal allocates its closure on the hot path")
			return false
		case *ast.DeferStmt:
			c.hazardf(fi, v.Pos(), "defer allocates a frame on the hot path")
			return false
		case *ast.GoStmt:
			c.hazardf(fi, v.Pos(), "go statement spawns a goroutine on the hot path")
			return false
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					c.hazardf(fi, v.Pos(), "map iteration allocates its iterator on the hot path")
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(v); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					c.hazardf(fi, v.Pos(), "slice literal allocates on the hot path")
				case *types.Map:
					c.hazardf(fi, v.Pos(), "map literal allocates on the hot path")
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if lit, ok := dataflow.Unparen(v.X).(*ast.CompositeLit); ok {
					c.hazardf(fi, v.Pos(), "&composite literal allocates on the hot path")
					for _, el := range lit.Elts {
						ast.Inspect(el, walk)
					}
					return false
				}
			}
		case *ast.BinaryExpr:
			if v.Op == token.ADD {
				if t, ok := info.TypeOf(v).(*types.Basic); ok && t.Info()&types.IsString != 0 {
					if tv, ok := info.Types[v]; !ok || tv.Value == nil {
						c.hazardf(fi, v.Pos(), "string concatenation allocates on the hot path")
					}
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := dataflow.Unparen(v.X).(*ast.IndexExpr); ok {
				if t := info.TypeOf(ix.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						c.hazardf(fi, ix.Pos(), "map write may grow the table on the hot path")
					}
				}
			}
		case *ast.AssignStmt:
			for _, l := range v.Lhs {
				if ix, ok := dataflow.Unparen(l).(*ast.IndexExpr); ok {
					if t := info.TypeOf(ix.X); t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							c.hazardf(fi, ix.Pos(), "map write may grow the table on the hot path")
						}
					}
				}
			}
			if len(v.Lhs) == len(v.Rhs) {
				for i := range v.Lhs {
					c.checkBox(fi, v.Rhs[i], info.TypeOf(v.Lhs[i]), "assignment")
				}
			}
		case *ast.ReturnStmt:
			if results != nil && len(v.Results) == results.Len() {
				for i, r := range v.Results {
					c.checkBox(fi, r, results.At(i).Type(), "return")
				}
			}
		case *ast.SelectorExpr:
			// A method value read outside a call allocates its bound
			// closure. Call selectors never reach here — the CallExpr
			// case consumes them.
			if sel, ok := info.Selections[v]; ok && sel.Kind() == types.MethodVal {
				c.hazardf(fi, v.Pos(), "method value allocates its binding on the hot path")
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// scanCall classifies one call inside a hot-scanned body and records
// the hazard or edge it implies. Argument subtrees are walked by the
// caller.
func (c *checker) scanCall(fi *funcInfo, call *ast.CallExpr, params []*types.Var, litBodies map[*ast.FuncLit]bool) {
	info := c.pass.TypesInfo
	kind, callee, builtin := dataflow.Classify(info, call)
	switch kind {
	case dataflow.KindConversion:
		c.checkConversion(fi, call)
	case dataflow.KindBuiltin:
		switch builtin {
		case "make":
			c.hazardf(fi, call.Pos(), "make allocates on the hot path")
		case "new":
			c.hazardf(fi, call.Pos(), "new allocates on the hot path")
		case "append":
			c.hazardf(fi, call.Pos(), "append may grow its backing array on the hot path")
		}
	case dataflow.KindCall:
		c.checkArgs(fi, call, callee.Type())
		c.checkPcallArgs(fi, call, callee, litBodies)
		if inModule(callee.Pkg()) {
			fi.edges = append(fi.edges, edge{call.Pos(), callee})
			return
		}
		if callee.Pkg() == nil {
			return // error.Error and friends: no home package
		}
		allow, ok := externAllow[callee.Pkg().Path()]
		if !ok || (allow != nil && !allow[callee.Name()]) {
			c.hazardf(fi, call.Pos(), "call to external %s: allocation behavior unknown on the hot path",
				dataflow.QualifiedKey(callee))
		}
	default: // KindDynamic
		if callee != nil {
			// Interface dispatch: sanctioned only through a hotpath-
			// annotated interface method, whose implementations are
			// verified in their own packages.
			if sel, ok := dataflow.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if s, ok := info.Selections[sel]; ok && c.isHotIfaceMethod(s.Recv(), callee) {
					c.checkArgs(fi, call, callee.Type())
					return
				}
			}
			c.hazardf(fi, call.Pos(), "interface dispatch to %s is unresolvable on the hot path (mark the interface method //cgplint:hotpath to verify implementations)",
				callee.Name())
			return
		}
		// Call through a func value.
		if t := info.TypeOf(call.Fun); t != nil {
			if c.isHotFuncType(t) {
				c.checkArgs(fi, call, t)
				return // bindings to hot func types are verified where created
			}
		}
		if id, ok := dataflow.Unparen(call.Fun).(*ast.Ident); ok {
			obj := info.Uses[id]
			for _, p := range params {
				if p != nil && obj == p {
					return // pcall: every call site supplies a verified value
				}
			}
		}
		c.hazardf(fi, call.Pos(), "call through unresolvable func value on the hot path")
	}
}

// checkConversion flags allocating conversions: string <-> []byte /
// []rune, and boxing into an interface type.
func (c *checker) checkConversion(fi *funcInfo, call *ast.CallExpr) {
	info := c.pass.TypesInfo
	dst := info.TypeOf(call)
	src := info.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isCharSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	if (isStr(dst) && isCharSlice(src)) || (isCharSlice(dst) && isStr(src)) {
		c.hazardf(fi, call.Pos(), "string conversion copies on the hot path")
	}
	c.checkBox(fi, call.Args[0], dst, "conversion")
}

// checkBox flags boxing a concrete value into an interface slot.
func (c *checker) checkBox(fi *funcInfo, e ast.Expr, dst types.Type, what string) {
	if dst == nil {
		return
	}
	if _, ok := dst.(*types.TypeParam); ok {
		// A type parameter's underlying type is its constraint
		// interface, but instantiating a generic with a concrete type
		// argument never boxes (cache.Cache[P].Insert with a struct
		// payload compiles to a direct store). An instantiation whose
		// argument really is an interface passes interface-typed values
		// here, which the interface-to-interface check below skips
		// anyway.
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	t := c.pass.TypeOf(e)
	if t == nil {
		return
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		return
	}
	c.hazardf(fi, e.Pos(), "%s boxes %s into an interface on the hot path", what, t)
}

// checkArgs flags interface boxing at argument positions, including
// the variadic tail. ftype is the callee's func or signature type.
func (c *checker) checkArgs(fi *funcInfo, call *ast.CallExpr, ftype types.Type) {
	sig, ok := ftype.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	if np == 0 {
		return
	}
	for i, a := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				pt = sig.Params().At(np - 1).Type() // s... passes the slice itself
			} else if s, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		c.checkBox(fi, a, pt, "argument")
	}
}

// checkPcallArgs enforces the call-site half of the pcall contract:
// arguments feeding parameters the callee invokes must be verifiable
// function values. Literals are queued for a hot walk in place;
// function and method references become traversal edges; anything
// opaque is a finding.
func (c *checker) checkPcallArgs(fi *funcInfo, call *ast.CallExpr, callee *types.Func, litBodies map[*ast.FuncLit]bool) {
	pcalls := c.calleePcalls(callee)
	if len(pcalls) == 0 {
		return
	}
	for i := range pcalls {
		if i >= len(call.Args) {
			continue
		}
		a := dataflow.Unparen(call.Args[i])
		if t := c.pass.TypesInfo.TypeOf(a); t != nil && c.isHotFuncType(t) {
			continue // verified at the value's creation site
		}
		if lit, ok := a.(*ast.FuncLit); ok {
			litBodies[lit] = true
			continue
		}
		if fn := dataflow.FuncValue(c.pass.TypesInfo, a); fn != nil {
			fi.edges = append(fi.edges, edge{a.Pos(), fn})
			continue
		}
		c.hazardf(fi, a.Pos(), "unverifiable func value passed to %s, which calls it on the hot path",
			dataflow.FuncKey(callee))
	}
}

// calleePcalls returns the parameter indices callee invokes, from the
// local summary or its package's fn: fact.
func (c *checker) calleePcalls(callee *types.Func) map[int]bool {
	if fi, ok := c.infos[callee]; ok {
		return fi.pcalls
	}
	if callee.Pkg() == nil || !inModule(callee.Pkg()) || callee.Pkg().Path() == c.pass.Pkg.Path() {
		return nil
	}
	v, ok := c.pass.Fact(callee.Pkg().Path(), "fn:"+dataflow.FuncKey(callee))
	if !ok {
		return nil
	}
	out := map[int]bool{}
	for _, part := range strings.Split(v, ";") {
		if rest, found := strings.CutPrefix(part, "pcall="); found {
			for _, s := range strings.Split(rest, ",") {
				var i int
				if _, err := fmt.Sscanf(s, "%d", &i); err == nil {
					out[i] = true
				}
			}
		}
	}
	return out
}

// verdict computes the transitive allocfree verdict of one in-package
// function: "clean", "cold", or "dirty:<witness>".
func (c *checker) verdict(fi *funcInfo) string {
	if fi.verdict != "" {
		return fi.verdict
	}
	if fi.cold {
		fi.verdict = "cold"
		return fi.verdict
	}
	if fi.walking {
		return "clean" // optimistic on cycles; hazards surface on the cycle's own nodes
	}
	fi.walking = true
	defer func() { fi.walking = false }()
	if len(fi.hazards) > 0 {
		fi.verdict = "dirty:" + witness(c.pass.Fset, fi.hazards[0])
		return fi.verdict
	}
	for _, e := range fi.edges {
		if v, msg := c.calleeVerdict(e); v == "dirty" {
			fi.verdict = "dirty:" + msg
			return fi.verdict
		}
	}
	fi.verdict = "clean"
	return fi.verdict
}

// calleeVerdict resolves one edge to ("clean"|"cold"|"dirty", witness).
func (c *checker) calleeVerdict(e edge) (string, string) {
	if fi, ok := c.infos[e.callee]; ok {
		v := c.verdict(fi)
		if w, ok := strings.CutPrefix(v, "dirty:"); ok {
			return "dirty", "calls " + dataflow.FuncKey(e.callee) + ", which " + w
		}
		return v, ""
	}
	pkg := e.callee.Pkg()
	if pkg == nil {
		return "clean", "" // error.Error and friends
	}
	if pkg.Path() == c.pass.Pkg.Path() {
		// Same package but no scanned declaration: a test-file helper.
		// Test code is exempt, but a hot path must not depend on it.
		return "dirty", "calls " + dataflow.FuncKey(e.callee) + ", which is declared in a test file"
	}
	if !inModule(pkg) {
		allow, ok := externAllow[pkg.Path()]
		if ok && (allow == nil || allow[e.callee.Name()]) {
			return "clean", ""
		}
		return "dirty", "calls external " + dataflow.QualifiedKey(e.callee)
	}
	v, ok := c.pass.Fact(pkg.Path(), "fn:"+dataflow.FuncKey(e.callee))
	if !ok {
		return "dirty", "calls " + dataflow.QualifiedKey(e.callee) + ", which has no allocfree summary"
	}
	v = strings.SplitN(v, ";", 2)[0]
	if w, ok := strings.CutPrefix(v, "dirty:"); ok {
		return "dirty", "calls " + dataflow.QualifiedKey(e.callee) + ", which " + w
	}
	return v, ""
}

// factValue encodes fi's exported summary.
func (c *checker) factValue(fi *funcInfo) string {
	v := c.verdict(fi)
	if len(fi.pcalls) > 0 {
		idx := make([]int, 0, len(fi.pcalls))
		for i := range fi.pcalls {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		parts := make([]string, len(idx))
		for i, n := range idx {
			parts[i] = fmt.Sprint(n)
		}
		v += ";pcall=" + strings.Join(parts, ",")
	}
	return v
}

// witness renders a hazard as a compact position-tagged phrase for
// cross-package diagnostics. Semicolons are reserved by the fact
// encoding.
func witness(fset *token.FileSet, h hazard) string {
	p := fset.Position(h.pos)
	file := p.Filename
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return strings.ReplaceAll(fmt.Sprintf("%s (%s:%d)", h.msg, file, p.Line), ";", ",")
}

// report walks the hot closure from every root and reports the local
// hazards of each reachable in-package function, plus dirty verdicts
// at call sites that cross into other packages.
func (c *checker) report() {
	seen := map[*funcInfo]bool{}
	var queue []*funcInfo
	push := func(fi *funcInfo) {
		if fi != nil && !seen[fi] && !fi.cold {
			seen[fi] = true
			queue = append(queue, fi)
		}
	}
	for _, fi := range c.infos {
		if fi.hot {
			push(fi)
		}
	}
	c.pushIfaceImpls(push)
	c.pushHotBindings(push)

	reported := map[token.Pos]bool{}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		for _, h := range fi.hazards {
			if !reported[h.pos] {
				reported[h.pos] = true
				c.pass.Report(analysis.Diagnostic{Pos: h.pos, Message: h.msg})
			}
		}
		for _, e := range fi.edges {
			if callee, ok := c.infos[e.callee]; ok {
				push(callee)
				continue
			}
			if v, msg := c.calleeVerdict(e); v == "dirty" && !reported[e.pos] {
				reported[e.pos] = true
				c.pass.Reportf(e.pos, "hot path %s", msg)
			}
		}
	}
}

// pushIfaceImpls makes every in-package implementation of a hot
// interface method an implicit root: dynamic dispatch through the
// annotated interface may land on it from a hot path. Types declared
// in test files never enter c.infos, so test doubles stay exempt.
func (c *checker) pushIfaceImpls(push func(*funcInfo)) {
	type hotIface struct {
		iface   *types.Interface
		pkg     string
		name    string
		methods []string
	}
	var ifaces []hotIface
	for _, ref := range c.pass.PrefixFacts("hotiface:") {
		name := strings.TrimPrefix(ref.Key, "hotiface:")
		obj := c.lookupType(ref.Pkg, name)
		if obj == nil {
			continue
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		ifaces = append(ifaces, hotIface{iface, ref.Pkg, name, strings.Split(ref.Value, ",")})
	}
	if len(ifaces) == 0 {
		return
	}
	scope := c.pass.Pkg.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, n := range names {
		tn, ok := scope.Lookup(n).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue // interfaces declare, they don't implement
		}
		if c.pass.InTestFile(tn.Pos()) {
			continue
		}
		for _, ifc := range ifaces {
			if !types.Implements(named, ifc.iface) && !types.Implements(types.NewPointer(named), ifc.iface) {
				continue
			}
			for _, m := range ifc.methods {
				obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, c.pass.Pkg, m)
				fn, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				fn = fn.Origin()
				if fi, ok := c.infos[fn]; ok {
					push(fi)
					continue
				}
				// Promoted from an embedded type in another package:
				// consult that package's summary.
				if fn.Pkg() != nil && fn.Pkg().Path() != c.pass.Pkg.Path() && inModule(fn.Pkg()) {
					if v, ok := c.pass.Fact(fn.Pkg().Path(), "fn:"+dataflow.FuncKey(fn)); ok {
						v = strings.SplitN(v, ";", 2)[0]
						if w, found := strings.CutPrefix(v, "dirty:"); found && !c.pass.Excused(tn.Pos()) {
							c.pass.Reportf(tn.Pos(), "%s implements hot %s.%s via %s, which %s",
								named.Obj().Name(), ifc.name, m, dataflow.QualifiedKey(fn), w)
						}
					}
				}
			}
		}
	}
}

// lookupType finds the named type pkgPath.name in this package or its
// transitive imports.
func (c *checker) lookupType(pkgPath, name string) types.Object {
	if pkgPath == c.pass.Pkg.Path() {
		return c.pass.Pkg.Scope().Lookup(name)
	}
	seen := map[*types.Package]bool{}
	var find func(p *types.Package) types.Object
	find = func(p *types.Package) types.Object {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == pkgPath {
			return p.Scope().Lookup(name)
		}
		for _, imp := range p.Imports() {
			if o := find(imp); o != nil {
				return o
			}
		}
		return nil
	}
	return find(c.pass.Pkg)
}

// pushHotBindings finds every site binding a function value to a hot
// named func type — assignments, declarations, composite-literal
// fields, call arguments, returns, conversions — and makes the bound
// function a root, walking literals in place. A binding the engine
// cannot resolve is reported: it would launder an unverified function
// onto the hot path.
func (c *checker) pushHotBindings(push func(*funcInfo)) {
	info := c.pass.TypesInfo
	for _, f := range c.pass.Files {
		if c.pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				if len(v.Lhs) == len(v.Rhs) {
					for i := range v.Rhs {
						c.checkBinding(v.Rhs[i], info.TypeOf(v.Lhs[i]), push)
					}
				}
			case *ast.ValueSpec:
				if len(v.Names) == len(v.Values) {
					for i := range v.Values {
						c.checkBinding(v.Values[i], info.TypeOf(v.Names[i]), push)
					}
				}
			case *ast.CompositeLit:
				c.checkLitBindings(v, push)
			case *ast.CallExpr:
				kind, callee, _ := dataflow.Classify(info, v)
				if kind == dataflow.KindConversion {
					c.checkBinding(v.Args[0], info.TypeOf(v), push)
				} else if callee != nil {
					if sig, ok := callee.Type().Underlying().(*types.Signature); ok {
						np := sig.Params().Len()
						for i, a := range v.Args {
							if i < np {
								c.checkBinding(a, sig.Params().At(i).Type(), push)
							}
						}
					}
				}
			case *ast.ReturnStmt:
				// Factories returning a hot func type: the declared
				// result type is what matters, but TypeOf on the
				// returned expression approximates it; explicit named
				// returns go through assignments anyway.
				for _, r := range v.Results {
					c.checkBinding(r, info.TypeOf(r), push)
				}
			}
			return true
		})
	}
}

// checkLitBindings matches composite-literal elements against their
// declared field or element types.
func (c *checker) checkLitBindings(lit *ast.CompositeLit, push func(*funcInfo)) {
	t := c.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for ei, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				id, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				for i := 0; i < u.NumFields(); i++ {
					if u.Field(i).Name() == id.Name {
						c.checkBinding(kv.Value, u.Field(i).Type(), push)
						break
					}
				}
			} else if ei < u.NumFields() {
				c.checkBinding(el, u.Field(ei).Type(), push)
			}
		}
	case *types.Slice:
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			c.checkBinding(el, u.Elem(), push)
		}
	case *types.Array:
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			c.checkBinding(el, u.Elem(), push)
		}
	case *types.Map:
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				c.checkBinding(kv.Value, u.Elem(), push)
			}
		}
	}
}

// checkBinding handles one expression flowing into a slot of hot func
// type dst.
func (c *checker) checkBinding(e ast.Expr, dst types.Type, push func(*funcInfo)) {
	if e == nil || dst == nil || !c.isHotFuncType(dst) {
		return
	}
	a := dataflow.Unparen(e)
	if lit, ok := a.(*ast.FuncLit); ok {
		// Walk the literal as its own hot root in place.
		fi := &funcInfo{pcalls: map[int]bool{}}
		c.scan(fi, lit.Body, nil)
		push(fi)
		return
	}
	if fn := dataflow.FuncValue(c.pass.TypesInfo, a); fn != nil {
		if fi, ok := c.infos[fn]; ok {
			push(fi)
			return
		}
		if inModule(fn.Pkg()) && fn.Pkg().Path() != c.pass.Pkg.Path() {
			if v, ok := c.pass.Fact(fn.Pkg().Path(), "fn:"+dataflow.FuncKey(fn)); ok {
				v = strings.SplitN(v, ";", 2)[0]
				if w, found := strings.CutPrefix(v, "dirty:"); found && !c.pass.Excused(e.Pos()) {
					c.pass.Reportf(e.Pos(), "binding to hot func type %s %s",
						dst.(*types.Named).Obj().Name(), "— the bound function "+w)
				}
			}
		}
		return
	}
	// Copying an existing value of the hot type (a variable, field, or
	// call result) is fine: it was verified where it was created.
	if t := c.pass.TypesInfo.TypeOf(a); t != nil {
		if c.isHotFuncType(t) {
			return
		}
		if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			return
		}
	}
	if c.pass.Excused(e.Pos()) {
		return
	}
	c.pass.Reportf(e.Pos(), "unverifiable function value bound to hot func type %s",
		dst.(*types.Named).Obj().Name())
}
