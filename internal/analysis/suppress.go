package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments.
//
// A diagnostic from analyzer NAME is suppressed by
//
//	//cgplint:ignore NAME reason for the exception
//
// either trailing the offending line or standing alone on the line
// directly above it. Each form covers exactly one line: a trailing
// directive covers its own line, a standalone one covers the next —
// so an exception never silently swallows a finding on a neighboring
// line. The reason is mandatory: an ignore without one is itself
// reported by the driver, so every suppression in the tree documents
// why the rule does not apply. There is deliberately no file- or
// package-wide escape hatch.

const ignorePrefix = "cgplint:ignore"

// ignoreDirective is one parsed //cgplint:ignore comment.
type ignoreDirective struct {
	pos      token.Pos
	line     int    // line the comment sits on
	trailing bool   // code precedes the comment on its line
	analyzer string // analyzer name, "" when missing
	reason   string // justification, "" when missing
}

// covers returns the single source line the directive applies to: its
// own line when trailing, the next line when standalone.
func (d ignoreDirective) covers() int {
	if d.trailing {
		return d.line
	}
	return d.line + 1
}

// parseIgnores extracts every cgplint:ignore directive from the files.
func parseIgnores(fset *token.FileSet, files []*ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range files {
		codeCols := firstCodeColumns(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				p := fset.Position(c.Pos())
				d := ignoreDirective{
					pos:      c.Pos(),
					line:     p.Line,
					trailing: codeCols[p.Line] > 0 && codeCols[p.Line] < p.Column,
				}
				if rest != "" {
					parts := strings.SplitN(rest, " ", 2)
					d.analyzer = parts[0]
					if len(parts) == 2 {
						d.reason = strings.TrimSpace(parts[1])
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// firstCodeColumns maps each line to the column of the first
// non-comment token starting on it (0 when the line holds none).
func firstCodeColumns(fset *token.FileSet, f *ast.File) map[int]int {
	cols := map[int]int{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return true
		}
		p := fset.Position(n.Pos())
		if cur, ok := cols[p.Line]; !ok || p.Column < cur {
			cols[p.Line] = p.Column
		}
		return true
	})
	return cols
}

// FilterSuppressed removes diagnostics covered by a well-formed
// ignore directive for the named analyzer.
func FilterSuppressed(name string, fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	covered := map[string]map[int]bool{} // filename -> suppressed lines
	for _, d := range parseIgnores(fset, files) {
		if d.analyzer != name || d.reason == "" {
			continue
		}
		file := fset.Position(d.pos).Filename
		if covered[file] == nil {
			covered[file] = map[int]bool{}
		}
		covered[file][d.covers()] = true
	}
	kept := diags[:0]
	for _, dg := range diags {
		p := fset.Position(dg.Pos)
		if covered[p.Filename][p.Line] {
			continue
		}
		kept = append(kept, dg)
	}
	return kept
}

// CheckIgnores reports malformed suppression directives: a missing
// analyzer name, an unknown analyzer name (catches typos that would
// silently suppress nothing), or a missing reason. The returned
// diagnostics carry the pseudo-analyzer name "ignore".
func CheckIgnores(fset *token.FileSet, files []*ast.File, known []string) []Diagnostic {
	isKnown := map[string]bool{}
	for _, n := range known {
		isKnown[n] = true
	}
	var out []Diagnostic
	for _, d := range parseIgnores(fset, files) {
		switch {
		case d.analyzer == "":
			out = append(out, Diagnostic{Pos: d.pos,
				Message: "cgplint:ignore needs an analyzer name and a reason: //cgplint:ignore <analyzer> <reason>"})
		case !isKnown[d.analyzer]:
			out = append(out, Diagnostic{Pos: d.pos,
				Message: "cgplint:ignore names unknown analyzer " + d.analyzer})
		case d.reason == "":
			out = append(out, Diagnostic{Pos: d.pos,
				Message: "cgplint:ignore " + d.analyzer + " needs a written reason"})
		}
	}
	return out
}
