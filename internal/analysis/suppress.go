package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments.
//
// A diagnostic from analyzer NAME is suppressed by
//
//	//cgplint:ignore NAME reason for the exception
//
// either trailing the offending line or standing alone on the line
// directly above it. Each form covers exactly one line: a trailing
// directive covers its own line, a standalone one covers the next —
// so an exception never silently swallows a finding on a neighboring
// line. The reason is mandatory: an ignore without one is itself
// reported by the driver, so every suppression in the tree documents
// why the rule does not apply. There is deliberately no file- or
// package-wide escape hatch.
//
// The set tracks which directives actually fired. A directive that
// suppressed nothing in a whole run is stale — the code it excused was
// fixed or deleted — and is reported by the driver's -unused-ignores
// mode so the tree does not accrete dead exceptions.

const ignorePrefix = "cgplint:ignore"

// ignoreDirective is one parsed //cgplint:ignore comment.
type ignoreDirective struct {
	pos      token.Pos
	line     int    // line the comment sits on
	trailing bool   // code precedes the comment on its line
	analyzer string // analyzer name, "" when missing
	reason   string // justification, "" when missing
}

// covers returns the single source line the directive applies to: its
// own line when trailing, the next line when standalone.
func (d ignoreDirective) covers() int {
	if d.trailing {
		return d.line
	}
	return d.line + 1
}

// Ignores is the suppression set of one compilation unit, shared by
// every analyzer run over it so used-directive tracking sees the whole
// picture before -unused-ignores reports leftovers.
type Ignores struct {
	ds   []ignoreDirective
	used []bool
	// byLine indexes well-formed directives: filename -> covered line
	// -> indices into ds.
	byLine map[string]map[int][]int
	fset   *token.FileSet
}

// ParseIgnores extracts every cgplint:ignore directive from the files
// and indexes the well-formed ones for coverage lookups.
func ParseIgnores(fset *token.FileSet, files []*ast.File) *Ignores {
	ig := &Ignores{byLine: map[string]map[int][]int{}, fset: fset}
	for _, f := range files {
		codeCols := firstCodeColumns(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				p := fset.Position(c.Pos())
				d := ignoreDirective{
					pos:      c.Pos(),
					line:     p.Line,
					trailing: codeCols[p.Line] > 0 && codeCols[p.Line] < p.Column,
				}
				if rest != "" {
					parts := strings.SplitN(rest, " ", 2)
					d.analyzer = parts[0]
					if len(parts) == 2 {
						d.reason = strings.TrimSpace(parts[1])
					}
				}
				idx := len(ig.ds)
				ig.ds = append(ig.ds, d)
				ig.used = append(ig.used, false)
				if d.analyzer != "" && d.reason != "" {
					if ig.byLine[p.Filename] == nil {
						ig.byLine[p.Filename] = map[int][]int{}
					}
					cov := d.covers()
					ig.byLine[p.Filename][cov] = append(ig.byLine[p.Filename][cov], idx)
				}
			}
		}
	}
	return ig
}

// Covers reports whether a well-formed directive for the named
// analyzer covers pos, marking any match as used.
func (ig *Ignores) Covers(analyzer string, pos token.Pos) bool {
	if ig == nil {
		return false
	}
	p := ig.fset.Position(pos)
	hit := false
	for _, i := range ig.byLine[p.Filename][p.Line] {
		if ig.ds[i].analyzer == analyzer {
			ig.used[i] = true
			hit = true
		}
	}
	return hit
}

// Filter removes diagnostics covered by a directive for the named
// analyzer, marking the directives that fire.
func (ig *Ignores) Filter(analyzer string, diags []Diagnostic) []Diagnostic {
	if ig == nil || len(diags) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, dg := range diags {
		if !ig.Covers(analyzer, dg.Pos) {
			kept = append(kept, dg)
		}
	}
	return kept
}

// Unused reports well-formed directives naming a known analyzer that
// suppressed nothing across every analyzer run sharing this set.
// Malformed or unknown-name directives are excluded: CheckIgnores
// already reports those as errors in their own right.
func (ig *Ignores) Unused(known []string) []Diagnostic {
	isKnown := map[string]bool{}
	for _, n := range known {
		isKnown[n] = true
	}
	var out []Diagnostic
	for i, d := range ig.ds {
		if ig.used[i] || d.analyzer == "" || d.reason == "" || !isKnown[d.analyzer] {
			continue
		}
		out = append(out, Diagnostic{Pos: d.pos,
			Message: "cgplint:ignore " + d.analyzer + " suppresses nothing and can be deleted"})
	}
	return out
}

// firstCodeColumns maps each line to the column of the first
// non-comment token starting on it (0 when the line holds none).
func firstCodeColumns(fset *token.FileSet, f *ast.File) map[int]int {
	cols := map[int]int{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return true
		}
		p := fset.Position(n.Pos())
		if cur, ok := cols[p.Line]; !ok || p.Column < cur {
			cols[p.Line] = p.Column
		}
		return true
	})
	return cols
}

// CheckIgnores reports malformed directives: an ignore with a missing
// analyzer name, an unknown analyzer name (catches typos that would
// silently suppress nothing), or a missing reason; a coldpath without
// its mandatory reason; and any //cgplint:<word> that names no known
// directive at all. The returned diagnostics carry the pseudo-analyzer
// name "ignore".
func CheckIgnores(fset *token.FileSet, files []*ast.File, known []string) []Diagnostic {
	isKnown := map[string]bool{}
	for _, n := range known {
		isKnown[n] = true
	}
	var out []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "cgplint:") {
					continue
				}
				rest := text[len("cgplint:"):]
				name := rest
				arg := ""
				if i := strings.IndexByte(rest, ' '); i >= 0 {
					name, arg = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				switch {
				case name == "ignore":
					parts := strings.SplitN(arg, " ", 2)
					switch {
					case arg == "":
						out = append(out, Diagnostic{Pos: c.Pos(),
							Message: "cgplint:ignore needs an analyzer name and a reason: //cgplint:ignore <analyzer> <reason>"})
					case !isKnown[parts[0]]:
						out = append(out, Diagnostic{Pos: c.Pos(),
							Message: "cgplint:ignore names unknown analyzer " + parts[0]})
					case len(parts) < 2 || strings.TrimSpace(parts[1]) == "":
						out = append(out, Diagnostic{Pos: c.Pos(),
							Message: "cgplint:ignore " + parts[0] + " needs a written reason"})
					}
				case name == DirColdpath:
					if arg == "" {
						out = append(out, Diagnostic{Pos: c.Pos(),
							Message: "cgplint:coldpath needs a written reason for the deliberate allocation"})
					}
				case declDirectiveNames[name]:
					// hotpath/detsink: marker directives, no argument.
				default:
					out = append(out, Diagnostic{Pos: c.Pos(),
						Message: "unknown directive cgplint:" + name})
				}
			}
		}
	}
	return out
}
