// Package driver runs cgplint analyzers under two invocation styles:
//
//	go vet -vettool=/path/to/cgplint ./...   # the vet unit protocol
//	cgplint ./...                            # standalone; re-execs go vet
//
// The vet protocol (reverse-engineered from cmd/go and mirrored from
// x/tools' unitchecker, which this module cannot vendor because builds
// are offline) has three entry points:
//
//	-V=full    print "<prog> version devel comments-go-here buildID=<sha256>"
//	           so the build cache can fingerprint the tool;
//	-flags     print the tool's flags as JSON so go vet knows what to
//	           forward;
//	unit.cfg   analyze one compilation unit described by a JSON config,
//	           writing diagnostics to stderr and exiting nonzero when
//	           there are findings.
//
// Types for imported packages come from the export data files the go
// command already produced for the build (cfg.PackageFile), so no
// network, module cache, or second type-check of dependencies is
// needed.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"sort"
	"strings"

	"cgp/internal/analysis"
)

// Config mirrors the JSON compilation-unit description go vet writes
// for -vettool invocations (unexported fields of no use here omitted).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/cgplint. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("cgplint: ")
	args := os.Args[1:]

	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion()
			os.Exit(0)
		case args[0] == "-flags":
			printFlags()
			os.Exit(0)
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(runUnit(args[0], analyzers))
		}
	}
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		usage(analyzers)
		os.Exit(2)
	}
	// Standalone mode: let go vet do package loading and drive this
	// same binary through the unit protocol above.
	os.Exit(standalone(args))
}

func usage(analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "usage: cgplint <packages>   (e.g. cgplint ./...)\n")
	fmt.Fprintf(os.Stderr, "   or: go vet -vettool=/path/to/cgplint <packages>\n\nanalyzers:\n")
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, doc)
	}
}

// printVersion implements -V=full: the go command fingerprints the
// tool by hashing the executable, and requires this exact shape
// (see cmd/go/internal/work.(*Builder).toolID).
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
}

// printFlags implements -flags: go vet asks which flags the tool
// accepts before forwarding any. cgplint is deliberately
// unconfigurable — exceptions live in the source as cgplint:ignore
// comments, not in per-invocation flag soup — so the answer is empty.
func printFlags() {
	fmt.Print("[]")
}

// standalone re-execs go vet with this binary as the vettool, so both
// invocation styles share one loading path (and one build cache).
func standalone(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	args := append([]string{"vet", "-vettool=" + exe}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		log.Fatal(err)
	}
	return 0
}

// runUnit analyzes one compilation unit and returns the process exit
// code: 0 clean, 1 findings, 2 tool failure.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Print(err)
		return 2
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Printf("cannot decode config %s: %v", cfgFile, err)
		return 2
	}

	// go vet caches and re-reads the facts file unconditionally, so it
	// must exist even when analysis is skipped. cgplint uses no
	// cross-package facts; the file is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Print(err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Dependencies outside this module (including the standard
	// library) are none of cgplint's business.
	if cfg.ImportPath != analysis.ModulePath &&
		!strings.HasPrefix(cfg.ImportPath, analysis.ModulePath+"/") {
		return 0
	}

	fset := token.NewFileSet()
	files, pkg, info, err := typecheck(fset, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0 // the compiler will report it better
		}
		log.Print(err)
		return 2
	}

	var diags []analysis.Diagnostic
	known := make([]string, len(analyzers))
	for i, a := range analyzers {
		known[i] = a.Name
		ds, err := analysis.RunAnalyzer(a, fset, files, pkg, info)
		if err != nil {
			log.Print(err)
			return 2
		}
		for _, d := range ds {
			d.Message += " (cgplint/" + a.Name + ")"
			diags = append(diags, d)
		}
	}
	for _, d := range analysis.CheckIgnores(fset, files, known) {
		d.Message += " (cgplint/ignore)"
		diags = append(diags, d)
	}
	if len(diags) == 0 {
		return 0
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return 1
}

// typecheck parses and type-checks the unit, resolving imports from
// the export data files listed in the config.
func typecheck(fset *token.FileSet, cfg *Config) ([]*ast.File, *types.Package, *types.Info, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, pkg, info, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
