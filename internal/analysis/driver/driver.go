// Package driver runs cgplint analyzers under two invocation styles:
//
//	go vet -vettool=/path/to/cgplint ./...   # the vet unit protocol
//	cgplint ./...                            # standalone; re-execs go vet
//
// The vet protocol (reverse-engineered from cmd/go and mirrored from
// x/tools' unitchecker, which this module cannot vendor because builds
// are offline) has three entry points:
//
//	-V=full    print "<prog> version devel comments-go-here buildID=<sha256>"
//	           so the build cache can fingerprint the tool;
//	-flags     print the tool's flags as JSON so go vet knows what to
//	           forward;
//	unit.cfg   analyze one compilation unit described by a JSON config,
//	           writing diagnostics to stderr and exiting nonzero when
//	           there are findings.
//
// Types for imported packages come from the export data files the go
// command already produced for the build (cfg.PackageFile), so no
// network, module cache, or second type-check of dependencies is
// needed.
//
// Cross-package dataflow summaries ride the protocol's facts channel:
// go vet runs the tool over every dependency first (VetxOnly units),
// each run writes its exported facts to cfg.VetxOutput, and dependents
// find them in cfg.PackageVetx. Because the flags below participate in
// go vet's cache key, they use the dotted "cgplint." prefix the
// unitchecker convention expects; standalone mode accepts the short
// aliases -json and -unused-ignores and forwards the dotted forms.
package driver

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strings"

	"cgp/internal/analysis"
)

// Config mirrors the JSON compilation-unit description go vet writes
// for -vettool invocations (unexported fields of no use here omitted).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string // package path -> facts file from its run
	VetxOnly                  bool              // facts wanted, diagnostics not
	VetxOutput                string            // where to write this package's facts
	SucceedOnTypecheckFailure bool
}

// Tool flags, shared by both invocation styles.
var (
	jsonOut       bool // -cgplint.json / -json
	unusedIgnores bool // -cgplint.unusedignores / -unused-ignores
)

const (
	jsonUsage   = "emit diagnostics as JSON instead of text"
	unusedUsage = "report cgplint:ignore directives that suppress nothing"
)

// Main is the entry point for cmd/cgplint. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("cgplint: ")
	args := os.Args[1:]

	if len(args) == 1 {
		switch args[0] {
		case "-V=full":
			printVersion()
			os.Exit(0)
		case "-flags":
			printFlags()
			os.Exit(0)
		}
	}

	fs := flag.NewFlagSet("cgplint", flag.ExitOnError)
	fs.Usage = func() { usage(analyzers) }
	fs.BoolVar(&jsonOut, "cgplint.json", false, jsonUsage)
	fs.BoolVar(&unusedIgnores, "cgplint.unusedignores", false, unusedUsage)
	var jsonAlias, unusedAlias bool
	fs.BoolVar(&jsonAlias, "json", false, "alias for -cgplint.json")
	fs.BoolVar(&unusedAlias, "unused-ignores", false, "alias for -cgplint.unusedignores")
	fs.Parse(args)
	jsonOut = jsonOut || jsonAlias
	unusedIgnores = unusedIgnores || unusedAlias

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(runUnit(rest[0], analyzers))
	}
	if len(rest) == 0 {
		usage(analyzers)
		os.Exit(2)
	}
	// Standalone mode: let go vet do package loading and drive this
	// same binary through the unit protocol above.
	os.Exit(standalone(rest))
}

func usage(analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "usage: cgplint [-json] [-unused-ignores] <packages>   (e.g. cgplint ./...)\n")
	fmt.Fprintf(os.Stderr, "   or: go vet -vettool=/path/to/cgplint <packages>\n\nflags:\n")
	fmt.Fprintf(os.Stderr, "  -json            %s\n", jsonUsage)
	fmt.Fprintf(os.Stderr, "  -unused-ignores  %s\n\nanalyzers:\n", unusedUsage)
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, doc)
	}
}

// printVersion implements -V=full: the go command fingerprints the
// tool by hashing the executable, and requires this exact shape
// (see cmd/go/internal/work.(*Builder).toolID).
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
}

// printFlags implements -flags: go vet asks which flags the tool
// accepts before forwarding any (cmd/go/internal/vet parses the JSON
// as []struct{Name string; Bool bool; Usage string}). Only the dotted
// forms are advertised — they participate in go vet's result cache
// key, so toggling -cgplint.unusedignores re-analyzes rather than
// replaying cached clean results.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	data, err := json.Marshal([]jsonFlag{
		{Name: "cgplint.json", Bool: true, Usage: jsonUsage},
		{Name: "cgplint.unusedignores", Bool: true, Usage: unusedUsage},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(string(data))
}

// jsonDiagnostic is one finding in -json output, grouped as
// {"<package>": {"<analyzer>": [ {posn, message}, ... ]}}.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// passSuffix extracts the "(cgplint/<pass>)" tag from a text-mode
// diagnostic line when counting findings in standalone mode.
var passSuffix = regexp.MustCompile(`\(cgplint/([a-z-]+)\)$`)

// standalone re-execs go vet with this binary as the vettool, so both
// invocation styles share one loading path (and one build cache). It
// post-processes the combined vet output: text diagnostics stream
// through to stderr, JSON unit objects merge into one document on
// stdout, and a per-pass count summary lands on stderr. The exit code
// is cgplint's own: 1 whenever any finding was seen — go vet's exit
// status is advisory here, because on multi-package runs it reflects
// only the final package's units — and 2 for tool failures.
func standalone(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	args := []string{"vet", "-vettool=" + exe}
	if jsonOut {
		args = append(args, "-cgplint.json")
	}
	if unusedIgnores {
		args = append(args, "-cgplint.unusedignores")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	cmd.Stdin = os.Stdin
	vetExit := 0
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			vetExit = ee.ExitCode()
		} else {
			log.Fatal(err)
		}
	}

	counts := map[string]int{}
	merged := map[string]map[string][]jsonDiagnostic{}
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "{") {
			var obj map[string]map[string][]jsonDiagnostic
			if json.Unmarshal([]byte(trimmed), &obj) == nil {
				for pkg, byPass := range obj {
					if merged[pkg] == nil {
						merged[pkg] = map[string][]jsonDiagnostic{}
					}
					for pass, ds := range byPass {
						merged[pkg][pass] = append(merged[pkg][pass], ds...)
						counts[pass] += len(ds)
					}
				}
				continue
			}
		}
		if m := passSuffix.FindStringSubmatch(trimmed); m != nil {
			counts[m[1]]++
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(merged); err != nil {
			log.Print(err)
			return 2
		}
	}

	total := 0
	names := make([]string, 0, len(counts))
	for name, n := range counts {
		total += n
		names = append(names, name)
	}
	sort.Strings(names)
	if total > 0 {
		parts := make([]string, len(names))
		for i, name := range names {
			parts[i] = fmt.Sprintf("%s %d", name, counts[name])
		}
		fmt.Fprintf(os.Stderr, "cgplint: %d findings (%s)\n", total, strings.Join(parts, ", "))
	}
	switch {
	case vetExit > 1:
		return vetExit // hard failure: bad flags, broken build, tool crash
	case total > 0:
		return 1
	default:
		return vetExit
	}
}

// runUnit analyzes one compilation unit and returns the process exit
// code: 0 clean, 1 findings, 2 tool failure.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Print(err)
		return 2
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Printf("cannot decode config %s: %v", cfgFile, err)
		return 2
	}

	// go vet caches and re-reads the facts file unconditionally, so it
	// must exist even for units this run skips or fails on.
	writeVetx := func(payload []byte) bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			log.Print(err)
			return false
		}
		return true
	}

	// Dependencies outside this module (including the standard
	// library) are none of cgplint's business and export no facts;
	// passes use explicit allowlists for them.
	if cfg.ImportPath != analysis.ModulePath &&
		!strings.HasPrefix(cfg.ImportPath, analysis.ModulePath+"/") {
		if !writeVetx(nil) {
			return 2
		}
		return 0
	}

	fset := token.NewFileSet()
	files, pkg, info, err := typecheck(fset, cfg)
	if err != nil {
		if !writeVetx(nil) {
			return 2
		}
		if cfg.SucceedOnTypecheckFailure {
			return 0 // the compiler will report it better
		}
		log.Print(err)
		return 2
	}

	// Seed the fact store with every dependency's exports. go vet
	// analyzes packages in build-graph order, so these files exist by
	// the time this unit runs.
	facts := analysis.NewFacts()
	for path, vetx := range cfg.PackageVetx {
		payload, err := os.ReadFile(vetx)
		if err != nil {
			log.Print(err)
			return 2
		}
		if err := facts.DecodeFacts(path, payload); err != nil {
			log.Print(err)
			return 2
		}
	}
	unit := &analysis.Unit{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Facts:     facts,
		Ignores:   analysis.ParseIgnores(fset, files),
	}

	type tagged struct {
		analyzer string
		d        analysis.Diagnostic
	}
	var diags []tagged
	known := make([]string, len(analyzers))
	for i, a := range analyzers {
		known[i] = a.Name
		ds, err := analysis.RunAnalyzer(a, unit)
		if err != nil {
			log.Print(err)
			return 2
		}
		for _, d := range ds {
			diags = append(diags, tagged{a.Name, d})
		}
	}

	// Facts are complete once every analyzer has run; export them even
	// for fact-only units, which is the whole point of those units.
	payload, err := facts.EncodeFacts(cfg.ImportPath)
	if err != nil {
		log.Print(err)
		return 2
	}
	if !writeVetx(payload) {
		return 2
	}
	if cfg.VetxOnly {
		return 0
	}

	for _, d := range analysis.CheckIgnores(fset, files, known) {
		diags = append(diags, tagged{"ignore", d})
	}
	if unusedIgnores {
		for _, d := range unit.Ignores.Unused(known) {
			diags = append(diags, tagged{"unusedignores", d})
		}
	}
	if len(diags) == 0 {
		return 0
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].d.Pos < diags[j].d.Pos })
	if jsonOut {
		byPass := map[string][]jsonDiagnostic{}
		for _, td := range diags {
			byPass[td.analyzer] = append(byPass[td.analyzer], jsonDiagnostic{
				Posn:    fset.Position(td.d.Pos).String(),
				Message: td.d.Message,
			})
		}
		line, err := json.Marshal(map[string]map[string][]jsonDiagnostic{cfg.ImportPath: byPass})
		if err != nil {
			log.Print(err)
			return 2
		}
		// One object per line so standalone mode can pick JSON out of
		// interleaved go vet output.
		fmt.Fprintln(os.Stderr, string(line))
	} else {
		for _, td := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (cgplint/%s)\n", fset.Position(td.d.Pos), td.d.Message, td.analyzer)
		}
	}
	return 1
}

// typecheck parses and type-checks the unit, resolving imports from
// the export data files listed in the config.
func typecheck(fset *token.FileSet, cfg *Config) ([]*ast.File, *types.Package, *types.Info, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, pkg, info, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
