package dataflow

import (
	"go/ast"
	"go/types"
)

// CallKind classifies what a CallExpr actually does.
type CallKind int

const (
	// KindCall is a resolvable function or concrete-method call.
	KindCall CallKind = iota
	// KindDynamic is a call whose target cannot be resolved
	// statically: interface dispatch or a call through a func value.
	KindDynamic
	// KindConversion is a type conversion, not a call.
	KindConversion
	// KindBuiltin is a builtin (len, cap, make, append, ...).
	KindBuiltin
)

// Classify resolves one call expression. For KindCall the returned
// *types.Func is the static callee (origin form for generics); for
// KindBuiltin the returned name is the builtin's; otherwise both are
// zero.
func Classify(info *types.Info, call *ast.CallExpr) (CallKind, *types.Func, string) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return KindConversion, nil, ""
	}
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			return KindBuiltin, nil, obj.Name()
		case *types.Func:
			return KindCall, obj.Origin(), ""
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if _, iface := sel.Recv().Underlying().(*types.Interface); iface {
					return KindDynamic, fn.Origin(), "" // interface dispatch; fn names the method
				}
				return KindCall, fn.Origin(), ""
			}
		} else if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return KindCall, fn.Origin(), "" // pkg-qualified call
		}
	}
	return KindDynamic, nil, ""
}

// MethodValue resolves e as a bound method value (`c.issue`) to its
// concrete *types.Func, or nil when e is not one.
func MethodValue(info *types.Info, e ast.Expr) *types.Func {
	sel, ok := Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	if _, iface := s.Recv().Underlying().(*types.Interface); iface {
		return nil // bound interface method: dynamic
	}
	fn, _ := s.Obj().(*types.Func)
	if fn != nil {
		fn = fn.Origin()
	}
	return fn
}

// FuncValue resolves e as a plain function reference (`decodeEventInto`,
// `pkg.Fn`) to its *types.Func, or nil.
func FuncValue(info *types.Info, e ast.Expr) *types.Func {
	switch v := Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[v].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if _, ok := info.Selections[v]; ok {
			return MethodValue(info, v)
		}
		if fn, ok := info.Uses[v.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}
