package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Mask is a taint bit set. Bit 0 marks source-derived (wall-clock)
// values; bit i+1 marks values derived from the function's i-th
// parameter, which is how a function's propagation summary is
// computed. Functions with more than 30 parameters saturate into
// coarse propagation, which this module does not contain.
type Mask uint32

// WallBit marks a value derived from a taint source.
const WallBit Mask = 1

// ParamBit returns the bit tracking derivation from parameter i.
func ParamBit(i int) Mask {
	if i > 29 {
		i = 29
	}
	return 1 << (uint(i) + 1)
}

// AnyParam masks every parameter bit.
const AnyParam = ^Mask(0) &^ WallBit

// Solver runs a flow-insensitive, object-level taint fixpoint over one
// function body. Taint is monotone — once an object is tainted it
// stays tainted — so the fixpoint is a least solution and terminates.
// Comparisons drop taint (a bool branched on a wall value is implicit
// flow, out of scope); data flow through assignments, arithmetic,
// conversions (the laundering catch: int64(wall) stays tainted),
// composite literals, and calls is tracked.
type Solver struct {
	Info *types.Info
	// IsSource reports whether values of this type are taint sources
	// regardless of provenance (the Wall* unit types).
	IsSource func(types.Type) bool
	// CallMask maps one call and the OR of its argument masks to the
	// mask of its results; the pass implements it with function
	// summaries. It is never called for conversions or builtins.
	CallMask func(call *ast.CallExpr, args Mask) Mask

	taint map[types.Object]Mask
}

// Run solves the body to fixpoint. Each parameter starts carrying its
// ParamBit so the caller can derive a propagation summary; pass nil
// params to track only source taint.
func (s *Solver) Run(body ast.Node, params []*types.Var) {
	s.taint = map[types.Object]Mask{}
	for i, p := range params {
		if p != nil {
			s.taint[p] = ParamBit(i)
		}
	}
	for iter := 0; iter < 10; iter++ {
		if !s.sweep(body) {
			return
		}
	}
}

// ObjMask returns the solved mask of an object.
func (s *Solver) ObjMask(o types.Object) Mask { return s.taint[o] }

// sweep propagates through every statement once, reporting change.
func (s *Solver) sweep(body ast.Node) bool {
	changed := false
	mark := func(o types.Object, m Mask) {
		if o == nil || m == 0 {
			return
		}
		if s.taint[o]|m != s.taint[o] {
			s.taint[o] |= m
			changed = true
		}
	}
	lhsObj := func(e ast.Expr) types.Object {
		switch v := Unparen(e).(type) {
		case *ast.Ident:
			if o := s.Info.Defs[v]; o != nil {
				return o
			}
			return s.Info.Uses[v]
		case *ast.SelectorExpr:
			// Writing a tainted value into a field taints the whole
			// base object (field-insensitive strong taint).
			return s.baseObj(v.X)
		case *ast.IndexExpr:
			return s.baseObj(v.X)
		case *ast.StarExpr:
			return s.baseObj(v.X)
		}
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					mark(lhsObj(st.Lhs[i]), s.ExprMask(st.Rhs[i]))
				}
			} else if len(st.Rhs) == 1 {
				m := s.ExprMask(st.Rhs[0])
				for _, l := range st.Lhs {
					mark(lhsObj(l), m)
				}
			}
			if st.Tok != token.ASSIGN && st.Tok != token.DEFINE && len(st.Lhs) == 1 {
				// op= also keeps the lhs's own taint; monotone, nothing
				// to do.
				_ = st
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i, name := range st.Names {
					mark(s.Info.Defs[name], s.ExprMask(st.Values[i]))
				}
			} else if len(st.Values) == 1 {
				m := s.ExprMask(st.Values[0])
				for _, name := range st.Names {
					mark(s.Info.Defs[name], m)
				}
			}
		case *ast.RangeStmt:
			m := s.ExprMask(st.X)
			if st.Key != nil {
				mark(lhsObj(st.Key), m)
			}
			if st.Value != nil {
				mark(lhsObj(st.Value), m)
			}
		}
		return true
	})
	return changed
}

// baseObj returns the root object of a selector/index chain.
func (s *Solver) baseObj(e ast.Expr) types.Object {
	for {
		switch v := Unparen(e).(type) {
		case *ast.Ident:
			return s.Info.Uses[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// ExprMask computes the taint mask of an expression under the current
// solution.
func (s *Solver) ExprMask(e ast.Expr) Mask {
	if e == nil {
		return 0
	}
	var m Mask
	if t := s.Info.TypeOf(e); t != nil && s.IsSource != nil && s.IsSource(t) {
		m |= WallBit
	}
	switch v := Unparen(e).(type) {
	case *ast.Ident:
		m |= s.taint[s.Info.Uses[v]]
	case *ast.BinaryExpr:
		switch v.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			// Comparisons and logic yield bools; implicit flow is out
			// of scope.
		default:
			m |= s.ExprMask(v.X) | s.ExprMask(v.Y)
		}
	case *ast.UnaryExpr:
		m |= s.ExprMask(v.X)
	case *ast.StarExpr:
		m |= s.ExprMask(v.X)
	case *ast.SelectorExpr:
		if _, isSel := s.Info.Selections[v]; isSel || s.Info.Uses[v.Sel] != nil {
			m |= s.taint[s.Info.Uses[v.Sel]]
		}
		m |= s.ExprMask(v.X)
	case *ast.IndexExpr:
		m |= s.ExprMask(v.X)
	case *ast.SliceExpr:
		m |= s.ExprMask(v.X)
	case *ast.TypeAssertExpr:
		m |= s.ExprMask(v.X)
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= s.ExprMask(kv.Value)
			} else {
				m |= s.ExprMask(el)
			}
		}
	case *ast.CallExpr:
		kind, _, builtin := Classify(s.Info, v)
		switch kind {
		case KindConversion:
			// The laundering catch: converting away a wall unit type
			// does not clear taint.
			m |= s.ExprMask(v.Args[0])
		case KindBuiltin:
			switch builtin {
			case "len", "cap", "make", "new":
				// Sizes and fresh objects are clean.
			case "append":
				for _, a := range v.Args {
					m |= s.ExprMask(a)
				}
			default:
				for _, a := range v.Args {
					m |= s.ExprMask(a)
				}
			}
		default:
			var args Mask
			for _, a := range v.Args {
				args |= s.ExprMask(a)
			}
			// A method call's receiver feeds its results too: without
			// this, time.Since(t).Nanoseconds() would launder taint
			// through the zero-argument method call.
			if sel, ok := Unparen(v.Fun).(*ast.SelectorExpr); ok {
				if _, isSel := s.Info.Selections[sel]; isSel {
					args |= s.ExprMask(sel.X)
				}
			}
			if s.CallMask != nil {
				m |= s.CallMask(v, args)
			} else {
				m |= args
			}
		}
	}
	return m
}
