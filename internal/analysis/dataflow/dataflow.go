// Package dataflow is the engine under cgplint's summary-based passes
// (allocfree, walltaint, ctxflow): canonical function naming, static
// call resolution, declaration indexing, and an intra-function taint
// solver, all riding on go/types with no whole-program loader.
//
// The design is function-summary-based, the classic compromise for a
// tool that sees one compilation unit at a time (the vet unit
// protocol): each function is analyzed once in its own package, its
// externally visible behavior is condensed into a small string —
// "allocates nothing", "results 0 and 2 carry wall taint" — and the
// summary travels to dependent packages through the vet facts channel
// (analysis.Facts). Callers consult summaries instead of re-walking
// bodies, so analysis cost stays linear in module size and the driver
// never needs source for more than one package at a time.
//
// Resolution is deliberately static: direct calls, concrete method
// calls, and method values resolve to a *types.Func; interface
// dispatch and arbitrary func values do not, and each pass decides
// what an unresolved edge means for its property (allocfree treats it
// as a hazard unless the interface is itself annotated, walltaint
// propagates conservatively, ctxflow ignores it).
package dataflow

import (
	"go/ast"
	"go/types"
)

// FuncKey returns the package-relative canonical name of fn, the form
// used in fact keys and diagnostics: "New", "(*Cache).Access",
// "Prefetcher.OnFetch". Generic instantiations collapse to their
// origin so one summary covers every instantiation.
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		if n, ok := p.Elem().(*types.Named); ok {
			return "(*" + n.Obj().Name() + ")." + fn.Name()
		}
		return "(*?)." + fn.Name()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name() + "." + fn.Name()
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		// Unnamed interface receiver (rare: embedded anonymous iface).
		return "interface." + fn.Name()
	}
	return "?." + fn.Name()
}

// QualifiedKey is FuncKey prefixed with the defining package path,
// "cgp/internal/cache.(*Cache).Access", for cross-package diagnostics.
func QualifiedKey(fn *types.Func) string {
	fn = fn.Origin()
	if fn.Pkg() == nil {
		return FuncKey(fn) // builtins like error.Error
	}
	return fn.Pkg().Path() + "." + FuncKey(fn)
}

// DeclIndex maps each function object declared in the files to its
// declaration, keyed by origin so instantiated methods find their
// generic source. Function literals are not included; passes walk
// them in place.
func DeclIndex(info *types.Info, files []*ast.File) map[*types.Func]*ast.FuncDecl {
	idx := map[*types.Func]*ast.FuncDecl{}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				idx[fn.Origin()] = fd
			}
		}
	}
	return idx
}

// Unparen strips any number of enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
