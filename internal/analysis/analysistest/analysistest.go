// Package analysistest runs a cgplint analyzer over a tree of test
// packages and checks its diagnostics against expectations written in
// the source, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	m := make(map[string]int)
//	for k := range m {
//		fmt.Println(k) // want `map iteration order`
//	}
//
// A `// want` comment holds one or more quoted regular expressions;
// each must match a diagnostic reported on that line, and every
// diagnostic must be claimed by some expectation. Both back-quoted and
// double-quoted forms are accepted.
//
// Test packages live under testdata/src/<import-path>/. The import
// path is taken literally, so a test package can opt in or out of the
// deterministic domain by choosing a path inside or outside the "cgp"
// module, and a package whose path ends in a directory named "units"
// stands in for internal/units in cyclesafe tests. Imports resolve
// against testdata first and fall back to the real standard library.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cgp/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each package under dir/src and applies the analyzer,
// comparing suppression-filtered diagnostics against // want comments.
//
// Facts flow between testdata packages the way they do under go vet:
// the loader records load completion order (dependencies finish before
// dependents), and before a package is checked the analyzer runs over
// every not-yet-analyzed dependency with a shared fact store so
// cross-package summaries are in place. Diagnostics from those
// fact-priming runs are discarded; only the named packages' findings
// are compared against // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(dir)
	facts := analysis.NewFacts()
	analyzed := map[string]bool{}
	for _, path := range pkgPaths {
		res, err := l.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		for _, dep := range l.order {
			if dep == path || analyzed[dep] {
				continue
			}
			analyzed[dep] = true
			if _, err := analysis.RunAnalyzer(a, l.unit(l.pkgs[dep], facts)); err != nil {
				t.Fatalf("running %s on dependency %s: %v", a.Name, dep, err)
			}
		}
		diags, err := analysis.RunAnalyzer(a, l.unit(res, facts))
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		analyzed[path] = true
		check(t, l.fset, path, res.files, diags)
	}
}

// RunIgnores applies analysis.CheckIgnores (the driver's directive
// audit) to one test package and checks it the same way.
func RunIgnores(t *testing.T, dir string, known []string, pkgPaths ...string) {
	t.Helper()
	l := newLoader(dir)
	for _, path := range pkgPaths {
		res, err := l.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		check(t, l.fset, path, res.files, analysis.CheckIgnores(l.fset, res.files, known))
	}
}

// ---- package loading ----

type result struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	fset   *token.FileSet
	srcDir string
	std    types.Importer
	pkgs   map[string]*result
	// order records load completion, which is post-order over the
	// import graph: a package's testdata dependencies appear before it.
	order []string
}

// unit assembles an analysis unit over a shared fact store.
func (l *loader) unit(res *result, facts *analysis.Facts) *analysis.Unit {
	return &analysis.Unit{
		Fset:      l.fset,
		Files:     res.files,
		Pkg:       res.pkg,
		TypesInfo: res.info,
		Facts:     facts,
		Ignores:   analysis.ParseIgnores(l.fset, res.files),
	}
}

func newLoader(dir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		srcDir: filepath.Join(dir, "src"),
		std:    importer.ForCompiler(fset, "gc", nil),
		pkgs:   map[string]*result{},
	}
}

// Import lets the loader serve as the importer for its own packages:
// testdata packages shadow the real module, everything else falls
// through to the standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.srcDir, path); isDir(dir) {
		res, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return res.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*result, error) {
	if res, ok := l.pkgs[path]; ok {
		return res, nil
	}
	dir := filepath.Join(l.srcDir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking: %w", err)
	}
	res := &result{pkg: pkg, files: files, info: info}
	l.pkgs[path] = res
	l.order = append(l.order, path)
	return res, nil
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// ---- expectation matching ----

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	used bool
}

// wantRe captures each back-quoted or double-quoted pattern after
// "want".
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(text[idx+len("want "):], -1) {
					pattern := q
					if q[0] == '"' {
						var err error
						pattern, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
					} else {
						pattern = q[1 : len(q)-1]
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: pattern,
					})
				}
			}
		}
	}
	return wants
}

func check(t *testing.T, fset *token.FileSet, pkgPath string, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
diags:
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				continue diags
			}
		}
		t.Errorf("%s: unexpected diagnostic in %s: %s", pos, pkgPath, d.Message)
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
