// Package paniccheck flags recover() calls that throw away the
// recovered value.
//
// The harness's failure model (DESIGN.md §11) promises that every
// panic inside a simulation is attributed: converted to a *JobError
// carrying the panic value and stack, resolved into its singleflight
// flight, and reported per job in the campaign's *CampaignError. A
// bare
//
//	defer func() { recover() }()
//
// silently swallows the crash instead — the job "succeeds" with
// garbage state and the report can't say why a number is wrong. The
// pattern is also a latent deadlock source here: a recover that
// doesn't resolve the flight leaves every waiter blocked.
//
// Flagged in non-test files:
//
//   - recover() as a bare expression statement (value discarded);
//   - _ = recover() (value explicitly discarded);
//   - defer recover() (a no-op by the language spec: recover only
//     works inside a deferred function's body).
//
// The fix is to capture the value and propagate it, as faults.go and
// the runner's batch guard do:
//
//	if p := recover(); p != nil {
//	    err = &JobError{Panic: p, Stack: debug.Stack()}
//	}
//
// A recover that intentionally discards (a sentinel whose value is
// known, say) documents itself with //cgplint:ignore paniccheck <reason>.
package paniccheck

import (
	"go/ast"
	"go/types"

	"cgp/internal/analysis"
)

// Analyzer is the paniccheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "paniccheck",
	Doc:  "flag recover() calls that discard the recovered value instead of converting it to an attributed error",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InDeterministicDomain(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call := recoverCall(pass, n.X); call != nil && !pass.InTestFile(call.Pos()) {
					pass.Reportf(call.Pos(),
						"bare recover() discards the recovered value; capture it and convert it to an attributed error (see *JobError)")
				}
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.DeferStmt:
				if call := recoverCall(pass, n.Call); call != nil && !pass.InTestFile(call.Pos()) {
					pass.Reportf(n.Pos(),
						"defer recover() is a no-op (recover only works inside a deferred function) and discards the value; recover inside a deferred func and convert the value to an attributed error")
				}
			}
			return true
		})
	}
	return nil
}

// checkAssign flags assignments that bind a recover() result to the
// blank identifier.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call := recoverCall(pass, rhs)
		if call == nil || pass.InTestFile(call.Pos()) {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		if id, ok := unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(as.Pos(),
				"recover() result assigned to _ discards the recovered value; capture it and convert it to an attributed error (see *JobError)")
		}
	}
}

// recoverCall returns e as a call to the recover builtin, or nil.
func recoverCall(pass *analysis.Pass, e ast.Expr) *ast.CallExpr {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "recover" {
		return nil
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "recover" {
		return nil
	}
	return call
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
