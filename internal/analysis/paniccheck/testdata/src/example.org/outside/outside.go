// Package outside is not under the cgp module path, so the
// determinism analyzers leave it alone.
package outside

func swallow() {
	defer func() {
		recover() // out of domain: not flagged
	}()
}
