// Package pc exercises paniccheck inside the deterministic domain
// (import path cgp/fake/pc).
package pc

import "fmt"

type jobError struct {
	panicValue any
}

func bareRecover() {
	defer func() {
		recover() // want `bare recover\(\) discards the recovered value`
	}()
}

func blankRecover() {
	defer func() {
		_ = recover() // want `recover\(\) result assigned to _ discards the recovered value`
	}()
}

func deferredRecover() {
	defer recover() // want `defer recover\(\) is a no-op`
}

func parenRecover() {
	defer func() {
		(recover()) // want `bare recover\(\) discards the recovered value`
	}()
}

func capturedRecover() (err error) {
	defer func() {
		if p := recover(); p != nil { // captured and converted: allowed
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	return nil
}

func convertedRecover() (je *jobError) {
	defer func() {
		if p := recover(); p != nil { // captured into a typed error: allowed
			je = &jobError{panicValue: p}
		}
	}()
	return nil
}

func suppressedRecover() {
	defer func() {
		//cgplint:ignore paniccheck sentinel abort value is re-panicked by the caller's guard
		recover()
	}()
}

// recover as a local identifier is not the builtin.
func shadowedRecover() {
	recover := func() int { return 1 }
	recover() // a plain function call, not the builtin: allowed
}
