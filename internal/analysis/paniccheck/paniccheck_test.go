package paniccheck_test

import (
	"testing"

	"cgp/internal/analysis/analysistest"
	"cgp/internal/analysis/paniccheck"
)

func TestPaniccheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), paniccheck.Analyzer,
		"cgp/fake/pc", "example.org/outside")
}
