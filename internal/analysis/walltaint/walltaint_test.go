package walltaint_test

import (
	"testing"

	"cgp/internal/analysis/analysistest"
	"cgp/internal/analysis/walltaint"
)

func TestWalltaint(t *testing.T) {
	// cgp/fake/taint imports cgp/fake/taintdep, so the harness primes
	// the dependency's detsink:/taint: facts before the checked package
	// runs.
	analysistest.Run(t, analysistest.TestData(), walltaint.Analyzer, "cgp/fake/taint")
}
