// Package walltaint proves, by taint tracking, that no wall-clock-
// derived value reaches the deterministic domain's outputs: the obs
// Registry (figure-feeding counters, gauges, histograms), config
// fingerprints, and the typed simulated-unit values (units.Cycles,
// units.EstCycles, ...) that figures are rendered from.
//
// PR 5 drew the simulated/wall boundary with types (units.WallNanos)
// and two suppressed exits in internal/obs/wall.go — an honor system:
// nothing stopped a wall nanosecond from being laundered through
// int64() three lines later and folded into a counter. This pass
// replaces the honor system with a checked dataflow property:
//
//   - Sources: every expression whose type is a Wall* unit, plus the
//     results of time.Now/Since/Until (so even detrand-suppressed
//     clock reads stay tainted downstream).
//   - Propagation: the dataflow solver tracks taint through
//     assignments, arithmetic, conversions (int64(wall) stays
//     tainted — that is the point), composite literals, and calls.
//     Cross-function flow uses summaries: "results always tainted"
//     (W), "results tainted when arguments are" (P), and "parameter i
//     reaches a sink" (S), exported as "taint:" facts so the check
//     composes across packages. Unknown externals conservatively
//     propagate argument taint to results.
//   - Sinks: calls to //cgplint:detsink functions (obs Registry
//     writes, Config.fingerprint), exported cross-package as
//     "detsink:" facts, and conversions of tainted values into
//     non-wall unit types (laundering a wall duration into
//     units.EstCycles would let it masquerade as a simulated
//     estimate).
//
// Comparisons drop taint: branching on a wall value is implicit flow,
// and the repository's legitimate uses (retry backoff, progress
// polling) gate control, not data. Test files are exempt.
package walltaint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"cgp/internal/analysis"
	"cgp/internal/analysis/dataflow"
)

// Analyzer is the walltaint pass.
var Analyzer = &analysis.Analyzer{
	Name: "walltaint",
	Doc: "taint-track units.Wall* values and clock reads; flag flows into " +
		"//cgplint:detsink functions and conversions into simulated unit types",
	Run: run,
}

// summary is one function's taint behavior.
type summary struct {
	w     bool          // results carry wall taint regardless of arguments
	p     bool          // argument taint propagates to results
	sinks dataflow.Mask // parameter bits that reach a sink
	done  bool
}

type checker struct {
	pass      *analysis.Pass
	decls     map[*types.Func]*ast.FuncDecl
	summaries map[*types.Func]*summary
	detsink   map[*types.Func]bool // local detsink-annotated functions
}

func run(pass *analysis.Pass) error {
	if !analysis.InDeterministicDomain(pass.Pkg.Path()) {
		return nil
	}
	c := &checker{
		pass:      pass,
		decls:     dataflow.DeclIndex(pass.TypesInfo, pass.Files),
		summaries: map[*types.Func]*summary{},
		detsink:   map[*types.Func]bool{},
	}

	// Export detsink annotations first so in-package sink checks and
	// dependent packages share one lookup path.
	var fns []*types.Func
	for fn, decl := range c.decls {
		if pass.InTestFile(decl.Pos()) {
			continue
		}
		if ok, _ := analysis.Directive(decl.Doc, analysis.DirDetsink); ok {
			c.detsink[fn] = true
			pass.ExportFact("detsink:"+dataflow.FuncKey(fn), "1")
		}
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool {
		return dataflow.FuncKey(fns[i]) < dataflow.FuncKey(fns[j])
	})

	// Summarize (and sink-check) every function; export non-trivial
	// summaries.
	for _, fn := range fns {
		s := c.summaryOf(fn)
		if s == nil || (!s.w && !s.p && s.sinks == 0) {
			continue
		}
		var parts []string
		if s.w {
			parts = append(parts, "W")
		}
		if s.p {
			parts = append(parts, "P")
		}
		if s.sinks != 0 {
			var idx []string
			for i := 0; i < 30; i++ {
				if s.sinks&dataflow.ParamBit(i) != 0 {
					idx = append(idx, itoa(i))
				}
			}
			parts = append(parts, "S="+strings.Join(idx, ","))
		}
		pass.ExportFact("taint:"+dataflow.FuncKey(fn), strings.Join(parts, ";"))
	}
	return nil
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// isWallType reports whether t is a Wall* unit type.
func isWallType(t types.Type) bool {
	return analysis.WallUnitType(t) != nil
}

// isDetUnit reports whether t is a simulated (non-wall) unit type —
// the types figures are rendered from.
func isDetUnit(t types.Type) bool {
	n := analysis.UnitType(t)
	return n != nil && !analysis.IsWallUnit(n)
}

// clockRead reports whether fn is a wall-clock read whose result must
// stay tainted even where detrand suppressions allow the call.
func clockRead(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		return true
	}
	return false
}

// summaryOf computes (once) the taint summary of fn, emitting sink
// diagnostics found in its body as a side effect. Recursion is cut
// optimistically: a cycle's members see the zero summary of the
// in-progress node, and the repository has no tainted recursion.
func (c *checker) summaryOf(fn *types.Func) *summary {
	if s, ok := c.summaries[fn]; ok {
		return s
	}
	decl, ok := c.decls[fn]
	if !ok || decl.Body == nil || c.pass.InTestFile(decl.Pos()) {
		return nil
	}
	s := &summary{}
	c.summaries[fn] = s // in-progress marker (zero behavior)

	params := paramVars(c.pass, decl)
	solver := &dataflow.Solver{
		Info:     c.pass.TypesInfo,
		IsSource: isWallType,
		CallMask: c.callMask,
	}
	solver.Run(decl.Body, params)

	// Result taint: explicit return expressions plus named results on
	// bare returns.
	var namedResults []*types.Var
	if decl.Type.Results != nil {
		for _, f := range decl.Type.Results.List {
			for _, n := range f.Names {
				if v, ok := c.pass.TypesInfo.Defs[n].(*types.Var); ok {
					namedResults = append(namedResults, v)
				}
			}
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a literal's returns are not fn's returns
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		var m dataflow.Mask
		if len(ret.Results) == 0 {
			for _, v := range namedResults {
				m |= solver.ObjMask(v)
			}
		}
		for _, r := range ret.Results {
			m |= solver.ExprMask(r)
		}
		if m&dataflow.WallBit != 0 {
			s.w = true
		}
		if m&dataflow.AnyParam != 0 {
			s.p = true
		}
		return true
	})

	// Sink walk: detsink calls, sink-summary callees, det-unit
	// conversions.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, callee, _ := dataflow.Classify(c.pass.TypesInfo, call)
		switch kind {
		case dataflow.KindConversion:
			if t := c.pass.TypesInfo.TypeOf(call); t != nil && isDetUnit(t) {
				m := solver.ExprMask(call.Args[0])
				if m&dataflow.WallBit != 0 && !c.pass.Excused(call.Pos()) {
					c.pass.Reportf(call.Pos(), "wall-clock-derived value laundered into simulated unit %s", typeName(t))
				}
				s.sinks |= m & dataflow.AnyParam
			}
		case dataflow.KindCall, dataflow.KindDynamic:
			if callee == nil {
				return true
			}
			sinkParams := c.sinkParams(callee)
			if sinkParams == 0 {
				return true
			}
			for i, a := range call.Args {
				if sinkParams&dataflow.ParamBit(i) == 0 {
					continue
				}
				m := solver.ExprMask(a)
				if m&dataflow.WallBit != 0 && !c.pass.Excused(a.Pos()) {
					c.pass.Reportf(a.Pos(), "wall-clock-derived value flows into deterministic sink %s",
						dataflow.QualifiedKey(callee))
				}
				s.sinks |= m & dataflow.AnyParam
			}
		}
		return true
	})
	s.done = true
	return s
}

// sinkParams returns the mask of callee parameters that reach a
// deterministic sink: every parameter for detsink-annotated functions,
// or the S-set from a taint summary.
func (c *checker) sinkParams(callee *types.Func) dataflow.Mask {
	if c.detsink[callee] {
		return dataflow.AnyParam
	}
	if decl, local := c.decls[callee]; local && !c.pass.InTestFile(decl.Pos()) {
		if s := c.summaryOf(callee); s != nil {
			return s.sinks
		}
		return 0
	}
	pkg := callee.Pkg()
	if pkg == nil || !inModule(pkg) {
		return 0
	}
	if _, ok := c.pass.Fact(pkg.Path(), "detsink:"+dataflow.FuncKey(callee)); ok {
		return dataflow.AnyParam
	}
	if v, ok := c.pass.Fact(pkg.Path(), "taint:"+dataflow.FuncKey(callee)); ok {
		return parseSummary(v).sinks
	}
	return 0
}

// callMask implements the solver's call transfer: clock reads are
// sources; summarized callees apply their W/P behavior; unknown
// externals conservatively propagate argument taint.
func (c *checker) callMask(call *ast.CallExpr, args dataflow.Mask) dataflow.Mask {
	_, callee, _ := dataflow.Classify(c.pass.TypesInfo, call)
	if callee == nil {
		return args // calls through func values: propagate
	}
	if clockRead(callee) {
		return args | dataflow.WallBit
	}
	if decl, local := c.decls[callee]; local && !c.pass.InTestFile(decl.Pos()) {
		s := c.summaryOf(callee)
		if s == nil {
			return args
		}
		var m dataflow.Mask
		if s.w {
			m |= dataflow.WallBit
		}
		if s.p {
			m |= args
		}
		return m
	}
	pkg := callee.Pkg()
	if pkg != nil && inModule(pkg) && pkg.Path() != c.pass.Pkg.Path() {
		v, ok := c.pass.Fact(pkg.Path(), "taint:"+dataflow.FuncKey(callee))
		if !ok {
			// Summarized as clean unless its results are wall-typed,
			// which the solver's type seed already covers.
			return 0
		}
		s := parseSummary(v)
		var m dataflow.Mask
		if s.w {
			m |= dataflow.WallBit
		}
		if s.p {
			m |= args
		}
		return m
	}
	return args // external: propagate conservatively
}

// parseSummary decodes a taint: fact value.
func parseSummary(v string) summary {
	var s summary
	for _, part := range strings.Split(v, ";") {
		switch {
		case part == "W":
			s.w = true
		case part == "P":
			s.p = true
		case strings.HasPrefix(part, "S="):
			for _, f := range strings.Split(part[2:], ",") {
				n := 0
				for _, ch := range f {
					if ch < '0' || ch > '9' {
						n = -1
						break
					}
					n = n*10 + int(ch-'0')
				}
				if n >= 0 {
					s.sinks |= dataflow.ParamBit(n)
				}
			}
		}
	}
	return s
}

func typeName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

func inModule(pkg *types.Package) bool {
	p := pkg.Path()
	return p == analysis.ModulePath || strings.HasPrefix(p, analysis.ModulePath+"/")
}

// paramVars returns the declared parameter objects in order, receivers
// excluded (receiver taint rarely matters and would double parameter
// indices across call sites, where receivers are not arguments).
func paramVars(pass *analysis.Pass, decl *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if decl.Type.Params == nil {
		return out
	}
	for _, f := range decl.Type.Params.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, n := range f.Names {
			v, _ := pass.TypesInfo.Defs[n].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}
