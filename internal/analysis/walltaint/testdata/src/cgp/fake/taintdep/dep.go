// Package taintdep exercises walltaint's cross-package facts: Record
// exports a detsink: fact and Millis a taint: summary (W), both
// consulted by cgp/fake/taint.
package taintdep

import (
	"time"
)

// Record is a deterministic sink (an obs Registry write).
//
//cgplint:detsink
func Record(name string, v int64) {}

// Millis reads the wall clock and launders it into a plain int64; its
// taint summary is W (results always wall-derived).
func Millis(start time.Time) int64 {
	return int64(time.Since(start)) / 1e6
}
