// Package taint exercises walltaint: sources (Wall* units, clock
// reads), propagation through conversions and local summaries, sinks
// (detsink calls, simulated-unit conversions), suppression, and
// cross-package facts.
package taint

import (
	"time"

	"units"

	"cgp/fake/taintdep"
)

// recordPoint is a deterministic sink (stands in for a Registry write).
//
//cgplint:detsink
func recordPoint(name string, v int64) {}

// Elapsed returns a wall-typed duration; its summary is W.
func Elapsed(start time.Time) units.WallNanos {
	return units.WallNanos(time.Since(start))
}

// Bad launders a wall duration through int64 before sinking it: the
// conversion must not clear taint.
func Bad(start time.Time) {
	d := int64(Elapsed(start))
	recordPoint("latency", d) // want `wall-clock-derived value flows into deterministic sink cgp/fake/taint.recordPoint`
}

// BadConversion masquerades wall time as a simulated estimate.
func BadConversion(start time.Time) units.Cycles {
	return units.Cycles(Elapsed(start)) // want `wall-clock-derived value laundered into simulated unit Cycles`
}

// BadMethod taints through a zero-argument method call on a wall
// receiver.
func BadMethod(start time.Time) {
	recordPoint("ns", time.Since(start).Nanoseconds()) // want `wall-clock-derived value flows into deterministic sink cgp/fake/taint.recordPoint`
}

// Fine records simulated units: that is what the registry is for.
func Fine(n units.Cycles) {
	recordPoint("cycles", int64(n))
}

// Compared drops taint at the comparison: gating control flow on wall
// time is legitimate (retry backoff, progress polling).
func Compared(start time.Time, n units.Cycles) {
	if Elapsed(start) > 1e9 {
		recordPoint("slow_cycles", int64(n))
	}
}

// Suppressed documents a sanctioned exit with a reasoned ignore.
func Suppressed(start time.Time) {
	//cgplint:ignore walltaint calibration figure intentionally reports wall time
	recordPoint("calib_ns", int64(Elapsed(start)))
}

// transit forwards its second parameter into a sink; its summary is
// S=1, making call sites with tainted arguments findings.
func transit(name string, v int64) {
	recordPoint(name, v)
}

// BadTransitive sinks through the local S-summary.
func BadTransitive(start time.Time) {
	transit("latency", int64(time.Since(start))) // want `wall-clock-derived value flows into deterministic sink cgp/fake/taint.transit`
}

// BadCrossSink sinks a cross-package W-summary result into a
// cross-package detsink fact.
func BadCrossSink(start time.Time) {
	taintdep.Record("t_ms", taintdep.Millis(start)) // want `wall-clock-derived value flows into deterministic sink cgp/fake/taintdep.Record`
}

// FineCross records a plain computed value.
func FineCross(n int64) {
	taintdep.Record("count", n*2)
}
