// Package units stands in for cgp/internal/units: the analyzers
// recognize unit types by their defining package being named "units".
package units

// Cycles counts simulated CPU clock cycles.
type Cycles int64

// EstCycles counts estimated (sampled) cycles.
type EstCycles int64

// WallNanos is a wall-clock-domain duration: the "Wall" name prefix
// marks the quarantined domain.
type WallNanos int64
