package analysis

import (
	"go/ast"
	"strings"
)

// Declaration directives.
//
// Besides //cgplint:ignore (suppress.go), cgplint understands three
// directives that attach to declarations rather than diagnostic lines:
//
//	//cgplint:hotpath
//	    On a func/method decl: the function must be transitively free
//	    of heap allocation (checked by the allocfree pass). On an
//	    interface method: every in-module implementation is checked.
//	    On a named func type: every function bound to it is checked.
//	//cgplint:coldpath <reason>
//	    On a func/method decl: stops the allocfree traversal at this
//	    function. For amortized-growth helpers (ring doubling, table
//	    rehash) whose allocations are deliberate and measured. The
//	    reason is mandatory and checked.
//	//cgplint:detsink
//	    On a func/method decl: arguments must never carry wall-clock-
//	    derived values (checked by the walltaint pass). Marks the
//	    boundaries of the deterministic domain: obs Registry writes,
//	    config fingerprints.
//
// A directive is any line of the declaration's doc comment (or, for
// interface methods, its trailing comment). Like ignore reasons,
// coldpath reasons are free text ending at the line.

// Directive names understood on declarations.
const (
	DirHotpath  = "hotpath"
	DirColdpath = "coldpath"
	DirDetsink  = "detsink"
)

// Directive scans a comment group for //cgplint:<name> and returns
// whether it was found and any argument text after the name.
func Directive(cg *ast.CommentGroup, name string) (bool, string) {
	if cg == nil {
		return false, ""
	}
	want := "cgplint:" + name
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == want {
			return true, ""
		}
		if strings.HasPrefix(text, want+" ") {
			return true, strings.TrimSpace(text[len(want):])
		}
	}
	return false, ""
}

// FieldDirective checks both the doc comment above an interface method
// (or struct field) and the trailing comment on its line.
func FieldDirective(f *ast.Field, name string) (bool, string) {
	if ok, arg := Directive(f.Doc, name); ok {
		return ok, arg
	}
	return Directive(f.Comment, name)
}

// declDirectiveNames lists the declaration directives for validation;
// anything else after "cgplint:" (except ignore) is a typo worth
// flagging rather than silently carrying no meaning.
var declDirectiveNames = map[string]bool{
	DirHotpath:  true,
	DirColdpath: true,
	DirDetsink:  true,
}
