package detrand_test

import (
	"testing"

	"cgp/internal/analysis/analysistest"
	"cgp/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detrand.Analyzer,
		"cgp/fake/det", "example.org/outside")
}
