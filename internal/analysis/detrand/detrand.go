// Package detrand flags sources of run-to-run nondeterminism in the
// deterministic domain: wall-clock reads and the globally-seeded
// math/rand source.
//
// The simulator's guarantee is that a fixed seed plus an identical
// call sequence yields identical figures. One time.Now() feeding a
// stats line, or one rand.Intn() drawing from the process-global
// source (whose sequence depends on what every other package consumed
// before), silently breaks that. The sanctioned form is an explicit
// per-component generator: rand.New(rand.NewSource(seed)), which is
// what internal/trace.Tracer and every workload generator use.
//
// The pass also polices the wall-clock observability domain's border:
// calling another package's function whose result is a Wall-prefixed
// unit type (units.WallNanos) pulls a host-clock fact into the calling
// package, where nothing stops it from feeding a figure. Wall facts
// stay inside their producer (internal/obs), which serializes them to
// /metrics, the Chrome trace and the run log; consumers read those
// artifacts, not the live values. The single sanctioned clock read is
// internal/obs.nowWall, suppressed with a reason.
package detrand

import (
	"go/ast"
	"go/types"

	"cgp/internal/analysis"
)

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "flag wall-clock reads (time.Now/Since/Until), global math/rand use, and " +
		"cross-package imports of wall-domain quantities (units.Wall* results) " +
		"in deterministic packages; use rand.New(rand.NewSource(seed)) and read " +
		"wall facts from serialized artifacts instead",
	Run: run,
}

// bannedTime are wall-clock reads. time.Duration arithmetic, parsing
// and formatting stay legal — only reading the clock is flagged.
var bannedTime = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// allowedRand are the constructors of explicitly-seeded generators.
// Everything else exported by math/rand (Int, Intn, Float64, Perm,
// Shuffle, Seed, ...) draws from or mutates the global source.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	if !analysis.InDeterministicDomain(pass.Pkg.Path()) {
		return nil
	}
	pass.Preorder(func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			checkWallImport(pass, call)
			return true
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
		if !ok {
			return true
		}
		if pass.InTestFile(n.Pos()) {
			return true
		}
		// Only function references count: naming a type (rand.Zipf,
		// time.Duration) neither reads the clock nor draws randomness.
		if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
			return true
		}
		switch pkgName.Imported().Path() {
		case "time":
			if bannedTime[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock in deterministic package %s; timing output must be suppressed with a reason",
					sel.Sel.Name, pass.Pkg.Path())
			}
		case "math/rand", "math/rand/v2":
			if !allowedRand[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"rand.%s uses the global math/rand source in deterministic package %s; use rand.New(rand.NewSource(seed))",
					sel.Sel.Name, pass.Pkg.Path())
			}
		}
		return true
	})
	return nil
}

// checkWallImport flags a call to another package's function whose
// result is a wall-clock-domain unit. Inside the producing package the
// wall plumbing is free to pass Wall values around; the moment one
// crosses a package boundary it is loose in deterministic code, one
// assignment away from a figure. Same-package calls and conversions
// (units.WallNanos(n) injects, it does not read a clock) are exempt.
func checkWallImport(pass *analysis.Pass, call *ast.CallExpr) {
	if pass.InTestFile(call.Pos()) {
		return
	}
	// A conversion is a call whose Fun denotes a type, not a function.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	var fn *types.Func
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ = pass.TypesInfo.Uses[f.Sel].(*types.Func)
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[f].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() == pass.Pkg.Path() {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if w := analysis.WallUnitType(sig.Results().At(i).Type()); w != nil {
			pass.Reportf(call.Pos(),
				"%s.%s returns wall-clock %s into deterministic package %s; wall facts stay inside their producer — consume the serialized artifact instead",
				fn.Pkg().Name(), fn.Name(), w.Obj().Name(), pass.Pkg.Path())
			return
		}
	}
}
