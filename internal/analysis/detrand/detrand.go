// Package detrand flags sources of run-to-run nondeterminism in the
// deterministic domain: wall-clock reads and the globally-seeded
// math/rand source.
//
// The simulator's guarantee is that a fixed seed plus an identical
// call sequence yields identical figures. One time.Now() feeding a
// stats line, or one rand.Intn() drawing from the process-global
// source (whose sequence depends on what every other package consumed
// before), silently breaks that. The sanctioned form is an explicit
// per-component generator: rand.New(rand.NewSource(seed)), which is
// what internal/trace.Tracer and every workload generator use.
package detrand

import (
	"go/ast"
	"go/types"

	"cgp/internal/analysis"
)

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "flag wall-clock reads (time.Now/Since/Until) and global math/rand use " +
		"in deterministic packages; use rand.New(rand.NewSource(seed)) instead",
	Run: run,
}

// bannedTime are wall-clock reads. time.Duration arithmetic, parsing
// and formatting stay legal — only reading the clock is flagged.
var bannedTime = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// allowedRand are the constructors of explicitly-seeded generators.
// Everything else exported by math/rand (Int, Intn, Float64, Perm,
// Shuffle, Seed, ...) draws from or mutates the global source.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	if !analysis.InDeterministicDomain(pass.Pkg.Path()) {
		return nil
	}
	pass.Preorder(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
		if !ok {
			return true
		}
		if pass.InTestFile(n.Pos()) {
			return true
		}
		// Only function references count: naming a type (rand.Zipf,
		// time.Duration) neither reads the clock nor draws randomness.
		if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
			return true
		}
		switch pkgName.Imported().Path() {
		case "time":
			if bannedTime[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock in deterministic package %s; timing output must be suppressed with a reason",
					sel.Sel.Name, pass.Pkg.Path())
			}
		case "math/rand", "math/rand/v2":
			if !allowedRand[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"rand.%s uses the global math/rand source in deterministic package %s; use rand.New(rand.NewSource(seed))",
					sel.Sel.Name, pass.Pkg.Path())
			}
		}
		return true
	})
	return nil
}
