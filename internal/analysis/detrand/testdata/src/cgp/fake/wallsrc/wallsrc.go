// Package wallsrc stands in for the wall-clock observability domain
// (cgp/internal/obs): its exports hand out Wall-typed quantities.
// Producing them here is fine — detrand flags the *consumers* that
// pull the values across a package boundary into deterministic code.
package wallsrc

import "units"

// Timers mimics a wall-domain registry.
type Timers struct{}

// Now mimics the domain's clock read.
func Now() units.WallNanos { return units.WallNanos(1) }

// Total mimics a timer accumulator readout.
func (Timers) Total(name string) units.WallNanos { return units.WallNanos(2) }

// Count returns a plain event counter: not a wall quantity.
func Count(name string) int64 { return 3 }
