package det

import "time"

// Test files may read the clock: they never feed published figures.
func helperNow() time.Time {
	return time.Now()
}
