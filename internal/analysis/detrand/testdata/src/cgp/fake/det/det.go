// Package det exercises detrand inside the deterministic domain
// (import path cgp/fake/det).
package det

import (
	"math/rand"
	"time"

	"cgp/fake/wallsrc"
	"units"
)

func clock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time\.Until reads the wall clock`
}

func globalDraw() int {
	return rand.Intn(10) // want `rand\.Intn uses the global math/rand source`
}

func reseed(seed int64) {
	rand.Seed(seed) // want `rand\.Seed uses the global math/rand source`
}

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // explicitly seeded: allowed
	return rng.Intn(10)
}

func zipf(seed int64) *rand.Zipf {
	r := rand.New(rand.NewSource(seed))
	return rand.NewZipf(r, 1.1, 1, 100) // constructor: allowed
}

func durations(d time.Duration) time.Duration {
	return d * 2 // duration arithmetic is not a clock read
}

func parse(s string) (time.Duration, error) {
	return time.ParseDuration(s) // parsing is not a clock read
}

func suppressed() time.Time {
	//cgplint:ignore detrand progress display only, never reaches a figure
	return time.Now()
}

func wallLeak() units.WallNanos {
	return wallsrc.Now() // want `wallsrc\.Now returns wall-clock WallNanos into deterministic package cgp/fake/det`
}

func wallLeakMethod(t wallsrc.Timers) units.WallNanos {
	return t.Total("replay") // want `wallsrc\.Total returns wall-clock WallNanos`
}

func wallCount() int64 {
	return wallsrc.Count("retries") // plain counter result: allowed
}

func wallInject(n int64) units.WallNanos {
	return units.WallNanos(n) // conversion, not a clock read: allowed
}

func wallSameFile(w units.WallNanos) units.WallNanos {
	return double(w) // same-package plumbing: allowed
}

func double(w units.WallNanos) units.WallNanos { return w * 2 }

func wallSuppressed() units.WallNanos {
	//cgplint:ignore detrand serialization boundary for this fake
	return wallsrc.Now()
}
