// Package outside is not under the cgp module path, so the
// determinism analyzers leave it alone.
package outside

import (
	"math/rand"
	"time"
)

func wallclock() (time.Time, int) {
	return time.Now(), rand.Int() // out of domain: not flagged
}
