// Package units stands in for cgp/internal/units: detrand recognizes
// wall-domain quantities as Wall-prefixed integer types defined in a
// package named "units".
package units

// WallNanos is a wall-clock-domain duration.
type WallNanos int64
