// Package analysis is a minimal, self-contained reimplementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects
// one type-checked package at a time and reports position-tagged
// diagnostics.
//
// The repository cannot vendor x/tools (builds are offline), so this
// package provides the same shape — Analyzer, Pass, Diagnostic — with
// exactly the surface the cgplint suite needs. The driver
// (internal/analysis/driver) speaks the `go vet -vettool` protocol, so
// analyzers written against this package run under `go vet` like any
// unitchecker-based tool.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the short identifier used on the command line and in
	// `//cgplint:ignore <name> <reason>` suppression comments.
	Name string
	// Doc is a one-paragraph description of what the check enforces.
	Doc string
	// Run applies the check to one package, reporting findings through
	// pass.Report. A non-nil error aborts the whole cgplint run (it
	// means the analyzer itself failed, not that the code is bad).
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// facts holds dependency facts and receives this package's exports
	// (may be nil for fact-free analyzers).
	facts *Facts
	// ignores is the unit's shared suppression set (may be nil).
	ignores *Ignores

	// report receives each diagnostic; the driver installs it.
	report func(Diagnostic)
}

// ExportFact records a fact under this analyzer and package for
// dependent packages to read.
func (p *Pass) ExportFact(key, value string) {
	if p.facts != nil {
		p.facts.set(p.Pkg.Path(), p.Analyzer.Name, key, value)
	}
}

// Fact looks up a fact exported by pkgPath's run of this analyzer.
// When pkgPath is this package, it sees facts exported so far.
func (p *Pass) Fact(pkgPath, key string) (string, bool) {
	if p.facts == nil {
		return "", false
	}
	return p.facts.get(pkgPath, p.Analyzer.Name, key)
}

// PrefixFacts returns this analyzer's facts whose key starts with
// prefix, across every package, in deterministic order.
func (p *Pass) PrefixFacts(prefix string) []FactRef {
	if p.facts == nil {
		return nil
	}
	return p.facts.withPrefix(p.Analyzer.Name, prefix)
}

// Excused reports whether an ignore directive for this analyzer covers
// pos, marking it used. Summary-building passes call this to keep
// excused hazards out of exported facts (the excusal is the local
// package's documented exception, so dependents should not see the
// hazard either).
func (p *Pass) Excused(pos token.Pos) bool {
	return p.ignores.Covers(p.Analyzer.Name, pos)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Unit bundles one type-checked compilation unit with the cross-
// package fact store and suppression set every analyzer shares.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Facts     *Facts
	Ignores   *Ignores
}

// NewUnit assembles a unit with a fresh fact store and the ignore
// directives parsed from the files.
func NewUnit(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Unit {
	return &Unit{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Facts:     NewFacts(),
		Ignores:   ParseIgnores(fset, files),
	}
}

// NewPass assembles a pass whose diagnostics are appended to out.
func NewPass(a *Analyzer, u *Unit, out *[]Diagnostic) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      u.Fset,
		Files:     u.Files,
		Pkg:       u.Pkg,
		TypesInfo: u.TypesInfo,
		facts:     u.Facts,
		ignores:   u.Ignores,
		report:    func(d Diagnostic) { *out = append(*out, d) },
	}
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Preorder walks every file of the pass in depth-first preorder,
// invoking fn for each node. It is the inspector all four cgplint
// analyzers are built on; filtering by node type happens in fn.
func (p *Pass) Preorder(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// TypeOf returns the static type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// InTestFile reports whether pos lies in a _test.go file. Checks that
// defend figure-generation determinism do not apply to test-only code.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}

// RunAnalyzer executes a over one loaded unit and returns its
// diagnostics with suppression comments (//cgplint:ignore) applied.
// Malformed suppression comments are NOT reported here — the driver
// reports them once per package, not once per analyzer.
func RunAnalyzer(a *Analyzer, u *Unit) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := NewPass(a, u, &diags)
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return u.Ignores.Filter(a.Name, diags), nil
}
