// Package analysis is a minimal, self-contained reimplementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects
// one type-checked package at a time and reports position-tagged
// diagnostics.
//
// The repository cannot vendor x/tools (builds are offline), so this
// package provides the same shape — Analyzer, Pass, Diagnostic — with
// exactly the surface the cgplint suite needs. The driver
// (internal/analysis/driver) speaks the `go vet -vettool` protocol, so
// analyzers written against this package run under `go vet` like any
// unitchecker-based tool.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the short identifier used on the command line and in
	// `//cgplint:ignore <name> <reason>` suppression comments.
	Name string
	// Doc is a one-paragraph description of what the check enforces.
	Doc string
	// Run applies the check to one package, reporting findings through
	// pass.Report. A non-nil error aborts the whole cgplint run (it
	// means the analyzer itself failed, not that the code is bad).
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives each diagnostic; the driver installs it.
	report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// NewPass assembles a pass whose diagnostics are appended to out.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, out *[]Diagnostic) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report:    func(d Diagnostic) { *out = append(*out, d) },
	}
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Preorder walks every file of the pass in depth-first preorder,
// invoking fn for each node. It is the inspector all four cgplint
// analyzers are built on; filtering by node type happens in fn.
func (p *Pass) Preorder(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// TypeOf returns the static type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// InTestFile reports whether pos lies in a _test.go file. Checks that
// defend figure-generation determinism do not apply to test-only code.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}

// RunAnalyzer executes a over one loaded package and returns its
// diagnostics with suppression comments (//cgplint:ignore) applied.
// Malformed suppression comments are NOT reported here — the driver
// reports them once per package, not once per analyzer.
func RunAnalyzer(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := NewPass(a, fset, files, pkg, info, &diags)
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return FilterSuppressed(a.Name, fset, files, diags), nil
}
