package analysis

import "strings"

// Deterministic domain.
//
// PR 1 made byte-identical reproduction a hard guarantee: parallel
// RunAll equals sequential runs, replayed traces equal direct
// execution, and regenerating any figure yields identical bytes. Every
// package of this module participates in that guarantee — workload
// synthesis, trace capture, the simulator, and the figure/report layer
// all feed the published numbers — so the whole module is the
// "deterministic domain" the order- and clock-sensitive analyzers
// (detrand, maporder) police. Code that genuinely needs wall-clock
// time (progress lines, run-duration footers) opts out per line with
// //cgplint:ignore and a written reason.

// ModulePath is the import-path prefix of the deterministic domain.
const ModulePath = "cgp"

// nonDeterministicPrefixes lists sub-trees exempt from the
// determinism analyzers. Currently empty on purpose: examples/ and
// cmd/ produce user-visible experiment output too, and their few
// legitimate wall-clock uses carry per-line suppressions instead.
var nonDeterministicPrefixes = []string{}

// InDeterministicDomain reports whether the package at pkgPath must
// be free of nondeterminism sources.
func InDeterministicDomain(pkgPath string) bool {
	if pkgPath != ModulePath && !strings.HasPrefix(pkgPath, ModulePath+"/") {
		return false
	}
	for _, p := range nonDeterministicPrefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return false
		}
	}
	return true
}
