// Package maporder flags `range` loops over maps whose iteration
// order can leak into observable output.
//
// Go randomizes map iteration order per run. That is harmless when the
// loop body is commutative (building another map, integer
// accumulation) and fatal when it feeds anything ordered: a slice that
// is never sorted, a writer, a float accumulator (float addition is
// not associative), or a last-writer-wins variable. The figure,
// report and runner layers publish byte-identical artifacts, so an
// order leak there breaks the reproduction silently — the numbers
// stay plausible while the bytes stop being stable.
//
// Allowed patterns:
//
//   - append keys/values to a slice, then pass that slice to sort or
//     slices later in the same function (the canonical sorted-keys
//     idiom);
//   - writes into another map, delete(...), and commutative integer
//     accumulation (+=, -=, |=, &=, ^=, *=, ++, --);
//   - assignments whose right-hand side does not depend on the
//     iteration (setting a flag).
//
// Everything else is reported; genuinely order-independent bodies
// (an arg-max with a total tiebreak, say) document themselves with
// //cgplint:ignore maporder <reason>.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"cgp/internal/analysis"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose order reaches slices, writers, float accumulators " +
		"or outer variables without an intervening sort",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InDeterministicDomain(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rng, ok := n.(*ast.RangeStmt)
			if !ok || pass.InTestFile(rng.Pos()) {
				return true
			}
			if t := pass.TypeOf(rng.X); t == nil || !isMap(t) {
				return true
			}
			// `for range m` binds nothing: every iteration is identical,
			// so order cannot matter.
			if rng.Key == nil && rng.Value == nil {
				return true
			}
			checkMapRange(pass, rng, append([]ast.Node(nil), stack...))
			return true
		})
	}
	return nil
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range body. stack is the node path
// from the file down to (and including) rng.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sinkName := outputSink(pass, n); sinkName != "" {
				pass.Reportf(n.Pos(),
					"map iteration order reaches %s; iterate a sorted copy of the keys", sinkName)
			}
		case *ast.AssignStmt:
			checkAssign(pass, rng, stack, n)
		}
		return true
	})
}

// outputSink reports whether call writes to an ordered output: fmt
// printing, Write*/Encode methods (strings.Builder, bytes.Buffer,
// io.Writer, hash.Hash, encoders), or the print builtins.
func outputSink(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "print" || fun.Name == "println" {
			if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
				return "the " + fun.Name + " builtin"
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				name := fun.Sel.Name
				if hasPrefix(name, "Print") || hasPrefix(name, "Fprint") {
					return "fmt." + name
				}
				return ""
			}
		}
		name := fun.Sel.Name
		if hasPrefix(name, "Write") || name == "Encode" {
			// Only method calls count: a selector on a package name was
			// handled (or cleared) above.
			if _, isMethod := pass.TypesInfo.Selections[fun]; isMethod {
				return "method " + name
			}
		}
	}
	return ""
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// checkAssign polices assignments inside the loop body that target
// variables declared outside the loop.
func checkAssign(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		obj := outerTarget(pass, rng, lhs)
		if obj == nil {
			continue
		}
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}

		// x = append(x, ...): allowed iff a sort call on x follows the
		// loop somewhere in the enclosing function.
		if call, ok := unparen(rhs).(*ast.CallExpr); ok && isAppend(pass, call) {
			if !sortedAfter(pass, rng, stack, obj) {
				pass.Reportf(as.Pos(),
					"%s is appended to in map-iteration order and never sorted afterwards; sort it or collect sorted keys first", obj.Name())
			}
			continue
		}

		switch as.Tok {
		case token.ASSIGN:
			if dependsOnLoop(pass, rng, rhs) {
				pass.Reportf(as.Pos(),
					"assignment to %s selects a value in map-iteration order (last writer wins); iterate sorted keys or use a total tiebreak with a cgplint:ignore reason", obj.Name())
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
			// Commutative on integers, order-sensitive on floats and
			// strings (string += concatenates in iteration order).
			if t := pass.TypeOf(lhs); t != nil {
				info := basicInfo(t)
				if info&types.IsFloat != 0 || info&types.IsComplex != 0 {
					pass.Reportf(as.Pos(),
						"float accumulation into %s in map-iteration order is not associative; accumulate over sorted keys", obj.Name())
				} else if info&types.IsString != 0 {
					pass.Reportf(as.Pos(),
						"string concatenation into %s happens in map-iteration order; build from sorted keys", obj.Name())
				}
			}
		default:
			// /=, %=, <<=, >>=, &^=: order-dependent for integers too.
			if dependsOnLoop(pass, rng, rhs) {
				pass.Reportf(as.Pos(),
					"%s is updated with a non-commutative operation in map-iteration order", obj.Name())
			}
		}
	}
}

// outerTarget returns the variable object assigned through lhs when it
// was declared outside the range statement; nil otherwise. Index
// expressions (m[k] = v) are treated as commutative map/slice writes
// and return nil for maps.
func outerTarget(pass *analysis.Pass, rng *ast.RangeStmt, lhs ast.Expr) *types.Var {
	switch lhs := unparen(lhs).(type) {
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[lhs].(*types.Var)
		if !ok {
			return nil
		}
		if v.Pos() >= rng.Pos() && v.Pos() <= rng.End() {
			return nil // loop-local
		}
		return v
	case *ast.IndexExpr:
		// Writes into another map are commutative when keys are unique
		// per iteration; slice/array indexed writes with a loop-derived
		// index likewise land at key-determined positions.
		return nil
	}
	return nil
}

// dependsOnLoop reports whether expr references any identifier
// declared inside the range statement (the key/value variables or any
// iteration-scoped local).
func dependsOnLoop(pass *analysis.Pass, rng *ast.RangeStmt, expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
			found = true
		}
		return !found
	})
	return found
}

func isAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether, after the range loop, some enclosing
// block contains a call into package sort or slices that mentions obj.
func sortedAfter(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node, obj *types.Var) bool {
	for _, n := range stack {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			continue
		}
		for _, stmt := range block.List {
			if stmt.Pos() < rng.End() {
				continue
			}
			if stmtSorts(pass, stmt, obj) {
				return true
			}
		}
	}
	return false
}

// stmtSorts reports whether stmt (or anything inside it) calls a
// sort/slices function with obj among its arguments.
func stmtSorts(pass *analysis.Pass, stmt ast.Stmt, obj *types.Var) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					mentions = true
				}
				return !mentions
			})
			if mentions {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func basicInfo(t types.Type) types.BasicInfo {
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Info()
	}
	return 0
}
