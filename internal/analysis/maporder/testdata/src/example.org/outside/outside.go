// Package outside is not under the cgp module path; maporder leaves
// it alone.
package outside

import "fmt"

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // out of domain: not flagged
	}
}
