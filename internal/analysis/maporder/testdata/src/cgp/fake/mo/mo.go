// Package mo exercises maporder inside the deterministic domain.
package mo

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // sorted below: allowed
	}
	sort.Strings(keys)
	return keys
}

func sortedVals(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v) // sorted below via slices.Sort: allowed
	}
	slices.Sort(vals)
	return vals
}

func unsortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // want `keys is appended to in map-iteration order and never sorted`
	}
	return keys
}

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `map iteration order reaches fmt\.Println`
	}
}

func buildString(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `map iteration order reaches method WriteString`
	}
	return b.String()
}

func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `float accumulation into total in map-iteration order is not associative`
	}
	return total
}

func concat(m map[string]string) string {
	s := ""
	for _, v := range m {
		s += v // want `string concatenation into s happens in map-iteration order`
	}
	return s
}

func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer accumulation commutes: allowed
	}
	return n
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k // map writes commute: allowed
	}
	return out
}

func lastWriter(m map[string]int) string {
	var last string
	for k := range m {
		last = k // want `last writer wins`
	}
	return last
}

func setFlag(m map[string]int) bool {
	found := false
	for _, v := range m {
		if v > 0 {
			found = true // rhs independent of iteration: allowed
		}
	}
	return found
}

func size(m map[string]int) int {
	n := 0
	for range m { // binds nothing: allowed
		n++
	}
	return n
}

func argmax(m map[string]int) string {
	best, bestN := "", -1
	for k, n := range m {
		if n > bestN || (n == bestN && k < best) {
			//cgplint:ignore maporder result is order-independent: count then key is a total order
			best, bestN = k, n
		}
	}
	return best
}
