package maporder_test

import (
	"testing"

	"cgp/internal/analysis/analysistest"
	"cgp/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer,
		"cgp/fake/mo", "example.org/outside")
}
