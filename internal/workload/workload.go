package workload

import (
	"fmt"

	"cgp/internal/db"
	"cgp/internal/program"
	"cgp/internal/trace"
)

// Workload is something the simulator can execute: it owns a function
// registry (the "binary") and can replay its execution against any
// image of that registry, emitting trace events into a consumer.
type Workload struct {
	// Name identifies the workload ("wisc-large-2", "gcc", ...).
	Name string
	// Family is "db" for the database workloads or "cpu2000" for the
	// SPEC stand-ins; the experiment harness picks profile sources by
	// family.
	Family string
	// NewRegistry builds the function registry. Deterministic: every
	// call returns an identical registry, so profiles collected on one
	// instance apply to images laid out for another.
	NewRegistry func() *program.Registry
	// Run executes the workload against img, emitting events into out.
	Run func(img *program.Image, out trace.Consumer) error
}

// DBOptions scales the database workloads.
type DBOptions struct {
	// WiscN is the big-relation cardinality (the paper's wisc-large
	// databases use 10,000; wisc-prof uses 1,000).
	WiscN int
	// TPCH sizes the TPC-H tables for wisc+tpch.
	TPCH TPCHScale
	// Quantum is the scheduler slice in root-level tuples.
	Quantum int
	// Seed drives data generation and trace synthesis.
	Seed int64
	// BufferFrames sizes the buffer pool.
	BufferFrames int
}

// withDefaults fills zero fields.
func (o DBOptions) withDefaults() DBOptions {
	if o.WiscN == 0 {
		o.WiscN = 10000
	}
	if o.TPCH == (TPCHScale{}) {
		o.TPCH = DefaultTPCHScale()
	}
	if o.Quantum == 0 {
		o.Quantum = 7
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.BufferFrames == 0 {
		o.BufferFrames = 8192
	}
	return o
}

// dbWorkload assembles a Workload that builds a fresh engine, loads
// data untraced, then runs the query set concurrently under tracing.
func dbWorkload(name string, opts DBOptions, withTPCH bool, wiscQueries []int) *Workload {
	opts = opts.withDefaults()
	return &Workload{
		Name:   name,
		Family: "db",
		NewRegistry: func() *program.Registry {
			reg, _ := db.BuildRegistry()
			return reg
		},
		Run: func(img *program.Image, out trace.Consumer) error {
			e := db.NewEngine(db.Options{BufferFrames: opts.BufferFrames})
			if err := (WisconsinDB{N: opts.WiscN}).Load(e, opts.Seed); err != nil {
				return fmt.Errorf("workload %s: load wisconsin: %w", name, err)
			}
			queries := WisconsinQueries(opts.WiscN, opts.Seed, wiscQueries)
			if withTPCH {
				if err := LoadTPCH(e, opts.TPCH, opts.Seed+100); err != nil {
					return fmt.Errorf("workload %s: load tpch: %w", name, err)
				}
				queries = append(queries, TPCHQueries()...)
			}
			_, err := e.RunConcurrent(queries, img, out, opts.Quantum, opts.Seed)
			return err
		},
	}
}

// WiscProf is the profiling workload: queries 1, 5 and 9 on a small
// (paper: 2,100-tuple) database.
func WiscProf(opts DBOptions) *Workload {
	opts = opts.withDefaults()
	opts.WiscN = 1000
	return dbWorkload("wisc-prof", opts, false, []int{1, 5, 9})
}

// WiscLarge1 runs the wisc-prof queries on the full-size database.
func WiscLarge1(opts DBOptions) *Workload {
	return dbWorkload("wisc-large-1", opts, false, []int{1, 5, 9})
}

// WiscLarge2 runs all eight Wisconsin queries on the full database.
func WiscLarge2(opts DBOptions) *Workload {
	return dbWorkload("wisc-large-2", opts, false, []int{1, 2, 3, 4, 5, 6, 7, 9})
}

// WiscTPCH runs the eight Wisconsin queries and the five TPC-H queries
// concurrently (the paper's largest workload).
func WiscTPCH(opts DBOptions) *Workload {
	return dbWorkload("wisc+tpch", opts, true, []int{1, 2, 3, 4, 5, 6, 7, 9})
}

// DBWorkloads returns the paper's four database workloads in figure
// order.
func DBWorkloads(opts DBOptions) []*Workload {
	return []*Workload{WiscProf(opts), WiscLarge1(opts), WiscLarge2(opts), WiscTPCH(opts)}
}
