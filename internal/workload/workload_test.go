package workload

import (
	"testing"

	"cgp/internal/db"
	"cgp/internal/db/exec"
	"cgp/internal/program"
	"cgp/internal/trace"
)

func smallOpts() DBOptions {
	return DBOptions{WiscN: 400, Quantum: 5, Seed: 11, BufferFrames: 2048,
		TPCH: TPCHScale{Suppliers: 10, Customers: 40, Parts: 60, Orders: 120, MaxLines: 4}}
}

func TestWisconsinGeneratorInvariants(t *testing.T) {
	e := db.NewEngine(db.Options{BufferFrames: 1024})
	tbl, err := LoadWisconsin(e, "w", 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Txns.Begin()
	ctx := e.NewContext(tx)
	rows, err := exec.Collect(exec.NewSeqScan(ctx, tbl.Heap, tbl.Schema))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 500 {
		t.Fatalf("rows = %d", len(rows))
	}
	u1 := tbl.Schema.ColIndex("unique1")
	u2 := tbl.Schema.ColIndex("unique2")
	one := tbl.Schema.ColIndex("onePercent")
	seen := make(map[int64]bool, 500)
	for i, r := range rows {
		v1 := r.Int(u1)
		if v1 < 0 || v1 >= 500 || seen[v1] {
			t.Fatalf("unique1 not a permutation: %d", v1)
		}
		seen[v1] = true
		if r.Int(u2) != int64(i) {
			t.Fatalf("unique2 not sequential at %d", i)
		}
		if r.Int(one) != v1%100 {
			t.Fatalf("onePercent wrong for unique1=%d", v1)
		}
	}
	// Indexes exist with the right clustering.
	if tbl.Indexes["unique2"] == nil || tbl.Indexes["unique1"] == nil {
		t.Fatal("missing indexes")
	}
	if tbl.Clustered != "unique2" {
		t.Errorf("clustered = %q", tbl.Clustered)
	}
}

// TestWisconsinSelectivities verifies each query returns the row count
// its selectivity prescribes.
func TestWisconsinSelectivities(t *testing.T) {
	n := 400
	e := db.NewEngine(db.Options{BufferFrames: 2048})
	if err := (WisconsinDB{N: n}).Load(e, 7); err != nil {
		t.Fatal(err)
	}
	queries := WisconsinQueries(n, 7, []int{1, 2, 3, 4, 5, 6, 7, 9})
	res, err := e.RunConcurrent(queries, nil, trace.Discard, 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"wisc_q1": int64(n / 100), // 1% selection
		"wisc_q2": int64(n / 10),  // 10% selection
		"wisc_q3": int64(n / 100),
		"wisc_q4": int64(n / 10),
		"wisc_q5": int64(n / 100),
		"wisc_q6": int64(n / 10),
		"wisc_q7": 1,             // single tuple
		"wisc_q9": int64(n / 10), // 10% of big2 joined on unique key
	}
	for _, r := range res {
		if w, ok := want[r.Name]; ok && r.Rows != w {
			t.Errorf("%s rows = %d, want %d", r.Name, r.Rows, w)
		}
	}
}

func TestTPCHLoads(t *testing.T) {
	e := db.NewEngine(db.Options{BufferFrames: 2048})
	sc := TPCHScale{Suppliers: 10, Customers: 40, Parts: 60, Orders: 120, MaxLines: 4}
	if err := LoadTPCH(e, sc, 5); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		table string
		rows  int64
	}{
		{"region", 5}, {"nation", 25}, {"supplier", 10},
		{"part", 60}, {"partsupp", 240}, {"customer", 40}, {"orders", 120},
	} {
		tbl, err := e.Table(tc.table)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Heap.NumRecords() != tc.rows {
			t.Errorf("%s rows = %d, want %d", tc.table, tbl.Heap.NumRecords(), tc.rows)
		}
	}
	li := e.MustTable("lineitem")
	if li.Heap.NumRecords() < 120 {
		t.Errorf("lineitem rows = %d", li.Heap.NumRecords())
	}
}

// TestTPCHQ6MatchesDirectComputation cross-checks the Q6 plan against a
// straight scan.
func TestTPCHQ6MatchesDirectComputation(t *testing.T) {
	e := db.NewEngine(db.Options{BufferFrames: 2048})
	sc := TPCHScale{Suppliers: 10, Customers: 40, Parts: 60, Orders: 200, MaxLines: 5}
	if err := LoadTPCH(e, sc, 5); err != nil {
		t.Fatal(err)
	}
	// Direct computation.
	tx := e.Txns.Begin()
	ctx := e.NewContext(tx)
	li := e.MustTable("lineitem")
	var want int64
	rows, err := exec.Collect(exec.NewSeqScan(ctx, li.Heap, li.Schema))
	if err != nil {
		t.Fatal(err)
	}
	sd := li.Schema.ColIndex("l_shipdate")
	dc := li.Schema.ColIndex("l_discount")
	qt := li.Schema.ColIndex("l_quantity")
	ep := li.Schema.ColIndex("l_extendedprice")
	for _, r := range rows {
		if r.Int(sd) >= 365 && r.Int(sd) <= 729 &&
			r.Int(dc) >= 500 && r.Int(dc) <= 700 && r.Int(qt) < 24 {
			want += r.Int(ep) * r.Int(dc) / 10000
		}
	}
	e.Txns.Commit(tx)

	// Through the Q6 plan.
	q := TPCHQ6()
	tx2 := e.Txns.Begin()
	ctx2 := e.NewContext(tx2)
	it, _, err := q.Build(e, ctx2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("Q6 returned %d rows", len(out))
	}
	if got := out[0].Int(out[0].Schema.ColIndex("revenue")); got != want {
		t.Errorf("Q6 revenue = %d, want %d", got, want)
	}
}

func TestAllTPCHQueriesRun(t *testing.T) {
	e := db.NewEngine(db.Options{BufferFrames: 4096})
	sc := TPCHScale{Suppliers: 12, Customers: 50, Parts: 80, Orders: 160, MaxLines: 4}
	if err := LoadTPCH(e, sc, 9); err != nil {
		t.Fatal(err)
	}
	res, err := e.RunConcurrent(TPCHQueries(), nil, trace.Discard, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Q1 groups by (returnflag, linestatus): at most 6 groups, at least 1.
	if res[0].Rows < 1 || res[0].Rows > 6 {
		t.Errorf("Q1 groups = %d", res[0].Rows)
	}
	// Q6 always returns exactly one row.
	for _, r := range res {
		if r.Name == "tpch_q6" && r.Rows != 1 {
			t.Errorf("Q6 rows = %d", r.Rows)
		}
	}
}

func TestDBWorkloadEndToEnd(t *testing.T) {
	w := WiscProf(smallOpts())
	reg := w.NewRegistry()
	img := program.LayoutO5(reg)
	var st trace.Stats
	if err := w.Run(img, &st); err != nil {
		t.Fatal(err)
	}
	if st.Instructions == 0 || st.Calls == 0 || st.Switches == 0 {
		t.Fatalf("stats = %+v", st)
	}
	ipc := st.InstructionsPerCall()
	if ipc < 25 || ipc > 70 {
		t.Errorf("instructions/call = %.1f, want near the paper's 43", ipc)
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	opts := smallOpts()
	run := func() trace.Stats {
		w := WiscProf(opts)
		img := program.LayoutO5(w.NewRegistry())
		var st trace.Stats
		if err := w.Run(img, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs differ:\n%+v\n%+v", a, b)
	}
}

func TestCPU2000Workloads(t *testing.T) {
	for _, spec := range CPU2000Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			w := NewCPU2000(spec, 3)
			if w.Family != "cpu2000" {
				t.Errorf("family = %q", w.Family)
			}
			img := program.LayoutO5(w.NewRegistry())
			var st trace.Stats
			if err := w.Run(img, &st); err != nil {
				t.Fatal(err)
			}
			if st.Instructions < 100000 {
				t.Errorf("only %d instructions", st.Instructions)
			}
			if st.Calls != st.Returns {
				t.Errorf("unbalanced %d/%d", st.Calls, st.Returns)
			}
		})
	}
}

func TestCPU2000ByName(t *testing.T) {
	if _, err := CPU2000ByName("gcc"); err != nil {
		t.Error(err)
	}
	if _, err := CPU2000ByName("nope"); err == nil {
		t.Error("unknown benchmark lookup succeeded")
	}
}

func TestCPU2000RegistryMismatchDetected(t *testing.T) {
	gcc := NewCPU2000(mustSpec(t, "gcc"), 3)
	gzip := NewCPU2000(mustSpec(t, "gzip"), 3)
	wrongImg := program.LayoutO5(gzip.NewRegistry())
	if err := gcc.Run(wrongImg, trace.Discard); err == nil {
		t.Error("running gcc against gzip's image succeeded")
	}
}

func mustSpec(t *testing.T, name string) CPU2000Spec {
	t.Helper()
	s, err := CPU2000ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDBWorkloadsList(t *testing.T) {
	ws := DBWorkloads(smallOpts())
	names := []string{"wisc-prof", "wisc-large-1", "wisc-large-2", "wisc+tpch"}
	if len(ws) != 4 {
		t.Fatalf("%d workloads", len(ws))
	}
	for i, w := range ws {
		if w.Name != names[i] {
			t.Errorf("workload %d = %q, want %q", i, w.Name, names[i])
		}
		if w.Family != "db" {
			t.Errorf("%s family = %q", w.Name, w.Family)
		}
	}
}
