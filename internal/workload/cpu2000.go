package workload

import (
	"fmt"
	"math/rand"

	"cgp/internal/isa"
	"cgp/internal/program"
	"cgp/internal/trace"
)

// CPU2000Spec parameterizes one synthetic SPEC CPU2000 stand-in. The
// knobs were chosen so each program reproduces the published I-cache
// character the paper relies on for Figure 10: tiny loopy footprints
// for gzip/parser/gap/bzip2/twolf (≈0% I-miss), a large multi-phase
// footprint for gcc (≈0.5% I-miss) and a mid-size one for crafty
// (≈0.3% I-miss).
type CPU2000Spec struct {
	Name string
	// Funcs is the total number of functions in the program.
	Funcs int
	// MinSize/MaxSize bound function body sizes in instructions.
	MinSize, MaxSize int
	// Phases is how many distinct working sets execution moves through.
	Phases int
	// PhaseFuncs is the active-function window per phase.
	PhaseFuncs int
	// CallsPerPhase is the number of top-level call groups per phase.
	CallsPerPhase int
	// LoopWork is straight-loop instructions between call groups
	// (loops dominate SPEC integer codes).
	LoopWork int
	// CallWork is per-callee local work.
	CallWork int
	// NestProb is the probability a callee makes a further nested call.
	NestProb float64
	// DataStride spaces the synthetic data stream (streaming codes
	// touch new lines; pointer-chasing codes revisit).
	DataStride int
}

// CPU2000Specs returns the seven benchmarks of Figure 10 in paper
// order: gzip, gcc, crafty, parser, gap, bzip2, twolf.
func CPU2000Specs() []CPU2000Spec {
	return []CPU2000Spec{
		{Name: "gzip", Funcs: 24, MinSize: 60, MaxSize: 300, Phases: 2, PhaseFuncs: 6,
			CallsPerPhase: 12000, LoopWork: 300, CallWork: 60, NestProb: 0.2, DataStride: 64},
		{Name: "gcc", Funcs: 420, MinSize: 120, MaxSize: 700, Phases: 24, PhaseFuncs: 14,
			CallsPerPhase: 900, LoopWork: 680, CallWork: 55, NestProb: 0.5, DataStride: 96},
		{Name: "crafty", Funcs: 110, MinSize: 120, MaxSize: 600, Phases: 10, PhaseFuncs: 10,
			CallsPerPhase: 2200, LoopWork: 560, CallWork: 60, NestProb: 0.4, DataStride: 48},
		{Name: "parser", Funcs: 64, MinSize: 60, MaxSize: 320, Phases: 4, PhaseFuncs: 12,
			CallsPerPhase: 8000, LoopWork: 220, CallWork: 50, NestProb: 0.3, DataStride: 40},
		{Name: "gap", Funcs: 80, MinSize: 80, MaxSize: 360, Phases: 4, PhaseFuncs: 14,
			CallsPerPhase: 7000, LoopWork: 200, CallWork: 55, NestProb: 0.3, DataStride: 56},
		{Name: "bzip2", Funcs: 20, MinSize: 80, MaxSize: 400, Phases: 2, PhaseFuncs: 5,
			CallsPerPhase: 12000, LoopWork: 340, CallWork: 70, NestProb: 0.15, DataStride: 64},
		{Name: "twolf", Funcs: 56, MinSize: 70, MaxSize: 340, Phases: 5, PhaseFuncs: 12,
			CallsPerPhase: 7000, LoopWork: 180, CallWork: 55, NestProb: 0.35, DataStride: 44},
	}
}

// CPU2000Spec lookup by name.
func CPU2000ByName(name string) (CPU2000Spec, error) {
	for _, s := range CPU2000Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return CPU2000Spec{}, fmt.Errorf("workload: no CPU2000 benchmark %q", name)
}

// NewCPU2000 builds the workload for one spec.
func NewCPU2000(spec CPU2000Spec, seed int64) *Workload {
	if seed == 0 {
		seed = 1
	}
	return &Workload{
		Name:   spec.Name,
		Family: "cpu2000",
		NewRegistry: func() *program.Registry {
			reg := program.NewRegistry()
			rng := rand.New(rand.NewSource(seed))
			reg.Register(spec.Name+"_main", 400)
			for i := 0; i < spec.Funcs; i++ {
				size := spec.MinSize + rng.Intn(spec.MaxSize-spec.MinSize+1)
				fn := reg.Register(fmt.Sprintf("%s_fn_%03d", spec.Name, i), size)
				// SPEC codes are loopier than DB code: fewer taken
				// branches that leave the straight path.
				reg.SetBranchProfile(fn, 0.22, 16)
			}
			return reg
		},
		Run: func(img *program.Image, out trace.Consumer) error {
			return runCPU2000(spec, seed, img, out)
		},
	}
}

// CPU2000Workloads builds all seven.
func CPU2000Workloads(seed int64) []*Workload {
	specs := CPU2000Specs()
	out := make([]*Workload, len(specs))
	for i, s := range specs {
		out[i] = NewCPU2000(s, seed)
	}
	return out
}

func runCPU2000(spec CPU2000Spec, seed int64, img *program.Image, out trace.Consumer) error {
	reg := img.Registry()
	mainFn, ok := reg.Lookup(spec.Name + "_main")
	if !ok {
		return fmt.Errorf("workload %s: image built from wrong registry", spec.Name)
	}
	fns := make([]program.FuncID, spec.Funcs)
	for i := range fns {
		id, ok := reg.Lookup(fmt.Sprintf("%s_fn_%03d", spec.Name, i))
		if !ok {
			return fmt.Errorf("workload %s: missing fn %d in registry", spec.Name, i)
		}
		fns[i] = id
	}
	tr := trace.NewTracer(img, out, seed*31+7)
	rng := rand.New(rand.NewSource(seed * 131))
	dataAddr := isa.DataBase

	tr.Enter(mainFn)
	for p := 0; p < spec.Phases; p++ {
		// Each phase works over a sliding window of the function set.
		base := 0
		if spec.Funcs > spec.PhaseFuncs && spec.Phases > 1 {
			base = (p * (spec.Funcs - spec.PhaseFuncs)) / (spec.Phases - 1)
		}
		for c := 0; c < spec.CallsPerPhase; c++ {
			// Hot-biased pick within the window: a few functions take
			// most calls, as profile data shows for SPEC.
			off := int(rng.ExpFloat64() * float64(spec.PhaseFuncs) / 4)
			if off >= spec.PhaseFuncs {
				off = spec.PhaseFuncs - 1
			}
			fn := fns[(base+off)%spec.Funcs]
			tr.Enter(fn)
			tr.Work(spec.CallWork)
			if rng.Float64() < spec.NestProb {
				off2 := int(rng.ExpFloat64() * float64(spec.PhaseFuncs) / 4)
				if off2 >= spec.PhaseFuncs {
					off2 = spec.PhaseFuncs - 1
				}
				tr.Enter(fns[(base+off2)%spec.Funcs])
				tr.Work(spec.CallWork / 2)
				tr.Exit()
			}
			tr.Exit()
			// Main-loop work plus a streaming data touch.
			tr.Work(spec.LoopWork)
			tr.Data(dataAddr, 16, c%3 == 0)
			dataAddr += isa.Addr(spec.DataStride)
			if dataAddr > isa.DataBase+1<<24 {
				dataAddr = isa.DataBase
			}
		}
	}
	tr.Exit()
	return nil
}
