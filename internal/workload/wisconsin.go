// Package workload builds the paper's three workload families: the
// Wisconsin benchmark queries, a scaled-down TPC-H, and synthetic
// SPEC CPU2000 stand-ins, each as a Workload that drives the simulator
// through a trace consumer.
package workload

import (
	"fmt"
	"math/rand"

	"cgp/internal/db"
	"cgp/internal/db/catalog"
	"cgp/internal/db/exec"
	"cgp/internal/db/heap"
)

// WisconsinSchema returns the standard 16-column Wisconsin relation
// schema (13 integers and three 52-byte strings; Bitton et al. 1983).
func WisconsinSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "unique1", Type: catalog.Int},
		catalog.Column{Name: "unique2", Type: catalog.Int},
		catalog.Column{Name: "two", Type: catalog.Int},
		catalog.Column{Name: "four", Type: catalog.Int},
		catalog.Column{Name: "ten", Type: catalog.Int},
		catalog.Column{Name: "twenty", Type: catalog.Int},
		catalog.Column{Name: "onePercent", Type: catalog.Int},
		catalog.Column{Name: "tenPercent", Type: catalog.Int},
		catalog.Column{Name: "twentyPercent", Type: catalog.Int},
		catalog.Column{Name: "fiftyPercent", Type: catalog.Int},
		catalog.Column{Name: "unique3", Type: catalog.Int},
		catalog.Column{Name: "evenOnePercent", Type: catalog.Int},
		catalog.Column{Name: "oddOnePercent", Type: catalog.Int},
		catalog.Column{Name: "stringu1", Type: catalog.String, Len: 52},
		catalog.Column{Name: "stringu2", Type: catalog.String, Len: 52},
		catalog.Column{Name: "string4", Type: catalog.String, Len: 52},
	)
}

var string4Cycle = [4]string{"AAAA", "HHHH", "OOOO", "VVVV"}

// wisconsinString builds the 52-char cyclic string of the benchmark.
func wisconsinString(seed int64) string {
	var buf [52]byte
	for i := range buf {
		buf[i] = 'A' + byte((seed+int64(i)*7)%26)
	}
	return string(buf[:])
}

// LoadWisconsin creates and populates a Wisconsin relation of n tuples.
// unique2 is sequential (so an index on it is clustered); unique1 is a
// seeded permutation of 0..n-1.
func LoadWisconsin(e *db.Engine, name string, n int, seed int64) (*db.Table, error) {
	sch := WisconsinSchema()
	tbl, err := e.CreateTable(name, sch)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	t := e.Txns.Begin()
	for i := 0; i < n; i++ {
		u1 := int64(perm[i])
		u2 := int64(i)
		one := u1 % 100
		vals := []catalog.Value{
			catalog.V(u1), catalog.V(u2),
			catalog.V(u1 % 2), catalog.V(u1 % 4), catalog.V(u1 % 10), catalog.V(u1 % 20),
			catalog.V(one), catalog.V(u1 % 10), catalog.V(u1 % 5), catalog.V(u1 % 2),
			catalog.V(u1), catalog.V(one * 2), catalog.V(one*2 + 1),
			catalog.SV(wisconsinString(u1)), catalog.SV(wisconsinString(u2)),
			catalog.SV(string4Cycle[i%4]),
		}
		if _, err := e.InsertRow(t, tbl, vals); err != nil {
			return nil, err
		}
	}
	// Clustered index on unique2 (load order), non-clustered on unique1.
	if _, err := e.CreateIndex(t, name, "unique2", true); err != nil {
		return nil, err
	}
	if _, err := e.CreateIndex(t, name, "unique1", false); err != nil {
		return nil, err
	}
	if err := e.Txns.Commit(t); err != nil {
		return nil, err
	}
	return tbl, nil
}

// WisconsinDB describes the loaded relations.
type WisconsinDB struct {
	// N is the cardinality of the two big relations; the small relation
	// has N/10 tuples.
	N int
}

// Load populates big1, big2 and small.
func (w WisconsinDB) Load(e *db.Engine, seed int64) error {
	if _, err := LoadWisconsin(e, "big1", w.N, seed); err != nil {
		return err
	}
	if _, err := LoadWisconsin(e, "big2", w.N, seed+1); err != nil {
		return err
	}
	small := w.N / 10
	if small < 10 {
		small = 10
	}
	if _, err := LoadWisconsin(e, "small", small, seed+2); err != nil {
		return err
	}
	return nil
}

// scanInto builds SELECT * INTO TMP FROM big1 WHERE unique2 in a range,
// without an index (Wisconsin queries 1 and 2).
func wiscRangeScan(name string, lo, hi int64) db.Query {
	return db.Query{
		Name: name,
		Build: func(e *db.Engine, ctx *exec.Context) (exec.Iterator, *heap.File, error) {
			tbl := e.MustTable("big1")
			scan := exec.NewSeqScan(ctx, tbl.Heap, tbl.Schema)
			filt := exec.NewFilter(ctx, scan, exec.IntRange{Col: "unique2", Lo: lo, Hi: hi})
			tmp, err := e.TempFile(name)
			return filt, tmp, err
		},
	}
}

// wiscIndexSelect builds the indexed range selections (queries 3-6):
// clustered on unique2, non-clustered on unique1.
func wiscIndexSelect(name, col string, lo, hi int64) db.Query {
	return db.Query{
		Name: name,
		Build: func(e *db.Engine, ctx *exec.Context) (exec.Iterator, *heap.File, error) {
			tbl := e.MustTable("big1")
			tree := tbl.Indexes[col]
			it := exec.NewIndexScan(ctx, tree, tbl.Heap, tbl.Schema, lo, hi)
			tmp, err := e.TempFile(name)
			return it, tmp, err
		},
	}
}

// WisconsinQueries returns queries 1-7 and 9 for a database of n-tuple
// big relations, with deterministic range placement derived from seed.
func WisconsinQueries(n int, seed int64, which []int) []db.Query {
	rng := rand.New(rand.NewSource(seed ^ 0x5CA1AB1E))
	pick := func(width int64) (int64, int64) {
		lo := rng.Int63n(int64(n) - width + 1)
		return lo, lo + width - 1
	}
	one := int64(n / 100)
	ten := int64(n / 10)
	if one < 1 {
		one = 1
	}
	if ten < 1 {
		ten = 1
	}
	all := map[int]func() db.Query{
		1: func() db.Query { lo, hi := pick(one); return wiscRangeScan("wisc_q1", lo, hi) },
		2: func() db.Query { lo, hi := pick(ten); return wiscRangeScan("wisc_q2", lo, hi) },
		3: func() db.Query { lo, hi := pick(one); return wiscIndexSelect("wisc_q3", "unique2", lo, hi) },
		4: func() db.Query { lo, hi := pick(ten); return wiscIndexSelect("wisc_q4", "unique2", lo, hi) },
		5: func() db.Query { lo, hi := pick(one); return wiscIndexSelect("wisc_q5", "unique1", lo, hi) },
		6: func() db.Query { lo, hi := pick(ten); return wiscIndexSelect("wisc_q6", "unique1", lo, hi) },
		7: func() db.Query {
			key := rng.Int63n(int64(n))
			return wiscIndexSelect("wisc_q7", "unique2", key, key)
		},
		9: func() db.Query { return wiscJoinAselB(int64(n)) },
	}
	out := make([]db.Query, 0, len(which))
	for _, q := range which {
		build, ok := all[q]
		if !ok {
			panic(fmt.Sprintf("workload: no Wisconsin query %d", q))
		}
		out = append(out, build())
	}
	return out
}

// wiscJoinAselB is query 9 (JoinAselB): select 10% of big2 by unique2,
// join to big1 on unique1 via big1's non-clustered index, materializing
// the result.
func wiscJoinAselB(n int64) db.Query {
	return db.Query{
		Name: "wisc_q9",
		Build: func(e *db.Engine, ctx *exec.Context) (exec.Iterator, *heap.File, error) {
			big1 := e.MustTable("big1")
			big2 := e.MustTable("big2")
			sel := exec.NewFilter(ctx,
				exec.NewSeqScan(ctx, big2.Heap, big2.Schema),
				exec.IntCmp{Col: "unique2", Op: Lt, Val: n / 10})
			join := exec.NewIndexNLJoin(ctx, sel, "unique1",
				big1.Indexes["unique1"], big1.Heap, big1.Schema)
			tmp, err := e.TempFile("wisc_q9")
			return join, tmp, err
		},
	}
}

// Lt re-exports the operator for readability at the call site above.
const Lt = exec.Lt
