package workload

import (
	"fmt"
	"os"

	"cgp/internal/db"
	"cgp/internal/program"
	"cgp/internal/trace"
)

// Captured wraps a sealed probe-level recording (live traffic captured
// from a serving database process) as a Workload, registered alongside
// the synthetic wisconsin/tpch/cpu2000 workloads. Run replays the
// probe call sequence through per-session tracers over the requested
// image, so a capture taken once from real clients feeds every layout
// and configuration the harness asks for — deterministically, because
// the sealed recording plus the image and seed fully determine the
// synthesized stream.
//
// The registry is the database system's own (the capture came from the
// same engine build), so function IDs recorded at capture time resolve
// to the same functions at replay time.
func Captured(name string, rec *trace.Recording, seed int64) (*Workload, error) {
	if !trace.IsProbeRecording(rec) {
		return nil, fmt.Errorf("workload %s: %w", name, trace.ErrNotProbeRecording)
	}
	if seed == 0 {
		seed = 42
	}
	return &Workload{
		Name:   name,
		Family: "captured",
		NewRegistry: func() *program.Registry {
			reg, _ := db.BuildRegistry()
			return reg
		},
		Run: func(img *program.Image, out trace.Consumer) error {
			return trace.ReplayProbe(rec, img, out, seed)
		},
	}, nil
}

// CapturedFromFile loads a sealed capture file (the cgptrc container
// carrying probe-level events) and registers it under the standard
// "captured" workload name.
func CapturedFromFile(path string, seed int64) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload captured: %w", err)
	}
	defer f.Close()
	rec, err := trace.Load(f)
	if err != nil {
		return nil, fmt.Errorf("workload captured: %s: %w", path, err)
	}
	return Captured("captured", rec, seed)
}
