package workload

import (
	"math/rand"

	"cgp/internal/db"
	"cgp/internal/db/catalog"
	"cgp/internal/db/exec"
	"cgp/internal/db/heap"
)

// TPCHScale sizes the TPC-H-like database. The paper used a 30MB TPC-H
// dataset; the default here is smaller so full parameter sweeps finish
// quickly, and the generator scales linearly if callers want more.
type TPCHScale struct {
	Suppliers int
	Customers int
	Parts     int
	Orders    int
	// MaxLines is the max lineitems per order (uniform 1..MaxLines).
	MaxLines int
}

// DefaultTPCHScale returns the sweep-friendly size.
func DefaultTPCHScale() TPCHScale {
	return TPCHScale{Suppliers: 40, Customers: 240, Parts: 320, Orders: 960, MaxLines: 7}
}

// Date range: integer days over 7 years, as TPC-H's 1992-1998.
const tpchDays = 2557

var mktSegments = [5]string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}

var regionNames = [5]string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDEAST"}

// LoadTPCH creates and populates the eight TPC-H tables.
func LoadTPCH(e *db.Engine, sc TPCHScale, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	t := e.Txns.Begin()

	region, err := e.CreateTable("region", catalog.NewSchema(
		catalog.Column{Name: "r_regionkey", Type: catalog.Int},
		catalog.Column{Name: "r_name", Type: catalog.String, Len: 12},
	))
	if err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		if _, err := e.InsertRow(t, region, []catalog.Value{
			catalog.V(int64(i)), catalog.SV(regionNames[i]),
		}); err != nil {
			return err
		}
	}

	nation, err := e.CreateTable("nation", catalog.NewSchema(
		catalog.Column{Name: "n_nationkey", Type: catalog.Int},
		catalog.Column{Name: "n_name", Type: catalog.String, Len: 16},
		catalog.Column{Name: "n_regionkey", Type: catalog.Int},
	))
	if err != nil {
		return err
	}
	for i := 0; i < 25; i++ {
		if _, err := e.InsertRow(t, nation, []catalog.Value{
			catalog.V(int64(i)), catalog.SV(wisconsinString(int64(i))[:14]), catalog.V(int64(i % 5)),
		}); err != nil {
			return err
		}
	}

	supplier, err := e.CreateTable("supplier", catalog.NewSchema(
		catalog.Column{Name: "s_suppkey", Type: catalog.Int},
		catalog.Column{Name: "s_name", Type: catalog.String, Len: 18},
		catalog.Column{Name: "s_nationkey", Type: catalog.Int},
		catalog.Column{Name: "s_acctbal", Type: catalog.Int},
	))
	if err != nil {
		return err
	}
	for i := 0; i < sc.Suppliers; i++ {
		if _, err := e.InsertRow(t, supplier, []catalog.Value{
			catalog.V(int64(i)), catalog.SV(wisconsinString(int64(i) * 3)[:16]),
			catalog.V(rng.Int63n(25)), catalog.V(rng.Int63n(1000000)),
		}); err != nil {
			return err
		}
	}

	part, err := e.CreateTable("part", catalog.NewSchema(
		catalog.Column{Name: "p_partkey", Type: catalog.Int},
		catalog.Column{Name: "p_name", Type: catalog.String, Len: 24},
		catalog.Column{Name: "p_mfgr", Type: catalog.String, Len: 12},
		catalog.Column{Name: "p_size", Type: catalog.Int},
		catalog.Column{Name: "p_retailprice", Type: catalog.Int},
	))
	if err != nil {
		return err
	}
	for i := 0; i < sc.Parts; i++ {
		if _, err := e.InsertRow(t, part, []catalog.Value{
			catalog.V(int64(i)), catalog.SV(wisconsinString(int64(i) * 5)[:22]),
			catalog.SV("MFGR#" + string(rune('1'+i%5))),
			catalog.V(1 + rng.Int63n(50)), catalog.V(90000 + rng.Int63n(20000)),
		}); err != nil {
			return err
		}
	}

	partsupp, err := e.CreateTable("partsupp", catalog.NewSchema(
		catalog.Column{Name: "ps_partkey", Type: catalog.Int},
		catalog.Column{Name: "ps_suppkey", Type: catalog.Int},
		catalog.Column{Name: "ps_availqty", Type: catalog.Int},
		catalog.Column{Name: "ps_supplycost", Type: catalog.Int},
	))
	if err != nil {
		return err
	}
	for i := 0; i < sc.Parts; i++ {
		for j := 0; j < 4; j++ {
			if _, err := e.InsertRow(t, partsupp, []catalog.Value{
				catalog.V(int64(i)), catalog.V(int64((i*13 + j*7) % sc.Suppliers)),
				catalog.V(rng.Int63n(10000)), catalog.V(100 + rng.Int63n(100000)),
			}); err != nil {
				return err
			}
		}
	}

	customer, err := e.CreateTable("customer", catalog.NewSchema(
		catalog.Column{Name: "c_custkey", Type: catalog.Int},
		catalog.Column{Name: "c_name", Type: catalog.String, Len: 18},
		catalog.Column{Name: "c_nationkey", Type: catalog.Int},
		catalog.Column{Name: "c_mktsegment", Type: catalog.String, Len: 12},
		catalog.Column{Name: "c_acctbal", Type: catalog.Int},
	))
	if err != nil {
		return err
	}
	for i := 0; i < sc.Customers; i++ {
		if _, err := e.InsertRow(t, customer, []catalog.Value{
			catalog.V(int64(i)), catalog.SV(wisconsinString(int64(i) * 11)[:16]),
			catalog.V(rng.Int63n(25)), catalog.SV(mktSegments[rng.Intn(5)]),
			catalog.V(rng.Int63n(1000000)),
		}); err != nil {
			return err
		}
	}

	orders, err := e.CreateTable("orders", catalog.NewSchema(
		catalog.Column{Name: "o_orderkey", Type: catalog.Int},
		catalog.Column{Name: "o_custkey", Type: catalog.Int},
		catalog.Column{Name: "o_orderdate", Type: catalog.Int},
		catalog.Column{Name: "o_totalprice", Type: catalog.Int},
		catalog.Column{Name: "o_shippriority", Type: catalog.Int},
	))
	if err != nil {
		return err
	}
	lineitem, err := e.CreateTable("lineitem", catalog.NewSchema(
		catalog.Column{Name: "l_orderkey", Type: catalog.Int},
		catalog.Column{Name: "l_partkey", Type: catalog.Int},
		catalog.Column{Name: "l_suppkey", Type: catalog.Int},
		catalog.Column{Name: "l_linenumber", Type: catalog.Int},
		catalog.Column{Name: "l_quantity", Type: catalog.Int},
		catalog.Column{Name: "l_extendedprice", Type: catalog.Int},
		catalog.Column{Name: "l_discount", Type: catalog.Int},
		catalog.Column{Name: "l_tax", Type: catalog.Int},
		catalog.Column{Name: "l_returnflag", Type: catalog.Int},
		catalog.Column{Name: "l_linestatus", Type: catalog.Int},
		catalog.Column{Name: "l_shipdate", Type: catalog.Int},
	))
	if err != nil {
		return err
	}
	for o := 0; o < sc.Orders; o++ {
		odate := rng.Int63n(tpchDays - 200)
		if _, err := e.InsertRow(t, orders, []catalog.Value{
			catalog.V(int64(o)), catalog.V(rng.Int63n(int64(sc.Customers))),
			catalog.V(odate), catalog.V(10000 + rng.Int63n(5000000)),
			catalog.V(rng.Int63n(2)),
		}); err != nil {
			return err
		}
		lines := 1 + rng.Intn(sc.MaxLines)
		for l := 0; l < lines; l++ {
			ship := odate + 1 + rng.Int63n(120)
			rf := int64(0)
			if ship > tpchDays*3/4 {
				rf = 1
			} else if rng.Intn(4) == 0 {
				rf = 2
			}
			if _, err := e.InsertRow(t, lineitem, []catalog.Value{
				catalog.V(int64(o)), catalog.V(rng.Int63n(int64(sc.Parts))),
				catalog.V(rng.Int63n(int64(sc.Suppliers))), catalog.V(int64(l)),
				catalog.V(1 + rng.Int63n(50)), catalog.V(10000 + rng.Int63n(90000)),
				catalog.V(rng.Int63n(1100)), catalog.V(rng.Int63n(900)),
				catalog.V(rf), catalog.V(rng.Int63n(2)), catalog.V(ship),
			}); err != nil {
				return err
			}
		}
	}

	// Indexes: clustered where the generator emitted key order.
	for _, ix := range []struct {
		table, col string
		clustered  bool
	}{
		{"supplier", "s_suppkey", true},
		{"part", "p_partkey", true},
		{"partsupp", "ps_partkey", true},
		{"customer", "c_custkey", true},
		{"orders", "o_orderkey", true},
		{"orders", "o_custkey", false},
		{"lineitem", "l_orderkey", true},
	} {
		if _, err := e.CreateIndex(t, ix.table, ix.col, ix.clustered); err != nil {
			return err
		}
	}
	return e.Txns.Commit(t)
}

// revenueExtend appends revenue = extendedprice * (10000-discount)/10000.
func revenueExtend(ctx *exec.Context, in exec.Iterator) *exec.Extend {
	epi := in.Schema().ColIndex("l_extendedprice")
	dci := in.Schema().ColIndex("l_discount")
	return exec.NewExtend(ctx, in, "revenue", 14, func(t catalog.Tuple) int64 {
		return t.Int(epi) * (10000 - t.Int(dci)) / 10000
	})
}

// TPCHQ1 is the pricing summary report.
func TPCHQ1() db.Query {
	return db.Query{
		Name: "tpch_q1",
		Build: func(e *db.Engine, ctx *exec.Context) (exec.Iterator, *heap.File, error) {
			li := e.MustTable("lineitem")
			scan := exec.NewSeqScan(ctx, li.Heap, li.Schema)
			filt := exec.NewFilter(ctx, scan, exec.IntCmp{Col: "l_shipdate", Op: exec.Le, Val: tpchDays - 90})
			rev := revenueExtend(ctx, filt)
			txi := rev.Schema().ColIndex("l_tax")
			rvi := rev.Schema().ColIndex("revenue")
			chg := exec.NewExtend(ctx, rev, "charge", 16, func(t catalog.Tuple) int64 {
				return t.Int(rvi) * (10000 + t.Int(txi)) / 10000
			})
			agg := exec.NewHashAggregate(ctx, chg,
				[]string{"l_returnflag", "l_linestatus"},
				[]exec.Agg{
					{Op: exec.Sum, Col: "l_quantity", As: "sum_qty"},
					{Op: exec.Sum, Col: "l_extendedprice", As: "sum_base_price"},
					{Op: exec.Sum, Col: "revenue", As: "sum_disc_price"},
					{Op: exec.Sum, Col: "charge", As: "sum_charge"},
					{Op: exec.Avg, Col: "l_quantity", As: "avg_qty"},
					{Op: exec.Avg, Col: "l_extendedprice", As: "avg_price"},
					{Op: exec.Avg, Col: "l_discount", As: "avg_disc"},
					{Op: exec.Count, As: "count_order"},
				})
			out := exec.NewSort(ctx, agg,
				exec.SortKey{Col: "l_returnflag"}, exec.SortKey{Col: "l_linestatus"})
			return out, nil, nil
		},
	}
}

// TPCHQ6 is the forecasting revenue change query.
func TPCHQ6() db.Query {
	return db.Query{
		Name: "tpch_q6",
		Build: func(e *db.Engine, ctx *exec.Context) (exec.Iterator, *heap.File, error) {
			li := e.MustTable("lineitem")
			scan := exec.NewSeqScan(ctx, li.Heap, li.Schema)
			filt := exec.NewFilter(ctx, scan, exec.And{
				exec.IntRange{Col: "l_shipdate", Lo: 365, Hi: 729},
				exec.IntRange{Col: "l_discount", Lo: 500, Hi: 700},
				exec.IntCmp{Col: "l_quantity", Op: exec.Lt, Val: 24},
			})
			epi := filt.Schema().ColIndex("l_extendedprice")
			dci := filt.Schema().ColIndex("l_discount")
			rev := exec.NewExtend(ctx, filt, "disc_revenue", 10, func(t catalog.Tuple) int64 {
				return t.Int(epi) * t.Int(dci) / 10000
			})
			agg := exec.NewHashAggregate(ctx, rev, nil,
				[]exec.Agg{{Op: exec.Sum, Col: "disc_revenue", As: "revenue"}})
			return agg, nil, nil
		},
	}
}

// TPCHQ3 is the shipping priority query (top-10 unshipped orders).
func TPCHQ3() db.Query {
	return db.Query{
		Name: "tpch_q3",
		Build: func(e *db.Engine, ctx *exec.Context) (exec.Iterator, *heap.File, error) {
			cutoff := int64(tpchDays / 2)
			cust := e.MustTable("customer")
			orders := e.MustTable("orders")
			li := e.MustTable("lineitem")
			seg := exec.NewFilter(ctx,
				exec.NewSeqScan(ctx, cust.Heap, cust.Schema),
				exec.StrEq{Col: "c_mktsegment", Val: "BUILDING"})
			co := exec.NewIndexNLJoin(ctx, seg, "c_custkey",
				orders.Indexes["o_custkey"], orders.Heap, orders.Schema)
			cof := exec.NewFilter(ctx, co, exec.IntCmp{Col: "o_orderdate", Op: exec.Lt, Val: cutoff})
			col := exec.NewIndexNLJoin(ctx, cof, "o_orderkey",
				li.Indexes["l_orderkey"], li.Heap, li.Schema)
			colf := exec.NewFilter(ctx, col, exec.IntCmp{Col: "l_shipdate", Op: exec.Gt, Val: cutoff})
			rev := revenueExtend(ctx, colf)
			agg := exec.NewHashAggregate(ctx, rev,
				[]string{"o_orderkey", "o_orderdate", "o_shippriority"},
				[]exec.Agg{{Op: exec.Sum, Col: "revenue", As: "revenue"}})
			srt := exec.NewSort(ctx, agg,
				exec.SortKey{Col: "revenue", Desc: true}, exec.SortKey{Col: "o_orderdate"})
			return exec.NewLimit(ctx, srt, 10), nil, nil
		},
	}
}

// TPCHQ5 is the local supplier volume query (6-way join).
func TPCHQ5() db.Query {
	return db.Query{
		Name: "tpch_q5",
		Build: func(e *db.Engine, ctx *exec.Context) (exec.Iterator, *heap.File, error) {
			region := e.MustTable("region")
			nation := e.MustTable("nation")
			supp := e.MustTable("supplier")
			cust := e.MustTable("customer")
			orders := e.MustTable("orders")
			li := e.MustTable("lineitem")

			natRegion := exec.NewNLJoin(ctx,
				exec.NewSeqScan(ctx, nation.Heap, nation.Schema),
				exec.NewFilter(ctx, exec.NewSeqScan(ctx, region.Heap, region.Schema),
					exec.StrEq{Col: "r_name", Val: "ASIA"}),
				exec.ColEq{Left: "n_regionkey", Right: "r_regionkey"})
			supNat := exec.NewGraceHashJoin(ctx,
				exec.NewSeqScan(ctx, supp.Heap, supp.Schema), natRegion,
				"s_nationkey", "n_nationkey", 4)

			co := exec.NewIndexNLJoin(ctx,
				exec.NewSeqScan(ctx, cust.Heap, cust.Schema), "c_custkey",
				orders.Indexes["o_custkey"], orders.Heap, orders.Schema)
			cof := exec.NewFilter(ctx, co, exec.IntRange{Col: "o_orderdate", Lo: 730, Hi: 1094})
			col := exec.NewIndexNLJoin(ctx, cof, "o_orderkey",
				li.Indexes["l_orderkey"], li.Heap, li.Schema)

			all := exec.NewGraceHashJoin(ctx, col, supNat, "l_suppkey", "s_suppkey", 4)
			local := exec.NewFilter(ctx, all, exec.ColEq{Left: "c_nationkey", Right: "s_nationkey"})
			rev := revenueExtend(ctx, local)
			agg := exec.NewHashAggregate(ctx, rev, []string{"n_name"},
				[]exec.Agg{{Op: exec.Sum, Col: "revenue", As: "revenue"}})
			return exec.NewSort(ctx, agg, exec.SortKey{Col: "revenue", Desc: true}), nil, nil
		},
	}
}

// TPCHQ2 is the minimum-cost supplier query (the "simple nested query"
// the paper cites): the inner aggregation finds the minimum supply cost
// per part within a region, the outer query re-joins to select the
// suppliers achieving it.
func TPCHQ2() db.Query {
	return db.Query{
		Name: "tpch_q2",
		Build: func(e *db.Engine, ctx *exec.Context) (exec.Iterator, *heap.File, error) {
			part := e.MustTable("part")
			psupp := e.MustTable("partsupp")
			supp := e.MustTable("supplier")
			nation := e.MustTable("nation")
			region := e.MustTable("region")

			// candidate pipeline: parts of the target size joined to
			// their suppliers within EUROPE.
			candidates := func() exec.Iterator {
				pf := exec.NewFilter(ctx,
					exec.NewSeqScan(ctx, part.Heap, part.Schema),
					exec.IntCmp{Col: "p_size", Op: exec.Eq, Val: 15})
				pps := exec.NewIndexNLJoin(ctx, pf, "p_partkey",
					psupp.Indexes["ps_partkey"], psupp.Heap, psupp.Schema)
				natReg := exec.NewNLJoin(ctx,
					exec.NewSeqScan(ctx, nation.Heap, nation.Schema),
					exec.NewFilter(ctx, exec.NewSeqScan(ctx, region.Heap, region.Schema),
						exec.StrEq{Col: "r_name", Val: "EUROPE"}),
					exec.ColEq{Left: "n_regionkey", Right: "r_regionkey"})
				supNat := exec.NewGraceHashJoin(ctx,
					exec.NewSeqScan(ctx, supp.Heap, supp.Schema), natReg,
					"s_nationkey", "n_nationkey", 2)
				return exec.NewGraceHashJoin(ctx, pps, supNat, "ps_suppkey", "s_suppkey", 4)
			}

			// Inner aggregation: min supply cost per part.
			mins := exec.NewHashAggregate(ctx, candidates(),
				[]string{"p_partkey"},
				[]exec.Agg{{Op: exec.Min, Col: "ps_supplycost", As: "min_cost"}})
			// Outer: re-join and keep suppliers at the minimum.
			joined := exec.NewGraceHashJoin(ctx, mins, candidates(), "p_partkey", "p_partkey", 2)
			final := exec.NewFilter(ctx, joined, exec.ColEq{Left: "min_cost", Right: "ps_supplycost"})
			srt := exec.NewSort(ctx, final,
				exec.SortKey{Col: "s_acctbal", Desc: true}, exec.SortKey{Col: "p_partkey"})
			return exec.NewLimit(ctx, srt, 100), nil, nil
		},
	}
}

// TPCHQueries returns the five evaluated queries (1, 2, 3, 5, 6).
func TPCHQueries() []db.Query {
	return []db.Query{TPCHQ1(), TPCHQ2(), TPCHQ3(), TPCHQ5(), TPCHQ6()}
}
