package server

import (
	"time"

	"cgp/internal/units"
)

// The serving front-end is wall-clock-domain code: deadlines, token
// refill and latency metrics are about real time by nature. All clock
// reads and WallNanos conversions are concentrated here, mirroring
// obs/wall.go, so these three suppressions are the package's entire
// wall surface — everything downstream handles typed units.WallNanos
// and stays inside the lint boundary (latencies flow only into
// obs.WallRegistry, never into deterministic output).

// nowWall reads the host clock as a typed wall reading.
//
//cgplint:ignore detrand the serving domain's clock source; results are typed units.WallNanos and flow only to deadlines and wall metrics
func nowWall() units.WallNanos { return units.WallNanos(time.Now().UnixNano()) }

// ioDeadline converts a timeout into the absolute net.Conn deadline
// d from now. Socket deadlines are host-time by definition.
//
//cgplint:ignore detrand socket deadlines are wall-clock by definition; the value goes only into SetReadDeadline/SetWriteDeadline
func ioDeadline(d time.Duration) time.Time { return time.Now().Add(d) }

// wallSecs converts a wall duration to float seconds for token-bucket
// refill arithmetic. The float never leaves the bucket.
//
//cgplint:ignore cyclesafe wall-domain arithmetic internal to the admission token bucket; the value never reaches deterministic output
func wallSecs(d units.WallNanos) float64 { return float64(d) / 1e9 }

// wallDur converts a time.Duration budget into the wall-domain type
// used for deadline comparisons against nowWall readings.
func wallDur(d time.Duration) units.WallNanos { return units.WallNanos(d.Nanoseconds()) }
