package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"
)

// Client speaks the wire protocol. It is synchronous and not safe for
// concurrent use — one Client per goroutine (connections are cheap;
// the server pools them). Errors from the server come back typed:
// errors.Is(err, ErrOverloaded) etc. work across the socket.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	timeout time.Duration
	hdr     [frameHeaderLen]byte
	out     []byte

	// Tracing state: when traced is set (SetTraceBase), every Query and
	// Exec goes out as its traced message type carrying a fresh
	// client-minted trace ID base+seq. lastTrace remembers the most
	// recent one so a driver can join its own latency numbers to the
	// server's spans and the capture's attribution rows.
	traced    bool
	traceNext uint64
	lastTrace uint64
}

// SetTraceBase turns on client-side trace tagging: subsequent queries
// carry IDs base+1, base+2, ... on the wire. Pick bases that keep
// concurrent clients' ID ranges disjoint (cgpserve drive uses
// client-index << 32).
func (c *Client) SetTraceBase(base uint64) {
	c.traced = true
	c.traceNext = base
}

// LastTraceID returns the trace ID the most recent Query/Exec carried
// (0 before the first traced request).
func (c *Client) LastTraceID() uint64 { return c.lastTrace }

// nextTraceID mints the next client trace ID, skipping 0 (the wire
// rejects zero IDs).
func (c *Client) nextTraceID() uint64 {
	c.traceNext++
	if c.traceNext == 0 {
		c.traceNext = 1
	}
	c.lastTrace = c.traceNext
	return c.traceNext
}

// Dial connects to a server's TCP address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (tests inject fault-
// wrapped conns here).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, br: bufio.NewReaderSize(conn, 32<<10), timeout: 30 * time.Second}
}

// SetTimeout bounds each request round trip (default 30s).
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Query runs one SQL statement.
func (c *Client) Query(src string) (*Result, error) {
	msg, payload := msgQuery, []byte(src)
	if c.traced {
		msg = msgQueryTraced
		payload = append(appendTraceID(make([]byte, 0, traceIDLen+len(src)), c.nextTraceID()), src...)
	}
	typ, resp, err := c.roundTrip(msg, payload)
	if err != nil {
		return nil, err
	}
	if typ != msgResult {
		return nil, fmt.Errorf("%w: unexpected response type %q", ErrMalformed, typ)
	}
	return decodeResult(resp)
}

// Stmt is a prepared-statement handle.
type Stmt struct {
	c    *Client
	text string
	id   uint64
}

// Prepare caches src server-side and returns its handle.
func (c *Client) Prepare(src string) (*Stmt, error) {
	typ, payload, err := c.roundTrip(msgPrepare, []byte(src))
	if err != nil {
		return nil, err
	}
	if typ != msgPrepared {
		return nil, fmt.Errorf("%w: unexpected response type %q", ErrMalformed, typ)
	}
	id, err := decodeStmtID(payload)
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, text: src, id: id}, nil
}

// Exec runs the prepared statement. If the server evicted the handle
// (ErrStaleStatement), Exec transparently re-prepares once and
// retries — the client contract the LRU cache is designed around.
func (st *Stmt) Exec() (*Result, error) {
	res, err := st.execOnce()
	if err == nil || !isStale(err) {
		return res, err
	}
	fresh, err := st.c.Prepare(st.text)
	if err != nil {
		return nil, err
	}
	st.id = fresh.id
	return st.execOnce()
}

func isStale(err error) bool {
	for e := err; e != nil; {
		if e == ErrStaleStatement {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func (st *Stmt) execOnce() (*Result, error) {
	msg, payload := msgExec, encodeStmtID(nil, st.id)
	if st.c.traced {
		msg = msgExecTraced
		payload = encodeStmtID(appendTraceID(nil, st.c.nextTraceID()), st.id)
	}
	typ, resp, err := st.c.roundTrip(msg, payload)
	if err != nil {
		return nil, err
	}
	if typ != msgResult {
		return nil, fmt.Errorf("%w: unexpected response type %q", ErrMalformed, typ)
	}
	return decodeResult(resp)
}

// roundTrip sends one frame and reads one response, surfacing wire
// errors as typed Go errors.
func (c *Client) roundTrip(typ byte, payload []byte) (byte, []byte, error) {
	if c.timeout > 0 {
		c.conn.SetDeadline(ioDeadline(c.timeout))
	}
	c.out = append(c.out[:0], 0, 0, 0, 0, 0)
	c.out = append(c.out, payload...)
	putFrameHeader(c.out[:frameHeaderLen], typ, len(payload))
	if _, err := c.conn.Write(c.out); err != nil {
		return 0, nil, fmt.Errorf("client: write: %w", err)
	}
	if _, err := io.ReadFull(c.br, c.hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("client: read header: %w", err)
	}
	rtyp, n, err := parseFrameHeader(c.hdr[:], maxResponseFrame)
	if err != nil {
		return 0, nil, err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return 0, nil, fmt.Errorf("client: read payload: %w", err)
	}
	if rtyp == msgError {
		return 0, nil, decodeError(buf)
	}
	return rtyp, buf, nil
}

// Close sends the goodbye frame (best-effort) and closes the
// connection.
func (c *Client) Close() error {
	c.conn.SetDeadline(ioDeadline(time.Second))
	var bye [frameHeaderLen]byte
	putFrameHeader(bye[:], msgBye, 0)
	c.conn.Write(bye[:])
	return c.conn.Close()
}
