package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
)

// The HTTP fallback: the same executor and admission gate behind
// POST /query, for clients without the binary protocol (curl, load
// generators, dashboards). /metrics serves the wall-domain registry
// and /healthz is a liveness probe.

// httpQueryResponse is the JSON shape of a /query answer.
type httpQueryResponse struct {
	Cols         []string   `json:"cols,omitempty"`
	Rows         [][]string `json:"rows,omitempty"`
	Materialized int64      `json:"materialized,omitempty"`
	Error        string     `json:"error,omitempty"`
}

// httpSession is the capture session slot HTTP queries record under:
// one shared slot past the TCP range, since HTTP requests carry no
// connection identity worth preserving.
const httpSession = maxSessionSlots

func (s *Server) startHTTP(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.opts.HTTPAddr)
	if err != nil {
		return fmt.Errorf("server: http listen: %w", err)
	}
	s.httpLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.httpQuery)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.opts.Wall.WriteText(w)
	})
	srv := &http.Server{
		Handler:           mux,
		BaseContext:       func(net.Listener) context.Context { return ctx },
		ReadHeaderTimeout: s.opts.FrameTimeout,
		ReadTimeout:       s.opts.IdleTimeout,
		WriteTimeout:      s.opts.WriteTimeout,
	}
	context.AfterFunc(ctx, func() { srv.Close() })
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		srv.Serve(ln)
	}()
	return nil
}

// httpQuery serves one SQL statement from the request body.
func (s *Server) httpQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestFrame+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxRequestFrame {
		httpError(w, http.StatusRequestEntityTooLarge, ErrTooLarge)
		return
	}
	if err := s.adm.admit(); err != nil {
		s.opts.Wall.Incr("queries_shed", 1)
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	defer s.adm.release()
	start := s.opts.Clock()
	res, err := s.exec.query(r.Context(), httpSession, string(body))
	s.opts.Wall.Observe("query_latency", s.opts.Clock()-start)
	if err != nil {
		s.opts.Wall.Incr("queries_failed", 1)
		httpError(w, httpStatusFor(err), err)
		return
	}
	s.opts.Wall.Incr("queries_served", 1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(httpQueryResponse{
		Cols:         res.Cols,
		Rows:         res.Rows,
		Materialized: res.Materialized,
	})
}

func httpStatusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrShutdown):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(httpQueryResponse{Error: err.Error()})
}
