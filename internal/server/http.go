package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"

	"cgp/internal/obs"
	"cgp/internal/units"
)

// The HTTP fallback: the same executor and admission gate behind
// POST /query, for clients without the binary protocol (curl, load
// generators, dashboards). /metrics serves Prometheus text exposition
// (wall-domain registry, per-stage latency summaries, serving gauges)
// and /healthz is a liveness probe.
//
// Tracing: a client may tag its query with an X-CGP-Trace-ID request
// header (16 hex digits, nonzero); untagged requests get a
// server-minted ID. Either way the response echoes the ID in the same
// header, so a curl user can grep the slow-query log for their query.

// traceIDHeader carries the trace ID on HTTP requests and responses.
const traceIDHeader = "X-CGP-Trace-ID"

// httpQueryResponse is the JSON shape of a /query answer.
type httpQueryResponse struct {
	Cols         []string   `json:"cols,omitempty"`
	Rows         [][]string `json:"rows,omitempty"`
	Materialized int64      `json:"materialized,omitempty"`
	Error        string     `json:"error,omitempty"`
}

// httpSession is the capture session slot HTTP queries record under:
// one shared slot past the TCP range, since HTTP requests carry no
// connection identity worth preserving.
const httpSession = maxSessionSlots

func (s *Server) startHTTP(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.opts.HTTPAddr)
	if err != nil {
		return fmt.Errorf("server: http listen: %w", err)
	}
	s.httpLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.httpQuery)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.writeMetrics(w)
	})
	srv := &http.Server{
		Handler:           mux,
		BaseContext:       func(net.Listener) context.Context { return ctx },
		ReadHeaderTimeout: s.opts.FrameTimeout,
		ReadTimeout:       s.opts.IdleTimeout,
		WriteTimeout:      s.opts.WriteTimeout,
	}
	context.AfterFunc(ctx, func() { srv.Close() })
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		srv.Serve(ln)
	}()
	return nil
}

// httpQuery serves one SQL statement from the request body.
func (s *Server) httpQuery(w http.ResponseWriter, r *http.Request) {
	var decStart units.WallNanos
	traced := s.opts.Trace != nil
	if traced {
		decStart = s.opts.Clock()
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestFrame+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxRequestFrame {
		httpError(w, http.StatusRequestEntityTooLarge, ErrTooLarge)
		return
	}
	tag, tagged, err := parseHTTPTraceID(r.Header.Get(traceIDHeader))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var sp *obs.QuerySpan
	if traced {
		id := tag
		if !tagged {
			id = s.mintTraceID()
		}
		w.Header().Set(traceIDHeader, fmt.Sprintf("%016x", id))
		// HTTP requests have no long-lived connection buffer: the span
		// flushes straight to the tracer on End.
		sp = s.opts.Trace.Begin(nil, id, "http", tagged)
		sp.Stage(obs.StageDecode, s.opts.Clock()-decStart)
	}
	var admStart units.WallNanos
	if sp != nil {
		admStart = s.opts.Clock()
	}
	err = s.adm.admit()
	if sp != nil {
		sp.Stage(obs.StageAdmission, s.opts.Clock()-admStart)
	}
	if err != nil {
		s.opts.Wall.Incr("queries_shed", 1)
		sp.End(obs.StatusShed)
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	defer s.adm.release()
	start := s.opts.Clock()
	res, err := s.exec.query(r.Context(), httpSession, string(body), tag, sp)
	s.opts.Wall.Observe("query_latency", s.opts.Clock()-start)
	sp.End(statusFor(err))
	if err != nil {
		s.opts.Wall.Incr("queries_failed", 1)
		httpError(w, httpStatusFor(err), err)
		return
	}
	s.opts.Wall.Incr("queries_served", 1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(httpQueryResponse{
		Cols:         res.Cols,
		Rows:         res.Rows,
		Materialized: res.Materialized,
	})
}

// parseHTTPTraceID parses an X-CGP-Trace-ID request header: empty
// means untagged; anything else must be exactly 16 hex digits and
// nonzero.
func parseHTTPTraceID(h string) (id uint64, tagged bool, err error) {
	if h == "" {
		return 0, false, nil
	}
	if len(h) != 16 {
		return 0, false, fmt.Errorf("%w: %s must be 16 hex digits", ErrMalformed, traceIDHeader)
	}
	for _, c := range h {
		id <<= 4
		switch {
		case c >= '0' && c <= '9':
			id |= uint64(c - '0')
		case c >= 'a' && c <= 'f':
			id |= uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			id |= uint64(c-'A') + 10
		default:
			return 0, false, fmt.Errorf("%w: %s must be 16 hex digits", ErrMalformed, traceIDHeader)
		}
	}
	if id == 0 {
		return 0, false, fmt.Errorf("%w: zero trace id", ErrMalformed)
	}
	return id, true, nil
}

// writeMetrics serves the Prometheus exposition: wall-domain serving
// counters, the per-stage latency summaries, and point-in-time gauges
// (inflight queries, open connections, capture backlog counters).
func (s *Server) writeMetrics(w io.Writer) {
	s.opts.Wall.WritePrometheus(w)
	s.opts.Trace.WritePrometheus(w)
	var b []byte
	b = obs.AppendPromGauge(b, "cgp_inflight_queries",
		"Queries past admission and not yet finished.", s.adm.inflight.Load())
	b = obs.AppendPromGauge(b, "cgp_open_conns",
		"Currently served TCP connections.", s.conns.Load())
	if lc := s.opts.Capture; lc != nil {
		b = obs.AppendPromGauge(b, "cgp_capture_committed_batches",
			"Query batches committed to the live capture.", lc.Committed())
		b = obs.AppendPromGauge(b, "cgp_capture_dropped_batches",
			"Query batches lost to capture ring backpressure.", lc.Drops())
		b = obs.AppendPromGauge(b, "cgp_capture_overflow_batches",
			"Query batches dropped as malformed or over the event cap.", lc.Overflows())
		b = obs.AppendPromGauge(b, "cgp_capture_skipped_queries",
			"Queries the capture sampler left unrecorded.", lc.Skipped())
	}
	w.Write(b)
}

func httpStatusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrShutdown):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(httpQueryResponse{Error: err.Error()})
}
