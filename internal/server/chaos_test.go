package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"cgp/internal/db"
	"cgp/internal/faultinject"
	"cgp/internal/trace"
	"cgp/internal/workload"
)

// The network chaos suite: slow-loris stalls, mid-frame disconnects,
// deterministic frame corruption, sustained overload, and kill -9 +
// restart — each asserting the server sheds the fault, keeps serving
// healthy clients, and leaks no goroutines. Fault injection uses the
// faultinject conn wrappers on the CLIENT side, so every fault is a
// byte-exact, reproducible stream.

// TestMain doubles as the kill -9 victim: with CGP_SERVER_CHAOS_CHILD
// set, the test binary re-execs into a real serving process (own PID,
// own engine, live capture) that the parent test can SIGKILL.
func TestMain(m *testing.M) {
	if os.Getenv("CGP_SERVER_CHAOS_CHILD") == "1" {
		runChaosChild()
		return
	}
	os.Exit(m.Run())
}

// runChaosChild serves until SIGTERM (graceful: drain, seal capture,
// exit 0) or SIGKILL (the chaos: nothing runs, the capture file never
// appears).
func runChaosChild() {
	capPath := os.Getenv("CGP_SERVER_CAPTURE")
	e := db.NewEngine(db.Options{BufferFrames: 2048})
	if err := (workload.WisconsinDB{N: 200}).Load(e, 42); err != nil {
		fmt.Fprintln(os.Stderr, "child: load:", err)
		os.Exit(1)
	}
	lc := NewLiveCapture(CaptureOptions{SampleEvery: 1})
	s := New(e, Options{Addr: "127.0.0.1:0", Capture: lc})
	ctx, cancel := context.WithCancel(context.Background())
	// The handler must be live before the parent learns the address —
	// it sends SIGTERM as soon as its queries finish, possibly before
	// this goroutine runs again.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	if err := s.Start(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "child: start:", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR %s\n", s.Addr())
	<-sig
	cancel()
	s.Wait()
	f, err := os.Create(capPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: create capture:", err)
		os.Exit(1)
	}
	if _, err := lc.Seal(f); err != nil {
		fmt.Fprintln(os.Stderr, "child: seal:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "child: close capture:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// startChild re-execs the test binary as a serving child process and
// returns its handle plus listen address.
func startChild(t *testing.T, capPath string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"CGP_SERVER_CHAOS_CHILD=1",
		"CGP_SERVER_CAPTURE="+capPath,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
			return cmd, addr
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatal("child exited before announcing its address")
	return nil, ""
}

func TestChaosSlowLoris(t *testing.T) {
	leakCheck(t)
	s := startServer(t, testEngine(t), Options{FrameTimeout: 40 * time.Millisecond})

	// The attacker: a header promising 100 bytes, then a trickle that
	// never finishes.
	raw, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var hdr [frameHeaderLen]byte
	putFrameHeader(hdr[:], msgQuery, 100)
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("SEL")); err != nil {
		t.Fatal(err)
	}
	// The server must hang up within ~FrameTimeout, not wait forever.
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("server kept the slow-loris connection alive (read err = %v)", err)
	}

	// A healthy client is unaffected.
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("SELECT COUNT(*) AS n FROM small"); err != nil {
		t.Fatalf("healthy client after slow-loris: %v", err)
	}
}

func TestChaosMidQueryDisconnect(t *testing.T) {
	leakCheck(t)
	s := startServer(t, testEngine(t), Options{})

	raw, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// The conn dies 8 bytes in: mid-frame, header sent, payload cut.
	c := NewClient(faultinject.DropAfterN(raw, 8))
	c.SetTimeout(2 * time.Second)
	if _, err := c.Query("SELECT COUNT(*) AS n FROM big1"); err == nil {
		t.Fatal("query over a dropped connection succeeded")
	}
	c.Close()

	healthy, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	if _, err := healthy.Query("SELECT COUNT(*) AS n FROM small"); err != nil {
		t.Fatalf("healthy client after mid-frame disconnect: %v", err)
	}
}

func TestChaosMalformedFrames(t *testing.T) {
	leakCheck(t)
	s := startServer(t, testEngine(t), Options{})

	// Deterministically corrupted client: one byte flipped per 16-byte
	// window past the first. The first frame's header survives (window
	// 0), its SQL text does not.
	raw, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(faultinject.CorruptFrame(raw, 7, 16))
	c.SetTimeout(2 * time.Second)
	sawError := false
	for i := 0; i < 5 && !sawError; i++ {
		if _, err := c.Query("SELECT unique1 FROM big1 WHERE unique2 = 5"); err != nil {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("five corrupted queries all succeeded")
	}
	c.Close()

	// An unknown message type gets a typed protocol error, then close.
	raw2, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw2.Close()
	var hdr [frameHeaderLen]byte
	putFrameHeader(hdr[:], 'Z', 4)
	raw2.Write(hdr[:])
	raw2.Write([]byte("junk"))
	raw2.SetReadDeadline(time.Now().Add(5 * time.Second))
	br := bufio.NewReader(raw2)
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		t.Fatalf("no response to unknown message type: %v", err)
	}
	typ, n, err := parseFrameHeader(hdr[:], maxResponseFrame)
	if err != nil || typ != msgError {
		t.Fatalf("response = (%q, %v), want msgError", typ, err)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(decodeError(payload), ErrMalformed) {
		t.Fatalf("unknown-type error = %v, want ErrMalformed", decodeError(payload))
	}
	// The server hangs up after a protocol violation.
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection stayed open after protocol violation (err = %v)", err)
	}

	healthy, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	if _, err := healthy.Query("SELECT COUNT(*) AS n FROM small"); err != nil {
		t.Fatalf("healthy client after malformed frames: %v", err)
	}
}

func TestChaosSustainedOverload(t *testing.T) {
	leakCheck(t)
	s := startServer(t, testEngine(t), Options{MaxInflight: 2})

	const clients, perClient = 8, 10
	var (
		mu           sync.Mutex
		served, shed int
		unexpected   []error
	)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				mu.Lock()
				unexpected = append(unexpected, err)
				mu.Unlock()
				return
			}
			defer c.Close()
			for j := 0; j < perClient; j++ {
				_, err := c.Query("SELECT COUNT(*) AS n FROM big1 WHERE two = 0")
				mu.Lock()
				switch {
				case err == nil:
					served++
				case errors.Is(err, ErrOverloaded):
					shed++
				default:
					unexpected = append(unexpected, err)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(unexpected) > 0 {
		t.Fatalf("non-overload failures under load: %v", unexpected)
	}
	if served == 0 {
		t.Fatal("overloaded server served nothing — shedding everything is not overload control")
	}
	if served+shed != clients*perClient {
		t.Fatalf("served %d + shed %d != %d issued", served, shed, clients*perClient)
	}
	t.Logf("overload: served=%d shed=%d", served, shed)

	// Load gone, service restored: a fresh client gets through.
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("SELECT COUNT(*) AS n FROM small"); err != nil {
		t.Fatalf("query after overload subsided: %v", err)
	}
}

func TestChaosKillDashNineAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	leakCheck(t)
	capPath := t.TempDir() + "/live.cgptrc"

	// Round 1: serve, then die mid-query with SIGKILL.
	child, addr := startChild(t, capPath)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT COUNT(*) AS n FROM big1"); err != nil {
		t.Fatalf("query against child: %v", err)
	}
	// Put a query in flight: write the request, kill before the answer.
	var frame []byte
	q := "SELECT unique1 FROM big1 WHERE unique2 BETWEEN 0 AND 199"
	frame = append(frame, 0, 0, 0, 0, 0)
	frame = append(frame, q...)
	putFrameHeader(frame[:frameHeaderLen], msgQuery, len(q))
	if _, err := c.conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	err = child.Wait()
	var exit *exec.ExitError
	if !errors.As(err, &exit) {
		t.Fatalf("child.Wait after SIGKILL = %v, want ExitError", err)
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, rerr := c.conn.Read(make([]byte, 1)); rerr == nil {
		t.Fatal("read succeeded from a SIGKILLed server")
	}
	c.conn.Close()
	// The capture was never sealed: no file may exist, and a partial
	// artifact must not load as a valid recording.
	if f, err := os.Open(capPath); err == nil {
		_, lerr := trace.Load(f)
		f.Close()
		if lerr == nil {
			t.Fatal("unsealed capture from killed process loaded as valid")
		}
	}

	// Round 2: restart, serve again, stop gracefully, and the capture
	// seals as a well-formed probe recording.
	child2, addr2 := startChild(t, capPath)
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c2.Query("SELECT COUNT(*) AS n FROM big1"); err != nil {
			t.Fatalf("query after restart: %v", err)
		}
	}
	c2.Close()
	if err := child2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := child2.Wait(); err != nil {
		t.Fatalf("child after SIGTERM: %v", err)
	}
	f, err := os.Open(capPath)
	if err != nil {
		t.Fatalf("graceful shutdown left no capture: %v", err)
	}
	rec, err := trace.Load(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !trace.IsProbeRecording(rec) || rec.Events() == 0 {
		t.Fatalf("restarted capture malformed: %+v", rec.Stats)
	}
}
