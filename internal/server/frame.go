package server

// The wire protocol's framing layer. Every message is one frame:
//
//	byte 0      message type
//	bytes 1..4  payload length, big-endian
//	bytes 5..   payload
//
// The header codec is on the per-request hot path of every connection
// goroutine, so it is hand-rolled (no encoding/binary, no error
// allocation) and pinned allocation-free by the hotpath directive.

// frameHeaderLen is the fixed frame header size.
const frameHeaderLen = 5

// maxRequestFrame bounds client->server payloads. Requests carry SQL
// text or a statement id; anything near this bound is an attack or a
// corrupted length field, and is rejected before any allocation.
const maxRequestFrame = 1 << 20

// maxResponseFrame bounds server->client payloads (result sets are
// also row-capped by Options.MaxResultRows before encoding).
const maxResponseFrame = 64 << 20

// Message types. Client->server types are uppercase, server->client
// lowercase, so a frame's direction is evident in a hex dump.
const (
	msgQuery    byte = 'Q' // payload: SQL text
	msgPrepare  byte = 'P' // payload: SQL text; response: msgPrepared
	msgExec     byte = 'E' // payload: uvarint statement id
	msgBye      byte = 'X' // empty payload; server closes cleanly
	msgResult   byte = 'r' // payload: encoded Result
	msgPrepared byte = 'p' // payload: uvarint statement id
	msgError    byte = 'e' // payload: code byte + message text

	// Traced variants: the payload is prefixed with an 8-byte
	// big-endian nonzero trace ID minted by the client. Untagged
	// clients keep sending the plain types, so a capture of untagged
	// traffic is byte-identical to a pre-tracing capture.
	msgQueryTraced byte = 'T' // payload: trace id + SQL text
	msgExecTraced  byte = 'U' // payload: trace id + uvarint statement id
)

// putFrameHeader writes a frame header for a payload of n bytes into
// dst, which must have room for frameHeaderLen bytes.
//
//cgplint:hotpath
func putFrameHeader(dst []byte, typ byte, n int) {
	_ = dst[frameHeaderLen-1]
	dst[0] = typ
	dst[1] = byte(n >> 24)
	dst[2] = byte(n >> 16)
	dst[3] = byte(n >> 8)
	dst[4] = byte(n)
}

// parseFrameHeader decodes a frame header, bounding the payload length
// by limit. Errors are pre-allocated sentinels: a flood of malformed
// frames must not allocate per frame.
//
//cgplint:hotpath
func parseFrameHeader(src []byte, limit int) (typ byte, n int, err error) {
	if len(src) < frameHeaderLen {
		return 0, 0, ErrMalformed
	}
	n = int(src[1])<<24 | int(src[2])<<16 | int(src[3])<<8 | int(src[4])
	if n < 0 || n > limit {
		return 0, 0, ErrTooLarge
	}
	return src[0], n, nil
}
