package server

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"cgp/internal/db"
	"cgp/internal/db/catalog"
	"cgp/internal/db/exec"
	"cgp/internal/db/heap"
	"cgp/internal/db/sql"
	"cgp/internal/db/txn"
	"cgp/internal/obs"
	"cgp/internal/units"
)

// executor runs queries against the engine. The engine (probe, arena,
// buffer pool) is not thread-safe, so a mutex serializes queries —
// concurrency lives in the connection layer; the storage layer sees
// one query at a time, exactly as the cooperative scheduler's threads
// do. Each query runs in its own transaction with the same probe
// bracketing sql.Run uses (parse / optimize / execute), so a captured
// session reproduces the call-graph shape of Figure 1.
//
// Robustness properties, in order of importance:
//   - a panic anywhere in parse/plan/execute is confined to the
//     request: the transaction aborts, the capture batch is discarded,
//     the connection gets a typed internal error, the process lives;
//   - a query that exceeds its wall-clock budget is aborted mid-drain
//     (checked every deadlinePollRows tuples) with ErrDeadline;
//   - result sets are row-capped before encoding (ErrTooLarge).
type executor struct {
	mu       sync.Mutex
	e        *db.Engine
	prep     *prepCache
	capture  *LiveCapture
	clock    func() units.WallNanos
	deadline units.WallNanos // per-query budget; <= 0 disables
	maxRows  int
	wall     *obs.WallRegistry
}

// deadlinePollRows is how many tuples flow between wall-clock and
// cancellation checks during a drain: rare enough to stay off the
// per-tuple cost, frequent enough to bound overshoot.
const deadlinePollRows = 64

// parseCachedWork is the probe Work cost booked for a parse that was
// served from the prepared-statement cache (a hash lookup, not a full
// parse).
const parseCachedWork = 30

// testHookRun, when non-nil, runs at the top of every statement inside
// the panic-isolation scope. The chaos suite uses it to inject
// statement panics without needing an engine bug to lean on.
var testHookRun func(src string)

// query parses (or looks up), plans and executes src. tag is the
// query's wire-carried trace ID (0 for untagged traffic); sp is its
// serving span (nil when tracing is off).
func (x *executor) query(ctx context.Context, session int32, src string, tag uint64, sp *obs.QuerySpan) (*Result, error) {
	return x.run(ctx, session, src, nil, tag, sp)
}

// execPrepared runs a statement by cache handle; a handle the LRU has
// evicted gets ErrStaleStatement and the client re-prepares.
func (x *executor) execPrepared(ctx context.Context, session int32, id uint64, tag uint64, sp *obs.QuerySpan) (*Result, error) {
	x.mu.Lock()
	e, err := x.prep.lookupID(id)
	x.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return x.run(ctx, session, e.text, e.stmt, tag, sp)
}

// prepare parses src and caches it, returning the handle id.
func (x *executor) prepare(src string) (uint64, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if e, ok := x.prep.byText[src]; ok {
		x.prep.lru.MoveToFront(e.elem)
		return e.id, nil
	}
	stmt, err := sql.Parse(src)
	if err != nil {
		return 0, err
	}
	return x.prep.insert(src, stmt), nil
}

// run executes one statement under the engine lock. stmt, when
// non-nil, is a pre-parsed statement from the cache. tag (the
// wire-carried trace ID, 0 for untagged) keys the capture batch; sp,
// when non-nil, receives the prep/execute/drain/capture stage
// durations. The untraced path takes no extra clock reads: stamp is a
// nil-guarded clock, so sp == nil keeps the query path exactly as
// cheap as before tracing existed.
func (x *executor) run(ctx context.Context, session int32, src string, stmt *sql.SelectStmt, tag uint64, sp *obs.QuerySpan) (res *Result, err error) {
	x.mu.Lock()
	defer x.mu.Unlock()

	stamp := func() units.WallNanos {
		if sp == nil {
			return 0
		}
		return x.clock()
	}

	// begin returns nil when the sampler skips this query; the probe
	// then stays detached and the query runs at full speed.
	var capturing bool
	if x.capture != nil {
		if sink := x.capture.begin(session, tag); sink != nil {
			capturing = true
			x.e.Pr.SetSink(sink)
			defer x.e.Pr.SetSink(nil)
		}
	}
	var deadlineAt units.WallNanos
	if x.deadline > 0 {
		deadlineAt = x.clock() + x.deadline
	}

	var tx *txn.Txn
	fail := func(cause error) (*Result, error) {
		if tx != nil {
			x.e.Txns.Abort(tx)
		}
		if capturing {
			x.capture.abort()
		}
		return nil, cause
	}
	defer func() {
		if p := recover(); p != nil {
			// One poisoned statement kills one request, never the
			// process: abort the transaction, discard the capture
			// batch, surface a typed internal error.
			res, err = fail(fmt.Errorf("%w: query panicked: %v", ErrInternal, p))
		}
	}()
	if testHookRun != nil {
		testHookRun(src)
	}

	prepStart := stamp()
	pr, fns := x.e.Pr, x.e.Fns.Exec
	pr.Enter(fns.QueryParse)
	if stmt == nil {
		if cached := x.prep.lookupText(src); cached != nil {
			stmt = cached
			x.wall.Incr("prep_cache_hits", 1)
			pr.Work(parseCachedWork)
		} else {
			x.wall.Incr("prep_cache_misses", 1)
			pr.Work(60 + 2*len(src))
			parsed, perr := sql.Parse(src)
			if perr != nil {
				pr.Exit()
				sp.Stage(obs.StagePrep, stamp()-prepStart)
				return fail(perr)
			}
			x.prep.insert(src, parsed)
			stmt = parsed
		}
	} else {
		x.wall.Incr("prep_cache_hits", 1)
		pr.Work(parseCachedWork)
	}
	pr.Exit()
	sp.Stage(obs.StagePrep, stamp()-prepStart)

	execStart := stamp()
	tx = x.e.Txns.Begin()
	ectx := x.e.NewContext(tx)

	pr.Enter(fns.QueryOptimize)
	pr.Work(240 + 90*len(stmt.From) + 30*len(stmt.Where))
	it, into, err := sql.Plan(x.e, ectx, stmt)
	pr.Exit()
	sp.Stage(obs.StageExecute, stamp()-execStart)
	if err != nil {
		return fail(err)
	}

	drainStart := stamp()
	pr.Enter(fns.QueryExecute)
	res, err = x.drain(ctx, ectx, it, into, deadlineAt)
	pr.Exit()
	sp.Stage(obs.StageDrain, stamp()-drainStart)
	if err != nil {
		return fail(err)
	}
	if err := x.e.Txns.Commit(tx); err != nil {
		tx = nil
		return fail(err)
	}
	tx = nil
	// Queries are strictly serial here, so the transient arena rewinds
	// between them — a serving process must not grow simulated memory
	// per request served.
	x.e.Arena.Reset()
	if capturing {
		captureStart := stamp()
		x.capture.commit()
		sp.Stage(obs.StageCapture, stamp()-captureStart)
	}
	return res, nil
}

// drain pulls the plan to exhaustion, enforcing the wall-clock budget
// and cancellation every deadlinePollRows tuples. For SELECT INTO it
// replicates exec.Materialize (same probe brackets) so the stream a
// capture records matches the in-process engine's.
func (x *executor) drain(ctx context.Context, ectx *exec.Context, it exec.Iterator, into *heap.File, deadlineAt units.WallNanos) (*Result, error) {
	if into != nil {
		ectx.Pr.Enter(ectx.Fns.MatNext)
		defer ectx.Pr.Exit()
		ectx.Pr.Work(20)
	}
	if err := it.Open(); err != nil {
		return nil, err
	}
	res := &Result{}
	var n int64
	for {
		if n%deadlinePollRows == 0 {
			if err := ctx.Err(); err != nil {
				it.Close()
				return nil, fmt.Errorf("%w: %v", ErrShutdown, err)
			}
			if deadlineAt > 0 && x.clock() > deadlineAt {
				it.Close()
				return nil, fmt.Errorf("%w after %d rows", ErrDeadline, n)
			}
		}
		t, ok, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if !ok {
			break
		}
		n++
		if into != nil {
			if _, err := into.CreateRec(ectx.Txn, t.Buf); err != nil {
				it.Close()
				return nil, err
			}
			continue
		}
		if len(res.Rows) >= x.maxRows {
			it.Close()
			return nil, fmt.Errorf("%w: result exceeds %d rows", ErrTooLarge, x.maxRows)
		}
		res.Rows = append(res.Rows, stringifyTuple(t))
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	if into != nil {
		res.Materialized = n
	} else {
		res.Cols = colNames(it.Schema())
	}
	return res, nil
}

// colNames flattens a schema into its column-name list.
func colNames(s *catalog.Schema) []string {
	cols := make([]string, s.NumCols())
	for i := range cols {
		cols[i] = s.Col(i).Name
	}
	return cols
}

// stringifyTuple renders one row for the wire. Tuples may alias
// operator state, so the cells are copied out here.
func stringifyTuple(t catalog.Tuple) []string {
	row := make([]string, t.Schema.NumCols())
	for i := range row {
		if t.Schema.Col(i).Type == catalog.Int {
			row[i] = strconv.FormatInt(t.Int(i), 10)
		} else {
			row[i] = t.Str(i)
		}
	}
	return row
}
