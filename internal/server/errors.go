package server

import (
	"errors"
	"fmt"

	"cgp/internal/obs"
)

// Typed serving errors. Each sentinel has a stable wire code so a
// remote client gets the same typed error the in-process caller would:
// errors.Is(err, ErrOverloaded) works on both sides of the socket.
var (
	// ErrOverloaded: admission control shed the query (token bucket
	// empty or inflight limit reached). The request was not executed;
	// the client should back off and retry.
	ErrOverloaded = errors.New("server: overloaded")
	// ErrDeadline: the query exceeded its per-query execution budget
	// and was aborted mid-drain; its transaction rolled back.
	ErrDeadline = errors.New("server: query deadline exceeded")
	// ErrStaleStatement: an Exec referenced a prepared-statement id the
	// cache has since evicted. The client re-prepares and retries.
	ErrStaleStatement = errors.New("server: prepared statement evicted")
	// ErrShutdown: the server is draining; no new queries are accepted.
	ErrShutdown = errors.New("server: shutting down")
	// ErrMalformed: the peer violated the wire protocol (bad frame
	// header, truncated payload, unknown message type). The connection
	// is closed after reporting it.
	ErrMalformed = errors.New("server: malformed frame")
	// ErrTooLarge: a frame or result exceeded its size bound.
	ErrTooLarge = errors.New("server: frame too large")
	// ErrInternal: a statement panicked inside parse/plan/execute. The
	// request died, the process lived; the bug is server-side.
	ErrInternal = errors.New("server: internal")
)

// Wire error codes, one per sentinel plus codeQuery for ordinary
// statement errors (parse/plan/execution failures the client can fix).
const (
	codeInternal   byte = 1
	codeOverloaded byte = 2
	codeDeadline   byte = 3
	codeMalformed  byte = 4
	codeStaleStmt  byte = 5
	codeShutdown   byte = 6
	codeTooLarge   byte = 7
	codeQuery      byte = 8
)

// codeFor maps an execution error to its wire code.
func codeFor(err error) byte {
	switch {
	case errors.Is(err, ErrOverloaded):
		return codeOverloaded
	case errors.Is(err, ErrDeadline):
		return codeDeadline
	case errors.Is(err, ErrStaleStatement):
		return codeStaleStmt
	case errors.Is(err, ErrShutdown):
		return codeShutdown
	case errors.Is(err, ErrTooLarge):
		return codeTooLarge
	case errors.Is(err, ErrMalformed):
		return codeMalformed
	case errors.Is(err, ErrInternal):
		return codeInternal
	}
	return codeQuery
}

// statusFor maps a query's outcome to its span terminal status, so
// chaos outcomes (shed, deadline, panic) are distinguishable in the
// slow-query log and the Perfetto export.
func statusFor(err error) string {
	switch {
	case err == nil:
		return obs.StatusOK
	case errors.Is(err, ErrOverloaded):
		return obs.StatusShed
	case errors.Is(err, ErrDeadline):
		return obs.StatusDeadline
	case errors.Is(err, ErrShutdown):
		return obs.StatusShutdown
	case errors.Is(err, ErrInternal):
		return obs.StatusPanic
	}
	return obs.StatusError
}

// errFromWire rebuilds a typed error from a wire code and message, so
// client-side errors.Is matches the same sentinels the server used.
func errFromWire(code byte, msg string) error {
	var sentinel error
	switch code {
	case codeOverloaded:
		sentinel = ErrOverloaded
	case codeDeadline:
		sentinel = ErrDeadline
	case codeStaleStmt:
		sentinel = ErrStaleStatement
	case codeShutdown:
		sentinel = ErrShutdown
	case codeTooLarge:
		sentinel = ErrTooLarge
	case codeMalformed:
		sentinel = ErrMalformed
	case codeInternal:
		sentinel = ErrInternal
	default:
		return errors.New(msg)
	}
	return fmt.Errorf("%w: %s", sentinel, msg)
}
