package server

import (
	"encoding/binary"
	"fmt"
)

// Payload codecs for the typed messages. Strings and rows are
// uvarint-length-prefixed; the layouts are versionless because the
// frame type byte discriminates them and the protocol ships with the
// binary on both sides.

// Result is one query's answer. A plain SELECT carries Cols/Rows; a
// SELECT INTO carries only Materialized (the rows written to the
// target file stay server-side, as in the in-process engine).
type Result struct {
	Cols         []string
	Rows         [][]string
	Materialized int64
}

// appendString appends one uvarint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// takeString decodes one length-prefixed string, returning the rest.
func takeString(p []byte, bound int) (string, []byte, error) {
	n, used := binary.Uvarint(p)
	if used <= 0 || n > uint64(bound) || n > uint64(len(p)-used) {
		return "", nil, ErrMalformed
	}
	return string(p[used : used+int(n)]), p[used+int(n):], nil
}

// encodeResult appends the wire form of res to buf.
func encodeResult(buf []byte, res *Result) []byte {
	buf = binary.AppendUvarint(buf, uint64(res.Materialized))
	buf = binary.AppendUvarint(buf, uint64(len(res.Cols)))
	for _, c := range res.Cols {
		buf = appendString(buf, c)
	}
	buf = binary.AppendUvarint(buf, uint64(len(res.Rows)))
	for _, row := range res.Rows {
		for _, cell := range row {
			buf = appendString(buf, cell)
		}
	}
	return buf
}

// decodeResult parses a msgResult payload.
func decodeResult(p []byte) (*Result, error) {
	mat, used := binary.Uvarint(p)
	if used <= 0 {
		return nil, ErrMalformed
	}
	p = p[used:]
	ncols, used := binary.Uvarint(p)
	if used <= 0 || ncols > 1<<16 {
		return nil, ErrMalformed
	}
	p = p[used:]
	res := &Result{Materialized: int64(mat)}
	for i := uint64(0); i < ncols; i++ {
		var (
			c   string
			err error
		)
		if c, p, err = takeString(p, maxResponseFrame); err != nil {
			return nil, err
		}
		res.Cols = append(res.Cols, c)
	}
	nrows, used := binary.Uvarint(p)
	if used <= 0 || nrows > maxResponseFrame {
		return nil, ErrMalformed
	}
	p = p[used:]
	for i := uint64(0); i < nrows; i++ {
		row := make([]string, ncols)
		for j := range row {
			var err error
			if row[j], p, err = takeString(p, maxResponseFrame); err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, row)
	}
	if len(p) != 0 {
		return nil, ErrMalformed
	}
	return res, nil
}

// encodeError appends a wire error payload: one code byte + message.
func encodeError(buf []byte, code byte, msg string) []byte {
	buf = append(buf, code)
	return append(buf, msg...)
}

// decodeError parses a msgError payload into a typed error.
func decodeError(p []byte) error {
	if len(p) < 1 {
		return ErrMalformed
	}
	return errFromWire(p[0], string(p[1:]))
}

// traceIDLen is the fixed width of the wire trace-ID prefix carried by
// the traced message types.
const traceIDLen = 8

// appendTraceID appends an 8-byte big-endian trace id.
func appendTraceID(buf []byte, id uint64) []byte {
	return binary.BigEndian.AppendUint64(buf, id)
}

// takeTraceID splits a traced payload into its trace id and the
// wrapped payload. A missing or zero id is a protocol violation: the
// traced message types exist precisely to carry a usable id.
func takeTraceID(p []byte) (uint64, []byte, error) {
	if len(p) < traceIDLen {
		return 0, nil, fmt.Errorf("%w: truncated trace id", ErrMalformed)
	}
	id := binary.BigEndian.Uint64(p)
	if id == 0 {
		return 0, nil, fmt.Errorf("%w: zero trace id", ErrMalformed)
	}
	return id, p[traceIDLen:], nil
}

// encodeStmtID appends a uvarint statement id (msgExec, msgPrepared).
func encodeStmtID(buf []byte, id uint64) []byte {
	return binary.AppendUvarint(buf, id)
}

// decodeStmtID parses a uvarint statement id payload.
func decodeStmtID(p []byte) (uint64, error) {
	id, used := binary.Uvarint(p)
	if used <= 0 || used != len(p) {
		return 0, fmt.Errorf("%w: bad statement id", ErrMalformed)
	}
	return id, nil
}
