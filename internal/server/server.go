// Package server is the hardened serving front-end: a length-prefixed
// wire protocol over TCP (plus an HTTP fallback) in front of the
// instrumented database engine, with connection limits, a
// prepared-statement cache, per-query deadlines, token-bucket
// admission control, and an attachable live trace capture. It turns
// the simulated DBMS from a batch harness into something that serves
// real traffic — and, through LiveCapture, turns that traffic into
// replayable workloads for the prefetching experiments (DESIGN.md
// §16).
package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cgp/internal/db"
	"cgp/internal/obs"
	"cgp/internal/units"
)

// maxSessionSlots bounds the capture session-slot space. Connection
// ids map onto slots modulo this bound, so a long-lived capture stays
// replayable with a fixed tracer pool regardless of how many
// connections came and went.
const maxSessionSlots = 64

// Options configures a Server. Zero values get serving defaults.
type Options struct {
	// Addr is the TCP listen address (use "127.0.0.1:0" in tests).
	Addr string
	// HTTPAddr, when non-empty, also serves the HTTP fallback
	// (/query, /healthz, /metrics) on this address.
	HTTPAddr string

	// MaxConns bounds concurrently served connections; excess accepts
	// are refused with a typed overload error (default 64).
	MaxConns int
	// MaxInflight bounds concurrently admitted queries (default 8).
	MaxInflight int
	// RatePerSec is the token-bucket refill rate; 0 disables rate
	// limiting (the inflight bound still applies).
	RatePerSec float64
	// Burst is the token-bucket capacity (default RatePerSec).
	Burst float64

	// QueryDeadline is the per-query wall-clock budget (default 5s).
	QueryDeadline time.Duration
	// FrameTimeout bounds how long a frame's payload may trickle in
	// after its header arrived — the slow-loris defense (default 10s).
	FrameTimeout time.Duration
	// IdleTimeout bounds the wait for the next request header on an
	// idle connection (default 2m).
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write (default 30s).
	WriteTimeout time.Duration

	// MaxResultRows caps a result set before encoding (default 1<<20).
	MaxResultRows int
	// PrepCap is the prepared-statement cache size (default 256).
	PrepCap int

	// Capture, when non-nil, records served queries at the probe level.
	Capture *LiveCapture
	// Wall and Log receive serving metrics and lifecycle events; both
	// may be nil.
	Wall *obs.WallRegistry
	Log  *obs.RunLog
	// Trace, when non-nil, records per-query stage spans and latency
	// percentiles (DESIGN.md §17). Every query gets a span: tagged
	// clients carry their own trace ID on the wire; untagged queries
	// get a server-minted ID (high bit set) that never enters the
	// capture, so untagged recordings stay byte-identical.
	Trace *obs.QueryTracer
	// Clock overrides the wall clock (tests); default is the host
	// clock.
	Clock func() units.WallNanos
}

func (o *Options) applyDefaults() {
	if o.MaxConns == 0 {
		o.MaxConns = 64
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 8
	}
	if o.QueryDeadline == 0 {
		o.QueryDeadline = 5 * time.Second
	}
	if o.FrameTimeout == 0 {
		o.FrameTimeout = 10 * time.Second
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.MaxResultRows == 0 {
		o.MaxResultRows = 1 << 20
	}
	if o.PrepCap == 0 {
		o.PrepCap = 256
	}
	if o.Clock == nil {
		o.Clock = nowWall
	}
}

// Server serves the wire protocol over one engine.
type Server struct {
	opts Options
	exec *executor
	adm  *admission

	ln      net.Listener
	httpLn  net.Listener
	wg      sync.WaitGroup
	conns   atomic.Int64
	connSeq atomic.Int64
	// traceSeq mints trace IDs for untagged queries. Minted IDs carry
	// the high bit, disjoint from any sane client-minted ID, and are
	// never recorded into the capture.
	traceSeq atomic.Uint64
}

// mintTraceID returns a fresh server-minted trace ID for an untagged
// query: high bit set, sequence in the low bits, never zero.
func (s *Server) mintTraceID() uint64 {
	return 1<<63 | s.traceSeq.Add(1)
}

// New builds a server over e. The engine must not be used concurrently
// by anything else while the server runs.
func New(e *db.Engine, opts Options) *Server {
	opts.applyDefaults()
	return &Server{
		opts: opts,
		exec: &executor{
			e:        e,
			prep:     newPrepCache(opts.PrepCap),
			capture:  opts.Capture,
			clock:    opts.Clock,
			deadline: wallDur(opts.QueryDeadline),
			maxRows:  opts.MaxResultRows,
			wall:     opts.Wall,
		},
		adm: newAdmission(opts.RatePerSec, opts.Burst, opts.MaxInflight, opts.Clock),
	}
}

// workloadTag is the run-log workload field for serving entries.
const workloadTag = "cgpserve"

// Start binds the listeners and begins accepting. It returns
// immediately; cancel ctx to stop, then Wait for connections to
// drain. Listeners are closed through context.AfterFunc, so
// cancellation unblocks Accept and every idle Read.
func (s *Server) Start(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return fmt.Errorf("server: listen: %w", err)
	}
	s.ln = ln
	context.AfterFunc(ctx, func() { ln.Close() })
	s.opts.Log.Emit(obs.ServerStarted, workloadTag, ln.Addr().String(), "")
	if s.opts.HTTPAddr != "" {
		if err := s.startHTTP(ctx); err != nil {
			ln.Close()
			return err
		}
	}
	s.wg.Add(1)
	go s.acceptLoop(ctx)
	return nil
}

// Serve is Start + block until ctx cancels + Wait.
func (s *Server) Serve(ctx context.Context) error {
	if err := s.Start(ctx); err != nil {
		return err
	}
	<-ctx.Done()
	s.Wait()
	return nil
}

// Wait blocks until the accept loops and every connection handler
// have exited (after ctx cancellation closed the listeners).
func (s *Server) Wait() {
	s.wg.Wait()
	addr := ""
	if s.ln != nil {
		addr = s.ln.Addr().String()
	}
	s.opts.Log.Emit(obs.ServerStopped, workloadTag, addr, "")
}

// Addr returns the bound TCP address (after Start).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// HTTPAddr returns the bound HTTP address, or "".
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

func (s *Server) acceptLoop(ctx context.Context) {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			// The listener is closed (shutdown) or broken; either way
			// this loop is done — conn handlers drain on their own.
			return
		}
		id := s.connSeq.Add(1)
		if s.conns.Add(1) > int64(s.opts.MaxConns) {
			s.conns.Add(-1)
			s.opts.Wall.Incr("conns_refused", 1)
			s.refuse(conn)
			continue
		}
		s.wg.Add(1)
		go s.handleConn(ctx, conn, id)
	}
}

// refuse sends a best-effort overload error and closes: a refused
// client learns why instead of seeing a bare RST.
func (s *Server) refuse(conn net.Conn) {
	conn.SetWriteDeadline(ioDeadline(s.opts.WriteTimeout))
	conn.Write(errorFrame(codeOverloaded, "connection limit reached"))
	conn.Close()
}

// errorFrame builds a complete msgError frame.
func errorFrame(code byte, msg string) []byte {
	buf := make([]byte, frameHeaderLen, frameHeaderLen+1+len(msg))
	buf = encodeError(buf, code, msg)
	putFrameHeader(buf[:frameHeaderLen], msgError, len(buf)-frameHeaderLen)
	return buf
}

// handleConn serves one connection until EOF, protocol violation,
// timeout or shutdown. All I/O is deadline-bounded, so no client —
// slow, dead, or malicious — can pin the handler forever.
func (s *Server) handleConn(ctx context.Context, conn net.Conn, id int64) {
	defer s.wg.Done()
	defer s.conns.Add(-1)
	defer conn.Close()
	// Shutdown unblocks any in-progress Read by closing the conn; the
	// returned stop releases the callback once the handler exits on
	// its own.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	connTag := fmt.Sprintf("conn-%d", id)
	s.opts.Log.Emit(obs.ConnOpened, workloadTag, connTag, conn.RemoteAddr().String())
	defer s.opts.Log.Emit(obs.ConnClosed, workloadTag, connTag, "")
	s.opts.Wall.Incr("conns_opened", 1)

	session := int32(id % maxSessionSlots)
	// ct buffers the connection's finished spans; Close on every exit
	// path flushes them to the tracer (terminal spans survive mid-query
	// disconnects and protocol violations).
	ct := s.opts.Trace.Conn()
	defer ct.Close()
	traced := s.opts.Trace != nil
	br := bufio.NewReaderSize(conn, 32<<10)
	hdr := make([]byte, frameHeaderLen)
	var payload []byte
	for {
		if ctx.Err() != nil {
			s.writeFrame(conn, errorFrame(codeShutdown, "server shutting down"))
			return
		}
		conn.SetReadDeadline(ioDeadline(s.opts.IdleTimeout))
		if _, err := io.ReadFull(br, hdr); err != nil {
			return // clean EOF, client death, or idle timeout
		}
		// The decode stage spans the payload read (after the header
		// arrived — idle wait is not decode time) through frame parsing
		// in handleMsg.
		var decStart units.WallNanos
		if traced {
			decStart = s.opts.Clock()
		}
		typ, n, err := parseFrameHeader(hdr, maxRequestFrame)
		if err != nil {
			// Protocol violation: report and hang up. The stream is
			// unsynchronized past this point, so serving on is unsafe.
			s.opts.Wall.Incr("frames_malformed", 1)
			s.writeFrame(conn, errorFrame(codeFor(err), err.Error()))
			return
		}
		// Slow-loris defense: the header promised n bytes; they must
		// arrive within FrameTimeout, not at one byte per minute.
		conn.SetReadDeadline(ioDeadline(s.opts.FrameTimeout))
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			s.opts.Wall.Incr("frames_timeout", 1)
			return
		}
		if typ == msgBye {
			return
		}
		var decode units.WallNanos
		if traced {
			decode = s.opts.Clock() - decStart
		}
		resp, fatal := s.handleMsg(ctx, session, connTag, typ, payload, ct, decode)
		if !s.writeFrame(conn, resp) {
			return
		}
		if fatal {
			return
		}
	}
}

// writeFrame writes one deadline-bounded response frame.
func (s *Server) writeFrame(conn net.Conn, frame []byte) bool {
	conn.SetWriteDeadline(ioDeadline(s.opts.WriteTimeout))
	_, err := conn.Write(frame)
	return err == nil
}

// handleMsg dispatches one request frame and returns the encoded
// response plus whether the connection must close (protocol
// violations). Queries pass admission control first; shed queries
// never touch the engine.
//
// The traced message types split off their 8-byte trace-ID prefix
// here; plain types get a server-minted ID (when tracing is on) with
// tag 0, so only client-carried IDs reach the capture.
func (s *Server) handleMsg(ctx context.Context, session int32, connTag string, typ byte, payload []byte, ct *obs.ConnTrace, decode units.WallNanos) (resp []byte, fatal bool) {
	var tag uint64
	tagged := false
	switch typ {
	case msgQueryTraced, msgExecTraced:
		id, rest, err := takeTraceID(payload)
		if err != nil {
			s.opts.Wall.Incr("frames_malformed", 1)
			return errorFrame(codeMalformed, err.Error()), true
		}
		tag, tagged, payload = id, true, rest
		if typ == msgQueryTraced {
			typ = msgQuery
		} else {
			typ = msgExec
		}
	}
	switch typ {
	case msgQuery:
		sp := s.beginSpan(ct, tag, tagged, connTag, decode)
		return s.serveQuery(ctx, session, connTag, sp, func() (*Result, error) {
			return s.exec.query(ctx, session, string(payload), tag, sp)
		}), false
	case msgExec:
		id, err := decodeStmtID(payload)
		if err != nil {
			return errorFrame(codeMalformed, err.Error()), true
		}
		sp := s.beginSpan(ct, tag, tagged, connTag, decode)
		return s.serveQuery(ctx, session, connTag, sp, func() (*Result, error) {
			return s.exec.execPrepared(ctx, session, id, tag, sp)
		}), false
	case msgPrepare:
		id, err := s.exec.prepare(string(payload))
		if err != nil {
			return errorFrame(codeQuery, err.Error()), false
		}
		buf := make([]byte, frameHeaderLen, frameHeaderLen+8)
		buf = encodeStmtID(buf, id)
		putFrameHeader(buf[:frameHeaderLen], msgPrepared, len(buf)-frameHeaderLen)
		return buf, false
	default:
		s.opts.Wall.Incr("frames_malformed", 1)
		return errorFrame(codeMalformed, fmt.Sprintf("unknown message type %q", typ)), true
	}
}

// beginSpan opens a query span (nil when tracing is off), minting a
// server-side trace ID for untagged queries, and books the already-
// measured decode stage.
func (s *Server) beginSpan(ct *obs.ConnTrace, tag uint64, tagged bool, connTag string, decode units.WallNanos) *obs.QuerySpan {
	if s.opts.Trace == nil {
		return nil
	}
	id := tag
	if !tagged {
		id = s.mintTraceID()
	}
	sp := s.opts.Trace.Begin(ct, id, connTag, tagged)
	sp.Stage(obs.StageDecode, decode)
	return sp
}

// serveQuery wraps one query execution in admission control, latency
// accounting and span closing: every query that reached dispatch ends
// its span with a terminal status, whatever path it dies on.
func (s *Server) serveQuery(ctx context.Context, session int32, connTag string, sp *obs.QuerySpan, run func() (*Result, error)) []byte {
	if ctx.Err() != nil {
		sp.End(obs.StatusShutdown)
		return errorFrame(codeShutdown, "server shutting down")
	}
	var admStart units.WallNanos
	if sp != nil {
		admStart = s.opts.Clock()
	}
	err := s.adm.admit()
	if sp != nil {
		sp.Stage(obs.StageAdmission, s.opts.Clock()-admStart)
	}
	if err != nil {
		s.opts.Wall.Incr("queries_shed", 1)
		s.opts.Log.Emit(obs.QueryShed, workloadTag, connTag, err.Error())
		sp.End(obs.StatusShed)
		return errorFrame(codeOverloaded, err.Error())
	}
	defer s.adm.release()
	start := s.opts.Clock()
	res, err := run()
	s.opts.Wall.Observe("query_latency", s.opts.Clock()-start)
	sp.End(statusFor(err))
	if err != nil {
		s.opts.Wall.Incr("queries_failed", 1)
		return errorFrame(codeFor(err), err.Error())
	}
	s.opts.Wall.Incr("queries_served", 1)
	s.opts.Log.Emit(obs.QueryServed, workloadTag, connTag, "")
	buf := make([]byte, frameHeaderLen, 4096)
	buf = encodeResult(buf, res)
	if len(buf)-frameHeaderLen > maxResponseFrame {
		return errorFrame(codeTooLarge, "result frame exceeds response bound")
	}
	putFrameHeader(buf[:frameHeaderLen], msgResult, len(buf)-frameHeaderLen)
	return buf
}
