package server

import (
	"bytes"
	"testing"

	"cgp/internal/db"
	"cgp/internal/program"
	"cgp/internal/trace"
)

func TestLiveCaptureRecordsServedQueries(t *testing.T) {
	leakCheck(t)
	lc := NewLiveCapture(CaptureOptions{SampleEvery: 1})
	s := startServer(t, testEngine(t), Options{Capture: lc})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT COUNT(*) AS n FROM big1",
		"SELECT unique1 FROM big1 WHERE unique2 BETWEEN 3 AND 40",
		"SELECT two, COUNT(*) AS n FROM big1 GROUP BY two",
		"SELECT unique1 INTO TMP FROM big1 WHERE unique2 < 20",
	}
	for _, q := range queries {
		if _, err := c.Query(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	// A failed statement must NOT enter the capture.
	if _, err := c.Query("SELECT x FROM nope"); err == nil {
		t.Fatal("bad query succeeded")
	}
	c.Close()

	var file bytes.Buffer
	rec, err := lc.Seal(&file)
	if err != nil {
		t.Fatal(err)
	}
	if got := lc.Committed(); got != int64(len(queries)) {
		t.Fatalf("committed %d batches, want %d", got, len(queries))
	}
	if lc.Drops() != 0 || lc.Overflows() != 0 {
		t.Fatalf("unexpected loss: drops=%d overflows=%d", lc.Drops(), lc.Overflows())
	}
	if !trace.IsProbeRecording(rec) {
		t.Fatalf("capture is not a probe recording: %+v", rec.Stats)
	}

	// The sealed container loads back and replays byte-identically.
	loaded, err := trace.Load(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := db.BuildRegistry()
	img := program.LayoutO5(reg)
	replayOnce := func() []byte {
		out := trace.NewRecorder()
		if err := trace.ReplayProbe(loaded, img, out, 42); err != nil {
			t.Fatal(err)
		}
		r, err := out.Finish()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first, second := replayOnce(), replayOnce()
	if len(first) == 0 {
		t.Fatal("replay produced no events")
	}
	if !bytes.Equal(first, second) {
		t.Fatal("probe replay is not byte-identical across runs")
	}
}

func TestCaptureOverflowDropsWholeBatch(t *testing.T) {
	lc := NewLiveCapture(CaptureOptions{MaxBatchEvents: 8})
	sink := lc.begin(1, 0)
	for i := 0; i < 20; i++ {
		sink.Enter(program.FuncID(i % 3))
		sink.Work(5)
	}
	lc.commit()
	if lc.Overflows() != 1 {
		t.Fatalf("overflows = %d, want 1", lc.Overflows())
	}
	rec, err := lc.Seal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Events() != 0 {
		t.Fatalf("overflowed batch leaked %d events into the recording", rec.Events())
	}
}

func TestCaptureUnbalancedBatchDiscarded(t *testing.T) {
	lc := NewLiveCapture(CaptureOptions{})
	sink := lc.begin(0, 0)
	sink.Exit() // exit at depth zero: malformed
	sink.Enter(1)
	lc.commit()
	if lc.Overflows() != 1 {
		t.Fatalf("overflows = %d, want 1", lc.Overflows())
	}
	rec, err := lc.Seal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Events() != 0 {
		t.Fatalf("malformed batch leaked %d events", rec.Events())
	}
}

func TestCaptureRingBackpressureDrops(t *testing.T) {
	// Build the capture by hand with no drainer: the ring fills and the
	// second commit must drop without blocking.
	lc := &LiveCapture{
		opts:    CaptureOptions{SampleEvery: 1, MaxBatchEvents: 1 << 10},
		rec:     trace.NewRecorder(),
		batches: make(chan []trace.Event, 1),
		free:    make(chan []trace.Event, 2),
		done:    make(chan struct{}),
	}
	lc.sink.max = 1 << 10
	for i := 0; i < 3; i++ {
		sink := lc.begin(0, 0)
		sink.Enter(1)
		sink.Work(1)
		sink.Exit()
		lc.commit()
	}
	if lc.Drops() != 2 {
		t.Fatalf("drops = %d, want 2 (ring holds 1 of 3)", lc.Drops())
	}
	// Drain and seal manually (no drainer goroutine in this test).
	go lc.drain()
	rec, err := lc.Seal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if lc.Committed() != 1 {
		t.Fatalf("committed = %d, want 1", lc.Committed())
	}
	if !trace.IsProbeRecording(rec) {
		t.Fatal("recording with drops is no longer well-formed")
	}
}

func TestCaptureSamplesQueries(t *testing.T) {
	leakCheck(t)
	lc := NewLiveCapture(CaptureOptions{SampleEvery: 4})
	s := startServer(t, testEngine(t), Options{Capture: lc})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := c.Query("SELECT COUNT(*) AS n FROM big1"); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	rec, err := lc.Seal(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Queries 0 and 4 are recorded, the other six run detached.
	if lc.Committed() != 2 || lc.Skipped() != 6 {
		t.Fatalf("committed=%d skipped=%d, want 2/6", lc.Committed(), lc.Skipped())
	}
	if lc.Drops() != 0 || lc.Overflows() != 0 {
		t.Fatalf("unexpected loss: drops=%d overflows=%d", lc.Drops(), lc.Overflows())
	}
	if !trace.IsProbeRecording(rec) || rec.Stats.Switches != 2 {
		t.Fatalf("sampled recording malformed: %+v", rec.Stats)
	}
}

func TestSealTwiceFails(t *testing.T) {
	lc := NewLiveCapture(CaptureOptions{})
	if _, err := lc.Seal(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := lc.Seal(nil); err == nil {
		t.Fatal("second Seal succeeded")
	}
}
