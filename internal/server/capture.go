package server

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"cgp/internal/isa"
	"cgp/internal/obs"
	"cgp/internal/program"
	"cgp/internal/trace"
)

// LiveCapture records served traffic at the probe level (the
// Enter/Exit/Work/Data call sequence, session-tagged with KindSwitch)
// into a trace.Recorder, producing a sealed recording that replays as
// the "captured" workload.
//
// Backpressure policy: the query path NEVER blocks on the capture. A
// query's events accumulate in a private batch; at commit the whole
// balanced batch is handed to a bounded ring. If the ring is full the
// batch is dropped and counted — losing a query from the capture is
// acceptable, slowing the server is not. Dropping whole batches (not
// individual events) keeps the recording well-formed: every committed
// batch is a balanced Enter/Exit tree, so a capture with drops still
// replays cleanly, it just contains fewer queries.
//
// Overhead policy: the engine emits thousands of probe events per
// query, so recording every query costs a multiple of the query's own
// execution time — fine for scripted captures, unacceptable for a
// probe that stays attached to a production server (the serving-side
// bar from the AMC study: probes must not meaningfully slow the host).
// The default therefore samples at the query granularity: one query in
// SampleEvery is recorded completely (a whole balanced batch, so the
// captured queries replay with full fidelity), the rest skip the sink
// entirely and run at detached speed. Deterministic counter-based
// selection, not random — the capture domain is deterministic.
type CaptureOptions struct {
	// SampleEvery records every Nth query (default 64; the first query
	// is always recorded). 1 captures every query — scripted-session
	// tests and cgpserve's explicit recording runs want that; a
	// long-lived serving process does not (see the overhead policy
	// above and the capture-overhead guard in BENCH_server.json).
	SampleEvery int
	// MaxBatchEvents caps one query's event count (default 1<<17). A
	// query that overflows is dropped from the capture (and counted),
	// not truncated — truncation would unbalance the call tree.
	MaxBatchEvents int
	// RingBatches is the hand-off ring's capacity in query batches
	// (default 256).
	RingBatches int
	// Wall receives drop/commit counters; Log receives drop events.
	// Both may be nil.
	Wall *obs.WallRegistry
	Log  *obs.RunLog
}

// LiveCapture is safe for one producer (the executor serializes engine
// access, so probe callbacks are single-threaded) plus one internal
// drainer; Seal may be called from any goroutine once serving stopped.
type LiveCapture struct {
	opts CaptureOptions
	rec  *trace.Recorder
	sink captureSink
	seq  int64 // queries seen; producer-side only (under the executor lock)

	mu      sync.Mutex // orders commit-sends against Seal's close
	sealed  bool
	batches chan []trace.Event
	free    chan []trace.Event
	done    chan struct{}

	committed atomic.Int64
	drops     atomic.Int64
	overflows atomic.Int64
	skipped   atomic.Int64
}

// NewLiveCapture builds a capture and starts its drainer goroutine.
// Seal must be called exactly once to stop it and obtain the recording.
func NewLiveCapture(opts CaptureOptions) *LiveCapture {
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 64
	}
	if opts.MaxBatchEvents <= 0 {
		opts.MaxBatchEvents = 1 << 17
	}
	if opts.RingBatches <= 0 {
		opts.RingBatches = 256
	}
	lc := &LiveCapture{
		opts:    opts,
		rec:     trace.NewRecorder(),
		batches: make(chan []trace.Event, opts.RingBatches),
		free:    make(chan []trace.Event, opts.RingBatches+1),
		done:    make(chan struct{}),
	}
	lc.sink.max = opts.MaxBatchEvents
	go lc.drain()
	return lc
}

// drain moves committed batches into the recorder. It owns the
// recorder exclusively until the batches channel closes.
func (lc *LiveCapture) drain() {
	defer close(lc.done)
	for buf := range lc.batches {
		for i := range buf {
			lc.rec.Event(buf[i])
		}
		lc.committed.Add(1)
		lc.recycle(buf)
	}
}

// getBuf reuses a drained batch buffer or allocates a fresh one.
func (lc *LiveCapture) getBuf() []trace.Event {
	select {
	case buf := <-lc.free:
		return buf[:0]
	default:
		return make([]trace.Event, 0, 1024)
	}
}

func (lc *LiveCapture) recycle(buf []trace.Event) {
	select {
	case lc.free <- buf[:0]:
	default:
	}
}

// begin starts capturing one query on the given session slot and
// returns the probe sink to attach, or nil when the sampler skips this
// query (the caller then leaves the probe detached and must not call
// commit/abort). The executor lock makes begin / commit / abort
// single-threaded.
//
// tag is the query's wire-carried trace ID, or 0 for untagged traffic.
// A nonzero tag is recorded as a KindQueryTag event right after the
// batch's KindSwitch, keying the batch to the serving-side span with
// the same ID. Untagged queries append nothing — a capture of untagged
// traffic stays byte-identical to one taken before tracing existed.
// Server-minted IDs never reach here: only the client's own tag earns
// a place in the recording.
func (lc *LiveCapture) begin(session int32, tag uint64) *captureSink {
	seq := lc.seq
	lc.seq++
	if seq%int64(lc.opts.SampleEvery) != 0 {
		lc.skipped.Add(1)
		lc.opts.Wall.Incr("capture_skipped_queries", 1)
		return nil
	}
	s := &lc.sink
	s.buf = append(lc.getBuf(), trace.Event{Kind: trace.KindSwitch, N: session})
	if tag != 0 {
		s.buf = append(s.buf, trace.Event{Kind: trace.KindQueryTag, Addr: isa.Addr(tag)})
	}
	s.session = session
	s.base = len(s.buf)
	s.depth = 0
	s.bad = false
	return s
}

// commit seals the current query's batch into the ring, or drops it:
// an unbalanced or overflowed batch is malformed (counted as
// overflow), a full ring means backpressure (counted as drop). Either
// way the query path continues immediately.
func (lc *LiveCapture) commit() {
	s := &lc.sink
	buf := s.buf
	s.buf = nil
	if s.bad || s.depth != 0 || len(buf) <= s.base {
		lc.overflows.Add(1)
		lc.opts.Wall.Incr("capture_overflow_batches", 1)
		lc.recycle(buf)
		return
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.sealed {
		lc.recycle(buf)
		return
	}
	select {
	case lc.batches <- buf:
	default:
		lc.drops.Add(1)
		lc.opts.Wall.Incr("capture_dropped_batches", 1)
		lc.opts.Log.Emit(obs.CaptureDropped, "capture", fmt.Sprintf("session-%d", s.session), "ring full")
		lc.recycle(buf)
	}
}

// abort discards the current query's batch (the query failed or was
// shed after begin).
func (lc *LiveCapture) abort() {
	s := &lc.sink
	buf := s.buf
	s.buf = nil
	lc.recycle(buf)
}

// Seal stops the drainer, finalizes the recording (CRC-framed like
// every trace artifact) and, when w is non-nil, writes the container
// to w. It must be called after serving has stopped; at most once.
func (lc *LiveCapture) Seal(w io.Writer) (*trace.Recording, error) {
	lc.mu.Lock()
	if lc.sealed {
		lc.mu.Unlock()
		return nil, fmt.Errorf("server: capture already sealed")
	}
	lc.sealed = true
	close(lc.batches)
	lc.mu.Unlock()
	<-lc.done
	rec, err := lc.rec.Finish()
	if err != nil {
		return nil, fmt.Errorf("server: sealing capture: %w", err)
	}
	if w != nil {
		if _, err := rec.WriteTo(w); err != nil {
			return nil, fmt.Errorf("server: writing capture: %w", err)
		}
	}
	lc.opts.Log.Emit(obs.CaptureSealed, "capture", "seal",
		fmt.Sprintf("%d queries, %d events, %d dropped", lc.committed.Load(), rec.Events(), lc.drops.Load()))
	return rec, nil
}

// Committed returns the number of query batches recorded so far.
func (lc *LiveCapture) Committed() int64 { return lc.committed.Load() }

// Drops returns the number of batches lost to ring backpressure.
func (lc *LiveCapture) Drops() int64 { return lc.drops.Load() }

// Overflows returns the number of batches dropped as malformed or
// over the per-query event cap.
func (lc *LiveCapture) Overflows() int64 { return lc.overflows.Load() }

// Skipped returns the number of queries the sampler left unrecorded
// (they ran at detached speed; see CaptureOptions.SampleEvery).
func (lc *LiveCapture) Skipped() int64 { return lc.skipped.Load() }

// captureSink is the probe.Sink that records one query's call
// sequence. It validates as it goes: an overflowing or unbalanced
// stream flips bad and the batch is discarded at commit — a malformed
// batch must never reach the recording.
type captureSink struct {
	buf     []trace.Event
	session int32
	// base is the header length (switch + optional query tag): a batch
	// that gained no probe events past it is empty and dropped.
	base  int
	depth int
	max   int
	bad   bool
}

// Enter implements probe.Sink.
func (s *captureSink) Enter(fn program.FuncID) {
	if s.bad {
		return
	}
	if len(s.buf) >= s.max {
		s.bad = true
		return
	}
	s.buf = append(s.buf, trace.Event{Kind: trace.KindProbeEnter, Fn: fn})
	s.depth++
}

// Exit implements probe.Sink.
func (s *captureSink) Exit() {
	if s.bad {
		return
	}
	if s.depth == 0 || len(s.buf) >= s.max {
		s.bad = true
		return
	}
	s.buf = append(s.buf, trace.Event{Kind: trace.KindProbeExit})
	s.depth--
}

// Work implements probe.Sink.
func (s *captureSink) Work(n int) {
	if s.bad {
		return
	}
	if s.depth == 0 || len(s.buf) >= s.max {
		s.bad = true
		return
	}
	s.buf = append(s.buf, trace.Event{Kind: trace.KindProbeWork, N: int32(n)})
}

// Data implements probe.Sink.
func (s *captureSink) Data(addr isa.Addr, n int, write bool) {
	if s.bad {
		return
	}
	if s.depth == 0 || len(s.buf) >= s.max {
		s.bad = true
		return
	}
	s.buf = append(s.buf, trace.Event{Kind: trace.KindProbeData, Addr: addr, N: int32(n), Taken: write})
}
