package server

import (
	"container/list"
	"fmt"

	"cgp/internal/db/sql"
)

// prepCache is the prepared-statement cache: a bounded LRU of parsed
// statements keyed both by id (explicit Prepare/Exec) and by SQL text
// (so repeated plain queries skip the parser too). Eviction
// invalidates ids; an Exec against an evicted id gets the typed
// ErrStaleStatement and the client re-prepares — the cache never grows
// without bound no matter how many distinct statements clients send.
type prepCache struct {
	max    int
	byID   map[uint64]*prepEntry
	byText map[string]*prepEntry
	lru    *list.List // front = most recently used; values are *prepEntry
	nextID uint64
}

type prepEntry struct {
	id   uint64
	text string
	stmt *sql.SelectStmt
	elem *list.Element
}

func newPrepCache(max int) *prepCache {
	return &prepCache{
		max:    max,
		byID:   make(map[uint64]*prepEntry),
		byText: make(map[string]*prepEntry),
		lru:    list.New(),
	}
}

// lookupText returns the cached parse of src, if any, refreshing its
// LRU position. The caller holds the executor lock.
func (c *prepCache) lookupText(src string) *sql.SelectStmt {
	e, ok := c.byText[src]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(e.elem)
	return e.stmt
}

// lookupID returns the statement for an explicit handle, or the typed
// stale error after eviction.
func (c *prepCache) lookupID(id uint64) (*prepEntry, error) {
	e, ok := c.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrStaleStatement, id)
	}
	c.lru.MoveToFront(e.elem)
	return e, nil
}

// insert caches a parsed statement, evicting the least recently used
// entry when full, and returns its handle id. If the text is already
// cached, the existing entry is reused (Prepare is idempotent).
func (c *prepCache) insert(src string, stmt *sql.SelectStmt) uint64 {
	if e, ok := c.byText[src]; ok {
		c.lru.MoveToFront(e.elem)
		return e.id
	}
	c.nextID++
	e := &prepEntry{id: c.nextID, text: src, stmt: stmt}
	e.elem = c.lru.PushFront(e)
	c.byID[e.id] = e
	c.byText[src] = e
	for c.lru.Len() > c.max {
		old := c.lru.Remove(c.lru.Back()).(*prepEntry)
		delete(c.byID, old.id)
		delete(c.byText, old.text)
	}
	return e.id
}

// len reports the number of cached statements.
func (c *prepCache) len() int { return c.lru.Len() }
