package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"

	"cgp/internal/obs"
	"cgp/internal/trace"
)

// The query-tracing suite: wire propagation of trace IDs into spans
// and captures, byte-identity of untagged captures with tracing on,
// and chaos paths (disconnect, shed, panic) still producing terminal
// spans with the right status — all without goroutine or span-buffer
// leaks.

// startTracedServer builds a server with a fresh tracer and returns
// both plus a shutdown func that drains the server (so every ConnTrace
// has flushed) before the caller inspects spans. Shutdown is
// idempotent and also registered as a cleanup.
func startTracedServer(t *testing.T, opts Options) (*Server, *obs.QueryTracer, func()) {
	t.Helper()
	if opts.Trace == nil {
		opts.Trace = obs.NewQueryTracer(obs.QueryTraceOptions{})
	}
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	s := New(testEngine(t), opts)
	ctx, cancel := context.WithCancel(context.Background())
	if err := s.Start(ctx); err != nil {
		cancel()
		t.Fatal(err)
	}
	var once sync.Once
	shutdown := func() {
		once.Do(func() {
			cancel()
			s.Wait()
		})
	}
	t.Cleanup(shutdown)
	return s, opts.Trace, shutdown
}

// spansByID indexes finished spans by trace ID.
func spansByID(tr *obs.QueryTracer) map[uint64]obs.QuerySpanData {
	out := map[uint64]obs.QuerySpanData{}
	for _, sp := range tr.Spans() {
		out[sp.ID] = sp
	}
	return out
}

func TestTracePropagationTCP(t *testing.T) {
	leakCheck(t)
	lc := NewLiveCapture(CaptureOptions{SampleEvery: 1})
	s, tr, shutdown := startTracedServer(t, Options{Capture: lc})

	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	const base = uint64(7) << 32
	c.SetTraceBase(base)
	queries := []string{
		"SELECT COUNT(*) AS n FROM big1",
		"SELECT unique1 FROM big1 WHERE unique2 BETWEEN 3 AND 40",
		"SELECT two, COUNT(*) AS n FROM big1 GROUP BY two",
	}
	for i, q := range queries {
		if _, err := c.Query(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if got, want := c.LastTraceID(), base+uint64(i)+1; got != want {
			t.Fatalf("query %d trace ID = %#x, want %#x", i, got, want)
		}
	}
	// A prepared statement's Exec is traced like a direct query.
	st, err := c.Prepare("SELECT COUNT(*) AS n FROM small")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(); err != nil {
		t.Fatal(err)
	}
	execID := c.LastTraceID()
	c.Close()
	shutdown()

	want := map[uint64]bool{execID: true}
	for i := range queries {
		want[base+uint64(i)+1] = true
	}
	spans := spansByID(tr)
	for id := range want {
		sp, ok := spans[id]
		if !ok {
			t.Fatalf("no span for trace ID %016x (have %d spans)", id, len(spans))
		}
		if !sp.Tagged || sp.Status != obs.StatusOK {
			t.Fatalf("span %016x = tagged=%v status=%q, want tagged ok", id, sp.Tagged, sp.Status)
		}
		if sp.Total <= 0 {
			t.Fatalf("span %016x has non-positive total %d", id, sp.Total)
		}
		if sp.Stages[obs.StageDrain] <= 0 {
			t.Fatalf("span %016x drain stage = %d, want > 0", id, sp.Stages[obs.StageDrain])
		}
		if !strings.HasPrefix(sp.Conn, "conn-") {
			t.Fatalf("span %016x conn = %q", id, sp.Conn)
		}
	}

	// The sealed capture carries exactly the client's tags.
	rec, err := lc.Seal(nil)
	if err != nil {
		t.Fatal(err)
	}
	gotTags := map[uint64]bool{}
	if err := rec.Replay(trace.ConsumerFunc(func(ev trace.Event) {
		if ev.Kind == trace.KindQueryTag {
			gotTags[uint64(ev.Addr)] = true
		}
	})); err != nil {
		t.Fatal(err)
	}
	if len(gotTags) != len(want) {
		t.Fatalf("capture carries %d distinct tags, want %d", len(gotTags), len(want))
	}
	for id := range want {
		if !gotTags[id] {
			t.Fatalf("capture missing tag %016x", id)
		}
	}
}

// TestTraceUntaggedByteIdentity: with no tagged client connected, a
// capture sealed by a tracing server is byte-identical to one sealed
// by a trace-free server — server-minted span IDs must never perturb
// the deterministic artifact.
func TestTraceUntaggedByteIdentity(t *testing.T) {
	leakCheck(t)
	queries := []string{
		"SELECT COUNT(*) AS n FROM big1",
		"SELECT unique1 FROM big1 WHERE unique2 BETWEEN 3 AND 40",
		"SELECT two, COUNT(*) AS n FROM big1 GROUP BY two",
		"SELECT unique1 INTO TMP FROM big1 WHERE unique2 < 20",
	}
	capture := func(traced bool) []byte {
		lc := NewLiveCapture(CaptureOptions{SampleEvery: 1})
		opts := Options{Addr: "127.0.0.1:0", Capture: lc}
		if traced {
			opts.Trace = obs.NewQueryTracer(obs.QueryTraceOptions{})
		}
		s := New(testEngine(t), opts)
		ctx, cancel := context.WithCancel(context.Background())
		if err := s.Start(ctx); err != nil {
			cancel()
			t.Fatal(err)
		}
		c, err := Dial(s.Addr())
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		for _, q := range queries {
			if _, err := c.Query(q); err != nil {
				t.Fatalf("%s: %v", q, err)
			}
		}
		c.Close()
		cancel()
		s.Wait()
		var buf bytes.Buffer
		if _, err := lc.Seal(&buf); err != nil {
			t.Fatal(err)
		}
		if traced && opts.Trace.Traced() != int64(len(queries)) {
			t.Fatalf("traced server recorded %d spans, want %d", opts.Trace.Traced(), len(queries))
		}
		return buf.Bytes()
	}
	plain, traced := capture(false), capture(true)
	if len(plain) == 0 {
		t.Fatal("capture produced no bytes")
	}
	if !bytes.Equal(plain, traced) {
		t.Fatalf("untagged capture differs with tracing on: %d vs %d bytes", len(plain), len(traced))
	}
}

// TestTraceDisconnectFlushesSpans: a client that sends a query and
// hangs up before reading the response still gets its span flushed
// (connection teardown closes the ConnTrace); a half-sent frame whose
// decode never finished must produce no span at all.
func TestTraceDisconnectFlushesSpans(t *testing.T) {
	leakCheck(t)
	s, tr, shutdown := startTracedServer(t, Options{})

	raw, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	const id = uint64(0xabc)
	q := "SELECT COUNT(*) AS n FROM big1"
	frame := make([]byte, 0, frameHeaderLen+traceIDLen+len(q))
	frame = append(frame, 0, 0, 0, 0, 0)
	frame = appendTraceID(frame, id)
	frame = append(frame, q...)
	putFrameHeader(frame[:frameHeaderLen], msgQueryTraced, traceIDLen+len(q))
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	// Hang up without reading the result.
	raw.Close()

	// Header promising bytes that never arrive.
	raw2, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var hdr [frameHeaderLen]byte
	putFrameHeader(hdr[:], msgQueryTraced, traceIDLen+20)
	raw2.Write(hdr[:])
	raw2.Close()

	shutdown()
	spans := spansByID(tr)
	sp, ok := spans[id]
	if !ok {
		t.Fatalf("disconnected client's span %016x never flushed (have %d spans)", id, len(spans))
	}
	if !obs.KnownQueryStatuses[sp.Status] {
		t.Fatalf("span %016x has unknown status %q", id, sp.Status)
	}
	if len(spans) != 1 {
		t.Fatalf("half-sent frame produced a span: have %d spans, want 1", len(spans))
	}
}

// TestTraceShedSpans: queries refused by admission control end their
// spans with StatusShed, and the span stream agrees with the
// client-visible outcome tally.
func TestTraceShedSpans(t *testing.T) {
	leakCheck(t)
	s, tr, shutdown := startTracedServer(t, Options{MaxInflight: 1})

	const clients, perClient = 6, 8
	var (
		mu           sync.Mutex
		served, shed int
		unexpected   []error
	)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				mu.Lock()
				unexpected = append(unexpected, err)
				mu.Unlock()
				return
			}
			defer c.Close()
			c.SetTraceBase(uint64(id+1) << 32)
			for j := 0; j < perClient; j++ {
				_, err := c.Query("SELECT COUNT(*) AS n FROM big1 WHERE two = 0")
				mu.Lock()
				switch {
				case err == nil:
					served++
				case errors.Is(err, ErrOverloaded):
					shed++
				default:
					unexpected = append(unexpected, err)
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	shutdown()
	if len(unexpected) > 0 {
		t.Fatalf("non-overload failures: %v", unexpected)
	}
	var okSpans, shedSpans int
	for _, sp := range tr.Spans() {
		switch sp.Status {
		case obs.StatusOK:
			okSpans++
		case obs.StatusShed:
			shedSpans++
		default:
			t.Fatalf("span %016x has status %q, want ok or shed", sp.ID, sp.Status)
		}
	}
	if okSpans != served || shedSpans != shed {
		t.Fatalf("spans ok=%d shed=%d, clients saw ok=%d shed=%d", okSpans, shedSpans, served, shed)
	}
	if tr.Traced() != int64(clients*perClient) {
		t.Fatalf("traced %d spans, want %d", tr.Traced(), clients*perClient)
	}
}

// TestTracePanicSpan: a statement that panics inside the engine is
// isolated to its request AND leaves a span with StatusPanic — the
// trace must show what the process survived.
func TestTracePanicSpan(t *testing.T) {
	leakCheck(t)
	const poison = "SELECT COUNT(*) AS n FROM big1 WHERE ten = 9"
	testHookRun = func(src string) {
		if src == poison {
			panic("injected statement panic")
		}
	}
	defer func() { testHookRun = nil }()

	s, tr, shutdown := startTracedServer(t, Options{})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.SetTraceBase(0x100)
	if _, err := c.Query(poison); !errors.Is(err, ErrInternal) {
		t.Fatalf("poisoned query error = %v, want ErrInternal", err)
	}
	panicID := c.LastTraceID()
	// The connection survives the panic and keeps serving.
	if _, err := c.Query("SELECT COUNT(*) AS n FROM small"); err != nil {
		t.Fatalf("query after panic: %v", err)
	}
	okID := c.LastTraceID()
	c.Close()
	shutdown()

	spans := spansByID(tr)
	if sp := spans[panicID]; sp.Status != obs.StatusPanic {
		t.Fatalf("panicked span status = %q, want %q", sp.Status, obs.StatusPanic)
	}
	if sp := spans[okID]; sp.Status != obs.StatusOK {
		t.Fatalf("follow-up span status = %q, want %q", sp.Status, obs.StatusOK)
	}
}

// TestTraceMalformedTaggedFrame: a traced frame with a zero or
// truncated trace ID is a protocol violation — typed error, hang-up,
// no span.
func TestTraceMalformedTaggedFrame(t *testing.T) {
	leakCheck(t)
	s, tr, shutdown := startTracedServer(t, Options{})

	for _, payload := range [][]byte{
		append(appendTraceID(nil, 0), "SELECT 1 FROM small"...), // zero ID
		{0x01, 0x02, 0x03}, // truncated ID
	} {
		raw, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		c := NewClient(raw)
		if _, _, err := c.roundTrip(msgQueryTraced, payload); !errors.Is(err, ErrMalformed) {
			t.Fatalf("malformed traced frame error = %v, want ErrMalformed", err)
		}
		c.Close()
	}
	shutdown()
	if n := tr.Traced(); n != 0 {
		t.Fatalf("malformed frames produced %d spans, want 0", n)
	}
}

// TestTraceSpanBufferBounded: the retained-span buffer refuses spans
// past Keep (counting them as dropped) instead of growing without
// bound; aggregation still sees every query.
func TestTraceSpanBufferBounded(t *testing.T) {
	leakCheck(t)
	tr := obs.NewQueryTracer(obs.QueryTraceOptions{Keep: 4})
	s, _, shutdown := startTracedServer(t, Options{Trace: tr})

	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.SetTraceBase(0x200)
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := c.Query("SELECT COUNT(*) AS n FROM small"); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	shutdown()

	if got := len(tr.Spans()); got != 4 {
		t.Fatalf("retained %d spans, want 4 (Keep)", got)
	}
	if tr.Traced() != n || tr.Dropped() != n-4 {
		t.Fatalf("traced=%d dropped=%d, want %d/%d", tr.Traced(), tr.Dropped(), n, n-4)
	}
}

// TestTraceHTTPPropagation: the HTTP path accepts and echoes
// X-CGP-Trace-ID, rejects malformed ones, and mints IDs for untagged
// requests.
func TestTraceHTTPPropagation(t *testing.T) {
	leakCheck(t)
	s, tr, shutdown := startTracedServer(t, Options{HTTPAddr: "127.0.0.1:0"})

	post := func(traceID string) (status int, echo string) {
		t.Helper()
		req, err := http.NewRequest("POST", "http://"+s.HTTPAddr()+"/query",
			strings.NewReader("SELECT COUNT(*) AS n FROM small"))
		if err != nil {
			t.Fatal(err)
		}
		if traceID != "" {
			req.Header.Set("X-CGP-Trace-ID", traceID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("X-CGP-Trace-ID")
	}
	status, echo := post("0000000000000bb8")
	if status != 200 || echo != "0000000000000bb8" {
		t.Fatalf("tagged POST = (%d, echo %q), want 200 with echo", status, echo)
	}
	status, echo = post("")
	if status != 200 || len(echo) != 16 || echo == "0000000000000000" {
		t.Fatalf("untagged POST = (%d, echo %q), want 200 with minted ID", status, echo)
	}
	if status, _ := post("xyz"); status != 400 {
		t.Fatalf("malformed trace header accepted: status %d", status)
	}
	if status, _ := post("0000000000000000"); status != 400 {
		t.Fatalf("zero trace header accepted: status %d", status)
	}
	shutdown()

	spans := spansByID(tr)
	sp, ok := spans[0xbb8]
	if !ok {
		t.Fatalf("no span for HTTP-tagged ID bb8 (have %d)", len(spans))
	}
	if !sp.Tagged || sp.Conn != "http" || sp.Status != obs.StatusOK {
		t.Fatalf("HTTP span = %+v, want tagged ok on conn http", sp)
	}
}
