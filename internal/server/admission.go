package server

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cgp/internal/units"
)

// admission is the overload-control gate: a token bucket (sustained
// rate) in front of an inflight counter (instantaneous concurrency).
// Both checks are cheap and lock-light — shedding load must cost far
// less than serving it, or the gate itself melts under the overload it
// exists to survive. A query that fails either check is rejected with
// ErrOverloaded before touching the engine.
type admission struct {
	clock       func() units.WallNanos
	maxInflight int64
	inflight    atomic.Int64

	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables the bucket
	burst  float64
	tokens float64
	last   units.WallNanos
}

// newAdmission builds a gate. rate <= 0 disables the token bucket
// (concurrency is still bounded); burst <= 0 defaults to rate.
func newAdmission(rate, burst float64, maxInflight int, clock func() units.WallNanos) *admission {
	if burst <= 0 {
		burst = rate
	}
	if burst < 1 && rate > 0 {
		burst = 1
	}
	a := &admission{
		clock:       clock,
		maxInflight: int64(maxInflight),
		rate:        rate,
		burst:       burst,
		tokens:      burst,
	}
	a.last = clock()
	return a
}

// admit claims one execution slot, or reports ErrOverloaded. On
// success the caller must release() when the query finishes.
func (a *admission) admit() error {
	if n := a.inflight.Add(1); n > a.maxInflight {
		a.inflight.Add(-1)
		return fmt.Errorf("%w: %d queries in flight", ErrOverloaded, a.maxInflight)
	}
	if a.rate > 0 && !a.takeToken() {
		a.inflight.Add(-1)
		return fmt.Errorf("%w: rate limit (%g qps)", ErrOverloaded, a.rate)
	}
	return nil
}

// release returns the slot claimed by admit.
func (a *admission) release() { a.inflight.Add(-1) }

// takeToken refills the bucket from elapsed wall time and consumes one
// token if available.
func (a *admission) takeToken() bool {
	now := a.clock()
	a.mu.Lock()
	defer a.mu.Unlock()
	if now > a.last {
		a.tokens += a.rate * wallSecs(now-a.last)
		if a.tokens > a.burst {
			a.tokens = a.burst
		}
		a.last = now
	}
	if a.tokens < 1 {
		return false
	}
	a.tokens--
	return true
}
