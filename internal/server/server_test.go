package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"cgp/internal/db"
	"cgp/internal/units"
	"cgp/internal/workload"
)

// testEngine seeds a small Wisconsin database.
func testEngine(t *testing.T) *db.Engine {
	t.Helper()
	e := db.NewEngine(db.Options{BufferFrames: 2048})
	if err := (workload.WisconsinDB{N: 200}).Load(e, 42); err != nil {
		t.Fatal(err)
	}
	return e
}

// startServer runs a server for the test's lifetime; cancellation and
// drain are registered as cleanups (drain before the leak check).
func startServer(t *testing.T, e *db.Engine, opts Options) *Server {
	t.Helper()
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	s := New(e, opts)
	ctx, cancel := context.WithCancel(context.Background())
	if err := s.Start(ctx); err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cancel()
		s.Wait()
	})
	return s
}

// leakCheck snapshots the goroutine count and registers a cleanup that
// fails the test if it has not returned to the snapshot. Cleanups run
// LIFO, so call this FIRST, before startServer.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
	})
}

func TestServeBasicQueries(t *testing.T) {
	leakCheck(t)
	s := startServer(t, testEngine(t), Options{})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Query("SELECT unique1, unique2 FROM big1 WHERE unique2 BETWEEN 10 AND 14")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(res.Rows))
	}
	if res.Cols[0] != "unique1" || res.Cols[1] != "unique2" {
		t.Fatalf("cols = %v", res.Cols)
	}
	if res.Rows[0][1] != "10" {
		t.Fatalf("first row = %v", res.Rows[0])
	}

	// An erroring statement must not poison the connection.
	if _, err := c.Query("SELECT nope FROM nowhere"); err == nil {
		t.Fatal("query against missing table succeeded")
	}
	res, err = c.Query("SELECT COUNT(*) AS n FROM big1")
	if err != nil {
		t.Fatalf("connection unusable after statement error: %v", err)
	}
	if res.Rows[0][0] != "200" {
		t.Fatalf("count = %v", res.Rows[0])
	}
}

func TestServeSelectInto(t *testing.T) {
	leakCheck(t)
	s := startServer(t, testEngine(t), Options{})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("SELECT unique1 INTO TMP FROM big1 WHERE unique2 < 50")
	if err != nil {
		t.Fatal(err)
	}
	if res.Materialized != 50 || len(res.Rows) != 0 {
		t.Fatalf("materialized = %d rows = %d, want 50/0", res.Materialized, len(res.Rows))
	}
}

func TestPreparedStatements(t *testing.T) {
	leakCheck(t)
	s := startServer(t, testEngine(t), Options{PrepCap: 2})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.Prepare("SELECT COUNT(*) AS n FROM big1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "200" {
		t.Fatalf("count = %v", res.Rows[0])
	}

	// Flood the 2-entry cache so st's id is evicted.
	for _, q := range []string{
		"SELECT COUNT(*) AS n FROM big1 WHERE two = 0",
		"SELECT COUNT(*) AS n FROM big1 WHERE two = 1",
	} {
		if _, err := c.Prepare(q); err != nil {
			t.Fatal(err)
		}
	}
	// The raw handle is stale now — the typed error crosses the wire.
	if _, err := st.execOnce(); !errors.Is(err, ErrStaleStatement) {
		t.Fatalf("evicted exec: err = %v, want ErrStaleStatement", err)
	}
	// The public Exec re-prepares transparently.
	res, err = st.Exec()
	if err != nil {
		t.Fatalf("Exec after eviction: %v", err)
	}
	if res.Rows[0][0] != "200" {
		t.Fatalf("count after re-prepare = %v", res.Rows[0])
	}
}

func TestAdmissionShedsOnRate(t *testing.T) {
	leakCheck(t)
	// A frozen clock never refills the bucket: burst admits 2, then shed.
	frozen := func() units.WallNanos { return 1 }
	s := startServer(t, testEngine(t), Options{
		RatePerSec: 1, Burst: 2, Clock: frozen, QueryDeadline: -1,
	})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 2; i++ {
		if _, err := c.Query("SELECT COUNT(*) AS n FROM small"); err != nil {
			t.Fatalf("query %d within burst: %v", i, err)
		}
	}
	if _, err := c.Query("SELECT COUNT(*) AS n FROM small"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-burst query: err = %v, want ErrOverloaded", err)
	}
}

func TestQueryDeadline(t *testing.T) {
	leakCheck(t)
	s := startServer(t, testEngine(t), Options{QueryDeadline: time.Nanosecond})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("SELECT unique1 FROM big1"); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	// The handler survived the abort: the connection still answers
	// (every query on this server carries the same 1ns budget, so the
	// answer is the same typed error — liveness is the assertion).
	if _, err := c.Query("SELECT unique1 FROM big1"); !errors.Is(err, ErrDeadline) {
		t.Fatalf("second query: err = %v, want ErrDeadline", err)
	}
}

func TestMaxConnsRefused(t *testing.T) {
	leakCheck(t)
	s := startServer(t, testEngine(t), Options{MaxConns: 1})
	c1, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Query("SELECT COUNT(*) AS n FROM small"); err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Query("SELECT COUNT(*) AS n FROM small"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("refused conn: err = %v, want ErrOverloaded", err)
	}
}

func TestHTTPFallback(t *testing.T) {
	leakCheck(t)
	s := startServer(t, testEngine(t), Options{HTTPAddr: "127.0.0.1:0"})
	base := "http://" + s.HTTPAddr()

	resp, err := http.Post(base+"/query", "text/plain",
		strings.NewReader("SELECT COUNT(*) AS n FROM big1"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"200"`) {
		t.Fatalf("body = %s", body)
	}

	resp, err = http.Post(base+"/query", "text/plain", strings.NewReader("SELECT x FROM nope"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query status = %d, want 400", resp.StatusCode)
	}

	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", path, resp.StatusCode)
		}
	}
}

func TestShutdownDrains(t *testing.T) {
	leakCheck(t)
	e := testEngine(t)
	s := New(e, Options{Addr: "127.0.0.1:0"})
	ctx, cancel := context.WithCancel(context.Background())
	if err := s.Start(ctx); err != nil {
		cancel()
		t.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT COUNT(*) AS n FROM small"); err != nil {
		t.Fatal(err)
	}
	cancel()
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after cancellation")
	}
	c.Close()
	// New connections must fail fast once the listener is gone.
	if _, err := Dial(s.Addr()); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}
