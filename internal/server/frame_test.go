package server

import (
	"errors"
	"testing"
)

func TestFrameHeaderRoundTrip(t *testing.T) {
	var hdr [frameHeaderLen]byte
	for _, n := range []int{0, 1, 255, 256, 1 << 16, maxRequestFrame} {
		putFrameHeader(hdr[:], msgQuery, n)
		typ, got, err := parseFrameHeader(hdr[:], maxRequestFrame)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if typ != msgQuery || got != n {
			t.Fatalf("n=%d: decoded (%q, %d)", n, typ, got)
		}
	}
}

func TestFrameHeaderRejectsOversize(t *testing.T) {
	var hdr [frameHeaderLen]byte
	putFrameHeader(hdr[:], msgQuery, maxRequestFrame+1)
	if _, _, err := parseFrameHeader(hdr[:], maxRequestFrame); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize frame: err = %v, want ErrTooLarge", err)
	}
}

func TestFrameHeaderRejectsShort(t *testing.T) {
	if _, _, err := parseFrameHeader([]byte{1, 2}, maxRequestFrame); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short header: err = %v, want ErrMalformed", err)
	}
}

func TestResultRoundTrip(t *testing.T) {
	in := &Result{
		Cols:         []string{"unique1", "stringu1"},
		Rows:         [][]string{{"1", "abc"}, {"2", ""}, {"-7", "x y z"}},
		Materialized: 0,
	}
	buf := encodeResult(nil, in)
	out, err := decodeResult(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Cols) != 2 || out.Cols[1] != "stringu1" {
		t.Fatalf("cols = %v", out.Cols)
	}
	if len(out.Rows) != 3 || out.Rows[2][0] != "-7" || out.Rows[1][1] != "" {
		t.Fatalf("rows = %v", out.Rows)
	}
}

func TestResultRoundTripMaterialized(t *testing.T) {
	buf := encodeResult(nil, &Result{Materialized: 12345})
	out, err := decodeResult(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Materialized != 12345 || len(out.Cols) != 0 || len(out.Rows) != 0 {
		t.Fatalf("decoded %+v", out)
	}
}

func TestDecodeResultRejectsGarbage(t *testing.T) {
	for _, p := range [][]byte{
		{},                  // empty
		{0xff},              // truncated uvarint
		{0, 2, 1, 'a'},      // promises 2 cols, delivers 1
		{0, 1, 5, 'a', 'b'}, // string length beyond payload
	} {
		if _, err := decodeResult(p); err == nil {
			t.Fatalf("decodeResult(%v) accepted garbage", p)
		}
	}
}

func TestErrorCodesRoundTrip(t *testing.T) {
	for _, sentinel := range []error{
		ErrOverloaded, ErrDeadline, ErrStaleStatement, ErrShutdown, ErrTooLarge, ErrMalformed,
	} {
		payload := encodeError(nil, codeFor(sentinel), sentinel.Error())
		back := decodeError(payload)
		if !errors.Is(back, sentinel) {
			t.Fatalf("round-tripped %v came back as %v", sentinel, back)
		}
	}
}
