package refsim

import (
	"cgp/internal/branch"
	"cgp/internal/cache"
	"cgp/internal/cpu"
	"cgp/internal/isa"
	"cgp/internal/prefetch"
	"cgp/internal/trace"
	"cgp/internal/units"
)

// lineMeta mirrors cpu's per-L1I-line prefetch bookkeeping.
type lineMeta struct {
	prefetched bool
	used       bool
	portion    prefetch.Portion
}

// dataMeta mirrors cpu's per-L1D-line state.
type dataMeta struct {
	dirty bool
}

// inflight tracks a prefetch issued to the L2 FIFO but not yet filled
// into L1I. The reference kernel heap-allocates one per issue and
// indexes them with a Go map — exactly the steady-state allocations the
// optimized kernel eliminates.
type inflight struct {
	line    isa.Addr
	readyAt units.Cycles
	portion prefetch.Portion
	done    bool
}

// CPU is the frozen pre-optimization trace consumer. It shares
// cpu.Config and cpu.Stats with the live kernel so results compare
// field-for-field.
type CPU struct {
	cfg cpu.Config

	l1i *Cache[lineMeta]
	l1d *Cache[dataMeta]
	l2  *Cache[struct{}]

	bp  *branch.Predictor
	ras *branch.RAS
	pf  prefetch.Prefetcher

	cycle      units.Cycles
	instrCarry units.Instrs
	busFreeAt  units.Cycles

	queue   []*inflight
	qHead   int
	pending map[isa.Addr]*inflight

	loopBranches    int64
	loopMispredicts int64

	stats cpu.Stats
}

var _ trace.Consumer = (*CPU)(nil)

// New builds a reference CPU with the given prefetcher (nil means no
// prefetching).
func New(cfg cpu.Config, pf prefetch.Prefetcher) *CPU {
	if pf == nil {
		pf = prefetch.None{}
	}
	return &CPU{
		cfg:     cfg,
		l1i:     NewCache[lineMeta](cfg.L1I),
		l1d:     NewCache[dataMeta](cfg.L1D),
		l2:      NewCache[struct{}](cfg.L2),
		bp:      branch.NewPredictor(cfg.BranchEntries),
		ras:     branch.NewRAS(cfg.RASDepth),
		pf:      pf,
		pending: make(map[isa.Addr]*inflight),
	}
}

// Event implements trace.Consumer. Deliberately no EventBatch: the
// reference kernel replays through the per-event interface path.
func (c *CPU) Event(ev trace.Event) {
	switch ev.Kind {
	case trace.KindRun:
		c.run(ev.Addr, int(ev.N))
	case trace.KindLoop:
		c.loop(ev.Addr, int(ev.N), int(ev.Iters))
	case trace.KindBranch:
		c.branch(ev)
	case trace.KindCall:
		c.call(ev)
	case trace.KindReturn:
		c.ret(ev)
	case trace.KindData:
		c.data(ev)
	case trace.KindSwitch:
		c.contextSwitch()
	}
}

// Finish returns the statistics, exactly as cpu.CPU.Finish does.
func (c *CPU) Finish() *cpu.Stats {
	s := c.stats
	s.Cycles = c.cycle
	s.L1IStats = c.l1i.Stats()
	s.L1DStats = c.l1d.Stats()
	s.L2Stats = c.l2.Stats()
	s.Branches = c.bp.Lookups() + c.loopBranches
	s.BranchMispredicts = c.bp.Mispredicts() + c.loopMispredicts
	s.Returns = c.ras.Pops()
	s.RASMispredicts = c.ras.Mispredicts()
	return &s
}

func (c *CPU) run(addr isa.Addr, n int) {
	if n <= 0 {
		return
	}
	c.stats.Instructions += units.Instrs(n)
	c.addThroughput(n)
	if c.cfg.PerfectICache {
		return
	}
	line := isa.LineAddr(addr)
	for covered := isa.LinesCovered(addr, isa.InstrRangeBytes(n)); covered > 0; covered-- {
		c.fetchLine(line)
		line += isa.LineBytes
	}
}

func (c *CPU) loop(addr isa.Addr, bodyInstr, iters int) {
	if bodyInstr <= 0 || iters <= 0 {
		return
	}
	c.stats.Instructions += units.Instrs(int64(bodyInstr) * int64(iters))
	c.addThroughput(bodyInstr * iters)
	c.cycle += units.Cycles(iters) * c.cfg.TakenBranchBubble
	c.loopBranches += int64(iters)
	c.loopMispredicts++
	c.cycle += c.cfg.MispredictPenalty
	if c.cfg.PerfectICache {
		return
	}
	line := isa.LineAddr(addr)
	for covered := isa.LinesCovered(addr, isa.InstrRangeBytes(bodyInstr)); covered > 0; covered-- {
		c.fetchLine(line)
		line += isa.LineBytes
	}
}

func (c *CPU) addThroughput(n int) {
	c.instrCarry += units.Instrs(n)
	c.cycle += units.Cycles(int64(c.instrCarry) / int64(c.cfg.FetchWidth))
	c.instrCarry %= units.Instrs(c.cfg.FetchWidth)
}

func (c *CPU) fetchLine(line isa.Addr) {
	c.stats.ILineAccesses++
	c.drainCompleted()
	if meta, hit := c.l1i.Access(cache.Line(isa.Line(line))); hit {
		if meta.prefetched && !meta.used {
			meta.used = true
			c.portionStats(meta.portion).PrefHits++
		}
	} else if inf, ok := c.pending[line]; ok {
		wait := inf.readyAt - c.cycle
		if wait < 0 {
			wait = 0
		}
		c.cycle += wait
		c.stats.IMissStallCycles += wait
		c.portionStats(inf.portion).DelayedHits++
		inf.done = true
		delete(c.pending, line)
		c.insertL1I(line, lineMeta{prefetched: true, used: true, portion: inf.portion})
	} else {
		c.stats.ICacheMisses++
		lat := c.l2DemandAccess(line)
		c.cycle += lat
		c.stats.IMissStallCycles += lat
		c.insertL1I(line, lineMeta{})
	}
	// A fresh method-value closure per call: the allocation the
	// optimized kernel hoists into a field.
	c.pf.OnFetch(line, c.issue)
}

func (c *CPU) insertL1I(line isa.Addr, meta lineMeta) {
	ev, had := c.l1i.Insert(cache.Line(isa.Line(line)), meta)
	if had && ev.Payload.prefetched && !ev.Payload.used {
		c.portionStats(ev.Payload.portion).Useless++
	}
}

// issue is the reference model's prefetch sink. It is bound to the hot
// prefetch.Issue type at the OnFetch/OnCall/OnReturn call sites, but
// the reference kernel is deliberately outside the zero-alloc
// contract: it exists as the differential-test oracle, and simplicity
// beats allocation discipline here (see the package comment).
//
//cgplint:coldpath reference-model oracle favors simplicity; it heap-allocates one inflight per issue by documented design
func (c *CPU) issue(req prefetch.Request) {
	line := isa.LineAddr(req.Addr)
	ps := c.portionStats(req.Portion)
	if _, hit := c.l1i.Probe(cache.Line(isa.Line(line))); hit {
		ps.Squashed++
		return
	}
	if _, inFlight := c.pending[line]; inFlight {
		ps.Squashed++
		return
	}
	ps.Issued++
	if c.cfg.PrefetchIntoL2Only {
		c.l2LineAccess(line)
		return
	}
	lat := c.l2LineAccess(line)
	inf := &inflight{line: line, readyAt: c.cycle + lat, portion: req.Portion}
	c.pending[line] = inf
	c.queue = append(c.queue, inf)
}

func (c *CPU) drainCompleted() {
	for c.qHead < len(c.queue) {
		inf := c.queue[c.qHead]
		if !inf.done && inf.readyAt > c.cycle {
			break
		}
		c.qHead++
		if inf.done {
			continue
		}
		delete(c.pending, inf.line)
		c.insertL1I(inf.line, lineMeta{prefetched: true, portion: inf.portion})
	}
	switch {
	case c.qHead > 0 && c.qHead == len(c.queue):
		c.queue = c.queue[:0]
		c.qHead = 0
	case c.qHead > len(c.queue)/2:
		n := copy(c.queue, c.queue[c.qHead:])
		tail := c.queue[n:]
		for i := range tail {
			tail[i] = nil
		}
		c.queue = c.queue[:n]
		c.qHead = 0
	}
}

func (c *CPU) l2DemandAccess(line isa.Addr) units.Cycles {
	if !c.cfg.DemandPriority {
		return c.l2LineAccess(line)
	}
	c.stats.L2Accesses++
	c.busFreeAt += c.cfg.BusCyclesPerLine
	ready := c.cycle + c.cfg.L2Latency
	if _, hit := c.l2.Access(cache.Line(isa.Line(line))); !hit {
		c.stats.L2Misses++
		ready += c.cfg.MemLatency
		c.l2.Insert(cache.Line(isa.Line(line)), struct{}{})
	}
	return ready - c.cycle
}

func (c *CPU) l2LineAccess(line isa.Addr) units.Cycles {
	start := c.cycle
	if c.busFreeAt > start {
		start = c.busFreeAt
	}
	c.busFreeAt = start + c.cfg.BusCyclesPerLine
	c.stats.L2Accesses++
	ready := start + c.cfg.L2Latency
	if _, hit := c.l2.Access(cache.Line(isa.Line(line))); !hit {
		c.stats.L2Misses++
		ready += c.cfg.MemLatency
		c.l2.Insert(cache.Line(isa.Line(line)), struct{}{})
	}
	return ready - c.cycle
}

func (c *CPU) portionStats(p prefetch.Portion) *cpu.PrefetchStats {
	if p == prefetch.PortionCGHC {
		return &c.stats.CGHC
	}
	return &c.stats.NL
}

func (c *CPU) branch(ev trace.Event) {
	correct := c.bp.Predict(ev.Addr, ev.Taken)
	if !correct {
		c.cycle += c.cfg.MispredictPenalty
	}
	if ev.Taken {
		c.cycle += c.cfg.TakenBranchBubble
	}
}

func (c *CPU) call(ev trace.Event) {
	c.stats.Calls++
	c.ras.Push(branch.RASEntry{
		ReturnAddr:  ev.Addr + isa.InstrBytes,
		CallerStart: ev.CallerStart,
	})
	c.cycle += c.cfg.TakenBranchBubble
	if !c.cfg.PerfectICache {
		c.pf.OnCall(ev.Target, ev.CallerStart, c.issue)
	}
}

func (c *CPU) ret(ev trace.Event) {
	pred, ok := c.ras.Pop()
	if !c.ras.RecordOutcome(pred, ok, ev.Target) {
		c.cycle += c.cfg.MispredictPenalty
	}
	c.cycle += c.cfg.TakenBranchBubble
	if !c.cfg.PerfectICache {
		var predCaller isa.Addr
		if ok {
			predCaller = pred.CallerStart
		}
		c.pf.OnReturn(predCaller, ev.Addr, c.issue)
	}
}

func (c *CPU) contextSwitch() {
	c.stats.Switches++
	c.cycle += c.cfg.SwitchPenalty
	if c.cfg.FlushRASOnSwitch {
		c.ras.Flush()
	}
}

func (c *CPU) data(ev trace.Event) {
	line := isa.LineAddr(ev.Addr)
	for covered := isa.LinesCovered(ev.Addr, int(ev.N)); covered > 0; covered-- {
		c.stats.DLineAccesses++
		if meta, hit := c.l1d.Access(cache.Line(isa.Line(line))); hit {
			if ev.Taken {
				meta.dirty = true
			}
		} else {
			c.stats.DCacheMisses++
			lat := c.l2DemandAccess(line)
			stall := units.Cycles(float64(lat) * c.cfg.DataStallFactor)
			c.cycle += stall
			evicted, had := c.l1d.Insert(cache.Line(isa.Line(line)), dataMeta{dirty: ev.Taken})
			if had && evicted.Payload.dirty {
				c.busFreeAt += c.cfg.BusCyclesPerLine
				c.stats.L2Accesses++
			}
		}
		line += isa.LineBytes
	}
}
