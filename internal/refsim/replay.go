package refsim

import (
	"encoding/binary"
	"fmt"
	"io"

	"cgp/internal/isa"
	"cgp/internal/program"
	"cgp/internal/trace"
)

// Replay is the frozen pre-optimization replay loop: per-event Consumer
// dispatch and a decoder that calls binary.Varint for every signed
// field (the live trace.Recording decoder batches dispatch and inlines
// the common single-byte varint case). It reads the raw encoded trace
// (header included) from a flat byte slice — obtain one with
// Recording.WriteTo — which matches the old chunked fast path, since a
// 1 MiB chunk kept virtually every record on the contiguous branch.
//
// Keeping the old decode loop here, next to the old CPU kernel, is what
// makes the benchmark baseline honest: BENCH_kernel.json's speedup is
// measured against the whole pre-change replay→CPU path, not against a
// baseline that quietly inherits the new decoder.
func Replay(raw []byte, c trace.Consumer) error {
	var magic = [8]byte{'C', 'G', 'P', 'T', 'R', 'C', '0', '1'} // traceMagic
	if len(raw) < len(magic) || [8]byte(raw[:8]) != magic {
		return trace.ErrBadMagic
	}
	pos := len(magic)
	for pos < len(raw) {
		ev, n, err := decodeEvent(raw[pos:])
		if err != nil {
			return err
		}
		pos += n
		c.Event(ev)
	}
	return nil
}

// decodeEvent is the frozen copy of the pre-optimization trace decoder.
func decodeEvent(b []byte) (trace.Event, int, error) {
	var ev trace.Event
	flags := b[0]
	ev.Kind = trace.Kind(flags >> 1)
	ev.Taken = flags&1 != 0
	pos := 1
	u, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return ev, 0, decodeErr("addr")
	}
	pos += n
	ev.Addr = isa.Addr(u)
	if u, n = binary.Uvarint(b[pos:]); n <= 0 {
		return ev, 0, decodeErr("target")
	}
	pos += n
	ev.Target = isa.Addr(u)
	if u, n = binary.Uvarint(b[pos:]); n <= 0 {
		return ev, 0, decodeErr("callerStart")
	}
	pos += n
	ev.CallerStart = isa.Addr(u)
	v, n := binary.Varint(b[pos:])
	if n <= 0 {
		return ev, 0, decodeErr("n")
	}
	pos += n
	ev.N = int32(v)
	if v, n = binary.Varint(b[pos:]); n <= 0 {
		return ev, 0, decodeErr("iters")
	}
	pos += n
	ev.Iters = int32(v)
	if v, n = binary.Varint(b[pos:]); n <= 0 {
		return ev, 0, decodeErr("fn")
	}
	pos += n
	ev.Fn = program.FuncID(v)
	if v, n = binary.Varint(b[pos:]); n <= 0 {
		return ev, 0, decodeErr("caller")
	}
	pos += n
	ev.Caller = program.FuncID(v)
	return ev, pos, nil
}

func decodeErr(field string) error {
	return fmt.Errorf("refsim: decode %s: %w", field, io.ErrUnexpectedEOF)
}
