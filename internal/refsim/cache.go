// Package refsim freezes the pre-optimization simulation kernel — the
// array-of-structs cache model with tick-counter true LRU and the
// allocating CPU event loop — exactly as it stood before the hot-path
// overhaul (ISSUE 3). It exists for two reasons:
//
//   - Differential testing: the optimized internal/cache and
//     internal/cpu must produce byte-identical statistics on any event
//     stream. The tests replay randomized streams through both kernels
//     and compare every counter.
//   - Benchmarking: BENCH_kernel.json reports the optimized kernel's
//     events/sec as a ratio over this baseline, so the speedup claim is
//     re-measured on every benchmark run instead of being a stale
//     number in a commit message.
//
// Nothing outside tests and benchmarks may import this package; it is
// deliberately not kept API-compatible beyond what those need.
package refsim

import (
	"fmt"
	"math/bits"

	"cgp/internal/cache"
)

type way[P any] struct {
	tag     cache.Line
	valid   bool
	lastUse uint64
	payload P
}

// Cache is the frozen set-associative cache model: one struct per way,
// true-LRU replacement via a per-cache access tick.
type Cache[P any] struct {
	name    string
	sets    []way[P]
	assoc   int
	setMask cache.Line
	tick    uint64
	stats   cache.Stats
}

// NewCache builds a reference cache from cfg (same geometry rules as
// cache.New).
func NewCache[P any](cfg cache.Config) *Cache[P] {
	lines := cfg.Lines()
	if lines <= 0 || cfg.Assoc <= 0 || lines%cfg.Assoc != 0 {
		panic(fmt.Sprintf("refsim: bad geometry size=%d assoc=%d line=%d",
			cfg.SizeBytes, cfg.Assoc, cfg.LineBytes))
	}
	sets := lines / cfg.Assoc
	if bits.OnesCount(uint(sets)) != 1 {
		panic(fmt.Sprintf("refsim: sets=%d not a power of two", sets))
	}
	return &Cache[P]{
		name:    cfg.Name,
		sets:    make([]way[P], lines),
		assoc:   cfg.Assoc,
		setMask: cache.Line(sets - 1),
	}
}

// Stats returns a copy of the access counters.
func (c *Cache[P]) Stats() cache.Stats { return c.stats }

func (c *Cache[P]) setFor(line cache.Line) []way[P] {
	s := int(line&c.setMask) * c.assoc
	return c.sets[s : s+c.assoc]
}

// Access looks line up, updating LRU state and hit/miss counters.
func (c *Cache[P]) Access(line cache.Line) (*P, bool) {
	c.stats.Accesses++
	c.tick++
	set := c.setFor(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].lastUse = c.tick
			return &set[i].payload, true
		}
	}
	c.stats.Misses++
	return nil, false
}

// Probe reports whether line is resident without perturbing LRU state
// or counters.
func (c *Cache[P]) Probe(line cache.Line) (*P, bool) {
	set := c.setFor(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			return &set[i].payload, true
		}
	}
	return nil, false
}

// Insert fills line, evicting the LRU way if the set is full. This is
// the pre-fix victim scan: an invalid way found early is overwritten by
// a later invalid way, which changes physical placement but not any
// hit/miss/eviction outcome (evictions only happen with no invalid way
// left, and LRU order is independent of way position).
func (c *Cache[P]) Insert(line cache.Line, payload P) (cache.Evicted[P], bool) {
	c.stats.Inserts++
	c.tick++
	set := c.setFor(line)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].payload = payload
			set[i].lastUse = c.tick
			return cache.Evicted[P]{}, false
		}
		if !set[i].valid {
			victim = i
			continue
		}
		if set[victim].valid && set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	var ev cache.Evicted[P]
	had := false
	if set[victim].valid {
		ev = cache.Evicted[P]{Line: set[victim].tag, Payload: set[victim].payload}
		had = true
		c.stats.Evictions++
	}
	set[victim] = way[P]{tag: line, valid: true, lastUse: c.tick, payload: payload}
	return ev, had
}
