// Package sample implements SMARTS-style sampled simulation for the
// trace replayer: a deterministic plan that partitions a recording
// into skipped, functionally-warmed, detail-warmed and measured spans,
// and a ratio estimator that scales window measurements into whole-run
// estimates with per-metric confidence intervals.
//
// The methodology follows Wunderlich et al. (SMARTS, ISCA 2003)
// adapted to this simulator's event-granular traces:
//
//   - Periodic (or seeded random-offset) systematic sampling: each
//     period contributes one measurement window, preceded by a
//     functional-warming stretch (caches, call-graph history and
//     branch state are updated without timing) and a short detailed
//     warm-up (timing state — inflight prefetches, bus contention —
//     settles before measurement starts).
//   - Per-instruction ratio estimation: window CPI (or miss rate) is
//     accumulated as Σx/ΣI across windows, then scaled by the exact
//     whole-run instruction count, which the replayer counts in every
//     tier including skips.
//   - Paired-window variance: the 95% CI uses the successive-difference
//     variance estimator Σ(rᵢ₊₁−rᵢ)²/(2(n−1)), which discounts the
//     slow drift between program phases that an ordinary sample
//     variance would book as sampling error.
//
// Everything here is pure arithmetic on the sampling config and the
// recording's event count — no clocks, no global randomness — so a
// plan and its estimates are byte-identical across worker counts and
// checkpoint/resume paths.
package sample

import (
	"fmt"
	"math"

	"cgp/internal/trace"
	"cgp/internal/units"
)

// Config holds the sampling knobs. The zero value disables sampling;
// Enabled requires both a period and a window length.
type Config struct {
	// PeriodEvents is the sampling period: one measurement window per
	// PeriodEvents trace events.
	PeriodEvents int64
	// FunctionalWarmEvents is how many events before each detailed
	// warm-up are decoded for functional warming (cache contents,
	// call-graph history, branch state; no timing). Everything earlier
	// in the period is skipped without decoding.
	FunctionalWarmEvents int64
	// DetailWarmEvents is the detailed (timed but unmeasured) warm-up
	// run immediately before each measurement window.
	DetailWarmEvents int64
	// WindowEvents is the length of each measurement window.
	WindowEvents int64
	// RandomOffset places each period's window at a seeded
	// deterministic random offset within the period instead of at its
	// end, decorrelating the schedule from any periodicity in the
	// workload.
	RandomOffset bool
	// Seed drives the random offsets; ignored unless RandomOffset.
	Seed uint64
}

// Default returns the recommended sampling configuration for
// campaign-scale traces: 32k-event windows every 1M events, with 8k
// events of detailed warm-up and 60k of functional warming — about 4%
// of the stream simulated in detail and 6% functionally warmed.
func Default() Config {
	return Config{
		PeriodEvents:         1_000_000,
		FunctionalWarmEvents: 60_000,
		DetailWarmEvents:     8_000,
		WindowEvents:         32_000,
	}
}

// Enabled reports whether the config describes an actual sampling
// schedule.
func (c Config) Enabled() bool {
	return c.PeriodEvents > 0 && c.WindowEvents > 0
}

// WithDefaults fills the warm-up knobs of an enabled config that left
// them zero: functional warming defaults to twice the detailed span
// and detailed warm-up to a quarter of the window. A disabled config
// is returned unchanged so its fingerprint stays stable.
func (c Config) WithDefaults() Config {
	if !c.Enabled() {
		return c
	}
	if c.DetailWarmEvents == 0 {
		c.DetailWarmEvents = c.WindowEvents / 4
	}
	if c.FunctionalWarmEvents == 0 {
		c.FunctionalWarmEvents = 2 * (c.DetailWarmEvents + c.WindowEvents)
	}
	return c
}

// String renders the schedule compactly; it is part of config
// fingerprints, so changing the format rescopes checkpoints.
func (c Config) String() string {
	if !c.Enabled() {
		return "off"
	}
	s := fmt.Sprintf("P%d/F%d/W%d/M%d", c.PeriodEvents, c.FunctionalWarmEvents, c.DetailWarmEvents, c.WindowEvents)
	if c.RandomOffset {
		s += fmt.Sprintf("/r%d", c.Seed)
	}
	return s
}

// mix64 is the splitmix64 finalizer: a stateless bijective mixer that
// turns (seed, period index) into a well-distributed offset without
// any global RNG state.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Plan lays the sampling schedule over a stream of total events. Each
// full period contributes skip → functional-warm → detail-warm →
// measure (→ skip when the window is randomly offset); a stream or
// tail too short to fit one full schedule is measured in detail
// end-to-end, so tiny traces degrade to exact simulation instead of
// returning garbage estimates. Spans always cover the stream exactly.
func (c Config) Plan(total int64) []trace.Span {
	c = c.WithDefaults()
	if !c.Enabled() || total <= 0 {
		return nil
	}
	winCost := c.FunctionalWarmEvents + c.DetailWarmEvents + c.WindowEvents
	if total < winCost || c.PeriodEvents < winCost {
		return []trace.Span{{Kind: trace.SpanMeasure, Events: total}}
	}
	var spans []trace.Span
	add := func(k trace.SpanKind, n int64) {
		if n <= 0 {
			return
		}
		if k == trace.SpanSkip && len(spans) > 0 && spans[len(spans)-1].Kind == trace.SpanSkip {
			spans[len(spans)-1].Events += n
			return
		}
		spans = append(spans, trace.Span{Kind: k, Events: n})
	}
	var pos, period int64
	for pos < total {
		chunk := c.PeriodEvents
		if rest := total - pos; rest < chunk {
			chunk = rest
		}
		room := chunk - winCost
		if room < 0 {
			// Short tail: not enough left for a full schedule. Measure
			// it in detail — it is already warmed by the preceding
			// period, and dropping it would bias the estimate against
			// the program's final phase.
			add(trace.SpanFunctionalWarm, chunk-c.DetailWarmEvents-c.WindowEvents)
			rest := chunk
			if rest > c.DetailWarmEvents+c.WindowEvents {
				rest = c.DetailWarmEvents + c.WindowEvents
			}
			warm := rest - c.WindowEvents
			add(trace.SpanDetailWarm, warm)
			add(trace.SpanMeasure, rest-max64(warm, 0))
			pos += chunk
			period++
			continue
		}
		off := room
		if c.RandomOffset {
			off = int64(mix64(c.Seed+uint64(period)) % uint64(room+1))
		}
		add(trace.SpanSkip, off)
		add(trace.SpanFunctionalWarm, c.FunctionalWarmEvents)
		add(trace.SpanDetailWarm, c.DetailWarmEvents)
		add(trace.SpanMeasure, c.WindowEvents)
		add(trace.SpanSkip, room-off)
		pos += chunk
		period++
	}
	return spans
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Window is the measurement of one detailed window: the cycles and
// instructions it spanned, plus the metric counters sampled over it.
type Window struct {
	Cycles units.Cycles
	Instrs units.Instrs
	Misses int64
}

// Estimate is a whole-run extrapolation of one per-instruction rate.
type Estimate struct {
	// Rate is the instruction-weighted ratio estimate Σx/ΣI across
	// windows (e.g. CPI for the cycle metric).
	Rate float64
	// RelCI is the relative half-width of the 95% confidence interval
	// (half-width / point estimate). Zero when Degenerate.
	RelCI float64
	// Windows is the number of usable (nonzero-instruction) windows.
	Windows int
	// Degenerate marks estimates from fewer than two windows, where no
	// variance — and hence no CI — exists. A one-window estimate of a
	// whole-stream measure span is exact, but callers must not treat
	// RelCI == 0 from a degenerate estimate as a claim of zero error.
	Degenerate bool
}

// tQuantile97_5 holds two-sided 95% Student-t quantiles by degrees of
// freedom (1-based); beyond the table the normal quantile is close
// enough.
var tQuantile97_5 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tQuantile(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tQuantile97_5) {
		return tQuantile97_5[df-1]
	}
	return 1.960
}

// EstimateRate extrapolates the per-instruction rate of one metric
// from the windows, with value extracting the metric's counter.
func EstimateRate(ws []Window, value func(Window) float64) Estimate {
	var sumV, sumI float64
	rates := make([]float64, 0, len(ws))
	for _, w := range ws {
		if w.Instrs <= 0 {
			continue
		}
		v := value(w)
		sumV += v
		sumI += float64(w.Instrs)
		rates = append(rates, v/float64(w.Instrs))
	}
	est := Estimate{Windows: len(rates)}
	if sumI == 0 {
		est.Degenerate = true
		return est
	}
	est.Rate = sumV / sumI
	if len(rates) < 2 {
		est.Degenerate = true
		return est
	}
	var sd float64
	for i := 1; i < len(rates); i++ {
		d := rates[i] - rates[i-1]
		sd += d * d
	}
	sigma2 := sd / (2 * float64(len(rates)-1))
	half := tQuantile(len(rates)-1) * math.Sqrt(sigma2/float64(len(rates)))
	if est.Rate > 0 {
		est.RelCI = half / est.Rate
	}
	return est
}

// Scale turns the rate estimate into a whole-run estimated count for a
// stream of total instructions (counted exactly in every replay tier).
func (e Estimate) Scale(total units.Instrs) int64 {
	return int64(math.Round(e.Rate * float64(total)))
}
