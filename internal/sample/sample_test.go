package sample

import (
	"math"
	"testing"

	"cgp/internal/trace"
	"cgp/internal/units"
)

func planTotals(spans []trace.Span) (total int64, byKind map[trace.SpanKind]int64) {
	byKind = map[trace.SpanKind]int64{}
	for _, sp := range spans {
		total += sp.Events
		byKind[sp.Kind] += sp.Events
	}
	return
}

func TestPlanCoversStreamExactly(t *testing.T) {
	cfgs := []Config{
		{PeriodEvents: 1000, FunctionalWarmEvents: 100, DetailWarmEvents: 20, WindowEvents: 50},
		{PeriodEvents: 1000, FunctionalWarmEvents: 100, DetailWarmEvents: 20, WindowEvents: 50, RandomOffset: true, Seed: 7},
		{PeriodEvents: 1000, FunctionalWarmEvents: 100, DetailWarmEvents: 20, WindowEvents: 50, RandomOffset: true, Seed: 8},
		Default(),
		{PeriodEvents: 300, WindowEvents: 10}, // warm knobs defaulted
	}
	totals := []int64{1, 49, 999, 1000, 1001, 4096, 12345, 1 << 20, 3_333_333}
	for _, cfg := range cfgs {
		for _, total := range totals {
			spans := cfg.Plan(total)
			got, _ := planTotals(spans)
			if got != total {
				t.Errorf("Plan(%v, %d) covers %d events", cfg, total, got)
			}
			for _, sp := range spans {
				if sp.Events <= 0 {
					t.Errorf("Plan(%v, %d) emitted empty span %+v", cfg, total, sp)
				}
			}
		}
	}
}

func TestPlanStructure(t *testing.T) {
	cfg := Config{PeriodEvents: 1000, FunctionalWarmEvents: 100, DetailWarmEvents: 20, WindowEvents: 50}
	spans := cfg.Plan(10_000)
	_, byKind := planTotals(spans)
	if byKind[trace.SpanMeasure] != 10*50 {
		t.Errorf("measured events = %d, want 500", byKind[trace.SpanMeasure])
	}
	if byKind[trace.SpanFunctionalWarm] != 10*100 {
		t.Errorf("functional-warm events = %d, want 1000", byKind[trace.SpanFunctionalWarm])
	}
	if byKind[trace.SpanDetailWarm] != 10*20 {
		t.Errorf("detail-warm events = %d, want 200", byKind[trace.SpanDetailWarm])
	}
	if byKind[trace.SpanSkip] != 10_000-500-1000-200 {
		t.Errorf("skipped events = %d, want 8300", byKind[trace.SpanSkip])
	}
	// Fixed offset: every window sits at its period's end, so the kinds
	// cycle skip, fwarm, warm, measure.
	want := []trace.SpanKind{trace.SpanSkip, trace.SpanFunctionalWarm, trace.SpanDetailWarm, trace.SpanMeasure}
	for i, sp := range spans {
		if sp.Kind != want[i%4] {
			t.Fatalf("span %d kind = %v, want %v", i, sp.Kind, want[i%4])
		}
	}
}

func TestPlanTinyStreamDegradesToFullMeasure(t *testing.T) {
	cfg := Config{PeriodEvents: 1000, FunctionalWarmEvents: 100, DetailWarmEvents: 20, WindowEvents: 50}
	spans := cfg.Plan(99)
	if len(spans) != 1 || spans[0].Kind != trace.SpanMeasure || spans[0].Events != 99 {
		t.Fatalf("tiny-stream plan = %+v, want single 99-event measure span", spans)
	}
}

func TestPlanDeterministicAndSeedSensitive(t *testing.T) {
	cfg := Config{PeriodEvents: 1000, FunctionalWarmEvents: 100, DetailWarmEvents: 20, WindowEvents: 50, RandomOffset: true, Seed: 42}
	a := cfg.Plan(50_000)
	b := cfg.Plan(50_000)
	if len(a) != len(b) {
		t.Fatalf("same config produced different plan lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same config produced different plans at span %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	c := cfg.Plan(50_000)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical random-offset plans")
	}
}

func TestPlanDisabled(t *testing.T) {
	if spans := (Config{}).Plan(1000); spans != nil {
		t.Fatalf("disabled config produced a plan: %+v", spans)
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if !Default().Enabled() {
		t.Fatal("Default() reports disabled")
	}
}

func cyclesOf(w Window) float64 { return float64(w.Cycles) }

func TestEstimateKnownWindows(t *testing.T) {
	// Hand-computed: rates 2.0, 2.2, 1.8 with equal 1000-instr weights.
	// Ratio estimate = 6000/3000 = 2.0. Successive differences 0.2, -0.4
	// → σ² = (0.04+0.16)/(2·2) = 0.05, SE = sqrt(0.05/3) ≈ 0.12910,
	// t₂ = 4.303 → half ≈ 0.55549, RelCI ≈ 0.27775.
	ws := []Window{
		{Cycles: 2000, Instrs: 1000},
		{Cycles: 2200, Instrs: 1000},
		{Cycles: 1800, Instrs: 1000},
	}
	e := EstimateRate(ws, cyclesOf)
	if e.Degenerate || e.Windows != 3 {
		t.Fatalf("estimate = %+v, want 3 non-degenerate windows", e)
	}
	if math.Abs(e.Rate-2.0) > 1e-12 {
		t.Errorf("rate = %v, want 2.0", e.Rate)
	}
	wantRel := 4.303 * math.Sqrt(0.05/3) / 2.0
	if math.Abs(e.RelCI-wantRel) > 1e-9 {
		t.Errorf("RelCI = %v, want %v", e.RelCI, wantRel)
	}
	if got := e.Scale(1_000_000); got != 2_000_000 {
		t.Errorf("Scale(1M instrs) = %d, want 2000000", got)
	}
}

func TestEstimateInstructionWeighting(t *testing.T) {
	// The ratio estimator weights by instructions: a big accurate window
	// dominates a small noisy one. Σx/ΣI = (9000+300)/(3000+100).
	ws := []Window{
		{Cycles: 9000, Instrs: 3000},
		{Cycles: 300, Instrs: 100},
	}
	e := EstimateRate(ws, cyclesOf)
	if math.Abs(e.Rate-9300.0/3100.0) > 1e-12 {
		t.Errorf("rate = %v, want %v", e.Rate, 9300.0/3100.0)
	}
}

func TestEstimateOneWindowDegenerate(t *testing.T) {
	e := EstimateRate([]Window{{Cycles: 4200, Instrs: 2100}}, cyclesOf)
	if !e.Degenerate {
		t.Fatal("one-window estimate not marked degenerate")
	}
	if e.Windows != 1 || e.RelCI != 0 {
		t.Fatalf("estimate = %+v, want Windows=1 RelCI=0", e)
	}
	if math.Abs(e.Rate-2.0) > 1e-12 {
		t.Errorf("rate = %v, want 2.0", e.Rate)
	}
}

func TestEstimateZeroVariance(t *testing.T) {
	ws := []Window{
		{Cycles: 1000, Instrs: 500},
		{Cycles: 1000, Instrs: 500},
		{Cycles: 1000, Instrs: 500},
	}
	e := EstimateRate(ws, cyclesOf)
	if e.Degenerate {
		t.Fatal("identical windows marked degenerate")
	}
	if e.RelCI != 0 {
		t.Errorf("RelCI = %v, want exactly 0 for identical windows", e.RelCI)
	}
	if math.Abs(e.Rate-2.0) > 1e-12 {
		t.Errorf("rate = %v, want 2.0", e.Rate)
	}
}

func TestEstimateNoWindows(t *testing.T) {
	e := EstimateRate(nil, cyclesOf)
	if !e.Degenerate || e.Rate != 0 || e.RelCI != 0 || e.Windows != 0 {
		t.Fatalf("empty estimate = %+v, want degenerate zero", e)
	}
	// Windows with no instructions are unusable and must be dropped.
	e = EstimateRate([]Window{{Cycles: 10, Instrs: 0}}, cyclesOf)
	if !e.Degenerate || e.Windows != 0 {
		t.Fatalf("zero-instr windows not dropped: %+v", e)
	}
}

func TestEstimateZeroRateMetric(t *testing.T) {
	// A metric that never fires (e.g. misses under a perfect cache)
	// must not divide by zero computing the relative CI.
	ws := []Window{
		{Misses: 0, Instrs: 500},
		{Misses: 0, Instrs: 500},
	}
	e := EstimateRate(ws, func(w Window) float64 { return float64(w.Misses) })
	if e.Rate != 0 || e.RelCI != 0 || e.Degenerate {
		t.Fatalf("zero-rate estimate = %+v, want rate 0, RelCI 0, non-degenerate", e)
	}
	if e.Scale(1_000_000) != 0 {
		t.Fatal("zero rate scaled to nonzero count")
	}
}

func TestTQuantileTable(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{{0, 0}, {1, 12.706}, {2, 4.303}, {30, 2.042}, {31, 1.960}, {1000, 1.960}}
	for _, c := range cases {
		if got := tQuantile(c.df); got != c.want {
			t.Errorf("tQuantile(%d) = %v, want %v", c.df, got, c.want)
		}
	}
}

func TestConfigString(t *testing.T) {
	if (Config{}).String() != "off" {
		t.Errorf("zero config String = %q, want off", (Config{}).String())
	}
	c := Config{PeriodEvents: 1000, FunctionalWarmEvents: 100, DetailWarmEvents: 20, WindowEvents: 50}
	if c.String() != "P1000/F100/W20/M50" {
		t.Errorf("String = %q", c.String())
	}
	c.RandomOffset = true
	c.Seed = 9
	if c.String() != "P1000/F100/W20/M50/r9" {
		t.Errorf("String = %q", c.String())
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{PeriodEvents: 1000, WindowEvents: 40}
	d := c.WithDefaults()
	if d.DetailWarmEvents != 10 || d.FunctionalWarmEvents != 100 {
		t.Errorf("WithDefaults = %+v", d)
	}
	if z := (Config{}).WithDefaults(); z != (Config{}) {
		t.Errorf("disabled WithDefaults mutated config: %+v", z)
	}
}

// A compile-time check that estimated cycles carry their own unit.
var _ units.EstCycles = units.EstCycles(0)
