package exec

import "cgp/internal/db/catalog"

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (op CmpOp) eval(a, b int64) bool {
	switch op {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	}
	return false
}

// String returns the operator symbol.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// Pred is a tuple predicate. Cost is a synthetic instruction count used
// by the Filter operator to account evaluation work.
type Pred interface {
	Eval(t catalog.Tuple) bool
	Cost() int
}

// IntCmp compares an integer column against a constant.
type IntCmp struct {
	Col string
	Op  CmpOp
	Val int64
}

// Eval implements Pred.
func (p IntCmp) Eval(t catalog.Tuple) bool {
	return p.Op.eval(t.Int(t.Schema.ColIndex(p.Col)), p.Val)
}

// Cost implements Pred.
func (p IntCmp) Cost() int { return 8 }

// IntRange tests Lo <= col <= Hi.
type IntRange struct {
	Col    string
	Lo, Hi int64
}

// Eval implements Pred.
func (p IntRange) Eval(t catalog.Tuple) bool {
	v := t.Int(t.Schema.ColIndex(p.Col))
	return v >= p.Lo && v <= p.Hi
}

// Cost implements Pred.
func (p IntRange) Cost() int { return 12 }

// StrEq compares a string column against a constant.
type StrEq struct {
	Col string
	Val string
}

// Eval implements Pred.
func (p StrEq) Eval(t catalog.Tuple) bool {
	return t.Str(t.Schema.ColIndex(p.Col)) == p.Val
}

// Cost implements Pred.
func (p StrEq) Cost() int { return 20 }

// And is a conjunction.
type And []Pred

// Eval implements Pred.
func (p And) Eval(t catalog.Tuple) bool {
	for _, q := range p {
		if !q.Eval(t) {
			return false
		}
	}
	return true
}

// Cost implements Pred.
func (p And) Cost() int {
	c := 4
	for _, q := range p {
		c += q.Cost()
	}
	return c
}

// ColEq compares two integer columns (join predicates for NL join).
type ColEq struct {
	Left, Right string
}

// Eval implements Pred.
func (p ColEq) Eval(t catalog.Tuple) bool {
	return t.Int(t.Schema.ColIndex(p.Left)) == t.Int(t.Schema.ColIndex(p.Right))
}

// Cost implements Pred.
func (p ColEq) Cost() int { return 10 }

// ColCmp compares two integer columns with an arbitrary operator.
type ColCmp struct {
	Left, Right string
	Op          CmpOp
}

// Eval implements Pred.
func (p ColCmp) Eval(t catalog.Tuple) bool {
	return p.Op.eval(t.Int(t.Schema.ColIndex(p.Left)), t.Int(t.Schema.ColIndex(p.Right)))
}

// Cost implements Pred.
func (p ColCmp) Cost() int { return 10 }

// True matches everything.
type True struct{}

// Eval implements Pred.
func (True) Eval(catalog.Tuple) bool { return true }

// Cost implements Pred.
func (True) Cost() int { return 1 }
