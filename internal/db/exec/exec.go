// Package exec is the relational-operator layer built on top of the
// storage manager (Figure 1): sequential and indexed scans, selection,
// projection, nested-loops / index nested-loops / Grace hash joins,
// hash aggregation, sorting, and materialization into temp files, all as
// demand-driven iterators. A cooperative scheduler interleaves several
// query plans to reproduce the paper's concurrent-query workloads.
package exec

import (
	"cgp/internal/db/heap"
	"cgp/internal/db/probe"
	"cgp/internal/db/txn"

	"cgp/internal/db/catalog"
	"cgp/internal/program"
)

// Funcs holds the instrumented-function IDs of the operator layer and
// the thin query-processing layers above it (parser, optimizer,
// scheduler — Figure 1).
type Funcs struct {
	SeqScanOpen   program.FuncID
	SeqScanNext   program.FuncID
	IndexScanOpen program.FuncID
	IndexScanNext program.FuncID
	FilterNext    program.FuncID
	ProjectNext   program.FuncID
	NLJoinNext    program.FuncID
	IdxJoinNext   program.FuncID
	HashPartition program.FuncID
	HashBuild     program.FuncID
	HashProbe     program.FuncID
	AggOpen       program.FuncID
	AggNext       program.FuncID
	AggUpdate     program.FuncID
	SortOpen      program.FuncID
	SortNext      program.FuncID
	LimitNext     program.FuncID
	MatNext       program.FuncID
	EvalPred      program.FuncID
	GetField      program.FuncID
	HashTuple     program.FuncID
	CmpTuple      program.FuncID
	QueryParse    program.FuncID
	QueryOptimize program.FuncID
	QuerySchedule program.FuncID
	QueryExecute  program.FuncID
}

// RegisterFuncs registers the operator-layer functions.
func RegisterFuncs(reg *program.Registry) Funcs {
	return Funcs{
		SeqScanOpen:   reg.Register("Seq_scan_open", 190),
		SeqScanNext:   reg.Register("Seq_scan_next", 250),
		IndexScanOpen: reg.Register("Index_scan_open", 220),
		IndexScanNext: reg.Register("Index_scan_next", 290),
		FilterNext:    reg.Register("Filter_next", 150),
		ProjectNext:   reg.Register("Project_next", 130),
		NLJoinNext:    reg.Register("Nl_join_next", 330),
		IdxJoinNext:   reg.Register("Idx_join_next", 350),
		HashPartition: reg.Register("Hash_partition", 310),
		HashBuild:     reg.Register("Hash_build", 390),
		HashProbe:     reg.Register("Hash_probe", 370),
		AggOpen:       reg.Register("Agg_open", 260),
		AggNext:       reg.Register("Agg_next", 300),
		AggUpdate:     reg.Register("Agg_update", 210),
		SortOpen:      reg.Register("Sort_open", 430),
		SortNext:      reg.Register("Sort_next", 140),
		LimitNext:     reg.Register("Limit_next", 90),
		MatNext:       reg.Register("Materialize_next", 270),
		EvalPred:      reg.Register("Eval_predicate", 140),
		GetField:      reg.Register("Tuple_get_field", 80),
		HashTuple:     reg.Register("Tuple_hash", 110),
		CmpTuple:      reg.Register("Tuple_compare", 115),
		QueryParse:    reg.Register("Query_parse", 640),
		QueryOptimize: reg.Register("Query_optimize", 720),
		QuerySchedule: reg.Register("Query_schedule", 260),
		QueryExecute:  reg.Register("Query_execute", 380),
	}
}

// Context carries everything an operator tree needs at run time.
type Context struct {
	Txn   *txn.Txn
	Pr    *probe.Probe
	Fns   Funcs
	Arena *probe.Arena
	// TempFile creates a scratch heap file (Grace join partitions,
	// SELECT INTO targets).
	TempFile func(name string) (*heap.File, error)
}

// Iterator is the demand-driven operator interface.
type Iterator interface {
	Open() error
	// Next returns the next tuple; ok=false marks exhaustion. Returned
	// tuples may alias operator state and are valid until the following
	// Next call.
	Next() (catalog.Tuple, bool, error)
	Close() error
	Schema() *catalog.Schema
}

// Run drains it, invoking fn per tuple (fn may be nil). It opens and
// closes the iterator.
func Run(it Iterator, fn func(catalog.Tuple) error) (int64, error) {
	if err := it.Open(); err != nil {
		return 0, err
	}
	var n int64
	for {
		t, ok, err := it.Next()
		if err != nil {
			it.Close()
			return n, err
		}
		if !ok {
			break
		}
		n++
		if fn != nil {
			if err := fn(t); err != nil {
				it.Close()
				return n, err
			}
		}
	}
	return n, it.Close()
}

// Collect drains it into memory (tests and small results).
func Collect(it Iterator) ([]catalog.Tuple, error) {
	var out []catalog.Tuple
	_, err := Run(it, func(t catalog.Tuple) error {
		out = append(out, t.Copy())
		return nil
	})
	return out, err
}
