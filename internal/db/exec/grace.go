package exec

import (
	"fmt"

	"cgp/internal/db/catalog"
	"cgp/internal/db/heap"
	"cgp/internal/isa"
)

// GraceHashJoin is the Grace hash join of §4.1: both inputs are hashed
// into partition files (temp heap files written through Create_rec —
// one of the paper's motivating uses of the storage-manager entry
// points), then each partition pair is joined with an in-memory hash
// table built on the left side.
type GraceHashJoin struct {
	Ctx        *Context
	Left       Iterator
	Right      Iterator
	LeftCol    string
	RightCol   string
	Partitions int
	prefix     []string

	out      *joinOutput
	leftIdx  int
	rightIdx int

	leftParts  []*heap.File
	rightParts []*heap.File

	// per-partition probe state
	part      int
	table     map[int64][]catalog.Tuple
	tableAddr isa.Addr
	probe     *SeqScan
	matches   []catalog.Tuple
	matchPos  int
	curRight  catalog.Tuple
	opened    bool
}

// NewGraceHashJoin builds a Grace hash join with the given fan-out.
// The optional prefix renames duplicate right-side columns (default
// "r_").
func NewGraceHashJoin(ctx *Context, left, right Iterator, leftCol, rightCol string, partitions int, prefix ...string) *GraceHashJoin {
	if partitions <= 0 {
		partitions = 8
	}
	return &GraceHashJoin{
		Ctx: ctx, Left: left, Right: right,
		LeftCol: leftCol, RightCol: rightCol, Partitions: partitions, prefix: prefix,
		leftIdx:  left.Schema().ColIndex(leftCol),
		rightIdx: right.Schema().ColIndex(rightCol),
	}
}

// Schema implements Iterator.
func (j *GraceHashJoin) Schema() *catalog.Schema {
	if j.out == nil {
		j.out = newJoinOutput(j.Left.Schema(), j.Right.Schema(), j.prefix)
	}
	return j.out.sch
}

func hashKey(k int64) uint64 {
	x := uint64(k) * 0x9E3779B97F4A7C15
	x ^= x >> 32
	return x
}

// Open implements Iterator: the partition phase.
func (j *GraceHashJoin) Open() error {
	j.Schema()
	var err error
	j.leftParts, err = j.partition(j.Left, j.leftIdx, "L")
	if err != nil {
		return err
	}
	j.rightParts, err = j.partition(j.Right, j.rightIdx, "R")
	if err != nil {
		return err
	}
	j.part = -1
	j.opened = true
	j.table = nil
	j.matches = nil
	return nil
}

// partition hashes every input tuple into one of the temp files.
func (j *GraceHashJoin) partition(in Iterator, keyIdx int, tag string) ([]*heap.File, error) {
	j.Ctx.Pr.Enter(j.Ctx.Fns.HashPartition)
	defer j.Ctx.Pr.Exit()
	j.Ctx.Pr.Work(40)
	parts := make([]*heap.File, j.Partitions)
	for i := range parts {
		f, err := j.Ctx.TempFile(fmt.Sprintf("grace_%s_%d", tag, i))
		if err != nil {
			return nil, err
		}
		parts[i] = f
	}
	_, err := Run(in, func(t catalog.Tuple) error {
		j.Ctx.Pr.Enter(j.Ctx.Fns.HashTuple)
		j.Ctx.Pr.Work(10)
		h := hashKey(t.Int(keyIdx))
		j.Ctx.Pr.Exit()
		p := int(h % uint64(j.Partitions))
		_, err := parts[p].CreateRec(j.Ctx.Txn, t.Buf)
		return err
	})
	if err != nil {
		return nil, err
	}
	return parts, nil
}

// nextPartition builds the hash table for the next partition pair.
func (j *GraceHashJoin) nextPartition() (bool, error) {
	for {
		j.part++
		if j.part >= j.Partitions {
			return false, nil
		}
		j.Ctx.Pr.Enter(j.Ctx.Fns.HashBuild)
		j.Ctx.Pr.Work(30)
		j.table = make(map[int64][]catalog.Tuple)
		j.tableAddr = j.Ctx.Arena.Alloc(64 * 1024)
		build := NewSeqScan(j.Ctx, j.leftParts[j.part], j.Left.Schema())
		n, err := Run(build, func(t catalog.Tuple) error {
			k := t.Int(j.leftIdx)
			j.table[k] = append(j.table[k], t.Copy())
			// Hash-bucket insertion touches the table's memory.
			j.Ctx.Pr.Data(j.tableAddr+isa.Addr(hashKey(k)%(64*1024-64)), 24, true)
			return nil
		})
		j.Ctx.Pr.Exit()
		if err != nil {
			return false, err
		}
		j.probe = NewSeqScan(j.Ctx, j.rightParts[j.part], j.Right.Schema())
		if err := j.probe.Open(); err != nil {
			return false, err
		}
		if n == 0 {
			// Empty build side: skip the partition entirely (after
			// closing the probe scan).
			j.probe.Close()
			j.probe = nil
			continue
		}
		return true, nil
	}
}

// Next implements Iterator: the probe phase.
func (j *GraceHashJoin) Next() (catalog.Tuple, bool, error) {
	j.Ctx.Pr.Enter(j.Ctx.Fns.HashProbe)
	defer j.Ctx.Pr.Exit()
	if !j.opened {
		return catalog.Tuple{}, false, fmt.Errorf("exec: GraceHashJoin.Next before Open")
	}
	for {
		if j.matchPos < len(j.matches) {
			m := j.matches[j.matchPos]
			j.matchPos++
			return j.out.emit(m, j.curRight), true, nil
		}
		if j.probe == nil {
			ok, err := j.nextPartition()
			if err != nil {
				return catalog.Tuple{}, false, err
			}
			if !ok {
				return catalog.Tuple{}, false, nil
			}
			continue
		}
		t, ok, err := j.probe.Next()
		if err != nil {
			return catalog.Tuple{}, false, err
		}
		if !ok {
			j.probe.Close()
			j.probe = nil
			continue
		}
		j.Ctx.Pr.Enter(j.Ctx.Fns.HashTuple)
		j.Ctx.Pr.Work(10)
		k := t.Int(j.rightIdx)
		j.Ctx.Pr.Exit()
		j.Ctx.Pr.Data(j.tableAddr+isa.Addr(hashKey(k)%(64*1024-64)), 24, false)
		if ms := j.table[k]; len(ms) > 0 {
			j.curRight = t.Copy()
			j.matches = ms
			j.matchPos = 0
		}
	}
}

// Close implements Iterator.
func (j *GraceHashJoin) Close() error {
	if j.probe != nil {
		j.probe.Close()
		j.probe = nil
	}
	j.table = nil
	j.matches = nil
	return nil
}
