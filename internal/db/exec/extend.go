package exec

import "cgp/internal/db/catalog"

// Extend appends one computed integer column to each input tuple (e.g.
// TPC-H's l_extendedprice*(1-l_discount) revenue expression).
type Extend struct {
	Ctx   *Context
	Child Iterator
	Name  string
	Fn    func(catalog.Tuple) int64
	// WorkCost is the synthetic instruction cost of the expression.
	WorkCost int

	sch *catalog.Schema
	buf []byte
}

// NewExtend builds a computed-column operator.
func NewExtend(ctx *Context, child Iterator, name string, cost int, fn func(catalog.Tuple) int64) *Extend {
	cols := make([]catalog.Column, 0, child.Schema().NumCols()+1)
	for i := 0; i < child.Schema().NumCols(); i++ {
		cols = append(cols, child.Schema().Col(i))
	}
	cols = append(cols, catalog.Column{Name: name, Type: catalog.Int})
	return &Extend{
		Ctx: ctx, Child: child, Name: name, Fn: fn, WorkCost: cost,
		sch: catalog.NewSchema(cols...),
	}
}

// Schema implements Iterator.
func (x *Extend) Schema() *catalog.Schema { return x.sch }

// Open implements Iterator.
func (x *Extend) Open() error {
	x.buf = make([]byte, x.sch.Size())
	return x.Child.Open()
}

// Next implements Iterator.
func (x *Extend) Next() (catalog.Tuple, bool, error) {
	t, ok, err := x.Child.Next()
	if err != nil || !ok {
		return catalog.Tuple{}, false, err
	}
	x.Ctx.Pr.Enter(x.Ctx.Fns.EvalPred)
	x.Ctx.Pr.Work(x.WorkCost)
	v := x.Fn(t)
	x.Ctx.Pr.Exit()
	copy(x.buf, t.Buf)
	for s, i := 0, len(t.Buf); s < 64; s, i = s+8, i+1 {
		x.buf[i] = byte(uint64(v) >> s)
	}
	return catalog.Tuple{Schema: x.sch, Buf: x.buf}, true, nil
}

// Close implements Iterator.
func (x *Extend) Close() error { return x.Child.Close() }
