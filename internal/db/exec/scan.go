package exec

import (
	"fmt"

	"cgp/internal/db/catalog"
	"cgp/internal/db/heap"
	"cgp/internal/db/index"
)

// SeqScan reads every record of a heap file in physical order.
type SeqScan struct {
	Ctx    *Context
	File   *heap.File
	Sch    *catalog.Schema
	cursor *heap.Scan
}

// NewSeqScan builds a sequential scan.
func NewSeqScan(ctx *Context, file *heap.File, sch *catalog.Schema) *SeqScan {
	return &SeqScan{Ctx: ctx, File: file, Sch: sch}
}

// Schema implements Iterator.
func (s *SeqScan) Schema() *catalog.Schema { return s.Sch }

// Open implements Iterator.
func (s *SeqScan) Open() error {
	s.Ctx.Pr.Enter(s.Ctx.Fns.SeqScanOpen)
	defer s.Ctx.Pr.Exit()
	s.Ctx.Pr.Work(24)
	s.cursor = s.File.OpenScan(s.Ctx.Txn)
	return nil
}

// Next implements Iterator.
func (s *SeqScan) Next() (catalog.Tuple, bool, error) {
	s.Ctx.Pr.Enter(s.Ctx.Fns.SeqScanNext)
	defer s.Ctx.Pr.Exit()
	s.Ctx.Pr.Work(12)
	rec, _, ok, err := s.cursor.Next()
	if err != nil || !ok {
		return catalog.Tuple{}, false, err
	}
	return catalog.Tuple{Schema: s.Sch, Buf: rec}, true, nil
}

// Close implements Iterator.
func (s *SeqScan) Close() error {
	if s.cursor != nil {
		s.cursor.Close()
		s.cursor = nil
	}
	return nil
}

// IndexScan fetches records whose key column lies in [Lo, Hi] via a
// B+-tree, in key order. It serves both the clustered and non-clustered
// indexed selections of the Wisconsin benchmark; for the non-clustered
// case each qualifying RID costs a random record fetch, which is visible
// in the simulated data stream.
type IndexScan struct {
	Ctx    *Context
	Tree   *index.Tree
	File   *heap.File
	Sch    *catalog.Schema
	Lo, Hi int64

	cursor *index.Cursor
	buf    []byte
}

// NewIndexScan builds an index range scan.
func NewIndexScan(ctx *Context, tree *index.Tree, file *heap.File, sch *catalog.Schema, lo, hi int64) *IndexScan {
	return &IndexScan{Ctx: ctx, Tree: tree, File: file, Sch: sch, Lo: lo, Hi: hi}
}

// Schema implements Iterator.
func (s *IndexScan) Schema() *catalog.Schema { return s.Sch }

// Open implements Iterator.
func (s *IndexScan) Open() error {
	s.Ctx.Pr.Enter(s.Ctx.Fns.IndexScanOpen)
	defer s.Ctx.Pr.Exit()
	s.Ctx.Pr.Work(26)
	cur, err := s.Tree.OpenScan(s.Lo, s.Hi, true)
	if err != nil {
		return err
	}
	s.cursor = cur
	return nil
}

// Next implements Iterator.
func (s *IndexScan) Next() (catalog.Tuple, bool, error) {
	s.Ctx.Pr.Enter(s.Ctx.Fns.IndexScanNext)
	defer s.Ctx.Pr.Exit()
	s.Ctx.Pr.Work(14)
	_, rid, ok, err := s.cursor.Next()
	if err != nil || !ok {
		return catalog.Tuple{}, false, err
	}
	rec, err := s.File.ReadRec(s.Ctx.Txn, rid)
	if err != nil {
		return catalog.Tuple{}, false, fmt.Errorf("index scan: %w", err)
	}
	s.buf = rec
	return catalog.Tuple{Schema: s.Sch, Buf: s.buf}, true, nil
}

// Close implements Iterator.
func (s *IndexScan) Close() error {
	if s.cursor != nil {
		s.cursor.Close()
		s.cursor = nil
	}
	return nil
}

// Fetch looks up one key and returns the matching record (Wisconsin's
// single-tuple select).
func Fetch(ctx *Context, tree *index.Tree, file *heap.File, sch *catalog.Schema, key int64) (catalog.Tuple, bool, error) {
	ctx.Pr.Enter(ctx.Fns.IndexScanNext)
	defer ctx.Pr.Exit()
	ctx.Pr.Work(14)
	rid, err := tree.Search(key)
	if err != nil {
		return catalog.Tuple{}, false, nil // absent key is not an error here
	}
	rec, err := file.ReadRec(ctx.Txn, rid)
	if err != nil {
		return catalog.Tuple{}, false, err
	}
	return catalog.Tuple{Schema: sch, Buf: rec}, true, nil
}

// Filter passes through tuples matching a predicate.
type Filter struct {
	Ctx   *Context
	Child Iterator
	Pred  Pred
}

// NewFilter builds a selection.
func NewFilter(ctx *Context, child Iterator, pred Pred) *Filter {
	return &Filter{Ctx: ctx, Child: child, Pred: pred}
}

// Schema implements Iterator.
func (f *Filter) Schema() *catalog.Schema { return f.Child.Schema() }

// Open implements Iterator.
func (f *Filter) Open() error { return f.Child.Open() }

// Next implements Iterator.
func (f *Filter) Next() (catalog.Tuple, bool, error) {
	f.Ctx.Pr.Enter(f.Ctx.Fns.FilterNext)
	defer f.Ctx.Pr.Exit()
	for {
		t, ok, err := f.Child.Next()
		if err != nil || !ok {
			return catalog.Tuple{}, false, err
		}
		f.Ctx.Pr.Enter(f.Ctx.Fns.EvalPred)
		f.Ctx.Pr.Work(f.Pred.Cost())
		match := f.Pred.Eval(t)
		f.Ctx.Pr.Exit()
		if match {
			return t, true, nil
		}
	}
}

// Close implements Iterator.
func (f *Filter) Close() error { return f.Child.Close() }

// Project narrows tuples to a column subset.
type Project struct {
	Ctx   *Context
	Child Iterator
	Cols  []string

	sch  *catalog.Schema
	idxs []int
	buf  []byte
}

// NewProject builds a projection.
func NewProject(ctx *Context, child Iterator, cols ...string) *Project {
	sch := child.Schema().Project(cols...)
	idxs := make([]int, len(cols))
	for i, c := range cols {
		idxs[i] = child.Schema().ColIndex(c)
	}
	return &Project{Ctx: ctx, Child: child, Cols: cols, sch: sch, idxs: idxs}
}

// Schema implements Iterator.
func (p *Project) Schema() *catalog.Schema { return p.sch }

// Open implements Iterator.
func (p *Project) Open() error {
	p.buf = make([]byte, p.sch.Size())
	return p.Child.Open()
}

// Next implements Iterator.
func (p *Project) Next() (catalog.Tuple, bool, error) {
	p.Ctx.Pr.Enter(p.Ctx.Fns.ProjectNext)
	defer p.Ctx.Pr.Exit()
	t, ok, err := p.Child.Next()
	if err != nil || !ok {
		return catalog.Tuple{}, false, err
	}
	p.Ctx.Pr.Work(6 + 4*len(p.idxs))
	out := 0
	for j, src := range p.idxs {
		w := colWidth(p.sch.Col(j))
		srcOff := t.Schema.Offset(src)
		copy(p.buf[out:out+w], t.Buf[srcOff:srcOff+w])
		out += w
	}
	return catalog.Tuple{Schema: p.sch, Buf: p.buf}, true, nil
}

// Close implements Iterator.
func (p *Project) Close() error { return p.Child.Close() }

func colWidth(c catalog.Column) int {
	if c.Type == catalog.Int {
		return 8
	}
	return c.Len
}

// Limit yields at most N tuples.
type Limit struct {
	Ctx   *Context
	Child Iterator
	N     int64
	seen  int64
}

// NewLimit builds a limit.
func NewLimit(ctx *Context, child Iterator, n int64) *Limit {
	return &Limit{Ctx: ctx, Child: child, N: n}
}

// Schema implements Iterator.
func (l *Limit) Schema() *catalog.Schema { return l.Child.Schema() }

// Open implements Iterator.
func (l *Limit) Open() error {
	l.seen = 0
	return l.Child.Open()
}

// Next implements Iterator.
func (l *Limit) Next() (catalog.Tuple, bool, error) {
	l.Ctx.Pr.Enter(l.Ctx.Fns.LimitNext)
	defer l.Ctx.Pr.Exit()
	l.Ctx.Pr.Work(4)
	if l.seen >= l.N {
		return catalog.Tuple{}, false, nil
	}
	t, ok, err := l.Child.Next()
	if err != nil || !ok {
		return catalog.Tuple{}, false, err
	}
	l.seen++
	return t, true, nil
}

// Close implements Iterator.
func (l *Limit) Close() error { return l.Child.Close() }
