package exec

import (
	"fmt"
	"sort"

	"cgp/internal/db/catalog"
	"cgp/internal/isa"
)

// AggOp is an aggregate function.
type AggOp uint8

// Aggregate operators.
const (
	Count AggOp = iota
	Sum
	Min
	Max
	Avg
)

// String returns the SQL name.
func (op AggOp) String() string {
	switch op {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	}
	return "?"
}

// Agg is one aggregate column specification.
type Agg struct {
	Op  AggOp
	Col string // ignored for Count
	As  string
}

type accum struct {
	count int64
	sum   int64
	min   int64
	max   int64
	set   bool
}

func (a *accum) update(v int64) {
	a.count++
	a.sum += v
	if !a.set || v < a.min {
		a.min = v
	}
	if !a.set || v > a.max {
		a.max = v
	}
	a.set = true
}

func (a *accum) result(op AggOp) int64 {
	switch op {
	case Count:
		return a.count
	case Sum:
		return a.sum
	case Min:
		return a.min
	case Max:
		return a.max
	case Avg:
		if a.count == 0 {
			return 0
		}
		return a.sum / a.count
	}
	return 0
}

// HashAggregate groups its input by integer and/or string columns and
// computes aggregates per group (the paper's hash-based aggregate
// operator). Output groups are emitted in deterministic (sorted key)
// order.
type HashAggregate struct {
	Ctx      *Context
	Child    Iterator
	GroupBy  []string
	Aggs     []Agg
	sch      *catalog.Schema
	groupIdx []int

	groups    map[string][]accum
	groupRep  map[string]catalog.Tuple
	keys      []string
	pos       int
	buf       []byte
	tableAddr isa.Addr
}

// NewHashAggregate builds a grouped aggregation.
func NewHashAggregate(ctx *Context, child Iterator, groupBy []string, aggs []Agg) *HashAggregate {
	cols := make([]catalog.Column, 0, len(groupBy)+len(aggs))
	idxs := make([]int, len(groupBy))
	for i, g := range groupBy {
		idxs[i] = child.Schema().ColIndex(g)
		cols = append(cols, child.Schema().Col(idxs[i]))
	}
	for _, a := range aggs {
		name := a.As
		if name == "" {
			name = fmt.Sprintf("%s_%s", a.Op, a.Col)
		}
		cols = append(cols, catalog.Column{Name: name, Type: catalog.Int})
	}
	return &HashAggregate{
		Ctx: ctx, Child: child, GroupBy: groupBy, Aggs: aggs,
		sch: catalog.NewSchema(cols...), groupIdx: idxs,
	}
}

// Schema implements Iterator.
func (h *HashAggregate) Schema() *catalog.Schema { return h.sch }

// Open implements Iterator: consumes the entire input building the
// group table.
func (h *HashAggregate) Open() error {
	h.Ctx.Pr.Enter(h.Ctx.Fns.AggOpen)
	defer h.Ctx.Pr.Exit()
	h.Ctx.Pr.Work(36)
	h.groups = make(map[string][]accum)
	h.groupRep = make(map[string]catalog.Tuple)
	h.tableAddr = h.Ctx.Arena.Alloc(64 * 1024)
	h.buf = make([]byte, h.sch.Size())
	childSch := h.Child.Schema()
	aggIdx := make([]int, len(h.Aggs))
	for i, a := range h.Aggs {
		if a.Op != Count {
			aggIdx[i] = childSch.ColIndex(a.Col)
		}
	}
	_, err := Run(h.Child, func(t catalog.Tuple) error {
		h.Ctx.Pr.Enter(h.Ctx.Fns.AggUpdate)
		defer h.Ctx.Pr.Exit()
		h.Ctx.Pr.Work(14 + 6*len(h.Aggs))
		key := h.groupKey(t)
		h.Ctx.Pr.Data(h.tableAddr+isa.Addr(strHash(key)%(64*1024-64)), 32, true)
		accs := h.groups[key]
		if accs == nil {
			accs = make([]accum, len(h.Aggs))
			h.groups[key] = accs
			h.groupRep[key] = t.Copy()
			h.keys = append(h.keys, key)
		}
		for i, a := range h.Aggs {
			var v int64 = 1
			if a.Op != Count {
				v = t.Int(aggIdx[i])
			}
			accs[i].update(v)
		}
		// map writes move the slice header; store back
		h.groups[key] = accs
		return nil
	})
	if err != nil {
		return err
	}
	sort.Strings(h.keys)
	h.pos = 0
	return nil
}

func (h *HashAggregate) groupKey(t catalog.Tuple) string {
	h.Ctx.Pr.Enter(h.Ctx.Fns.HashTuple)
	defer h.Ctx.Pr.Exit()
	h.Ctx.Pr.Work(8 + 4*len(h.groupIdx))
	key := make([]byte, 0, 16)
	for _, gi := range h.groupIdx {
		c := t.Schema.Col(gi)
		if c.Type == catalog.Int {
			v := t.Int(gi)
			for s := 0; s < 64; s += 8 {
				key = append(key, byte(v>>s))
			}
		} else {
			key = append(key, t.Str(gi)...)
			key = append(key, 0)
		}
	}
	return string(key)
}

func strHash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Next implements Iterator: emits one group per call.
func (h *HashAggregate) Next() (catalog.Tuple, bool, error) {
	h.Ctx.Pr.Enter(h.Ctx.Fns.AggNext)
	defer h.Ctx.Pr.Exit()
	h.Ctx.Pr.Work(10)
	if h.pos >= len(h.keys) {
		return catalog.Tuple{}, false, nil
	}
	key := h.keys[h.pos]
	h.pos++
	rep := h.groupRep[key]
	accs := h.groups[key]
	vals := make([]catalog.Value, 0, h.sch.NumCols())
	for i, gi := range h.groupIdx {
		c := h.sch.Col(i)
		if c.Type == catalog.Int {
			vals = append(vals, catalog.V(rep.Int(gi)))
		} else {
			vals = append(vals, catalog.SV(rep.Str(gi)))
		}
	}
	for i, a := range h.Aggs {
		vals = append(vals, catalog.V(accs[i].result(a.Op)))
	}
	copy(h.buf, h.sch.Encode(vals))
	return catalog.Tuple{Schema: h.sch, Buf: h.buf}, true, nil
}

// Close implements Iterator.
func (h *HashAggregate) Close() error {
	h.groups = nil
	h.groupRep = nil
	h.keys = nil
	return nil
}
