// Operators are tested through the assembled engine (external test
// package to avoid the db->exec import cycle).
package exec_test

import (
	"testing"

	"cgp/internal/db"
	"cgp/internal/db/catalog"
	"cgp/internal/db/exec"
	"cgp/internal/db/txn"
)

type env struct {
	e   *db.Engine
	tx  *txn.Txn
	ctx *exec.Context
}

// newEnv loads a small two-table database:
//
//	nums(k, v, grp): k=0..n-1, v=k*10, grp=k%4
//	dims(k, label):  k=0..9
func newEnv(t *testing.T, n int) *env {
	t.Helper()
	e := db.NewEngine(db.Options{BufferFrames: 256})
	tx := e.Txns.Begin()

	nums, err := e.CreateTable("nums", catalog.NewSchema(
		catalog.Column{Name: "k", Type: catalog.Int},
		catalog.Column{Name: "v", Type: catalog.Int},
		catalog.Column{Name: "grp", Type: catalog.Int},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := e.InsertRow(tx, nums, []catalog.Value{
			catalog.V(int64(i)), catalog.V(int64(i * 10)), catalog.V(int64(i % 4)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.CreateIndex(tx, "nums", "k", true); err != nil {
		t.Fatal(err)
	}

	dims, err := e.CreateTable("dims", catalog.NewSchema(
		catalog.Column{Name: "k", Type: catalog.Int},
		catalog.Column{Name: "label", Type: catalog.String, Len: 8},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.InsertRow(tx, dims, []catalog.Value{
			catalog.V(int64(i)), catalog.SV(string(rune('a' + i))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Txns.Commit(tx); err != nil {
		t.Fatal(err)
	}
	tx2 := e.Txns.Begin()
	return &env{e: e, tx: tx2, ctx: e.NewContext(tx2)}
}

func (v *env) scanNums() *exec.SeqScan {
	tbl := v.e.MustTable("nums")
	return exec.NewSeqScan(v.ctx, tbl.Heap, tbl.Schema)
}

func (v *env) scanDims() *exec.SeqScan {
	tbl := v.e.MustTable("dims")
	return exec.NewSeqScan(v.ctx, tbl.Heap, tbl.Schema)
}

func TestSeqScanCount(t *testing.T) {
	v := newEnv(t, 100)
	n, err := exec.Run(v.scanNums(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("scan returned %d rows", n)
	}
}

func TestFilterSelectivity(t *testing.T) {
	v := newEnv(t, 100)
	it := exec.NewFilter(v.ctx, v.scanNums(), exec.IntRange{Col: "k", Lo: 10, Hi: 19})
	rows, err := exec.Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("filter returned %d rows", len(rows))
	}
	for _, r := range rows {
		k := r.Int(0)
		if k < 10 || k > 19 {
			t.Errorf("row k=%d escaped filter", k)
		}
	}
}

func TestFilterOperators(t *testing.T) {
	v := newEnv(t, 20)
	cases := []struct {
		pred exec.Pred
		want int
	}{
		{exec.IntCmp{Col: "k", Op: exec.Eq, Val: 5}, 1},
		{exec.IntCmp{Col: "k", Op: exec.Ne, Val: 5}, 19},
		{exec.IntCmp{Col: "k", Op: exec.Lt, Val: 5}, 5},
		{exec.IntCmp{Col: "k", Op: exec.Le, Val: 5}, 6},
		{exec.IntCmp{Col: "k", Op: exec.Gt, Val: 15}, 4},
		{exec.IntCmp{Col: "k", Op: exec.Ge, Val: 15}, 5},
		{exec.And{exec.IntCmp{Col: "k", Op: exec.Ge, Val: 5}, exec.IntCmp{Col: "k", Op: exec.Lt, Val: 8}}, 3},
		{exec.True{}, 20},
	}
	for _, c := range cases {
		it := exec.NewFilter(v.ctx, v.scanNums(), c.pred)
		n, err := exec.Run(it, nil)
		if err != nil {
			t.Fatal(err)
		}
		if int(n) != c.want {
			t.Errorf("pred %+v: %d rows, want %d", c.pred, n, c.want)
		}
	}
}

func TestIndexScanMatchesFilter(t *testing.T) {
	v := newEnv(t, 200)
	tbl := v.e.MustTable("nums")
	idx := exec.NewIndexScan(v.ctx, tbl.Indexes["k"], tbl.Heap, tbl.Schema, 50, 69)
	rows, err := exec.Collect(idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("index scan returned %d rows", len(rows))
	}
	for i, r := range rows {
		if r.Int(0) != int64(50+i) {
			t.Errorf("row %d k=%d (index scans are key-ordered)", i, r.Int(0))
		}
		if r.Int(1) != r.Int(0)*10 {
			t.Errorf("row %d v=%d", i, r.Int(1))
		}
	}
}

func TestFetchSingleTuple(t *testing.T) {
	v := newEnv(t, 100)
	tbl := v.e.MustTable("nums")
	tup, ok, err := exec.Fetch(v.ctx, tbl.Indexes["k"], tbl.Heap, tbl.Schema, 42)
	if err != nil || !ok {
		t.Fatalf("fetch: %v %v", ok, err)
	}
	if tup.Int(1) != 420 {
		t.Errorf("v = %d", tup.Int(1))
	}
	if _, ok, _ := exec.Fetch(v.ctx, tbl.Indexes["k"], tbl.Heap, tbl.Schema, 9999); ok {
		t.Error("fetch of absent key succeeded")
	}
}

func TestProject(t *testing.T) {
	v := newEnv(t, 10)
	it := exec.NewProject(v.ctx, v.scanNums(), "v", "k")
	rows, err := exec.Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if rows[3].Schema.ColNames() != "v,k" {
		t.Errorf("schema = %s", rows[3].Schema.ColNames())
	}
	if rows[3].Int(0) != 30 || rows[3].Int(1) != 3 {
		t.Errorf("row 3 = %d,%d", rows[3].Int(0), rows[3].Int(1))
	}
}

func TestLimit(t *testing.T) {
	v := newEnv(t, 100)
	n, err := exec.Run(exec.NewLimit(v.ctx, v.scanNums(), 7), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Errorf("limit returned %d", n)
	}
}

func TestExtend(t *testing.T) {
	v := newEnv(t, 10)
	it := exec.NewExtend(v.ctx, v.scanNums(), "double", 5, func(tup catalog.Tuple) int64 {
		return 2 * tup.Int(1)
	})
	rows, err := exec.Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	di := rows[0].Schema.ColIndex("double")
	for _, r := range rows {
		if r.Int(di) != 2*r.Int(1) {
			t.Errorf("double = %d, v = %d", r.Int(di), r.Int(1))
		}
	}
}

// joins: NL, index-NL and Grace hash must agree.
func TestJoinsAgree(t *testing.T) {
	v := newEnv(t, 40)
	tbl := v.e.MustTable("nums")

	collectKeys := func(it exec.Iterator, leftCol, rightCol string) map[[2]int64]int {
		t.Helper()
		rows, err := exec.Collect(it)
		if err != nil {
			t.Fatal(err)
		}
		out := map[[2]int64]int{}
		for _, r := range rows {
			key := [2]int64{r.Int(r.Schema.ColIndex(leftCol)), r.Int(r.Schema.ColIndex(rightCol))}
			out[key]++
		}
		return out
	}

	// dims.k = nums.grp: each dim 0..3 matches 10 rows.
	nl := exec.NewNLJoin(v.ctx, v.scanDims(), v.scanNums(),
		exec.ColEq{Left: "k", Right: "grp"})
	nlRows := collectKeys(nl, "k", "r_k")

	grace := exec.NewGraceHashJoin(v.ctx, v.scanDims(), v.scanNums(), "k", "grp", 4)
	graceRows := collectKeys(grace, "k", "r_k")

	if len(nlRows) != len(graceRows) {
		t.Fatalf("NL %d pairs, Grace %d pairs", len(nlRows), len(graceRows))
	}
	total := 0
	for k, c := range nlRows {
		if graceRows[k] != c {
			t.Fatalf("pair %v: NL %d, Grace %d", k, c, graceRows[k])
		}
		total += c
	}
	if total != 40 { // every nums row has grp in 0..3 = dims keys
		t.Errorf("join cardinality %d, want 40", total)
	}

	// Index NL join on nums.k against dims.k (unique): 10 matches.
	inl := exec.NewIndexNLJoin(v.ctx, v.scanDims(), "k",
		tbl.Indexes["k"], tbl.Heap, tbl.Schema)
	inlRows, err := exec.Collect(inl)
	if err != nil {
		t.Fatal(err)
	}
	if len(inlRows) != 10 {
		t.Errorf("INLJ returned %d rows, want 10", len(inlRows))
	}
	for _, r := range inlRows {
		if r.Int(r.Schema.ColIndex("k")) != r.Int(r.Schema.ColIndex("r_k")) {
			t.Error("INLJ joined mismatched keys")
		}
	}
}

func TestHashAggregate(t *testing.T) {
	v := newEnv(t, 40)
	agg := exec.NewHashAggregate(v.ctx, v.scanNums(), []string{"grp"}, []exec.Agg{
		{Op: exec.Count, As: "n"},
		{Op: exec.Sum, Col: "v", As: "sum_v"},
		{Op: exec.Min, Col: "k", As: "min_k"},
		{Op: exec.Max, Col: "k", As: "max_k"},
		{Op: exec.Avg, Col: "v", As: "avg_v"},
	})
	rows, err := exec.Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("groups = %d", len(rows))
	}
	for _, r := range rows {
		g := r.Int(0)
		// group g: k = g, g+4, ..., g+36 (10 values); v = 10k
		wantSum := int64(0)
		for k := g; k < 40; k += 4 {
			wantSum += k * 10
		}
		if r.Int(r.Schema.ColIndex("n")) != 10 {
			t.Errorf("group %d count = %d", g, r.Int(1))
		}
		if got := r.Int(r.Schema.ColIndex("sum_v")); got != wantSum {
			t.Errorf("group %d sum = %d, want %d", g, got, wantSum)
		}
		if got := r.Int(r.Schema.ColIndex("min_k")); got != g {
			t.Errorf("group %d min = %d", g, got)
		}
		if got := r.Int(r.Schema.ColIndex("max_k")); got != g+36 {
			t.Errorf("group %d max = %d", g, got)
		}
		if got := r.Int(r.Schema.ColIndex("avg_v")); got != wantSum/10 {
			t.Errorf("group %d avg = %d", g, got)
		}
	}
}

func TestGlobalAggregate(t *testing.T) {
	v := newEnv(t, 100)
	agg := exec.NewHashAggregate(v.ctx, v.scanNums(), nil, []exec.Agg{
		{Op: exec.Sum, Col: "k", As: "total"},
	})
	rows, err := exec.Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Int(0) != 99*100/2 {
		t.Fatalf("global agg = %+v", rows)
	}
}

func TestSortAscendingDescending(t *testing.T) {
	v := newEnv(t, 50)
	srt := exec.NewSort(v.ctx, v.scanNums(), exec.SortKey{Col: "grp"}, exec.SortKey{Col: "k", Desc: true})
	rows, err := exec.Collect(srt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a.Int(2) > b.Int(2) {
			t.Fatalf("grp order broken at %d", i)
		}
		if a.Int(2) == b.Int(2) && a.Int(0) < b.Int(0) {
			t.Fatalf("k desc order broken at %d", i)
		}
	}
}

func TestMaterializeIntoTemp(t *testing.T) {
	v := newEnv(t, 30)
	tmp, err := v.e.TempFile("result")
	if err != nil {
		t.Fatal(err)
	}
	it := exec.NewFilter(v.ctx, v.scanNums(), exec.IntCmp{Col: "k", Op: exec.Lt, Val: 10})
	n, err := exec.Materialize(v.ctx, it, tmp)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || tmp.NumRecords() != 10 {
		t.Errorf("materialized %d rows, temp has %d", n, tmp.NumRecords())
	}
	// The temp file is scannable with the source schema.
	tblSchema := v.e.MustTable("nums").Schema
	back := exec.NewSeqScan(v.ctx, tmp, tblSchema)
	rows, err := exec.Collect(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Errorf("re-scan of temp returned %d rows", len(rows))
	}
}

func TestNoPinLeaksAcrossOperators(t *testing.T) {
	v := newEnv(t, 60)
	tbl := v.e.MustTable("nums")
	plans := []exec.Iterator{
		exec.NewFilter(v.ctx, v.scanNums(), exec.IntRange{Col: "k", Lo: 5, Hi: 25}),
		exec.NewIndexScan(v.ctx, tbl.Indexes["k"], tbl.Heap, tbl.Schema, 0, 30),
		exec.NewGraceHashJoin(v.ctx, v.scanDims(), v.scanNums(), "k", "grp", 2),
		exec.NewHashAggregate(v.ctx, v.scanNums(), []string{"grp"}, []exec.Agg{{Op: exec.Count, As: "n"}}),
		exec.NewSort(v.ctx, v.scanNums(), exec.SortKey{Col: "v", Desc: true}),
	}
	for i, p := range plans {
		if _, err := exec.Run(p, nil); err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		if n := v.e.Pool.PinnedFrames(); n != 0 {
			t.Fatalf("plan %d leaked %d pins", i, n)
		}
	}
}
