package exec

import (
	"cgp/internal/db/catalog"
	"cgp/internal/db/heap"
	"cgp/internal/db/index"
)

// joinOutput builds the concatenated output tuple for joins.
type joinOutput struct {
	sch *catalog.Schema
	buf []byte
}

func newJoinOutput(left, right *catalog.Schema, prefix []string) *joinOutput {
	p := "r_"
	if len(prefix) > 0 && prefix[0] != "" {
		p = prefix[0]
	}
	sch := catalog.Concat(left, right, p)
	return &joinOutput{sch: sch, buf: make([]byte, sch.Size())}
}

func (j *joinOutput) emit(l, r catalog.Tuple) catalog.Tuple {
	copy(j.buf, l.Buf)
	copy(j.buf[len(l.Buf):], r.Buf)
	return catalog.Tuple{Schema: j.sch, Buf: j.buf}
}

// NLJoin is a nested-loops join: the inner input is materialized once
// and rescanned per outer tuple. Suited to small inners (dimension
// tables); the paper's operator list includes it alongside the smarter
// joins.
type NLJoin struct {
	Ctx    *Context
	Outer  Iterator
	Inner  Iterator
	On     Pred // evaluated on the concatenated tuple
	prefix []string

	out      *joinOutput
	inner    []catalog.Tuple
	curOuter catalog.Tuple
	haveOut  bool
	innerPos int
}

// NewNLJoin builds a nested-loops join. The optional prefix renames
// duplicate right-side columns (default "r_").
func NewNLJoin(ctx *Context, outer, inner Iterator, on Pred, prefix ...string) *NLJoin {
	return &NLJoin{Ctx: ctx, Outer: outer, Inner: inner, On: on, prefix: prefix}
}

// Schema implements Iterator.
func (j *NLJoin) Schema() *catalog.Schema {
	j.ensureOut()
	return j.out.sch
}

func (j *NLJoin) ensureOut() {
	if j.out == nil {
		j.out = newJoinOutput(j.Outer.Schema(), j.Inner.Schema(), j.prefix)
	}
}

// Open implements Iterator: materializes the inner side.
func (j *NLJoin) Open() error {
	j.ensureOut()
	if err := j.Outer.Open(); err != nil {
		return err
	}
	tuples, err := Collect(j.Inner)
	if err != nil {
		return err
	}
	j.inner = tuples
	j.haveOut = false
	j.innerPos = 0
	return nil
}

// Next implements Iterator.
func (j *NLJoin) Next() (catalog.Tuple, bool, error) {
	j.Ctx.Pr.Enter(j.Ctx.Fns.NLJoinNext)
	defer j.Ctx.Pr.Exit()
	for {
		if !j.haveOut {
			t, ok, err := j.Outer.Next()
			if err != nil || !ok {
				return catalog.Tuple{}, false, err
			}
			j.curOuter = t.Copy()
			j.haveOut = true
			j.innerPos = 0
		}
		for j.innerPos < len(j.inner) {
			r := j.inner[j.innerPos]
			j.innerPos++
			cand := j.out.emit(j.curOuter, r)
			j.Ctx.Pr.Enter(j.Ctx.Fns.EvalPred)
			j.Ctx.Pr.Work(j.On.Cost())
			match := j.On.Eval(cand)
			j.Ctx.Pr.Exit()
			if match {
				return cand, true, nil
			}
		}
		j.haveOut = false
	}
}

// Close implements Iterator.
func (j *NLJoin) Close() error {
	j.inner = nil
	return j.Outer.Close()
}

// IndexNLJoin probes a B+-tree on the inner relation with a key from
// each outer tuple (equi-join). Only the first match per key joins a
// given outer tuple when the index is unique; duplicates are followed
// through the leaf chain.
type IndexNLJoin struct {
	Ctx      *Context
	Outer    Iterator
	OuterCol string
	Tree     *index.Tree
	File     *heap.File
	InnerSch *catalog.Schema
	prefix   []string

	out      *joinOutput
	outerIdx int
	cursor   *index.Cursor
	curOuter catalog.Tuple
	curKey   int64
	haveOut  bool
}

// NewIndexNLJoin builds an index nested-loops join. The optional prefix
// renames duplicate right-side columns (default "r_").
func NewIndexNLJoin(ctx *Context, outer Iterator, outerCol string, tree *index.Tree, file *heap.File, innerSch *catalog.Schema, prefix ...string) *IndexNLJoin {
	return &IndexNLJoin{
		Ctx: ctx, Outer: outer, OuterCol: outerCol,
		Tree: tree, File: file, InnerSch: innerSch, prefix: prefix,
		outerIdx: outer.Schema().ColIndex(outerCol),
	}
}

// Schema implements Iterator.
func (j *IndexNLJoin) Schema() *catalog.Schema {
	if j.out == nil {
		j.out = newJoinOutput(j.Outer.Schema(), j.InnerSch, j.prefix)
	}
	return j.out.sch
}

// Open implements Iterator.
func (j *IndexNLJoin) Open() error {
	j.Schema()
	j.haveOut = false
	return j.Outer.Open()
}

// Next implements Iterator.
func (j *IndexNLJoin) Next() (catalog.Tuple, bool, error) {
	j.Ctx.Pr.Enter(j.Ctx.Fns.IdxJoinNext)
	defer j.Ctx.Pr.Exit()
	for {
		if !j.haveOut {
			t, ok, err := j.Outer.Next()
			if err != nil || !ok {
				return catalog.Tuple{}, false, err
			}
			j.curOuter = t.Copy()
			j.Ctx.Pr.Enter(j.Ctx.Fns.GetField)
			j.Ctx.Pr.Work(6)
			j.curKey = t.Int(j.outerIdx)
			j.Ctx.Pr.Exit()
			cur, err := j.Tree.OpenScan(j.curKey, j.curKey, true)
			if err != nil {
				return catalog.Tuple{}, false, err
			}
			j.cursor = cur
			j.haveOut = true
		}
		_, rid, ok, err := j.cursor.Next()
		if err != nil {
			return catalog.Tuple{}, false, err
		}
		if !ok {
			j.cursor.Close()
			j.cursor = nil
			j.haveOut = false
			continue
		}
		rec, err := j.File.ReadRec(j.Ctx.Txn, rid)
		if err != nil {
			return catalog.Tuple{}, false, err
		}
		inner := catalog.Tuple{Schema: j.InnerSch, Buf: rec}
		return j.out.emit(j.curOuter, inner), true, nil
	}
}

// Close implements Iterator.
func (j *IndexNLJoin) Close() error {
	if j.cursor != nil {
		j.cursor.Close()
		j.cursor = nil
	}
	return j.Outer.Close()
}
