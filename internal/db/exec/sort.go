package exec

import (
	"sort"

	"cgp/internal/db/catalog"
	"cgp/internal/db/heap"
)

// SortKey orders by one column.
type SortKey struct {
	Col  string
	Desc bool
}

// Sort materializes its input and emits it ordered by the given keys
// (in-memory; the simulated workloads sort small intermediate results,
// e.g. TPC-H Q3's ORDER BY).
type Sort struct {
	Ctx   *Context
	Child Iterator
	Keys  []SortKey

	rows []catalog.Tuple
	pos  int
}

// NewSort builds a sort.
func NewSort(ctx *Context, child Iterator, keys ...SortKey) *Sort {
	return &Sort{Ctx: ctx, Child: child, Keys: keys}
}

// Schema implements Iterator.
func (s *Sort) Schema() *catalog.Schema { return s.Child.Schema() }

// Open implements Iterator: drains the child and sorts.
func (s *Sort) Open() error {
	s.Ctx.Pr.Enter(s.Ctx.Fns.SortOpen)
	defer s.Ctx.Pr.Exit()
	s.Ctx.Pr.Work(40)
	rows, err := Collect(s.Child)
	if err != nil {
		return err
	}
	s.rows = rows
	sch := s.Child.Schema()
	idxs := make([]int, len(s.Keys))
	for i, k := range s.Keys {
		idxs[i] = sch.ColIndex(k.Col)
	}
	bufAddr := s.Ctx.Arena.Alloc(len(rows)*sch.Size() + 1)
	// Account the comparison work of an n·log n sort as loop work plus
	// touches of the sort buffer.
	n := len(rows)
	if n > 1 {
		cmps := n * bitsLen(n)
		s.Ctx.Pr.Enter(s.Ctx.Fns.CmpTuple)
		s.Ctx.Pr.Work(10 * cmps)
		s.Ctx.Pr.Data(bufAddr, n*sch.Size(), false)
		s.Ctx.Pr.Exit()
	}
	sort.SliceStable(s.rows, func(a, b int) bool {
		ta, tb := s.rows[a], s.rows[b]
		for i, k := range s.Keys {
			var va, vb int64
			if sch.Col(idxs[i]).Type == catalog.Int {
				va, vb = ta.Int(idxs[i]), tb.Int(idxs[i])
			} else {
				sa, sb := ta.Str(idxs[i]), tb.Str(idxs[i])
				switch {
				case sa < sb:
					va, vb = 0, 1
				case sa > sb:
					va, vb = 1, 0
				default:
					continue
				}
			}
			if va == vb {
				continue
			}
			if k.Desc {
				return va > vb
			}
			return va < vb
		}
		return false
	})
	s.pos = 0
	return nil
}

func bitsLen(n int) int {
	b := 1
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Next implements Iterator.
func (s *Sort) Next() (catalog.Tuple, bool, error) {
	s.Ctx.Pr.Enter(s.Ctx.Fns.SortNext)
	defer s.Ctx.Pr.Exit()
	s.Ctx.Pr.Work(6)
	if s.pos >= len(s.rows) {
		return catalog.Tuple{}, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

// Close implements Iterator.
func (s *Sort) Close() error {
	s.rows = nil
	return nil
}

// Materialize drains an iterator into a heap file through Create_rec
// (the SELECT ... INTO TMP shape of the Wisconsin queries) and reports
// the row count.
func Materialize(ctx *Context, it Iterator, into *heap.File) (int64, error) {
	ctx.Pr.Enter(ctx.Fns.MatNext)
	defer ctx.Pr.Exit()
	ctx.Pr.Work(20)
	return Run(it, func(t catalog.Tuple) error {
		_, err := into.CreateRec(ctx.Txn, t.Buf)
		return err
	})
}
