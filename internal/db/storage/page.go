// Package storage is the bottom layer of the database substrate: slotted
// pages, a simulated disk volume, and a buffer pool with pin/unpin and
// clock eviction. It mirrors the storage-manager layer of SHORE that the
// paper builds on (Figure 1), down to the function names of the
// pedagogical call graph in Figure 2 (Find_page_in_buffer_pool,
// Getpage_from_disk, ...).
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"

	"cgp/internal/isa"
)

// PageID identifies a disk page. Page 0 is valid; InvalidPageID marks
// "no page" in chain links.
type PageID uint32

// InvalidPageID is the nil page reference.
const InvalidPageID PageID = 0xFFFFFFFF

// PageSize is the size of every disk page in bytes.
const PageSize = 4096

// Page header layout (20 bytes):
//
//	0:4   pageID
//	4:6   slot count
//	6:8   free-space offset (start of unused region)
//	8:16  page LSN
//	16:20 next page in chain (heap files, B+-tree leaf chains)
//
// Slots grow downward from the end of the page, 4 bytes each
// (offset:2, length:2). A length of 0xFFFF marks a deleted slot.
const (
	headerSize   = 20
	slotSize     = 4
	deletedSlot  = 0xFFFF
	offPageID    = 0
	offSlotCount = 4
	offFreeOff   = 6
	offLSN       = 8
	offNext      = 16
)

// MaxRecordSize is the largest record a single page accepts.
const MaxRecordSize = PageSize - headerSize - slotSize

// ErrPageFull is returned when a record does not fit.
var ErrPageFull = errors.New("storage: page full")

// Page is a typed view over a page buffer. The zero value is invalid;
// obtain pages from a buffer-pool frame.
type Page struct {
	buf []byte
}

// AsPage wraps an existing (already formatted) page buffer.
func AsPage(buf []byte) Page {
	if len(buf) != PageSize {
		panic(fmt.Sprintf("storage: page buffer is %d bytes, want %d", len(buf), PageSize))
	}
	return Page{buf: buf}
}

// Format initializes buf as an empty page with the given ID and returns
// the page view.
func Format(buf []byte, id PageID) Page {
	p := AsPage(buf)
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[offPageID:], uint32(id))
	binary.LittleEndian.PutUint16(buf[offFreeOff:], headerSize)
	binary.LittleEndian.PutUint32(buf[offNext:], uint32(InvalidPageID))
	return p
}

// Raw exposes the full page buffer for components (like the B+-tree)
// that manage their own layout inside the page.
func (p Page) Raw() []byte { return p.buf }

// ID returns the page's identifier.
func (p Page) ID() PageID {
	return PageID(binary.LittleEndian.Uint32(p.buf[offPageID:]))
}

// NumSlots returns the slot-directory length (including deleted slots).
func (p Page) NumSlots() int {
	return int(binary.LittleEndian.Uint16(p.buf[offSlotCount:]))
}

func (p Page) freeOff() int {
	return int(binary.LittleEndian.Uint16(p.buf[offFreeOff:]))
}

// LSN returns the page LSN (for write-ahead logging).
func (p Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.buf[offLSN:]) }

// SetLSN stamps the page LSN.
func (p Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p.buf[offLSN:], lsn) }

// Next returns the next page in the chain, or InvalidPageID.
func (p Page) Next() PageID {
	return PageID(binary.LittleEndian.Uint32(p.buf[offNext:]))
}

// SetNext links the page chain.
func (p Page) SetNext(id PageID) {
	binary.LittleEndian.PutUint32(p.buf[offNext:], uint32(id))
}

func (p Page) slotAt(i int) (off, length int) {
	base := PageSize - (i+1)*slotSize
	return int(binary.LittleEndian.Uint16(p.buf[base:])),
		int(binary.LittleEndian.Uint16(p.buf[base+2:]))
}

func (p Page) setSlot(i, off, length int) {
	base := PageSize - (i+1)*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:], uint16(length))
}

// FreeSpace returns the bytes available for one more record (accounting
// for its slot entry).
func (p Page) FreeSpace() int {
	free := PageSize - p.NumSlots()*slotSize - p.freeOff() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Insert stores rec and returns its slot number.
func (p Page) Insert(rec []byte) (int, error) {
	if len(rec) > MaxRecordSize {
		return 0, fmt.Errorf("storage: record of %d bytes exceeds max %d", len(rec), MaxRecordSize)
	}
	if len(rec) > p.FreeSpace() {
		return 0, ErrPageFull
	}
	off := p.freeOff()
	copy(p.buf[off:], rec)
	slot := p.NumSlots()
	p.setSlot(slot, off, len(rec))
	binary.LittleEndian.PutUint16(p.buf[offSlotCount:], uint16(slot+1))
	binary.LittleEndian.PutUint16(p.buf[offFreeOff:], uint16(off+len(rec)))
	return slot, nil
}

// Get returns the record in slot i. The returned slice aliases the page
// buffer; callers must copy if they retain it.
func (p Page) Get(i int) ([]byte, bool) {
	if i < 0 || i >= p.NumSlots() {
		return nil, false
	}
	off, length := p.slotAt(i)
	if length == deletedSlot {
		return nil, false
	}
	return p.buf[off : off+length], true
}

// Delete marks slot i deleted. The space is not compacted (SHORE-style
// lazy deletion).
func (p Page) Delete(i int) bool {
	if i < 0 || i >= p.NumSlots() {
		return false
	}
	off, length := p.slotAt(i)
	if length == deletedSlot {
		return false
	}
	p.setSlot(i, off, deletedSlot)
	return true
}

// Update overwrites slot i in place. The new record must not be longer
// than the old one (fixed-width tuples always satisfy this).
func (p Page) Update(i int, rec []byte) error {
	if i < 0 || i >= p.NumSlots() {
		return fmt.Errorf("storage: update of missing slot %d", i)
	}
	off, length := p.slotAt(i)
	if length == deletedSlot {
		return fmt.Errorf("storage: update of deleted slot %d", i)
	}
	if len(rec) > length {
		return fmt.Errorf("storage: update grows record from %d to %d bytes", length, len(rec))
	}
	copy(p.buf[off:], rec)
	if len(rec) < length {
		p.setSlot(i, off, len(rec))
	}
	return nil
}

// RecordAddr returns the simulated address of slot i's bytes, for data
// reference tracing.
func (p Page) RecordAddr(i int) (isa.Addr, int) {
	off, length := p.slotAt(i)
	if length == deletedSlot {
		length = 0
	}
	return PageAddr(p.ID()) + isa.Addr(off), length
}

// PageAddr maps a page to its simulated data address.
func PageAddr(id PageID) isa.Addr {
	return isa.DataBase + isa.Addr(uint64(id)*PageSize)
}

// RID names a record: page plus slot.
type RID struct {
	Page PageID
	Slot uint16
}

// InvalidRID is the nil record reference.
var InvalidRID = RID{Page: InvalidPageID}

// Valid reports whether the RID refers to a record.
func (r RID) Valid() bool { return r.Page != InvalidPageID }

// Less orders RIDs (page-major) for deterministic iteration.
func (r RID) Less(o RID) bool {
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}
