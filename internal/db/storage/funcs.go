package storage

import "cgp/internal/program"

// Funcs holds the instrumented-function IDs of the storage-manager
// layer. The names (and the call structure around them) reproduce the
// paper's Figure 2 call graph.
type Funcs struct {
	FindPageInBufferPool program.FuncID
	GetpageFromDisk      program.FuncID
	FlushPage            program.FuncID
	AllocPage            program.FuncID
	PinPage              program.FuncID
	UnpinPage            program.FuncID
	HashPageID           program.FuncID
	LatchAcquire         program.FuncID
	LatchRelease         program.FuncID
}

// RegisterFuncs registers the storage-manager functions. Sizes are
// synthetic instruction counts chosen so the storage layer's hot
// footprint resembles a real storage manager's.
func RegisterFuncs(reg *program.Registry) Funcs {
	return Funcs{
		FindPageInBufferPool: reg.Register("Find_page_in_buffer_pool", 190),
		GetpageFromDisk:      reg.Register("Getpage_from_disk", 430),
		FlushPage:            reg.Register("Flush_page", 280),
		AllocPage:            reg.Register("Alloc_page", 210),
		PinPage:              reg.Register("Pin_page", 90),
		UnpinPage:            reg.Register("Unpin_page", 100),
		HashPageID:           reg.Register("Hash_page_id", 100),
		LatchAcquire:         reg.Register("Latch_acquire", 80),
		LatchRelease:         reg.Register("Latch_release", 70),
	}
}
