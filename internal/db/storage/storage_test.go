package storage

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newPage(t *testing.T) Page {
	t.Helper()
	return Format(make([]byte, PageSize), 7)
}

func TestPageFormat(t *testing.T) {
	p := newPage(t)
	if p.ID() != 7 {
		t.Errorf("id = %d", p.ID())
	}
	if p.NumSlots() != 0 {
		t.Errorf("slots = %d", p.NumSlots())
	}
	if p.Next() != InvalidPageID {
		t.Errorf("next = %d", p.Next())
	}
	if p.FreeSpace() < PageSize-64 {
		t.Errorf("free space = %d", p.FreeSpace())
	}
}

func TestPageInsertGet(t *testing.T) {
	p := newPage(t)
	recs := [][]byte{[]byte("hello"), []byte("world!"), {1, 2, 3}}
	for i, r := range recs {
		slot, err := p.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		if slot != i {
			t.Errorf("slot = %d, want %d", slot, i)
		}
	}
	for i, r := range recs {
		got, ok := p.Get(i)
		if !ok || !bytes.Equal(got, r) {
			t.Errorf("Get(%d) = %q,%v", i, got, ok)
		}
	}
	if _, ok := p.Get(99); ok {
		t.Error("Get of missing slot succeeded")
	}
	if _, ok := p.Get(-1); ok {
		t.Error("Get(-1) succeeded")
	}
}

func TestPageDelete(t *testing.T) {
	p := newPage(t)
	p.Insert([]byte("a"))
	p.Insert([]byte("b"))
	if !p.Delete(0) {
		t.Fatal("delete failed")
	}
	if _, ok := p.Get(0); ok {
		t.Error("deleted record still readable")
	}
	if p.Delete(0) {
		t.Error("double delete succeeded")
	}
	if got, ok := p.Get(1); !ok || string(got) != "b" {
		t.Errorf("neighbour affected: %q,%v", got, ok)
	}
}

func TestPageUpdate(t *testing.T) {
	p := newPage(t)
	p.Insert([]byte("abcdef"))
	if err := p.Update(0, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Get(0); string(got) != "xyz" {
		t.Errorf("after shrink update: %q", got)
	}
	if err := p.Update(0, []byte("toolongnow")); err == nil {
		t.Error("growing update succeeded")
	}
}

func TestPageFull(t *testing.T) {
	p := newPage(t)
	rec := make([]byte, 100)
	n := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			if err != ErrPageFull {
				t.Fatalf("unexpected error %v", err)
			}
			break
		}
		n++
	}
	// 4096-20 header bytes, 104 bytes per record+slot: ~39 records.
	if n < 35 || n > 40 {
		t.Errorf("page held %d 100-byte records", n)
	}
}

func TestPageOversizeRecord(t *testing.T) {
	p := newPage(t)
	if _, err := p.Insert(make([]byte, MaxRecordSize+1)); err == nil {
		t.Error("oversize insert succeeded")
	}
}

func TestPageChainAndLSN(t *testing.T) {
	p := newPage(t)
	p.SetNext(42)
	p.SetLSN(777)
	if p.Next() != 42 || p.LSN() != 777 {
		t.Errorf("next/lsn = %d/%d", p.Next(), p.LSN())
	}
}

// Property: any sequence of inserts that fit can be read back intact.
func TestPageRoundTripProperty(t *testing.T) {
	f := func(recs [][]byte) bool {
		p := Format(make([]byte, PageSize), 1)
		var kept [][]byte
		for _, r := range recs {
			if len(r) > 200 {
				r = r[:200]
			}
			if _, err := p.Insert(r); err != nil {
				break
			}
			kept = append(kept, r)
		}
		for i, r := range kept {
			got, ok := p.Get(i)
			if !ok || !bytes.Equal(got, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDiskReadWrite(t *testing.T) {
	d := NewDisk()
	id := d.Allocate()
	buf := make([]byte, PageSize)
	buf[0] = 0xAB
	if err := d.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, PageSize)
	if err := d.Read(id, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xAB {
		t.Error("read back wrong data")
	}
	if err := d.Read(99, out); err == nil {
		t.Error("read of unallocated page succeeded")
	}
	if d.Reads() != 1 || d.Writes() != 1 {
		t.Errorf("io counts = %d/%d", d.Reads(), d.Writes())
	}
}

func TestRIDOrdering(t *testing.T) {
	a := RID{Page: 1, Slot: 2}
	b := RID{Page: 1, Slot: 3}
	c := RID{Page: 2, Slot: 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Error("RID ordering broken")
	}
	if InvalidRID.Valid() {
		t.Error("InvalidRID is valid")
	}
	if !a.Valid() {
		t.Error("real RID invalid")
	}
}

func TestBufferPoolHitAndMiss(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 4, nil, Funcs{})
	f, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	bp.Unpin(f, true)

	if _, ok := bp.FindPage(id); !ok {
		t.Fatal("resident page not found")
	}
	st := bp.Stats()
	if st.Hits != 1 {
		t.Errorf("hits = %d", st.Hits)
	}
	f2, _ := bp.FindPage(id)
	bp.Unpin(f2, false)
}

func TestBufferPoolEvictionAndReload(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 2, nil, Funcs{})
	var ids []PageID
	for i := 0; i < 4; i++ {
		f, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Page().Raw()[100] = byte(i)
		ids = append(ids, f.ID())
		bp.Unpin(f, true)
	}
	// Pages 0 and 1 must have been evicted (and flushed since dirty).
	if _, ok := bp.FindPage(ids[0]); ok {
		t.Fatal("page 0 still resident in 2-frame pool after 4 pages")
	}
	f, err := bp.GetPage(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.Page().Raw()[100] != 0 {
		t.Error("evicted dirty page lost its contents")
	}
	bp.Unpin(f, false)
	if bp.Stats().Evictions == 0 || bp.Stats().Flushes == 0 {
		t.Errorf("stats = %+v", bp.Stats())
	}
}

func TestBufferPoolPinnedNotEvicted(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 2, nil, Funcs{})
	a, _ := bp.NewPage()
	b, _ := bp.NewPage()
	// Both pinned: a third page must fail.
	if _, err := bp.NewPage(); err != ErrNoFreeFrames {
		t.Fatalf("err = %v, want ErrNoFreeFrames", err)
	}
	bp.Unpin(a, false)
	if _, err := bp.NewPage(); err != nil {
		t.Fatalf("eviction of unpinned frame failed: %v", err)
	}
	if _, ok := bp.FindPage(b.ID()); !ok {
		t.Error("pinned page was evicted")
	} else {
		bp.Unpin(b, false)
	}
}

func TestBufferPoolOverUnpinPanics(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 2, nil, Funcs{})
	f, _ := bp.NewPage()
	bp.Unpin(f, false)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double unpin")
		}
	}()
	bp.Unpin(f, false)
}

func TestBufferPoolFlushAll(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 4, nil, Funcs{})
	f, _ := bp.NewPage()
	f.Page().Raw()[50] = 0x5A
	id := f.ID()
	bp.Unpin(f, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, PageSize)
	d.Read(id, out)
	if out[50] != 0x5A {
		t.Error("FlushAll did not persist dirty page")
	}
}

func TestBufferPoolPinCounting(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 4, nil, Funcs{})
	f, _ := bp.NewPage()
	bp.Pin(f)
	if f.PinCount() != 2 {
		t.Errorf("pin = %d", f.PinCount())
	}
	bp.Unpin(f, false)
	bp.Unpin(f, false)
	if bp.PinnedFrames() != 0 {
		t.Errorf("pinned frames = %d", bp.PinnedFrames())
	}
}

// Property: after arbitrary interleavings of get/unpin, every page's
// content survives eviction round trips.
func TestBufferPoolContentProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		d := NewDisk()
		bp := NewBufferPool(d, 3, nil, Funcs{})
		var ids []PageID
		for i := 0; i < 8; i++ {
			fr, err := bp.NewPage()
			if err != nil {
				return false
			}
			fr.Page().Raw()[200] = byte(i + 1)
			ids = append(ids, fr.ID())
			bp.Unpin(fr, true)
		}
		for _, op := range ops {
			id := ids[int(op)%len(ids)]
			fr, err := bp.GetPage(id)
			if err != nil {
				return false
			}
			if fr.Page().Raw()[200] != byte(int(op)%len(ids)+1) {
				return false
			}
			bp.Unpin(fr, false)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
