package storage

import "fmt"

// Disk is the simulated storage volume: a flat array of pages with I/O
// counters. The paper's configuration keeps the working set resident in
// the buffer pool (memory-resident databases are its premise), so disk
// traffic exists mainly to make Getpage_from_disk a real code path.
type Disk struct {
	pages  [][]byte
	reads  int64
	writes int64
}

// NewDisk returns an empty volume.
func NewDisk() *Disk { return &Disk{} }

// Allocate appends a fresh zeroed page and returns its ID.
func (d *Disk) Allocate() PageID {
	id := PageID(len(d.pages))
	if id == InvalidPageID {
		panic("storage: disk full (PageID space exhausted)")
	}
	d.pages = append(d.pages, make([]byte, PageSize))
	return id
}

// Read copies page id into buf.
func (d *Disk) Read(id PageID, buf []byte) error {
	if int(id) >= len(d.pages) {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	d.reads++
	copy(buf, d.pages[id])
	return nil
}

// Write copies buf to page id.
func (d *Disk) Write(id PageID, buf []byte) error {
	if int(id) >= len(d.pages) {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	d.writes++
	copy(d.pages[id], buf)
	return nil
}

// NumPages returns the allocated page count.
func (d *Disk) NumPages() int { return len(d.pages) }

// Reads returns the read-I/O count.
func (d *Disk) Reads() int64 { return d.reads }

// Writes returns the write-I/O count.
func (d *Disk) Writes() int64 { return d.writes }
