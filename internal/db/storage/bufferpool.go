package storage

import (
	"errors"
	"fmt"

	"cgp/internal/db/probe"
)

// Frame is one buffer-pool slot. Callers pin frames via GetPage/NewPage
// and must unpin them when done.
type Frame struct {
	id    PageID
	buf   []byte
	pin   int
	dirty bool
	ref   bool // clock reference bit
}

// ID returns the resident page's identifier.
func (f *Frame) ID() PageID { return f.id }

// Page returns the typed page view of the frame's buffer.
func (f *Frame) Page() Page { return AsPage(f.buf) }

// PinCount returns the current pin count (for tests and invariants).
func (f *Frame) PinCount() int { return f.pin }

// ErrNoFreeFrames is returned when every frame is pinned.
var ErrNoFreeFrames = errors.New("storage: buffer pool exhausted (all frames pinned)")

// PoolStats counts buffer-pool activity.
type PoolStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Flushes   int64
}

// BufferPool caches disk pages in a fixed set of frames with a clock
// replacement policy. All methods are instrumented through the shared
// probe so page lookups show up in the simulated call graph exactly as
// the paper's Figure 2 describes.
type BufferPool struct {
	disk   *Disk
	frames []Frame
	table  map[PageID]int
	hand   int
	pr     *probe.Probe
	fns    Funcs
	stats  PoolStats
}

// NewBufferPool builds a pool of nframes frames over disk.
func NewBufferPool(disk *Disk, nframes int, pr *probe.Probe, fns Funcs) *BufferPool {
	if nframes <= 0 {
		panic("storage: buffer pool needs at least one frame")
	}
	bp := &BufferPool{
		disk:   disk,
		frames: make([]Frame, nframes),
		table:  make(map[PageID]int, nframes),
		pr:     pr,
		fns:    fns,
	}
	for i := range bp.frames {
		bp.frames[i].id = InvalidPageID
		bp.frames[i].buf = make([]byte, PageSize)
	}
	return bp
}

// Stats returns a copy of the pool counters.
func (bp *BufferPool) Stats() PoolStats { return bp.stats }

// NumFrames returns the pool capacity.
func (bp *BufferPool) NumFrames() int { return len(bp.frames) }

// FindPage checks whether id is resident, pinning and returning its
// frame if so. This is the paper's Find_page_in_buffer_pool: with a
// large, mostly-warm pool it almost always hits, which is exactly the
// predictability CGP exploits.
func (bp *BufferPool) FindPage(id PageID) (*Frame, bool) {
	bp.pr.Enter(bp.fns.FindPageInBufferPool)
	defer bp.pr.Exit()
	bp.pr.Work(14)
	bp.pr.Enter(bp.fns.HashPageID)
	bp.pr.Work(9)
	bp.pr.Exit()
	bp.pr.Enter(bp.fns.LatchAcquire)
	bp.pr.Work(7)
	bp.pr.Exit()
	idx, ok := bp.table[id]
	defer func() {
		bp.pr.Enter(bp.fns.LatchRelease)
		bp.pr.Work(6)
		bp.pr.Exit()
	}()
	if !ok {
		bp.stats.Misses++
		return nil, false
	}
	bp.stats.Hits++
	f := &bp.frames[idx]
	bp.pr.Data(PageAddr(id), headerSize, false)
	f.pin++
	f.ref = true
	return f, true
}

// GetPage returns a pinned frame holding page id, reading it from disk
// if necessary.
func (bp *BufferPool) GetPage(id PageID) (*Frame, error) {
	if f, ok := bp.FindPage(id); ok {
		return f, nil
	}
	return bp.getpageFromDisk(id)
}

// getpageFromDisk loads id into a victim frame (the paper's
// Getpage_from_disk).
func (bp *BufferPool) getpageFromDisk(id PageID) (*Frame, error) {
	bp.pr.Enter(bp.fns.GetpageFromDisk)
	defer bp.pr.Exit()
	bp.pr.Work(70)
	f, err := bp.victim()
	if err != nil {
		return nil, err
	}
	if err := bp.disk.Read(id, f.buf); err != nil {
		return nil, err
	}
	// The incoming page is written into the frame: a page-sized data
	// reference at the page's address.
	bp.pr.Data(PageAddr(id), PageSize, true)
	f.id = id
	f.pin = 1
	f.dirty = false
	f.ref = true
	bp.table[id] = bp.frameIndex(f)
	return f, nil
}

// NewPage allocates a fresh page on disk, formats it, and returns it
// pinned and dirty.
func (bp *BufferPool) NewPage() (*Frame, error) {
	bp.pr.Enter(bp.fns.AllocPage)
	defer bp.pr.Exit()
	bp.pr.Work(30)
	id := bp.disk.Allocate()
	f, err := bp.victim()
	if err != nil {
		return nil, err
	}
	Format(f.buf, id)
	bp.pr.Data(PageAddr(id), headerSize, true)
	f.id = id
	f.pin = 1
	f.dirty = true
	f.ref = true
	bp.table[id] = bp.frameIndex(f)
	return f, nil
}

// Pin re-pins an already-resident frame.
func (bp *BufferPool) Pin(f *Frame) {
	bp.pr.Enter(bp.fns.PinPage)
	defer bp.pr.Exit()
	bp.pr.Work(6)
	f.pin++
	f.ref = true
}

// Unpin releases one pin, marking the page dirty if it was modified.
// Unpinning an unpinned frame panics: it indicates a broken caller that
// would corrupt replacement decisions.
func (bp *BufferPool) Unpin(f *Frame, dirty bool) {
	bp.pr.Enter(bp.fns.UnpinPage)
	defer bp.pr.Exit()
	bp.pr.Work(8)
	if f.pin <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", f.id))
	}
	f.pin--
	if dirty {
		f.dirty = true
	}
}

// MarkDirty flags a pinned frame as modified without changing its pin
// count (for callers that unpin through a generic cleanup path).
func (bp *BufferPool) MarkDirty(f *Frame) { f.dirty = true }

// victim finds a free or evictable frame via the clock algorithm.
func (bp *BufferPool) victim() (*Frame, error) {
	n := len(bp.frames)
	// Two sweeps: the first clears reference bits, the second takes the
	// first unreferenced unpinned frame.
	for sweep := 0; sweep < 2*n; sweep++ {
		f := &bp.frames[bp.hand]
		bp.hand = (bp.hand + 1) % n
		if f.pin > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if f.id != InvalidPageID {
			bp.stats.Evictions++
			if f.dirty {
				if err := bp.flush(f); err != nil {
					return nil, err
				}
			}
			delete(bp.table, f.id)
			f.id = InvalidPageID
		}
		return f, nil
	}
	return nil, ErrNoFreeFrames
}

// flush writes a dirty frame back to disk (the paper's Flush_page).
func (bp *BufferPool) flush(f *Frame) error {
	bp.pr.Enter(bp.fns.FlushPage)
	defer bp.pr.Exit()
	bp.pr.Work(50)
	bp.pr.Data(PageAddr(f.id), PageSize, false)
	bp.stats.Flushes++
	if err := bp.disk.Write(f.id, f.buf); err != nil {
		return err
	}
	f.dirty = false
	return nil
}

// FlushAll writes every dirty frame back (checkpoint).
func (bp *BufferPool) FlushAll() error {
	for i := range bp.frames {
		f := &bp.frames[i]
		if f.id != InvalidPageID && f.dirty {
			if err := bp.flush(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// PinnedFrames returns how many frames are currently pinned (invariant
// checks in tests).
func (bp *BufferPool) PinnedFrames() int {
	n := 0
	for i := range bp.frames {
		if bp.frames[i].pin > 0 {
			n++
		}
	}
	return n
}

func (bp *BufferPool) frameIndex(f *Frame) int {
	for i := range bp.frames {
		if &bp.frames[i] == f {
			return i
		}
	}
	panic("storage: frame not in pool")
}
