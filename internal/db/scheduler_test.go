package db_test

import (
	"testing"

	"cgp/internal/db"
	"cgp/internal/db/catalog"
	"cgp/internal/db/exec"
	"cgp/internal/db/heap"
	"cgp/internal/program"
	"cgp/internal/trace"
)

func loadEngine(t *testing.T, n int) *db.Engine {
	t.Helper()
	e := db.NewEngine(db.Options{BufferFrames: 512})
	tx := e.Txns.Begin()
	tbl, err := e.CreateTable("nums", catalog.NewSchema(
		catalog.Column{Name: "k", Type: catalog.Int},
		catalog.Column{Name: "v", Type: catalog.Int},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := e.InsertRow(tx, tbl, []catalog.Value{
			catalog.V(int64(i)), catalog.V(int64(i * 3)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.CreateIndex(tx, "nums", "k", true); err != nil {
		t.Fatal(err)
	}
	if err := e.Txns.Commit(tx); err != nil {
		t.Fatal(err)
	}
	return e
}

func scanQuery(name string, lo, hi int64) db.Query {
	return db.Query{
		Name: name,
		Build: func(e *db.Engine, ctx *exec.Context) (exec.Iterator, *heap.File, error) {
			tbl := e.MustTable("nums")
			it := exec.NewFilter(ctx,
				exec.NewSeqScan(ctx, tbl.Heap, tbl.Schema),
				exec.IntRange{Col: "k", Lo: lo, Hi: hi})
			return it, nil, nil
		},
	}
}

func TestRunConcurrentRowCounts(t *testing.T) {
	e := loadEngine(t, 500)
	queries := []db.Query{
		scanQuery("q1", 0, 99),
		scanQuery("q2", 100, 149),
		scanQuery("q3", 0, 499),
	}
	results, err := e.RunConcurrent(queries, nil, trace.Discard, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{100, 50, 500}
	for i, r := range results {
		if r.Rows != want[i] {
			t.Errorf("%s rows = %d, want %d", r.Name, r.Rows, want[i])
		}
	}
}

func TestRunConcurrentMatchesSerial(t *testing.T) {
	// The same queries run concurrently and serially must return the
	// same row counts (cooperative scheduling cannot change results).
	for _, quantum := range []int{1, 3, 100} {
		e := loadEngine(t, 300)
		queries := []db.Query{
			scanQuery("a", 10, 59),
			scanQuery("b", 0, 299),
			scanQuery("c", 250, 299),
		}
		res, err := e.RunConcurrent(queries, nil, trace.Discard, quantum, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := []int64{50, 300, 50}
		for i := range res {
			if res[i].Rows != want[i] {
				t.Errorf("quantum %d: %s = %d, want %d", quantum, res[i].Name, res[i].Rows, want[i])
			}
		}
	}
}

func TestRunConcurrentEmitsTrace(t *testing.T) {
	e := loadEngine(t, 200)
	reg2, _ := db.BuildRegistry()
	img := program.LayoutO5(reg2)
	var st trace.Stats
	_, err := e.RunConcurrent([]db.Query{
		scanQuery("a", 0, 99),
		scanQuery("b", 100, 199),
	}, img, &st, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions == 0 || st.Calls == 0 {
		t.Fatalf("no trace emitted: %+v", st)
	}
	if st.Switches == 0 {
		t.Error("no context switches emitted for 2 concurrent queries")
	}
	if st.Calls != st.Returns {
		t.Errorf("unbalanced calls/returns: %d/%d", st.Calls, st.Returns)
	}
}

func TestMaterializingQueryThroughScheduler(t *testing.T) {
	e := loadEngine(t, 100)
	q := db.Query{
		Name: "into_tmp",
		Build: func(e *db.Engine, ctx *exec.Context) (exec.Iterator, *heap.File, error) {
			tbl := e.MustTable("nums")
			it := exec.NewFilter(ctx,
				exec.NewSeqScan(ctx, tbl.Heap, tbl.Schema),
				exec.IntCmp{Col: "k", Op: exec.Lt, Val: 25})
			tmp, err := e.TempFile("result")
			return it, tmp, err
		},
	}
	res, err := e.RunConcurrent([]db.Query{q}, nil, trace.Discard, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Rows != 25 {
		t.Errorf("rows = %d", res[0].Rows)
	}
}

func TestTransactionsCommittedByScheduler(t *testing.T) {
	e := loadEngine(t, 50)
	_, err := e.RunConcurrent([]db.Query{scanQuery("a", 0, 9)}, nil, trace.Discard, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, committed, _ := e.Txns.Counts()
	if committed < 2 { // loader txn + query txn
		t.Errorf("committed = %d", committed)
	}
	if e.Pool.PinnedFrames() != 0 {
		t.Errorf("pinned frames leaked: %d", e.Pool.PinnedFrames())
	}
}

func TestEngineIndexLookupErrors(t *testing.T) {
	e := loadEngine(t, 10)
	if _, err := e.Index("nums", "v"); err == nil {
		t.Error("missing index lookup succeeded")
	}
	if _, err := e.Index("nope", "k"); err == nil {
		t.Error("missing table lookup succeeded")
	}
	if _, err := e.Table("nums"); err != nil {
		t.Error(err)
	}
}

func TestCreateIndexRejectsStringColumn(t *testing.T) {
	e := db.NewEngine(db.Options{BufferFrames: 64})
	tx := e.Txns.Begin()
	_, err := e.CreateTable("s", catalog.NewSchema(
		catalog.Column{Name: "name", Type: catalog.String, Len: 8},
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateIndex(tx, "s", "name", false); err == nil {
		t.Error("index on string column succeeded")
	}
}

func TestBuildRegistryDeterministic(t *testing.T) {
	r1, f1 := db.BuildRegistry()
	r2, f2 := db.BuildRegistry()
	if r1.Len() != r2.Len() {
		t.Fatalf("lengths differ: %d vs %d", r1.Len(), r2.Len())
	}
	if f1.Heap.CreateRec != f2.Heap.CreateRec {
		t.Error("function IDs differ between builds")
	}
	for i := 0; i < r1.Len(); i++ {
		a, b := r1.Info(program.FuncID(i)), r2.Info(program.FuncID(i))
		if a.Name != b.Name || a.Size != b.Size {
			t.Fatalf("func %d differs: %+v vs %+v", i, a, b)
		}
	}
}
