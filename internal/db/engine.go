// Package db assembles the database system: storage manager, lock
// manager, transactions, B+-trees, catalog and relational operators,
// with the layered structure of Figure 1 (parser / optimizer /
// scheduler / operators / storage manager). It owns the instrumented
// function registry and the cooperative scheduler that interleaves
// concurrent queries into one trace stream.
package db

import (
	"fmt"

	"cgp/internal/db/catalog"
	"cgp/internal/db/exec"
	"cgp/internal/db/heap"
	"cgp/internal/db/index"
	"cgp/internal/db/lock"
	"cgp/internal/db/probe"
	"cgp/internal/db/storage"
	"cgp/internal/db/txn"
	"cgp/internal/isa"
	"cgp/internal/program"
)

// Funcs aggregates every layer's instrumented-function IDs.
type Funcs struct {
	Storage storage.Funcs
	Lock    lock.Funcs
	Txn     txn.Funcs
	Heap    heap.Funcs
	Index   index.Funcs
	Exec    exec.Funcs
}

// BuildRegistry registers the whole system's functions in layer order
// (the link order of the O5 binary: lower layers first, as a linker
// would emit libraries after application code — a deliberately cache-
// unfriendly baseline, like any unoptimized layout).
func BuildRegistry() (*program.Registry, Funcs) {
	reg := program.NewRegistry()
	// The instrumented skeleton names ~60 functions; a real storage
	// manager plus operator layer carries several times that much code
	// on its hot paths, so sizes are scaled up to a realistic footprint
	// (a few hundred KB of text, several times the 32KB L1I).
	reg.SetSizeScale(6.0)
	var fns Funcs
	fns.Exec = exec.RegisterFuncs(reg)
	fns.Heap = heap.RegisterFuncs(reg)
	fns.Index = index.RegisterFuncs(reg)
	fns.Storage = storage.RegisterFuncs(reg)
	fns.Lock = lock.RegisterFuncs(reg)
	fns.Txn = txn.RegisterFuncs(reg)
	// Every sizable function gets private helpers (comparators, slot
	// accessors, wrappers): the bulk of a real binary's function count.
	reg.GenerateHelpers(400, 700, 48, 200)
	return reg, fns
}

// Options configures an engine instance.
type Options struct {
	// BufferFrames is the buffer-pool size in pages (default 4096 =
	// 16MB, enough to keep the paper's workloads memory-resident).
	BufferFrames int
}

// Table couples a catalog entry to its storage.
type Table struct {
	Name      string
	Schema    *catalog.Schema
	Heap      *heap.File
	Indexes   map[string]*index.Tree
	Clustered string
}

// Engine is one database instance.
type Engine struct {
	Reg   *program.Registry
	Fns   Funcs
	Pr    *probe.Probe
	Disk  *storage.Disk
	Pool  *storage.BufferPool
	Locks *lock.Manager
	Txns  *txn.Manager
	Arena *probe.Arena

	tables map[string]*Table
	tmpSeq int
}

// NewEngine builds an empty database system.
func NewEngine(opts Options) *Engine {
	if opts.BufferFrames == 0 {
		opts.BufferFrames = 4096
	}
	reg, fns := BuildRegistry()
	pr := probe.New(nil)
	disk := storage.NewDisk()
	pool := storage.NewBufferPool(disk, opts.BufferFrames, pr, fns.Storage)
	locks := lock.NewManager(pr, fns.Lock)
	log := txn.NewLog(pr, fns.Txn)
	txns := txn.NewManager(locks, log, pr, fns.Txn)
	return &Engine{
		Reg:    reg,
		Fns:    fns,
		Pr:     pr,
		Disk:   disk,
		Pool:   pool,
		Locks:  locks,
		Txns:   txns,
		Arena:  probe.NewArena(isa.StackBase),
		tables: make(map[string]*Table),
	}
}

// CreateTable makes an empty table.
func (e *Engine) CreateTable(name string, sch *catalog.Schema) (*Table, error) {
	if _, dup := e.tables[name]; dup {
		return nil, fmt.Errorf("db: table %q exists", name)
	}
	f, err := heap.Create(name, e.Pool, e.Locks, e.Pr, e.Fns.Heap)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name, Schema: sch, Heap: f, Indexes: make(map[string]*index.Tree)}
	e.tables[name] = t
	return t, nil
}

// Table returns a table by name.
func (e *Engine) Table(name string) (*Table, error) {
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("db: no table %q", name)
	}
	return t, nil
}

// MustTable returns a table or panics (plan construction).
func (e *Engine) MustTable(name string) *Table {
	t, err := e.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// DropTable removes a table from the catalog (its pages are not
// reclaimed; the simulated disk only grows).
func (e *Engine) DropTable(name string) { delete(e.tables, name) }

// CreateIndex builds a B+-tree on an integer column from the table's
// current contents. clustered records that the heap is physically
// ordered by this column (the loader's responsibility).
func (e *Engine) CreateIndex(t *txn.Txn, tableName, col string, clustered bool) (*index.Tree, error) {
	tbl, err := e.Table(tableName)
	if err != nil {
		return nil, err
	}
	if tbl.Schema.Col(tbl.Schema.ColIndex(col)).Type != catalog.Int {
		return nil, fmt.Errorf("db: index on non-integer column %s.%s", tableName, col)
	}
	tree, err := index.Create(tableName+"_"+col, e.Pool, e.Pr, e.Fns.Index)
	if err != nil {
		return nil, err
	}
	ci := tbl.Schema.ColIndex(col)
	scan := tbl.Heap.OpenScan(t)
	defer scan.Close()
	for {
		rec, rid, ok, err := scan.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		tup := catalog.Tuple{Schema: tbl.Schema, Buf: rec}
		if err := tree.Insert(tup.Int(ci), rid); err != nil {
			return nil, err
		}
	}
	tbl.Indexes[col] = tree
	if clustered {
		tbl.Clustered = col
	}
	return tree, nil
}

// Index returns the tree on table.col.
func (e *Engine) Index(tableName, col string) (*index.Tree, error) {
	tbl, err := e.Table(tableName)
	if err != nil {
		return nil, err
	}
	tree, ok := tbl.Indexes[col]
	if !ok {
		return nil, fmt.Errorf("db: no index on %s.%s", tableName, col)
	}
	return tree, nil
}

// TempFile creates a scratch heap file (not in the catalog).
func (e *Engine) TempFile(name string) (*heap.File, error) {
	e.tmpSeq++
	return heap.Create(fmt.Sprintf("tmp_%s_%d", name, e.tmpSeq), e.Pool, e.Locks, e.Pr, e.Fns.Heap)
}

// NewContext builds an operator context for one transaction.
func (e *Engine) NewContext(t *txn.Txn) *exec.Context {
	return &exec.Context{
		Txn:      t,
		Pr:       e.Pr,
		Fns:      e.Fns.Exec,
		Arena:    e.Arena,
		TempFile: e.TempFile,
	}
}

// InsertRow encodes and stores one row (bulk loading).
func (e *Engine) InsertRow(t *txn.Txn, tbl *Table, vals []catalog.Value) (storage.RID, error) {
	return tbl.Heap.CreateRec(t, tbl.Schema.Encode(vals))
}

// RunQuery executes a plan outside the scheduler (correctness tests,
// examples): it opens, drains, optionally materializes into target, and
// returns the row count.
func (e *Engine) RunQuery(ctx *exec.Context, it exec.Iterator, target *heap.File) (int64, error) {
	if target != nil {
		return exec.Materialize(ctx, it, target)
	}
	return exec.Run(it, nil)
}
