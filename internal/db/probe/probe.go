// Package probe is the seam between the database engine and the trace
// synthesizer. Every instrumented DB function brackets its body with
// Enter/Exit and reports local computation (Work) and memory traffic
// (Data) through a Probe.
//
// A nil Probe (or one built over a nil tracer) is inert, so the engine
// can run at full speed in correctness tests without a simulator
// attached.
package probe

import (
	"cgp/internal/isa"
	"cgp/internal/program"
	"cgp/internal/trace"
)

// Probe forwards instrumentation calls to a tracer, if one is attached.
type Probe struct {
	tr *trace.Tracer
}

// New returns a probe over tr. tr may be nil.
func New(tr *trace.Tracer) *Probe {
	return &Probe{tr: tr}
}

// SetTracer swaps the active tracer. The engine's scheduler points the
// shared probe at the tracer of whichever query thread is running; nil
// silences instrumentation (e.g. while bulk-loading the database, which
// the paper's measurements exclude).
func (p *Probe) SetTracer(tr *trace.Tracer) {
	if p == nil {
		return
	}
	p.tr = tr
}

// Enabled reports whether instrumentation is live.
func (p *Probe) Enabled() bool { return p != nil && p.tr != nil }

// Enter records a call to fn.
func (p *Probe) Enter(fn program.FuncID) {
	if p == nil || p.tr == nil {
		return
	}
	p.tr.Enter(fn)
}

// Exit records the return from the current function.
func (p *Probe) Exit() {
	if p == nil || p.tr == nil {
		return
	}
	p.tr.Exit()
}

// Work records n instructions of local computation.
func (p *Probe) Work(n int) {
	if p == nil || p.tr == nil {
		return
	}
	p.tr.Work(n)
}

// Data records an n-byte data reference at addr.
func (p *Probe) Data(addr isa.Addr, n int, write bool) {
	if p == nil || p.tr == nil {
		return
	}
	p.tr.Data(addr, n, write)
}

// Tracer exposes the underlying tracer (nil when inert) for stats.
func (p *Probe) Tracer() *trace.Tracer {
	if p == nil {
		return nil
	}
	return p.tr
}

// Arena hands out addresses for transient in-memory structures (hash
// tables, sort buffers) so their references hit the simulated D-cache at
// stable locations.
type Arena struct {
	base isa.Addr
	next isa.Addr
}

// NewArena returns an arena starting at base.
func NewArena(base isa.Addr) *Arena {
	return &Arena{base: base, next: base}
}

// Alloc reserves n bytes and returns their address, line-aligned.
func (a *Arena) Alloc(n int) isa.Addr {
	addr := a.next
	a.next = isa.AlignUp(a.next+isa.Addr(n), isa.LineBytes)
	return addr
}

// Reset rewinds the arena (between queries).
func (a *Arena) Reset() { a.next = a.base }

// Used returns the number of bytes handed out.
func (a *Arena) Used() int { return int(a.next - a.base) }
