// Package probe is the seam between the database engine and the trace
// synthesizer. Every instrumented DB function brackets its body with
// Enter/Exit and reports local computation (Work) and memory traffic
// (Data) through a Probe.
//
// A nil Probe (or one built over a nil tracer) is inert, so the engine
// can run at full speed in correctness tests without a simulator
// attached.
package probe

import (
	"cgp/internal/isa"
	"cgp/internal/program"
	"cgp/internal/trace"
)

// Sink receives the instrumentation call sequence. *trace.Tracer is
// the classic sink (synthesizing an address-level event stream for
// the simulator); the serving front-end attaches a probe-level
// capture sink instead, which records the calls themselves so a live
// session can later be replayed against any binary layout.
type Sink interface {
	Enter(fn program.FuncID)
	Exit()
	Work(n int)
	Data(addr isa.Addr, n int, write bool)
}

// Probe forwards instrumentation calls to a sink, if one is attached.
type Probe struct {
	sink Sink
}

// New returns a probe over tr. tr may be nil.
func New(tr *trace.Tracer) *Probe {
	p := &Probe{}
	p.SetTracer(tr)
	return p
}

// SetTracer swaps the active tracer. The engine's scheduler points the
// shared probe at the tracer of whichever query thread is running; nil
// silences instrumentation (e.g. while bulk-loading the database, which
// the paper's measurements exclude).
func (p *Probe) SetTracer(tr *trace.Tracer) {
	if p == nil {
		return
	}
	if tr == nil {
		p.sink = nil // avoid a typed-nil interface, which would defeat Enabled
		return
	}
	p.sink = tr
}

// SetSink attaches an arbitrary instrumentation sink (the live-capture
// seam). nil silences instrumentation.
func (p *Probe) SetSink(s Sink) {
	if p == nil {
		return
	}
	p.sink = s
}

// Enabled reports whether instrumentation is live.
func (p *Probe) Enabled() bool { return p != nil && p.sink != nil }

// Enter records a call to fn.
func (p *Probe) Enter(fn program.FuncID) {
	if p == nil || p.sink == nil {
		return
	}
	p.sink.Enter(fn)
}

// Exit records the return from the current function.
func (p *Probe) Exit() {
	if p == nil || p.sink == nil {
		return
	}
	p.sink.Exit()
}

// Work records n instructions of local computation.
func (p *Probe) Work(n int) {
	if p == nil || p.sink == nil {
		return
	}
	p.sink.Work(n)
}

// Data records an n-byte data reference at addr.
func (p *Probe) Data(addr isa.Addr, n int, write bool) {
	if p == nil || p.sink == nil {
		return
	}
	p.sink.Data(addr, n, write)
}

// Tracer exposes the underlying tracer (nil when the sink is absent or
// not a tracer) for stats.
func (p *Probe) Tracer() *trace.Tracer {
	if p == nil {
		return nil
	}
	tr, _ := p.sink.(*trace.Tracer)
	return tr
}

// Arena hands out addresses for transient in-memory structures (hash
// tables, sort buffers) so their references hit the simulated D-cache at
// stable locations.
type Arena struct {
	base isa.Addr
	next isa.Addr
}

// NewArena returns an arena starting at base.
func NewArena(base isa.Addr) *Arena {
	return &Arena{base: base, next: base}
}

// Alloc reserves n bytes and returns their address, line-aligned.
func (a *Arena) Alloc(n int) isa.Addr {
	addr := a.next
	a.next = isa.AlignUp(a.next+isa.Addr(n), isa.LineBytes)
	return addr
}

// Reset rewinds the arena (between queries).
func (a *Arena) Reset() { a.next = a.base }

// Used returns the number of bytes handed out.
func (a *Arena) Used() int { return int(a.next - a.base) }
