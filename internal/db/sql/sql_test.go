package sql_test

import (
	"strings"
	"testing"

	"cgp/internal/db"
	"cgp/internal/db/catalog"
	"cgp/internal/db/exec"
	"cgp/internal/db/sql"
	"cgp/internal/trace"
)

// loadEngine builds orders(id, cust, amount, day) with a clustered
// index on id and a secondary on cust, plus customers(cust, name, tier).
func loadEngine(t *testing.T) *db.Engine {
	t.Helper()
	e := db.NewEngine(db.Options{BufferFrames: 512})
	tx := e.Txns.Begin()

	orders, err := e.CreateTable("orders", catalog.NewSchema(
		catalog.Column{Name: "id", Type: catalog.Int},
		catalog.Column{Name: "cust", Type: catalog.Int},
		catalog.Column{Name: "amount", Type: catalog.Int},
		catalog.Column{Name: "day", Type: catalog.Int},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := e.InsertRow(tx, orders, []catalog.Value{
			catalog.V(int64(i)), catalog.V(int64(i % 20)),
			catalog.V(int64(100 + i*3)), catalog.V(int64(i % 30)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.CreateIndex(tx, "orders", "id", true); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateIndex(tx, "orders", "cust", false); err != nil {
		t.Fatal(err)
	}

	custs, err := e.CreateTable("customers", catalog.NewSchema(
		catalog.Column{Name: "cust", Type: catalog.Int},
		catalog.Column{Name: "name", Type: catalog.String, Len: 12},
		catalog.Column{Name: "tier", Type: catalog.Int},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := e.InsertRow(tx, custs, []catalog.Value{
			catalog.V(int64(i)), catalog.SV("cust" + string(rune('a'+i))), catalog.V(int64(i % 3)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.CreateIndex(tx, "customers", "cust", true); err != nil {
		t.Fatal(err)
	}
	if err := e.Txns.Commit(tx); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * WHERE x = 1",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t LIMIT x",
		"SELECT SUM(*) FROM t",
		"SELECT * FROM t WHERE a BETWEEN 'x' AND 'y'",
		"SELECT * FROM t extra junk (",
		"SELECT * FROM t WHERE a = 'unterminated",
	}
	for _, src := range bad {
		if _, err := sql.Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestParseShapes(t *testing.T) {
	stmt, err := sql.Parse(`SELECT cust, SUM(amount) AS total INTO tmp
		FROM orders o, customers c
		WHERE o.cust = c.cust AND amount > 200 AND day BETWEEN 3 AND 9
		GROUP BY cust ORDER BY total DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 2 || stmt.Items[1].Agg != "SUM" || stmt.Items[1].As != "total" {
		t.Errorf("items = %+v", stmt.Items)
	}
	if stmt.Into != "tmp" {
		t.Errorf("into = %q", stmt.Into)
	}
	if len(stmt.From) != 2 || stmt.From[0].Alias != "o" {
		t.Errorf("from = %+v", stmt.From)
	}
	if len(stmt.Where) != 3 || !stmt.Where[0].IsJoin() || stmt.Where[2].Op != "BETWEEN" {
		t.Errorf("where = %+v", stmt.Where)
	}
	if len(stmt.GroupBy) != 1 || stmt.OrderBy[0].Col.Col != "total" || !stmt.OrderBy[0].Desc {
		t.Errorf("group/order = %+v / %+v", stmt.GroupBy, stmt.OrderBy)
	}
	if stmt.Limit != 5 {
		t.Errorf("limit = %d", stmt.Limit)
	}
}

func TestSimpleSelect(t *testing.T) {
	e := loadEngine(t)
	rows, err := sql.Run(e, "SELECT * FROM orders WHERE amount > 900")
	if err != nil {
		t.Fatal(err)
	}
	// amount = 100 + 3i > 900 -> i > 266.67 -> i in 267..299 = 33 rows
	if len(rows) != 33 {
		t.Fatalf("rows = %d, want 33", len(rows))
	}
}

func TestIndexRangePlan(t *testing.T) {
	e := loadEngine(t)
	tx := e.Txns.Begin()
	ctx := e.NewContext(tx)
	stmt, err := sql.Parse("SELECT * FROM orders WHERE id BETWEEN 100 AND 149")
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := sql.Plan(e, ctx, stmt)
	if err != nil {
		t.Fatal(err)
	}
	// The clustered index on id must be used: the plan root is the
	// IndexScan itself (no residual filter needed).
	if _, ok := plan.(*exec.IndexScan); !ok {
		t.Errorf("plan root = %T, want *exec.IndexScan", plan)
	}
	rows, err := exec.Collect(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Errorf("rows = %d, want 50", len(rows))
	}
	e.Txns.Commit(tx)
}

func TestProjectionAndOrder(t *testing.T) {
	e := loadEngine(t)
	rows, err := sql.Run(e, "SELECT id, amount FROM orders WHERE id < 10 ORDER BY amount DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Schema.ColNames() != "id,amount" {
		t.Errorf("schema = %s", rows[0].Schema.ColNames())
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Int(1) < rows[i].Int(1) {
			t.Fatal("not sorted descending")
		}
	}
}

func TestAggregates(t *testing.T) {
	e := loadEngine(t)
	rows, err := sql.Run(e, "SELECT COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Int(0) != 300 {
		t.Errorf("count = %d", r.Int(0))
	}
	wantSum := int64(0)
	for i := 0; i < 300; i++ {
		wantSum += int64(100 + i*3)
	}
	if r.Int(1) != wantSum {
		t.Errorf("sum = %d, want %d", r.Int(1), wantSum)
	}
	if r.Int(2) != 100 || r.Int(3) != 100+299*3 {
		t.Errorf("min/max = %d/%d", r.Int(2), r.Int(3))
	}
	if r.Int(4) != wantSum/300 {
		t.Errorf("avg = %d", r.Int(4))
	}
}

func TestGroupBy(t *testing.T) {
	e := loadEngine(t)
	rows, err := sql.Run(e, "SELECT cust, COUNT(*) AS n FROM orders GROUP BY cust ORDER BY cust")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("groups = %d", len(rows))
	}
	for i, r := range rows {
		if r.Int(0) != int64(i) || r.Int(1) != 15 {
			t.Errorf("group %d = (%d, %d), want (%d, 15)", i, r.Int(0), r.Int(1), i)
		}
	}
}

func TestJoinViaIndex(t *testing.T) {
	e := loadEngine(t)
	rows, err := sql.Run(e, `SELECT name, amount FROM customers c, orders o
		WHERE c.cust = o.cust AND o.id < 40 ORDER BY amount`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 40 {
		t.Fatalf("rows = %d, want 40", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Int(1) > rows[i].Int(1) {
			t.Fatal("not sorted")
		}
	}
}

func TestJoinGroupOrderLimit(t *testing.T) {
	e := loadEngine(t)
	rows, err := sql.Run(e, `SELECT name, SUM(amount) AS total
		FROM customers c, orders o WHERE c.cust = o.cust
		GROUP BY name ORDER BY total DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Customer 19's orders have the largest amounts (amount grows with
	// id, id%20 = cust): total for cust c = sum over i≡c (mod 20).
	if got := rows[0].Str(0); got != "cust"+string(rune('a'+19)) {
		t.Errorf("top customer = %q", got)
	}
	if rows[0].Int(1) < rows[1].Int(1) || rows[1].Int(1) < rows[2].Int(1) {
		t.Error("not sorted by total")
	}
}

func TestSelectIntoMaterializes(t *testing.T) {
	e := loadEngine(t)
	rows, err := sql.Run(e, "SELECT * INTO hot FROM orders WHERE amount >= 900")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("INTO returned %d rows to the client", len(rows))
	}
}

func TestStringPredicate(t *testing.T) {
	e := loadEngine(t)
	rows, err := sql.Run(e, "SELECT * FROM customers WHERE name = 'custa'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Int(0) != 0 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestNonEquiJoinPredicate(t *testing.T) {
	e := loadEngine(t)
	rows, err := sql.Run(e, `SELECT id FROM orders o, customers c
		WHERE o.cust = c.cust AND o.day < c.tier`)
	if err != nil {
		t.Fatal(err)
	}
	// Verify against a direct computation: day = id%30, tier = cust%3,
	// cust = id%20.
	want := 0
	for i := 0; i < 300; i++ {
		if i%30 < (i%20)%3 {
			want++
		}
	}
	if len(rows) != want {
		t.Errorf("rows = %d, want %d", len(rows), want)
	}
}

func TestSQLThroughScheduler(t *testing.T) {
	e := loadEngine(t)
	q1 := sql.MustQuery("sql1", "SELECT * FROM orders WHERE id BETWEEN 0 AND 49")
	q2 := sql.MustQuery("sql2", "SELECT cust, COUNT(*) FROM orders GROUP BY cust")
	res, err := e.RunConcurrent([]db.Query{q1, q2}, nil, trace.Discard, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Rows != 50 || res[1].Rows != 20 {
		t.Errorf("rows = %d / %d", res[0].Rows, res[1].Rows)
	}
}

func TestPlanErrors(t *testing.T) {
	e := loadEngine(t)
	bad := []string{
		"SELECT * FROM nope",
		"SELECT missing FROM orders",
		"SELECT o.id FROM orders o, orders o", // duplicate binding
		"SELECT cust FROM orders, customers",  // ambiguous
		"SELECT id, COUNT(*) FROM orders",     // id not grouped
		"SELECT * FROM customers WHERE name > 'x'",
	}
	for _, src := range bad {
		if _, err := sql.Run(e, src); err == nil {
			t.Errorf("Run(%q) succeeded", src)
		}
	}
}

func TestSQLMatchesHandPlan(t *testing.T) {
	e := loadEngine(t)
	got, err := sql.Run(e, "SELECT * FROM orders WHERE cust = 7 AND amount > 400")
	if err != nil {
		t.Fatal(err)
	}
	// Hand-built equivalent.
	tx := e.Txns.Begin()
	ctx := e.NewContext(tx)
	tbl := e.MustTable("orders")
	hand := exec.NewFilter(ctx,
		exec.NewIndexScan(ctx, tbl.Indexes["cust"], tbl.Heap, tbl.Schema, 7, 7),
		exec.IntCmp{Col: "amount", Op: exec.Gt, Val: 400})
	want, err := exec.Collect(hand)
	if err != nil {
		t.Fatal(err)
	}
	e.Txns.Commit(tx)
	if len(got) != len(want) {
		t.Fatalf("sql %d rows, hand plan %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Int(0) != want[i].Int(0) {
			t.Errorf("row %d differs", i)
		}
	}
}

func TestStatementString(t *testing.T) {
	stmt, err := sql.Parse("SELECT COUNT(*), SUM(amount) FROM orders o")
	if err != nil {
		t.Fatal(err)
	}
	s := stmt.String()
	if !strings.Contains(s, "COUNT(*)") || !strings.Contains(s, "orders o") {
		t.Errorf("String() = %q", s)
	}
}
