package sql

import (
	"fmt"

	"cgp/internal/db"
	"cgp/internal/db/catalog"
	"cgp/internal/db/exec"
	"cgp/internal/db/heap"
)

// Plan lowers a parsed statement onto the operator layer. It returns
// the root iterator plus the SELECT INTO target, if any — the same
// shape db.Query.Build expects, so SQL queries drop straight into the
// concurrent scheduler.
//
// Planning rules (the "query optimizer" of Figure 1):
//   - single-table predicates are pushed to the table's access path;
//   - an indexed column with an equality or range predicate turns the
//     scan into a B+-tree range scan;
//   - joins are left-deep in a greedy connected order; the inner side
//     uses index nested-loops when it is a bare indexed table, and a
//     Grace hash join otherwise;
//   - aggregates lower to hash aggregation, ORDER BY to sort, LIMIT to
//     limit, and plain column lists to a projection.
func Plan(e *db.Engine, ctx *exec.Context, stmt *SelectStmt) (exec.Iterator, *heap.File, error) {
	pl := &planner{e: e, ctx: ctx, stmt: stmt, phys: map[string]map[string]string{}}
	return pl.build()
}

type planner struct {
	e    *db.Engine
	ctx  *exec.Context
	stmt *SelectStmt

	// phys maps binding name -> column -> physical column name in the
	// current plan schema (joins rename duplicate right-side columns).
	phys map[string]map[string]string

	bindings []binding
}

type binding struct {
	name string
	tbl  *db.Table
}

func (pl *planner) build() (exec.Iterator, *heap.File, error) {
	if len(pl.stmt.From) == 0 {
		return nil, nil, fmt.Errorf("sql: no FROM tables")
	}
	// Resolve bindings.
	seen := map[string]bool{}
	for _, tr := range pl.stmt.From {
		tbl, err := pl.e.Table(tr.Table)
		if err != nil {
			return nil, nil, err
		}
		name := tr.Name()
		if seen[name] {
			return nil, nil, fmt.Errorf("sql: duplicate table binding %q", name)
		}
		seen[name] = true
		pl.bindings = append(pl.bindings, binding{name: name, tbl: tbl})
	}

	// Split WHERE into local and join predicates.
	var locals, joins []Predicate
	for _, p := range pl.stmt.Where {
		if p.IsJoin() {
			joins = append(joins, p)
		} else {
			locals = append(locals, p)
		}
	}

	plan, err := pl.joinAll(locals, joins)
	if err != nil {
		return nil, nil, err
	}

	// Aggregation.
	hasAgg := false
	for _, it := range pl.stmt.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	if hasAgg || len(pl.stmt.GroupBy) > 0 {
		plan, err = pl.aggregate(plan)
		if err != nil {
			return nil, nil, err
		}
	} else if !pl.stmt.Star && len(pl.stmt.Items) > 0 {
		cols := make([]string, len(pl.stmt.Items))
		for i, it := range pl.stmt.Items {
			name, err := pl.resolve(it.Col)
			if err != nil {
				return nil, nil, err
			}
			cols[i] = name
		}
		plan = exec.NewProject(pl.ctx, plan, cols...)
		// Projection renames physical columns back to their bare names;
		// downstream ORDER BY resolves against the projected schema.
		pl.rebindToSchema(plan.Schema())
	}

	// ORDER BY.
	if len(pl.stmt.OrderBy) > 0 {
		keys := make([]exec.SortKey, len(pl.stmt.OrderBy))
		for i, k := range pl.stmt.OrderBy {
			name, err := pl.resolveIn(plan.Schema(), k.Col)
			if err != nil {
				return nil, nil, err
			}
			keys[i] = exec.SortKey{Col: name, Desc: k.Desc}
		}
		plan = exec.NewSort(pl.ctx, plan, keys...)
	}
	if pl.stmt.Limit >= 0 {
		plan = exec.NewLimit(pl.ctx, plan, pl.stmt.Limit)
	}

	var into *heap.File
	if pl.stmt.Into != "" {
		f, err := pl.e.TempFile(pl.stmt.Into)
		if err != nil {
			return nil, nil, err
		}
		into = f
	}
	return plan, into, nil
}

// rebindToSchema resets the physical map after a projection: every
// binding column that survives keeps its (possibly renamed) identity.
func (pl *planner) rebindToSchema(sch *catalog.Schema) {
	for _, b := range pl.bindings {
		m := pl.phys[b.name]
		for col, phys := range m {
			if !sch.HasCol(phys) {
				delete(m, col)
			}
		}
	}
}

// resolve maps a column reference to its physical name in the current
// joined schema.
func (pl *planner) resolve(c ColRef) (string, error) {
	if c.Table != "" {
		m := pl.phys[c.Table]
		if m == nil {
			return "", fmt.Errorf("sql: unknown table %q in %s", c.Table, c)
		}
		name, ok := m[c.Col]
		if !ok {
			return "", fmt.Errorf("sql: no column %s", c)
		}
		return name, nil
	}
	var found string
	for _, m := range pl.phys {
		if name, ok := m[c.Col]; ok {
			if found != "" && found != name {
				return "", fmt.Errorf("sql: ambiguous column %q", c.Col)
			}
			//cgplint:ignore maporder all agreeing matches write the same value and a disagreement errors regardless of visit order
			found = name
		}
	}
	if found == "" {
		return "", fmt.Errorf("sql: no column %q", c.Col)
	}
	return found, nil
}

// resolveIn resolves against an explicit schema (post-projection or
// post-aggregation), falling back to the bare name.
func (pl *planner) resolveIn(sch *catalog.Schema, c ColRef) (string, error) {
	if name, err := pl.resolve(c); err == nil && sch.HasCol(name) {
		return name, nil
	}
	if sch.HasCol(c.Col) {
		return c.Col, nil
	}
	return "", fmt.Errorf("sql: no column %s in output", c)
}

// bindingOf returns which binding a predicate's column belongs to.
func (pl *planner) bindingOf(c ColRef) (*binding, error) {
	if c.Table != "" {
		for i := range pl.bindings {
			if pl.bindings[i].name == c.Table {
				return &pl.bindings[i], nil
			}
		}
		return nil, fmt.Errorf("sql: unknown table %q", c.Table)
	}
	var found *binding
	for i := range pl.bindings {
		if pl.bindings[i].tbl.Schema.HasCol(c.Col) {
			if found != nil {
				return nil, fmt.Errorf("sql: ambiguous column %q", c.Col)
			}
			found = &pl.bindings[i]
		}
	}
	if found == nil {
		return nil, fmt.Errorf("sql: no column %q", c.Col)
	}
	return found, nil
}
