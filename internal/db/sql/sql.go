package sql

import (
	"cgp/internal/db"
	"cgp/internal/db/catalog"
	"cgp/internal/db/exec"
	"cgp/internal/db/heap"
)

// Query wraps a SQL statement as a schedulable db.Query, so SQL text
// can run concurrently with hand-built plans.
func Query(name, src string) (db.Query, error) {
	stmt, err := Parse(src)
	if err != nil {
		return db.Query{}, err
	}
	return db.Query{
		Name: name,
		Build: func(e *db.Engine, ctx *exec.Context) (exec.Iterator, *heap.File, error) {
			return Plan(e, ctx, stmt)
		},
	}, nil
}

// MustQuery is Query for statically known statements.
func MustQuery(name, src string) db.Query {
	q, err := Query(name, src)
	if err != nil {
		panic(err)
	}
	return q
}

// Run parses, plans and executes src in its own transaction, returning
// the result rows (or, for SELECT INTO, the materialized row count via
// len of the returned rows being 0 and the temp file filled). The
// parse/optimize phases run under the engine's probe so they appear in
// the simulated call graph exactly where Figure 1 puts them.
func Run(e *db.Engine, src string) ([]catalog.Tuple, error) {
	tx := e.Txns.Begin()
	ctx := e.NewContext(tx)

	e.Pr.Enter(e.Fns.Exec.QueryParse)
	e.Pr.Work(60 + 2*len(src))
	stmt, err := Parse(src)
	e.Pr.Exit()
	if err != nil {
		e.Txns.Abort(tx)
		return nil, err
	}

	e.Pr.Enter(e.Fns.Exec.QueryOptimize)
	e.Pr.Work(240 + 90*len(stmt.From) + 30*len(stmt.Where))
	it, into, err := Plan(e, ctx, stmt)
	e.Pr.Exit()
	if err != nil {
		e.Txns.Abort(tx)
		return nil, err
	}

	e.Pr.Enter(e.Fns.Exec.QueryExecute)
	var rows []catalog.Tuple
	if into != nil {
		_, err = exec.Materialize(ctx, it, into)
	} else {
		rows, err = exec.Collect(it)
	}
	e.Pr.Exit()
	if err != nil {
		e.Txns.Abort(tx)
		return nil, err
	}
	if err := e.Txns.Commit(tx); err != nil {
		return nil, err
	}
	return rows, nil
}
